package flos

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - self-loop bound tightening (§5.3): on vs off;
//   - solver tolerance τ: the α-vs-β tradeoff in the paper's O(α·h²·β²);
//   - no-precompute queries on a mutating graph: FLoS on a DynamicGraph vs
//     K-dash, which must re-factor after any edge change (§1's motivation);
//   - query throughput: concurrent FLoS queries against one shared graph.

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"

	"flos/internal/baseline"
	"flos/internal/graph"
	"flos/internal/harness"
)

func ablationGraph(b *testing.B) (*MemGraph, []NodeID) {
	b.Helper()
	ds := harness.RealStandIns(1.0 / 32)[0] // AZ-shaped
	e := benchGraph(b, ds)
	return e.g, e.queries
}

// BenchmarkAblationTightening quantifies §5.3: tighter bounds should shrink
// the visited set per query at a small per-node cost (extra Degree probes).
func BenchmarkAblationTightening(b *testing.B) {
	g, queries := ablationGraph(b)
	for _, tighten := range []bool{false, true} {
		tighten := tighten
		name := "plain"
		if tighten {
			name = "tightened"
		}
		b.Run(name, func(b *testing.B) {
			visited, probes := 0.0, 0.0
			for i := 0; i < b.N; i++ {
				opt := DefaultOptions(PHP, 20)
				opt.Tighten = tighten
				res, err := TopK(g, queries[i%len(queries)], opt)
				if err != nil {
					b.Fatal(err)
				}
				visited += float64(res.Visited)
				probes += float64(res.DegreeProbes)
			}
			b.ReportMetric(visited/float64(b.N), "visited/op")
			b.ReportMetric(probes/float64(b.N), "degprobes/op")
		})
	}
}

// BenchmarkAblationTau sweeps the Algorithm 7 tolerance: looser τ means
// fewer relaxations per iteration (smaller α) but looser bounds and hence
// more visited nodes (larger β).
func BenchmarkAblationTau(b *testing.B) {
	g, queries := ablationGraph(b)
	for _, tau := range []float64{1e-3, 1e-5, 1e-7} {
		tau := tau
		b.Run(fmt.Sprintf("tau=%.0e", tau), func(b *testing.B) {
			visited, sweeps := 0.0, 0.0
			for i := 0; i < b.N; i++ {
				opt := DefaultOptions(RWR, 20)
				opt.Params.Tau = tau
				res, err := TopK(g, queries[i%len(queries)], opt)
				if err != nil {
					b.Fatal(err)
				}
				visited += float64(res.Visited)
				sweeps += float64(res.Sweeps)
			}
			b.ReportMetric(visited/float64(b.N), "visited/op")
			b.ReportMetric(sweeps/float64(b.N), "relaxations/op")
		})
	}
}

// BenchmarkDynamicUpdates is the §1 motivation experiment: after every edge
// change, answer one exact RWR query. FLoS reads the mutated topology
// directly; K-dash must redo its factorization first. One op = one
// mutation + one exact query.
func BenchmarkDynamicUpdates(b *testing.B) {
	base, err := GenerateCommunity(3000, 8100, 7)
	if err != nil {
		b.Fatal(err)
	}
	queries := harness.Queries(base, 8, 1)
	c := DefaultParams().C

	b.Run("FLoS_RWR", func(b *testing.B) {
		d := graph.NewDynamicGraph(base)
		for i := 0; i < b.N; i++ {
			mutate(b, d, i)
			if _, err := TopK(d, queries[i%len(queries)], DefaultOptions(RWR, 10)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("K-dash", func(b *testing.B) {
		d := graph.NewDynamicGraph(base)
		for i := 0; i < b.N; i++ {
			mutate(b, d, i)
			kd, err := baseline.PrecomputeKDash(d, c, 0) // invalidated by the mutation
			if err != nil {
				b.Fatal(err)
			}
			if _, err := kd.Query(queries[i%len(queries)], 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// mutate toggles a pseudo-random edge.
func mutate(b *testing.B, d *graph.DynamicGraph, i int) {
	b.Helper()
	n := NodeID(d.NumNodes())
	u := NodeID((i*7919 + 13) % int(n))
	v := NodeID((i*104729 + 512) % int(n))
	if u == v {
		v = (v + 1) % n
	}
	if d.HasEdge(u, v) {
		if err := d.RemoveEdge(u, v); err != nil {
			b.Fatal(err)
		}
	} else {
		if err := d.AddEdge(u, v, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRelabelDiskLocality quantifies graph.RelabelBFS: the same FLoS
// queries against a disk store built from the raw graph vs the BFS-relabeled
// one. Relabeling packs each neighborhood into adjacent CSR rows, so the
// page cache misses far less (watch the misses/op metric).
func BenchmarkRelabelDiskLocality(b *testing.B) {
	raw, err := GenerateCommunity(60000, 162000, 11)
	if err != nil {
		b.Fatal(err)
	}
	// The community generator already lays communities out contiguously;
	// scramble identifiers first so the raw store represents a graph whose
	// ids arrived in arbitrary order, as SNAP downloads do.
	scrambled := scrambleIDs(b, raw, 99)
	relabeled, back, err := graph.RelabelBFS(scrambled, 0)
	if err != nil {
		b.Fatal(err)
	}
	_ = back
	for _, cse := range []struct {
		name string
		g    *MemGraph
	}{{"scrambled", scrambled}, {"relabeled", relabeled}} {
		cse := cse
		b.Run(cse.name, func(b *testing.B) {
			dir := b.TempDir()
			path := filepath.Join(dir, "g.flos")
			if err := CreateDiskGraph(path, cse.g); err != nil {
				b.Fatal(err)
			}
			store, err := OpenDiskGraph(path, 1<<20) // 1 MiB: heavy paging
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			queries := harness.Queries(cse.g, benchQueries, 1)
			misses0 := store.CacheStats().Misses
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if _, err := TopK(store, q, DefaultOptions(PHP, 10)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			misses := store.CacheStats().Misses - misses0
			b.ReportMetric(float64(misses)/float64(b.N), "pagemisses/op")
		})
	}
}

// scrambleIDs permutes node identifiers pseudo-randomly.
func scrambleIDs(b *testing.B, g *MemGraph, seed uint64) *MemGraph {
	b.Helper()
	n := g.NumNodes()
	perm := make([]NodeID, n)
	for i := range perm {
		perm[i] = NodeID(i)
	}
	state := seed
	for i := n - 1; i > 0; i-- {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		j := int((z ^ (z >> 31)) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	nb := NewGraphBuilder(n)
	for v := 0; v < n; v++ {
		nbrs, ws := g.Neighbors(NodeID(v))
		for i, u := range nbrs {
			if u > NodeID(v) {
				if err := nb.AddEdge(perm[v], perm[u], ws[i]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	out, err := nb.Build()
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// BenchmarkParallelQueries measures throughput of concurrent exact queries
// against one shared immutable graph (MemGraph reads are lock-free).
func BenchmarkParallelQueries(b *testing.B) {
	g, queries := ablationGraph(b)
	var idx atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := idx.Add(1)
			q := queries[int(i)%len(queries)]
			if _, err := TopK(g, q, DefaultOptions(PHP, 10)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
