package flos_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestPublicAPIManifest is the compatibility gate for the root flos package:
// it extracts every exported declaration (functions, methods, types, consts,
// vars) with its rendered signature and compares the sorted manifest against
// the checked-in golden. Any change to the public surface — a removed
// symbol, a changed signature, an added field — fails CI until the golden is
// regenerated deliberately:
//
//	FLOS_UPDATE_GOLDEN=1 go test -run TestPublicAPIManifest .
//
// The extractor is stdlib-only (go/parser over this directory), so the gate
// needs no external tooling.
func TestPublicAPIManifest(t *testing.T) {
	manifest := buildAPIManifest(t, ".")
	goldenPath := filepath.Join("testdata", "api_manifest.txt")

	if os.Getenv("FLOS_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(manifest), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d lines)", goldenPath, strings.Count(manifest, "\n"))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (regenerate with FLOS_UPDATE_GOLDEN=1): %v", err)
	}
	if manifest == string(want) {
		return
	}
	// Report the precise drift, line by line.
	gotLines := strings.Split(manifest, "\n")
	wantLines := strings.Split(string(want), "\n")
	gotSet := make(map[string]bool, len(gotLines))
	for _, l := range gotLines {
		gotSet[l] = true
	}
	wantSet := make(map[string]bool, len(wantLines))
	for _, l := range wantLines {
		wantSet[l] = true
	}
	for _, l := range wantLines {
		if l != "" && !gotSet[l] {
			t.Errorf("removed or changed: %s", l)
		}
	}
	for _, l := range gotLines {
		if l != "" && !wantSet[l] {
			t.Errorf("added or changed:   %s", l)
		}
	}
	t.Fatalf("public API drifted from %s; if intentional, regenerate with FLOS_UPDATE_GOLDEN=1 go test -run TestPublicAPIManifest .", goldenPath)
}

// buildAPIManifest renders one sorted line per exported symbol of the
// package in dir (test files excluded).
func buildAPIManifest(t *testing.T, dir string) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["flos"]
	if !ok {
		t.Fatalf("package flos not found in %s (got %v)", dir, pkgs)
	}

	render := func(n ast.Node) string {
		var sb strings.Builder
		if err := (&printer.Config{Mode: printer.RawFormat}).Fprint(&sb, fset, n); err != nil {
			t.Fatal(err)
		}
		// Collapse to one line so the manifest diffs cleanly.
		return strings.Join(strings.Fields(sb.String()), " ")
	}

	var lines []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				recv := ""
				if d.Recv != nil && len(d.Recv.List) > 0 {
					rt := render(d.Recv.List[0].Type)
					// Skip methods on unexported receivers.
					if !ast.IsExported(strings.TrimPrefix(rt, "*")) {
						continue
					}
					recv = "(" + rt + ") "
				}
				sig := render(d.Type)
				// d.Type renders as "func(args) results"; splice the name in.
				sig = "func " + recv + d.Name.Name + strings.TrimPrefix(sig, "func")
				lines = append(lines, sig)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if !sp.Name.IsExported() {
							continue
						}
						switch tt := sp.Type.(type) {
						case *ast.StructType:
							lines = append(lines, fmt.Sprintf("type %s struct", sp.Name.Name))
							for _, f := range tt.Fields.List {
								ft := render(f.Type)
								if len(f.Names) == 0 {
									// Embedded field: exported iff its type name is.
									base := strings.TrimPrefix(ft, "*")
									if i := strings.LastIndex(base, "."); i >= 0 {
										base = base[i+1:]
									}
									if ast.IsExported(base) {
										lines = append(lines, fmt.Sprintf("type %s struct: %s (embedded)", sp.Name.Name, ft))
									}
									continue
								}
								for _, name := range f.Names {
									if name.IsExported() {
										lines = append(lines, fmt.Sprintf("type %s struct: %s %s", sp.Name.Name, name.Name, ft))
									}
								}
							}
						case *ast.InterfaceType:
							lines = append(lines, fmt.Sprintf("type %s interface", sp.Name.Name))
							for _, m := range tt.Methods.List {
								mt := render(m.Type)
								if len(m.Names) == 0 {
									lines = append(lines, fmt.Sprintf("type %s interface: %s (embedded)", sp.Name.Name, mt))
									continue
								}
								for _, name := range m.Names {
									if name.IsExported() {
										lines = append(lines, fmt.Sprintf("type %s interface: %s%s", sp.Name.Name, name.Name, strings.TrimPrefix(mt, "func")))
									}
								}
							}
						default:
							assign := "="
							if sp.Assign == token.NoPos {
								assign = ""
							}
							if assign == "" {
								lines = append(lines, fmt.Sprintf("type %s %s", sp.Name.Name, render(sp.Type)))
							} else {
								lines = append(lines, fmt.Sprintf("type %s = %s", sp.Name.Name, render(sp.Type)))
							}
						}
					case *ast.ValueSpec:
						kw := "var"
						if d.Tok == token.CONST {
							kw = "const"
						}
						typ := ""
						if sp.Type != nil {
							typ = " " + render(sp.Type)
						}
						for i, name := range sp.Names {
							if !name.IsExported() {
								continue
							}
							val := ""
							// Record const values only when they are stable
							// identifiers (aliases like ModeExact = core.ModeExact
							// render by name, not by the internal value).
							if d.Tok == token.CONST && i < len(sp.Values) {
								if id, ok := sp.Values[i].(*ast.SelectorExpr); ok {
									val = " = " + render(id)
								}
							}
							lines = append(lines, fmt.Sprintf("%s %s%s%s", kw, name.Name, typ, val))
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
