package flos

// Benchmarks regenerating the paper's evaluation, one family per figure.
// Sizes are scaled so `go test -bench=. -benchmem` completes on a laptop;
// cmd/flosbench runs the same sweeps at arbitrary scale. Each benchmark
// iteration answers one query, cycling through a fixed seeded workload, so
// ns/op is directly the paper's "average query time" axis.
//
//	Figure 7  — PHP query time vs k on the real-graph stand-ins
//	Figure 8  — RWR query time vs k
//	Figure 9  — visited-node ratio (reported as the visited/op metric)
//	Figure 10 — THT query time vs k
//	Figure 11 — PHP on synthetic RAND/R-MAT grids
//	Figure 12 — RWR on synthetic grids
//	Figure 13 — FLoS on the disk-resident store
//	Table 3   — the worked-example trace (micro benchmark)

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"flos/internal/diskgraph"
	"flos/internal/graph"
	"flos/internal/harness"
	"flos/internal/measure"
)

// benchScale shrinks the paper's dataset sizes for bench runs.
const (
	benchRealScale  = 1.0 / 32
	benchSynthScale = 1.0 / 128
	benchDiskScale  = 1.0 / 512
	benchQueries    = 8
)

var benchCache sync.Map // dataset name -> *benchEntry

type benchEntry struct {
	once    sync.Once
	g       *graph.MemGraph
	queries []graph.NodeID
	methods map[string][]harness.Method
	err     error
}

func benchGraph(b *testing.B, ds harness.Dataset) *benchEntry {
	b.Helper()
	v, _ := benchCache.LoadOrStore(ds.Name, &benchEntry{})
	e := v.(*benchEntry)
	e.once.Do(func() {
		e.g, e.err = ds.Build()
		if e.err != nil {
			return
		}
		e.queries = harness.Queries(e.g, benchQueries, 1)
		e.methods = make(map[string][]harness.Method)
	})
	if e.err != nil {
		b.Fatalf("building %s: %v", ds.Name, e.err)
	}
	return e
}

// methodsFor memoizes a registry per dataset so precomputes (clustering,
// K-dash factorization, embedding) run once, outside any timer.
func (e *benchEntry) methodsFor(kind string, build func(graph.Graph, harness.MethodConfig) []harness.Method) []harness.Method {
	if m, ok := e.methods[kind]; ok {
		return m
	}
	cfg := harness.DefaultMethodConfig()
	cfg.KDashMaxNodes = 15000 // mirror the paper's "medium graphs only" gate
	m := build(e.g, cfg)
	e.methods[kind] = m
	return m
}

func runMethodBench(b *testing.B, e *benchEntry, m harness.Method, k int) {
	b.Helper()
	visited := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := e.queries[i%len(e.queries)]
		_, v, err := m.Run(e.g, q, k)
		if err != nil {
			b.Fatal(err)
		}
		visited += float64(v)
	}
	b.StopTimer()
	b.ReportMetric(visited/float64(b.N), "visited/op")
	b.ReportMetric(visited/float64(b.N)/float64(e.g.NumNodes()), "visitedratio/op")
}

func benchFigure(b *testing.B, datasets []harness.Dataset, kind string,
	registry func(graph.Graph, harness.MethodConfig) []harness.Method, ks []int) {
	for _, ds := range datasets {
		ds := ds
		b.Run(ds.Name, func(b *testing.B) {
			e := benchGraph(b, ds)
			for _, m := range e.methodsFor(kind, registry) {
				m := m
				for _, k := range ks {
					k := k
					b.Run(fmt.Sprintf("%s/k=%d", m.Name, k), func(b *testing.B) {
						runMethodBench(b, e, m, k)
					})
				}
			}
		})
	}
}

func BenchmarkFig7_PHP(b *testing.B) {
	benchFigure(b, harness.RealStandIns(benchRealScale), "php", harness.PHPMethods, []int{1, 10, 100})
}

func BenchmarkFig8_RWR(b *testing.B) {
	benchFigure(b, harness.RealStandIns(benchRealScale), "rwr", harness.RWRMethods, []int{1, 10, 100})
}

func BenchmarkFig10_THT(b *testing.B) {
	benchFigure(b, harness.RealStandIns(benchRealScale), "tht", harness.THTMethods, []int{1, 10, 100})
}

// BenchmarkFig9_VisitedRatio isolates the two FLoS variants at k=20; read
// the visitedratio/op metric for Figure 9's bars.
func BenchmarkFig9_VisitedRatio(b *testing.B) {
	for _, ds := range harness.RealStandIns(benchRealScale) {
		ds := ds
		b.Run(ds.Name, func(b *testing.B) {
			e := benchGraph(b, ds)
			for _, kind := range []measure.Kind{measure.PHP, measure.RWR} {
				kind := kind
				b.Run("FLoS_"+kind.String(), func(b *testing.B) {
					visited := 0.0
					for i := 0; i < b.N; i++ {
						q := e.queries[i%len(e.queries)]
						res, err := TopK(e.g, q, DefaultOptions(kind, 20))
						if err != nil {
							b.Fatal(err)
						}
						visited += float64(res.Visited)
					}
					b.ReportMetric(visited/float64(b.N)/float64(e.g.NumNodes()), "visitedratio/op")
				})
			}
		})
	}
}

func BenchmarkFig11_PHP_Synthetic(b *testing.B) {
	grid := append(harness.VaryingSize("rand", benchSynthScale),
		append(harness.VaryingSize("rmat", benchSynthScale),
			append(harness.VaryingDensity("rand", benchSynthScale),
				harness.VaryingDensity("rmat", benchSynthScale)...)...)...)
	benchFigure(b, grid, "php", harness.PHPMethods, []int{20})
}

func BenchmarkFig12_RWR_Synthetic(b *testing.B) {
	grid := append(harness.VaryingSize("rand", benchSynthScale),
		harness.VaryingSize("rmat", benchSynthScale)...)
	benchFigure(b, grid, "rwr", harness.RWRMethods, []int{20})
}

// BenchmarkFig13_Disk measures FLoS against the paged store under a 25%
// cache budget; visitedratio/op is Figure 13(b).
func BenchmarkFig13_Disk(b *testing.B) {
	for _, ds := range harness.DiskResident(benchDiskScale) {
		ds := ds
		b.Run(ds.Name, func(b *testing.B) {
			g, err := ds.Build()
			if err != nil {
				b.Fatal(err)
			}
			queries := harness.Queries(g, benchQueries, 1)
			dir := b.TempDir()
			path := filepath.Join(dir, ds.Name+".flos")
			if err := diskgraph.Create(path, g, 0); err != nil {
				b.Fatal(err)
			}
			fi, err := os.Stat(path)
			if err != nil {
				b.Fatal(err)
			}
			store, err := diskgraph.Open(path, fi.Size()/4)
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			for _, kind := range []measure.Kind{measure.PHP, measure.RWR} {
				kind := kind
				b.Run("FLoS_"+kind.String(), func(b *testing.B) {
					visited := 0.0
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						q := queries[i%len(queries)]
						res, err := TopK(store, q, DefaultOptions(kind, 20))
						if err != nil {
							b.Fatal(err)
						}
						visited += float64(res.Visited)
					}
					b.StopTimer()
					b.ReportMetric(visited/float64(b.N)/float64(store.NumNodes()), "visitedratio/op")
				})
			}
		})
	}
}

// nopSnapshots is a SnapshotObserver that discards every record, so the
// traced benchmark measures snapshot construction without retention cost.
type nopSnapshots struct{}

func (nopSnapshots) ObserveIteration(IterStats) {}
func (nopSnapshots) ObserveSnapshot(TraceEvent) {}

// BenchmarkTable3_Trace micro-benchmarks the worked example, trace included.
func BenchmarkTable3_Trace(b *testing.B) {
	g := MustPaperExample()
	opt := Options{
		K:       2,
		Measure: PHP,
		Params:  Params{C: 0.8, L: 10, Tau: 1e-8, MaxIter: 100000},
		TieEps:  1e-9,
		Tracer:  nopSnapshots{},
	}
	for i := 0; i < b.N; i++ {
		if _, err := TopK(g, 0, opt); err != nil {
			b.Fatal(err)
		}
	}
}
