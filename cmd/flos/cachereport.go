package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"flos/internal/obs/cachelens"
)

// cacheReportDump is the GET /debug/flos/cache payload: one analytics
// snapshot per instrumented cache, either may be absent.
type cacheReportDump struct {
	PageCache   *cachelens.Snapshot `json:"page_cache"`
	ResultCache *cachelens.Snapshot `json:"result_cache"`
}

// cacheReport renders a saved /debug/flos/cache snapshot as the capacity-
// planning tables an operator sizes a cache with: the miss-ratio curve with
// its ghost-list cross-check, the working-set windows, and the hot-block
// ranking. A bare snapshot (one lens's JSON, not the two-plane wrapper) is
// accepted too.
func cacheReport(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var dump cacheReportDump
	if err := json.Unmarshal(raw, &dump); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if dump.PageCache == nil && dump.ResultCache == nil {
		// Maybe the file is one lens's snapshot without the wrapper.
		var single cachelens.Snapshot
		if err := json.Unmarshal(raw, &single); err == nil && single.Accesses > 0 {
			renderLens("cache", &single)
			return nil
		}
		return fmt.Errorf("%s holds no cache-analytics snapshot (save GET /debug/flos/cache)", path)
	}
	if dump.PageCache != nil {
		renderLens("page cache", dump.PageCache)
	}
	if dump.ResultCache != nil {
		if dump.PageCache != nil {
			fmt.Println()
		}
		renderLens("result cache", dump.ResultCache)
	}
	return nil
}

func renderLens(name string, s *cachelens.Snapshot) {
	fmt.Printf("=== %s ===\n", name)
	fmt.Printf("accesses %d (hits %d, misses %d), measured hit ratio %.4f, sampling 1/%d (%d sampled, %d tracked, %d cold)\n",
		s.Accesses, s.Hits, s.Misses, s.HitRatio, s.SampleRate,
		s.SampledAccesses, s.SampledTracked, s.SampledCold)

	fmt.Println("miss-ratio curve (estimated hit ratio by capacity under LRU):")
	fmt.Printf("%8s %10s %9s %9s  %s\n", "scale", "capacity", "hit", "miss", "")
	for _, p := range s.Curve {
		marker := ""
		if p.Scale == 1 {
			marker = fmt.Sprintf("  <- deployed (measured %.4f)", s.HitRatio)
		}
		fmt.Printf("%7gx %10d %9.4f %9.4f  %-30s%s\n",
			p.Scale, p.Capacity, p.EstHitRatio, p.EstMissRatio, bar(p.EstHitRatio, 30), marker)
	}

	g := s.Ghost
	fmt.Printf("ghost list: %d/%d entries, %d evictions, %d would-have-hits -> measured hit ratio at ~2x: %.4f\n",
		g.Entries, g.Capacity, g.Evictions, g.WouldHaveHits, g.HitRatioAt2x)

	for _, w := range s.WorkingSet {
		fmt.Printf("working set (%s window): last completed %d entries, in progress %d, %d rollovers\n",
			w.Window, w.DistinctEst, w.CurrentEst, w.Rollovers)
	}

	if len(s.HotBlocks) > 0 {
		kind := "heat slot"
		if s.DenseBlocks {
			kind = "block"
		}
		fmt.Printf("hot blocks (decayed heat, %d ticks):\n", s.Ticks)
		max := s.HotBlocks[0].Heat
		for i, hb := range s.HotBlocks {
			frac := 0.0
			if max > 0 {
				frac = hb.Heat / max
			}
			fmt.Printf("%4d. %s %-10d heat %10.1f  %s\n", i+1, kind, hb.Block, hb.Heat, bar(frac, 40))
		}
	}
}

// bar renders frac in [0,1] as a width-w unicode bar.
func bar(frac float64, w int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(w) + 0.5)
	return strings.Repeat("█", n) + strings.Repeat("·", w-n)
}
