// Command flos answers a single top-k proximity query against a graph file.
//
// Usage:
//
//	flos -graph web.txt -q 42 -k 10 -measure rwr
//	flos -store big.flos -cache 128 -q 42 -k 20 -measure php
//	flos -replay slow.json [-replay-id req-7]
//	flos -cachereport cache.json
//
// Graph inputs: a SNAP-style text edge list (-graph), the binary CSR format
// (-bin), or a disk store produced by flosgen/CreateDiskGraph (-store).
//
// -replay renders a flight-recorder dump (saved from a flosd instance's
// /debug/flos/slow or /debug/flos/flightrec endpoint) as the convergence
// table a live -trace run prints — offline slow-query analysis without the
// graph the query ran against. Records from a live-graph server carry their
// snapshot epoch; replay flags records behind -replay-epoch (or the newest
// epoch in the dump) as stale, since their trajectories describe an older
// topology.
//
// -cachereport renders a cache-analytics snapshot (saved from a flosd
// instance's /debug/flos/cache endpoint) as capacity-planning tables: the
// miss-ratio curve at 0.25x..4x capacity with its ghost-list cross-check,
// working-set window estimates, and the hot/cold block heat ranking.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"flos"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "text edge-list file (u v [w] per line)")
		binPath   = flag.String("bin", "", "binary CSR graph file")
		storePath = flag.String("store", "", "disk-resident store file")
		cacheMB   = flag.Int64("cache", 64, "page-cache budget for -store, MiB")
		q         = flag.Int("q", -1, "query node id")
		k         = flag.Int("k", 10, "number of neighbors")
		meas      = flag.String("measure", "php", "php | ei | dht | tht | rwr")
		c         = flag.Float64("c", 0.5, "decay factor / restart probability")
		horizon   = flag.Int("L", 10, "THT horizon")
		tau       = flag.Float64("tau", 1e-5, "iteration tolerance")
		tighten   = flag.Bool("tighten", true, "enable self-loop bound tightening")
		trace     = flag.Bool("trace", false, "print the per-iteration convergence table")
		unified   = flag.Bool("unified", false, "answer both PHP-family and RWR rankings in one search")
		certify   = flag.Bool("certify", false, "audit the result against a full global-iteration solve")
		replay    = flag.String("replay", "", "replay a flight-recorder dump file (JSON from /debug/flos/slow) instead of querying")
		replayID  = flag.String("replay-id", "", "with -replay: render only the record with this request ID")
		replayEp  = flag.Uint64("replay-epoch", 0, "with -replay: audit records against this live-graph epoch (0 = newest epoch in the dump)")
		creport   = flag.String("cachereport", "", "render a cache-analytics snapshot file (JSON from /debug/flos/cache) instead of querying")
	)
	flag.Parse()

	if *replay != "" {
		if err := replayDump(*replay, *replayID, *replayEp); err != nil {
			fatal(err)
		}
		return
	}
	if *creport != "" {
		if err := cacheReport(*creport); err != nil {
			fatal(err)
		}
		return
	}

	kind, err := parseMeasure(*meas)
	if err != nil {
		fatal(err)
	}
	var g flos.Graph
	switch {
	case *graphPath != "":
		mg, err := flos.LoadEdgeList(*graphPath)
		if err != nil {
			fatal(err)
		}
		g = mg
	case *binPath != "":
		mg, err := flos.LoadBinary(*binPath)
		if err != nil {
			fatal(err)
		}
		g = mg
	case *storePath != "":
		dg, err := flos.OpenDiskGraph(*storePath, *cacheMB<<20)
		if err != nil {
			fatal(err)
		}
		defer dg.Close()
		g = dg
	default:
		fatal(fmt.Errorf("one of -graph, -bin, -store is required"))
	}
	if *q < 0 || *q >= g.NumNodes() {
		fatal(fmt.Errorf("query -q %d outside [0,%d)", *q, g.NumNodes()))
	}

	opt := flos.DefaultOptions(kind, *k)
	opt.Params.C = *c
	opt.Params.L = *horizon
	opt.Params.Tau = *tau
	opt.Tighten = *tighten
	var tc *flos.TraceCollector
	if *trace {
		tc = &flos.TraceCollector{}
		opt.Tracer = tc
	}

	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	if *unified {
		start := time.Now()
		res, err := flos.UnifiedTopK(g, flos.NodeID(*q), opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("unified query %d, k=%d: %s, visited %d nodes, exact=%v\n",
			*q, *k, time.Since(start), res.Visited, res.Exact)
		fmt.Println("PHP / EI / DHT ranking:")
		for i, r := range res.PHPFamily {
			fmt.Printf("%3d. node %-10d php-score %.6g\n", i+1, r.Node, r.Score)
		}
		fmt.Println("RWR ranking:")
		for i, r := range res.RWR {
			fmt.Printf("%3d. node %-10d w·php-score %.6g\n", i+1, r.Node, r.Score)
		}
		if tc != nil {
			printTrace(tc.Iters)
		}
		return
	}

	start := time.Now()
	res, err := flos.TopK(g, flos.NodeID(*q), opt)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("query %d, measure %s, k=%d: %s, visited %d nodes (%.4f%%), %d iterations, exact=%v\n",
		*q, kind, *k, elapsed, res.Visited,
		100*float64(res.Visited)/float64(g.NumNodes()), res.Iterations, res.Exact)
	for i, r := range res.TopK {
		fmt.Printf("%3d. node %-10d score %.6g\n", i+1, r.Node, r.Score)
	}
	if tc != nil {
		printTrace(tc.Iters)
	}
	if *certify {
		start = time.Now()
		if err := flos.Certify(g, flos.NodeID(*q), res, kind, opt.Params, 1e-7); err != nil {
			fatal(err)
		}
		fmt.Printf("certified exact against global iteration in %s\n", time.Since(start))
	}
}

// printTrace renders the Tracer trajectory as a convergence table: one row
// per iteration with the visited/boundary sizes, the expansion batch, the
// two competing bound keys, and the certification gap that the stopping
// rule drives through zero (gap >= 0 on the final, certified row).
func printTrace(iters []flos.IterStats) {
	fmt.Println("convergence trace:")
	fmt.Printf("%5s %8s %8s %6s %5s %13s %13s %11s %5s %10s %9s %9s\n",
		"iter", "|S|", "bndry", "batch", "new", "kth-bound", "rest-bound", "gap", "cert",
		"expand-us", "solve-us", "cert-us")
	for _, it := range iters {
		kth, rest, gap := "-", "-", "-"
		if it.GapValid {
			kth = fmt.Sprintf("%.6g", it.KthBound)
			rest = fmt.Sprintf("%.6g", it.RestBound)
			gap = fmt.Sprintf("%+.4g", it.Gap)
		}
		cert := ""
		if it.Certified {
			cert = "yes"
		}
		fmt.Printf("%5d %8d %8d %6d %5d %13s %13s %11s %5s %10d %9d %9d\n",
			it.Iteration, it.Visited, it.Boundary, it.Batch, it.NewNodes,
			kth, rest, gap, cert,
			it.ExpandNS/1000, it.SolveNS/1000, it.CertifyNS/1000)
	}
}

func parseMeasure(s string) (flos.Measure, error) {
	switch strings.ToLower(s) {
	case "php":
		return flos.PHP, nil
	case "ei":
		return flos.EI, nil
	case "dht":
		return flos.DHT, nil
	case "tht":
		return flos.THT, nil
	case "rwr", "ppr":
		return flos.RWR, nil
	}
	return 0, fmt.Errorf("unknown measure %q (want php|ei|dht|tht|rwr)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flos:", err)
	os.Exit(1)
}
