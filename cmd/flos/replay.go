package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"flos/internal/obs"
)

// replayDump renders a flight-recorder dump — the JSON body of
// /debug/flos/slow or /debug/flos/flightrec, a bare record array, or a
// single record — as the same convergence tables a live `-trace` query
// prints, so a slow query captured in production can be studied offline
// without the graph.
func replayDump(path, id string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	records, err := decodeFlightDump(raw)
	if err != nil {
		return err
	}
	if id != "" {
		kept := records[:0]
		for _, rec := range records {
			if rec.ID == id {
				kept = append(kept, rec)
			}
		}
		if len(kept) == 0 {
			return fmt.Errorf("no record with id %q in %s", id, path)
		}
		records = kept
	}
	for i, rec := range records {
		if i > 0 {
			fmt.Println()
		}
		renderRecord(rec)
	}
	return nil
}

// decodeFlightDump accepts the three shapes a dump file can take.
func decodeFlightDump(raw []byte) ([]*obs.FlightRecord, error) {
	var dump struct {
		Records []*obs.FlightRecord `json:"records"`
	}
	if err := json.Unmarshal(raw, &dump); err == nil && len(dump.Records) > 0 {
		return dump.Records, nil
	}
	var list []*obs.FlightRecord
	if err := json.Unmarshal(raw, &list); err == nil && len(list) > 0 {
		return list, nil
	}
	var one obs.FlightRecord
	if err := json.Unmarshal(raw, &one); err == nil && one.ID != "" {
		return []*obs.FlightRecord{&one}, nil
	}
	return nil, fmt.Errorf("no flight records found (expected the JSON body of /debug/flos/slow or /debug/flos/flightrec)")
}

func renderRecord(rec *obs.FlightRecord) {
	kind := "topk"
	if rec.Unified {
		kind = "unified"
	}
	slow := ""
	if rec.Slow {
		slow = " [slow]"
	}
	fmt.Printf("record %s  %s%s\n", rec.ID, rec.Start.Format(time.RFC3339), slow)
	fmt.Printf("%s query %d, measure %s, k=%d, outcome %s: %s, visited %d nodes, %d iterations, %d sweeps, exact=%v\n",
		kind, rec.Query, rec.Measure, rec.K, rec.Outcome,
		time.Duration(rec.LatencyUS)*time.Microsecond,
		rec.Visited, rec.Iterations, rec.Sweeps, rec.Exact)
	if len(rec.Trace) == 0 {
		fmt.Println("(no trajectory recorded)")
		return
	}
	if rec.TraceTotal > len(rec.Trace) {
		fmt.Printf("(trajectory down-sampled: %d of %d iterations retained)\n",
			len(rec.Trace), rec.TraceTotal)
	}
	printTrace(rec.Trace)
}
