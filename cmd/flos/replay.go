package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"flos/internal/obs"
)

// replayDump renders a flight-recorder dump — the JSON body of
// /debug/flos/slow or /debug/flos/flightrec, a bare record array, or a
// single record — as the same convergence tables a live `-trace` query
// prints, so a slow query captured in production can be studied offline
// without the graph.
//
// Records from a live-graph server carry the snapshot epoch they ran
// against. asOfEpoch is the epoch to audit staleness against (e.g. the
// server's current epoch from /metrics); 0 selects the newest epoch in the
// dump. Records behind that epoch are flagged stale: their trajectories
// describe an older topology, so work counters and bound gaps may no longer
// reproduce on the current graph.
func replayDump(path, id string, asOfEpoch uint64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	records, err := decodeFlightDump(raw)
	if err != nil {
		return err
	}
	if id != "" {
		kept := records[:0]
		for _, rec := range records {
			if rec.ID == id {
				kept = append(kept, rec)
			}
		}
		if len(kept) == 0 {
			return fmt.Errorf("no record with id %q in %s", id, path)
		}
		records = kept
	}
	ref := asOfEpoch
	if ref == 0 {
		for _, rec := range records {
			if rec.Epoch > ref {
				ref = rec.Epoch
			}
		}
	}
	for i, rec := range records {
		if i > 0 {
			fmt.Println()
		}
		renderRecord(rec, ref)
	}
	reportStaleness(records, ref, asOfEpoch != 0)
	return nil
}

// reportStaleness summarizes cross-epoch staleness across the dump: how many
// records ran on snapshots older than the reference epoch.
func reportStaleness(records []*obs.FlightRecord, ref uint64, explicit bool) {
	if ref == 0 {
		return // no epochs recorded (pre-live dump or static graph)
	}
	stale, epoched := 0, 0
	for _, rec := range records {
		if rec.Epoch == 0 {
			continue
		}
		epoched++
		if rec.Epoch < ref {
			stale++
		}
	}
	if epoched == 0 {
		return
	}
	refDesc := "newest epoch in dump"
	if explicit {
		refDesc = "-replay-epoch"
	}
	fmt.Println()
	if stale == 0 {
		fmt.Printf("cross-epoch staleness: none — all %d epoch-tagged records ran on epoch %d (%s)\n",
			epoched, ref, refDesc)
		return
	}
	fmt.Printf("cross-epoch staleness: %d of %d epoch-tagged records predate epoch %d (%s); their trajectories describe an older graph topology\n",
		stale, epoched, ref, refDesc)
}

// decodeFlightDump accepts the three shapes a dump file can take.
func decodeFlightDump(raw []byte) ([]*obs.FlightRecord, error) {
	var dump struct {
		Records []*obs.FlightRecord `json:"records"`
	}
	if err := json.Unmarshal(raw, &dump); err == nil && len(dump.Records) > 0 {
		return dump.Records, nil
	}
	var list []*obs.FlightRecord
	if err := json.Unmarshal(raw, &list); err == nil && len(list) > 0 {
		return list, nil
	}
	var one obs.FlightRecord
	if err := json.Unmarshal(raw, &one); err == nil && one.ID != "" {
		return []*obs.FlightRecord{&one}, nil
	}
	return nil, fmt.Errorf("no flight records found (expected the JSON body of /debug/flos/slow or /debug/flos/flightrec)")
}

func renderRecord(rec *obs.FlightRecord, refEpoch uint64) {
	kind := "topk"
	if rec.Unified {
		kind = "unified"
	}
	slow := ""
	if rec.Slow {
		slow = " [slow]"
	}
	epoch := ""
	if rec.Epoch > 0 {
		epoch = fmt.Sprintf("  epoch %d", rec.Epoch)
		if rec.Epoch < refEpoch {
			epoch += " [stale]"
		}
	}
	fmt.Printf("record %s  %s%s%s\n", rec.ID, rec.Start.Format(time.RFC3339), epoch, slow)
	fmt.Printf("%s query %d, measure %s, k=%d, outcome %s: %s, visited %d nodes, %d iterations, %d sweeps, exact=%v\n",
		kind, rec.Query, rec.Measure, rec.K, rec.Outcome,
		time.Duration(rec.LatencyUS)*time.Microsecond,
		rec.Visited, rec.Iterations, rec.Sweeps, rec.Exact)
	if len(rec.PartialTopK) > 0 {
		fmt.Printf("partial top-%d in hand when the context fired (uncertified):\n", len(rec.PartialTopK))
		for i, rk := range rec.PartialTopK {
			fmt.Printf("  %2d. node %-10d score %.6g\n", i+1, rk.Node, rk.Score)
		}
	}
	if len(rec.Trace) == 0 {
		fmt.Println("(no trajectory recorded)")
		return
	}
	if rec.TraceTotal > len(rec.Trace) {
		fmt.Printf("(trajectory down-sampled: %d of %d iterations retained)\n",
			len(rec.Trace), rec.TraceTotal)
	}
	printTrace(rec.Trace)
}
