package main

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"flos/internal/core"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
)

// batchBench prints the cold-vs-warm allocation table for the session API:
// the same PHP top-20 workload answered by per-call core.TopK (every engine
// structure rebuilt per query) and by one core.Querier (pooled warm
// workspaces), plus the Querier.Batch fan-out at machine parallelism.
// Allocation figures come from runtime.MemStats deltas around each run, so
// the numbers line up with `go test -bench BenchmarkQuerierReuse -benchmem`
// (recorded in results/batch.md).
func batchBench(out io.Writer) error {
	const (
		nodes   = 50000
		edges   = 250000
		queries = 256
	)
	g, err := gen.Community(nodes, edges, gen.CommunityParamsForDensity(2*float64(edges)/float64(nodes)), 1)
	if err != nil {
		return err
	}
	workload := make([]graph.NodeID, queries)
	for i := range workload {
		workload[i] = graph.NodeID((i * 7919) % nodes)
	}
	opt := core.DefaultOptions(measure.PHP, 20)
	ctx := context.Background()

	measureRun := func(f func() error) (time.Duration, float64, float64, error) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := f(); err != nil {
			return 0, 0, 0, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		allocsPer := float64(after.Mallocs-before.Mallocs) / queries
		bytesPer := float64(after.TotalAlloc-before.TotalAlloc) / queries
		return elapsed, allocsPer, bytesPer, nil
	}

	qr, err := core.NewQuerier(g, opt)
	if err != nil {
		return err
	}
	// Prime the pooled workspace so the "warm" rows measure steady state.
	for _, q := range workload[:8] {
		if _, err := qr.TopK(ctx, q); err != nil {
			return err
		}
	}

	type row struct {
		name string
		run  func() error
	}
	rows := []row{
		{"cold TopK (per-call state)", func() error {
			for _, q := range workload {
				if _, err := core.TopK(g, q, opt); err != nil {
					return err
				}
			}
			return nil
		}},
		{"warm Querier.TopK (pooled workspace)", func() error {
			for _, q := range workload {
				if _, err := qr.TopK(ctx, q); err != nil {
					return err
				}
			}
			return nil
		}},
		{fmt.Sprintf("warm Querier.Batch (par=%d)", runtime.GOMAXPROCS(0)), func() error {
			for _, item := range qr.Batch(ctx, workload) {
				if item.Err != nil {
					return item.Err
				}
			}
			return nil
		}},
	}

	fmt.Fprintf(out, "session API cold vs warm: PHP top-20, community graph %d nodes / %d edges,\n", nodes, edges)
	fmt.Fprintf(out, "%d queries per row, GOMAXPROCS=%d\n", queries, runtime.GOMAXPROCS(0))
	fmt.Fprintf(out, "%-40s %12s %12s %14s\n", "configuration", "us/query", "allocs/query", "bytes/query")
	var coldAllocs float64
	for i, r := range rows {
		elapsed, allocs, bytes, err := measureRun(r.run)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-40s %12.1f %12.1f %14.0f\n",
			r.name, float64(elapsed.Microseconds())/queries, allocs, bytes)
		if i == 0 {
			coldAllocs = allocs
		} else if i == 1 && allocs > 0 {
			fmt.Fprintf(out, "%-40s %12s %11.1fx\n", "  allocation reduction", "", coldAllocs/allocs)
		}
	}
	return nil
}
