package main

// Shared machine-readable output for the BENCH_*.json artifacts: every
// benchmark body passes through writeBenchJSON, which stamps the execution
// environment before writing. The stamp is what makes a stored result
// interpretable after the fact — a parallel-kernel speedup measured with
// GOMAXPROCS=1 is a statement about scheduling overhead, not about the
// kernel — and what lets CI gates assert they ran on the hardware they
// think they did. Schema: results/README.md.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
)

// envStamp describes the environment a benchmark executed in.
func envStamp() map[string]any {
	return map[string]any{
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"num_cpu":    runtime.NumCPU(),
		"go_version": runtime.Version(),
		"goos":       runtime.GOOS,
		"goarch":     runtime.GOARCH,
	}
}

// writeBenchJSON stamps body with the environment and writes it, indented,
// to jsonPath, echoing the path to out like every benchmark's text report.
func writeBenchJSON(out io.Writer, jsonPath string, body map[string]any) error {
	body["env"] = envStamp()
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(body); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", jsonPath)
	return nil
}
