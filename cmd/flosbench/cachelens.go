package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"flos/internal/core"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
	"flos/internal/obs/cachelens"
	"flos/internal/qserve"
)

// cachelensBench measures the cache-analytics plane's hot-path cost: the same
// single-worker PHP top-20 workload served by a pool with a result-cache lens
// attached (production sampling rate, 1/64) versus without. The design is
// paired like recorderBench: each query node is timed back-to-back on both
// pools with the order alternating per round, and the headline number is the
// median of the per-pair overhead ratios. The result cache is enabled,
// deliberately smaller than the distinct-query set, and every query is asked
// twice back to back, so the lens sees the full mix it sees in production:
// hits (the unsampled fast path, from the immediate re-reference), misses
// (ghost probes — the cyclic scan of 400 distinct keys through 256 entries
// never re-hits under LRU), and a steady eviction stream into the ghost list.
func cachelensBench(out io.Writer, jsonPath string) error {
	const (
		nodes        = 50000
		edges        = 250000
		queries      = 400
		rounds       = 5
		cacheEntries = 256 // < queries: constant misses + evictions
	)
	g, err := gen.Community(nodes, edges, gen.CommunityParamsForDensity(2*float64(edges)/float64(nodes)), 1)
	if err != nil {
		return err
	}
	workload := make([]graph.NodeID, 0, 2*queries)
	for i := 0; i < queries; i++ {
		q := graph.NodeID((i * 7919) % nodes)
		workload = append(workload, q, q) // second ask is a cache hit
	}
	opt := core.DefaultOptions(measure.PHP, 20)
	ctx := context.Background()

	newPool := func(withLens bool) (*qserve.Pool, *cachelens.Lens) {
		cfg := qserve.Config{Workers: 1, CacheEntries: cacheEntries}
		var lens *cachelens.Lens
		if withLens {
			lens = cachelens.New(cachelens.Config{
				Capacity: cacheEntries,
				Seed:     1,
				// SampleRate 0 selects the production default (64).
			})
			cfg.CacheLens = lens
		}
		return qserve.New(g, cfg), lens
	}
	offPool, _ := newPool(false)
	onPool, lens := newPool(true)
	defer offPool.Close()
	defer onPool.Close()

	timeOne := func(p *qserve.Pool, q graph.NodeID) (time.Duration, error) {
		start := time.Now()
		if _, err := p.Do(ctx, qserve.Request{Query: q, Opt: opt}); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}

	// Warm both pools (workspace slices, cache population) outside the timing.
	for _, q := range workload {
		if _, err := timeOne(offPool, q); err != nil {
			return err
		}
		if _, err := timeOne(onPool, q); err != nil {
			return err
		}
	}

	var offLat, onLat []time.Duration
	var ratios []float64
	for r := 0; r < rounds; r++ {
		for _, q := range workload {
			first, second := offPool, onPool
			if r%2 == 1 { // alternate order: neither side always runs cache-cold
				first, second = second, first
			}
			d1, err := timeOne(first, q)
			if err != nil {
				return err
			}
			d2, err := timeOne(second, q)
			if err != nil {
				return err
			}
			off, on := d1, d2
			if r%2 == 1 {
				off, on = d2, d1
			}
			offLat = append(offLat, off)
			onLat = append(onLat, on)
			ratios = append(ratios, float64(on)/float64(off)-1)
		}
	}

	stats := func(ds []time.Duration) (p50, mean float64) {
		sorted := append([]time.Duration(nil), ds...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum time.Duration
		for _, d := range sorted {
			sum += d
		}
		return float64(sorted[len(sorted)/2].Microseconds()),
			float64(sum.Microseconds()) / float64(len(sorted))
	}
	offP50, offMean := stats(offLat)
	onP50, onMean := stats(onLat)
	sort.Float64s(ratios)
	medianOverhead := 100 * ratios[len(ratios)/2]
	meanOverhead := 100 * (onMean - offMean) / offMean

	snap := lens.Snapshot(5)
	m := onPool.Metrics()
	if snap.Accesses != m.CacheHits+m.CacheMisses {
		return fmt.Errorf("lens accesses %d != cache lookups %d", snap.Accesses, m.CacheHits+m.CacheMisses)
	}
	if snap.Ghost.Evictions == 0 {
		return fmt.Errorf("no evictions recorded: the workload did not stress the ghost list")
	}
	if m.CacheHits == 0 {
		return fmt.Errorf("no cache hits: the workload did not exercise the lens's fast path")
	}

	fmt.Fprintf(out, "cache-analytics overhead: PHP k=20, %d-node community graph, %d paired ops (%d distinct, each asked twice) x %d rounds, 1 worker, %d-entry cache, sample 1/%d\n",
		nodes, len(workload), queries, rounds, cacheEntries, snap.SampleRate)
	fmt.Fprintf(out, "%-14s %10s %10s\n", "", "p50-us", "mean-us")
	fmt.Fprintf(out, "%-14s %10.1f %10.1f\n", "lens off", offP50, offMean)
	fmt.Fprintf(out, "%-14s %10.1f %10.1f\n", "lens on", onP50, onMean)
	fmt.Fprintf(out, "paired median overhead %+.2f%%, mean %+.2f%%   (target: <= 2%% median)\n",
		medianOverhead, meanOverhead)
	fmt.Fprintf(out, "lens saw %d accesses (hit ratio %.3f), %d evictions, %d ghost would-have-hits; MRC 1x est %.3f\n",
		snap.Accesses, snap.HitRatio, snap.Ghost.Evictions, snap.Ghost.WouldHaveHits, curveAt(snap, 1))

	if jsonPath != "" {
		body := map[string]any{
			"bench":               "cachelens-overhead",
			"nodes":               nodes,
			"edges":               edges,
			"queries_per_round":   queries,
			"rounds":              rounds,
			"cache_entries":       cacheEntries,
			"sample_rate":         snap.SampleRate,
			"off_p50_us":          offP50,
			"on_p50_us":           onP50,
			"off_mean_us":         offMean,
			"on_mean_us":          onMean,
			"median_overhead_pct": medianOverhead,
			"mean_overhead_pct":   meanOverhead,
			"lens_accesses":       snap.Accesses,
			"lens_hit_ratio":      snap.HitRatio,
			"lens_evictions":      snap.Ghost.Evictions,
			"target_pct":          2.0,
		}
		if err := writeBenchJSON(out, jsonPath, body); err != nil {
			return err
		}
	}
	return nil
}

// curveAt reads the estimated hit ratio at one MRC scale (0 if absent).
func curveAt(s cachelens.Snapshot, scale float64) float64 {
	for _, p := range s.Curve {
		if p.Scale == scale {
			return p.EstHitRatio
		}
	}
	return 0
}
