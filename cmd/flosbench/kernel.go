package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"flos/internal/core"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
)

// kernelBench runs the paired bound-solver kernel benchmark behind
// BENCH_9.json: the same exact queries answered by the serial reference
// kernel, the partitioned parallel kernel, and the two-phase staged kernel,
// on the BENCH_8 workload — Erdős–Rényi G(100k, 1M) RWR with c = 0.6 and
// k = 20, where the exact search visits ~60k nodes at the median. That
// visited-set size is squarely past the parallel threshold, so this is the
// regime the kernel layer exists for; the same queries also run as THT
// (level-truncated hitting time), whose parallel level sweep is bit-identical
// to the serial pass by construction.
//
// Per query the serial run goes first and is the reference: parallel and
// staged must return the same top-k node set with matching Exact/Certified
// flags (THT additionally byte-identical scores), or the benchmark errors —
// a speedup over a wrong answer is not a speedup. The one tolerated
// disagreement is a tie flip at certification resolution: this workload is
// chosen precisely because near-uniform degrees leave candidates within a
// hair of the kth score, and Gauss–Seidel vs block-Jacobi iterates
// legitimately land at different points inside the solve-tolerance band
// (θ = τ/16), so a boundary node may swap with a competitor closer than
// the resolution a result itself certifies — its reported kth gap. The
// check: every disputed node's certified [lb, ub] interval must overlap
// every counterpart's within the larger of the two results' reported gaps.
// Both intervals enclose their true scores and a sound result's gap bounds
// its selection fuzziness, so a genuinely wrong selection — an invalid
// bound, a bad float32 write-back margin — detaches beyond its own claimed
// resolution and errors. Headline numbers are the median per-pair latency
// speedups serial/parallel and serial/staged for RWR and serial/parallel
// for THT.
//
// The speedup targets (RWR >= 3x, THT >= 1.8x) assume GOMAXPROCS >= 8; the
// CI gate holds the RWR parallel speedup at >= 2x on its 4-vCPU runners. On
// a single-core host the parallel kernel degrades to one worker and the
// honest expectation is ~1x (the env stamp in the JSON records which case a
// stored artifact measured).
func kernelBench(out io.Writer, jsonPath string) error {
	const (
		nodes   = 100000
		edges   = 1000000
		seed    = 7
		k       = 20
		c       = 0.6
		queries = 15
	)

	g, err := gen.Erdos(nodes, edges, seed)
	if err != nil {
		return err
	}
	lc := graph.LargestComponentNodes(g)

	newQuerier := func(kind measure.Kind, kern core.KernelKind) (*core.Querier, error) {
		opt := core.DefaultOptions(kind, k)
		if kind == measure.RWR {
			opt.Params.C = c
		}
		opt.Kernel = kern
		return core.NewQuerier(g, opt)
	}

	type pair struct {
		Query      graph.NodeID `json:"query"`
		Visited    int          `json:"visited"`
		SerialUS   int64        `json:"serial_us"`
		ParallelUS int64        `json:"parallel_us"`
		StagedUS   int64        `json:"staged_us,omitempty"`
		ParSpeedup float64      `json:"parallel_speedup"`
		StgSpeedup float64      `json:"staged_speedup,omitempty"`
	}

	// sameSetModuloTies reports whether two top-k results select the same
	// node set, tolerating boundary tie flips within certification
	// resolution: every node picked by one result but not the other must
	// have a certified [lb, ub] interval (from its own result's
	// certification block, falling back to a point interval at the score)
	// that overlaps the interval of every node disputed the other way,
	// slopped by the larger of the two results' reported kth gaps — the
	// resolution each result itself claims (for the RWR pairs compared here
	// the certification key is the displayed score, so gap and interval
	// scales agree) — plus the golden suite's ulp-scale term.
	slop := func(lo, hi float64) float64 {
		m := lo
		if hi > m {
			m = hi
		}
		if m < 0 {
			m = -m
		}
		return 1e-12 + 1e-9*m
	}
	type interval struct{ lo, hi float64 }
	sameSetModuloTies := func(a, b *core.Result) bool {
		if len(a.TopK) != len(b.TopK) {
			return false
		}
		intervalsIn := func(r *core.Result) map[graph.NodeID]interval {
			m := make(map[graph.NodeID]interval, len(r.TopK))
			for _, e := range r.TopK {
				m[e.Node] = interval{e.Score, e.Score}
			}
			for _, nb := range r.Certification.Bounds {
				m[nb.Node] = interval{nb.Lower, nb.Upper}
			}
			return m
		}
		am, bm := intervalsIn(a), intervalsIn(b)
		disputed := func(own, other map[graph.NodeID]interval) []interval {
			var d []interval
			for n, iv := range own {
				if _, ok := other[n]; !ok {
					d = append(d, iv)
				}
			}
			return d
		}
		da, db := disputed(am, bm), disputed(bm, am)
		if len(da) != len(db) {
			return false
		}
		gap := a.Certification.Gap
		if g := b.Certification.Gap; g > gap {
			gap = g
		}
		for _, x := range da {
			for _, y := range db {
				s := gap + slop(x.lo, x.hi) + slop(y.lo, y.hi)
				if x.lo > y.hi+s || y.lo > x.hi+s {
					return false
				}
			}
		}
		return true
	}

	ctx := context.Background()
	timeOne := func(q *core.Querier, node graph.NodeID) (*core.Result, int64, error) {
		start := time.Now()
		r, err := q.TopK(ctx, node)
		if err != nil {
			return nil, 0, err
		}
		return r, time.Since(start).Microseconds(), nil
	}

	med := func(v []float64) float64 {
		s := append([]float64(nil), v...)
		sort.Float64s(s)
		return s[len(s)/2]
	}

	// runKind answers the same query on every kernel variant, serial first,
	// checks each variant against the serial reference, and returns the
	// per-query pairs. staged=false skips the staged column (THT's staged
	// kernel falls back to the parallel level sweep, so the pair would
	// measure the parallel kernel twice).
	runKind := func(kind measure.Kind, staged bool, bitIdentical bool) ([]pair, error) {
		ser, err := newQuerier(kind, core.KernelSerial)
		if err != nil {
			return nil, err
		}
		par, err := newQuerier(kind, core.KernelParallel)
		if err != nil {
			return nil, err
		}
		var stg *core.Querier
		if staged {
			if stg, err = newQuerier(kind, core.KernelStaged); err != nil {
				return nil, err
			}
		}

		check := func(q graph.NodeID, label string, want, got *core.Result) error {
			if !sameSetModuloTies(want, got) {
				return fmt.Errorf("%s/%s kernel q=%d: top-k node set differs from serial beyond tie tolerance", kind, label, q)
			}
			if want.Exact != got.Exact || want.Certification.Certified != got.Certification.Certified {
				return fmt.Errorf("%s/%s kernel q=%d: exact/certified flags differ from serial", kind, label, q)
			}
			if bitIdentical {
				for i := range want.TopK {
					if want.TopK[i] != got.TopK[i] {
						return fmt.Errorf("%s/%s kernel q=%d: scores not bit-identical to serial at rank %d", kind, label, q, i)
					}
				}
			}
			return nil
		}

		pairs := make([]pair, 0, queries)
		for i := 0; i < queries; i++ {
			q := lc[(i*104729)%len(lc)]
			sr, sus, err := timeOne(ser, q)
			if err != nil {
				return nil, err
			}
			pr, pus, err := timeOne(par, q)
			if err != nil {
				return nil, err
			}
			if err := check(q, "parallel", sr, pr); err != nil {
				return nil, err
			}
			p := pair{
				Query:      q,
				Visited:    sr.Visited,
				SerialUS:   sus,
				ParallelUS: pus,
				ParSpeedup: float64(sus) / float64(max64(pus, 1)),
			}
			if staged {
				gr, gus, err := timeOne(stg, q)
				if err != nil {
					return nil, err
				}
				if err := check(q, "staged", sr, gr); err != nil {
					return nil, err
				}
				p.StagedUS = gus
				p.StgSpeedup = float64(sus) / float64(max64(gus, 1))
			}
			pairs = append(pairs, p)
		}
		return pairs, nil
	}

	fmt.Fprintf(out, "bound-solver kernels: serial vs parallel vs staged, exact RWR k=%d c=%g and THT k=%d on Erdős G(%d, %d), %d queries each\n",
		k, c, k, nodes, edges, queries)

	rwrPairs, err := runKind(measure.RWR, true, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-10s %10s %10s %10s %10s %9s %9s\n",
		"rwr-query", "visited", "serial-ms", "par-ms", "staged-ms", "par-x", "staged-x")
	var rwrPar, rwrStg []float64
	for _, p := range rwrPairs {
		rwrPar = append(rwrPar, p.ParSpeedup)
		rwrStg = append(rwrStg, p.StgSpeedup)
		fmt.Fprintf(out, "%-10d %10d %10.1f %10.1f %10.1f %8.2fx %8.2fx\n",
			p.Query, p.Visited, float64(p.SerialUS)/1e3, float64(p.ParallelUS)/1e3,
			float64(p.StagedUS)/1e3, p.ParSpeedup, p.StgSpeedup)
	}

	thtPairs, err := runKind(measure.THT, false, true)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-10s %10s %10s %10s %9s\n",
		"tht-query", "visited", "serial-ms", "par-ms", "par-x")
	var thtPar []float64
	for _, p := range thtPairs {
		thtPar = append(thtPar, p.ParSpeedup)
		fmt.Fprintf(out, "%-10d %10d %10.1f %10.1f %8.2fx\n",
			p.Query, p.Visited, float64(p.SerialUS)/1e3, float64(p.ParallelUS)/1e3, p.ParSpeedup)
	}

	medVisited := func(ps []pair) int {
		v := make([]int, len(ps))
		for i, p := range ps {
			v[i] = p.Visited
		}
		sort.Ints(v)
		return v[len(v)/2]
	}
	rwrParMed, rwrStgMed, thtParMed := med(rwrPar), med(rwrStg), med(thtPar)
	fmt.Fprintf(out, "median speedup: RWR parallel %.2fx (target >= 3x at GOMAXPROCS >= 8, CI gate >= 2x), RWR staged %.2fx, THT parallel %.2fx (target >= 1.8x)\n",
		rwrParMed, rwrStgMed, thtParMed)
	fmt.Fprintf(out, "median visited: RWR %d, THT %d; all kernel answers matched serial\n",
		medVisited(rwrPairs), medVisited(thtPairs))

	if jsonPath != "" {
		body := map[string]any{
			"bench":                     "bound-solver-kernels",
			"graph":                     fmt.Sprintf("erdos-%d-%d", nodes, edges),
			"k":                         k,
			"c":                         c,
			"queries":                   queries,
			"rwr_pairs":                 rwrPairs,
			"tht_pairs":                 thtPairs,
			"rwr_median_visited":        medVisited(rwrPairs),
			"tht_median_visited":        medVisited(thtPairs),
			"rwr_median_speedup":        rwrParMed,
			"rwr_staged_median_speedup": rwrStgMed,
			"tht_median_speedup":        thtParMed,
			"rwr_target_speedup":        3.0,
			"rwr_ci_gate_speedup":       2.0,
			"tht_target_speedup":        1.8,
		}
		if err := writeBenchJSON(out, jsonPath, body); err != nil {
			return err
		}
	}
	return nil
}
