package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"flos/internal/core"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/livegraph"
	"flos/internal/measure"
	"flos/internal/qserve"
)

// liveBench measures live-graph serving under mutation pressure: a pool of
// repeated queries against a community graph while a writer applies edge
// mutations confined to a small node block disconnected from the query
// traffic. Two invalidation policies serve the identical workload:
//
//   - full: every mutation batch is followed by BumpEpoch — the deprecated
//     wholesale flush, standing in for the pre-live "any write orphans the
//     whole cache" behavior;
//   - surgical: Mutate alone — each batch invalidates only the cached
//     results whose read footprint intersects the touched rows, carrying
//     everything else across the epoch.
//
// Because the mutations are localized away from every query's footprint,
// surgical invalidation retains essentially the whole cache at any mutation
// rate, while the full flush collapses the hit rate as soon as flushes
// outpace each key's revisit interval. The headline number is the hit-rate
// ratio at the highest mutation rate (target: >= 5x).
//
// Clients are paced (fixed arrival rate, not closed-loop): an unpaced client
// blocked on a slow miss issues few lookups while a hitting client issues
// millions, so the hit rate would be throughput-weighted and meaningless.
// With pacing each key is revisited on a fixed cadence and the hit rate
// measures what fraction of queries actually found their answer live.
func liveBench(out io.Writer, jsonPath string) error {
	const (
		nodes     = 20000
		edges     = 80000
		mutBlock  = 64 // extra nodes receiving all mutation traffic
		clients   = 4
		workers   = 4
		pairs     = 256 // distinct (query, measure) pairs in the hot set
		batchLen  = 4   // edge ops per mutation batch
		duration  = 2 * time.Second
		targetQPS = 2000 // paced aggregate arrival rate
	)
	rates := []int{0, 10, 100} // mutations per second

	base, err := buildLiveBase(nodes, edges, mutBlock)
	if err != nil {
		return err
	}
	lc := graph.LargestComponentNodes(base)
	kinds := []measure.Kind{measure.PHP, measure.EI, measure.DHT, measure.THT, measure.RWR}
	reqs := make([]qserve.Request, pairs)
	for i := range reqs {
		reqs[i] = qserve.Request{
			Query: lc[(i*7919)%len(lc)],
			Opt:   core.DefaultOptions(kinds[i%len(kinds)], 10),
		}
	}

	// One mutation batch: toggle the weight of batchLen ring edges inside the
	// mutation block. OpSet is always valid, so the writer never errors.
	mutation := func(step int) []livegraph.EdgeOp {
		ops := make([]livegraph.EdgeOp, batchLen)
		w := 1.0 + float64(step%2)
		for i := range ops {
			u := nodes + (step*batchLen+i)%mutBlock
			ops[i] = livegraph.EdgeOp{
				Op: livegraph.OpSet,
				U:  graph.NodeID(u),
				V:  graph.NodeID(nodes + (u-nodes+1)%mutBlock),
				W:  w,
			}
		}
		return ops
	}

	type scenario struct {
		Mode      string  `json:"mode"`
		MutPerSec int     `json:"mutations_per_sec"`
		Queries   int     `json:"queries"`
		QPS       float64 `json:"qps"`
		P50US     float64 `json:"p50_us"`
		P99US     float64 `json:"p99_us"`
		HitRate   float64 `json:"hit_rate"`
		Surgical  int64   `json:"invalidations_surgical"`
		Retained  int64   `json:"cache_retained"`
		Recertify int64   `json:"recertify_hits"`
		FullFlush int64   `json:"invalidations_full"`
		Mutations int64   `json:"mutations_applied"`
		Batches   int64   `json:"batches_applied"`
	}

	run := func(mode string, rate int) (scenario, error) {
		mg, err := buildLiveBase(nodes, edges, mutBlock)
		if err != nil {
			return scenario{}, err
		}
		lg := livegraph.New(mg)
		pool := qserve.New(lg, qserve.Config{
			Workers:      workers,
			QueueDepth:   4 * clients,
			CacheEntries: 4096,
		})
		defer pool.Close()
		ctx := context.Background()

		// Warm the cache (and the engine workspaces) outside the window.
		for _, r := range reqs {
			if _, err := pool.Do(ctx, r); err != nil {
				return scenario{}, err
			}
		}
		before := pool.Metrics()

		var (
			wg       sync.WaitGroup
			latMu    sync.Mutex
			lats     []time.Duration
			firstErr error
			errMu    sync.Mutex
		)
		fail := func(err error) {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
		}
		deadline := time.Now().Add(duration)
		stop := make(chan struct{})
		time.AfterFunc(duration, func() { close(stop) })

		if rate > 0 {
			interval := time.Duration(float64(batchLen) / float64(rate) * float64(time.Second))
			wg.Add(1)
			go func() {
				defer wg.Done()
				tick := time.NewTicker(interval)
				defer tick.Stop()
				for step := 0; ; step++ {
					select {
					case <-stop:
						return
					case <-tick.C:
					}
					if _, err := pool.Mutate(mutation(step)); err != nil {
						fail(err)
						return
					}
					if mode == "full" {
						pool.BumpEpoch()
					}
				}
			}()
		}

		pace := time.Duration(clients) * time.Second / targetQPS
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				var local []time.Duration
				for i := c; time.Now().Before(deadline); i += clients {
					start := time.Now()
					if _, err := pool.Do(ctx, reqs[i%len(reqs)]); err != nil {
						fail(err)
						return
					}
					elapsed := time.Since(start)
					local = append(local, elapsed)
					if d := pace - elapsed; d > 0 {
						time.Sleep(d)
					}
				}
				latMu.Lock()
				lats = append(lats, local...)
				latMu.Unlock()
			}(c)
		}
		wg.Wait()
		if firstErr != nil {
			return scenario{}, firstErr
		}

		after := pool.Metrics()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) float64 {
			if len(lats) == 0 {
				return 0
			}
			idx := int(p * float64(len(lats)-1))
			return float64(lats[idx].Microseconds())
		}
		hits := after.CacheHits - before.CacheHits
		misses := after.CacheMisses - before.CacheMisses
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		return scenario{
			Mode:      mode,
			MutPerSec: rate,
			Queries:   len(lats),
			QPS:       float64(len(lats)) / duration.Seconds(),
			P50US:     pct(0.50),
			P99US:     pct(0.99),
			HitRate:   hitRate,
			Surgical:  after.InvalidationsSurgical,
			Retained:  after.CacheRetained,
			Recertify: after.RecertifyHits,
			FullFlush: after.InvalidationsFull,
			Mutations: after.OpsApplied,
			Batches:   after.SnapshotsTotal - 1,
		}, nil
	}

	fmt.Fprintf(out, "live-graph serving: %d+%d nodes, %d edges, %d clients, %d workers,\n",
		nodes, mutBlock, edges, clients, workers)
	fmt.Fprintf(out, "%d-pair hot query set, mutations confined to a %d-node block (batches of %d), %s per scenario\n",
		pairs, mutBlock, batchLen, duration)
	fmt.Fprintf(out, "%-10s %8s %9s %9s %9s %9s %10s %10s %9s\n",
		"mode", "mut/s", "queries", "p50-us", "p99-us", "hit-rate", "surgical", "retained", "recert")

	var scenarios []scenario
	var surgicalHit, fullHit float64
	fullQueries := 1
	for _, mode := range []string{"full", "surgical"} {
		for _, rate := range rates {
			sc, err := run(mode, rate)
			if err != nil {
				return err
			}
			scenarios = append(scenarios, sc)
			fmt.Fprintf(out, "%-10s %8d %9d %9.0f %9.0f %8.1f%% %10d %10d %9d\n",
				sc.Mode, sc.MutPerSec, sc.Queries, sc.P50US, sc.P99US,
				100*sc.HitRate, sc.Surgical, sc.Retained, sc.Recertify)
			if rate == rates[len(rates)-1] {
				if mode == "surgical" {
					surgicalHit = sc.HitRate
				} else {
					fullHit = sc.HitRate
					fullQueries = sc.Queries
				}
			}
		}
	}

	// Clamp the denominator to one hit so a zero-hit full flush reports a
	// finite (still enormous) ratio instead of dividing by zero.
	fullFloor := fullHit
	if min := 1.0 / float64(fullQueries+1); fullFloor < min {
		fullFloor = min
	}
	ratio := surgicalHit / fullFloor
	fmt.Fprintf(out, "hit rate at %d mut/s: surgical %.1f%% vs full flush %.1f%% — %.1fx (target: >= 5x)\n",
		rates[len(rates)-1], 100*surgicalHit, 100*fullHit, ratio)

	if jsonPath != "" {
		body := map[string]any{
			"bench":             "live-serving",
			"nodes":             nodes + mutBlock,
			"edges":             edges,
			"clients":           clients,
			"workers":           workers,
			"hot_pairs":         pairs,
			"batch_len":         batchLen,
			"duration_sec":      duration.Seconds(),
			"scenarios":         scenarios,
			"surgical_hit_rate": surgicalHit,
			"full_hit_rate":     fullHit,
			"hit_rate_ratio":    ratio,
			"target_ratio":      5.0,
		}
		if err := writeBenchJSON(out, jsonPath, body); err != nil {
			return err
		}
	}
	return nil
}

// buildLiveBase is the benchmark graph: a community graph carrying the query
// traffic plus a small disconnected ring of block nodes that receives every
// mutation, so mutations are provably outside any query's read footprint.
func buildLiveBase(nodes int, edges int64, block int) (*graph.MemGraph, error) {
	cg, err := gen.Community(nodes, edges, gen.CommunityParamsForDensity(2*float64(edges)/float64(nodes)), 11)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(nodes + block)
	for u := 0; u < cg.NumNodes(); u++ {
		nbrs, wts := cg.Neighbors(graph.NodeID(u))
		for i, v := range nbrs {
			if graph.NodeID(u) < v {
				if err := b.AddEdge(graph.NodeID(u), v, wts[i]); err != nil {
					return nil, err
				}
			}
		}
	}
	for i := 0; i < block; i++ {
		if err := b.AddEdge(graph.NodeID(nodes+i), graph.NodeID(nodes+(i+1)%block), 1); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
