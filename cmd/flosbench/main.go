// Command flosbench regenerates the paper's figures and tables.
//
// Usage:
//
//	flosbench -fig 7            # Figure 7 (PHP vs k on real-graph stand-ins)
//	flosbench -fig 8            # Figure 8 (RWR vs k)
//	flosbench -fig 9            # Figure 9 (visited-node ratios)
//	flosbench -fig 10           # Figure 10 (THT vs k)
//	flosbench -fig 11           # Figure 11 (PHP on synthetic grids)
//	flosbench -fig 12           # Figure 12 (RWR on synthetic grids)
//	flosbench -fig 13           # Figure 13 (disk-resident stores)
//	flosbench -fig trace        # Figure 4 / Table 3 worked example
//	flosbench -fig all          # everything
//	flosbench -datasets         # Table 4/6/7 dataset statistics
//	flosbench -serving          # concurrent disk-resident serving throughput
//	flosbench -recorder         # flight-recorder on/off latency overhead
//	flosbench -trace-overhead   # span-tracing on/off latency overhead
//	flosbench -live             # live-graph serving: surgical vs full-flush invalidation
//	flosbench -modes            # serving modes: exact vs ε-certified paired RWR queries
//	flosbench -kernel           # bound-solver kernels: serial vs parallel vs staged paired queries
//	flosbench -cachelens        # cache-analytics lens on/off latency overhead
//
// Scales default to laptop-bench sizes; pass -scale 1 -synthscale 1
// -diskscale 1 -queries 1000 to run the paper's full configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"flos/internal/harness"
)

func main() {
	var (
		fig        = flag.String("fig", "", "figure to regenerate: 7, 8, 9, 10, 11, 12, 13, trace, all")
		datasets   = flag.Bool("datasets", false, "print dataset statistics tables")
		serving    = flag.Bool("serving", false, "benchmark concurrent vs serialized disk-resident query serving")
		batch      = flag.Bool("batch", false, "benchmark the session API: cold TopK vs warm Querier vs Batch (allocs/query)")
		recorder   = flag.Bool("recorder", false, "benchmark query latency with the flight recorder + SLO tracking on vs off")
		traceOver  = flag.Bool("trace-overhead", false, "benchmark query latency with span tracing on (head rate 1.0) vs off")
		liveMode   = flag.Bool("live", false, "benchmark live-graph serving: surgical vs full-flush cache invalidation under mutations")
		modes      = flag.Bool("modes", false, "benchmark serving modes: exact vs ε-certified paired RWR queries")
		kernels    = flag.Bool("kernel", false, "benchmark bound-solver kernels: serial vs parallel vs staged paired exact queries")
		lensOver   = flag.Bool("cachelens", false, "benchmark query latency with the cache-analytics lens on vs off")
		benchJSON  = flag.String("json", "", "with -recorder, -trace-overhead, -live, -modes, -kernel, or -cachelens: also write the machine-readable result (BENCH_5/7/6/8/9/10.json) to this file")
		profiles   = flag.Bool("profiles", false, "print stand-in structural fingerprints (clustering, diameter)")
		scale      = flag.Float64("scale", 0, "SNAP stand-in scale (default 1/8; 1 = paper size)")
		synthScale = flag.Float64("synthscale", 0, "Table 6 synthetic scale (default 1/16)")
		diskScale  = flag.Float64("diskscale", 0, "Table 7 disk scale (default 1/64)")
		queries    = flag.Int("queries", 0, "queries per dataset (default 20; paper uses 1000)")
		precision  = flag.Bool("precision", false, "score approximate methods against a GI oracle")
		seed       = flag.Uint64("seed", 1, "workload sampling seed")
		tmp        = flag.String("tmp", "", "directory for Figure 13 store files (default $TMPDIR)")
		csvDir     = flag.String("csv", "", "also write machine-readable <fig>.csv files into this directory")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	cfg := harness.DefaultFigureConfig()
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *synthScale > 0 {
		cfg.SynthScale = *synthScale
	}
	if *diskScale > 0 {
		cfg.DiskScale = *diskScale
	}
	if *queries > 0 {
		cfg.NumQueries = *queries
	}
	cfg.WithPrecision = *precision
	cfg.Seed = *seed
	cfg.TmpDir = *tmp
	cfg.CSVDir = *csvDir

	out := os.Stdout
	if *serving {
		if err := servingBench(out, *tmp); err != nil {
			fatal(err)
		}
		return
	}
	if *batch {
		if err := batchBench(out); err != nil {
			fatal(err)
		}
		return
	}
	if *recorder {
		if err := recorderBench(out, *benchJSON); err != nil {
			fatal(err)
		}
		return
	}
	if *traceOver {
		if err := traceOverheadBench(out, *benchJSON); err != nil {
			fatal(err)
		}
		return
	}
	if *liveMode {
		if err := liveBench(out, *benchJSON); err != nil {
			fatal(err)
		}
		return
	}
	if *modes {
		if err := modesBench(out, *benchJSON); err != nil {
			fatal(err)
		}
		return
	}
	if *kernels {
		if err := kernelBench(out, *benchJSON); err != nil {
			fatal(err)
		}
		return
	}
	if *lensOver {
		if err := cachelensBench(out, *benchJSON); err != nil {
			fatal(err)
		}
		return
	}
	if *datasets {
		if err := harness.Datasets(out, cfg); err != nil {
			fatal(err)
		}
		return
	}
	if *profiles {
		if err := harness.Profiles(out, cfg); err != nil {
			fatal(err)
		}
		return
	}
	if *fig == "" {
		flag.Usage()
		os.Exit(2)
	}

	run := func(name string, f func() error) {
		fmt.Fprintf(out, "### %s ###\n", name)
		if err := f(); err != nil {
			fatal(err)
		}
	}
	figures := map[string]func() error{
		"7":     func() error { return harness.Fig7(out, cfg) },
		"8":     func() error { return harness.Fig8(out, cfg) },
		"9":     func() error { return harness.Fig9(out, cfg) },
		"10":    func() error { return harness.Fig10(out, cfg) },
		"11":    func() error { return harness.Fig11(out, cfg) },
		"12":    func() error { return harness.Fig12(out, cfg) },
		"13":    func() error { return harness.Fig13(out, cfg) },
		"trace": func() error { return harness.FigTrace(out) },
	}
	if *fig == "all" {
		for _, name := range []string{"trace", "7", "8", "9", "10", "11", "12", "13"} {
			run("Figure "+name, figures[name])
		}
		return
	}
	f, ok := figures[*fig]
	if !ok {
		fatal(fmt.Errorf("unknown figure %q", *fig))
	}
	run("Figure "+*fig, f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flosbench:", err)
	os.Exit(1)
}
