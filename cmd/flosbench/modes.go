package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"flos/internal/core"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
)

// modesBench runs the exact-vs-ε paired benchmark behind BENCH_8.json: the
// same RWR queries answered in exact mode and in ε-certified mode (ε = 1e-3)
// on a workload tuned so the exact search visits ~60k nodes at the median.
//
// The graph is Erdős–Rényi G(100k, 1M) with c = 0.6 and k = 20: near-uniform
// degrees put dozens of candidates within a hair of the kth score, so the
// exact stopping rule keeps expanding until the unvisited-mass bound
// separates near-ties to machine precision, while the ε rule stops as soon
// as the kth lower bound is within ε of the best competing upper bound.
// That is precisely the regime the ε mode exists for — certified-error
// answers without paying the tie-breaking tail — and the paired run reports
// how much of the exact cost that tail actually is.
//
// Per query both runs share nothing (separate sessions), exact runs first,
// and the ε run's certification is checked: certified, achieved gap ≤ ε.
// Headline: median-latency speedup (target ≥ 2x) with every gap within
// budget.
func modesBench(out io.Writer, jsonPath string) error {
	const (
		nodes   = 100000
		edges   = 1000000
		seed    = 7
		k       = 20
		c       = 0.6
		epsilon = 1e-3
		queries = 15
	)

	g, err := gen.Erdos(nodes, edges, seed)
	if err != nil {
		return err
	}
	lc := graph.LargestComponentNodes(g)

	exOpt := core.DefaultOptions(measure.RWR, k)
	exOpt.Params.C = c
	epOpt := exOpt
	epOpt.Mode = core.ModeEpsilon
	epOpt.Epsilon = epsilon

	exQ, err := core.NewQuerier(g, exOpt)
	if err != nil {
		return err
	}
	epQ, err := core.NewQuerier(g, epOpt)
	if err != nil {
		return err
	}

	type pair struct {
		Query        graph.NodeID `json:"query"`
		ExactVisited int          `json:"exact_visited"`
		ExactIters   int          `json:"exact_iterations"`
		ExactUS      int64        `json:"exact_us"`
		EpsVisited   int          `json:"eps_visited"`
		EpsIters     int          `json:"eps_iterations"`
		EpsUS        int64        `json:"eps_us"`
		Gap          float64      `json:"gap"`
		Certified    bool         `json:"certified"`
		Speedup      float64      `json:"speedup"`
	}

	fmt.Fprintf(out, "serving modes: exact vs ε-certified (ε=%g), RWR k=%d c=%g on Erdős G(%d, %d), %d queries\n",
		epsilon, k, c, nodes, edges, queries)
	fmt.Fprintf(out, "%-10s %12s %10s %12s %10s %12s %10s\n",
		"query", "exact-vis", "exact-ms", "eps-vis", "eps-ms", "gap", "speedup")

	ctx := context.Background()
	pairs := make([]pair, 0, queries)
	gapsOK := true
	for i := 0; i < queries; i++ {
		q := lc[(i*104729)%len(lc)]
		start := time.Now()
		ex, err := exQ.TopK(ctx, q)
		if err != nil {
			return err
		}
		exUS := time.Since(start).Microseconds()
		start = time.Now()
		ep, err := epQ.TopK(ctx, q)
		if err != nil {
			return err
		}
		epUS := time.Since(start).Microseconds()
		cert := ep.Certification
		if !cert.Certified || cert.Gap > epsilon {
			gapsOK = false
		}
		p := pair{
			Query:        q,
			ExactVisited: ex.Visited,
			ExactIters:   ex.Iterations,
			ExactUS:      exUS,
			EpsVisited:   ep.Visited,
			EpsIters:     ep.Iterations,
			EpsUS:        epUS,
			Gap:          cert.Gap,
			Certified:    cert.Certified,
			Speedup:      float64(exUS) / float64(max64(epUS, 1)),
		}
		pairs = append(pairs, p)
		fmt.Fprintf(out, "%-10d %12d %10.1f %12d %10.1f %12.3e %9.1fx\n",
			q, p.ExactVisited, float64(exUS)/1e3, p.EpsVisited, float64(epUS)/1e3, p.Gap, p.Speedup)
	}

	medInt := func(sel func(pair) int) int {
		v := make([]int, len(pairs))
		for i, p := range pairs {
			v[i] = sel(p)
		}
		sort.Ints(v)
		return v[len(v)/2]
	}
	med64 := func(sel func(pair) int64) int64 {
		v := make([]int64, len(pairs))
		for i, p := range pairs {
			v[i] = sel(p)
		}
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		return v[len(v)/2]
	}
	exMedUS := med64(func(p pair) int64 { return p.ExactUS })
	epMedUS := med64(func(p pair) int64 { return p.EpsUS })
	speedup := float64(exMedUS) / float64(max64(epMedUS, 1))
	exMedVis := medInt(func(p pair) int { return p.ExactVisited })

	fmt.Fprintf(out, "median: exact %.1fms (visited %d) vs ε %.1fms — %.1fx (target: >= 2x); all gaps <= ε: %v\n",
		float64(exMedUS)/1e3, exMedVis, float64(epMedUS)/1e3, speedup, gapsOK)

	if jsonPath != "" {
		body := map[string]any{
			"bench":                  "serving-modes",
			"graph":                  fmt.Sprintf("erdos-%d-%d", nodes, edges),
			"measure":                "rwr",
			"k":                      k,
			"c":                      c,
			"epsilon":                epsilon,
			"queries":                queries,
			"pairs":                  pairs,
			"exact_median_us":        exMedUS,
			"eps_median_us":          epMedUS,
			"exact_median_visited":   exMedVis,
			"median_latency_speedup": speedup,
			"all_gaps_within_eps":    gapsOK,
			"target_speedup":         2.0,
		}
		if err := writeBenchJSON(out, jsonPath, body); err != nil {
			return err
		}
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
