package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"flos/internal/core"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
	"flos/internal/obs"
	"flos/internal/qserve"
)

// recorderBench measures the diagnostics plane's hot-path cost: the same
// single-worker PHP top-20 workload served by a pool with the flight
// recorder, histogram exemplars, and SLO tracking on versus off. The design
// is paired: each query node is timed back-to-back on both pools (order
// alternating per round), and the headline number is the median of the
// per-pair overhead ratios — pairing cancels the workload's heavy-tailed
// per-node cost variance, which would otherwise swamp a percent-level
// effect in unpaired medians. The result cache is disabled so every query
// pays the full execution (and thus recording) path.
func recorderBench(out io.Writer, jsonPath string) error {
	const (
		nodes   = 50000
		edges   = 250000
		queries = 400
		rounds  = 5
	)
	g, err := gen.Community(nodes, edges, gen.CommunityParamsForDensity(2*float64(edges)/float64(nodes)), 1)
	if err != nil {
		return err
	}
	workload := make([]graph.NodeID, queries)
	for i := range workload {
		workload[i] = graph.NodeID((i * 7919) % nodes)
	}
	opt := core.DefaultOptions(measure.PHP, 20)
	ctx := context.Background()

	newPool := func(diag bool) *qserve.Pool {
		cfg := qserve.Config{Workers: 1, CacheEntries: -1}
		if diag {
			cfg.Recorder = obs.NewFlightRecorder(obs.RecorderConfig{})
			cfg.SLO = obs.NewSLOTracker(obs.SLOConfig{})
		}
		return qserve.New(g, cfg)
	}
	offPool, onPool := newPool(false), newPool(true)
	defer offPool.Close()
	defer onPool.Close()

	timeOne := func(p *qserve.Pool, q graph.NodeID) (time.Duration, error) {
		start := time.Now()
		if _, err := p.Do(ctx, qserve.Request{Query: q, Opt: opt}); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}

	// Warm both pools (workspace slices, graph views) outside the timing.
	for _, q := range workload {
		if _, err := timeOne(offPool, q); err != nil {
			return err
		}
		if _, err := timeOne(onPool, q); err != nil {
			return err
		}
	}

	var offLat, onLat []time.Duration
	var ratios []float64
	for r := 0; r < rounds; r++ {
		for _, q := range workload {
			first, second := offPool, onPool
			if r%2 == 1 { // alternate order: neither side always runs cache-cold
				first, second = second, first
			}
			d1, err := timeOne(first, q)
			if err != nil {
				return err
			}
			d2, err := timeOne(second, q)
			if err != nil {
				return err
			}
			off, on := d1, d2
			if r%2 == 1 {
				off, on = d2, d1
			}
			offLat = append(offLat, off)
			onLat = append(onLat, on)
			ratios = append(ratios, float64(on)/float64(off)-1)
		}
	}

	stats := func(ds []time.Duration) (p50, mean float64) {
		sorted := append([]time.Duration(nil), ds...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum time.Duration
		for _, d := range sorted {
			sum += d
		}
		return float64(sorted[len(sorted)/2].Microseconds()),
			float64(sum.Microseconds()) / float64(len(sorted))
	}
	offP50, offMean := stats(offLat)
	onP50, onMean := stats(onLat)
	sort.Float64s(ratios)
	medianOverhead := 100 * ratios[len(ratios)/2]
	meanOverhead := 100 * (onMean - offMean) / offMean

	fmt.Fprintf(out, "flight-recorder overhead: PHP k=20, %d-node community graph, %d paired queries x %d rounds, 1 worker, cache off\n",
		nodes, queries, rounds)
	fmt.Fprintf(out, "%-14s %10s %10s\n", "", "p50-us", "mean-us")
	fmt.Fprintf(out, "%-14s %10.1f %10.1f\n", "recorder off", offP50, offMean)
	fmt.Fprintf(out, "%-14s %10.1f %10.1f\n", "recorder on", onP50, onMean)
	fmt.Fprintf(out, "paired median overhead %+.2f%%, mean %+.2f%%   (target: <= 2%% median)\n",
		medianOverhead, meanOverhead)

	if rec := onPool.Metrics(); rec.OK != int64((rounds+1)*queries) {
		return fmt.Errorf("recorder-on pool executed %d queries, want %d", rec.OK, (rounds+1)*queries)
	}

	if jsonPath != "" {
		body := map[string]any{
			"bench":               "flight-recorder-overhead",
			"nodes":               nodes,
			"edges":               edges,
			"queries_per_round":   queries,
			"rounds":              rounds,
			"off_p50_us":          offP50,
			"on_p50_us":           onP50,
			"off_mean_us":         offMean,
			"on_mean_us":          onMean,
			"median_overhead_pct": medianOverhead,
			"mean_overhead_pct":   meanOverhead,
			"target_pct":          2.0,
		}
		if err := writeBenchJSON(out, jsonPath, body); err != nil {
			return err
		}
	}
	return nil
}
