package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"flos/internal/core"
	"flos/internal/diskgraph"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
	"flos/internal/qserve"
)

// servingBench measures query throughput against one disk-resident store
// under concurrent clients, comparing three configurations over the same
// workload:
//
//  1. the seed's serialized path — a one-worker pool with no result cache,
//     equivalent to the old global-mutex server;
//  2. the qserve pool sized to the machine with the result cache disabled —
//     isolating the concurrency win of the lock-striped page cache (this
//     row scales with GOMAXPROCS);
//  3. the full qserve stack, workers + result cache.
//
// The workload is skewed the way serving traffic is: a hot set of repeated
// queries plus a distinct tail. The engine is deterministic, so cached and
// recomputed answers are identical — rows differ in cost, never content.
func servingBench(out io.Writer, tmpDir string) error {
	const (
		nodes    = 20000
		edges    = 80000
		clients  = 8
		queries  = 240
		hotPairs = 12 // distinct (query, measure) pairs receiving repeat traffic
		hotShare = 4  // 3 of every hotShare queries go to the hot set
	)
	g, err := gen.Community(nodes, edges, gen.CommunityParamsForDensity(2*float64(edges)/float64(nodes)), 7)
	if err != nil {
		return err
	}
	if tmpDir == "" {
		tmpDir = os.TempDir()
	}
	dir, err := os.MkdirTemp(tmpDir, "flos-serving-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "graph.flos")
	if err := diskgraph.Create(path, g, 8192); err != nil {
		return err
	}
	store, err := diskgraph.Open(path, 4<<20) // 4 MiB: real paging pressure
	if err != nil {
		return err
	}
	defer store.Close()

	lc := graph.LargestComponentNodes(g)
	kinds := []measure.Kind{measure.PHP, measure.EI, measure.DHT, measure.THT, measure.RWR}
	pair := func(i int) qserve.Request {
		return qserve.Request{
			Query: lc[(i*7919)%len(lc)],
			Opt:   core.DefaultOptions(kinds[i%len(kinds)], 10),
		}
	}
	reqs := make([]qserve.Request, queries)
	for i := range reqs {
		if i%hotShare != 0 {
			reqs[i] = pair(i % hotPairs) // hot set
		} else {
			reqs[i] = pair(hotPairs + i) // distinct tail
		}
	}

	run := func(workers, cacheEntries int) (time.Duration, error) {
		pool := qserve.New(store, qserve.Config{
			Workers:      workers,
			QueueDepth:   queries, // no shedding: this measures execution
			CacheEntries: cacheEntries,
		})
		defer pool.Close()
		var (
			wg       sync.WaitGroup
			firstErr error
			errMu    sync.Mutex
		)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := c; i < queries; i += clients {
					if _, err := pool.Do(context.Background(), reqs[i]); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}(c)
		}
		wg.Wait()
		return time.Since(start), firstErr
	}

	fmt.Fprintf(out, "disk-resident serving throughput: %d nodes, %d edges, %d concurrent clients,\n", nodes, edges, clients)
	fmt.Fprintf(out, "%d mixed-measure queries (%d%% hot-set repeats over %d pairs), GOMAXPROCS=%d\n",
		queries, 100*(hotShare-1)/hotShare, hotPairs, runtime.GOMAXPROCS(0))

	type row struct {
		name    string
		workers int
		cache   int
	}
	rows := []row{
		{"serialized seed (1 worker, no cache)", 1, -1},
		{fmt.Sprintf("qserve %d workers, no cache", runtime.GOMAXPROCS(0)), 0, -1},
		{fmt.Sprintf("qserve %d workers + result cache", runtime.GOMAXPROCS(0)), 0, 1024},
	}
	var baseQPS float64
	fmt.Fprintf(out, "%-40s %10s %10s %8s\n", "configuration", "elapsed", "qps", "speedup")
	for i, r := range rows {
		elapsed, err := run(r.workers, r.cache)
		if err != nil {
			return err
		}
		qps := float64(queries) / elapsed.Seconds()
		if i == 0 {
			baseQPS = qps
		}
		fmt.Fprintf(out, "%-40s %10s %10.1f %7.2fx\n",
			r.name, elapsed.Round(time.Millisecond), qps, qps/baseQPS)
	}
	st := store.CacheStats()
	fmt.Fprintf(out, "page cache: %d hits, %d faults, %d deduped, %d shards\n",
		st.Hits, st.Misses, st.FaultsDeduped, st.Shards)
	return nil
}
