package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"flos/internal/core"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
	"flos/internal/obs/trace"
	"flos/internal/qserve"
)

// traceOverheadBench measures the span-tracing hot-path cost with the same
// paired design as recorderBench: one single-worker PHP top-20 pool, each
// query node timed back-to-back untraced and under a fully-sampled trace
// (HeadRate 1 — worst case: every span recorded AND retained, ring stores
// and exporter-free), order alternating per round, headline = median of the
// per-pair overhead ratios. The result cache is off so every query pays the
// full execution (and thus span-recording) path.
func traceOverheadBench(out io.Writer, jsonPath string) error {
	const (
		nodes   = 50000
		edges   = 250000
		queries = 400
		rounds  = 5
	)
	g, err := gen.Community(nodes, edges, gen.CommunityParamsForDensity(2*float64(edges)/float64(nodes)), 1)
	if err != nil {
		return err
	}
	workload := make([]graph.NodeID, queries)
	for i := range workload {
		workload[i] = graph.NodeID((i * 7919) % nodes)
	}
	opt := core.DefaultOptions(measure.PHP, 20)
	ctx := context.Background()

	// Two identical pools: the tracing cost lives entirely in the request
	// context, so the pools differ only in how each query is driven.
	newPool := func() *qserve.Pool {
		return qserve.New(g, qserve.Config{Workers: 1, CacheEntries: -1})
	}
	offPool, onPool := newPool(), newPool()
	defer offPool.Close()
	defer onPool.Close()
	tracer := trace.New(trace.Config{HeadRate: trace.HeadAll, Ring: 64, SlowLatency: -1})

	timeOff := func(q graph.NodeID) (time.Duration, error) {
		start := time.Now()
		if _, err := offPool.Do(ctx, qserve.Request{Query: q, Opt: opt}); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	timeOn := func(q graph.NodeID) (time.Duration, error) {
		start := time.Now()
		a := tracer.StartRequest(trace.TraceParent{})
		root := a.StartSpan(trace.SpanID{}, "GET /topk")
		root.SetKind("server")
		tctx := trace.NewContext(ctx, a, root.ID())
		if _, err := onPool.Do(tctx, qserve.Request{Query: q, Opt: opt}); err != nil {
			return 0, err
		}
		root.End()
		a.Finish("ok")
		return time.Since(start), nil
	}

	// Warm both pools (workspace slices, graph views) outside the timing.
	for _, q := range workload {
		if _, err := timeOff(q); err != nil {
			return err
		}
		if _, err := timeOn(q); err != nil {
			return err
		}
	}

	var offLat, onLat []time.Duration
	var ratios []float64
	for r := 0; r < rounds; r++ {
		for _, q := range workload {
			var off, on time.Duration
			var err error
			if r%2 == 0 {
				if off, err = timeOff(q); err != nil {
					return err
				}
				if on, err = timeOn(q); err != nil {
					return err
				}
			} else { // alternate order: neither side always runs cache-cold
				if on, err = timeOn(q); err != nil {
					return err
				}
				if off, err = timeOff(q); err != nil {
					return err
				}
			}
			offLat = append(offLat, off)
			onLat = append(onLat, on)
			ratios = append(ratios, float64(on)/float64(off)-1)
		}
	}

	stats := func(ds []time.Duration) (p50, mean float64) {
		sorted := append([]time.Duration(nil), ds...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum time.Duration
		for _, d := range sorted {
			sum += d
		}
		return float64(sorted[len(sorted)/2].Microseconds()),
			float64(sum.Microseconds()) / float64(len(sorted))
	}
	offP50, offMean := stats(offLat)
	onP50, onMean := stats(onLat)
	sort.Float64s(ratios)
	medianOverhead := 100 * ratios[len(ratios)/2]
	meanOverhead := 100 * (onMean - offMean) / offMean

	fmt.Fprintf(out, "span-tracing overhead: PHP k=20, %d-node community graph, %d paired queries x %d rounds, 1 worker, cache off, head rate 1.0\n",
		nodes, queries, rounds)
	fmt.Fprintf(out, "%-14s %10s %10s\n", "", "p50-us", "mean-us")
	fmt.Fprintf(out, "%-14s %10.1f %10.1f\n", "tracing off", offP50, offMean)
	fmt.Fprintf(out, "%-14s %10.1f %10.1f\n", "tracing on", onP50, onMean)
	fmt.Fprintf(out, "paired median overhead %+.2f%%, mean %+.2f%%   (target: <= 2%% median)\n",
		medianOverhead, meanOverhead)

	st := tracer.Stats()
	if want := uint64((rounds + 1) * queries); st.KeptHead != want {
		return fmt.Errorf("tracer kept %d traces, want %d — the traced side did not trace", st.KeptHead, want)
	}

	if jsonPath != "" {
		body := map[string]any{
			"bench":               "span-tracing-overhead",
			"nodes":               nodes,
			"edges":               edges,
			"queries_per_round":   queries,
			"rounds":              rounds,
			"head_rate":           1.0,
			"off_p50_us":          offP50,
			"on_p50_us":           onP50,
			"off_mean_us":         offMean,
			"on_mean_us":          onMean,
			"median_overhead_pct": medianOverhead,
			"mean_overhead_pct":   meanOverhead,
			"target_pct":          2.0,
		}
		if err := writeBenchJSON(out, jsonPath, body); err != nil {
			return err
		}
	}
	return nil
}
