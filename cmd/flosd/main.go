// Command flosd serves exact FLoS kNN queries over HTTP.
//
// Usage:
//
//	flosd -bin graph.bin -addr :8080
//	flosd -store big.flos -pagecache 256 -addr :8080
//	flosd -bin graph.bin -workers 16 -queue 128 -cache 4096 -timeout 2s
//	flosd -bin graph.bin -log-level debug -pprof :6060
//	flosd -bin graph.bin -live               # accept POST /graph/edges
//
//	curl 'localhost:8080/topk?q=42&k=10&measure=rwr'
//	curl 'localhost:8080/topk?q=42&k=10&measure=rwr&trace=1'
//	curl 'localhost:8080/unified?q=42&k=10'
//	curl 'localhost:8080/stats'
//	curl 'localhost:8080/metrics'              # Prometheus text
//	curl 'localhost:8080/metrics?format=json'
//
// Queries run on a bounded worker pool (internal/qserve): -workers sets its
// size, -queue the admission queue that sheds overload with 429, -cache the
// result-cache capacity, and -timeout the per-query deadline. Disk-resident
// stores are served concurrently through the lock-striped page cache.
//
// -live wraps an in-memory graph (-graph or -bin) in a live-graph snapshot
// chain: POST /graph/edges applies atomic mutation batches while queries
// keep running against their pinned snapshots, and the result cache is
// invalidated surgically (see internal/livegraph).
//
// The diagnostics plane is on by default: a flight recorder keeps the last
// -flightrec completed queries (outcome, latency, work counters, and a
// down-sampled convergence trajectory) and promotes queries over
// -slow-latency (or visiting more than -slow-visited nodes) into a retained
// slow-query log at /debug/flos/slow — dump that to a file and replay it
// offline with `flos -replay`. /debug/flos/slo reports rolling 5m/1h
// availability and latency burn rates against -slo-availability /
// -slo-latency-objective. -profile-dir enables continuous profiling:
// periodic CPU/heap pprof captures with bounded rotation, tagged -slow when
// the capture window overlapped a slow query.
//
// Span tracing is on by default (-trace-ring 0 disables): every request runs
// under a root span with per-phase children, W3C traceparent headers are
// honored and echoed, and a trace is kept when the head sampler
// (-trace-sample) selects it or when it ends slow/shed/deadline/failed —
// so the p99 outlier is always retrievable as a span tree from
// /debug/flos/traces even at -trace-sample 0. The slow threshold is shared
// with -slow-latency. -trace-export appends every kept trace to a file as
// OTLP-shaped JSON lines for offline tooling.
//
// Cache analytics are on by default (-cachelens 0 disables): the page cache
// (-store) and the result cache each get a lens maintaining online miss-ratio
// curves at 0.25x..4x capacity via SHARDS-style sampling (-cachelens-sample
// sets the 1-in-N rate), a ghost list measuring would-have-hits at ~2x, decayed
// hot/cold block heat, and 1m/10m working-set estimates — exported as
// flos_pagecache_* / flos_result_cache_* gauges and GET /debug/flos/cache
// (render a saved snapshot offline with `flos -cachereport`).
//
// Logs are structured (log/slog, text to stderr): one access record per
// request with its ID, status, and latency, plus per-query debug records at
// -log-level debug. -pprof exposes net/http/pprof on a separate listener so
// profiling never shares the query port.
package main

import (
	"flag"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"flos"
	"flos/internal/obs"
	"flos/internal/obs/cachelens"
	"flos/internal/obs/trace"
	"flos/internal/server"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "text edge-list file")
		binPath   = flag.String("bin", "", "binary CSR graph file")
		storePath = flag.String("store", "", "disk-resident store file")
		pageCache = flag.Int64("pagecache", 256, "page-cache budget for -store, MiB")
		addr      = flag.String("addr", ":8080", "listen address")
		maxK      = flag.Int("maxk", 1000, "largest accepted k")
		maxBatch  = flag.Int("maxbatch", 0, "largest accepted /topk/batch query count (0 = 256)")
		workers   = flag.Int("workers", 0, "query worker count (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "admission queue depth; excess requests get 429 (0 = 4x workers)")
		cache     = flag.Int("cache", 0, "result-cache entries (0 = 1024, negative disables)")
		timeout   = flag.Duration("timeout", 0, "per-query deadline, e.g. 500ms or 2s (0 = none)")
		maxEps    = flag.Float64("max-epsilon", 0, "largest accepted /v1 epsilon budget (0 = 1.0, negative disables epsilon mode)")
		maxDL     = flag.Duration("max-deadline", 0, "cap on client-requested /v1 deadlines; longer ones are clamped (0 = 30s)")
		live      = flag.Bool("live", false, "serve a mutable live graph: accept POST /graph/edges (requires -graph or -bin)")
		logLevel  = flag.String("log-level", "info", "log level: debug | info | warn | error")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060); empty disables")

		flightRec   = flag.Int("flightrec", 256, "flight-recorder ring size (0 disables the diagnostics plane)")
		slowLatency = flag.Duration("slow-latency", 250*time.Millisecond, "promote queries over this latency into the slow-query log (negative disables)")
		slowVisited = flag.Int("slow-visited", 0, "promote queries visiting more than this many nodes (0 disables)")
		slowKeep    = flag.Int("slow-keep", 64, "retained slow-query log entries")
		sloLatency  = flag.Duration("slo-latency", 100*time.Millisecond, "latency SLO threshold")
		sloAvail    = flag.Float64("slo-availability", 0.999, "availability objective (fraction of non-canceled queries that must succeed)")
		sloLatObj   = flag.Float64("slo-latency-objective", 0.99, "latency objective (fraction of successes under -slo-latency)")

		profileDir      = flag.String("profile-dir", "", "directory for continuous CPU/heap profiles; empty disables")
		profileInterval = flag.Duration("profile-interval", time.Minute, "continuous-profiling capture interval")
		profileKeep     = flag.Int("profile-keep", 10, "profiles retained per kind before rotation")

		traceRing   = flag.Int("trace-ring", 256, "completed-trace ring size (0 disables span tracing)")
		traceSample = flag.Float64("trace-sample", 1.0, "head-sampling rate in [0,1]; slow/shed/deadline/failed traces are kept regardless")
		traceExport = flag.String("trace-export", "", "append kept traces to this file as OTLP-shaped JSON lines; empty disables")

		lensOn     = flag.Bool("cachelens", true, "cache analytics: miss-ratio curves, ghost lists, working-set windows, heatmaps on the page and result caches (GET /debug/flos/cache)")
		lensSample = flag.Int("cachelens-sample", 64, "cache-analytics spatial sampling rate: 1 key in N tracked (1 = exact, higher = cheaper)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{
		Level: obs.ParseLogLevel(*logLevel),
	}))
	slog.SetDefault(logger)

	var g flos.Graph
	var store *flos.DiskGraph
	start := time.Now()
	switch {
	case *graphPath != "":
		mg, err := flos.LoadEdgeList(*graphPath)
		if err != nil {
			fatal(logger, "load edge list", err)
		}
		g = mg
	case *binPath != "":
		mg, err := flos.LoadBinary(*binPath)
		if err != nil {
			fatal(logger, "load binary graph", err)
		}
		g = mg
	case *storePath != "":
		dg, err := flos.OpenDiskGraph(*storePath, *pageCache<<20)
		if err != nil {
			fatal(logger, "open disk store", err)
		}
		defer dg.Close()
		g, store = dg, dg
	default:
		logger.Error("one of -graph, -bin, -store is required")
		os.Exit(1)
	}
	if *live {
		mg, ok := g.(*flos.MemGraph)
		if !ok {
			logger.Error("-live requires an in-memory graph (-graph or -bin); disk stores are immutable")
			os.Exit(1)
		}
		g = flos.NewLiveGraph(mg)
	}
	logger.Info("graph loaded",
		"nodes", g.NumNodes(), "edges", g.NumEdges(), "live", *live, "elapsed", time.Since(start))

	if *pprofAddr != "" {
		// The pprof import registers on http.DefaultServeMux; serve that mux
		// on its own listener so profiling stays off the query port.
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	// Diagnostics plane: flight recorder + SLO tracker, shared between the
	// serving pool (which records into them) and the HTTP layer (which
	// serves /debug/flos/* and the flos_slo_* gauges from them).
	var rec *obs.FlightRecorder
	var slo *obs.SLOTracker
	if *flightRec > 0 {
		rec = obs.NewFlightRecorder(obs.RecorderConfig{
			Size:        *flightRec,
			SlowLatency: *slowLatency,
			SlowVisited: *slowVisited,
			SlowKeep:    *slowKeep,
		})
		slo = obs.NewSLOTracker(obs.SLOConfig{
			AvailabilityObjective: *sloAvail,
			LatencyObjective:      *sloLatObj,
			LatencyThreshold:      *sloLatency,
		})
	}
	if *profileDir != "" {
		pcfg := obs.ProfilerConfig{
			Dir:      *profileDir,
			Interval: *profileInterval,
			Keep:     *profileKeep,
			Logger:   logger,
		}
		if rec != nil {
			// Tag profile windows that overlapped a slow query, so the
			// capture to pull for a latency regression is obvious.
			pcfg.SlowSince = rec.SlowSince
		}
		prof, err := obs.StartProfiler(pcfg)
		if err != nil {
			fatal(logger, "start continuous profiler", err)
		}
		defer prof.Stop()
		logger.Info("continuous profiling",
			"dir", *profileDir, "interval", *profileInterval, "keep", *profileKeep)
	}

	// Span tracing: the tail-promotion latency threshold deliberately reuses
	// -slow-latency, so the slow-query log and the trace store promote the
	// same requests.
	var tracer *trace.Tracer
	if *traceRing > 0 {
		tcfg := trace.Config{
			HeadRate:    *traceSample,
			Ring:        *traceRing,
			SlowLatency: *slowLatency,
		}
		if *traceExport != "" {
			exp, err := trace.NewFileExporter(*traceExport, "flosd")
			if err != nil {
				fatal(logger, "open trace export file", err)
			}
			defer exp.Close()
			tcfg.Exporter = exp
		}
		tracer = trace.New(tcfg)
		logger.Info("span tracing",
			"ring", *traceRing, "head_rate", *traceSample, "export", *traceExport)
	}

	// Cache analytics: attach a lens to the page cache (disk stores) and the
	// result cache before any traffic flows. A 10s tick drives heat decay and
	// the working-set windows.
	var resultLens *cachelens.Lens
	if *lensOn {
		const lensTick = 10 * time.Second
		if store != nil {
			pageLens := store.AttachLens(cachelens.Config{
				SampleRate: *lensSample,
				TickEvery:  lensTick,
			})
			defer pageLens.Close()
		}
		if *cache >= 0 {
			entries := *cache
			if entries == 0 {
				entries = 1024 // the pool's own default
			}
			resultLens = cachelens.New(cachelens.Config{
				Capacity:   entries,
				SampleRate: *lensSample,
				TickEvery:  lensTick,
			})
			defer resultLens.Close()
		}
		logger.Info("cache analytics",
			"sample_rate", *lensSample, "page_lens", store != nil, "result_lens", resultLens != nil)
	}

	srv := server.New(g, server.Config{
		MaxK:         *maxK,
		MaxBatch:     *maxBatch,
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		Timeout:      *timeout,
		MaxEpsilon:   *maxEps,
		MaxDeadline:  *maxDL,
		Logger:       logger,
		Recorder:     rec,
		SLO:          slo,
		Tracer:       tracer,
		CacheLens:    resultLens,
	})
	defer srv.Close()
	m := srv.Pool().Metrics()
	logger.Info("serving",
		"addr", *addr, "workers", m.Workers, "queue_cap", m.QueueCap,
		"cache_entries", *cache, "timeout", *timeout)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(logger, "listener failed", err)
	}
}

func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "err", err)
	os.Exit(1)
}
