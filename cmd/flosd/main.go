// Command flosd serves exact FLoS kNN queries over HTTP.
//
// Usage:
//
//	flosd -bin graph.bin -addr :8080
//	flosd -store big.flos -pagecache 256 -addr :8080
//	flosd -bin graph.bin -workers 16 -queue 128 -cache 4096 -timeout 2s
//
//	curl 'localhost:8080/topk?q=42&k=10&measure=rwr'
//	curl 'localhost:8080/unified?q=42&k=10'
//	curl 'localhost:8080/stats'
//	curl 'localhost:8080/metrics'
//
// Queries run on a bounded worker pool (internal/qserve): -workers sets its
// size, -queue the admission queue that sheds overload with 429, -cache the
// result-cache capacity, and -timeout the per-query deadline. Disk-resident
// stores are served concurrently through the lock-striped page cache.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"flos"
	"flos/internal/server"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "text edge-list file")
		binPath   = flag.String("bin", "", "binary CSR graph file")
		storePath = flag.String("store", "", "disk-resident store file")
		pageCache = flag.Int64("pagecache", 256, "page-cache budget for -store, MiB")
		addr      = flag.String("addr", ":8080", "listen address")
		maxK      = flag.Int("maxk", 1000, "largest accepted k")
		workers   = flag.Int("workers", 0, "query worker count (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "admission queue depth; excess requests get 429 (0 = 4x workers)")
		cache     = flag.Int("cache", 0, "result-cache entries (0 = 1024, negative disables)")
		timeout   = flag.Duration("timeout", 0, "per-query deadline, e.g. 500ms or 2s (0 = none)")
	)
	flag.Parse()

	var g flos.Graph
	start := time.Now()
	switch {
	case *graphPath != "":
		mg, err := flos.LoadEdgeList(*graphPath)
		if err != nil {
			log.Fatal(err)
		}
		g = mg
	case *binPath != "":
		mg, err := flos.LoadBinary(*binPath)
		if err != nil {
			log.Fatal(err)
		}
		g = mg
	case *storePath != "":
		dg, err := flos.OpenDiskGraph(*storePath, *pageCache<<20)
		if err != nil {
			log.Fatal(err)
		}
		defer dg.Close()
		g = dg
	default:
		log.Fatal("flosd: one of -graph, -bin, -store is required")
	}
	log.Printf("loaded graph: %d nodes, %d edges in %s", g.NumNodes(), g.NumEdges(), time.Since(start))

	srv := server.New(g, server.Config{
		MaxK:         *maxK,
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		Timeout:      *timeout,
	})
	defer srv.Close()
	m := srv.Pool().Metrics()
	log.Printf("serving on %s: %d workers, queue %d, result cache %d entries, timeout %s",
		*addr, m.Workers, m.QueueCap, *cache, *timeout)
	if err := http.ListenAndServe(*addr, logRequests(srv.Handler())); err != nil {
		log.Fatal(err)
	}
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Println(fmt.Sprintf("%s %s %s", r.Method, r.URL, time.Since(start)))
	})
}
