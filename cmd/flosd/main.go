// Command flosd serves exact FLoS kNN queries over HTTP.
//
// Usage:
//
//	flosd -bin graph.bin -addr :8080
//	flosd -store big.flos -cache 256 -addr :8080
//
//	curl 'localhost:8080/topk?q=42&k=10&measure=rwr'
//	curl 'localhost:8080/unified?q=42&k=10'
//	curl 'localhost:8080/stats'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"flos"
	"flos/internal/server"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "text edge-list file")
		binPath   = flag.String("bin", "", "binary CSR graph file")
		storePath = flag.String("store", "", "disk-resident store file")
		cacheMB   = flag.Int64("cache", 256, "page-cache budget for -store, MiB")
		addr      = flag.String("addr", ":8080", "listen address")
		maxK      = flag.Int("maxk", 1000, "largest accepted k")
	)
	flag.Parse()

	var (
		g         flos.Graph
		serialize bool
	)
	start := time.Now()
	switch {
	case *graphPath != "":
		mg, err := flos.LoadEdgeList(*graphPath)
		if err != nil {
			log.Fatal(err)
		}
		g = mg
	case *binPath != "":
		mg, err := flos.LoadBinary(*binPath)
		if err != nil {
			log.Fatal(err)
		}
		g = mg
	case *storePath != "":
		dg, err := flos.OpenDiskGraph(*storePath, *cacheMB<<20)
		if err != nil {
			log.Fatal(err)
		}
		defer dg.Close()
		g = dg
		serialize = true // the page cache is single-reader
	default:
		log.Fatal("flosd: one of -graph, -bin, -store is required")
	}
	log.Printf("loaded graph: %d nodes, %d edges in %s", g.NumNodes(), g.NumEdges(), time.Since(start))

	srv := server.New(g, server.Config{Serialize: serialize, MaxK: *maxK})
	log.Printf("serving on %s", *addr)
	if err := http.ListenAndServe(*addr, logRequests(srv.Handler())); err != nil {
		log.Fatal(err)
	}
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Println(fmt.Sprintf("%s %s %s", r.Method, r.URL, time.Since(start)))
	})
}
