// Command flosgen generates synthetic graphs in any of the module's
// formats.
//
// Usage:
//
//	flosgen -model rmat -n 1048576 -m 10000000 -seed 7 -out big.bin
//	flosgen -model rand -n 65536 -m 500000 -out g.txt -format edgelist
//	flosgen -model rmat -n 16777216 -m 160000000 -out big.flos -format store
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flos"
	"flos/internal/graph"
)

func main() {
	var (
		model  = flag.String("model", "rmat", "rmat | rand")
		n      = flag.Int("n", 1<<20, "node count")
		m      = flag.Int64("m", 10_000_000, "edge count")
		seed   = flag.Uint64("seed", 1, "generator seed")
		out    = flag.String("out", "", "output path (required)")
		format = flag.String("format", "bin", "bin | edgelist | store")
		stats  = flag.Bool("stats", false, "print structural statistics")
	)
	flag.Parse()
	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}

	start := time.Now()
	var (
		g   *flos.MemGraph
		err error
	)
	switch *model {
	case "rmat":
		g, err = flos.GenerateRMAT(*n, *m, *seed)
	case "rand":
		g, err = flos.GenerateRandom(*n, *m, *seed)
	default:
		err = fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generated %s graph: %d nodes, %d edges in %s\n",
		*model, g.NumNodes(), g.NumEdges(), time.Since(start))
	if *stats {
		fmt.Println(graph.ComputeStats(g))
	}

	start = time.Now()
	switch *format {
	case "bin":
		err = flos.SaveBinary(*out, g)
	case "edgelist":
		f, ferr := os.Create(*out)
		if ferr != nil {
			fatal(ferr)
		}
		err = graph.WriteEdgeList(f, g)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	case "store":
		err = flos.CreateDiskGraph(*out, g)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	fi, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%.1f MB) in %s\n", *out, float64(fi.Size())/1e6, time.Since(start))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flosgen:", err)
	os.Exit(1)
}
