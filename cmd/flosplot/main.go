// Command flosplot renders harness CSV exports (flosbench -csv) as SVG
// line charts in the style of the paper's figures.
//
// Usage:
//
//	flosbench -fig 7 -csv results/
//	flosplot -in results/fig7.csv -out results/
//
// One SVG is written per dataset panel.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"flos/internal/plot"
)

func main() {
	var (
		in  = flag.String("in", "", "harness CSV file (required)")
		out = flag.String("out", ".", "output directory for SVG panels")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	ms, err := plot.ReadMeasurements(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	base := strings.TrimSuffix(filepath.Base(*in), filepath.Ext(*in))
	for _, chart := range plot.TimeVsK(ms) {
		name := fmt.Sprintf("%s-%s.svg", base, sanitize(chart.Title))
		path := filepath.Join(*out, name)
		g, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := chart.WriteSVG(g); err != nil {
			g.Close()
			fatal(err)
		}
		if err := g.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
}

func sanitize(s string) string {
	s = strings.NewReplacer(" ", "_", "—", "-", "/", "-").Replace(s)
	var b strings.Builder
	for _, r := range s {
		if r < 128 {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flosplot:", err)
	os.Exit(1)
}
