package flos_test

import (
	"fmt"
	"log"

	"flos"
)

// ExampleTopK answers an exact top-2 RWR query on the paper's Figure 1(a)
// example graph.
func ExampleTopK() {
	g := flos.MustPaperExample()
	res, err := flos.TopK(g, 0, flos.DefaultOptions(flos.RWR, 2))
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range res.TopK {
		fmt.Printf("%d. node %d\n", i+1, r.Node+1) // +1: paper numbering
	}
	fmt.Println("exact:", res.Exact)
	// Output:
	// 1. node 3
	// 2. node 2
	// exact: true
}

// ExampleTopK_trace replays the paper's Table 3: which nodes each local
// expansion visits under PHP with c = 0.8.
func ExampleTopK_trace() {
	g := flos.MustPaperExample()
	sc := &flos.SnapshotCollector{}
	opt := flos.Options{
		K:       2,
		Measure: flos.PHP,
		Params:  flos.Params{C: 0.8, L: 10, Tau: 1e-8, MaxIter: 100000},
		TieEps:  1e-9,
		Tracer:  sc,
	}
	if _, err := flos.TopK(g, 0, opt); err != nil {
		log.Fatal(err)
	}
	for _, ev := range sc.Events {
		fmt.Printf("iteration %d visits:", ev.Iteration)
		for _, v := range ev.NewNodes {
			fmt.Printf(" %d", v+1)
		}
		fmt.Println()
	}
	// Output:
	// iteration 1 visits: 2 3
	// iteration 2 visits: 4
	// iteration 3 visits: 5
	// iteration 4 visits: 6 7
}

// ExampleUnifiedTopK certifies the PHP-family and RWR rankings with one
// shared search.
func ExampleUnifiedTopK() {
	g := flos.MustPaperExample()
	res, err := flos.UnifiedTopK(g, 0, flos.DefaultOptions(flos.PHP, 2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("PHP family:")
	for _, r := range res.PHPFamily {
		fmt.Printf(" %d", r.Node+1)
	}
	fmt.Print("\nRWR:       ")
	for _, r := range res.RWR {
		fmt.Printf(" %d", r.Node+1)
	}
	fmt.Println()
	// Output:
	// PHP family: 2 3
	// RWR:        3 2
}

// ExampleExact runs the brute-force global iteration the paper calls GI.
func ExampleExact() {
	g := flos.MustPaperExample()
	scores, _, err := flos.Exact(g, 0, flos.PHP, flos.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PHP of node 2: %.4f\n", scores[1])
	// Output:
	// PHP of node 2: 0.2656
}
