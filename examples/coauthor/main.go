// Coauthor: expert finding in a collaboration network — the DBLP scenario
// behind the paper's DP dataset.
//
// Researchers are nodes; edge weights count joint papers. The graph is
// built with planted communities (research groups) plus sparse cross-group
// collaborations, so ground truth is known: a researcher's nearest
// neighbors under a random-walk measure should be dominated by their own
// group. The example queries with PHP (and its ranking-equivalent cousins
// EI and DHT, demonstrating Theorem 2) and measures how well each stays
// inside the community.
//
// Run: go run ./examples/coauthor
package main

import (
	"fmt"
	"log"

	"flos"
)

const (
	groups    = 400
	groupSize = 25
	n         = groups * groupSize
)

// buildCollaborations plants dense weighted groups with occasional bridges.
func buildCollaborations() (*flos.MemGraph, error) {
	b := flos.NewGraphBuilder(n)
	state := uint64(0xD8)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for grp := 0; grp < groups; grp++ {
		base := flos.NodeID(grp * groupSize)
		// Dense intra-group collaborations with paper-count weights 1..6.
		for i := 0; i < groupSize; i++ {
			for j := i + 1; j < groupSize; j++ {
				if next()%100 < 35 { // ~35% of pairs collaborated
					w := float64(1 + next()%6)
					if err := b.AddEdge(base+flos.NodeID(i), base+flos.NodeID(j), w); err != nil {
						return nil, err
					}
				}
			}
		}
		// A few cross-group bridges (workshops, visits).
		for t := 0; t < 3; t++ {
			other := flos.NodeID(next() % uint64(n))
			u := base + flos.NodeID(next()%uint64(groupSize))
			if other/groupSize != u/groupSize {
				if err := b.AddEdge(u, other, 1); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build()
}

func main() {
	g, err := buildCollaborations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collaboration network: %d researchers, %d weighted edges, %d planted groups\n\n",
		g.NumNodes(), g.NumEdges(), groups)

	const k = 10
	queries := []flos.NodeID{12, 5033, 7777, 9001}

	// Theorem 2 in action: PHP, EI and DHT agree on the ranking.
	fmt.Println("query 12 under the three ranking-equivalent measures:")
	for _, m := range []flos.Measure{flos.PHP, flos.EI, flos.DHT} {
		res, err := flos.TopK(g, 12, flos.DefaultOptions(m, 5))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4v:", m)
		for _, r := range res.TopK {
			fmt.Printf(" %d", r.Node)
		}
		fmt.Printf("   (visited %d nodes)\n", res.Visited)
	}

	fmt.Println("\nexpert finding with PHP:")
	for _, q := range queries {
		res, err := flos.TopK(g, q, flos.DefaultOptions(flos.PHP, k))
		if err != nil {
			log.Fatal(err)
		}
		myGroup := q / groupSize
		inGroup := 0
		for _, r := range res.TopK {
			if r.Node/groupSize == myGroup {
				inGroup++
			}
		}
		fmt.Printf("  researcher %-5d (group %3d): top-%d closest collaborators, %d/%d in own group, visited %d/%d nodes (%.2f%%)\n",
			q, myGroup, k, inGroup, len(res.TopK), res.Visited, n,
			100*float64(res.Visited)/float64(n))
	}

	fmt.Println("\n(the search certifies exactness while loading only the query's")
	fmt.Println(" community neighborhood — the entire point of local search)")
}
