// Diskresident: the paper's Section 6.4 scenario — exact kNN queries
// against a graph that lives on disk behind a small page cache.
//
// The example generates an R-MAT graph, writes it into the paged store
// format, reopens it with a deliberately tiny cache budget (so most of the
// graph can never be resident), and answers FLoS queries for PHP and RWR.
// Because FLoS only ever asks for the neighborhoods it visits, queries
// complete after touching a few hundred pages of a file that is orders of
// magnitude larger than the cache.
//
// Run: go run ./examples/diskresident
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"flos"
)

func main() {
	const (
		nodes = 500_000
		edges = 5_000_000
	)
	dir, err := os.MkdirTemp("", "flos-disk-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "graph.flos")

	fmt.Printf("generating R-MAT graph: %d nodes, %d edges...\n", nodes, edges)
	start := time.Now()
	g, err := flos.GenerateRMAT(nodes, edges, 0xF0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated in %s\n", time.Since(start))

	start = time.Now()
	if err := flos.CreateDiskGraph(path, g); err != nil {
		log.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store written: %.1f MB in %s\n", float64(fi.Size())/1e6, time.Since(start))

	// Pick queries while the in-memory copy is still around, then drop it.
	var queries []flos.NodeID
	for v := flos.NodeID(0); len(queries) < 5; v++ {
		nbrs, _ := g.Neighbors(v)
		if len(nbrs) >= 2 {
			queries = append(queries, v)
		}
	}
	g = nil

	// 4 MiB cache against a ~130 MB file: everything must page.
	const cacheBudget = 4 << 20
	store, err := flos.OpenDiskGraph(path, cacheBudget)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	fmt.Printf("store reopened with a %d MiB page cache (%.1f%% of the file)\n\n",
		cacheBudget>>20, 100*float64(cacheBudget)/float64(fi.Size()))

	for _, m := range []flos.Measure{flos.PHP, flos.RWR} {
		for _, q := range queries[:3] {
			before := store.CacheStats()
			start := time.Now()
			res, err := flos.TopK(store, q, flos.DefaultOptions(m, 20))
			if err != nil {
				log.Fatal(err)
			}
			after := store.CacheStats()
			fmt.Printf("%-4v query %-8d: %8s, visited %5d/%d nodes (%.4f%%), %d page misses, exact=%v\n",
				m, q, time.Since(start).Round(time.Microsecond), res.Visited, nodes,
				100*float64(res.Visited)/float64(nodes),
				after.Misses-before.Misses, res.Exact)
		}
	}

	st := store.CacheStats()
	fmt.Printf("\ncache totals: %d hits, %d misses, %.1f KB resident (budget %d KB)\n",
		st.Hits, st.Misses, float64(st.ResidentBytes)/1e3, cacheBudget>>10)
	fmt.Println("exact answers from a disk-resident graph without ever loading it")
}
