// Quickstart: the paper's running example, end to end.
//
// Builds the 8-node graph of Figure 1(a), runs FLoS for every supported
// proximity measure, replays the Figure 4 / Table 3 bound trace showing how
// the top-2 under PHP is certified after four local expansions with one node
// never visited, and then demonstrates the two relaxed serving modes on a
// larger generated graph: ε-certified early stopping and anytime answers
// under a deadline, both read through Result.Certification.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"flos"
)

func main() {
	// Figure 1(a), 0-indexed (paper node i is i-1 here): 9 unit-weight edges.
	b := flos.NewGraphBuilder(8)
	edges := [][2]flos.NodeID{
		{0, 1}, {0, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 5}, {3, 6}, {4, 5}, {6, 7},
	}
	for _, e := range edges {
		if err := b.AddUnitEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	const query = flos.NodeID(0) // the paper's node 1

	// One reusable Querier per measure: a session holds warm engine state,
	// so issuing more queries through it costs almost no allocation. (For a
	// single query, flos.TopK does the same work.)
	fmt.Println("Top-3 nearest neighbors of node 1 under each measure:")
	for _, m := range []flos.Measure{flos.PHP, flos.EI, flos.DHT, flos.THT, flos.RWR} {
		qr, err := flos.NewQuerier(g, flos.DefaultOptions(m, 3))
		if err != nil {
			log.Fatal(err)
		}
		res, err := qr.TopK(context.Background(), query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4v:", m)
		for _, r := range res.TopK {
			fmt.Printf("  node %d (%.4f)", r.Node+1, r.Score)
		}
		fmt.Printf("   [visited %d/8 nodes]\n", res.Visited)
	}

	// The Figure 4 trace: PHP with c = 0.8, k = 2, plain bounds. A
	// SnapshotCollector on Options.Tracer captures the full per-iteration
	// bound snapshots without perturbing the expansion schedule.
	fmt.Println("\nBound trace (PHP, c=0.8, k=2) — the paper's Figure 4 / Table 3:")
	sc := &flos.SnapshotCollector{}
	opt := flos.Options{
		K:       2,
		Measure: flos.PHP,
		Params:  flos.Params{C: 0.8, L: 10, Tau: 1e-8, MaxIter: 100000},
		TieEps:  1e-9,
		Tracer:  sc,
	}
	res, err := flos.TopK(g, query, opt)
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range sc.Events {
		fmt.Printf("  iteration %d: expand node %d, newly visited:", ev.Iteration, ev.Expanded+1)
		for _, v := range ev.NewNodes {
			fmt.Printf(" %d", v+1)
		}
		fmt.Println()
		for i, v := range ev.Nodes {
			if v == query {
				continue
			}
			fmt.Printf("    node %d: [%.4f, %.4f]\n", v+1, ev.Lower[i], ev.Upper[i])
		}
	}
	fmt.Printf("top-2 certified after %d iterations with %d/8 nodes visited:", res.Iterations, res.Visited)
	for _, r := range res.TopK {
		fmt.Printf(" node %d", r.Node+1)
	}
	fmt.Println("\n(node 8 was never visited — its proximity is provably below the top-2)")

	// Serving modes on a graph big enough for the modes to matter: exact
	// (the default) vs ε-certified early stopping vs anytime-under-deadline.
	// Every Result carries a Certification block stating what was proved.
	big, err := flos.GenerateCommunity(20000, 100000, 42)
	if err != nil {
		log.Fatal(err)
	}
	const bigQuery = flos.NodeID(7)

	exactOpt := flos.DefaultOptions(flos.RWR, 10)
	exactRes, err := flos.TopK(big, bigQuery, exactOpt)
	if err != nil {
		log.Fatal(err)
	}

	epsOpt := exactOpt
	epsOpt.Mode = flos.ModeEpsilon
	epsOpt.Epsilon = 1e-3
	epsRes, err := flos.TopK(big, bigQuery, epsOpt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nServing modes (RWR, k=10, community graph n=20000):")
	fmt.Printf("  exact  : visited %6d, %4d iterations, certified=%v, gap=%.2e\n",
		exactRes.Visited, exactRes.Iterations, exactRes.Certification.Certified, exactRes.Certification.Gap)
	fmt.Printf("  ε=1e-3 : visited %6d, %4d iterations, certified=%v, gap=%.2e (≤ ε)\n",
		epsRes.Visited, epsRes.Iterations, epsRes.Certification.Certified, epsRes.Certification.Gap)
	if len(epsRes.Certification.Bounds) > 0 {
		nb := epsRes.Certification.Bounds[0]
		fmt.Printf("  ε top-1: node %d score interval [%.6f, %.6f]\n", nb.Node, nb.Lower, nb.Upper)
	}

	// Anytime: an expiring deadline no longer aborts the query — it returns
	// the current top-k with Certified=false and the gap still open.
	anyOpt := exactOpt
	anyOpt.Mode = flos.ModeAnytime
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Microsecond)
	defer cancel()
	anyRes, err := flos.TopKCtx(ctx, big, bigQuery, anyOpt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  anytime: visited %6d, %4d iterations, certified=%v after 200µs deadline (%d candidates in hand)\n",
		anyRes.Visited, anyRes.Iterations, anyRes.Certification.Certified, len(anyRes.TopK))
}
