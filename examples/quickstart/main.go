// Quickstart: the paper's running example, end to end.
//
// Builds the 8-node graph of Figure 1(a), runs FLoS for every supported
// proximity measure, and replays the Figure 4 / Table 3 bound trace showing
// how the top-2 under PHP is certified after four local expansions with one
// node never visited.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"flos"
)

func main() {
	// Figure 1(a), 0-indexed (paper node i is i-1 here): 9 unit-weight edges.
	b := flos.NewGraphBuilder(8)
	edges := [][2]flos.NodeID{
		{0, 1}, {0, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 5}, {3, 6}, {4, 5}, {6, 7},
	}
	for _, e := range edges {
		if err := b.AddUnitEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	const query = flos.NodeID(0) // the paper's node 1

	// One reusable Querier per measure: a session holds warm engine state,
	// so issuing more queries through it costs almost no allocation. (For a
	// single query, flos.TopK does the same work.)
	fmt.Println("Top-3 nearest neighbors of node 1 under each measure:")
	for _, m := range []flos.Measure{flos.PHP, flos.EI, flos.DHT, flos.THT, flos.RWR} {
		qr, err := flos.NewQuerier(g, flos.DefaultOptions(m, 3))
		if err != nil {
			log.Fatal(err)
		}
		res, err := qr.TopK(context.Background(), query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4v:", m)
		for _, r := range res.TopK {
			fmt.Printf("  node %d (%.4f)", r.Node+1, r.Score)
		}
		fmt.Printf("   [visited %d/8 nodes]\n", res.Visited)
	}

	// The Figure 4 trace: PHP with c = 0.8, k = 2, plain bounds.
	fmt.Println("\nBound trace (PHP, c=0.8, k=2) — the paper's Figure 4 / Table 3:")
	opt := flos.Options{
		K:       2,
		Measure: flos.PHP,
		Params:  flos.Params{C: 0.8, L: 10, Tau: 1e-8, MaxIter: 100000},
		TieEps:  1e-9,
		Trace: func(ev flos.TraceEvent) {
			fmt.Printf("  iteration %d: expand node %d, newly visited:", ev.Iteration, ev.Expanded+1)
			for _, v := range ev.NewNodes {
				fmt.Printf(" %d", v+1)
			}
			fmt.Println()
			for i, v := range ev.Nodes {
				if v == query {
					continue
				}
				fmt.Printf("    node %d: [%.4f, %.4f]\n", v+1, ev.Lower[i], ev.Upper[i])
			}
		},
	}
	res, err := flos.TopK(g, query, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-2 certified after %d iterations with %d/8 nodes visited:", res.Iterations, res.Visited)
	for _, r := range res.TopK {
		fmt.Printf(" node %d", r.Node+1)
	}
	fmt.Println("\n(node 8 was never visited — its proximity is provably below the top-2)")
}
