// Recommend: "customers who bought this also bought" over a co-purchase
// graph — the Amazon scenario motivating the paper's AZ dataset.
//
// Products are nodes; an edge means two products were bought together, with
// the weight counting co-purchases. Random walk with restart is the
// standard relatedness measure here, and exactness matters: a recommender
// that silently drops the true second-best related product loses revenue.
//
// The example generates an AZ-like scale-free co-purchase graph, answers a
// batch of RWR queries through one reusable flos.Querier session (the
// serving-shaped hot path: warm engine workspaces, one fan-out call),
// cross-checks one query against brute force, and reports how little of
// the catalog each query touched.
//
// Run: go run ./examples/recommend
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"flos"
)

func main() {
	const (
		products    = 120_000
		coPurchases = 340_000 // same density as the paper's AZ graph
	)
	fmt.Printf("building co-purchase graph: %d products, %d pair edges...\n", products, coPurchases)
	// Community-structured, like real co-purchase data: products cluster
	// into categories with rare cross-category links (see internal/gen).
	g, err := flos.GenerateCommunity(products, coPurchases, 0xA2)
	if err != nil {
		log.Fatal(err)
	}

	// A handful of "currently viewed" products with non-trivial
	// neighborhoods.
	var queries []flos.NodeID
	for v := flos.NodeID(0); v < flos.NodeID(products) && len(queries) < 5; v++ {
		nbrs, _ := g.Neighbors(v)
		if len(nbrs) >= 3 {
			queries = append(queries, v)
		}
	}

	// A recommender answers queries continuously, so hold a session: the
	// Querier keeps engine workspaces warm between queries, and Batch fans
	// the whole workload out in one call with per-query error slots.
	opt := flos.DefaultOptions(flos.RWR, 10)
	qr, err := flos.NewQuerier(g, opt)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	items := qr.Batch(context.Background(), queries)
	totalTime := time.Since(start)
	visitedSum := 0
	for _, it := range items {
		if it.Err != nil {
			log.Fatal(it.Err)
		}
		res := it.Result
		visitedSum += res.Visited
		fmt.Printf("\nproduct %d — top related products (touched %d/%d = %.3f%% of catalog):\n",
			it.Query, res.Visited, products,
			100*float64(res.Visited)/float64(products))
		for i, r := range res.TopK {
			fmt.Printf("  %2d. product %-8d relatedness %.3g\n", i+1, r.Node, r.Score)
		}
	}

	// Cross-check the first query against brute force over the whole graph.
	fmt.Println("\ncross-checking the first query against full-graph iteration...")
	q := queries[0]
	start = time.Now()
	scores, sweeps, err := flos.Exact(g, q, flos.RWR, opt.Params)
	if err != nil {
		log.Fatal(err)
	}
	bruteTime := time.Since(start)
	res, err := qr.TopK(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	want := map[flos.NodeID]bool{}
	type pair struct {
		v flos.NodeID
		s float64
	}
	best := make([]pair, 0, 10)
	for v, s := range scores {
		if flos.NodeID(v) == q {
			continue
		}
		best = append(best, pair{flos.NodeID(v), s})
	}
	// Partial selection of the exact top-10.
	for i := 0; i < 10; i++ {
		m := i
		for j := i + 1; j < len(best); j++ {
			if best[j].s > best[m].s {
				m = j
			}
		}
		best[i], best[m] = best[m], best[i]
		want[best[i].v] = true
	}
	match := 0
	for _, r := range res.TopK {
		if want[r.Node] {
			match++
		}
	}
	fmt.Printf("brute force: %d sweeps over %d edges in %s\n", sweeps, g.NumEdges(), bruteTime)
	fmt.Printf("agreement: %d/10 (FLoS result is provably exact; disagreements can only be exact score ties)\n", match)
	fmt.Printf("batch of %d queries: %.2fms/query touching %.3f%% of the catalog\n",
		len(queries),
		float64(totalTime.Microseconds())/float64(len(queries))/1000,
		100*float64(visitedSum)/float64(len(queries))/float64(products))
}
