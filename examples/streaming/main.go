// Streaming: exact kNN served over HTTP while the graph never stops changing.
//
// The paper's opening complaint about global methods is that "the
// precomputing step is usually expensive and needs to be repeated whenever
// the graph changes". This example drives that point end to end through the
// serving stack: it boots the flosd server in-process on a live graph, then
// plays both roles over real HTTP — a writer POSTing batches of edge
// mutations to /graph/edges while a reader keeps asking /topk for exact
// answers. Every mutation batch publishes a new copy-on-write snapshot;
// queries pin whichever snapshot was current at admission, so writers never
// stall reads, and the result cache is invalidated surgically — an entry
// dies only if the batch touched its recorded read footprint.
//
// Run: go run ./examples/streaming
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"time"

	"flos"
	"flos/internal/server"
)

func main() {
	const n = 30_000
	base, err := flos.GenerateCommunity(n, 80_000, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Boot the serving stack in-process: live graph, query pool, HTTP mux —
	// exactly what `flosd -bin graph.bin -live` runs.
	live := flos.NewLiveGraph(base)
	srv := server.New(live, server.Config{
		Workers:      4,
		CacheEntries: 1024,
		// Quiet the per-request access log; the example narrates itself.
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	url := "http://" + ln.Addr().String()
	fmt.Printf("live server on %s: %d nodes, %d edges\n\n", url, live.NumNodes(), live.NumEdges())

	state := uint64(7)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}

	type edgeOp struct {
		Op string      `json:"op"`
		U  flos.NodeID `json:"u"`
		V  flos.NodeID `json:"v"`
		W  float64     `json:"w,omitempty"`
	}
	type mutateResp struct {
		Epoch   uint64 `json:"epoch"`
		Applied int    `json:"applied"`
	}
	type topkResp struct {
		Exact     bool   `json:"exact"`
		Cached    bool   `json:"cached"`
		Visited   int    `json:"visited"`
		Epoch     uint64 `json:"epoch"`
		ElapsedUS int64  `json:"elapsed_us"`
		Results   []struct {
			Node  flos.NodeID `json:"node"`
			Score float64     `json:"score"`
		} `json:"results"`
	}

	postOps := func(ops []edgeOp) mutateResp {
		body, _ := json.Marshal(map[string]any{"ops": ops})
		resp, err := http.Post(url+"/graph/edges", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out mutateResp
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("POST /graph/edges: %s", resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		return out
	}
	topk := func(q flos.NodeID) topkResp {
		resp, err := http.Get(fmt.Sprintf("%s/topk?q=%d&k=8&measure=php", url, q))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out topkResp
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("GET /topk: %s", resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		return out
	}

	query := flos.NodeID(1234)
	var mutations int
	var queryTime time.Duration
	var queries int
	for batch := 0; batch < 5; batch++ {
		// A burst of structural change: new transactions between random
		// accounts, posted as one atomic batch.
		ops := make([]edgeOp, 0, 200)
		for len(ops) < cap(ops) {
			u := flos.NodeID(next() % n)
			v := flos.NodeID(next() % n)
			if u == v {
				continue
			}
			ops = append(ops, edgeOp{Op: "set", U: u, V: v, W: 1 + float64(next()%5)})
		}
		mut := postOps(ops)
		mutations += mut.Applied

		start := time.Now()
		res := topk(query)
		queryTime += time.Since(start)
		queries++

		fmt.Printf("after %4d mutations (epoch %d): query in %6dus, visited %d nodes, exact=%v, cached=%v\n",
			mutations, mut.Epoch, res.ElapsedUS, res.Visited, res.Exact, res.Cached)
		fmt.Printf("  hitting-probability neighbors:")
		for _, r := range res.Results[:4] {
			fmt.Printf(" %d", r.Node)
		}
		fmt.Println()

		// Ask again: if the batch missed this query's read footprint, the
		// surgically-retained cache answers without recomputing.
		again := topk(query)
		fmt.Printf("  repeat on epoch %d: cached=%v\n", again.Epoch, again.Cached)
	}

	// The live metrics tell the invalidation story: how many cache entries
	// each batch carried across the epoch vs evicted.
	resp, err := http.Get(url + "/metrics?format=json")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var met struct {
		Live struct {
			SnapshotsTotal int64 `json:"snapshots_total"`
			RowsCoWed      int64 `json:"rows_cowed"`
			Surgical       int64 `json:"invalidations_surgical"`
			Retained       int64 `json:"cache_retained"`
			Recertify      int64 `json:"recertify_hits"`
		} `json:"live"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d exact queries over HTTP interleaved with %d mutations, avg %.2fms each\n",
		queries, mutations, float64(queryTime.Microseconds())/float64(queries)/1000)
	fmt.Printf("%d snapshots published, %d adjacency rows copy-on-write re-materialized (of %d total)\n",
		met.Live.SnapshotsTotal, met.Live.RowsCoWed, int64(live.NumNodes())*met.Live.SnapshotsTotal)
	fmt.Printf("cache entries: %d surgically invalidated, %d retained across epochs, %d re-certified warm\n",
		met.Live.Surgical, met.Live.Retained, met.Live.Recertify)
	fmt.Println("no index rebuilt, no factorization redone, no clustering refreshed")
}
