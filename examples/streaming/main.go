// Streaming: exact kNN on a graph that never stops changing.
//
// The paper's opening complaint about global methods is that "the
// precomputing step is usually expensive and needs to be repeated whenever
// the graph changes". This example drives that point: a transaction graph
// receives a stream of edge insertions and deletions, and after every batch
// we answer exact top-k queries — both the PHP family and RWR at once via
// the unified search — with zero precomputation to invalidate.
//
// Run: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"time"

	"flos"
	"flos/internal/graph"
)

func main() {
	const n = 30_000
	base, err := flos.GenerateCommunity(n, 80_000, 42)
	if err != nil {
		log.Fatal(err)
	}
	g := graph.NewDynamicGraph(base)
	fmt.Printf("account graph: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())

	query := flos.NodeID(1234)
	opt := flos.DefaultOptions(flos.PHP, 8)

	state := uint64(7)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}

	var queryTime time.Duration
	var mutations, queries int
	for batch := 0; batch < 5; batch++ {
		// A burst of structural change: new transactions, closed accounts.
		for i := 0; i < 200; i++ {
			u := flos.NodeID(next() % n)
			v := flos.NodeID(next() % n)
			if u == v {
				continue
			}
			if g.HasEdge(u, v) {
				if err := g.RemoveEdge(u, v); err != nil {
					log.Fatal(err)
				}
			} else {
				if err := g.AddEdge(u, v, 1+float64(next()%5)); err != nil {
					log.Fatal(err)
				}
			}
			mutations++
		}

		start := time.Now()
		res, err := flos.UnifiedTopK(g, query, opt)
		if err != nil {
			log.Fatal(err)
		}
		queryTime += time.Since(start)
		queries++

		fmt.Printf("after %4d mutations (%d edges): query in %8s, visited %d nodes, exact=%v\n",
			mutations, g.NumEdges(), time.Since(start).Round(time.Microsecond), res.Visited, res.Exact)
		fmt.Printf("  hitting-probability neighbors:")
		for _, r := range res.PHPFamily[:4] {
			fmt.Printf(" %d", r.Node)
		}
		fmt.Printf("\n  random-walk-with-restart neighbors:")
		for _, r := range res.RWR[:4] {
			fmt.Printf(" %d", r.Node)
		}
		fmt.Println()
	}

	fmt.Printf("\n%d exact dual-measure queries interleaved with %d mutations, avg %.2fms each\n",
		queries, mutations, float64(queryTime.Microseconds())/float64(queries)/1000)
	fmt.Println("no index rebuilt, no factorization redone, no clustering refreshed")
}
