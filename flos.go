// Package flos is a Go implementation of FLoS — Fast Local Search — the
// exact top-k proximity search algorithm of Wu, Jin & Zhang, "Fast and
// Unified Local Search for Random Walk Based K-Nearest-Neighbor Query in
// Large Graphs" (SIGMOD 2014).
//
// Given a weighted undirected graph and a query node, FLoS returns the k
// nodes nearest to the query under a random-walk proximity measure —
// penalized hitting probability (PHP), effective importance (EI),
// discounted hitting time (DHT), truncated hitting time (THT), or random
// walk with restart (RWR) — while visiting only a small neighborhood of the
// query, with a proof-carrying guarantee that the returned set is exact.
//
// Quick start:
//
//	g, err := flos.LoadEdgeList("graph.txt")
//	res, err := flos.TopK(g, query, flos.DefaultOptions(flos.RWR, 10))
//	for _, r := range res.TopK {
//	    fmt.Println(r.Node, r.Score)
//	}
//
// Graphs can live in memory (LoadEdgeList, NewGraphBuilder, the Generate*
// functions) or on disk behind a byte-budgeted page cache (CreateDiskGraph
// / OpenDiskGraph); the search code is identical over both.
package flos

import (
	"context"

	"flos/internal/core"
	"flos/internal/diskgraph"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/livegraph"
	"flos/internal/measure"
)

// Graph is the read interface the search consumes; see internal/graph for
// the contract. MemGraph and DiskGraph both satisfy it.
type Graph = graph.Graph

// NodeID identifies a node (dense 0..n-1).
type NodeID = graph.NodeID

// MemGraph is the in-memory CSR graph.
type MemGraph = graph.MemGraph

// DiskGraph is the disk-resident paged graph store.
type DiskGraph = diskgraph.Store

// Builder accumulates edges for an in-memory graph.
type Builder = graph.Builder

// Measure selects a proximity measure.
type Measure = measure.Kind

// The supported proximity measures.
const (
	// PHP is penalized hitting probability (higher = closer).
	PHP = measure.PHP
	// EI is effective importance, degree-normalized RWR (higher = closer).
	EI = measure.EI
	// DHT is discounted hitting time (lower = closer).
	DHT = measure.DHT
	// THT is L-truncated hitting time (lower = closer).
	THT = measure.THT
	// RWR is random walk with restart / personalized PageRank
	// (higher = closer).
	RWR = measure.RWR
)

// Params carries the numeric parameters (decay/restart C, THT horizon L,
// solver tolerance Tau, iteration cap MaxIter).
type Params = measure.Params

// Options configures a TopK query.
type Options = core.Options

// Result is a completed query: the top-k list plus work counters.
type Result = core.Result

// Ranked pairs a node with its proximity score.
type Ranked = measure.Ranked

// Tracer observes the search's convergence trajectory (Options.Tracer):
// one IterStats per local-expansion iteration, including the certification
// gap the stopping rule closes. Unlike Options.Trace it does not perturb
// the expansion schedule, so traced runs do the same work as untraced ones.
type Tracer = core.Tracer

// IterStats is one iteration's observability record; see core.IterStats.
type IterStats = core.IterStats

// TraceCollector is a Tracer that appends every record to Iters.
type TraceCollector = core.TraceCollector

// SnapshotObserver is a Tracer extension receiving full per-iteration bound
// snapshots (TraceEvent); assign one to Options.Tracer to get the detailed
// trace the removed Options.Trace callback used to deliver.
type SnapshotObserver = core.SnapshotObserver

// SnapshotCollector is a SnapshotObserver that appends every snapshot to
// Events.
type SnapshotCollector = core.SnapshotCollector

// TraceEvent is a full per-iteration bound snapshot, delivered to a
// SnapshotObserver.
type TraceEvent = core.TraceEvent

// Mode selects the serving mode of a query: exact (the default), ε-certified
// early stopping, or anytime (deadline returns the current partial top-k).
type Mode = core.Mode

// The serving modes.
const (
	// ModeExact runs the paper's exact stopping rule (the default).
	ModeExact = core.ModeExact
	// ModeEpsilon stops as soon as the certified gap is within
	// Options.Epsilon.
	ModeEpsilon = core.ModeEpsilon
	// ModeAnytime returns the in-flight top-k with Certified=false instead
	// of an *Interrupted error when the context fires.
	ModeAnytime = core.ModeAnytime
)

// ParseMode parses "exact", "epsilon", or "anytime" ("" = exact).
func ParseMode(s string) (Mode, error) { return core.ParseMode(s) }

// KernelKind selects the bound-solver kernel via Options.Kernel. Every
// kernel certifies the same top-k sets and flags; serial is the paper's
// reference schedule, parallel partitions relaxation sweeps across
// goroutines, staged runs a float32 pre-pass before the float64 finish.
type KernelKind = core.KernelKind

// The bound-solver kernels.
const (
	// KernelAuto (the default) picks serial below a visited-set threshold
	// and parallel above it, deterministically — the choice depends only on
	// the local-system size, never on the machine.
	KernelAuto = core.KernelAuto
	// KernelSerial is the reference fused Gauss-Seidel pass; results are
	// byte-identical to the pre-kernel engines.
	KernelSerial = core.KernelSerial
	// KernelParallel partitions the local system into cache-sized blocks
	// and relaxes frontier rounds across goroutines; results are identical
	// for any worker count.
	KernelParallel = core.KernelParallel
	// KernelStaged sweeps in float32 to near-convergence, then finishes and
	// certifies in float64.
	KernelStaged = core.KernelStaged
)

// ParseKernel parses "auto", "serial", "parallel", or "staged" ("" = auto).
func ParseKernel(s string) (KernelKind, error) { return core.ParseKernel(s) }

// Certification is the proof block attached to every Result: serving mode,
// whether the answer is certified, the achieved gap and its bounds, and
// per-node score intervals for the returned top-k.
type Certification = core.Certification

// NodeBounds is one returned node's certified score interval.
type NodeBounds = core.NodeBounds

// DefaultOptions mirrors the paper's experimental configuration
// (c = 0.5, τ = 1e−5, L = 10, self-loop tightening on).
func DefaultOptions(m Measure, k int) Options { return core.DefaultOptions(m, k) }

// DefaultParams returns the paper's numeric defaults.
func DefaultParams() Params { return measure.DefaultParams() }

// TopK answers an exact k-nearest-neighbor query with FLoS. It is a thin
// wrapper over TopKCtx with a background context, building all engine state
// per call; callers issuing more than one query should hold a Querier.
func TopK(g Graph, q NodeID, opt Options) (*Result, error) { return core.TopK(g, q, opt) }

// TopKCtx is TopK with cancellation: the search checks ctx at every local
// expansion and returns promptly with an *Interrupted error (wrapping
// ErrCanceled or ErrDeadline) once the context fires.
func TopKCtx(ctx context.Context, g Graph, q NodeID, opt Options) (*Result, error) {
	return core.TopKCtx(ctx, g, q, opt)
}

// ErrCanceled and ErrDeadline are the typed causes carried by *Interrupted
// when a context ends a query early. ErrInvalidOptions and ErrInvalidQuery
// classify rejected requests (malformed Options, query node out of range).
// Test with errors.Is.
var (
	ErrCanceled       = core.ErrCanceled
	ErrDeadline       = core.ErrDeadline
	ErrInvalidOptions = core.ErrInvalidOptions
	ErrInvalidQuery   = core.ErrInvalidQuery
)

// Querier is a reusable query session: one graph, one option set, a pool of
// warm engine workspaces. It is the recommended entry point for any caller
// issuing more than one query — repeated queries skip nearly all per-call
// allocation, results are byte-identical to one-shot TopK, and the session
// is safe for concurrent use (view-capable backends run queries in
// parallel; others are serialized internally). See NewQuerier.
type Querier = core.Querier

// BatchItem is one query's slot in a Batch / TopKBatch result.
type BatchItem = core.BatchItem

// NewQuerier validates opt once and returns a reusable session over g.
func NewQuerier(g Graph, opt Options) (*Querier, error) { return core.NewQuerier(g, opt) }

// TopKBatch answers a batch of queries sharing one option set, fanning them
// across a bounded worker pool. The returned slice is parallel to queries;
// cancellation mid-batch fills the unfinished slots with *Interrupted
// errors instead of hanging. Callers with recurring batches should hold a
// Querier and use its Batch method so workspaces stay warm between batches.
func TopKBatch(ctx context.Context, g Graph, queries []NodeID, opt Options) ([]BatchItem, error) {
	return core.TopKBatch(ctx, g, queries, opt)
}

// Interrupted is the error a context-terminated query returns; it carries
// the partial work counters (Visited, Iterations, Sweeps).
type Interrupted = core.Interrupted

// UnifiedResult carries both rankings of a UnifiedTopK query.
type UnifiedResult = core.UnifiedResult

// UnifiedTopK answers both ranking families — PHP/EI/DHT and RWR — with one
// shared local search (Options.Params.C is the PHP decay factor).
func UnifiedTopK(g Graph, q NodeID, opt Options) (*UnifiedResult, error) {
	return core.UnifiedTopK(g, q, opt)
}

// UnifiedTopKCtx is UnifiedTopK with cancellation, on the TopKCtx contract.
func UnifiedTopKCtx(ctx context.Context, g Graph, q NodeID, opt Options) (*UnifiedResult, error) {
	return core.UnifiedTopKCtx(ctx, g, q, opt)
}

// DiskGraphReader is an independent concurrent-safe view of a DiskGraph:
// readers share the store's lock-striped page cache but own the scratch
// buffers Neighbors returns. Obtain one per goroutine with
// (*DiskGraph).NewReader when querying a disk store concurrently.
type DiskGraphReader = diskgraph.Reader

// Exact computes the full proximity vector by global iteration — the
// brute-force reference (and the paper's GI baseline). Returns the vector
// and the sweep count.
func Exact(g Graph, q NodeID, m Measure, p Params) ([]float64, int, error) {
	return measure.Exact(g, q, m, p)
}

// Certify audits a TopK result against a full global-iteration solve,
// accepting either side of score ties within eps. It costs a full GI run.
func Certify(g Graph, q NodeID, res *Result, m Measure, p Params, eps float64) error {
	return core.Certify(g, q, res, m, p, eps)
}

// NewGraphBuilder returns a Builder for a graph with exactly n nodes.
func NewGraphBuilder(n int) *Builder { return graph.NewBuilder(n) }

// NewGrowingGraphBuilder returns a Builder sized by the largest node seen.
func NewGrowingGraphBuilder() *Builder { return graph.NewGrowingBuilder() }

// LoadEdgeList reads a SNAP-style text edge list ("u v [w]" per line).
func LoadEdgeList(path string) (*MemGraph, error) { return graph.LoadEdgeList(path) }

// SaveBinary / LoadBinary round-trip a graph in the fast binary format.
func SaveBinary(path string, g *MemGraph) error { return graph.SaveBinary(path, g) }

// LoadBinary reads a graph written by SaveBinary.
func LoadBinary(path string) (*MemGraph, error) { return graph.LoadBinary(path) }

// MustPaperExample returns the paper's 8-node Figure 1(a) example graph
// (0-indexed), used in the quickstart and the worked-example benchmarks.
func MustPaperExample() *MemGraph { return gen.PaperExample() }

// GenerateCommunity builds a clustered, high-diameter graph with planted
// communities — the structural stand-in for real social/co-purchase
// networks (see internal/gen.Community).
func GenerateCommunity(n int, m int64, seed uint64) (*MemGraph, error) {
	return gen.Community(n, m, gen.CommunityParamsForDensity(2*float64(m)/float64(n)), seed)
}

// GenerateRandom builds an Erdős–Rényi G(n, m) graph (the paper's RAND).
func GenerateRandom(n int, m int64, seed uint64) (*MemGraph, error) {
	return gen.Erdos(n, m, seed)
}

// GenerateRMAT builds an R-MAT scale-free graph with GTgraph defaults.
func GenerateRMAT(n int, m int64, seed uint64) (*MemGraph, error) {
	return gen.RMAT(n, m, gen.DefaultRMAT(), seed)
}

// LiveGraph is a mutable graph served as a chain of immutable copy-on-write
// CSR snapshots: writers apply atomic mutation batches (Apply) that produce
// a new snapshot re-materializing only the touched adjacency rows, while
// readers pin the current snapshot (Acquire / AcquireSnapshot) and keep
// querying it unchanged until they release it. A LiveGraph satisfies Graph
// directly (each read delegates to the current snapshot), and the search
// layer pins one snapshot per query, so in-flight queries never observe a
// mutation. See internal/livegraph.
type LiveGraph = livegraph.LiveGraph

// GraphSnapshot is one immutable snapshot in a LiveGraph's chain. It
// satisfies Graph and serves reads lock-free.
type GraphSnapshot = livegraph.Snapshot

// EdgeOp is one edge mutation in a LiveGraph batch.
type EdgeOp = livegraph.EdgeOp

// EdgeOpKind selects an EdgeOp's operation.
type EdgeOpKind = livegraph.Op

// The edge mutation kinds.
const (
	// OpAdd inserts a new edge (errors if it exists).
	OpAdd = livegraph.OpAdd
	// OpRemove deletes an existing edge (errors if missing).
	OpRemove = livegraph.OpRemove
	// OpSet upserts an edge's weight.
	OpSet = livegraph.OpSet
)

// NewLiveGraph wraps an in-memory graph in a live snapshot chain. The base
// snapshot aliases g's adjacency storage (no copy); g must not be used for
// writes afterwards.
func NewLiveGraph(g *MemGraph) *LiveGraph { return livegraph.New(g) }

// CreateDiskGraph writes g into the paged disk-store format.
func CreateDiskGraph(path string, g *MemGraph) error {
	return diskgraph.Create(path, g, 0)
}

// OpenDiskGraph opens a disk store with the given page-cache budget in
// bytes (0 = 64 MiB).
func OpenDiskGraph(path string, cacheBytes int64) (*DiskGraph, error) {
	return diskgraph.Open(path, cacheBytes)
}
