package flos

import (
	"path/filepath"
	"testing"
)

// TestPublicAPIFlow drives the facade end to end: build, query every
// measure, round-trip through both file formats and the disk store.
func TestPublicAPIFlow(t *testing.T) {
	b := NewGraphBuilder(6)
	edges := [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 2}, {1, 3}}
	for _, e := range edges {
		if err := b.AddUnitEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	for _, m := range []Measure{PHP, EI, DHT, THT, RWR} {
		res, err := TopK(g, 0, DefaultOptions(m, 3))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(res.TopK) != 3 || !res.Exact {
			t.Fatalf("%v: %+v", m, res)
		}
	}

	scores, sweeps, err := Exact(g, 0, PHP, DefaultParams())
	if err != nil || sweeps == 0 || len(scores) != 6 {
		t.Fatalf("Exact: %v %d %d", err, sweeps, len(scores))
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "g.bin")
	if err := SaveBinary(bin, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadBinary(bin)
	if err != nil || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("binary round trip: %v", err)
	}

	store := filepath.Join(dir, "g.flos")
	if err := CreateDiskGraph(store, g); err != nil {
		t.Fatal(err)
	}
	dg, err := OpenDiskGraph(store, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dg.Close()
	res, err := TopK(dg, 0, DefaultOptions(PHP, 2))
	if err != nil || len(res.TopK) != 2 {
		t.Fatalf("disk query: %v %+v", err, res)
	}
}

func TestGenerators(t *testing.T) {
	er, err := GenerateRandom(500, 1500, 1)
	if err != nil || er.NumEdges() != 1500 {
		t.Fatalf("GenerateRandom: %v", err)
	}
	rm, err := GenerateRMAT(500, 1500, 1)
	if err != nil || rm.NumEdges() != 1500 {
		t.Fatalf("GenerateRMAT: %v", err)
	}
}
