module flos

go 1.22
