// Package baseline implements every comparison method of the paper's
// Table 5, so the experiment harness can regenerate Figures 7–13:
//
//	GI_*      global iteration over the whole graph [16]        — exact
//	DNE       best-first local expansion, fixed node budget [21] — approx
//	NN_EI     push-style local search with residual bounds [3]   — exact
//	LS_RWR/EI cluster-precompute local search [18]               — approx
//	LS_THT    hop-expansion local search for THT [17]            — approx
//	Castanet  improved global iteration for RWR [9]              — exact
//	K-dash    matrix-factorization precompute [8]                — exact
//	GE        landmark graph embedding [22]                      — approx
//
// Each method re-derives the published algorithm at the level the FLoS
// paper evaluates it: its exactness guarantee, its precompute profile, and
// its query-time work. See DESIGN.md §3 for the substitution notes.
package baseline

import (
	"flos/internal/measure"
)

// Result reports one baseline query.
type Result struct {
	// TopK lists the returned nodes, closest first.
	TopK []measure.Ranked
	// Visited counts nodes touched by local methods (n for global ones).
	Visited int
	// Sweeps counts full or local matrix-vector sweeps (solver work).
	Sweeps int
	// Exact reports whether the method guarantees the exact top-k.
	Exact bool
}
