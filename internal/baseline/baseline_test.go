package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
)

func tightParams() measure.Params {
	return measure.Params{C: 0.5, L: 10, Tau: 1e-10, MaxIter: 200000}
}

func randomConnected(t testing.TB, n, extra int, seed int64) *graph.MemGraph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		if err := b.AddEdge(int32(v), int32(rng.Intn(v)), 0.5+rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < extra; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			if err := b.AddEdge(u, v, 0.5+rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func oracle(t testing.TB, g graph.Graph, q graph.NodeID, kind measure.Kind, p measure.Params) []float64 {
	t.Helper()
	p.Tau = 1e-12
	p.MaxIter = 500000
	r, _, err := measure.Exact(g, q, kind, p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGlobalIterationExact(t *testing.T) {
	g := randomConnected(t, 60, 100, 1)
	for _, kind := range measure.Kinds() {
		res, err := GlobalIteration(g, 7, kind, tightParams(), 5)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !res.Exact || res.Visited != 60 || res.Sweeps == 0 {
			t.Errorf("%v: result meta %+v", kind, res)
		}
		scores := oracle(t, g, 7, kind, tightParams())
		if !measure.SameSetModuloTies(measure.Nodes(res.TopK), scores, 7, 5, kind.HigherIsCloser(), 1e-7) {
			t.Errorf("%v: GI returned wrong set", kind)
		}
	}
}

func TestDNEWithGenerousBudgetMatchesExact(t *testing.T) {
	g := randomConnected(t, 60, 100, 2)
	q := graph.NodeID(3)
	res, err := DNE(g, q, tightParams(), 5, 1000) // budget covers the graph
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("DNE must not claim exactness")
	}
	scores := oracle(t, g, q, measure.PHP, tightParams())
	if !measure.SameSetModuloTies(measure.Nodes(res.TopK), scores, q, 5, true, 1e-7) {
		t.Errorf("DNE with full-coverage budget missed the exact set: %v", measure.Nodes(res.TopK))
	}
	if res.Visited != 60 {
		t.Errorf("visited %d, want the whole component", res.Visited)
	}
}

func TestDNEBudgetIsRespected(t *testing.T) {
	g := randomConnected(t, 3000, 6000, 3)
	res, err := DNE(g, 0, tightParams(), 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited > 200+300 { // one expansion may overshoot by a neighborhood
		t.Errorf("visited %d with budget 200", res.Visited)
	}
	if len(res.TopK) != 10 {
		t.Errorf("got %d results", len(res.TopK))
	}
}

func TestDNEInputValidation(t *testing.T) {
	g := gen.Path(5)
	if _, err := DNE(g, 9, tightParams(), 2, 100); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := DNE(g, 0, measure.Params{}, 2, 100); err == nil {
		t.Error("bad params accepted")
	}
}

func TestNNEIExactOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomConnected(t, 80, 150, seed)
		q := graph.NodeID(int(seed * 11 % 80))
		p := tightParams() // PHP-space decay 0.5 == EI restart 0.5
		res, err := NNEI(g, q, p, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			t.Fatalf("seed %d: NNEI not exact", seed)
		}
		scores := oracle(t, g, q, measure.PHP, p)
		if !measure.SameSetModuloTies(measure.Nodes(res.TopK), scores, q, 8, true, 1e-7) {
			t.Errorf("seed %d: NNEI wrong set %v", seed, measure.Nodes(res.TopK))
		}
	}
}

func TestNNEIPaperExample(t *testing.T) {
	g := gen.PaperExample()
	p := tightParams()
	p.C = 0.8
	res, err := NNEI(g, 0, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := measure.Nodes(res.TopK); !measure.SameSet(got, []graph.NodeID{1, 2}) {
		t.Fatalf("top-2 = %v, want {1,2}", got)
	}
}

func TestNNEISmallComponent(t *testing.T) {
	g := graph.MustFromEdges(6, 0, 1, 1, 2, 3, 4, 4, 5)
	res, err := NNEI(g, 0, tightParams(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := measure.Nodes(res.TopK); !measure.SameSet(got, []graph.NodeID{1, 2}) {
		t.Fatalf("component query = %v", got)
	}
}

func TestCastanetExactAndCheaperThanGI(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := randomConnected(t, 150, 400, seed)
		q := graph.NodeID(int(seed * 31 % 150))
		p := tightParams()
		res, err := Castanet(g, q, p, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			t.Fatal("Castanet not exact")
		}
		scores := oracle(t, g, q, measure.RWR, p)
		if !measure.SameSetModuloTies(measure.Nodes(res.TopK), scores, q, 10, true, 1e-9) {
			t.Errorf("seed %d: Castanet wrong set", seed)
		}
		gi, err := GlobalIteration(g, q, measure.RWR, p, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sweeps > gi.Sweeps {
			t.Errorf("seed %d: Castanet %d sweeps > GI %d — early exit never fired",
				seed, res.Sweeps, gi.Sweeps)
		}
	}
}

func TestClusteringPartition(t *testing.T) {
	g := randomConnected(t, 200, 300, 5)
	cl := PrecomputeClusters(g, 40)
	if cl.NumClusters() < 2 {
		t.Fatalf("only %d clusters on 200 nodes at target 40", cl.NumClusters())
	}
	seen := map[graph.NodeID]int{}
	for id := 0; id < cl.NumClusters(); id++ {
		for _, v := range cl.members[id] {
			seen[v]++
		}
	}
	if len(seen) != 200 {
		t.Fatalf("partition covers %d/200 nodes", len(seen))
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("node %d assigned %d times", v, c)
		}
	}
	// Query stays inside its own cluster.
	res, err := cl.Query(g, 17, measure.PHP, tightParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("LS claims exactness")
	}
	mine := map[graph.NodeID]bool{}
	for _, v := range cl.ClusterOf(17) {
		mine[v] = true
	}
	for _, r := range res.TopK {
		if !mine[r.Node] {
			t.Errorf("LS returned node %d outside the query's cluster", r.Node)
		}
	}
}

func TestClusteringQueryKinds(t *testing.T) {
	g := randomConnected(t, 60, 90, 6)
	cl := PrecomputeClusters(g, 30)
	for _, kind := range []measure.Kind{measure.PHP, measure.EI, measure.RWR} {
		if _, err := cl.Query(g, 5, kind, tightParams(), 3); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
	if _, err := cl.Query(g, 5, measure.THT, tightParams(), 3); err == nil {
		t.Error("THT accepted by cluster LS")
	}
}

// TestClusterLSIsApproximate: a query near its cluster border must be able
// to miss true neighbors — construct a path crossing a cluster boundary and
// check the method is structurally blind outside.
func TestClusterLSIsApproximate(t *testing.T) {
	g := gen.Path(100)
	cl := PrecomputeClusters(g, 10)
	// Query at node 9 — right at the edge of the first BFS region.
	res, err := cl.Query(g, 9, measure.PHP, tightParams(), 8)
	if err != nil {
		t.Fatal(err)
	}
	exact := oracle(t, g, 9, measure.PHP, tightParams())
	prec := measure.Precision(measure.Nodes(res.TopK),
		measure.Nodes(measure.TopK(exact, 9, 8, true)))
	if prec == 1 {
		t.Log("cluster LS got lucky on the border query (acceptable but unusual)")
	}
	if len(res.TopK) == 0 {
		t.Fatal("no results")
	}
}

func TestLSTHTOnExhaustedComponentMatchesExact(t *testing.T) {
	g := randomConnected(t, 50, 80, 7)
	q := graph.NodeID(2)
	p := tightParams()
	res, err := LSTHT(g, q, p, 5, 10000, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	scores := oracle(t, g, q, measure.THT, p)
	if !measure.SameSetModuloTies(measure.Nodes(res.TopK), scores, q, 5, false, 1e-7) {
		t.Errorf("LSTHT full-coverage run missed exact set: %v", measure.Nodes(res.TopK))
	}
}

func TestLSTHTBudget(t *testing.T) {
	g := randomConnected(t, 5000, 10000, 8)
	res, err := LSTHT(g, 0, tightParams(), 10, 300, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited > 3000 {
		t.Errorf("visited %d with budget 300 (hop overshoot should be bounded)", res.Visited)
	}
	if len(res.TopK) != 10 {
		t.Errorf("got %d results", len(res.TopK))
	}
}

func TestKDashExact(t *testing.T) {
	g := randomConnected(t, 80, 120, 9)
	kd, err := PrecomputeKDash(g, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kd.Fill() <= 0 {
		t.Fatal("no fill recorded")
	}
	for _, q := range []graph.NodeID{0, 17, 42} {
		res, err := kd.Query(q, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			t.Fatal("K-dash not exact")
		}
		scores := oracle(t, g, q, measure.RWR, tightParams())
		if !measure.SameSetModuloTies(measure.Nodes(res.TopK), scores, q, 6, true, 1e-9) {
			t.Errorf("q=%d: K-dash wrong set", q)
		}
	}
}

func TestKDashFillBudget(t *testing.T) {
	g := randomConnected(t, 300, 2000, 10)
	if _, err := PrecomputeKDash(g, 0.5, 500); !errors.Is(err, ErrPrecomputeInfeasible) {
		t.Fatalf("err = %v, want ErrPrecomputeInfeasible", err)
	}
}

func TestKDashValidation(t *testing.T) {
	g := gen.Path(5)
	if _, err := PrecomputeKDash(g, 1.5, 0); err == nil {
		t.Error("restart 1.5 accepted")
	}
	kd, err := PrecomputeKDash(g, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kd.Query(99, 2); err == nil {
		t.Error("bad query accepted")
	}
}

func TestEmbeddingSeparatesCliques(t *testing.T) {
	// Two 10-cliques joined by a single bridge: embedded distance must rank
	// clique-mates above the far clique.
	g := gen.Barbell(10, 0)
	emb, err := PrecomputeEmbedding(g, tightParams(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Dimensions() != 6 {
		t.Fatalf("dimensions = %d", emb.Dimensions())
	}
	res, err := emb.Query(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("embedding claims exactness")
	}
	for _, r := range res.TopK {
		if r.Node >= 10 {
			t.Errorf("query in clique A ranked far-clique node %d in top-5", r.Node)
		}
	}
}

func TestEmbeddingValidation(t *testing.T) {
	g := gen.Path(6)
	emb, err := PrecomputeEmbedding(g, tightParams(), 100) // m > n clamps
	if err != nil {
		t.Fatal(err)
	}
	if emb.Dimensions() != 6 {
		t.Fatalf("dimensions = %d, want clamp to n", emb.Dimensions())
	}
	if _, err := emb.Query(77, 2); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := PrecomputeEmbedding(g, measure.Params{}, 4); err == nil {
		t.Error("bad params accepted")
	}
}

func TestMCTHTReasonableOnCommunity(t *testing.T) {
	g, err := gen.Community(3000, 8100, gen.DefaultCommunityParams(), 4)
	if err != nil {
		t.Fatal(err)
	}
	q := graph.LargestComponentNodes(g)[50]
	p := tightParams()
	res, err := MCTHT(g, q, p, 10, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("Monte Carlo claims exactness")
	}
	if len(res.TopK) != 10 {
		t.Fatalf("got %d results", len(res.TopK))
	}
	exact := oracle(t, g, q, measure.THT, p)
	prec := measure.Precision(measure.Nodes(res.TopK),
		measure.Nodes(measure.TopK(exact, q, 10, false)))
	if prec < 0.4 {
		t.Errorf("MC precision@10 = %.2f — estimator broken?", prec)
	}
	// Estimates must fall inside the truncated range.
	for _, r := range res.TopK {
		if r.Score < 1 || r.Score > float64(p.L) {
			t.Errorf("estimate %g outside [1, L]", r.Score)
		}
	}
}

func TestMCTHTDeterministic(t *testing.T) {
	g := gen.PaperExample()
	a, err := MCTHT(g, 0, tightParams(), 3, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MCTHT(g, 0, tightParams(), 3, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.TopK {
		if a.TopK[i] != b.TopK[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestMCTHTValidation(t *testing.T) {
	g := gen.Path(5)
	if _, err := MCTHT(g, 9, tightParams(), 2, 10, 1); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := MCTHT(g, 0, measure.Params{}, 2, 10, 1); err == nil {
		t.Error("bad params accepted")
	}
}
