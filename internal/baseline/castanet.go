package baseline

import (
	"fmt"
	"sort"

	"flos/internal/graph"
	"flos/internal/measure"
)

// Castanet is the improved global iteration for RWR of Fujiwara et al. [9].
// Instead of iterating to a fixed tolerance like GI, it accumulates the
// power series
//
//	r = Σ_{l≥0} c·(1−c)^l·(Pᵀ)^l·e_q
//
// and maintains per-iteration bounds: after t terms the accumulated value is
// a lower bound, and since (Pᵀ)^l·e_q has unit total mass, every node's tail
// is at most (1−c)^{t+1} — a uniform upper-bound slack. Iteration stops the
// moment the k-th largest lower bound separates from the (k+1)-th largest
// upper bound, which on real graphs happens long before GI's tolerance is
// met (the paper reports 69–91% time cuts). The answer is exact.
func Castanet(g graph.Graph, q graph.NodeID, p measure.Params, k int) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if q < 0 || int(q) >= g.NumNodes() {
		return nil, fmt.Errorf("baseline: query node %d out of range", q)
	}
	n := g.NumNodes()
	c := p.C

	lower := make([]float64, n) // accumulated series: grows toward exact RWR
	x := make([]float64, n)     // current term (Pᵀ)^l e_q, scaled by c(1−c)^l lazily
	next := make([]float64, n)
	x[q] = 1
	scale := c // c·(1−c)^l for l = 0
	tail := 1 - c

	sweeps := 0
	for iter := 0; iter < p.MaxIter; iter++ {
		sweeps++
		for v := 0; v < n; v++ {
			lower[v] += scale * x[v]
		}
		// Termination: k-th largest lower vs (k+1)-th largest upper.
		if sel := castanetSeparated(lower, q, k, tail); sel != nil {
			return &Result{TopK: sel, Visited: n, Sweeps: sweeps, Exact: true}, nil
		}
		// Next term: x ← Pᵀ x (scatter along out-edges).
		for v := range next {
			next[v] = 0
		}
		for v := 0; v < n; v++ {
			if x[v] == 0 {
				continue
			}
			d := g.Degree(graph.NodeID(v))
			if d == 0 {
				next[v] += x[v] // dangling mass stays put
				continue
			}
			nbrs, ws := g.Neighbors(graph.NodeID(v))
			s := x[v] / d
			for i, u := range nbrs {
				next[u] += s * ws[i]
			}
		}
		x, next = next, x
		scale *= 1 - c
		tail *= 1 - c
		if tail < p.Tau*1e-3 {
			break // series numerically exhausted; bounds are as tight as GI's
		}
	}
	return &Result{
		TopK:    measure.TopK(lower, q, k, true),
		Visited: n,
		Sweeps:  sweeps,
		Exact:   true,
	}, nil
}

// castanetSeparated returns the top-k by lower bound when it provably
// separates from every other node's upper bound (lower + tail), else nil.
// It selects the k+1 largest values with one O(n·log k) scan so the check
// stays far cheaper than a full sweep.
func castanetSeparated(lower []float64, q graph.NodeID, k int, tail float64) []measure.Ranked {
	type cand struct {
		v graph.NodeID
		s float64
	}
	// Min-heap of the k+1 best candidates seen so far, stored as a slice with
	// manual sift (container/heap would force an interface allocation per
	// node on this hot path).
	h := make([]cand, 0, k+1)
	less := func(a, b cand) bool { // heap order: weakest candidate on top
		if a.s != b.s {
			return a.s < b.s
		}
		return a.v > b.v
	}
	siftUp := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !less(h[i], h[parent]) {
				break
			}
			h[i], h[parent] = h[parent], h[i]
			i = parent
		}
	}
	siftDown := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(h) && less(h[l], h[smallest]) {
				smallest = l
			}
			if r < len(h) && less(h[r], h[smallest]) {
				smallest = r
			}
			if smallest == i {
				break
			}
			h[i], h[smallest] = h[smallest], h[i]
			i = smallest
		}
	}
	for v, s := range lower {
		if graph.NodeID(v) == q {
			continue
		}
		c := cand{graph.NodeID(v), s}
		if len(h) < k+1 {
			h = append(h, c)
			siftUp(len(h) - 1)
		} else if less(h[0], c) {
			h[0] = c
			siftDown()
		}
	}
	sort.Slice(h, func(a, b int) bool { return less(h[b], h[a]) })
	if len(h) > k {
		kth := h[k-1].s
		if kth < h[k].s+tail-1e-15 {
			return nil
		}
		h = h[:k]
	}
	out := make([]measure.Ranked, len(h))
	for i, c := range h {
		out[i] = measure.Ranked{Node: c.v, Score: c.s}
	}
	return out
}
