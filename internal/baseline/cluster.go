package baseline

import (
	"fmt"

	"flos/internal/graph"
	"flos/internal/measure"
)

// Clustering is the offline artifact of the LS_RWR / LS_EI baseline of
// Sarkar & Moore [18]: the graph partitioned into bounded-size regions. The
// paper notes the precompute "takes tens of hours" on its datasets; here it
// is a deterministic seeded-BFS partition, which keeps the query-time
// profile (load one cluster, solve inside it, constant-ish time) while
// making the offline cost explicit and measurable.
type Clustering struct {
	// assign maps node -> cluster id.
	assign []int32
	// members lists each cluster's nodes.
	members [][]graph.NodeID
}

// PrecomputeClusters partitions g into BFS regions of roughly targetSize
// nodes. Deterministic: seeds are taken in increasing node order.
func PrecomputeClusters(g graph.Graph, targetSize int) *Clustering {
	if targetSize < 2 {
		targetSize = 2
	}
	n := g.NumNodes()
	cl := &Clustering{assign: make([]int32, n)}
	for i := range cl.assign {
		cl.assign[i] = -1
	}
	var queue []graph.NodeID
	for seed := 0; seed < n; seed++ {
		if cl.assign[seed] >= 0 {
			continue
		}
		id := int32(len(cl.members))
		var members []graph.NodeID
		queue = append(queue[:0], graph.NodeID(seed))
		cl.assign[seed] = id
		for len(queue) > 0 && len(members) < targetSize {
			v := queue[0]
			queue = queue[1:]
			members = append(members, v)
			nbrs, _ := g.Neighbors(v)
			for _, u := range nbrs {
				if cl.assign[u] < 0 {
					cl.assign[u] = id
					queue = append(queue, u)
				}
			}
		}
		// Nodes still queued were claimed by this cluster; keep them (the
		// region overshoots targetSize by at most one frontier).
		for _, v := range queue {
			members = append(members, v)
		}
		queue = queue[:0]
		cl.members = append(cl.members, members)
	}
	return cl
}

// NumClusters returns the partition size.
func (cl *Clustering) NumClusters() int { return len(cl.members) }

// ClusterOf returns the members of the cluster containing v.
func (cl *Clustering) ClusterOf(v graph.NodeID) []graph.NodeID {
	return cl.members[cl.assign[v]]
}

// Query answers an approximate top-k query in LS style: restrict the graph
// to the query's precomputed cluster, run the exact solver inside it, and
// rank. Everything outside the cluster is invisible, which is both why the
// method is fast and constant-time per query (Figures 7–8: flat lines) and
// why it cannot be exact. Supported kinds: PHP, EI, RWR (the measures the
// paper runs it on).
func (cl *Clustering) Query(g graph.Graph, q graph.NodeID, kind measure.Kind, p measure.Params, k int) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if q < 0 || int(q) >= g.NumNodes() {
		return nil, fmt.Errorf("baseline: query node %d out of range", q)
	}
	switch kind {
	case measure.PHP, measure.EI, measure.RWR:
	default:
		return nil, fmt.Errorf("baseline: LS clustering supports PHP/EI/RWR, not %v", kind)
	}
	members := cl.ClusterOf(q)
	sub, back, err := graph.Subgraph(g, members)
	if err != nil {
		return nil, err
	}
	var localQ graph.NodeID = -1
	for i, v := range back {
		if v == q {
			localQ = graph.NodeID(i)
			break
		}
	}
	if localQ < 0 {
		return nil, fmt.Errorf("baseline: query %d missing from its own cluster", q)
	}
	scores, iters, err := measure.Exact(sub, localQ, kind, p)
	if err != nil {
		return nil, err
	}
	top := measure.TopK(scores, localQ, k, kind.HigherIsCloser())
	res := &Result{Visited: len(members), Sweeps: iters, Exact: false}
	for _, r := range top {
		res.TopK = append(res.TopK, measure.Ranked{Node: back[r.Node], Score: r.Score})
	}
	return res, nil
}
