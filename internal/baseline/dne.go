package baseline

import (
	"fmt"
	"sort"

	"flos/internal/graph"
	"flos/internal/linalg"
	"flos/internal/measure"
)

// DNE is dynamic neighborhood expansion [21]: a best-first heuristic for
// PHP that repeatedly expands the most promising visited boundary node and
// re-estimates PHP on the visited subgraph, stopping at a fixed node budget
// (the paper fixes it to 4,000). Because it never bounds what lies outside
// the frontier it cannot certify its answer — it is the "fast but
// approximate" contrast to FLoS in Figures 7 and 11.
func DNE(g graph.Graph, q graph.NodeID, p measure.Params, k, budget int) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if q < 0 || int(q) >= g.NumNodes() {
		return nil, fmt.Errorf("baseline: query node %d out of range", q)
	}
	if budget < 1 {
		budget = 4000
	}

	var nodes []graph.NodeID
	local := map[graph.NodeID]int32{}
	var adjN [][]graph.NodeID
	var adjW [][]float64
	var deg []float64
	t := linalg.NewRowMatrix(0)
	var est []float64
	var outCnt []int32
	sweeps := 0

	visit := func(v graph.NodeID) {
		li := int32(len(nodes))
		nodes = append(nodes, v)
		local[v] = li
		t.AddRow()
		nbrs, ws := g.Neighbors(v)
		cn := append([]graph.NodeID(nil), nbrs...)
		cw := append([]float64(nil), ws...)
		adjN = append(adjN, cn)
		adjW = append(adjW, cw)
		var d float64
		var out int32
		for i, u := range cn {
			d += cw[i]
			if _, ok := local[u]; !ok {
				out++
			}
		}
		deg = append(deg, d)
		outCnt = append(outCnt, out)
		est = append(est, 0)
		for i, u := range cn {
			lu, ok := local[u]
			if !ok {
				continue
			}
			if v != q && d > 0 {
				t.Append(li, lu, cw[i]/d)
			}
			if u != q && deg[lu] > 0 {
				t.Append(lu, li, cw[i]/deg[lu])
			}
			outCnt[lu]--
		}
	}
	visit(q)
	est[0] = 1 // PHP pins the query at 1

	e := []float64{1}
	for len(nodes) < budget {
		// Best boundary node by current estimate.
		best := int32(-1)
		for i := int32(0); i < int32(len(nodes)); i++ {
			if outCnt[i] > 0 && (best < 0 || est[i] > est[best]) {
				best = i
			}
		}
		if best < 0 {
			break // component exhausted
		}
		for _, v := range adjN[best] {
			if _, ok := local[v]; !ok {
				visit(v)
			}
		}
		for len(e) < len(nodes) {
			e = append(e, 0)
		}
		for len(est) < len(nodes) {
			est = append(est, 0)
		}
		sweeps += t.FixedPoint(p.C, e, est, p.Tau, p.MaxIter)
	}

	type cand struct {
		v graph.NodeID
		s float64
	}
	var all []cand
	for i := 1; i < len(nodes); i++ {
		all = append(all, cand{nodes[i], est[i]})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].s != all[b].s {
			return all[a].s > all[b].s
		}
		return all[a].v < all[b].v
	})
	if k > len(all) {
		k = len(all)
	}
	res := &Result{Visited: len(nodes), Sweeps: sweeps, Exact: false}
	for _, c := range all[:k] {
		res.TopK = append(res.TopK, measure.Ranked{Node: c.v, Score: c.s})
	}
	return res, nil
}
