package baseline

import (
	"fmt"
	"math"

	"flos/internal/graph"
	"flos/internal/measure"
)

// Embedding is the graph-embedding baseline of Zhao et al. [22] (GE_RWR):
// an expensive offline pass embeds every node into a low-dimensional
// geometric space in which random-walk proximity is approximately
// preserved; a query then ranks nodes by embedded distance in time
// independent of the graph's edge count. The answers are approximate — the
// embedding cannot represent the proximities exactly — which is the paper's
// point when contrasting it with FLoS (Figure 8).
//
// The offline pass here: pick m landmarks (highest-degree nodes, which the
// embedding literature favors for coverage), compute each landmark's exact
// RWR vector, and give node i the coordinate vector
// x_i[l] = −log(RWR_l(i) + ε). Walk-proximal nodes receive similar
// coordinates, so small Euclidean distance tracks large proximity.
type Embedding struct {
	coords    [][]float64 // n × m
	landmarks []graph.NodeID
	n         int
}

// PrecomputeEmbedding runs the offline embedding with m landmark
// dimensions. Cost: m full-graph RWR solves — the "very time consuming"
// step the paper describes.
func PrecomputeEmbedding(g graph.Graph, p measure.Params, m int) (*Embedding, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if m < 1 {
		m = 8
	}
	if m > n {
		m = n
	}
	top := g.TopDegrees(m)
	emb := &Embedding{coords: make([][]float64, n), n: n}
	for i := range emb.coords {
		emb.coords[i] = make([]float64, len(top))
	}
	const eps = 1e-12
	for dim, de := range top {
		emb.landmarks = append(emb.landmarks, de.Node)
		scores, _, err := measure.Exact(g, de.Node, measure.RWR, p)
		if err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			emb.coords[v][dim] = -math.Log(scores[v] + eps)
		}
	}
	return emb, nil
}

// Dimensions returns the embedding width.
func (e *Embedding) Dimensions() int { return len(e.landmarks) }

// Query returns the k nodes whose embedded coordinates are closest to the
// query's (Euclidean), scored by negative distance so higher is closer.
func (e *Embedding) Query(q graph.NodeID, k int) (*Result, error) {
	if q < 0 || int(q) >= e.n {
		return nil, fmt.Errorf("baseline: query node %d out of range", q)
	}
	xq := e.coords[q]
	scores := make([]float64, e.n)
	for v := 0; v < e.n; v++ {
		var d2 float64
		for dim, c := range e.coords[v] {
			diff := c - xq[dim]
			d2 += diff * diff
		}
		scores[v] = -math.Sqrt(d2)
	}
	return &Result{
		TopK:    measure.TopK(scores, q, k, true),
		Visited: e.n,
		Sweeps:  1,
		Exact:   false,
	}, nil
}
