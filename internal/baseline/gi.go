package baseline

import (
	"flos/internal/graph"
	"flos/internal/measure"
)

// GlobalIteration is the GI family [16]: run Algorithm 7 over the entire
// graph until the tolerance is met, then sort. It is exact for every
// measure and is the reference cost every local method is compared against
// (Figures 7, 8, 10–12).
func GlobalIteration(g graph.Graph, q graph.NodeID, kind measure.Kind, p measure.Params, k int) (*Result, error) {
	scores, iters, err := measure.Exact(g, q, kind, p)
	if err != nil {
		return nil, err
	}
	return &Result{
		TopK:    measure.TopK(scores, q, k, kind.HigherIsCloser()),
		Visited: g.NumNodes(),
		Sweeps:  iters,
		Exact:   true,
	}, nil
}
