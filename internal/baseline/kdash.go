package baseline

import (
	"errors"
	"fmt"

	"flos/internal/graph"
	"flos/internal/linalg"
	"flos/internal/measure"
)

// KDash is the matrix-based exact method of Fujiwara et al. [8]: invest in
// an offline factorization of the RWR system matrix, then answer each query
// with two sparse triangular solves. Here the offline step is an
// RCM-ordered sparse LU of
//
//	A = I − (1−c)·Pᵀ
//
// (a nonsingular M-matrix, so no pivoting is required), with a fill budget.
// On graphs whose fill explodes the precompute aborts with
// ErrPrecomputeInfeasible — reproducing the paper's finding that K-dash's
// precompute "takes tens of hours" on medium graphs and cannot be applied
// to the two large ones.
type KDash struct {
	lu *linalg.SparseLU
	c  float64
	n  int
}

// ErrPrecomputeInfeasible reports that the offline factorization exceeded
// its fill budget (K-dash) or is otherwise unusable at this scale.
var ErrPrecomputeInfeasible = errors.New("baseline: precompute infeasible at this graph scale")

// PrecomputeKDash factors the RWR system. maxFill caps stored factor
// entries; 0 defaults to 400 entries per node.
func PrecomputeKDash(g graph.Graph, c float64, maxFill int) (*KDash, error) {
	if !(c > 0 && c < 1) {
		return nil, fmt.Errorf("baseline: restart probability %g outside (0,1)", c)
	}
	n := g.NumNodes()
	if maxFill <= 0 {
		maxFill = 400 * n
	}
	// Row i of A: 1 on the diagonal and −(1−c)·p_{j,i} = −(1−c)·w_ij/w_j for
	// each neighbor j (the transpose of the walk matrix).
	rows := make([][]linalg.Entry, n)
	for i := 0; i < n; i++ {
		rows[i] = append(rows[i], linalg.Entry{Col: int32(i), Val: 1})
		nbrs, ws := g.Neighbors(graph.NodeID(i))
		for idx, j := range nbrs {
			dj := g.Degree(j)
			if dj == 0 {
				continue
			}
			rows[i] = append(rows[i], linalg.Entry{Col: j, Val: -(1 - c) * ws[idx] / dj})
		}
	}
	order := linalg.RCM(g)
	lu, err := linalg.FactorSparse(rows, order, maxFill)
	if err != nil {
		if errors.Is(err, linalg.ErrFillExceeded) {
			return nil, ErrPrecomputeInfeasible
		}
		return nil, err
	}
	return &KDash{lu: lu, c: c, n: n}, nil
}

// Fill reports the factor size (precompute memory proxy).
func (kd *KDash) Fill() int { return kd.lu.Fill() }

// Query solves A·r = c·e_q and returns the exact RWR top-k.
func (kd *KDash) Query(q graph.NodeID, k int) (*Result, error) {
	if q < 0 || int(q) >= kd.n {
		return nil, fmt.Errorf("baseline: query node %d out of range", q)
	}
	b := make([]float64, kd.n)
	b[q] = kd.c
	r := kd.lu.Solve(b)
	return &Result{
		TopK:    measure.TopK(r, q, k, true),
		Visited: kd.n,
		Sweeps:  1,
		Exact:   true,
	}, nil
}
