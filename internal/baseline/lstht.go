package baseline

import (
	"fmt"
	"sort"

	"flos/internal/graph"
	"flos/internal/measure"
)

// LSTHT is the approximate local search for truncated hitting time of
// Sarkar & Moore [17] (GRANCH-style): expand the neighborhood of the query
// hop by hop, compute optimistic and pessimistic truncated hitting times on
// the expanded subgraph (boundary-crossing mass contributes 0 in the
// optimistic pass and the horizon L in the pessimistic pass), and stop when
// the top-k interval widths fall below epsilon·L or the node budget is hit.
// Unlike FLoS it expands whole hops (not best-first) and accepts an
// approximation slack, so it returns faster but without an exactness
// guarantee.
func LSTHT(g graph.Graph, q graph.NodeID, p measure.Params, k, budget int, epsilon float64) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if q < 0 || int(q) >= g.NumNodes() {
		return nil, fmt.Errorf("baseline: query node %d out of range", q)
	}
	if budget < 2 {
		budget = 4000
	}
	if epsilon <= 0 {
		epsilon = 0.05
	}
	L := float64(p.L)

	nodes := []graph.NodeID{q}
	local := map[graph.NodeID]int32{q: 0}
	frontier := []graph.NodeID{q}
	sweeps := 0

	for hop := 0; ; hop++ {
		// Compute THT bounds on the current subgraph.
		lb, ub := thtSubgraphBounds(g, nodes, local, p.L)
		sweeps += 2 * p.L

		// Rank interior candidates by upper bound (safe side).
		type cand struct {
			v      graph.NodeID
			lo, hi float64
		}
		var all []cand
		for i, v := range nodes {
			if v != q {
				all = append(all, cand{v, lb[i], ub[i]})
			}
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].hi != all[b].hi {
				return all[a].hi < all[b].hi
			}
			return all[a].v < all[b].v
		})
		converged := len(all) >= k
		for i := 0; i < k && i < len(all); i++ {
			if all[i].hi-all[i].lo > epsilon*L {
				converged = false
				break
			}
		}
		exhausted := len(frontier) == 0
		if converged || exhausted || len(nodes) >= budget {
			kk := k
			if kk > len(all) {
				kk = len(all)
			}
			res := &Result{Visited: len(nodes), Sweeps: sweeps, Exact: false}
			for _, c := range all[:kk] {
				res.TopK = append(res.TopK, measure.Ranked{Node: c.v, Score: (c.lo + c.hi) / 2})
			}
			return res, nil
		}

		// Expand one full hop.
		var next []graph.NodeID
		for _, v := range frontier {
			nbrs, _ := g.Neighbors(v)
			for _, u := range nbrs {
				if _, ok := local[u]; !ok {
					local[u] = int32(len(nodes))
					nodes = append(nodes, u)
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
}

// thtSubgraphBounds runs the L-sweep THT recursion twice on the induced
// subgraph: once with boundary-crossing mass treated as hitting value 0
// (optimistic lower bound) and once as the horizon L (pessimistic upper
// bound, capped sweep-wise at l).
func thtSubgraphBounds(g graph.Graph, nodes []graph.NodeID, local map[graph.NodeID]int32, L int) (lb, ub []float64) {
	n := len(nodes)
	type entry struct {
		col int32
		p   float64
	}
	rows := make([][]entry, n)
	outMass := make([]float64, n)
	for i, v := range nodes {
		if v == nodes[0] {
			continue // query row zeroed
		}
		nbrs, ws := g.Neighbors(v)
		var d float64
		for j := range nbrs {
			d += ws[j]
		}
		if d == 0 {
			outMass[i] = 1
			continue
		}
		var in float64
		for j, u := range nbrs {
			if lu, ok := local[u]; ok {
				rows[i] = append(rows[i], entry{lu, ws[j] / d})
				in += ws[j]
			}
		}
		outMass[i] = (d - in) / d
	}
	lb = make([]float64, n)
	ub = make([]float64, n)
	nlb := make([]float64, n)
	nub := make([]float64, n)
	for l := 1; l <= L; l++ {
		for i := 0; i < n; i++ {
			if i == 0 {
				nlb[0], nub[0] = 0, 0
				continue
			}
			var sLo, sHi float64
			for _, en := range rows[i] {
				sLo += en.p * lb[en.col]
				sHi += en.p * ub[en.col]
			}
			nlb[i] = 1 + sLo
			u := 1 + sHi + outMass[i]*float64(L)
			if cap := float64(l); u > cap {
				u = cap
			}
			nub[i] = u
		}
		lb, nlb = nlb, lb
		ub, nub = nub, ub
	}
	return lb, ub
}
