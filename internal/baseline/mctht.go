package baseline

import (
	"fmt"
	"sort"

	"flos/internal/graph"
	"flos/internal/measure"
)

// MCTHT estimates truncated hitting times by Monte Carlo sampling — the
// other half of Sarkar & Moore's toolkit [17]: from each candidate node run
// `walks` independent random walks of up to L steps and average the
// (truncated) first-hit times. Candidates are restricted to the query's
// L-hop neighborhood (anything farther has THT exactly L). The estimate
// concentrates as O(1/√walks); the method is embarrassingly simple and
// never exact, which is precisely its role as a contrast to FLoS_THT.
func MCTHT(g graph.Graph, q graph.NodeID, p measure.Params, k, walks int, seed uint64) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if q < 0 || int(q) >= g.NumNodes() {
		return nil, fmt.Errorf("baseline: query node %d out of range", q)
	}
	if walks < 1 {
		walks = 256
	}
	candidates := graph.KHopNeighborhood(g, q, p.L)
	state := seed
	if state == 0 {
		state = 0x9e3779b97f4a7c15
	}
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	// Weighted step: pick an incident edge with probability ∝ weight.
	step := func(v graph.NodeID) graph.NodeID {
		nbrs, ws := g.Neighbors(v)
		if len(nbrs) == 0 {
			return v
		}
		var total float64
		for _, w := range ws {
			total += w
		}
		x := float64(next()>>11) / (1 << 53) * total
		for i, w := range ws {
			x -= w
			if x <= 0 {
				return nbrs[i]
			}
		}
		return nbrs[len(nbrs)-1]
	}

	type cand struct {
		v   graph.NodeID
		est float64
	}
	ests := make([]cand, 0, len(candidates))
	steps := 0
	for _, v := range candidates {
		if v == q {
			continue
		}
		var sum float64
		for w := 0; w < walks; w++ {
			cur := v
			hit := p.L
			for s := 1; s <= p.L; s++ {
				steps++
				cur = step(cur)
				if cur == q {
					hit = s
					break
				}
			}
			sum += float64(hit)
		}
		ests = append(ests, cand{v, sum / float64(walks)})
	}
	sort.Slice(ests, func(a, b int) bool {
		if ests[a].est != ests[b].est {
			return ests[a].est < ests[b].est
		}
		return ests[a].v < ests[b].v
	})
	if k > len(ests) {
		k = len(ests)
	}
	res := &Result{Visited: len(candidates), Sweeps: steps, Exact: false}
	for _, c := range ests[:k] {
		res.TopK = append(res.TopK, measure.Ranked{Node: c.v, Score: c.est})
	}
	return res, nil
}
