package baseline

import (
	"container/heap"
	"fmt"
	"sort"

	"flos/internal/graph"
	"flos/internal/measure"
)

// NNEI is the push-style exact local search for effective importance of
// Bogdanov & Singh [3], built on the bookmark-coloring push of Berkhin [2].
// It works on the PHP system (EI is ranking-equivalent, Theorem 2):
//
//	r = c·T·r + e_q
//
// maintaining an established mass p (a growing lower bound) and a residual
// ρ with the invariant r = p + (I − cT)⁻¹ρ. A push at v moves ρ_v into p_v
// and scatters c·p_{i,v}·ρ_v to each in-neighbor i. Because
// ‖(I − cT)⁻¹ρ‖∞ ≤ ‖ρ‖∞/(1−c), every node — touched or not — has the upper
// bound p_i + ‖ρ‖∞/(1−c); the search stops exactly when the k-th lower
// bound clears that. The bounds are sound but markedly looser than FLoS's
// boundary-aware ones, which is precisely the gap Figure 7 shows.
//
// The restart probability of EI maps to PHP decay c = 1 − restart; pass the
// PHP-space params (as from measure.EquivalentPHPParams).
func NNEI(g graph.Graph, q graph.NodeID, p measure.Params, k int) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if q < 0 || int(q) >= g.NumNodes() {
		return nil, fmt.Errorf("baseline: query node %d out of range", q)
	}
	c := p.C

	lower := map[graph.NodeID]float64{}
	resid := map[graph.NodeID]float64{q: 1}

	pq := &residHeap{}
	heap.Push(pq, residEntry{node: q, val: 1})

	pushes := 0
	checkEvery := 64
	degCache := map[graph.NodeID]float64{}
	degreeOf := func(v graph.NodeID) float64 {
		if d, ok := degCache[v]; ok {
			return d
		}
		d := g.Degree(v)
		degCache[v] = d
		return d
	}

	terminated := func() []measure.Ranked {
		// Upper-bound slack shared by every node in the graph.
		var maxResid float64
		for _, r := range resid {
			if r > maxResid {
				maxResid = r
			}
		}
		slack := maxResid / (1 - c)
		type cand struct {
			v graph.NodeID
			s float64
		}
		var all []cand
		for v, s := range lower {
			if v != q {
				all = append(all, cand{v, s})
			}
		}
		if len(all) < k {
			return nil
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].s != all[b].s {
				return all[a].s > all[b].s
			}
			return all[a].v < all[b].v
		})
		kth := all[k-1].s
		// Every non-selected node (touched or not) is bounded by lb + slack;
		// untouched nodes by slack alone.
		if kth < slack-1e-12 {
			return nil
		}
		for _, cnd := range all[k:] {
			if kth < cnd.s+slack-1e-12 {
				return nil
			}
		}
		out := make([]measure.Ranked, k)
		for i := 0; i < k; i++ {
			out[i] = measure.Ranked{Node: all[i].v, Score: all[i].s}
		}
		return out
	}

	const maxPushes = 10_000_000 // divergence backstop; never hit in practice
	for pq.Len() > 0 && pushes < maxPushes {
		top := heap.Pop(pq).(residEntry)
		rv := resid[top.node]
		if rv <= 0 {
			continue // stale heap entry: residual already pushed out
		}
		// Push: establish mass at v, scatter to in-neighbors. Nothing flows
		// into the query's equation — its row of T is zeroed.
		delete(resid, top.node)
		lower[top.node] += rv
		nbrs, ws := g.Neighbors(top.node)
		for i, u := range nbrs {
			if u == q {
				continue
			}
			du := degreeOf(u)
			if du == 0 {
				continue
			}
			add := c * (ws[i] / du) * rv
			if add == 0 {
				continue
			}
			nv := resid[u] + add
			resid[u] = nv
			heap.Push(pq, residEntry{node: u, val: nv})
		}
		pushes++
		if pushes%checkEvery == 0 {
			if out := terminated(); out != nil {
				return &Result{TopK: out, Visited: len(lower) + len(resid), Sweeps: pushes, Exact: true}, nil
			}
			// The check scans every touched node; amortize it against the
			// touched-set size so dense graphs don't spend all their time
			// re-sorting candidate lists.
			if grown := (len(lower) + len(resid)) / 4; grown > checkEvery {
				checkEvery = grown
			}
		}
	}
	// Heap drained (finite component: lower bounds are now exact) or the
	// backstop fired. Return the best-k by established mass.
	exhausted := pq.Len() == 0
	if out := terminated(); out != nil {
		return &Result{TopK: out, Visited: len(lower) + len(resid), Sweeps: pushes, Exact: true}, nil
	}
	type cand struct {
		v graph.NodeID
		s float64
	}
	var all []cand
	for v, s := range lower {
		if v != q {
			all = append(all, cand{v, s})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].s != all[b].s {
			return all[a].s > all[b].s
		}
		return all[a].v < all[b].v
	})
	if k > len(all) {
		k = len(all)
	}
	res := &Result{Visited: len(lower) + len(resid), Sweeps: pushes, Exact: exhausted}
	for _, cnd := range all[:k] {
		res.TopK = append(res.TopK, measure.Ranked{Node: cnd.v, Score: cnd.s})
	}
	return res, nil
}

type residEntry struct {
	node graph.NodeID
	val  float64
}

type residHeap []residEntry

func (h residHeap) Len() int            { return len(h) }
func (h residHeap) Less(i, j int) bool  { return h[i].val > h[j].val }
func (h residHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *residHeap) Push(x interface{}) { *h = append(*h, x.(residEntry)) }
func (h *residHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
