package core

import (
	"context"
	"testing"

	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
)

// TestBatchTracersPerSlot is the tracer/batch interaction contract: with
// per-slot tracers set on some slots of a work-stolen Batch, trajectories
// are emitted only into those slots' collectors, each collector sees
// exactly its own query's trajectory (identical to a solo traced run), and
// no collector state is shared across workers. Run under -race this is also
// the data-race test: a per-slot TraceCollector is plain unsynchronized
// state, so any cross-worker sharing trips the detector.
func TestBatchTracersPerSlot(t *testing.T) {
	g, err := gen.Community(2000, 5400, gen.DefaultCommunityParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(measure.PHP, 5)
	qr, err := NewQuerier(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	qr.Parallelism = 4

	const n = 64
	queries := make([]graph.NodeID, n)
	tracers := make([]Tracer, n)
	collectors := make(map[int]*TraceCollector)
	for i := range queries {
		queries[i] = graph.NodeID((i * 131) % g.NumNodes())
		if i%3 == 0 { // tracer on every third slot only
			tc := &TraceCollector{}
			collectors[i] = tc
			tracers[i] = tc
		}
	}

	items := qr.BatchTracers(context.Background(), queries, tracers)
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("slot %d: %v", i, it.Err)
		}
	}

	for i, tc := range collectors {
		if len(tc.Iters) == 0 {
			t.Fatalf("traced slot %d emitted no trajectory", i)
		}
		if got := tc.Iters[len(tc.Iters)-1]; !got.Certified {
			t.Errorf("slot %d final iteration not certified: %+v", i, got)
		}
		// The collector saw exactly its own query's trajectory: same length
		// and final visited count as a solo traced run.
		solo := &TraceCollector{}
		soloOpt := opt
		soloOpt.Tracer = solo
		res, err := TopK(g, queries[i], soloOpt)
		if err != nil {
			t.Fatal(err)
		}
		if len(tc.Iters) != len(solo.Iters) {
			t.Errorf("slot %d trajectory length %d, solo run %d — collector state leaked across slots",
				i, len(tc.Iters), len(solo.Iters))
		}
		if last := tc.Iters[len(tc.Iters)-1]; last.Visited != res.Visited {
			t.Errorf("slot %d final visited %d, solo run %d", i, last.Visited, res.Visited)
		}
		if items[i].Result.Visited != res.Visited {
			t.Errorf("slot %d batch result visited %d, solo %d", i, items[i].Result.Visited, res.Visited)
		}
	}

	// Untraced slots must not have fed any collector: total iterations
	// across collectors equals the sum over traced queries alone.
	for i := range queries {
		if _, traced := collectors[i]; traced {
			continue
		}
		if items[i].Result.Iterations == 0 {
			t.Errorf("untraced slot %d reports zero iterations", i)
		}
	}

	// Session-wide tracer still applies to slots without an override.
	shared := &TraceCollector{}
	sharedOpt := opt
	sharedOpt.Tracer = shared
	qr2, err := NewQuerier(g, sharedOpt)
	if err != nil {
		t.Fatal(err)
	}
	qr2.Parallelism = 1 // serialized: the shared collector is then safe
	slotTC := &TraceCollector{}
	items2 := qr2.BatchTracers(context.Background(), queries[:4], []Tracer{nil, slotTC})
	for i, it := range items2 {
		if it.Err != nil {
			t.Fatalf("slot %d: %v", i, it.Err)
		}
	}
	if len(slotTC.Iters) == 0 {
		t.Error("override slot emitted no trajectory")
	}
	wantShared := items2[0].Result.Iterations + items2[2].Result.Iterations + items2[3].Result.Iterations
	if len(shared.Iters) != wantShared {
		t.Errorf("session tracer saw %d iterations, want %d (slots 0,2,3 only — override slot must not leak in)",
			len(shared.Iters), wantShared)
	}
}
