package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"flos/internal/graph"
	"flos/internal/measure"
)

// Serving-mode certification properties, checked on the same deterministic
// golden scenarios the byte-identity suite pins (goldenGraphs x
// goldenQueries x all five measures).

// displaySlack converts an ε budget from the engine's certification-key
// scale into the measure's displayed score scale. PHP/EI display raw PHP
// proximities, RWR's displayed score IS the degree-weighted PHP key, and
// THT hops are native; DHT's Theorem-2 map (1-php)/C stretches by 1/C.
func displaySlack(kind measure.Kind, p measure.Params, eps float64) float64 {
	if kind == measure.DHT {
		return eps / p.C
	}
	return eps
}

// certEps picks a per-measure ε that is meaningful in that measure's
// certification-key scale: fractional proximities for the PHP family,
// fractional hop counts for THT.
func certEps(kind measure.Kind) float64 {
	if kind == measure.THT {
		return 0.05
	}
	return 1e-3
}

// TestExactCertificationWellFormed checks the proof block every exact result
// now carries: certified with at most TieEps residual gap, and per-node
// score intervals that are ordered, parallel to TopK, and contain the
// displayed scores.
func TestExactCertificationWellFormed(t *testing.T) {
	for _, gc := range goldenGraphs(t) {
		for _, kind := range measure.Kinds() {
			for _, q := range goldenQueries(gc.g.NumNodes()) {
				opt := goldenOptions(kind, true)
				res, err := TopK(gc.g, q, opt)
				if err != nil {
					t.Fatalf("%s/%v/q%d: %v", gc.name, kind, q, err)
				}
				c := res.Certification
				if c.Mode != ModeExact {
					t.Fatalf("%s/%v/q%d: mode %v, want exact", gc.name, kind, q, c.Mode)
				}
				if !c.Certified {
					t.Fatalf("%s/%v/q%d: exact result not certified", gc.name, kind, q)
				}
				if c.Epsilon != 0 {
					t.Fatalf("%s/%v/q%d: exact certification carries epsilon %g", gc.name, kind, q, c.Epsilon)
				}
				if c.Gap < 0 || c.Gap > opt.TieEps {
					t.Fatalf("%s/%v/q%d: exact gap %g outside [0, TieEps=%g]", gc.name, kind, q, c.Gap, opt.TieEps)
				}
				if c.Iterations != res.Iterations {
					t.Fatalf("%s/%v/q%d: certification iterations %d != result iterations %d",
						gc.name, kind, q, c.Iterations, res.Iterations)
				}
				checkBounds(t, fmt.Sprintf("%s/%v/q%d", gc.name, kind, q), res)
			}
		}
	}
}

// checkBounds asserts the Bounds block is parallel to TopK, ordered, and
// contains each displayed score.
func checkBounds(t *testing.T, label string, res *Result) {
	t.Helper()
	c := res.Certification
	if len(c.Bounds) != len(res.TopK) {
		t.Fatalf("%s: %d bounds for %d results", label, len(c.Bounds), len(res.TopK))
	}
	for i, b := range c.Bounds {
		r := res.TopK[i]
		if b.Node != r.Node {
			t.Fatalf("%s: bounds[%d] is node %d, TopK[%d] is node %d", label, i, b.Node, i, r.Node)
		}
		tol := 1e-9 + 1e-9*abs(b.Upper)
		if b.Lower > b.Upper+tol {
			t.Fatalf("%s: node %d interval inverted: [%g, %g]", label, b.Node, b.Lower, b.Upper)
		}
		if r.Score < b.Lower-tol || r.Score > b.Upper+tol {
			t.Fatalf("%s: node %d score %g outside certified interval [%g, %g]",
				label, b.Node, r.Score, b.Lower, b.Upper)
		}
	}
}

// TestCertificationGapMonotone checks the anytime/ε contract's backbone: the
// residual certification gap (oriented so 0 = fully separated) never
// increases from one iteration to the next, for every golden scenario.
//
// For the PHP-family measures this holds unconditionally: the rest side is
// anchored by the monotone dummy value, so fresh nodes join with upper
// bounds no looser than the mass they were carved out of. THT's fresh nodes
// instead enter the rest side with level lower bounds at their loose
// initialization, which the incremental solver only tightens over the next
// sweeps — so THT's instantaneous gap may loosen exactly when the frontier
// grows (the barbell corridor exhibits this), and the monotone guarantee is
// scoped to iterations that visited no new node.
func TestCertificationGapMonotone(t *testing.T) {
	for _, gc := range goldenGraphs(t) {
		for _, kind := range measure.Kinds() {
			for _, q := range goldenQueries(gc.g.NumNodes()) {
				opt := goldenOptions(kind, true)
				tc := &TraceCollector{}
				opt.Tracer = tc
				if _, err := TopK(gc.g, q, opt); err != nil {
					t.Fatalf("%s/%v/q%d: %v", gc.name, kind, q, err)
				}
				prev := -1.0
				for _, s := range tc.Iters {
					if !s.GapValid {
						continue
					}
					residual := measure.CertGap(kind, s.KthBound, s.RestBound)
					exempt := kind == measure.THT && s.NewNodes > 0
					if prev >= 0 && !exempt {
						tol := 1e-12 + 1e-9*prev
						if residual > prev+tol {
							t.Fatalf("%s/%v/q%d: gap grew at iteration %d: %g -> %g",
								gc.name, kind, q, s.Iteration, prev, residual)
						}
					}
					prev = residual
				}
			}
		}
	}
}

// TestEpsilonModeCertification checks ModeEpsilon against the exact answer on
// every golden scenario: the run is certified with achieved gap <= ε, stops
// no later than exact mode (same expansion schedule, wider slack), and every
// returned node is ε-competitive with the exact top-k — its certified score
// interval reaches within ε (display scale) of the exact k-th score, and
// cannot beat the exact best.
func TestEpsilonModeCertification(t *testing.T) {
	for _, gc := range goldenGraphs(t) {
		for _, kind := range measure.Kinds() {
			eps := certEps(kind)
			for _, q := range goldenQueries(gc.g.NumNodes()) {
				label := fmt.Sprintf("%s/%v/q%d", gc.name, kind, q)
				exOpt := goldenOptions(kind, true)
				exact, err := TopK(gc.g, q, exOpt)
				if err != nil {
					t.Fatalf("%s: exact: %v", label, err)
				}
				epOpt := exOpt
				epOpt.Mode = ModeEpsilon
				epOpt.Epsilon = eps
				res, err := TopK(gc.g, q, epOpt)
				if err != nil {
					t.Fatalf("%s: epsilon: %v", label, err)
				}

				c := res.Certification
				if c.Mode != ModeEpsilon || c.Epsilon != eps {
					t.Fatalf("%s: certification mode/ε = %v/%g, want epsilon/%g", label, c.Mode, c.Epsilon, eps)
				}
				if !c.Certified {
					t.Fatalf("%s: ε result not certified", label)
				}
				if c.Gap > eps {
					t.Fatalf("%s: achieved gap %g exceeds ε=%g", label, c.Gap, eps)
				}
				if res.Iterations > exact.Iterations {
					t.Fatalf("%s: ε mode ran %d iterations, exact only %d", label, res.Iterations, exact.Iterations)
				}
				checkBounds(t, label, res)

				// ε-competitiveness against the exact score range, in display
				// scale. Higher-is-closer: each returned interval must reach
				// the exact k-th score minus ε, and its lower end cannot
				// exceed the exact best (lb <= true score <= best).
				// Lower-is-closer mirrors both checks.
				best, worst := exact.TopK[0].Score, exact.TopK[len(exact.TopK)-1].Score
				slack := displaySlack(kind, epOpt.Params, eps)
				tol := 1e-6*(abs(best)+abs(worst)) + 1e-9
				for i, b := range c.Bounds {
					if kind.HigherIsCloser() {
						if b.Upper < worst-slack-tol {
							t.Fatalf("%s: node %d ub %g below exact kth score %g - ε(%g)",
								label, b.Node, b.Upper, worst, slack)
						}
						if b.Lower > best+tol {
							t.Fatalf("%s: node %d lb %g above exact best score %g", label, b.Node, b.Lower, best)
						}
					} else {
						if b.Lower > worst+slack+tol {
							t.Fatalf("%s: node %d lb %g above exact kth score %g + ε(%g)",
								label, b.Node, b.Lower, worst, slack)
						}
						if b.Upper < best-tol {
							t.Fatalf("%s: node %d ub %g below exact best score %g", label, b.Node, b.Upper, best)
						}
					}
					_ = i
				}
			}
		}
	}
}

// cancelTracer cancels its context after n observed iterations —
// deterministic mid-search interruption for the anytime tests.
type cancelTracer struct {
	n      int
	cancel context.CancelFunc
	seen   int
}

func (c *cancelTracer) ObserveIteration(IterStats) {
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
}

// TestAnytimeModeInterruption checks ModeAnytime's contract on every
// measure: a mid-search cancellation yields a nil error and an uncertified
// result whose certification block is well-formed, while the same
// interruption in exact mode yields an *Interrupted carrying the identical
// partial result. Runs under -race in the normal test sweep.
func TestAnytimeModeInterruption(t *testing.T) {
	g := randomConnected(t, 500, 1000, 2)
	for _, kind := range measure.Kinds() {
		q := graph.NodeID(166)

		// Anytime: cancel after 2 iterations — early enough that no measure's
		// search can have terminated — and expect a 200-shaped result.
		ctx, cancel := context.WithCancel(context.Background())
		opt := goldenOptions(kind, true)
		opt.Mode = ModeAnytime
		opt.Tracer = &cancelTracer{n: 2, cancel: cancel}
		res, err := TopKCtx(ctx, g, q, opt)
		cancel()
		if err != nil {
			t.Fatalf("%v: anytime interruption returned error: %v", kind, err)
		}
		c := res.Certification
		if c.Mode != ModeAnytime {
			t.Fatalf("%v: mode %v, want anytime", kind, c.Mode)
		}
		if c.Certified {
			t.Fatalf("%v: interrupted anytime result claims certified", kind)
		}
		if res.Exact {
			t.Fatalf("%v: interrupted anytime result claims exact", kind)
		}
		if c.Gap < 0 {
			t.Fatalf("%v: negative residual gap %g", kind, c.Gap)
		}
		if len(res.TopK) == 0 || len(res.TopK) > opt.K {
			t.Fatalf("%v: partial top-k has %d entries (k=%d)", kind, len(res.TopK), opt.K)
		}
		checkBounds(t, kind.String()+"/anytime", res)

		// Exact mode under the same interruption: *Interrupted with the
		// partial attached, not a silent loss.
		ctx2, cancel2 := context.WithCancel(context.Background())
		opt2 := goldenOptions(kind, true)
		opt2.Tracer = &cancelTracer{n: 2, cancel: cancel2}
		_, err = TopKCtx(ctx2, g, q, opt2)
		cancel2()
		var in *Interrupted
		if !errors.As(err, &in) {
			t.Fatalf("%v: exact interruption returned %v, want *Interrupted", kind, err)
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%v: interruption cause %v, want ErrCanceled", kind, err)
		}
		if in.Partial == nil {
			t.Fatalf("%v: *Interrupted dropped the in-flight partial", kind)
		}
		if in.Partial.Certification.Certified {
			t.Fatalf("%v: partial result claims certified", kind)
		}
		if len(in.Partial.TopK) == 0 {
			t.Fatalf("%v: partial result has no top-k", kind)
		}
	}
}

// TestAnytimeModeDeadline drives the deadline path end to end: a query under
// an expiring context deadline in anytime mode returns a result (possibly
// complete, on fast machines) instead of an error, and the certification
// block reports honestly which it was.
func TestAnytimeModeDeadline(t *testing.T) {
	g := randomConnected(t, 3000, 9000, 9)
	opt := goldenOptions(measure.RWR, true)
	opt.Mode = ModeAnytime

	// Already-expired deadline: the search must still answer without error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := TopKCtx(ctx, g, 17, opt)
	if err != nil {
		t.Fatalf("expired-context anytime query failed: %v", err)
	}
	if res.Certification.Certified {
		t.Fatalf("expired-context anytime result claims certified")
	}
	if res.Certification.Mode != ModeAnytime {
		t.Fatalf("mode %v, want anytime", res.Certification.Mode)
	}
	checkBounds(t, "anytime/expired", res)

	// Completed anytime run (no interruption): certified exact, same answer
	// as exact mode.
	res2, err := TopKCtx(context.Background(), g, 17, opt)
	if err != nil {
		t.Fatalf("uninterrupted anytime query failed: %v", err)
	}
	if !res2.Certification.Certified || !res2.Exact {
		t.Fatalf("uninterrupted anytime run not certified exact (certified=%v exact=%v)",
			res2.Certification.Certified, res2.Exact)
	}
	exOpt := goldenOptions(measure.RWR, true)
	exact, err := TopK(g, 17, exOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.TopK) != len(exact.TopK) {
		t.Fatalf("anytime returned %d results, exact %d", len(res2.TopK), len(exact.TopK))
	}
	for i := range exact.TopK {
		if res2.TopK[i].Node != exact.TopK[i].Node {
			t.Fatalf("rank %d: anytime node %d, exact node %d", i, res2.TopK[i].Node, exact.TopK[i].Node)
		}
	}
}
