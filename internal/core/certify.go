package core

import (
	"fmt"

	"flos/internal/graph"
	"flos/internal/measure"
)

// Certify checks a query result against the global-iteration oracle: it
// recomputes the exact proximity vector over the whole graph and verifies
// the returned set is a legal top-k (accepting either side of score ties
// within eps). It costs a full GI solve and exists for auditing and tests,
// not for production queries — the entire point of FLoS is not needing it.
func Certify(g graph.Graph, q graph.NodeID, res *Result, kind measure.Kind, p measure.Params, eps float64) error {
	if res == nil {
		return fmt.Errorf("core: nil result")
	}
	oracle, _, err := measure.Exact(g, q, kind, p)
	if err != nil {
		return err
	}
	k := len(res.TopK)
	got := measure.Nodes(res.TopK)
	if !measure.SameSetModuloTies(got, oracle, q, k, kind.HigherIsCloser(), eps) {
		want := measure.Nodes(measure.TopK(oracle, q, k, kind.HigherIsCloser()))
		return fmt.Errorf("core: result %v is not an exact top-%d (oracle %v)", got, k, want)
	}
	return nil
}
