package core

import (
	"testing"

	"flos/internal/graph"
	"flos/internal/measure"
)

func TestCertifyAcceptsFLoSResults(t *testing.T) {
	g := randomConnected(t, 60, 100, 5)
	for _, kind := range []measure.Kind{measure.PHP, measure.RWR, measure.THT} {
		opt := testOptions(kind, 5)
		res, err := TopK(g, 3, opt)
		if err != nil {
			t.Fatal(err)
		}
		p := opt.Params
		p.Tau = 1e-12
		if err := Certify(g, 3, res, kind, p, 1e-7); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
}

func TestCertifyRejectsWrongSet(t *testing.T) {
	g := randomConnected(t, 40, 60, 6)
	opt := testOptions(measure.PHP, 3)
	res, err := TopK(g, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the result with the query's farthest node.
	oracle := exactScores(t, g, 0, measure.PHP, opt.Params)
	worst := graph.NodeID(-1)
	for v := 1; v < len(oracle); v++ {
		if worst < 0 || oracle[v] < oracle[worst] {
			worst = graph.NodeID(v)
		}
	}
	bad := &Result{TopK: append([]measure.Ranked(nil), res.TopK...)}
	bad.TopK[0] = measure.Ranked{Node: worst}
	if err := Certify(g, 0, bad, measure.PHP, opt.Params, 1e-9); err == nil {
		t.Error("corrupted result certified")
	}
	if err := Certify(g, 0, nil, measure.PHP, opt.Params, 1e-9); err == nil {
		t.Error("nil result certified")
	}
}
