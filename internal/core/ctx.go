package core

import (
	"context"
	"errors"
	"fmt"

	"flos/internal/graph"
	"flos/internal/measure"
)

// Sentinel errors for context-terminated queries. TopKCtx and
// UnifiedTopKCtx wrap them in an *Interrupted carrying the partial work
// counters; test with errors.Is.
var (
	// ErrCanceled reports that the query's context was canceled.
	ErrCanceled = errors.New("core: query canceled")
	// ErrDeadline reports that the query's context deadline expired.
	ErrDeadline = errors.New("core: query deadline exceeded")
)

// Sentinel errors for rejected queries; test with errors.Is. They classify
// the caller's mistake so servers can map them to 4xx without string
// matching.
var (
	// ErrInvalidOptions reports malformed Options (Options.Validate).
	ErrInvalidOptions = errors.New("core: invalid options")
	// ErrInvalidQuery reports a query node outside the graph's node range.
	ErrInvalidQuery = errors.New("core: invalid query node")
)

// Interrupted is the error returned when a query's context fires before the
// bounds separate. It records how much work the search had done — the same
// counters a completed Result carries — so callers can account for (and
// meter) abandoned queries. Unwrap yields ErrCanceled or ErrDeadline.
type Interrupted struct {
	// Cause is ErrCanceled or ErrDeadline.
	Cause error
	// Visited is |S| at interruption.
	Visited int
	// Iterations counts completed local expansions.
	Iterations int
	// Sweeps counts bound-solver relaxations performed.
	Sweeps int
	// Partial is the in-flight top-k at interruption time, with
	// Certification.Certified=false and the residual gap — the same result
	// ModeAnytime would have returned instead of this error. Nil only when
	// interruption preceded the first solver iteration entirely (e.g. a
	// batch slot that was never started).
	Partial *Result
	// PartialUnified is Partial's counterpart for unified queries.
	PartialUnified *UnifiedResult
}

func (e *Interrupted) Error() string {
	return fmt.Sprintf("%v after %d iterations (%d visited, %d sweeps)",
		e.Cause, e.Iterations, e.Visited, e.Sweeps)
}

// Unwrap exposes the sentinel for errors.Is.
func (e *Interrupted) Unwrap() error { return e.Cause }

// interrupted maps a context error onto the typed sentinels.
func interrupted(ctxErr error, visited, iterations, sweeps int) *Interrupted {
	cause := ErrCanceled
	if errors.Is(ctxErr, context.DeadlineExceeded) {
		cause = ErrDeadline
	}
	return &Interrupted{Cause: cause, Visited: visited, Iterations: iterations, Sweeps: sweeps}
}

// TopKCtx is TopK with cancellation: the search checks ctx at every local
// expansion and returns an *Interrupted (wrapping ErrCanceled or
// ErrDeadline) as soon as the context fires. Iterations are small — one
// boundary-batch expansion plus an incremental bound re-solve — so the
// response to cancellation is prompt even on large graphs.
//
// Each call builds engine state from scratch; hold a Querier to reuse it
// across queries.
func TopKCtx(ctx context.Context, g graph.Graph, q graph.NodeID, opt Options) (*Result, error) {
	return topKIn(ctx, g, q, opt, nil)
}

// topKIn validates and dispatches one query; ws supplies a reusable engine
// workspace (nil runs cold).
func topKIn(ctx context.Context, g graph.Graph, q graph.NodeID, opt Options, ws *Workspace) (*Result, error) {
	if snapper, ok := g.(graph.Snapshotter); ok {
		// Live backend: pin one immutable snapshot for the whole search so
		// concurrent mutation batches cannot tear the topology mid-query.
		snap, release := snapper.AcquireSnapshot()
		defer release()
		g = snap
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if q < 0 || int(q) >= g.NumNodes() {
		return nil, fmt.Errorf("%w: query node %d outside [0,%d)", ErrInvalidQuery, q, g.NumNodes())
	}
	if opt.Measure == measure.THT {
		return thtTopK(ctx, g, q, opt, ws)
	}
	return phpFamilyTopK(ctx, g, q, opt, ws)
}
