package core

import (
	"sort"

	"flos/internal/graph"
	"flos/internal/linalg"
)

// phpEngine is the native FLoS bound engine for PHP-shaped systems
// (r = c·T·r + e_q with the query row zeroed). It maintains, over the
// visited set S:
//
//   - the lower-bound system: every transition probability touching an
//     unvisited node deleted (Theorem 3 / Section 4.2);
//   - the upper-bound system: every boundary-crossing transition redirected
//     into a dummy node d of constant value rd (Theorem 5 / Section 4.3);
//   - optionally the self-loop tightening of Section 5.3.
//
// All node bookkeeping is in local indices 0..len(nodes)-1; local index 0 is
// always the query.
type phpEngine struct {
	g       graph.Graph
	q       graph.NodeID
	c       float64
	tau     float64
	maxIter int
	tighten bool

	nodes []graph.NodeID         // local -> global
	local map[graph.NodeID]int32 // global -> local

	adjN [][]graph.NodeID // cached global adjacency of visited nodes
	adjW [][]float64

	deg    []float64 // full-graph weighted degree
	inW    []float64 // Σ weights of incident edges whose far end is in S
	outCnt []int32   // # neighbors outside S; >0 ⇔ boundary

	t    *linalg.RowMatrix // off-diagonal local transition entries (row q empty)
	ladj [][]int32         // local undirected adjacency (dependency graph for relaxation)

	lb, ub []float64
	rd     float64 // dummy-node value

	// Worklist state for the residual-driven bound solver: one queue per
	// bound side, with membership bitmaps and per-node accumulated input
	// drift (pend). A node re-relaxes once its inputs have cumulatively
	// moved enough to shift it by more than τ — individual sub-τ changes
	// accumulate instead of being dropped, so the solved bounds track the
	// Jacobi-to-τ solution.
	queueLB, queueUB []int32
	inQLB, inQUB     []bool
	pendLB, pendUB   []float64

	// Tightening state, valid only for boundary nodes and refreshed lazily.
	selfLoop   []float64 // diagonal entry c·Σ_{j∉S} p_ij·p_ji
	dummyTight []float64 // tightened dummy entry c·Σ_{j∉S} p_ij·(1−p_ji)
	dirty      []bool    // outside-neighborhood changed since last refresh
	degCache   map[graph.NodeID]float64

	sweeps       int // node relaxations performed by the bound solver
	degreeProbes int
}

func newPHPEngine(g graph.Graph, q graph.NodeID, c, tau float64, maxIter int, tighten bool) *phpEngine {
	e := &phpEngine{
		g:        g,
		q:        q,
		c:        c,
		tau:      tau,
		maxIter:  maxIter,
		tighten:  tighten,
		local:    make(map[graph.NodeID]int32),
		t:        linalg.NewRowMatrix(0),
		rd:       1,
		degCache: make(map[graph.NodeID]float64),
	}
	e.visit(q)
	e.lb[0] = 1
	e.ub[0] = 1
	return e
}

// visit pulls node v into S: queries its adjacency, wires up the local
// transition entries in both directions, and maintains the boundary
// bookkeeping. Precondition: v not yet visited.
func (e *phpEngine) visit(v graph.NodeID) int32 {
	li := int32(len(e.nodes))
	e.nodes = append(e.nodes, v)
	e.local[v] = li
	e.t.AddRow()

	nbrs, ws := e.g.Neighbors(v)
	// Copy: disk-backed graphs reuse the returned slices.
	cn := append([]graph.NodeID(nil), nbrs...)
	cw := append([]float64(nil), ws...)
	e.adjN = append(e.adjN, cn)
	e.adjW = append(e.adjW, cw)

	// First pass: the full degree (needed to normalize v's own transition
	// probabilities) and the in/out split.
	var d, in float64
	var out int32
	for i, u := range cn {
		d += cw[i]
		if _, ok := e.local[u]; ok {
			in += cw[i]
		} else {
			out++
		}
	}
	e.deg = append(e.deg, d)
	e.inW = append(e.inW, in)
	e.outCnt = append(e.outCnt, out)
	e.lb = append(e.lb, 0)
	e.ub = append(e.ub, 1)
	e.selfLoop = append(e.selfLoop, 0)
	e.dummyTight = append(e.dummyTight, 0)
	e.dirty = append(e.dirty, true)
	e.ladj = append(e.ladj, nil)
	e.inQLB = append(e.inQLB, false)
	e.inQUB = append(e.inQUB, false)
	e.pendLB = append(e.pendLB, 0)
	e.pendUB = append(e.pendUB, 0)
	e.enqueue(li)

	// Second pass: wire transition entries to/from already-visited neighbors
	// and update their boundary bookkeeping. Touched neighbors join the
	// relaxation worklists: their rows gained an entry.
	for i, u := range cn {
		lu, ok := e.local[u]
		if !ok {
			continue
		}
		if v != e.q && d > 0 {
			e.t.Append(li, lu, cw[i]/d)
		}
		// Reverse direction u -> v, unless u is the query (zeroed row).
		if u != e.q && e.deg[lu] > 0 {
			e.t.Append(lu, li, cw[i]/e.deg[lu])
		}
		e.ladj[li] = append(e.ladj[li], lu)
		e.ladj[lu] = append(e.ladj[lu], li)
		e.inW[lu] += cw[i]
		e.outCnt[lu]--
		e.dirty[lu] = true
		e.enqueue(lu)
	}
	return li
}

// enqueue adds a node to both bound worklists.
func (e *phpEngine) enqueue(i int32) {
	if !e.inQLB[i] {
		e.inQLB[i] = true
		e.queueLB = append(e.queueLB, i)
	}
	if !e.inQUB[i] {
		e.inQUB[i] = true
		e.queueUB = append(e.queueUB, i)
	}
}

// size returns |S|.
func (e *phpEngine) size() int { return len(e.nodes) }

// isBoundary reports whether local node i has unvisited neighbors.
func (e *phpEngine) isBoundary(i int32) bool { return e.outCnt[i] > 0 }

// outMass returns Σ_{j∉S} p_ij for local node i — the probability mass the
// untightened upper bound redirects to the dummy node.
func (e *phpEngine) outMass(i int32) float64 {
	if e.deg[i] == 0 {
		return 0
	}
	m := (e.deg[i] - e.inW[i]) / e.deg[i]
	if m < 0 {
		return 0
	}
	return m
}

// degreeOf fetches (and caches) the full degree of an unvisited node —
// the only information Section 5.3's tightening needs from outside S.
func (e *phpEngine) degreeOf(v graph.NodeID) float64 {
	if d, ok := e.degCache[v]; ok {
		return d
	}
	d := e.g.Degree(v)
	e.degreeProbes++
	e.degCache[v] = d
	return d
}

// refreshTightening recomputes the self-loop and tightened-dummy entries of
// Lemmas 3 and 4 for boundary nodes whose outside neighborhood changed:
//
//	selfLoop_i   = c·Σ_{j∈N_i∩S̄} p_ij·p_ji
//	dummyTight_i = c·Σ_{j∈N_i∩S̄} p_ij·(1−p_ji)
//
// Both carry one factor of c inside the entry (the star-to-mesh edge stands
// for a two-step walk); the solver applies the second factor.
func (e *phpEngine) refreshTightening() {
	if !e.tighten {
		return
	}
	for i := int32(0); i < int32(e.size()); i++ {
		if !e.dirty[i] {
			continue
		}
		e.dirty[i] = false
		e.selfLoop[i] = 0
		e.dummyTight[i] = 0
		if e.outCnt[i] == 0 || e.deg[i] == 0 || e.nodes[i] == e.q {
			continue
		}
		var self, dum float64
		for k, u := range e.adjN[i] {
			if _, ok := e.local[u]; ok {
				continue
			}
			pij := e.adjW[i][k] / e.deg[i]
			dj := e.degreeOf(u)
			var pji float64
			if dj > 0 {
				pji = e.adjW[i][k] / dj
			}
			self += pij * pji
			dum += pij * (1 - pji)
		}
		e.selfLoop[i] = e.c * self
		e.dummyTight[i] = e.c * dum
	}
}

// dummyEntry returns local node i's transition entry into the dummy node for
// the upper-bound system.
func (e *phpEngine) dummyEntry(i int32) float64 {
	if e.nodes[i] == e.q || e.outCnt[i] == 0 {
		return 0
	}
	if e.tighten {
		return e.dummyTight[i]
	}
	return e.outMass(i)
}

// selfEntry returns local node i's diagonal entry (0 unless tightening).
func (e *phpEngine) selfEntry(i int32) float64 {
	if !e.tighten || e.nodes[i] == e.q || e.outCnt[i] == 0 {
		return 0
	}
	return e.selfLoop[i]
}

// solveLower re-solves the lower-bound system to tolerance, warm-started
// from the previous lower bound (a sub-solution, so truncation keeps
// validity).
//
// The solver is a residual-driven Gauss–Seidel relaxation over a worklist
// rather than full Jacobi sweeps: expansion enqueues exactly the rows whose
// equations changed, each relaxation applies the closed-form update
//
//	r_i ← (c·(Σ_j T_ij·r_j + dummy_i·r_d) + e_i) / (1 − c·self_i)
//
// and re-enqueues i's local neighbors when r_i moved by more than τ. It
// reaches the same fixpoint as Algorithm 7's iteration and keeps the same
// one-sided monotonicity (a single-coordinate relaxation of a sub-solution
// stays below the fixpoint, of a super-solution above), so bound validity
// under truncation is untouched — but its cost tracks the changed region,
// not |S|, which matters because FLoS re-solves after every expansion.
func (e *phpEngine) solveLower() {
	e.relax(e.lb, e.inQLB, e.pendLB, &e.queueLB, false)
}

// solveUpper re-solves the upper-bound system; see solveLower.
func (e *phpEngine) solveUpper() {
	e.relax(e.ub, e.inQUB, e.pendUB, &e.queueUB, true)
}

func (e *phpEngine) relax(r []float64, inQ []bool, pend []float64, queue *[]int32, withDummy bool) {
	q := *queue
	budget := int64(e.maxIter) * int64(e.size())
	var processed int64
	for len(q) > 0 && processed < budget {
		i := q[0]
		q = q[1:]
		inQ[i] = false
		pend[i] = 0
		processed++
		e.sweeps++
		if e.nodes[i] == e.q {
			r[i] = 1
			continue
		}
		var s float64
		for _, en := range e.t.Rows[i] {
			s += en.Val * r[en.Col]
		}
		if withDummy {
			s += e.dummyEntry(i) * e.rd
		}
		v := e.c * s
		if self := e.selfEntry(i); self > 0 {
			v /= 1 - e.c*self
		}
		d := abs(v - r[i])
		r[i] = v
		if d == 0 {
			continue
		}
		// Charge the change to every dependent row; a row re-relaxes once
		// its accumulated potential shift exceeds the propagation threshold.
		// (c bounds the entry value times decay, so c·d overestimates the
		// per-row effect.) The threshold sits a factor 16 below τ so the
		// relaxed bounds are at least as tight as a Jacobi-to-τ solve — the
		// RWR termination guard compares quantities near the τ scale, where
		// any extra slack inflates the visited set.
		theta := e.tau / 16
		for _, j := range e.ladj[i] {
			if e.nodes[j] == e.q {
				continue
			}
			pend[j] += e.c * d
			if !inQ[j] && pend[j] > theta {
				inQ[j] = true
				q = append(q, j)
			}
		}
	}
	// Drained (len 0) or budget hit: keep whatever is pending so the inQ
	// flags stay consistent with the queue contents.
	*queue = q
}

// updateDummy lowers rd to max_{i∈δS} ub_i (Algorithm 5 line 7). It must run
// BEFORE the expansion that moves from S^{t-1} to S^t, because the bound
// r_d ≥ r_j (∀ j unvisited) is proved against the previous boundary.
//
// A decrease smaller than τ is skipped: a stale, larger r_d keeps every
// upper bound valid (it only loosens them), and skipping avoids re-relaxing
// the whole boundary for negligible gain.
func (e *phpEngine) updateDummy() {
	maxUB := 0.0
	found := false
	for i := int32(0); i < int32(e.size()); i++ {
		if e.isBoundary(i) {
			found = true
			if e.ub[i] > maxUB {
				maxUB = e.ub[i]
			}
		}
	}
	if found && e.rd-maxUB <= e.tau/16 {
		return
	}
	if !found {
		maxUB = 0 // component exhausted: no mass flows to the dummy anyway
	}
	if maxUB >= e.rd {
		return
	}
	e.rd = maxUB
	// Every boundary equation references r_d; re-relax them.
	for i := int32(0); i < int32(e.size()); i++ {
		if e.isBoundary(i) && !e.inQUB[i] {
			e.inQUB[i] = true
			e.queueUB = append(e.queueUB, i)
		}
	}
}

// pickExpansion returns up to batch boundary nodes with the largest
// expansion priority ½(lb+ub), degree-weighted in RWR mode (Section 5.6),
// best first, ties toward the smaller global identifier. Returns nil when
// the boundary is empty (component exhausted).
//
// Algorithm 3 expands a single node per iteration; the batch size is an
// engineering knob (the caller grows it with |S|) that only affects the
// expansion schedule, never the exactness argument — every expansion is
// still a legal S^{t-1} → S^t step.
func (e *phpEngine) pickExpansion(rwrMode bool, batch int) []int32 {
	type cand struct {
		i   int32
		key float64
	}
	// Bounded selection: keep the `batch` best seen so far in a small
	// insertion-sorted slice (batch ≪ |S|).
	best := make([]cand, 0, batch)
	for i := int32(0); i < int32(e.size()); i++ {
		if !e.isBoundary(i) {
			continue
		}
		key := (e.lb[i] + e.ub[i]) / 2
		if rwrMode {
			key *= e.deg[i]
		}
		if len(best) == batch && key <= best[len(best)-1].key {
			continue
		}
		pos := len(best)
		for pos > 0 && (best[pos-1].key < key ||
			(best[pos-1].key == key && e.nodes[best[pos-1].i] > e.nodes[i])) {
			pos--
		}
		if len(best) < batch {
			best = append(best, cand{})
		}
		copy(best[pos+1:], best[pos:len(best)-1])
		best[pos] = cand{i, key}
	}
	out := make([]int32, len(best))
	for i, c := range best {
		out[i] = c.i
	}
	return out
}

// expand visits every unvisited neighbor of local node u and returns the
// newly visited global identifiers (Algorithm 3 line 2).
func (e *phpEngine) expand(u int32) []graph.NodeID {
	var added []graph.NodeID
	for _, v := range e.adjN[u] {
		if _, ok := e.local[v]; !ok {
			e.visit(v)
			added = append(added, v)
		}
	}
	return added
}

// interiorCount returns |S \ δS \ {q}|.
func (e *phpEngine) interiorCount() int {
	cnt := 0
	for i := int32(0); i < int32(e.size()); i++ {
		if !e.isBoundary(i) && e.nodes[i] != e.q {
			cnt++
		}
	}
	return cnt
}

// boundaryCount returns |δS|.
func (e *phpEngine) boundaryCount() int {
	cnt := 0
	for i := int32(0); i < int32(e.size()); i++ {
		if e.isBoundary(i) {
			cnt++
		}
	}
	return cnt
}

// certGap records the observables of one termination test for tracing: the
// k-th candidate's certified-side bound key and the best competing bound
// key it must clear. Filled only when the caller passes a non-nil pointer,
// and only once the test gets far enough to compare bounds (valid).
type certGap struct {
	valid bool
	kth   float64 // certified-side bound key of the k-th selected candidate
	rest  float64 // best competing bound key over everything else
}

// checkTermination implements Algorithm 6 (and its RWR variant from
// Section 5.6). key(lb_i) and key(ub_i) are lb/ub themselves for PHP-family
// queries, and deg_i·lb_i / deg_i·ub_i for RWR. wSbarUB is the w(S̄) guard
// value (0 when not in RWR mode). It returns the selected top-k local
// indices when the bounds separate, or nil. A non-nil gap receives the
// certification-gap observables (tracing only).
func (e *phpEngine) checkTermination(k int, rwrMode bool, wSbar float64, tieEps float64, gap *certGap) []int32 {
	type cand struct {
		i   int32
		key float64
	}
	exhausted := true
	var interior []cand
	for i := int32(0); i < int32(e.size()); i++ {
		if e.nodes[i] == e.q {
			continue
		}
		if e.isBoundary(i) {
			exhausted = false
			continue
		}
		key := e.lb[i]
		if rwrMode {
			key *= e.deg[i]
		}
		interior = append(interior, cand{i, key})
	}
	if len(interior) < k && !exhausted {
		return nil
	}
	sort.Slice(interior, func(a, b int) bool {
		if interior[a].key != interior[b].key {
			return interior[a].key > interior[b].key
		}
		return e.nodes[interior[a].i] < e.nodes[interior[b].i]
	})
	if k > len(interior) {
		if !exhausted {
			return nil
		}
		k = len(interior) // component smaller than k+1: return what exists
	}
	if k == 0 {
		return []int32{}
	}
	sel := interior[:k]
	inK := make(map[int32]bool, k)
	minK := sel[0].key
	for _, c := range sel {
		inK[c.i] = true
		if c.key < minK {
			minK = c.key
		}
	}
	// max over S \ K \ {q} of the upper-bound key.
	maxRest := 0.0
	maxBoundaryUB := 0.0
	for i := int32(0); i < int32(e.size()); i++ {
		if e.nodes[i] == e.q || inK[i] {
			continue
		}
		key := e.ub[i]
		if rwrMode {
			key *= e.deg[i]
		}
		if key > maxRest {
			maxRest = key
		}
		if e.isBoundary(i) && e.ub[i] > maxBoundaryUB {
			maxBoundaryUB = e.ub[i]
		}
	}
	// In RWR mode the best unvisited node scores at most
	// w(S̄)·max_{i∈δS} ub_i (second condition of Section 5.6; K is
	// interior-only, so the first loop saw every boundary node). Folding it
	// into rest makes the test one comparison and gives the trace the true
	// competing bound.
	rest := maxRest
	if rwrMode && !exhausted && wSbar*maxBoundaryUB > rest {
		rest = wSbar * maxBoundaryUB
	}
	if gap != nil {
		gap.valid = true
		gap.kth = minK
		gap.rest = rest
	}
	if minK < rest-tieEps {
		return nil
	}
	out := make([]int32, k)
	for i, c := range sel {
		out[i] = c.i
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
