package core

import (
	"flos/internal/core/kernel"
	"flos/internal/graph"
	"flos/internal/linalg"
)

// phpEngine is the native FLoS bound engine for PHP-shaped systems
// (r = c·T·r + e_q with the query row zeroed). On top of the shared
// localSearch substrate it maintains, over the visited set S:
//
//   - the lower-bound system: every transition probability touching an
//     unvisited node deleted (Theorem 3 / Section 4.2);
//   - the upper-bound system: every boundary-crossing transition redirected
//     into a dummy node d of constant value rd (Theorem 5 / Section 4.3);
//   - optionally the self-loop tightening of Section 5.3.
//
// All node bookkeeping is in local indices 0..len(nodes)-1; local index 0 is
// always the query.
//
// The two bound values of a node live interleaved in one struct-of-arrays
// store: bnd[2i] is the lower bound, bnd[2i+1] the upper. The fused solver
// (solveBounds) relaxes both systems in one pass, so the second system finds
// the row entries and its neighbors' bound pair already in cache instead of
// re-traversing t.Rows[i] cold.
//
// An engine is reusable: reset prepares it for a new query while keeping
// every slice's backing storage and logically clearing the global→local
// index and degree memo with a generation bump (see workspace.go). A cold
// engine (newPHPEngine) uses maps for the two indexes; a warm one uses
// dense stamped arrays sized to the graph.
type phpEngine struct {
	localSearch

	c       float64
	tau     float64
	maxIter int
	tighten bool

	t *linalg.RowMatrix // off-diagonal local transition entries (row q empty)

	// bnd is the interleaved bound store: lower bound of local node i at
	// bnd[2i], upper bound at bnd[2i+1]. Use lbAt/ubAt outside hot loops.
	bnd []float64
	rd  float64 // dummy-node value

	// Worklist state for the residual-driven bound solver: one queue per
	// bound side, with membership bitmaps and per-node accumulated input
	// drift (pend). A node re-relaxes once its inputs have cumulatively
	// moved enough to shift it by more than τ — individual sub-τ changes
	// accumulate instead of being dropped, so the solved bounds track the
	// Jacobi-to-τ solution.
	queueLB, queueUB []int32
	inQLB, inQUB     []bool
	pendLB, pendUB   []float64

	// Tightening state, valid only for boundary nodes and refreshed lazily.
	// dirtyList holds the nodes whose dirty flag is set (each at most once:
	// nodes are appended only on a false→true flip), so the refresh visits
	// the changed region instead of scanning all of S for set flags.
	selfLoop   []float64 // diagonal entry c·Σ_{j∉S} p_ij·p_ji
	dummyTight []float64 // tightened dummy entry c·Σ_{j∉S} p_ij·(1−p_ji)
	dirty      []bool    // outside-neighborhood changed since last refresh
	dirtyList  []int32
	degCache   degMemo

	degreeProbes int

	// Bound-solver kernel (PR 9): the engine owns expansion, wiring, dummy
	// updates, and certification, and delegates the relaxation sweeps to
	// kern through the kst view (a field, not a local, so the pointer passed
	// to SolvePHP never escapes to the heap on the warm path). kstats keeps
	// the last solve's telemetry for IterStats.
	kern   *kernel.Solver
	kst    kernel.PHPState
	kstats kernel.Stats

	// Footprint capture (Options.CaptureFootprint): probed collects the
	// unvisited nodes whose Degree was read — the memo guarantees each node
	// appears at most once — and lastGuard records the final w(S̄) ceiling an
	// RWR search certified against. Both feed surgical cache invalidation.
	capProbes bool
	probed    []graph.NodeID
	lastGuard float64
}

// lbAt and ubAt expose the interleaved bound pair of local node i.
func (e *phpEngine) lbAt(i int32) float64 { return e.bnd[2*i] }
func (e *phpEngine) ubAt(i int32) float64 { return e.bnd[2*i+1] }

// newPHPEngine builds a cold single-query engine (map-backed indexes).
func newPHPEngine(g graph.Graph, q graph.NodeID, c, tau float64, maxIter int, tighten bool, kcfg kernel.Config) *phpEngine {
	e := &phpEngine{}
	e.reset(g, q, c, tau, maxIter, tighten, false, kcfg)
	return e
}

// reset prepares the engine for a new query, reusing all retained storage.
// dense selects the generation-stamped array indexes (warm workspaces);
// cold engines pass false and get maps. A reset engine behaves identically
// to a freshly constructed one — the expansion schedule, solver sweeps, and
// results are byte-for-byte the same.
func (e *phpEngine) reset(g graph.Graph, q graph.NodeID, c, tau float64, maxIter int, tighten, dense bool, kcfg kernel.Config) {
	e.c, e.tau, e.maxIter, e.tighten = c, tau, maxIter, tighten

	e.resetCommon(g, q, dense)
	e.degCache.init(g.NumNodes(), dense)
	if e.kern == nil {
		e.kern = kernel.NewSolver()
	}
	e.kern.Configure(kcfg)
	e.kstats = kernel.Stats{}

	e.bnd = e.bnd[:0]
	e.queueLB = e.queueLB[:0]
	e.queueUB = e.queueUB[:0]
	e.inQLB = e.inQLB[:0]
	e.inQUB = e.inQUB[:0]
	e.pendLB = e.pendLB[:0]
	e.pendUB = e.pendUB[:0]
	e.selfLoop = e.selfLoop[:0]
	e.dummyTight = e.dummyTight[:0]
	e.dirty = e.dirty[:0]
	e.dirtyList = e.dirtyList[:0]
	if e.t == nil {
		e.t = linalg.NewRowMatrix(0)
	} else {
		e.t.Reset()
	}
	e.rd = 1
	e.degreeProbes = 0
	e.capProbes = false
	e.probed = e.probed[:0]
	e.lastGuard = 0

	e.visit(q)
	e.bnd[0] = 1 // lb_q
	e.bnd[1] = 1 // ub_q
}

// visit pulls node v into S: the substrate maintains the visited-set and
// frontier bookkeeping, then this wires the transition entries in both
// directions and seeds the solver worklists. Precondition: v not visited.
func (e *phpEngine) visit(v graph.NodeID) int32 {
	li := e.visitCommon(v)
	e.t.AddRow()

	e.bnd = append(e.bnd, 0, 1)
	e.selfLoop = append(e.selfLoop, 0)
	e.dummyTight = append(e.dummyTight, 0)
	e.dirty = append(e.dirty, false)
	e.inQLB = append(e.inQLB, false)
	e.inQUB = append(e.inQUB, false)
	e.pendLB = append(e.pendLB, 0)
	e.pendUB = append(e.pendUB, 0)
	e.markDirty(li)
	e.enqueue(li)

	// Wire transition entries to/from the already-visited neighbors the
	// substrate just linked (ladj[li] / visitW). Touched neighbors join the
	// relaxation worklists: their rows gained an entry.
	d := e.deg[li]
	for idx, lu := range e.ladj[li] {
		w := e.visitW[idx]
		if v != e.q && d > 0 {
			e.t.Append(li, lu, w/d)
		}
		// Reverse direction u -> v, unless u is the query (zeroed row).
		if e.nodes[lu] != e.q && e.deg[lu] > 0 {
			e.t.Append(lu, li, w/e.deg[lu])
		}
		e.markDirty(lu)
		e.enqueue(lu)
	}
	return li
}

// markDirty flags node i for a tightening refresh, appending it to the
// dirty worklist on a false→true flip (so the list holds each node once).
func (e *phpEngine) markDirty(i int32) {
	if !e.dirty[i] {
		e.dirty[i] = true
		e.dirtyList = append(e.dirtyList, i)
	}
}

// enqueue adds a node to both bound worklists.
func (e *phpEngine) enqueue(i int32) {
	if !e.inQLB[i] {
		e.inQLB[i] = true
		e.queueLB = append(e.queueLB, i)
	}
	if !e.inQUB[i] {
		e.inQUB[i] = true
		e.queueUB = append(e.queueUB, i)
	}
}

// outMass returns Σ_{j∉S} p_ij for local node i — the probability mass the
// untightened upper bound redirects to the dummy node.
func (e *phpEngine) outMass(i int32) float64 { return e.outMassOf(i, 0) }

// degreeOf fetches (and memoizes) the full degree of an unvisited node —
// the only information Section 5.3's tightening needs from outside S.
func (e *phpEngine) degreeOf(v graph.NodeID) float64 {
	if d, ok := e.degCache.get(v); ok {
		return d
	}
	d := e.g.Degree(v)
	e.degreeProbes++
	if e.capProbes {
		e.probed = append(e.probed, v)
	}
	e.degCache.put(v, d)
	return d
}

// refreshTightening recomputes the self-loop and tightened-dummy entries of
// Lemmas 3 and 4 for boundary nodes whose outside neighborhood changed:
//
//	selfLoop_i   = c·Σ_{j∈N_i∩S̄} p_ij·p_ji
//	dummyTight_i = c·Σ_{j∈N_i∩S̄} p_ij·(1−p_ji)
//
// Both carry one factor of c inside the entry (the star-to-mesh edge stands
// for a two-step walk); the solver applies the second factor. Only the
// dirty worklist is visited — each expansion dirties the new node and its
// visited neighbors, so the refresh cost tracks the changed region, not S.
func (e *phpEngine) refreshTightening() {
	if !e.tighten {
		return
	}
	for _, i := range e.dirtyList {
		e.dirty[i] = false
		e.selfLoop[i] = 0
		e.dummyTight[i] = 0
		if e.outCnt[i] == 0 || e.deg[i] == 0 || e.nodes[i] == e.q {
			continue
		}
		var self, dum float64
		for k, u := range e.adjN[i] {
			if e.local.has(u) {
				continue
			}
			pij := e.adjW[i][k] / e.deg[i]
			dj := e.degreeOf(u)
			var pji float64
			if dj > 0 {
				pji = e.adjW[i][k] / dj
			}
			self += pij * pji
			dum += pij * (1 - pji)
		}
		e.selfLoop[i] = e.c * self
		e.dummyTight[i] = e.c * dum
	}
	e.dirtyList = e.dirtyList[:0]
}

// dummyEntry returns local node i's transition entry into the dummy node for
// the upper-bound system.
func (e *phpEngine) dummyEntry(i int32) float64 {
	if e.nodes[i] == e.q || e.outCnt[i] == 0 {
		return 0
	}
	if e.tighten {
		return e.dummyTight[i]
	}
	return e.outMass(i)
}

// selfEntry returns local node i's diagonal entry (0 unless tightening).
func (e *phpEngine) selfEntry(i int32) float64 {
	if !e.tighten || e.nodes[i] == e.q || e.outCnt[i] == 0 {
		return 0
	}
	return e.selfLoop[i]
}

// solveBounds re-solves both bound systems to tolerance, warm-started from
// the previous bounds (the lower a sub-solution, the upper a
// super-solution, so truncation keeps validity on both sides).
//
// The solver is a residual-driven Gauss–Seidel relaxation over worklists
// rather than full Jacobi sweeps: expansion enqueues exactly the rows whose
// equations changed, each relaxation applies the closed-form update
//
//	r_i ← (c·(Σ_j T_ij·r_j + dummy_i·r_d) + e_i) / (1 − c·self_i)
//
// and re-enqueues i's local neighbors when r_i moved by more than τ. It
// reaches the same fixpoint as Algorithm 7's iteration and keeps the same
// one-sided monotonicity (a single-coordinate relaxation of a sub-solution
// stays below the fixpoint, of a super-solution above), so bound validity
// under truncation is untouched — but its cost tracks the changed region,
// not |S|, which matters because FLoS re-solves after every expansion.
//
// The relaxation sweeps themselves live in the kernel layer
// (internal/core/kernel): solveBounds packs the solve-call view — every
// field aliasing engine storage, local index 0 standing for the query node —
// and delegates to the configured kernel. The serial reference kernel is the
// verbatim relocation of the loop that used to live here (byte-identical
// results and sweep counters, pinned by the golden suite); the parallel and
// staged kernels trade bit-identity for speed while preserving one-sided
// bound validity, so the certified top-k sets are unchanged.
func (e *phpEngine) solveBounds() {
	e.kst = kernel.PHPState{
		Rows:       e.t.Rows,
		Ladj:       e.ladj,
		Bnd:        e.bnd,
		Rd:         e.rd,
		C:          e.c,
		Tau:        e.tau,
		Budget:     int64(e.maxIter) * int64(e.size()),
		QueueLB:    e.queueLB,
		QueueUB:    e.queueUB,
		InQLB:      e.inQLB,
		InQUB:      e.inQUB,
		PendLB:     e.pendLB,
		PendUB:     e.pendUB,
		Tighten:    e.tighten,
		Deg:        e.deg,
		InW:        e.inW,
		OutCnt:     e.outCnt,
		SelfLoop:   e.selfLoop,
		DummyTight: e.dummyTight,
	}
	e.kern.SolvePHP(&e.kst)
	// Queue slices may have been reallocated by kernel appends; the other
	// views are mutated in place.
	e.queueLB, e.queueUB = e.kst.QueueLB, e.kst.QueueUB
	e.kstats = e.kern.LastStats()
	e.sweeps += e.kstats.Sweeps
}

// updateDummy lowers rd to max_{i∈δS} ub_i (Algorithm 5 line 7). It must run
// BEFORE the expansion that moves from S^{t-1} to S^t, because the bound
// r_d ≥ r_j (∀ j unvisited) is proved against the previous boundary.
//
// A decrease smaller than τ is skipped: a stale, larger r_d keeps every
// upper bound valid (it only loosens them), and skipping avoids re-relaxing
// the whole boundary for negligible gain. Both scans walk the incremental
// boundary list — O(|δS|), not O(|S|).
func (e *phpEngine) updateDummy() {
	maxUB := 0.0
	found := false
	for _, i := range e.bList {
		if e.outCnt[i] > 0 {
			found = true
			if ub := e.bnd[2*i+1]; ub > maxUB {
				maxUB = ub
			}
		}
	}
	if found && e.rd-maxUB <= e.tau/16 {
		return
	}
	if !found {
		maxUB = 0 // component exhausted: no mass flows to the dummy anyway
	}
	if maxUB >= e.rd {
		return
	}
	e.rd = maxUB
	// Every boundary equation references r_d; re-relax them.
	for _, i := range e.bList {
		if e.outCnt[i] > 0 && !e.inQUB[i] {
			e.inQUB[i] = true
			e.queueUB = append(e.queueUB, i)
		}
	}
}

// pickExpansion returns up to batch boundary nodes with the largest
// expansion priority ½(lb+ub), degree-weighted in RWR mode (Section 5.6),
// best first, ties toward the smaller global identifier. Returns nil when
// the boundary is empty (component exhausted). The returned slice is engine
// scratch, valid until the next pickExpansion call.
//
// Algorithm 3 expands a single node per iteration; the batch size is an
// engineering knob (the caller grows it with |S|) that only affects the
// expansion schedule, never the exactness argument — every expansion is
// still a legal S^{t-1} → S^t step. The scan walks the boundary list in
// ascending local index — the same candidates in the same order as the old
// full-S sweep, at O(|δS|) cost.
func (e *phpEngine) pickExpansion(rwrMode bool, batch int) []int32 {
	// Bounded selection: keep the `batch` best seen so far in a small
	// insertion-sorted slice (batch ≪ |δS|).
	best := e.pickBuf[:0]
	for _, i := range e.bList {
		if e.outCnt[i] <= 0 {
			continue
		}
		key := (e.bnd[2*i] + e.bnd[2*i+1]) / 2
		if rwrMode {
			key *= e.deg[i]
		}
		if len(best) == batch && key <= best[len(best)-1].key {
			continue
		}
		pos := len(best)
		for pos > 0 && (best[pos-1].key < key ||
			(best[pos-1].key == key && e.nodes[best[pos-1].i] > e.nodes[i])) {
			pos--
		}
		if len(best) < batch {
			best = append(best, scored{})
		}
		copy(best[pos+1:], best[pos:len(best)-1])
		best[pos] = scored{i, key}
	}
	e.pickBuf = best
	if len(best) == 0 {
		return nil
	}
	out := e.pickOut[:0]
	for _, c := range best {
		out = append(out, c.i)
	}
	e.pickOut = out
	return out
}

// expand visits every unvisited neighbor of local node u, appending the
// newly visited global identifiers to added (Algorithm 3 line 2).
func (e *phpEngine) expand(u int32, added []graph.NodeID) []graph.NodeID {
	for _, v := range e.adjN[u] {
		if !e.local.has(v) {
			e.visit(v)
			added = append(added, v)
		}
	}
	return added
}

// certGap records the observables of one termination test for tracing: the
// k-th candidate's certified-side bound key and the best competing bound
// key it must clear. Filled only when the caller passes a non-nil pointer,
// and only once the test gets far enough to compare bounds (valid).
type certGap struct {
	valid bool
	kth   float64 // certified-side bound key of the k-th selected candidate
	rest  float64 // best competing bound key over everything else
}

// checkTermination implements Algorithm 6 (and its RWR variant from
// Section 5.6). key(lb_i) and key(ub_i) are lb/ub themselves for PHP-family
// queries, and deg_i·lb_i / deg_i·ub_i for RWR. wSbar is the w(S̄) guard
// value (0 when not in RWR mode). When the bounds separate it returns the
// selected top-k local indices appended to dst (possibly empty but non-nil);
// otherwise nil. A non-nil gap receives the certification-gap observables
// (tracing only).
//
// The candidate selection walks the incremental interior list through a
// k-bounded buffer ordered under the same total order the old full sort
// used, so no O(|S| log |S|) re-sort happens; the competing-bound scan
// splits into one pass over the interior list and one over the boundary
// list.
func (e *phpEngine) checkTermination(dst []int32, k int, rwrMode bool, wSbar float64, tieEps float64, gap *certGap) []int32 {
	exhausted := e.bLive == 0
	nCand := len(e.iList)
	if nCand < k && !exhausted {
		return nil
	}
	if k > nCand {
		// nCand < k and exhausted: the component is smaller than k+1;
		// return what exists.
		k = nCand
	}
	if k == 0 {
		if dst != nil {
			return dst[:0]
		}
		return []int32{}
	}
	sel := e.candBuf[:0]
	for _, i := range e.iList {
		key := e.bnd[2*i]
		if rwrMode {
			key *= e.deg[i]
		}
		sel = e.offerDesc(sel, k, i, key)
	}
	e.candBuf = sel
	e.markSel(sel)
	minK := sel[len(sel)-1].key // buffer is sorted descending
	// max over S \ K \ {q} of the upper-bound key: interior candidates not
	// selected, plus every boundary node.
	maxRest := 0.0
	for _, i := range e.iList {
		if e.inSel[i] {
			continue
		}
		key := e.bnd[2*i+1]
		if rwrMode {
			key *= e.deg[i]
		}
		if key > maxRest {
			maxRest = key
		}
	}
	maxBoundaryUB := 0.0
	for _, i := range e.bList {
		if e.outCnt[i] <= 0 || e.nodes[i] == e.q {
			continue
		}
		ub := e.bnd[2*i+1]
		key := ub
		if rwrMode {
			key *= e.deg[i]
		}
		if key > maxRest {
			maxRest = key
		}
		if ub > maxBoundaryUB {
			maxBoundaryUB = ub
		}
	}
	e.clearSel(sel)
	// In RWR mode the best unvisited node scores at most
	// w(S̄)·max_{i∈δS} ub_i (second condition of Section 5.6; K is
	// interior-only, so the boundary pass saw every boundary node). Folding
	// it into rest makes the test one comparison and gives the trace the
	// true competing bound.
	rest := maxRest
	if rwrMode && !exhausted && wSbar*maxBoundaryUB > rest {
		rest = wSbar * maxBoundaryUB
	}
	if gap != nil {
		gap.valid = true
		gap.kth = minK
		gap.rest = rest
	}
	if minK < rest-tieEps {
		return nil
	}
	out := dst[:0]
	for _, c := range sel {
		out = append(out, c.i)
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
