package core

import (
	"flos/internal/graph"
	"flos/internal/linalg"
)

// phpEngine is the native FLoS bound engine for PHP-shaped systems
// (r = c·T·r + e_q with the query row zeroed). It maintains, over the
// visited set S:
//
//   - the lower-bound system: every transition probability touching an
//     unvisited node deleted (Theorem 3 / Section 4.2);
//   - the upper-bound system: every boundary-crossing transition redirected
//     into a dummy node d of constant value rd (Theorem 5 / Section 4.3);
//   - optionally the self-loop tightening of Section 5.3.
//
// All node bookkeeping is in local indices 0..len(nodes)-1; local index 0 is
// always the query.
//
// An engine is reusable: reset prepares it for a new query while keeping
// every slice's backing storage and logically clearing the global→local
// index and degree memo with a generation bump (see workspace.go). A cold
// engine (newPHPEngine) uses maps for the two indexes; a warm one uses
// dense stamped arrays sized to the graph.
type phpEngine struct {
	g       graph.Graph
	q       graph.NodeID
	c       float64
	tau     float64
	maxIter int
	tighten bool

	// stable records that g advertises graph.StableNeighbors, so adjN/adjW
	// below alias the graph's own slices instead of copying per visit.
	stable bool

	nodes []graph.NodeID // local -> global
	local nodeIndex      // global -> local

	adjN [][]graph.NodeID // cached global adjacency of visited nodes
	adjW [][]float64

	deg    []float64 // full-graph weighted degree
	inW    []float64 // Σ weights of incident edges whose far end is in S
	outCnt []int32   // # neighbors outside S; >0 ⇔ boundary

	t    *linalg.RowMatrix // off-diagonal local transition entries (row q empty)
	ladj [][]int32         // local undirected adjacency (dependency graph for relaxation)

	lb, ub []float64
	rd     float64 // dummy-node value

	// Worklist state for the residual-driven bound solver: one queue per
	// bound side, with membership bitmaps and per-node accumulated input
	// drift (pend). A node re-relaxes once its inputs have cumulatively
	// moved enough to shift it by more than τ — individual sub-τ changes
	// accumulate instead of being dropped, so the solved bounds track the
	// Jacobi-to-τ solution.
	queueLB, queueUB []int32
	inQLB, inQUB     []bool
	pendLB, pendUB   []float64

	// Tightening state, valid only for boundary nodes and refreshed lazily.
	selfLoop   []float64 // diagonal entry c·Σ_{j∉S} p_ij·p_ji
	dummyTight []float64 // tightened dummy entry c·Σ_{j∉S} p_ij·(1−p_ji)
	dirty      []bool    // outside-neighborhood changed since last refresh
	degCache   degMemo

	// Scratch reused across iterations (and, warm, across queries): the
	// expansion/termination scans would otherwise allocate per iteration.
	pickBuf  []scored
	pickOut  []int32
	candBuf  []scored
	selOut   []int32
	selOut2  []int32 // second selection buffer: unified search keeps two live
	inSel    []bool  // local-index marks; always cleared after use
	addedBuf []graph.NodeID

	sweeps       int // node relaxations performed by the bound solver
	degreeProbes int
}

// newPHPEngine builds a cold single-query engine (map-backed indexes).
func newPHPEngine(g graph.Graph, q graph.NodeID, c, tau float64, maxIter int, tighten bool) *phpEngine {
	e := &phpEngine{}
	e.reset(g, q, c, tau, maxIter, tighten, false)
	return e
}

// reset prepares the engine for a new query, reusing all retained storage.
// dense selects the generation-stamped array indexes (warm workspaces);
// cold engines pass false and get maps. A reset engine behaves identically
// to a freshly constructed one — the expansion schedule, solver sweeps, and
// results are byte-for-byte the same.
func (e *phpEngine) reset(g graph.Graph, q graph.NodeID, c, tau float64, maxIter int, tighten, dense bool) {
	e.g, e.q, e.c, e.tau, e.maxIter, e.tighten = g, q, c, tau, maxIter, tighten

	stable := graph.HasStableNeighbors(g)
	if e.stable && !stable {
		// The previous run aliased graph-owned adjacency rows; drop them so
		// the copy path below never appends into another graph's storage.
		e.adjN, e.adjW = nil, nil
	}
	e.stable = stable

	e.local.init(g.NumNodes(), dense)
	e.degCache.init(g.NumNodes(), dense)

	e.nodes = e.nodes[:0]
	e.adjN = e.adjN[:0]
	e.adjW = e.adjW[:0]
	e.deg = e.deg[:0]
	e.inW = e.inW[:0]
	e.outCnt = e.outCnt[:0]
	e.ladj = e.ladj[:0]
	e.lb = e.lb[:0]
	e.ub = e.ub[:0]
	e.queueLB = e.queueLB[:0]
	e.queueUB = e.queueUB[:0]
	e.inQLB = e.inQLB[:0]
	e.inQUB = e.inQUB[:0]
	e.pendLB = e.pendLB[:0]
	e.pendUB = e.pendUB[:0]
	e.selfLoop = e.selfLoop[:0]
	e.dummyTight = e.dummyTight[:0]
	e.dirty = e.dirty[:0]
	if e.t == nil {
		e.t = linalg.NewRowMatrix(0)
	} else {
		e.t.Reset()
	}
	e.rd = 1
	e.sweeps = 0
	e.degreeProbes = 0

	e.visit(q)
	e.lb[0] = 1
	e.ub[0] = 1
}

// visit pulls node v into S: queries its adjacency, wires up the local
// transition entries in both directions, and maintains the boundary
// bookkeeping. Precondition: v not yet visited.
func (e *phpEngine) visit(v graph.NodeID) int32 {
	li := int32(len(e.nodes))
	e.nodes = append(e.nodes, v)
	e.local.put(v, li)
	e.t.AddRow()

	nbrs, ws := e.g.Neighbors(v)
	if e.stable {
		// The graph guarantees slice stability; alias instead of copying.
		e.adjN = append(e.adjN, nbrs)
		e.adjW = append(e.adjW, ws)
	} else {
		// Copy: disk-backed graphs reuse the returned slices.
		e.adjN = appendRowCopy(e.adjN, nbrs)
		e.adjW = appendRowCopy(e.adjW, ws)
	}
	cn, cw := e.adjN[li], e.adjW[li]

	// First pass: the full degree (needed to normalize v's own transition
	// probabilities) and the in/out split.
	var d, in float64
	var out int32
	for i, u := range cn {
		d += cw[i]
		if e.local.has(u) {
			in += cw[i]
		} else {
			out++
		}
	}
	e.deg = append(e.deg, d)
	e.inW = append(e.inW, in)
	e.outCnt = append(e.outCnt, out)
	e.lb = append(e.lb, 0)
	e.ub = append(e.ub, 1)
	e.selfLoop = append(e.selfLoop, 0)
	e.dummyTight = append(e.dummyTight, 0)
	e.dirty = append(e.dirty, true)
	e.ladj = appendRow(e.ladj)
	e.inQLB = append(e.inQLB, false)
	e.inQUB = append(e.inQUB, false)
	e.pendLB = append(e.pendLB, 0)
	e.pendUB = append(e.pendUB, 0)
	e.enqueue(li)

	// Second pass: wire transition entries to/from already-visited neighbors
	// and update their boundary bookkeeping. Touched neighbors join the
	// relaxation worklists: their rows gained an entry.
	for i, u := range cn {
		lu, ok := e.local.get(u)
		if !ok {
			continue
		}
		if v != e.q && d > 0 {
			e.t.Append(li, lu, cw[i]/d)
		}
		// Reverse direction u -> v, unless u is the query (zeroed row).
		if u != e.q && e.deg[lu] > 0 {
			e.t.Append(lu, li, cw[i]/e.deg[lu])
		}
		e.ladj[li] = append(e.ladj[li], lu)
		e.ladj[lu] = append(e.ladj[lu], li)
		e.inW[lu] += cw[i]
		e.outCnt[lu]--
		e.dirty[lu] = true
		e.enqueue(lu)
	}
	return li
}

// enqueue adds a node to both bound worklists.
func (e *phpEngine) enqueue(i int32) {
	if !e.inQLB[i] {
		e.inQLB[i] = true
		e.queueLB = append(e.queueLB, i)
	}
	if !e.inQUB[i] {
		e.inQUB[i] = true
		e.queueUB = append(e.queueUB, i)
	}
}

// size returns |S|.
func (e *phpEngine) size() int { return len(e.nodes) }

// isBoundary reports whether local node i has unvisited neighbors.
func (e *phpEngine) isBoundary(i int32) bool { return e.outCnt[i] > 0 }

// outMass returns Σ_{j∉S} p_ij for local node i — the probability mass the
// untightened upper bound redirects to the dummy node.
func (e *phpEngine) outMass(i int32) float64 {
	if e.deg[i] == 0 {
		return 0
	}
	m := (e.deg[i] - e.inW[i]) / e.deg[i]
	if m < 0 {
		return 0
	}
	return m
}

// degreeOf fetches (and memoizes) the full degree of an unvisited node —
// the only information Section 5.3's tightening needs from outside S.
func (e *phpEngine) degreeOf(v graph.NodeID) float64 {
	if d, ok := e.degCache.get(v); ok {
		return d
	}
	d := e.g.Degree(v)
	e.degreeProbes++
	e.degCache.put(v, d)
	return d
}

// refreshTightening recomputes the self-loop and tightened-dummy entries of
// Lemmas 3 and 4 for boundary nodes whose outside neighborhood changed:
//
//	selfLoop_i   = c·Σ_{j∈N_i∩S̄} p_ij·p_ji
//	dummyTight_i = c·Σ_{j∈N_i∩S̄} p_ij·(1−p_ji)
//
// Both carry one factor of c inside the entry (the star-to-mesh edge stands
// for a two-step walk); the solver applies the second factor.
func (e *phpEngine) refreshTightening() {
	if !e.tighten {
		return
	}
	for i := int32(0); i < int32(e.size()); i++ {
		if !e.dirty[i] {
			continue
		}
		e.dirty[i] = false
		e.selfLoop[i] = 0
		e.dummyTight[i] = 0
		if e.outCnt[i] == 0 || e.deg[i] == 0 || e.nodes[i] == e.q {
			continue
		}
		var self, dum float64
		for k, u := range e.adjN[i] {
			if e.local.has(u) {
				continue
			}
			pij := e.adjW[i][k] / e.deg[i]
			dj := e.degreeOf(u)
			var pji float64
			if dj > 0 {
				pji = e.adjW[i][k] / dj
			}
			self += pij * pji
			dum += pij * (1 - pji)
		}
		e.selfLoop[i] = e.c * self
		e.dummyTight[i] = e.c * dum
	}
}

// dummyEntry returns local node i's transition entry into the dummy node for
// the upper-bound system.
func (e *phpEngine) dummyEntry(i int32) float64 {
	if e.nodes[i] == e.q || e.outCnt[i] == 0 {
		return 0
	}
	if e.tighten {
		return e.dummyTight[i]
	}
	return e.outMass(i)
}

// selfEntry returns local node i's diagonal entry (0 unless tightening).
func (e *phpEngine) selfEntry(i int32) float64 {
	if !e.tighten || e.nodes[i] == e.q || e.outCnt[i] == 0 {
		return 0
	}
	return e.selfLoop[i]
}

// solveLower re-solves the lower-bound system to tolerance, warm-started
// from the previous lower bound (a sub-solution, so truncation keeps
// validity).
//
// The solver is a residual-driven Gauss–Seidel relaxation over a worklist
// rather than full Jacobi sweeps: expansion enqueues exactly the rows whose
// equations changed, each relaxation applies the closed-form update
//
//	r_i ← (c·(Σ_j T_ij·r_j + dummy_i·r_d) + e_i) / (1 − c·self_i)
//
// and re-enqueues i's local neighbors when r_i moved by more than τ. It
// reaches the same fixpoint as Algorithm 7's iteration and keeps the same
// one-sided monotonicity (a single-coordinate relaxation of a sub-solution
// stays below the fixpoint, of a super-solution above), so bound validity
// under truncation is untouched — but its cost tracks the changed region,
// not |S|, which matters because FLoS re-solves after every expansion.
func (e *phpEngine) solveLower() {
	e.relax(e.lb, e.inQLB, e.pendLB, &e.queueLB, false)
}

// solveUpper re-solves the upper-bound system; see solveLower.
func (e *phpEngine) solveUpper() {
	e.relax(e.ub, e.inQUB, e.pendUB, &e.queueUB, true)
}

func (e *phpEngine) relax(r []float64, inQ []bool, pend []float64, queue *[]int32, withDummy bool) {
	// Pop via a head index rather than q = q[1:]: reslicing the front off
	// erodes the backing array's capacity one slot per pop, so the queue
	// (which persists across queries in a warm workspace) would reallocate
	// on nearly every append instead of amortizing to zero.
	q := *queue
	head := 0
	budget := int64(e.maxIter) * int64(e.size())
	var processed int64
	for head < len(q) && processed < budget {
		i := q[head]
		head++
		inQ[i] = false
		pend[i] = 0
		processed++
		e.sweeps++
		if e.nodes[i] == e.q {
			r[i] = 1
			continue
		}
		var s float64
		for _, en := range e.t.Rows[i] {
			s += en.Val * r[en.Col]
		}
		if withDummy {
			s += e.dummyEntry(i) * e.rd
		}
		v := e.c * s
		if self := e.selfEntry(i); self > 0 {
			v /= 1 - e.c*self
		}
		d := abs(v - r[i])
		r[i] = v
		if d == 0 {
			continue
		}
		// Charge the change to every dependent row; a row re-relaxes once
		// its accumulated potential shift exceeds the propagation threshold.
		// (c bounds the entry value times decay, so c·d overestimates the
		// per-row effect.) The threshold sits a factor 16 below τ so the
		// relaxed bounds are at least as tight as a Jacobi-to-τ solve — the
		// RWR termination guard compares quantities near the τ scale, where
		// any extra slack inflates the visited set.
		theta := e.tau / 16
		for _, j := range e.ladj[i] {
			if e.nodes[j] == e.q {
				continue
			}
			pend[j] += e.c * d
			if !inQ[j] && pend[j] > theta {
				inQ[j] = true
				q = append(q, j)
			}
		}
	}
	// Drained or budget hit: compact the unprocessed tail to the front so
	// the inQ flags stay consistent with the queue contents and the full
	// backing capacity survives for the next call.
	n := copy(q, q[head:])
	*queue = q[:n]
}

// updateDummy lowers rd to max_{i∈δS} ub_i (Algorithm 5 line 7). It must run
// BEFORE the expansion that moves from S^{t-1} to S^t, because the bound
// r_d ≥ r_j (∀ j unvisited) is proved against the previous boundary.
//
// A decrease smaller than τ is skipped: a stale, larger r_d keeps every
// upper bound valid (it only loosens them), and skipping avoids re-relaxing
// the whole boundary for negligible gain.
func (e *phpEngine) updateDummy() {
	maxUB := 0.0
	found := false
	for i := int32(0); i < int32(e.size()); i++ {
		if e.isBoundary(i) {
			found = true
			if e.ub[i] > maxUB {
				maxUB = e.ub[i]
			}
		}
	}
	if found && e.rd-maxUB <= e.tau/16 {
		return
	}
	if !found {
		maxUB = 0 // component exhausted: no mass flows to the dummy anyway
	}
	if maxUB >= e.rd {
		return
	}
	e.rd = maxUB
	// Every boundary equation references r_d; re-relax them.
	for i := int32(0); i < int32(e.size()); i++ {
		if e.isBoundary(i) && !e.inQUB[i] {
			e.inQUB[i] = true
			e.queueUB = append(e.queueUB, i)
		}
	}
}

// pickExpansion returns up to batch boundary nodes with the largest
// expansion priority ½(lb+ub), degree-weighted in RWR mode (Section 5.6),
// best first, ties toward the smaller global identifier. Returns nil when
// the boundary is empty (component exhausted). The returned slice is engine
// scratch, valid until the next pickExpansion call.
//
// Algorithm 3 expands a single node per iteration; the batch size is an
// engineering knob (the caller grows it with |S|) that only affects the
// expansion schedule, never the exactness argument — every expansion is
// still a legal S^{t-1} → S^t step.
func (e *phpEngine) pickExpansion(rwrMode bool, batch int) []int32 {
	// Bounded selection: keep the `batch` best seen so far in a small
	// insertion-sorted slice (batch ≪ |S|).
	best := e.pickBuf[:0]
	for i := int32(0); i < int32(e.size()); i++ {
		if !e.isBoundary(i) {
			continue
		}
		key := (e.lb[i] + e.ub[i]) / 2
		if rwrMode {
			key *= e.deg[i]
		}
		if len(best) == batch && key <= best[len(best)-1].key {
			continue
		}
		pos := len(best)
		for pos > 0 && (best[pos-1].key < key ||
			(best[pos-1].key == key && e.nodes[best[pos-1].i] > e.nodes[i])) {
			pos--
		}
		if len(best) < batch {
			best = append(best, scored{})
		}
		copy(best[pos+1:], best[pos:len(best)-1])
		best[pos] = scored{i, key}
	}
	e.pickBuf = best
	if len(best) == 0 {
		return nil
	}
	out := e.pickOut[:0]
	for _, c := range best {
		out = append(out, c.i)
	}
	e.pickOut = out
	return out
}

// expand visits every unvisited neighbor of local node u, appending the
// newly visited global identifiers to added (Algorithm 3 line 2).
func (e *phpEngine) expand(u int32, added []graph.NodeID) []graph.NodeID {
	for _, v := range e.adjN[u] {
		if !e.local.has(v) {
			e.visit(v)
			added = append(added, v)
		}
	}
	return added
}

// interiorCount returns |S \ δS \ {q}|.
func (e *phpEngine) interiorCount() int {
	cnt := 0
	for i := int32(0); i < int32(e.size()); i++ {
		if !e.isBoundary(i) && e.nodes[i] != e.q {
			cnt++
		}
	}
	return cnt
}

// boundaryCount returns |δS|.
func (e *phpEngine) boundaryCount() int {
	cnt := 0
	for i := int32(0); i < int32(e.size()); i++ {
		if e.isBoundary(i) {
			cnt++
		}
	}
	return cnt
}

// certGap records the observables of one termination test for tracing: the
// k-th candidate's certified-side bound key and the best competing bound
// key it must clear. Filled only when the caller passes a non-nil pointer,
// and only once the test gets far enough to compare bounds (valid).
type certGap struct {
	valid bool
	kth   float64 // certified-side bound key of the k-th selected candidate
	rest  float64 // best competing bound key over everything else
}

// markSel ensures the inSel scratch covers the current size and marks the
// first k entries of sel; clearSel undoes the marks. The scratch is only
// ever dirty between the two calls, so reuse across iterations and queries
// needs no bulk clearing.
func (e *phpEngine) markSel(sel []scored) {
	if cap(e.inSel) < e.size() {
		e.inSel = make([]bool, e.size())
	}
	e.inSel = e.inSel[:cap(e.inSel)]
	for _, c := range sel {
		e.inSel[c.i] = true
	}
}

func (e *phpEngine) clearSel(sel []scored) {
	for _, c := range sel {
		e.inSel[c.i] = false
	}
}

// checkTermination implements Algorithm 6 (and its RWR variant from
// Section 5.6). key(lb_i) and key(ub_i) are lb/ub themselves for PHP-family
// queries, and deg_i·lb_i / deg_i·ub_i for RWR. wSbar is the w(S̄) guard
// value (0 when not in RWR mode). When the bounds separate it returns the
// selected top-k local indices appended to dst (possibly empty but non-nil);
// otherwise nil. A non-nil gap receives the certification-gap observables
// (tracing only).
func (e *phpEngine) checkTermination(dst []int32, k int, rwrMode bool, wSbar float64, tieEps float64, gap *certGap) []int32 {
	exhausted := true
	interior := e.candBuf[:0]
	for i := int32(0); i < int32(e.size()); i++ {
		if e.nodes[i] == e.q {
			continue
		}
		if e.isBoundary(i) {
			exhausted = false
			continue
		}
		key := e.lb[i]
		if rwrMode {
			key *= e.deg[i]
		}
		interior = append(interior, scored{i, key})
	}
	e.candBuf = interior
	if len(interior) < k && !exhausted {
		return nil
	}
	sortScoredDesc(interior, e.nodes)
	if k > len(interior) {
		if !exhausted {
			return nil
		}
		k = len(interior) // component smaller than k+1: return what exists
	}
	if k == 0 {
		if dst != nil {
			return dst[:0]
		}
		return []int32{}
	}
	sel := interior[:k]
	e.markSel(sel)
	minK := sel[0].key
	for _, c := range sel {
		if c.key < minK {
			minK = c.key
		}
	}
	// max over S \ K \ {q} of the upper-bound key.
	maxRest := 0.0
	maxBoundaryUB := 0.0
	for i := int32(0); i < int32(e.size()); i++ {
		if e.nodes[i] == e.q || e.inSel[i] {
			continue
		}
		key := e.ub[i]
		if rwrMode {
			key *= e.deg[i]
		}
		if key > maxRest {
			maxRest = key
		}
		if e.isBoundary(i) && e.ub[i] > maxBoundaryUB {
			maxBoundaryUB = e.ub[i]
		}
	}
	e.clearSel(sel)
	// In RWR mode the best unvisited node scores at most
	// w(S̄)·max_{i∈δS} ub_i (second condition of Section 5.6; K is
	// interior-only, so the first loop saw every boundary node). Folding it
	// into rest makes the test one comparison and gives the trace the true
	// competing bound.
	rest := maxRest
	if rwrMode && !exhausted && wSbar*maxBoundaryUB > rest {
		rest = wSbar * maxBoundaryUB
	}
	if gap != nil {
		gap.valid = true
		gap.kth = minK
		gap.rest = rest
	}
	if minK < rest-tieEps {
		return nil
	}
	out := dst[:0]
	for _, c := range sel {
		out = append(out, c.i)
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
