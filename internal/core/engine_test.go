package core

// White-box tests of the bound-engine internals: visited-set bookkeeping,
// transition wiring, tightening terms, dummy-node management, the worklist
// solver, and the THT engine's distance maintenance.

import (
	"math"
	"testing"

	"flos/internal/core/kernel"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/linalg"
)

func newTestEngine(t *testing.T, g graph.Graph, q graph.NodeID, c float64, tighten bool) *phpEngine {
	t.Helper()
	return newPHPEngine(g, q, c, 1e-12, 100000, tighten, kernel.Config{})
}

func TestEngineVisitBookkeeping(t *testing.T) {
	g := gen.PaperExample()
	e := newTestEngine(t, g, 0, 0.8, false)
	// After construction S = {q}.
	if e.size() != 1 || e.nodes[0] != 0 {
		t.Fatalf("initial S wrong: %v", e.nodes)
	}
	if !e.isBoundary(0) {
		t.Fatal("query with neighbors must start as boundary")
	}
	if e.outCnt[0] != 2 {
		t.Fatalf("outCnt(q) = %d, want 2 (nodes 2,3 unvisited)", e.outCnt[0])
	}
	added := e.expand(0, nil)
	if len(added) != 2 {
		t.Fatalf("expanding q added %v", added)
	}
	if e.isBoundary(0) {
		t.Fatal("q still boundary after expanding both neighbors")
	}
	// Node 1 (paper 2) has neighbors {0, 3}: one unvisited.
	li, _ := e.local.get(1)
	if e.outCnt[li] != 1 {
		t.Fatalf("outCnt(node 2) = %d, want 1", e.outCnt[li])
	}
	if got := e.outMass(li); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("outMass(node 2) = %g, want 0.5", got)
	}
	// Transition rows: node 1's row must hold p(2→1) = 1/2 toward q.
	if got := e.t.At(li, 0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("T[2→1] = %g, want 0.5", got)
	}
	// The query's row stays empty.
	if len(e.t.Rows[0]) != 0 {
		t.Fatalf("query row non-empty: %v", e.t.Rows[0])
	}
}

// TestEngineLowerBoundMatchesDeletedSystem: after a couple of expansions the
// solved lower bound equals a direct dense solve of the deletion system
// (all transition probabilities touching S̄ removed).
func TestEngineLowerBoundMatchesDeletedSystem(t *testing.T) {
	g := gen.PaperExample()
	c := 0.8
	e := newTestEngine(t, g, 0, c, false)
	e.expand(0, nil) // S = {1,2,3} (paper numbering)
	l1, _ := e.local.get(1)
	e.expand(l1, nil) // + node 4
	e.solveBounds()

	// Dense solve on the same local system.
	n := e.size()
	a := linalg.Identity(n)
	for i := 0; i < n; i++ {
		for _, en := range e.t.Rows[i] {
			a.Add(i, int(en.Col), -c*en.Val)
		}
	}
	rhs := make([]float64, n)
	rhs[0] = 1
	want, err := linalg.SolveDense(a, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(e.lbAt(int32(i))-want[i]) > 1e-9 {
			t.Fatalf("lb[%d] = %g, dense = %g", i, e.lbAt(int32(i)), want[i])
		}
	}
}

// TestEngineUpperBoundMatchesDummySystem: the solved upper bound equals a
// dense solve of the dummy-node system with the current rd.
func TestEngineUpperBoundMatchesDummySystem(t *testing.T) {
	g := gen.PaperExample()
	c := 0.8
	e := newTestEngine(t, g, 0, c, false)
	e.updateDummy()
	e.expand(0, nil)
	e.solveBounds()

	n := e.size()
	a := linalg.Identity(n)
	rhs := make([]float64, n)
	rhs[0] = 1
	for i := 0; i < n; i++ {
		li := int32(i)
		for _, en := range e.t.Rows[li] {
			a.Add(i, int(en.Col), -c*en.Val)
		}
		rhs[i] += c * e.dummyEntry(li) * e.rd
	}
	want, err := linalg.SolveDense(a, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(e.ubAt(int32(i))-want[i]) > 1e-9 {
			t.Fatalf("ub[%d] = %g, dense = %g", i, e.ubAt(int32(i)), want[i])
		}
	}
}

// TestEngineTighteningTerms checks the §5.3 self-loop and dummy entries on
// the paper's Figure 3/6 configuration: S = {1,2,3,4}, boundary {3,4}.
func TestEngineTighteningTerms(t *testing.T) {
	g := gen.PaperExample()
	c := 0.8
	e := newTestEngine(t, g, 0, c, true)
	e.expand(0, nil) // adds 2,3 (paper)
	l1, _ := e.local.get(1)
	e.expand(l1, nil) // expanding paper-2 adds paper-4
	e.refreshTightening()

	// Paper node 3 (local of id 2): one outside neighbor, node 5 (degree 2).
	// selfLoop = c·p(3→5)·p(5→3) = c·(1/3)·(1/2); dummy = c·(1/3)·(1/2).
	l3, _ := e.local.get(2)
	wantSelf := c * (1.0 / 3) * 0.5
	if got := e.selfEntry(l3); math.Abs(got-wantSelf) > 1e-12 {
		t.Fatalf("selfLoop(3) = %g, want %g", got, wantSelf)
	}
	if got := e.dummyEntry(l3); math.Abs(got-wantSelf) > 1e-12 {
		t.Fatalf("dummyTight(3) = %g, want %g", got, wantSelf)
	}
	// Paper node 4 (id 3): outside neighbors 6 (deg 2) and 7 (deg 2), each
	// p(4→·) = 1/4: selfLoop = c·2·(1/4)(1/2) = c/4, dummy = c·2·(1/4)(1/2).
	l4, _ := e.local.get(3)
	want4 := c * 2 * 0.25 * 0.5
	if got := e.selfEntry(l4); math.Abs(got-want4) > 1e-12 {
		t.Fatalf("selfLoop(4) = %g, want %g", got, want4)
	}
	// Interior nodes carry no tightening terms.
	l1Post, _ := e.local.get(1)
	if e.selfEntry(l1Post) != 0 || e.dummyEntry(l1Post) != 0 {
		t.Fatal("interior node has tightening terms")
	}
	// The query never carries them either.
	if e.selfEntry(0) != 0 || e.dummyEntry(0) != 0 {
		t.Fatal("query has tightening terms")
	}
}

// TestEngineDummyMonotone: rd never increases, and committing requires a
// drop beyond τ/16.
func TestEngineDummyMonotone(t *testing.T) {
	g := gen.PaperExample()
	e := newTestEngine(t, g, 0, 0.8, false)
	if e.rd != 1 {
		t.Fatalf("initial rd = %g", e.rd)
	}
	prev := e.rd
	for i := 0; i < 6; i++ {
		e.updateDummy()
		if e.rd > prev {
			t.Fatalf("rd rose %g -> %g", prev, e.rd)
		}
		prev = e.rd
		us := e.pickExpansion(false, 1)
		if len(us) == 0 {
			break
		}
		e.expand(us[0], nil)
		e.solveBounds()
	}
	// Exhausted: rd drops to 0.
	e.updateDummy()
	if e.rd != 0 {
		t.Fatalf("exhausted rd = %g, want 0", e.rd)
	}
}

// TestEnginePickExpansionBatch: the batch selection returns the boundary
// nodes in priority order without duplicates.
func TestEnginePickExpansionBatch(t *testing.T) {
	g := gen.Star(8)
	e := newTestEngine(t, g, 1, 0.5, false) // query = a leaf
	e.expand(0, nil)                        // visit the center, exposing 7 leaves... via expansion of q
	// Expand q (local 0) first: adds center.
	// (constructor already visited q; local 0 = q)
	e.solveBounds()
	us := e.pickExpansion(false, 3)
	if len(us) == 0 {
		t.Fatal("no expansion candidates")
	}
	seen := map[int32]bool{}
	for _, u := range us {
		if seen[u] {
			t.Fatal("duplicate in batch")
		}
		seen[u] = true
		if !e.isBoundary(u) {
			t.Fatal("non-boundary node picked")
		}
	}
	// Priorities must be non-increasing.
	key := func(i int32) float64 { return (e.lbAt(i) + e.ubAt(i)) / 2 }
	for i := 1; i < len(us); i++ {
		if key(us[i]) > key(us[i-1])+1e-15 {
			t.Fatalf("batch out of order at %d", i)
		}
	}
}

// TestTHTEngineDistances: within-S shortest-path distances stay correct as
// the search expands, including shortcut relaxation.
func TestTHTEngineDistances(t *testing.T) {
	// Ring of 8: expanding around the ring gives distances; a visit closing
	// the ring must relax the far side.
	g := gen.Ring(8)
	e := newTHTEngine(g, 0, 10, kernel.Config{})
	for e.size() < 8 {
		us := e.pickExpansion(1)
		if len(us) == 0 {
			break
		}
		e.expand(us[0], nil)
		e.solveBounds()
	}
	want := []int32{0, 1, 2, 3, 4, 3, 2, 1}
	for v := 0; v < 8; v++ {
		li, _ := e.local.get(graph.NodeID(v))
		if e.dist[li] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, e.dist[li], want[v])
		}
	}
}

// TestTHTEngineFloorGrows: on a path, closing hops advances the floor.
func TestTHTEngineFloorGrows(t *testing.T) {
	g := gen.Path(30)
	e := newTHTEngine(g, 0, 10, kernel.Config{})
	prevFloor := int32(0)
	for it := 0; it < 12; it++ {
		us := e.pickExpansion(1)
		if len(us) == 0 {
			break
		}
		for _, u := range us {
			e.expand(u, nil)
		}
		e.solveBounds()
		f := e.unvisitedFloor()
		if f < prevFloor {
			t.Fatalf("floor regressed %d -> %d", prevFloor, f)
		}
		prevFloor = f
	}
	if prevFloor < 3 {
		t.Fatalf("floor only reached %d after 12 path expansions", prevFloor)
	}
}

// TestTHTEngineBoundsMatchScratch: the incremental level recursion equals a
// from-scratch recomputation of the same system.
func TestTHTEngineBoundsMatchScratch(t *testing.T) {
	g := gen.PaperExample()
	L := 6
	e := newTHTEngine(g, 0, L, kernel.Config{})
	for it := 0; it < 4; it++ {
		us := e.pickExpansion(1)
		if len(us) == 0 {
			break
		}
		e.expand(us[0], nil)
		e.solveBounds()

		// From-scratch recomputation.
		n := e.size()
		floor := e.unvisitedFloor()
		lb := make([]float64, n)
		ub := make([]float64, n)
		nlb := make([]float64, n)
		nub := make([]float64, n)
		for l := 1; l <= L; l++ {
			fl := float64(l - 1)
			if ff := float64(floor); ff < fl {
				fl = ff
			}
			for i := 0; i < n; i++ {
				li := int32(i)
				if e.nodes[li] == e.q {
					nlb[i], nub[i] = 0, 0
					continue
				}
				var sLo, sHi float64
				for _, en := range e.tRows[li] {
					sLo += en.P * lb[en.Col]
					sHi += en.P * ub[en.Col]
				}
				om := 0.0
				if e.outCnt[li] > 0 || e.deg[li] == 0 {
					om = e.outMassOf(li, 1)
				}
				nlb[i] = 1 + sLo + om*fl
				h := 1 + sHi + om*float64(L)
				if cap := float64(l); h > cap {
					h = cap
				}
				if nlb[i] > h {
					nlb[i] = h
				}
				nub[i] = h
			}
			lb, nlb = nlb, lb
			ub, nub = nub, ub
		}
		for i := 0; i < n; i++ {
			if math.Abs(e.lb(int32(i))-lb[i]) > 1e-12 {
				t.Fatalf("iter %d: incremental lb[%d]=%g scratch=%g", it, i, e.lb(int32(i)), lb[i])
			}
			if math.Abs(e.ub(int32(i))-ub[i]) > 1e-12 {
				t.Fatalf("iter %d: incremental ub[%d]=%g scratch=%g", it, i, e.ub(int32(i)), ub[i])
			}
		}
	}
}
