package core

import (
	"context"
	"sort"
	"time"

	"flos/internal/graph"
	"flos/internal/measure"
)

// TopK answers an exact k-nearest-neighbor proximity query with FLoS
// (Algorithm 2). It only touches the graph through Neighbors/Degree/
// TopDegrees, so it runs identically on in-memory and disk-resident graphs.
//
// PHP is bounded natively; EI, DHT and RWR ride on the PHP engine through
// Theorems 2 and 6; THT uses the finite-horizon engine. The returned set is
// exact (up to Options.TieEps at score ties) unless MaxVisited fired.
//
// TopK is a thin wrapper over TopKCtx with a background context; it builds
// all engine state from scratch per call. Callers issuing more than one
// query should hold a Querier, whose pooled workspaces amortize that setup
// and make the hot path allocation-light.
func TopK(g graph.Graph, q graph.NodeID, opt Options) (*Result, error) {
	return TopKCtx(context.Background(), g, q, opt)
}

// phpFamilyTopK is the FLoS main loop for the PHP-bounded measures
// (PHP/EI/DHT/RWR). ws supplies a reusable engine workspace; nil runs cold.
func phpFamilyTopK(ctx context.Context, g graph.Graph, q graph.NodeID, opt Options, ws *Workspace) (*Result, error) {
	phpParams, err := measure.EquivalentPHPParams(opt.Measure, opt.Params)
	if err != nil {
		return nil, err
	}
	rwrMode := opt.Measure == measure.RWR
	e := ws.phpFor(g, q, phpParams.C, phpParams.Tau, phpParams.MaxIter, opt.Tighten, opt.kernelConfig())
	e.capProbes = opt.CaptureFootprint
	// Warm-start seeding: pre-visit the supplied nodes before iteration 1.
	// The bound systems are valid for any S containing q, and the first
	// iteration's refreshTightening/solveBounds handle the seeded region like
	// any other expansion, so correctness is untouched — only the trajectory
	// (and hence the work counters) changes.
	for _, v := range opt.WarmStart {
		if v == q || v < 0 || int(v) >= g.NumNodes() || e.local.has(v) {
			continue
		}
		e.visit(v)
	}
	maxVisited := opt.MaxVisited
	if maxVisited == 0 {
		maxVisited = g.NumNodes()
	}

	// w(S̄) guard for RWR: the largest degree among unvisited nodes, served
	// by the graph's degree index through a persistent cursor (visitedness
	// is monotone within a query, so the guard never re-scans the visited
	// prefix).
	wSbar := newWSbarGuard(g)

	// Termination slack: TieEps exact/anytime, widened to ε in ModeEpsilon.
	// ModeExact passes the identical value through the identical code path,
	// so exact-mode runs stay byte-identical to the pre-mode engine.
	slack := opt.slack()

	tracing := opt.Tracer != nil
	snapObs, _ := opt.Tracer.(SnapshotObserver)
	var phaseAt time.Time
	// gap persists across iterations: at an interruption it still holds the
	// previous iteration's termination observables for the partial result.
	var gap certGap
	for t := 1; ; t++ {
		if err := ctx.Err(); err != nil {
			return phpInterrupted(e, opt, rwrMode, t-1, gap, err)
		}
		// Algorithm 5 line 7 evaluates r_d against δS^{t-1} and ub^{t-1};
		// capture it before the expansion mutates the boundary.
		e.updateDummy()

		// Single-node expansion while the search is small; grow the batch
		// with |S| so the expansion schedule stays a vanishing fraction per
		// step. Traced (Trace or Tracer) and untraced runs share this one
		// schedule.
		batch := e.size() / 256
		if batch < 1 {
			batch = 1
		}
		var expandNS, solveNS, certifyNS int64
		if tracing {
			phaseAt = time.Now()
		}
		us := e.pickExpansion(rwrMode, batch)
		added := e.addedBuf[:0]
		var expanded graph.NodeID = -1
		exhausted := len(us) == 0
		if !exhausted {
			expanded = e.nodes[us[0]]
			for _, u := range us {
				added = e.expand(u, added)
			}
		}
		e.addedBuf = added
		if postExpandHook != nil {
			postExpandHook(e)
		}
		if tracing {
			now := time.Now()
			expandNS, phaseAt = now.Sub(phaseAt).Nanoseconds(), now
		}

		e.refreshTightening()
		e.solveBounds()
		if tracing {
			now := time.Now()
			solveNS, phaseAt = now.Sub(phaseAt).Nanoseconds(), now
		}

		guard := 0.0
		if rwrMode {
			guard = wSbar.value(&e.localSearch)
			e.degreeProbes++ // the index scan stands in for one metadata probe
			e.lastGuard = guard
		}
		gap = certGap{}
		sel := e.checkTermination(e.selOut, opt.K, rwrMode, guard, slack, &gap)
		if sel != nil {
			e.selOut = sel
		}
		if tracing {
			certifyNS = time.Since(phaseAt).Nanoseconds()
		}

		if snapObs != nil {
			snapObs.ObserveSnapshot(traceSnapshot(e, t, expanded, added))
		}
		if tracing {
			opt.Tracer.ObserveIteration(iterStats(e, t, len(us), len(added),
				sel != nil, &gap, expandNS, solveNS, certifyNS))
		}

		switch {
		case sel != nil:
			return phpResult(e, sel, opt, t, true, true, gap)
		case exhausted:
			// Component exhausted without bound separation (ties beyond
			// TieEps, or k larger than the component). The local system now
			// IS the component with no dummy mass, so lb≈ub≈exact: return
			// the top-k by lower bound.
			return phpResult(e, e.forceSelect(e.selOut, opt.K, rwrMode), opt, t, true, true, gap)
		case e.size() >= maxVisited && opt.MaxVisited > 0:
			return phpResult(e, e.forceSelect(e.selOut, opt.K, rwrMode), opt, t, false, false, gap)
		}
	}
}

// phpResult builds the measure-scale result and attaches its Certification
// block. exact feeds Result.Exact (modulo mode, see below); certified
// records whether the stopping rule passed.
func phpResult(e *phpEngine, sel []int32, opt Options, iters int, exact, certified bool, gap certGap) (*Result, error) {
	// An ε-certified stop that still had separating work left is certified
	// but not exact: the ranking may differ from the exact answer by up to
	// ε in the certification-key scale.
	if exact && opt.Mode == ModeEpsilon && gap.valid &&
		measure.CertGap(opt.Measure, gap.kth, gap.rest) > opt.TieEps {
		exact = false
	}
	res, err := buildResult(e, sel, opt, iters, exact)
	if err != nil {
		return nil, err
	}
	if err := attachPHPCertification(res, e, sel, opt, iters, gap, certified); err != nil {
		return nil, err
	}
	return res, nil
}

// phpInterrupted handles a context interruption inside the solver loop:
// anytime mode returns the in-flight top-k as an uncertified result; the
// other modes return an *Interrupted that carries the same partial result
// (Interrupted.Partial) for diagnostics instead of dropping it.
func phpInterrupted(e *phpEngine, opt Options, rwrMode bool, iters int, gap certGap, cause error) (*Result, error) {
	sel := e.forceSelect(e.selOut, opt.K, rwrMode)
	partial, err := buildResult(e, sel, opt, iters, false)
	if err != nil {
		return nil, err
	}
	if err := attachPHPCertification(partial, e, sel, opt, iters, gap, false); err != nil {
		return nil, err
	}
	if opt.Mode == ModeAnytime {
		return partial, nil
	}
	in := interrupted(cause, e.size(), iters, e.sweeps)
	in.Partial = partial
	return nil, in
}

// attachPHPCertification fills res.Certification: the mode, the final
// termination observables (converted to the measure's gap orientation), and
// the per-node score intervals for the returned k, listed in ranking order.
func attachPHPCertification(res *Result, e *phpEngine, sel []int32, opt Options, iters int, gap certGap, certified bool) error {
	c := Certification{
		Mode:       opt.Mode,
		Certified:  certified,
		Epsilon:    opt.Epsilon,
		Iterations: iters,
	}
	if gap.valid {
		c.GapValid = true
		c.KthBound = gap.kth
		c.RestBound = gap.rest
		c.Gap = measure.CertGap(opt.Measure, gap.kth, gap.rest)
	}
	type interval struct{ lo, hi float64 }
	iv := make(map[graph.NodeID]interval, len(sel))
	for _, i := range sel {
		lo, hi, err := measure.ScoreBoundsFromPHP(opt.Measure, opt.Params, e.lbAt(i), e.ubAt(i), e.deg[i])
		if err != nil {
			return err
		}
		iv[e.nodes[i]] = interval{lo, hi}
	}
	c.Bounds = make([]NodeBounds, 0, len(res.TopK))
	for _, r := range res.TopK {
		b := iv[r.Node]
		c.Bounds = append(c.Bounds, NodeBounds{Node: r.Node, Lower: b.lo, Upper: b.hi})
	}
	res.Certification = c
	return nil
}

// forceSelect picks the best-k visited nodes by lower bound regardless of
// separation — used at exhaustion and at the MaxVisited safety valve. The
// selection is appended to dst.
func (e *phpEngine) forceSelect(dst []int32, k int, rwrMode bool) []int32 {
	all := e.candBuf[:0]
	for i := int32(0); i < int32(e.size()); i++ {
		if e.nodes[i] == e.q {
			continue
		}
		key := e.lbAt(i)
		if rwrMode {
			key *= e.deg[i]
		}
		all = append(all, scored{i, key})
	}
	e.candBuf = all
	sortScoredDesc(all, e.nodes)
	if k > len(all) {
		k = len(all)
	}
	out := dst[:0]
	for i := 0; i < k; i++ {
		out = append(out, all[i].i)
	}
	return out
}

// buildResult converts selected local indices into measure-scale scores.
func buildResult(e *phpEngine, sel []int32, opt Options, iters int, exact bool) (*Result, error) {
	res := &Result{
		Visited:      e.size(),
		Iterations:   iters,
		Sweeps:       e.sweeps,
		DegreeProbes: e.degreeProbes,
		Exact:        exact,
	}
	if opt.CaptureFootprint {
		res.VisitedNodes = append([]graph.NodeID(nil), e.nodes...)
		res.ProbedNodes = append([]graph.NodeID(nil), e.probed...)
		res.GuardDegree = e.lastGuard
	}
	for _, i := range sel {
		php := (e.lbAt(i) + e.ubAt(i)) / 2
		score, err := measure.ScoreFromPHP(opt.Measure, opt.Params, php, e.deg[i])
		if err != nil {
			return nil, err
		}
		res.TopK = append(res.TopK, measure.Ranked{Node: e.nodes[i], Score: score})
	}
	// Selection ordered by certified lower bounds, but the reported scores
	// are bound midpoints — adjacent near-ties can invert between the two.
	// Present the list ordered by what it shows. The SET is unchanged.
	higher := opt.Measure.HigherIsCloser()
	sort.SliceStable(res.TopK, func(a, b int) bool {
		if res.TopK[a].Score != res.TopK[b].Score {
			if higher {
				return res.TopK[a].Score > res.TopK[b].Score
			}
			return res.TopK[a].Score < res.TopK[b].Score
		}
		return res.TopK[a].Node < res.TopK[b].Node
	})
	return res, nil
}

// iterStats assembles one IterStats record from the engine state right
// after an iteration's termination test. Gap orientation is
// higher-is-closer: kth lower-bound key minus best competing upper-bound
// key, non-negative (within TieEps) exactly when certified.
func iterStats(e *phpEngine, t, batch, added int, certified bool, gap *certGap, expandNS, solveNS, certifyNS int64) IterStats {
	s := IterStats{
		Iteration:  t,
		Visited:    e.size(),
		Boundary:   e.boundaryCount(),
		Interior:   e.interiorCount(),
		Batch:      batch,
		NewNodes:   added,
		Certified:  certified,
		DummyValue: e.rd,
		ExpandNS:   expandNS,
		SolveNS:    solveNS,
		CertifyNS:  certifyNS,
	}
	if e.kstats.Kind != 0 || e.kstats.Sweeps > 0 {
		s.Kernel = e.kstats.Kind.String()
		s.KernelBlocks = e.kstats.Blocks
		s.KernelRounds = e.kstats.Rounds
		s.KernelWorkers = e.kstats.Workers
		s.KernelF32Sweeps = e.kstats.F32Sweeps
	}
	if gap != nil && gap.valid {
		s.GapValid = true
		s.KthBound = gap.kth
		s.RestBound = gap.rest
		s.Gap = gap.kth - gap.rest
	}
	return s
}

func traceSnapshot(e *phpEngine, t int, expanded graph.NodeID, added []graph.NodeID) TraceEvent {
	lbs := make([]float64, e.size())
	ubs := make([]float64, e.size())
	for i := range lbs {
		lbs[i] = e.bnd[2*i]
		ubs[i] = e.bnd[2*i+1]
	}
	ev := TraceEvent{
		Iteration:  t,
		Expanded:   expanded,
		NewNodes:   append([]graph.NodeID(nil), added...),
		Nodes:      append([]graph.NodeID(nil), e.nodes...),
		Lower:      lbs,
		Upper:      ubs,
		DummyValue: e.rd,
	}
	return ev
}

// BasicTopK is Algorithm 1: the oracle-assisted local search that assumes
// the exact proximity vector r is already known. It exists to demonstrate
// the no-local-optimum machinery (Theorem 1 / Corollary 1) in isolation and
// as the reference expansion order in tests: it visits exactly k nodes
// beyond the query, pulling the closest remaining node from δS̄ at each
// step.
func BasicTopK(g graph.Graph, q graph.NodeID, r []float64, k int, higherIsCloser bool) []graph.NodeID {
	inS := map[graph.NodeID]bool{q: true}
	frontier := map[graph.NodeID]bool{}
	addFrontier := func(v graph.NodeID) {
		nbrs, _ := g.Neighbors(v)
		for _, u := range nbrs {
			if !inS[u] {
				frontier[u] = true
			}
		}
	}
	addFrontier(q)
	var out []graph.NodeID
	for len(out) < k && len(frontier) > 0 {
		best := graph.NodeID(-1)
		for v := range frontier {
			if best < 0 {
				best = v
				continue
			}
			better := r[v] > r[best] || (r[v] == r[best] && v < best)
			if !higherIsCloser {
				better = r[v] < r[best] || (r[v] == r[best] && v < best)
			}
			if better {
				best = v
			}
		}
		delete(frontier, best)
		inS[best] = true
		out = append(out, best)
		addFrontier(best)
	}
	return out
}
