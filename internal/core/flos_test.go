package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
)

// testOptions returns options tightened for oracle comparisons: tolerance
// well below the score gaps random weighted graphs produce.
func testOptions(kind measure.Kind, k int) Options {
	opt := DefaultOptions(kind, k)
	opt.Params.Tau = 1e-10
	opt.Params.MaxIter = 200000
	opt.TieEps = 1e-9
	return opt
}

// randomConnected builds a connected random weighted graph.
func randomConnected(t testing.TB, n, extra int, seed int64) *graph.MemGraph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		if err := b.AddEdge(int32(v), int32(rng.Intn(v)), 0.5+rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < extra; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			if err := b.AddEdge(u, v, 0.5+rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// exactScores computes the oracle score vector for a measure with a tight
// tolerance.
func exactScores(t testing.TB, g graph.Graph, q graph.NodeID, kind measure.Kind, p measure.Params) []float64 {
	t.Helper()
	p.Tau = 1e-12
	p.MaxIter = 500000
	r, _, err := measure.Exact(g, q, kind, p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFLoSMatchesOracleAllMeasures is the central exactness test: on random
// weighted graphs, FLoS must return the same top-k set as global iteration,
// for every measure and several k.
func TestFLoSMatchesOracleAllMeasures(t *testing.T) {
	for _, kind := range measure.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				g := randomConnected(t, 80, 150, seed)
				q := graph.NodeID(int(seed*13) % 80)
				for _, k := range []int{1, 3, 10} {
					opt := testOptions(kind, k)
					res, err := TopK(g, q, opt)
					if err != nil {
						t.Fatalf("seed %d k %d: %v", seed, k, err)
					}
					if !res.Exact {
						t.Fatalf("seed %d k %d: result not exact", seed, k)
					}
					if len(res.TopK) != k {
						t.Fatalf("seed %d k %d: got %d nodes", seed, k, len(res.TopK))
					}
					oracle := exactScores(t, g, q, kind, opt.Params)
					got := measure.Nodes(res.TopK)
					if !measure.SameSetModuloTies(got, oracle, q, k, kind.HigherIsCloser(), 1e-7) {
						want := measure.Nodes(measure.TopK(oracle, q, k, kind.HigherIsCloser()))
						t.Errorf("seed %d k %d: FLoS %v != oracle %v", seed, k, got, want)
					}
					if res.Visited > g.NumNodes() {
						t.Errorf("visited %d > n", res.Visited)
					}
				}
			}
		})
	}
}

// TestFLoSLocality: on a large sparse graph, FLoS must answer a small-k
// query while visiting a small fraction of the nodes — the paper's central
// efficiency claim (Figure 9).
func TestFLoSLocality(t *testing.T) {
	g, err := gen.RMAT(20000, 80000, gen.DefaultRMAT(), 7)
	if err != nil {
		t.Fatal(err)
	}
	lc := graph.LargestComponentNodes(g)
	q := lc[len(lc)/2]
	opt := DefaultOptions(measure.PHP, 10)
	res, err := TopK(g, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("not exact")
	}
	ratio := float64(res.Visited) / float64(g.NumNodes())
	if ratio > 0.25 {
		t.Errorf("visited ratio %.3f — not local", ratio)
	}
	t.Logf("visited %d/%d (%.4f) in %d iterations, %d sweeps",
		res.Visited, g.NumNodes(), ratio, res.Iterations, res.Sweeps)
}

// TestPaperExampleTable3 replays the paper's running example: Figure 1(a),
// PHP with c = 0.8, q = 1, k = 2, plain (untightened) bounds. The expansion
// must visit exactly the nodes of Table 3 per iteration, and nodes {2,3}
// must be certified as the top-2 after iteration 4, with node 8 unvisited.
func TestPaperExampleTable3(t *testing.T) {
	g := gen.PaperExample()
	sc := &SnapshotCollector{}
	opt := Options{
		K:       2,
		Measure: measure.PHP,
		Params:  measure.Params{C: 0.8, L: 10, Tau: 1e-10, MaxIter: 100000},
		Tighten: false,
		TieEps:  1e-9,
		Tracer:  sc,
	}
	res, err := TopK(g, 0, opt)
	events := sc.Events
	if err != nil {
		t.Fatal(err)
	}
	// Table 3, 0-indexed: iterations visit {2,3}→{1,2}, {4}→{3}, {5}→{4},
	// {6,7}→{5,6}, so termination after iteration 4 leaves node 7 unvisited.
	want := [][]graph.NodeID{{1, 2}, {3}, {4}, {5, 6}}
	if res.Iterations != len(want) {
		t.Fatalf("terminated after %d iterations, want %d (events: %d)",
			res.Iterations, len(want), len(events))
	}
	for i, ev := range events {
		if !reflect.DeepEqual(ev.NewNodes, want[i]) {
			t.Errorf("iteration %d visited %v, want %v", i+1, ev.NewNodes, want[i])
		}
	}
	got := measure.Nodes(res.TopK)
	if !measure.SameSet(got, []graph.NodeID{1, 2}) {
		t.Fatalf("top-2 = %v, want {1,2} (paper nodes 2,3)", got)
	}
	if res.Visited != 7 {
		t.Errorf("visited %d nodes, want 7 (node 8 stays unvisited)", res.Visited)
	}
}

// TestBoundsMonotoneAndValid asserts the Section 5.2 monotonicity and the
// bound validity lb ≤ r ≤ ub on every trace snapshot.
func TestBoundsMonotoneAndValid(t *testing.T) {
	for _, tighten := range []bool{false, true} {
		g := randomConnected(t, 60, 90, 11)
		q := graph.NodeID(5)
		exact := exactScores(t, g, q, measure.PHP, measure.DefaultParams())
		sc := &SnapshotCollector{}
		opt := testOptions(measure.PHP, 5)
		opt.Tighten = tighten
		opt.Tracer = sc
		if _, err := TopK(g, q, opt); err != nil {
			t.Fatal(err)
		}
		events := sc.Events
		prevLB := map[graph.NodeID]float64{}
		prevUB := map[graph.NodeID]float64{}
		prevRD := 1.0
		for _, ev := range events {
			if ev.DummyValue > prevRD+1e-12 {
				t.Fatalf("tighten=%v iter %d: rd rose %g -> %g", tighten, ev.Iteration, prevRD, ev.DummyValue)
			}
			prevRD = ev.DummyValue
			for i, v := range ev.Nodes {
				lb, ub := ev.Lower[i], ev.Upper[i]
				if lb > ub+1e-9 {
					t.Fatalf("tighten=%v iter %d node %d: lb %g > ub %g", tighten, ev.Iteration, v, lb, ub)
				}
				if lb > exact[v]+1e-7 {
					t.Fatalf("tighten=%v iter %d node %d: lb %g > exact %g", tighten, ev.Iteration, v, lb, exact[v])
				}
				if ub < exact[v]-1e-7 {
					t.Fatalf("tighten=%v iter %d node %d: ub %g < exact %g", tighten, ev.Iteration, v, ub, exact[v])
				}
				if p, ok := prevLB[v]; ok && lb < p-1e-9 {
					t.Fatalf("tighten=%v iter %d node %d: lb regressed %g -> %g", tighten, ev.Iteration, v, p, lb)
				}
				if p, ok := prevUB[v]; ok && ub > p+1e-9 {
					t.Fatalf("tighten=%v iter %d node %d: ub regressed %g -> %g", tighten, ev.Iteration, v, p, ub)
				}
				prevLB[v], prevUB[v] = lb, ub
			}
		}
		if len(events) == 0 {
			t.Fatal("no trace events")
		}
	}
}

// TestTighteningNarrowsGap compares the total bound gap after the first
// iteration with and without Section 5.3's self-loops: the visited set is
// identical at t=1 (always q ∪ N_q), so the gaps are directly comparable
// and the tightened one must not be larger.
func TestTighteningNarrowsGap(t *testing.T) {
	g := randomConnected(t, 60, 120, 3)
	q := graph.NodeID(0)
	gap := func(tighten bool) float64 {
		sc := &SnapshotCollector{}
		opt := testOptions(measure.PHP, 3)
		opt.Tighten = tighten
		opt.Tracer = sc
		if _, err := TopK(g, q, opt); err != nil {
			t.Fatal(err)
		}
		first := &sc.Events[0]
		var sum float64
		for i := range first.Nodes {
			sum += first.Upper[i] - first.Lower[i]
		}
		return sum
	}
	plain, tight := gap(false), gap(true)
	if tight > plain+1e-9 {
		t.Fatalf("tightened gap %g > plain gap %g", tight, plain)
	}
	if tight >= plain {
		t.Logf("warning: tightening did not strictly narrow (%g vs %g)", tight, plain)
	}
}

// TestTighteningStillExact: both variants return the oracle set.
func TestTighteningStillExact(t *testing.T) {
	g := randomConnected(t, 100, 200, 21)
	q := graph.NodeID(17)
	oracle := exactScores(t, g, q, measure.PHP, measure.DefaultParams())
	for _, tighten := range []bool{false, true} {
		opt := testOptions(measure.PHP, 8)
		opt.Tighten = tighten
		res, err := TopK(g, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		got := measure.Nodes(res.TopK)
		if !measure.SameSetModuloTies(got, oracle, q, 8, true, 1e-7) {
			t.Fatalf("tighten=%v: wrong set %v", tighten, got)
		}
	}
}

// TestRWRExactOnHubGraph: the graph where RWR has a genuine local maximum
// (hub of leaves) — the case plain local search cannot handle and
// Section 5.6's machinery exists for.
func TestRWRExactOnHubGraph(t *testing.T) {
	b := graph.NewBuilder(13)
	add := func(u, v int32) {
		if err := b.AddUnitEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	add(0, 1)
	add(1, 2)
	for leaf := int32(3); leaf < 13; leaf++ {
		add(2, leaf)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions(measure.RWR, 3)
	opt.Params.C = 0.1 // low restart keeps the hub a local max
	res, err := TopK(g, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	oracle := exactScores(t, g, 0, measure.RWR, opt.Params)
	got := measure.Nodes(res.TopK)
	if !measure.SameSetModuloTies(got, oracle, 0, 3, true, 1e-9) {
		want := measure.Nodes(measure.TopK(oracle, 0, 3, true))
		t.Fatalf("RWR top-3 = %v, want %v", got, want)
	}
}

// TestTHTBeyondHorizon: on a long path with horizon L, all nodes past L hops
// tie at L. A path is adversarial for the appendix's deletion-based THT
// lower bound — boundary nodes' lower bounds sit near 1 + L/2, so only
// queries whose k-th upper bound is below that can stop early. k = 1
// (r_1 ≈ 2.6 < 4) must terminate locally with the right answer; k = 5
// (r_5 ≈ 6⁻, inseparable from the horizon crowd) must still be *correct*
// after exhausting the component.
func TestTHTBeyondHorizon(t *testing.T) {
	g := gen.Path(40)
	opt := testOptions(measure.THT, 1)
	opt.Params.L = 6
	res, err := TopK(g, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := measure.Nodes(res.TopK); !measure.SameSet(got, []graph.NodeID{1}) {
		t.Fatalf("THT top-1 on path = %v, want {1}", got)
	}
	if res.Visited >= 25 {
		t.Errorf("k=1 visited %d nodes — expected early termination", res.Visited)
	}

	opt = testOptions(measure.THT, 5)
	opt.Params.L = 6
	res, err = TopK(g, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	oracle := exactScores(t, g, 0, measure.THT, opt.Params)
	if got := measure.Nodes(res.TopK); !measure.SameSetModuloTies(got, oracle, 0, 5, false, 1e-9) {
		t.Fatalf("THT top-5 on path = %v", got)
	}
}

// TestMaxVisitedCap: the safety valve returns a best-effort inexact result.
func TestMaxVisitedCap(t *testing.T) {
	g := randomConnected(t, 500, 1000, 2)
	opt := testOptions(measure.PHP, 20)
	opt.MaxVisited = 30
	res, err := TopK(g, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("capped result claims exactness")
	}
	if res.Visited > 30+60 { // one expansion may overshoot by a neighborhood
		t.Errorf("visited %d far beyond cap", res.Visited)
	}
	if len(res.TopK) != 20 {
		t.Errorf("got %d results", len(res.TopK))
	}
}

// TestSmallComponent: query in a component smaller than k+1 returns the
// whole component, exactly.
func TestSmallComponent(t *testing.T) {
	// Component {0,1,2} plus a separate clique.
	b := graph.NewBuilder(8)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {3, 7}} {
		if err := b.AddUnitEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []measure.Kind{measure.PHP, measure.THT, measure.RWR} {
		res, err := TopK(g, 0, testOptions(kind, 10))
		if err != nil {
			t.Fatal(err)
		}
		got := measure.Nodes(res.TopK)
		if !measure.SameSet(got, []graph.NodeID{1, 2}) {
			t.Errorf("%v: component query returned %v, want {1,2}", kind, got)
		}
		if !res.Exact {
			t.Errorf("%v: exhausted component not marked exact", kind)
		}
	}
}

// TestSingletonQuery: an isolated query node has no neighbors at all.
func TestSingletonQuery(t *testing.T) {
	g := graph.MustFromEdges(3, 1, 2) // node 0 isolated
	res, err := TopK(g, 0, testOptions(measure.PHP, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 0 {
		t.Fatalf("isolated query returned %v", res.TopK)
	}
}

func TestTopKInputValidation(t *testing.T) {
	g := gen.Path(4)
	if _, err := TopK(g, 99, testOptions(measure.PHP, 1)); err == nil {
		t.Error("out-of-range query accepted")
	}
	bad := testOptions(measure.PHP, 0)
	if _, err := TopK(g, 0, bad); err == nil {
		t.Error("k=0 accepted")
	}
	bad = testOptions(measure.PHP, 1)
	bad.Params.C = 2
	if _, err := TopK(g, 0, bad); err == nil {
		t.Error("C=2 accepted")
	}
	bad = testOptions(measure.PHP, 1)
	bad.TieEps = -1
	if _, err := TopK(g, 0, bad); err == nil {
		t.Error("negative TieEps accepted")
	}
	bad = testOptions(measure.PHP, 1)
	bad.MaxVisited = -3
	if _, err := TopK(g, 0, bad); err == nil {
		t.Error("negative MaxVisited accepted")
	}
}

// TestBasicTopKOracle: Algorithm 1 with the exact vector returns the true
// top-k for every no-local-optimum measure.
func TestBasicTopKOracle(t *testing.T) {
	g := randomConnected(t, 70, 120, 4)
	q := graph.NodeID(9)
	for _, kind := range []measure.Kind{measure.PHP, measure.EI, measure.DHT, measure.THT} {
		r := exactScores(t, g, q, kind, measure.DefaultParams())
		for _, k := range []int{1, 5, 15} {
			got := BasicTopK(g, q, r, k, kind.HigherIsCloser())
			if !measure.SameSetModuloTies(got, r, q, k, kind.HigherIsCloser(), 1e-9) {
				want := measure.Nodes(measure.TopK(r, q, k, kind.HigherIsCloser()))
				t.Errorf("%v k=%d: basic %v, want %v", kind, k, got, want)
			}
		}
	}
}

// TestBasicTopKSmallComponent: Algorithm 1 stops gracefully when the
// frontier empties.
func TestBasicTopKSmallComponent(t *testing.T) {
	g := graph.MustFromEdges(5, 0, 1, 1, 2, 3, 4)
	r := []float64{1, 0.5, 0.25, 0, 0}
	got := BasicTopK(g, 0, r, 10, true)
	if !measure.SameSet(got, []graph.NodeID{1, 2}) {
		t.Fatalf("got %v", got)
	}
}

// TestPropertyFLoSMatchesOracle: randomized cross-check over seeds and
// query nodes for PHP and RWR.
func TestPropertyFLoSMatchesOracle(t *testing.T) {
	f := func(seed int64, qRaw uint8) bool {
		n := 50
		g := randomConnected(t, n, 80, seed)
		q := graph.NodeID(int(qRaw) % n)
		for _, kind := range []measure.Kind{measure.PHP, measure.RWR} {
			opt := testOptions(kind, 5)
			res, err := TopK(g, q, opt)
			if err != nil || !res.Exact {
				return false
			}
			oracle := exactScores(t, g, q, kind, opt.Params)
			if !measure.SameSetModuloTies(measure.Nodes(res.TopK), oracle, q, 5, true, 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestDHTScoresMatchExact: the DHT scores reported through the PHP engine's
// affine map approximate the direct DHT solver. FLoS certifies the SET
// exactly but reports scores as bound midpoints, so they carry the residual
// bound gap at termination — hence the loose tolerance.
func TestDHTScoresMatchExact(t *testing.T) {
	g := randomConnected(t, 50, 80, 8)
	q := graph.NodeID(3)
	opt := testOptions(measure.DHT, 5)
	res, err := TopK(g, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	oracle := exactScores(t, g, q, measure.DHT, opt.Params)
	for _, rk := range res.TopK {
		if math.Abs(rk.Score-oracle[rk.Node]) > 0.05 {
			t.Errorf("node %d: FLoS DHT score %g, exact %g", rk.Node, rk.Score, oracle[rk.Node])
		}
	}
	// Scores must come back closest-first, i.e. non-decreasing for DHT.
	for i := 1; i < len(res.TopK); i++ {
		if res.TopK[i].Score < res.TopK[i-1].Score-1e-9 {
			t.Errorf("DHT scores not ascending: %v", res.TopK)
		}
	}
}

// TestTHTTraceBoundsValid: THT trace bounds must bracket the exact truncated
// hitting times and respect the lower-is-closer direction.
func TestTHTTraceBoundsValid(t *testing.T) {
	g := randomConnected(t, 50, 70, 13)
	q := graph.NodeID(1)
	p := measure.DefaultParams()
	exact := exactScores(t, g, q, measure.THT, p)
	sc := &SnapshotCollector{}
	opt := testOptions(measure.THT, 5)
	opt.Tracer = sc
	if _, err := TopK(g, q, opt); err != nil {
		t.Fatal(err)
	}
	events := sc.Events
	for _, ev := range events {
		for i, v := range ev.Nodes {
			if ev.Lower[i] > exact[v]+1e-7 {
				t.Fatalf("iter %d node %d: THT lb %g > exact %g", ev.Iteration, v, ev.Lower[i], exact[v])
			}
			if ev.Upper[i] < exact[v]-1e-7 {
				t.Fatalf("iter %d node %d: THT ub %g < exact %g", ev.Iteration, v, ev.Upper[i], exact[v])
			}
		}
	}
}

// TestVisitedCountsExpansionOnly: Visited equals the number of distinct
// nodes pulled into S, and Iterations matches the trace length.
func TestVisitedCountsExpansionOnly(t *testing.T) {
	g := randomConnected(t, 60, 100, 17)
	sc := &SnapshotCollector{}
	opt := testOptions(measure.PHP, 4)
	opt.Tracer = sc
	res, err := TopK(g, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	events := sc.Events
	if res.Iterations != len(events) {
		t.Errorf("iterations %d != trace %d", res.Iterations, len(events))
	}
	distinct := map[graph.NodeID]bool{0: true}
	for _, ev := range events {
		for _, v := range ev.NewNodes {
			distinct[v] = true
		}
	}
	if res.Visited != len(distinct) {
		t.Errorf("visited %d != distinct %d", res.Visited, len(distinct))
	}
}
