package core

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"flos/internal/diskgraph"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
)

// This file pins the search's observable behavior — result values, ranking,
// and work counters — to goldens captured from the pre-substrate engines
// (commit fd82b02). The substrate refactor is required to be byte-identical:
// same TopK nodes, bit-identical float64 scores, same Visited / Iterations /
// Sweeps / DegreeProbes, for every measure, on both graph backends, cold and
// warm. Regenerate (only when a change is MEANT to alter the schedule) with:
//
//	FLOS_UPDATE_GOLDEN=1 go test ./internal/core -run TestGolden
//
// Scores are stored as IEEE-754 bit patterns so the comparison is exact, not
// within-epsilon: the refactor may not move a result by even one ulp.

type goldenEntry struct {
	Graph   string   `json:"graph"`
	Measure string   `json:"measure"`
	Query   int32    `json:"query"`
	Tighten bool     `json:"tighten"`
	Nodes   []int32  `json:"nodes"`
	Scores  []uint64 `json:"score_bits"`

	Visited      int  `json:"visited"`
	Iterations   int  `json:"iterations"`
	Sweeps       int  `json:"sweeps"`
	DegreeProbes int  `json:"degree_probes"`
	Exact        bool `json:"exact"`
}

type goldenUnified struct {
	Graph        string   `json:"graph"`
	Query        int32    `json:"query"`
	PHPNodes     []int32  `json:"php_nodes"`
	PHPScores    []uint64 `json:"php_score_bits"`
	RWRNodes     []int32  `json:"rwr_nodes"`
	RWRScores    []uint64 `json:"rwr_score_bits"`
	Visited      int      `json:"visited"`
	Iterations   int      `json:"iterations"`
	Sweeps       int      `json:"sweeps"`
	DegreeProbes int      `json:"degree_probes"`
}

type goldenFile struct {
	TopK    []goldenEntry   `json:"topk"`
	Unified []goldenUnified `json:"unified"`
}

const goldenPath = "testdata/golden_equivalence.json"

// goldenGraphs returns the deterministic graph suite the goldens are pinned
// on, in a fixed order. Shapes are chosen to exercise distinct schedules:
// the paper's worked example, random community-ish graphs of two sizes, a
// high-diameter grid, and a barbell (long corridor between dense ends).
func goldenGraphs(t testing.TB) []struct {
	name string
	g    *graph.MemGraph
} {
	return []struct {
		name string
		g    *graph.MemGraph
	}{
		{"paper", gen.PaperExample()},
		{"rand200", randomConnected(t, 200, 420, 7)},
		{"rand500", randomConnected(t, 500, 1000, 2)},
		{"grid", gen.Grid(12, 15)},
		{"barbell", gen.Barbell(18, 24)},
	}
}

func goldenQueries(n int) []graph.NodeID {
	qs := []graph.NodeID{0, graph.NodeID(n / 3), graph.NodeID(n - 1)}
	out := qs[:0]
	seen := map[graph.NodeID]bool{}
	for _, q := range qs {
		if !seen[q] {
			seen[q] = true
			out = append(out, q)
		}
	}
	return out
}

func goldenOptions(kind measure.Kind, tighten bool) Options {
	opt := testOptions(kind, 8)
	opt.Tighten = tighten
	return opt
}

func rankedBits(rs []measure.Ranked) ([]int32, []uint64) {
	nodes := make([]int32, len(rs))
	bits := make([]uint64, len(rs))
	for i, r := range rs {
		nodes[i] = r.Node
		bits[i] = math.Float64bits(r.Score)
	}
	return nodes, bits
}

func captureGolden(t *testing.T) goldenFile {
	var gf goldenFile
	for _, gc := range goldenGraphs(t) {
		for _, q := range goldenQueries(gc.g.NumNodes()) {
			for _, kind := range measure.Kinds() {
				for _, tighten := range []bool{true, false} {
					if kind == measure.THT && !tighten {
						continue // THT ignores tightening; avoid duplicate rows
					}
					res, err := TopKCtx(context.Background(), gc.g, q, goldenOptions(kind, tighten))
					if err != nil {
						t.Fatalf("%s/%v/q=%d: %v", gc.name, kind, q, err)
					}
					nodes, bits := rankedBits(res.TopK)
					gf.TopK = append(gf.TopK, goldenEntry{
						Graph: gc.name, Measure: kind.String(), Query: q, Tighten: tighten,
						Nodes: nodes, Scores: bits,
						Visited: res.Visited, Iterations: res.Iterations,
						Sweeps: res.Sweeps, DegreeProbes: res.DegreeProbes, Exact: res.Exact,
					})
				}
			}
			ur, err := UnifiedTopKCtx(context.Background(), gc.g, q, goldenOptions(measure.PHP, true))
			if err != nil {
				t.Fatalf("%s/unified/q=%d: %v", gc.name, q, err)
			}
			pn, pb := rankedBits(ur.PHPFamily)
			rn, rb := rankedBits(ur.RWR)
			gf.Unified = append(gf.Unified, goldenUnified{
				Graph: gc.name, Query: q,
				PHPNodes: pn, PHPScores: pb, RWRNodes: rn, RWRScores: rb,
				Visited: ur.Visited, Iterations: ur.Iterations,
				Sweeps: ur.Sweeps, DegreeProbes: ur.DegreeProbes,
			})
		}
	}
	return gf
}

func requireGoldenTopK(t *testing.T, label string, want goldenEntry, got *Result) {
	t.Helper()
	nodes, bits := rankedBits(got.TopK)
	fail := func(field string, want, got any) {
		t.Fatalf("%s: %s drifted from golden\nwant %v\ngot  %v", label, field, want, got)
	}
	if fmt.Sprint(nodes) != fmt.Sprint(want.Nodes) {
		fail("ranking", want.Nodes, nodes)
	}
	if fmt.Sprint(bits) != fmt.Sprint(want.Scores) {
		fail("score bits", want.Scores, bits)
	}
	if got.Visited != want.Visited {
		fail("visited", want.Visited, got.Visited)
	}
	if got.Iterations != want.Iterations {
		fail("iterations", want.Iterations, got.Iterations)
	}
	if got.Sweeps != want.Sweeps {
		fail("sweeps", want.Sweeps, got.Sweeps)
	}
	if got.DegreeProbes != want.DegreeProbes {
		fail("degree probes", want.DegreeProbes, got.DegreeProbes)
	}
	if got.Exact != want.Exact {
		fail("exact", want.Exact, got.Exact)
	}
}

// diskVariant writes g to a disk store and opens it with a small page cache,
// so the engine runs the defensive-copy (unstable neighbors) path.
func diskVariant(t *testing.T, g *graph.MemGraph) graph.Graph {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.flos")
	if err := diskgraph.Create(path, g, 4096); err != nil {
		t.Fatal(err)
	}
	st, err := diskgraph.Open(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestGoldenEquivalence replays every pinned scenario on both backends,
// cold and through a reused warm Workspace, and requires byte-identical
// results and work counters against the pre-refactor goldens.
func TestGoldenEquivalence(t *testing.T) {
	if os.Getenv("FLOS_UPDATE_GOLDEN") != "" {
		gf := captureGolden(t)
		buf, err := json.MarshalIndent(gf, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %d topk + %d unified scenarios", len(gf.TopK), len(gf.Unified))
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing goldens (run with FLOS_UPDATE_GOLDEN=1 to capture): %v", err)
	}
	var gf goldenFile
	if err := json.Unmarshal(buf, &gf); err != nil {
		t.Fatal(err)
	}

	graphs := map[string]*graph.MemGraph{}
	for _, gc := range goldenGraphs(t) {
		graphs[gc.name] = gc.g
	}
	disks := map[string]graph.Graph{}
	for name, g := range graphs {
		disks[name] = diskVariant(t, g)
	}
	memWS := map[string]*Workspace{}
	diskWS := map[string]*Workspace{}
	for name := range graphs {
		memWS[name] = NewWorkspace()
		diskWS[name] = NewWorkspace()
	}

	ctx := context.Background()
	for _, want := range gf.TopK {
		kind, ok := kindByName(want.Measure)
		if !ok {
			t.Fatalf("golden names unknown measure %q", want.Measure)
		}
		opt := goldenOptions(kind, want.Tighten)
		label := fmt.Sprintf("%s/%s/q=%d/tighten=%v", want.Graph, want.Measure, want.Query, want.Tighten)

		res, err := TopKCtx(ctx, graphs[want.Graph], want.Query, opt)
		if err != nil {
			t.Fatal(err)
		}
		requireGoldenTopK(t, label+"/mem-cold", want, res)

		res, err = memWS[want.Graph].TopK(ctx, graphs[want.Graph], want.Query, opt)
		if err != nil {
			t.Fatal(err)
		}
		requireGoldenTopK(t, label+"/mem-warm", want, res)

		// With the span-tracing observation hook attached, the schedule and
		// results must not move by a bit — the tracer observes, never steers.
		topt := opt
		topt.Tracer = &TraceCollector{}
		res, err = memWS[want.Graph].TopK(ctx, graphs[want.Graph], want.Query, topt)
		if err != nil {
			t.Fatal(err)
		}
		requireGoldenTopK(t, label+"/mem-warm-traced", want, res)

		res, err = TopKCtx(ctx, disks[want.Graph], want.Query, opt)
		if err != nil {
			t.Fatal(err)
		}
		requireGoldenTopK(t, label+"/disk-cold", want, res)

		res, err = diskWS[want.Graph].TopK(ctx, disks[want.Graph], want.Query, opt)
		if err != nil {
			t.Fatal(err)
		}
		requireGoldenTopK(t, label+"/disk-warm", want, res)
	}

	for _, want := range gf.Unified {
		opt := goldenOptions(measure.PHP, true)
		label := fmt.Sprintf("%s/unified/q=%d", want.Graph, want.Query)
		check := func(label string, ur *UnifiedResult) {
			pn, pb := rankedBits(ur.PHPFamily)
			rn, rb := rankedBits(ur.RWR)
			if fmt.Sprint(pn) != fmt.Sprint(want.PHPNodes) || fmt.Sprint(pb) != fmt.Sprint(want.PHPScores) {
				t.Fatalf("%s: PHP family drifted\nwant %v %v\ngot  %v %v", label, want.PHPNodes, want.PHPScores, pn, pb)
			}
			if fmt.Sprint(rn) != fmt.Sprint(want.RWRNodes) || fmt.Sprint(rb) != fmt.Sprint(want.RWRScores) {
				t.Fatalf("%s: RWR drifted\nwant %v %v\ngot  %v %v", label, want.RWRNodes, want.RWRScores, rn, rb)
			}
			if ur.Visited != want.Visited || ur.Iterations != want.Iterations ||
				ur.Sweeps != want.Sweeps || ur.DegreeProbes != want.DegreeProbes {
				t.Fatalf("%s: counters drifted\nwant {v:%d it:%d sw:%d dp:%d}\ngot  {v:%d it:%d sw:%d dp:%d}",
					label, want.Visited, want.Iterations, want.Sweeps, want.DegreeProbes,
					ur.Visited, ur.Iterations, ur.Sweeps, ur.DegreeProbes)
			}
		}
		ur, err := UnifiedTopKCtx(ctx, graphs[want.Graph], want.Query, opt)
		if err != nil {
			t.Fatal(err)
		}
		check(label+"/mem-cold", ur)
		ur, err = memWS[want.Graph].Unified(ctx, graphs[want.Graph], want.Query, opt)
		if err != nil {
			t.Fatal(err)
		}
		check(label+"/mem-warm", ur)
		topt := opt
		topt.Tracer = &TraceCollector{}
		ur, err = memWS[want.Graph].Unified(ctx, graphs[want.Graph], want.Query, topt)
		if err != nil {
			t.Fatal(err)
		}
		check(label+"/mem-warm-traced", ur)
		ur, err = diskWS[want.Graph].Unified(ctx, disks[want.Graph], want.Query, opt)
		if err != nil {
			t.Fatal(err)
		}
		check(label+"/disk-warm", ur)
	}
}

func kindByName(s string) (measure.Kind, bool) {
	for _, k := range measure.Kinds() {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// TestSweepCounterBaseline is the CI work-counter smoke: on the committed
// benchmark graph (a mid-size community graph), the Result work counters
// (sweeps, visited, iterations) must match testdata/sweep_baseline.json for
// every measure. A drift means the expansion schedule or the bound solver's
// relaxation sequence changed — which must never happen by accident.
// Regenerate with FLOS_UPDATE_GOLDEN=1.
func TestSweepCounterBaseline(t *testing.T) {
	const path = "testdata/sweep_baseline.json"
	g, err := gen.Community(20000, 60000, gen.DefaultCommunityParams(), 42)
	if err != nil {
		t.Fatal(err)
	}
	type row struct {
		Measure    string `json:"measure"`
		Query      int32  `json:"query"`
		Sweeps     int    `json:"sweeps"`
		Visited    int    `json:"visited"`
		Iterations int    `json:"iterations"`
	}
	var got []row
	for _, kind := range measure.Kinds() {
		for _, q := range []graph.NodeID{11, 4096} {
			res, err := TopKCtx(context.Background(), g, q, DefaultOptions(kind, 10))
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, row{kind.String(), q, res.Sweeps, res.Visited, res.Iterations})
		}
	}
	if os.Getenv("FLOS_UPDATE_GOLDEN") != "" {
		buf, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("sweep baseline updated: %d rows", len(got))
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing baseline (run with FLOS_UPDATE_GOLDEN=1 to capture): %v", err)
	}
	var want []row
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("baseline has %d rows, run produced %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("work counters drifted: want %+v, got %+v", want[i], got[i])
		}
	}
}
