// Package kernel is the bound-solver layer extracted from the core engines:
// the relax-to-budget inner loops that drain the residual worklists over the
// interleaved (lb,ub) bound store (PHP family) and the per-level queues of
// the finite-horizon THT system.
//
// The engines own everything around the solve — expansion, wiring, dummy
// updates, tightening refresh, certification — and delegate only the
// relaxation sweeps here, through a view struct (PHPState / THTState) whose
// fields alias engine storage. Three kernels sit behind one Solver:
//
//   - Serial: the reference kernel — a verbatim relocation of the engines'
//     fused Gauss–Seidel worklist pass. Byte-identical results and work
//     counters to the pre-extraction engines, enforced by the golden suite.
//   - Parallel: partitions the active frontier into cache-sized blocks of
//     the local CSR and runs frontier-synchronous block-Jacobi sweeps with
//     per-block FIFOs and an atomic residual reduction. Values are
//     deterministic regardless of worker count or scheduling: each round
//     computes from an immutable snapshot of the bound store and applies the
//     results in block order, so GOMAXPROCS=1 and GOMAXPROCS=64 produce the
//     same bits. Correctness rests on bound monotonicity (lower bounds only
//     rise, upper bounds only fall under relaxation of a sub-/super-
//     solution), which tolerates even chaotic sweep orderings — the
//     synchronous schedule is chosen on top of that for reproducibility.
//   - Staged: two-phase precision — float32 shadow sweeps to near-
//     convergence, then a float64 finish that re-enters values through the
//     same pend/worklist bookkeeping the serial kernel maintains.
//     Certification always reads the float64 store; the float32 phase is an
//     accelerator that never touches it directly.
//
// Kernels never select nodes — expansion stays with the engines — and every
// kernel drains to the same residual tolerance θ, so the exactness argument
// (Theorem 1 over valid one-sided bounds) is untouched as long as every
// value written to the float64 store remains a valid lower/upper bound. The
// serial and parallel kernels guarantee that by monotone relaxation; the
// staged kernel by a one-sided safety margin at the precision switch (see
// php_staged.go). Different kernels may still land at different points
// inside the θ band (Gauss–Seidel propagates within a sweep, Jacobi
// between rounds), which can shift where the stopping rule first separates
// and therefore how far the search expands: every answer remains certified
// at the resolution its Certification.Gap reports, and cross-kernel answers
// agree up to ties within that resolution, but visited counts, the reported
// gap, and wall-clock work are per-kernel properties, not invariants.
package kernel

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Kind selects a bound-solver kernel. The zero value is Auto.
type Kind int

const (
	// Auto picks per solve call: the serial reference kernel below
	// DefaultThreshold visited nodes, the parallel kernel above it. The
	// decision depends only on the visited-set size and the configured
	// threshold — never on GOMAXPROCS or current load — so results are
	// deterministic across machines and runs.
	Auto Kind = iota
	// Serial always runs the reference Gauss–Seidel worklist kernel:
	// byte-identical to the pre-kernel engines.
	Serial
	// Parallel always runs the partitioned block-Jacobi kernel (degrading
	// to a single-threaded synchronous sweep when no extra workers are
	// available; the values do not depend on the worker count).
	Parallel
	// Staged always runs the two-phase precision kernel: float32 sweeps to
	// near-convergence, float64 finish. The THT system has no staged
	// variant (its values live on an integer-like hop scale where float32
	// staging buys nothing); THT solves fall back to Parallel.
	Staged
)

// String renders the kind the way Options spells it.
func (k Kind) String() string {
	switch k {
	case Auto:
		return "auto"
	case Serial:
		return "serial"
	case Parallel:
		return "parallel"
	case Staged:
		return "staged"
	}
	return fmt.Sprintf("kernel(%d)", int(k))
}

// MarshalJSON renders the kind as its API spelling.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON accepts the API spelling (or the empty string, as Auto).
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// ParseKind is the inverse of Kind.String. The empty string parses as Auto
// so request schemas can leave the field optional.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "auto":
		return Auto, nil
	case "serial":
		return Serial, nil
	case "parallel":
		return Parallel, nil
	case "staged":
		return Staged, nil
	}
	return 0, fmt.Errorf("unknown kernel %q (want auto|serial|parallel|staged)", s)
}

// DefaultThreshold is the visited-set size at which Auto switches from the
// serial fast path to the partitioned parallel kernel. Small queries — the
// overwhelming majority under the paper's locality argument — never pay the
// round-synchronization overhead; the threshold is deliberately high so the
// switch only engages where the solve is wall-clock dominant. Every graph in
// the golden suite and the committed sweep baselines sits far below it, which
// is what keeps Auto byte-identical to Serial on all pinned fixtures.
const DefaultThreshold = 32768

// DefaultBlockRows is the parallel kernel's partition width: rows per block,
// sized so one block's interleaved (lb,ub) stripe (2×8 bytes per row) plus
// its FIFO stays within a typical L2 slice.
const DefaultBlockRows = 2048

// Config tunes a Solver. The zero value is a valid serial-only setup.
type Config struct {
	// Kind selects the kernel; Auto picks by visited-set size.
	Kind Kind
	// Workers caps the goroutines one solve call uses (including the
	// caller); <=0 selects GOMAXPROCS. The actual count is further limited
	// by the token budget, never below 1. Worker count never affects
	// computed values, only wall clock.
	Workers int
	// Threshold overrides DefaultThreshold for Auto (<=0 keeps the default).
	Threshold int
	// BlockRows overrides DefaultBlockRows (<=0 keeps the default).
	BlockRows int
	// Tokens, when non-nil, is the shared intra-query parallelism budget:
	// each solve call TryAcquires its extra workers from it and releases
	// them on return, so concurrent queries (a loaded qserve pool, a Batch
	// fan-out) degrade gracefully to single-threaded sweeps instead of
	// oversubscribing the machine.
	Tokens *TokenBudget
}

func (c Config) threshold() int {
	if c.Threshold > 0 {
		return c.Threshold
	}
	return DefaultThreshold
}

func (c Config) blockRows() int {
	if c.BlockRows > 0 {
		return c.BlockRows
	}
	return DefaultBlockRows
}

func (c Config) maxWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Stats reports one solve call's kernel telemetry (BoundKernel.LastStats).
type Stats struct {
	// Kind is the kernel variant that actually ran (Auto resolves).
	Kind Kind
	// Sweeps counts float64 node relaxations — the engines' native work
	// unit, added to the search's sweep counter.
	Sweeps int
	// F32Sweeps counts float32 shadow relaxations (staged kernel only).
	F32Sweeps int
	// Blocks is the number of non-empty partition blocks the parallel
	// kernel engaged (its per-block FIFO count), 0 on the serial path.
	Blocks int
	// Rounds is the number of frontier-synchronous sweep rounds.
	Rounds int
	// Workers is the number of goroutines used, including the caller.
	Workers int
	// Residual is the atomic reduction of |Δvalue| over the final round's
	// relaxations — 0 when the worklists fully drained.
	Residual float64
}

// BoundKernel is the contract the engines program against: relax the bound
// systems to tolerance within the iteration budget, report the work done.
// The state views alias engine storage; Solve calls mutate bounds, queues,
// and pend accumulators in place (reallocated queue slices are written back
// through the view).
type BoundKernel interface {
	// SolvePHP drains the PHP-family residual worklists over the
	// interleaved (lb,ub) store.
	SolvePHP(*PHPState)
	// SolveTHT drains the finite-horizon per-level queues.
	SolveTHT(*THTState)
	// LastStats reports the most recent solve call's telemetry.
	LastStats() Stats
}

// Solver implements BoundKernel with all three kernels behind one reusable
// scratch arena: the per-block FIFOs, the frontier snapshot buffers, and the
// float32 shadow store persist across solve calls (and, held inside a warm
// engine, across queries), so steady-state solves allocate nothing.
// A Solver is not safe for concurrent use; each engine owns one.
type Solver struct {
	cfg   Config
	stats Stats

	// Parallel scratch: frontier snapshots, the dense Jacobi result stripe
	// (indexed like the interleaved bnd store), per-block FIFOs, and the
	// list of non-empty blocks per round.
	frontLB, frontUB []int32
	jac              []float64
	fifoLB, fifoUB   [][]int32
	liveLB, liveUB   []int32
	changed          []bool

	// Staged scratch: the float32 shadow of the interleaved store plus its
	// private worklists (see php_staged.go). maxRow tracks the deepest
	// fan-in the shadow has relaxed this query — it scales the write-back
	// safety margin.
	bnd32              []float32
	q32LB, q32UB       []int32
	inQ32LB, inQ32UB   []bool
	pend32LB, pend32UB []float32
	seedLB, seedUB     []int32
	maxRow             int
}

// NewSolver returns an empty solver; scratch grows on demand.
func NewSolver() *Solver { return &Solver{} }

// Configure installs the configuration for subsequent solves, keeping all
// retained scratch capacity. Engines call it from reset, once per query; the
// float32 shadow mirrors one query's bound store, so its live prefix (and
// the lockstep worklist arrays) is dropped here and reseeded from the next
// query's float64 values on demand.
func (s *Solver) Configure(cfg Config) {
	s.cfg = cfg
	s.bnd32 = s.bnd32[:0]
	s.inQ32LB, s.inQ32UB = s.inQ32LB[:0], s.inQ32UB[:0]
	s.pend32LB, s.pend32UB = s.pend32LB[:0], s.pend32UB[:0]
	s.maxRow = 0
}

// Config returns the active configuration.
func (s *Solver) Config() Config { return s.cfg }

// LastStats reports the most recent solve call's telemetry.
func (s *Solver) LastStats() Stats { return s.stats }

// ShadowLen reports the current length of the float32 shadow store — 0 until
// a staged solve ran. Exercised by workspace-reuse tests.
func (s *Solver) ShadowLen() int { return len(s.bnd32) }

// resolve maps Auto to a concrete kernel for a solve over n visited nodes.
func (s *Solver) resolve(n int) Kind {
	k := s.cfg.Kind
	if k == Auto {
		if n >= s.cfg.threshold() {
			return Parallel
		}
		return Serial
	}
	return k
}

// acquireWorkers claims the solve call's goroutine allowance: the caller's
// own slot plus up to maxWorkers-1 extras from the token budget (all of them
// when no budget is configured). The returned release must be called when
// the solve finishes.
func (s *Solver) acquireWorkers() (workers int, release func()) {
	want := s.cfg.maxWorkers() - 1
	if want < 0 {
		want = 0
	}
	if s.cfg.Tokens == nil {
		return want + 1, func() {}
	}
	got := s.cfg.Tokens.TryAcquire(want)
	return got + 1, func() { s.cfg.Tokens.Release(got) }
}

// TokenBudget is a shared pool of parallelism tokens coordinating
// intra-query parallel sweeps with inter-query concurrency: a serving pool
// sizes one budget to the machine, every running query implicitly owns its
// caller goroutine, and kernels TryAcquire extra workers from what is left.
// Under full pool load the budget is exhausted, kernels run single-threaded,
// and batch throughput is unchanged; on an idle pool a lone query gets the
// whole machine. Acquisition is lock-free and never blocks.
type TokenBudget struct {
	avail atomic.Int64
	cap   int64
}

// NewTokenBudget returns a budget holding n tokens (n < 0 is treated as 0).
func NewTokenBudget(n int) *TokenBudget {
	if n < 0 {
		n = 0
	}
	b := &TokenBudget{cap: int64(n)}
	b.avail.Store(int64(n))
	return b
}

// TryAcquire claims up to n tokens without blocking and returns how many it
// got (possibly 0).
func (b *TokenBudget) TryAcquire(n int) int {
	if b == nil || n <= 0 {
		return 0
	}
	for {
		cur := b.avail.Load()
		if cur <= 0 {
			return 0
		}
		take := int64(n)
		if take > cur {
			take = cur
		}
		if b.avail.CompareAndSwap(cur, cur-take) {
			return int(take)
		}
	}
}

// Release returns n previously acquired tokens.
func (b *TokenBudget) Release(n int) {
	if b == nil || n <= 0 {
		return
	}
	b.avail.Add(int64(n))
}

// Cap returns the budget's total token count.
func (b *TokenBudget) Cap() int {
	if b == nil {
		return 0
	}
	return int(b.cap)
}

// Outstanding returns how many tokens are currently claimed. It can never
// exceed Cap; a drained system returns to 0 (leak check in tests).
func (b *TokenBudget) Outstanding() int {
	if b == nil {
		return 0
	}
	return int(b.cap - b.avail.Load())
}

// parallelBlocks runs fn(b) for b in [0,n) across the given worker count,
// claiming block indices from an atomic cursor. workers<=1 (or a single
// block) runs inline on the caller. The caller always participates, so
// workers goroutines total means workers-1 spawns.
func parallelBlocks(workers, n int, fn func(b int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for b := 0; b < n; b++ {
			fn(b)
		}
		return
	}
	var cur atomic.Int64
	var wg sync.WaitGroup
	body := func() {
		for {
			b := int(cur.Add(1)) - 1
			if b >= n {
				return
			}
			fn(b)
		}
	}
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			body()
		}()
	}
	body()
	wg.Wait()
}

// atomicAddFloat accumulates delta into an atomically-shared float64 cell
// (the parallel kernel's residual reduction).
func atomicAddFloat(cell *atomic.Uint64, delta float64) {
	if delta == 0 {
		return
	}
	for {
		old := cell.Load()
		next := math.Float64frombits(old) + delta
		if cell.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}
