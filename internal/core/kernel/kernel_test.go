package kernel

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Auto, Serial, Parallel, Staged} {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if got, err := ParseKind(""); err != nil || got != Auto {
		t.Fatalf("ParseKind(\"\") = %v, %v; want Auto", got, err)
	}
	if _, err := ParseKind("vectorized"); err == nil {
		t.Fatal("ParseKind accepted an unknown kind")
	}
}

func TestKindJSON(t *testing.T) {
	b, err := json.Marshal(Parallel)
	if err != nil || string(b) != `"parallel"` {
		t.Fatalf("Marshal(Parallel) = %s, %v", b, err)
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"staged"`), &k); err != nil || k != Staged {
		t.Fatalf("Unmarshal staged = %v, %v", k, err)
	}
	if err := json.Unmarshal([]byte(`""`), &k); err != nil || k != Auto {
		t.Fatalf("Unmarshal empty = %v, %v; want Auto", k, err)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &k); err == nil {
		t.Fatal("Unmarshal accepted bogus kind")
	}
}

func TestResolveThresholdIsDeterministic(t *testing.T) {
	s := NewSolver()
	s.Configure(Config{Kind: Auto, Threshold: 100})
	if got := s.resolve(99); got != Serial {
		t.Fatalf("resolve(99) = %v, want Serial", got)
	}
	if got := s.resolve(100); got != Parallel {
		t.Fatalf("resolve(100) = %v, want Parallel", got)
	}
	// Pinned kinds ignore the threshold entirely.
	s.Configure(Config{Kind: Staged, Threshold: 100})
	if got := s.resolve(1); got != Staged {
		t.Fatalf("resolve with pinned Staged = %v", got)
	}
}

func TestTokenBudget(t *testing.T) {
	b := NewTokenBudget(4)
	if b.Cap() != 4 || b.Outstanding() != 0 {
		t.Fatalf("fresh budget cap=%d outstanding=%d", b.Cap(), b.Outstanding())
	}
	if got := b.TryAcquire(3); got != 3 {
		t.Fatalf("TryAcquire(3) = %d", got)
	}
	// Partial grant: only one token left.
	if got := b.TryAcquire(5); got != 1 {
		t.Fatalf("TryAcquire(5) on 1 remaining = %d", got)
	}
	if got := b.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire on empty = %d", got)
	}
	if b.Outstanding() != 4 {
		t.Fatalf("Outstanding = %d, want 4", b.Outstanding())
	}
	b.Release(4)
	if b.Outstanding() != 0 {
		t.Fatalf("Outstanding after release = %d, want 0", b.Outstanding())
	}
	// Nil-safety for the unconfigured path.
	var nb *TokenBudget
	if nb.TryAcquire(2) != 0 || nb.Cap() != 0 || nb.Outstanding() != 0 {
		t.Fatal("nil budget should be inert")
	}
	nb.Release(2)
}

func TestTokenBudgetConcurrent(t *testing.T) {
	b := NewTokenBudget(8)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				got := b.TryAcquire(3)
				if out := b.Outstanding(); out < 0 || out > b.Cap() {
					t.Errorf("outstanding %d out of [0,%d]", out, b.Cap())
				}
				b.Release(got)
			}
		}()
	}
	wg.Wait()
	if b.Outstanding() != 0 {
		t.Fatalf("leaked %d tokens", b.Outstanding())
	}
}

func TestParallelBlocksCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		for _, n := range []int{0, 1, 5, 100} {
			hit := make([]int32, n)
			var mu sync.Mutex
			parallelBlocks(workers, n, func(b int) {
				mu.Lock()
				hit[b]++
				mu.Unlock()
			})
			for b, c := range hit {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: block %d run %d times", workers, n, b, c)
				}
			}
		}
	}
}

func TestAcquireWorkersWithBudget(t *testing.T) {
	b := NewTokenBudget(2)
	s := NewSolver()
	s.Configure(Config{Workers: 8, Tokens: b})
	w, release := s.acquireWorkers()
	if w != 3 { // caller + the 2 available tokens
		t.Fatalf("workers = %d, want 3", w)
	}
	// A concurrent solver finds the budget drained and degrades to serial.
	s2 := NewSolver()
	s2.Configure(Config{Workers: 8, Tokens: b})
	w2, release2 := s2.acquireWorkers()
	if w2 != 1 {
		t.Fatalf("drained-budget workers = %d, want 1", w2)
	}
	release()
	release2()
	if b.Outstanding() != 0 {
		t.Fatalf("leaked %d tokens", b.Outstanding())
	}
}
