package kernel

import (
	"flos/internal/linalg"
)

// PHPState is the solve-call view of a PHP-family engine: every field
// aliases engine storage, packed fresh before each SolvePHP call. Local
// index 0 is always the query node (its bounds are pinned at 1 and its row
// is empty), which is why no node-identifier slice appears here.
//
// The kernel mutates Bnd, the queues, the membership bitmaps, and the pend
// accumulators in place. QueueLB/QueueUB may be reallocated by appends; the
// engine reads them back from the state after the call.
type PHPState struct {
	// Rows are the off-diagonal local transition entries (row 0 empty).
	Rows [][]linalg.Entry
	// Ladj is the local undirected dependency adjacency.
	Ladj [][]int32
	// Bnd is the interleaved bound store: lb of local node i at Bnd[2i],
	// ub at Bnd[2i+1].
	Bnd []float64
	// Rd is the dummy-node value the upper-bound system redirects
	// boundary-crossing mass to.
	Rd float64
	// C and Tau are the decay factor and the solver tolerance.
	C, Tau float64
	// Budget caps relaxations per bound side (maxIter·|S|).
	Budget int64

	// Worklist state: one FIFO per side with membership bitmaps and
	// accumulated input drift.
	QueueLB, QueueUB []int32
	InQLB, InQUB     []bool
	PendLB, PendUB   []float64

	// Dummy/self-entry inputs. Tighten selects Section 5.3's entries
	// (SelfLoop/DummyTight, maintained by the engine's refresh); otherwise
	// the dummy entry is the out-mass computed from Deg/InW. OutCnt>0 marks
	// boundary rows — interior rows have no dummy or self entry.
	Tighten              bool
	Deg, InW             []float64
	OutCnt               []int32
	SelfLoop, DummyTight []float64
}

// dummyEntry mirrors phpEngine.dummyEntry on the view: local node i's
// transition entry into the dummy node for the upper-bound system.
func (st *PHPState) dummyEntry(i int32) float64 {
	if i == 0 || st.OutCnt[i] == 0 {
		return 0
	}
	if st.Tighten {
		return st.DummyTight[i]
	}
	// Untightened: the out-mass Σ_{j∉S} p_ij (PHP convention: a degree-0
	// node keeps its walk, out-mass 0).
	d := st.Deg[i]
	if d == 0 {
		return 0
	}
	m := (d - st.InW[i]) / d
	if m < 0 {
		return 0
	}
	return m
}

// selfEntry mirrors phpEngine.selfEntry: the diagonal entry (0 unless
// tightening).
func (st *PHPState) selfEntry(i int32) float64 {
	if !st.Tighten || i == 0 || st.OutCnt[i] == 0 {
		return 0
	}
	return st.SelfLoop[i]
}

// SolvePHP re-solves both PHP-family bound systems to tolerance,
// dispatching on the configured kind. See the package comment for the
// kernel catalogue.
func (s *Solver) SolvePHP(st *PHPState) {
	n := len(st.Bnd) / 2
	switch s.resolve(n) {
	case Parallel:
		s.solvePHPParallel(st)
	case Staged:
		s.solvePHPStaged(st)
	default:
		s.stats = Stats{Kind: Serial, Workers: 1}
		s.solvePHPSerial(st)
	}
}

// solvePHPSerial is the reference kernel: the engines' residual-driven
// Gauss–Seidel relaxation, relocated verbatim from phpEngine.solveBounds.
// The two systems share no mutable state — the lower side reads and writes
// only Bnd[2i]/PendLB/InQLB, the upper only Bnd[2i+1]/PendUB/InQUB/Rd — so
// any interleaving of the two relaxation sequences produces bit-identical
// results to running them back to back. The 1:1 interleave keeps t.Rows[i],
// Ladj[i], and the neighbors' interleaved bound pairs in cache across the
// pair of relaxations (the fusion the struct-of-arrays store exists for).
func (s *Solver) solvePHPSerial(st *PHPState) {
	// Pop via head indexes rather than q = q[1:]: reslicing the front off
	// erodes the backing array's capacity one slot per pop, so the queues
	// (which persist across queries in a warm workspace) would reallocate
	// on nearly every append instead of amortizing to zero.
	qlb, qub := st.QueueLB, st.QueueUB
	headLB, headUB := 0, 0
	budget := st.Budget
	var processedLB, processedUB int64
	// The propagation threshold sits a factor 16 below τ so the relaxed
	// bounds are at least as tight as a Jacobi-to-τ solve — the RWR
	// termination guard compares quantities near the τ scale, where any
	// extra slack inflates the visited set.
	theta := st.Tau / 16
	for {
		moreLB := headLB < len(qlb) && processedLB < budget
		moreUB := headUB < len(qub) && processedUB < budget
		if !moreLB && !moreUB {
			break
		}
		if moreLB {
			i := qlb[headLB]
			headLB++
			st.InQLB[i] = false
			st.PendLB[i] = 0
			processedLB++
			s.stats.Sweeps++
			if i == 0 {
				st.Bnd[2*i] = 1
			} else {
				var sum float64
				for _, en := range st.Rows[i] {
					sum += en.Val * st.Bnd[2*en.Col]
				}
				v := st.C * sum
				if self := st.selfEntry(i); self > 0 {
					v /= 1 - st.C*self
				}
				d := abs(v - st.Bnd[2*i])
				st.Bnd[2*i] = v
				if d != 0 {
					// Charge the change to every dependent row; a row
					// re-relaxes once its accumulated potential shift
					// exceeds theta. (c bounds the entry value times decay,
					// so c·d overestimates the per-row effect.)
					for _, j := range st.Ladj[i] {
						if j == 0 {
							continue
						}
						st.PendLB[j] += st.C * d
						if !st.InQLB[j] && st.PendLB[j] > theta {
							st.InQLB[j] = true
							qlb = append(qlb, j)
						}
					}
				}
			}
		}
		if moreUB {
			i := qub[headUB]
			headUB++
			st.InQUB[i] = false
			st.PendUB[i] = 0
			processedUB++
			s.stats.Sweeps++
			if i == 0 {
				st.Bnd[2*i+1] = 1
			} else {
				var sum float64
				for _, en := range st.Rows[i] {
					sum += en.Val * st.Bnd[2*en.Col+1]
				}
				sum += st.dummyEntry(i) * st.Rd
				v := st.C * sum
				if self := st.selfEntry(i); self > 0 {
					v /= 1 - st.C*self
				}
				d := abs(v - st.Bnd[2*i+1])
				st.Bnd[2*i+1] = v
				if d != 0 {
					for _, j := range st.Ladj[i] {
						if j == 0 {
							continue
						}
						st.PendUB[j] += st.C * d
						if !st.InQUB[j] && st.PendUB[j] > theta {
							st.InQUB[j] = true
							qub = append(qub, j)
						}
					}
				}
			}
		}
	}
	// Drained or budget hit: compact the unprocessed tails to the front so
	// the inQ flags stay consistent with the queue contents and the full
	// backing capacity survives for the next call.
	n := copy(qlb, qlb[headLB:])
	st.QueueLB = qlb[:n]
	n = copy(qub, qub[headUB:])
	st.QueueUB = qub[:n]
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
