package kernel

import (
	"math"
	"sync/atomic"
)

// solvePHPParallel is the partitioned kernel: frontier-synchronous
// block-Jacobi sweeps over the active worklists.
//
// Each round snapshots the two frontiers (every queued row, up to the
// remaining per-side budget), buckets them into per-block FIFOs partitioning
// the local CSR into cache-sized row blocks, and runs the relaxations of all
// non-empty blocks across the worker pool. The compute phase treats the
// interleaved bound store as immutable — every worker writes its results
// into a disjoint stripe of the Jacobi scratch and accumulates its residual
// into one atomic cell — and a serial apply phase then commits the values,
// charges the pend accumulators, and seeds the next round's frontiers in
// block order.
//
// Two properties follow from that structure:
//
//   - Correctness: a Jacobi round relaxes a sub-solution (lower side) from
//     inputs no smaller than the last committed state, so values only rise
//     toward the fixpoint and never cross it; symmetrically the upper side
//     only falls. This is the monotone-bounds argument that makes even
//     chaotic sweep orderings sound — the synchronous schedule is a special
//     case chosen for the next property.
//   - Determinism: frontier snapshots, bucketing, and the apply order are
//     all independent of the worker count and of goroutine scheduling, so
//     the solved bounds are bit-identical at GOMAXPROCS=1 and GOMAXPROCS=64.
//     (The race-matrix CI job relies on this: the golden comparisons hold at
//     any core count.)
//
// Versus the serial Gauss–Seidel kernel the values differ only in where the
// iteration truncates — both sides stop once no accumulated input drift
// exceeds θ = τ/16 — so the certified top-k sets and flags agree (enforced
// by the kernel-equivalence suite), while the bit patterns need not.
func (s *Solver) solvePHPParallel(st *PHPState) {
	workers, release := s.acquireWorkers()
	defer release()
	s.stats = Stats{Kind: Parallel, Workers: workers}

	n := len(st.Bnd) / 2
	if cap(s.jac) < 2*n {
		s.jac = make([]float64, 2*n)
	}
	jac := s.jac[:2*n]
	blockRows := s.cfg.blockRows()
	theta := st.Tau / 16
	budget := st.Budget
	var processedLB, processedUB int64
	var residual atomic.Uint64

	for {
		moreLB := len(st.QueueLB) > 0 && processedLB < budget
		moreUB := len(st.QueueUB) > 0 && processedUB < budget
		if !moreLB && !moreUB {
			break
		}
		s.stats.Rounds++
		residual.Store(0)

		// Snapshot the frontiers. Popping a row clears its membership bit
		// and pend, exactly like a serial pop; rows past the budget stay
		// queued with their flags intact.
		frontLB, frontUB := s.frontLB[:0], s.frontUB[:0]
		if moreLB {
			frontLB = takeFrontier(&st.QueueLB, st.InQLB, st.PendLB, budget-processedLB, frontLB)
			processedLB += int64(len(frontLB))
		}
		if moreUB {
			frontUB = takeFrontier(&st.QueueUB, st.InQUB, st.PendUB, budget-processedUB, frontUB)
			processedUB += int64(len(frontUB))
		}
		s.frontLB, s.frontUB = frontLB, frontUB
		s.stats.Sweeps += len(frontLB) + len(frontUB)

		// Bucket each frontier into per-block FIFOs. A row appears in at
		// most one FIFO per side (queue membership is deduplicated), so the
		// compute phase writes disjoint scratch entries.
		liveLB := bucketBlocks(&s.fifoLB, frontLB, blockRows, s.liveLB[:0])
		liveUB := bucketBlocks(&s.fifoUB, frontUB, blockRows, s.liveUB[:0])
		s.liveLB, s.liveUB = liveLB, liveUB
		if nb := len(liveLB) + len(liveUB); nb > s.stats.Blocks {
			s.stats.Blocks = nb
		}

		// Compute phase: both sides' blocks share one parallel region. The
		// bound store is read-only here; results land in the Jacobi stripe.
		nb := len(liveLB) + len(liveUB)
		parallelBlocks(workers, nb, func(b int) {
			var local float64
			if b < len(liveLB) {
				for _, i := range s.fifoLB[liveLB[b]] {
					v := relaxLB(st, i)
					jac[2*i] = v
					local += abs(v - st.Bnd[2*i])
				}
			} else {
				for _, i := range s.fifoUB[liveUB[b-len(liveLB)]] {
					v := relaxUB(st, i)
					jac[2*i+1] = v
					local += abs(v - st.Bnd[2*i+1])
				}
			}
			atomicAddFloat(&residual, local)
		})

		// Apply phase: commit values and propagate drift, serially, in
		// block order then FIFO order — a deterministic schedule that seeds
		// the next round's frontiers through the same pend/θ rule the
		// serial kernel uses.
		qlb := st.QueueLB
		for _, b := range liveLB {
			fifo := s.fifoLB[b]
			for _, i := range fifo {
				v := jac[2*i]
				d := abs(v - st.Bnd[2*i])
				st.Bnd[2*i] = v
				if d != 0 {
					for _, j := range st.Ladj[i] {
						if j == 0 {
							continue
						}
						st.PendLB[j] += st.C * d
						if !st.InQLB[j] && st.PendLB[j] > theta {
							st.InQLB[j] = true
							qlb = append(qlb, j)
						}
					}
				}
			}
			s.fifoLB[b] = fifo[:0]
		}
		st.QueueLB = qlb
		qub := st.QueueUB
		for _, b := range liveUB {
			fifo := s.fifoUB[b]
			for _, i := range fifo {
				v := jac[2*i+1]
				d := abs(v - st.Bnd[2*i+1])
				st.Bnd[2*i+1] = v
				if d != 0 {
					for _, j := range st.Ladj[i] {
						if j == 0 {
							continue
						}
						st.PendUB[j] += st.C * d
						if !st.InQUB[j] && st.PendUB[j] > theta {
							st.InQUB[j] = true
							qub = append(qub, j)
						}
					}
				}
			}
			s.fifoUB[b] = fifo[:0]
		}
		st.QueueUB = qub
	}
	s.jac = jac
	s.stats.Residual = math.Float64frombits(residual.Load())
}

// relaxLB evaluates the lower-bound equation of row i against the current
// store (read-only).
func relaxLB(st *PHPState, i int32) float64 {
	if i == 0 {
		return 1
	}
	var sum float64
	for _, en := range st.Rows[i] {
		sum += en.Val * st.Bnd[2*en.Col]
	}
	v := st.C * sum
	if self := st.selfEntry(i); self > 0 {
		v /= 1 - st.C*self
	}
	return v
}

// relaxUB evaluates the upper-bound equation of row i against the current
// store (read-only).
func relaxUB(st *PHPState, i int32) float64 {
	if i == 0 {
		return 1
	}
	var sum float64
	for _, en := range st.Rows[i] {
		sum += en.Val * st.Bnd[2*en.Col+1]
	}
	sum += st.dummyEntry(i) * st.Rd
	v := st.C * sum
	if self := st.selfEntry(i); self > 0 {
		v /= 1 - st.C*self
	}
	return v
}

// takeFrontier pops up to maxTake rows off the queue head into dst,
// clearing membership and pend exactly like a serial pop, and compacts the
// untaken tail to the queue front.
func takeFrontier(q *[]int32, inQ []bool, pend []float64, maxTake int64, dst []int32) []int32 {
	take := len(*q)
	if int64(take) > maxTake {
		take = int(maxTake)
	}
	for _, i := range (*q)[:take] {
		inQ[i] = false
		pend[i] = 0
		dst = append(dst, i)
	}
	n := copy(*q, (*q)[take:])
	*q = (*q)[:n]
	return dst
}

// bucketBlocks distributes a frontier into per-block FIFOs (block = local
// index / blockRows) and returns the non-empty block list in first-touch
// order. The FIFO slices are caller-owned scratch, truncated again by the
// apply phase.
func bucketBlocks(fifos *[][]int32, front []int32, blockRows int, live []int32) []int32 {
	for _, i := range front {
		b := int(i) / blockRows
		for b >= len(*fifos) {
			*fifos = append(*fifos, nil)
		}
		if len((*fifos)[b]) == 0 {
			live = append(live, int32(b))
		}
		(*fifos)[b] = append((*fifos)[b], i)
	}
	return live
}
