package kernel

// The staged kernel: two-phase precision. Large relaxation frontiers are
// first driven to near-convergence on a float32 shadow of the interleaved
// bound store — halving the memory traffic of the sweep, which is what the
// solve is bound on once the bookkeeping around it is free — and the result
// is then fed back into the float64 store through a one-sided safety margin,
// after which the ordinary serial float64 kernel finishes the drain.
// Certification never sees the shadow: `measure.CertGap` and every bound the
// engines read are float64, so exact mode stays exact.
//
// Validity argument. Theorem 1 needs every value in the float64 store to be
// a true one-sided bound. Float32 sweeps cannot promise that directly — a
// relaxed value can overshoot the fixpoint by accumulated roundoff — so the
// write-back haircuts each candidate by a forward-error bound computed from
// the phase itself: one float32 relaxation of a row with fan-in r incurs
// local roundoff at most (r+4)·ε₃₂ on values in [0,1], and the recursion
// through neighbors is damped by the decay factor, so the distance between
// the float32 and float64 fixpoints is at most (r_max+4)·ε₃₂/(1−c). The
// margin applies 4× that (plus an absolute floor) on the safe side — lower
// candidates are shaved down, upper candidates padded up — and a candidate
// is written only if it still improves the current float64 value, preserving
// bound monotonicity. Each write-back propagates through the same pend/θ
// bookkeeping as a serial relaxation, so the float64 finish re-verifies the
// neighborhood of every seed at full precision.
//
// The shadow is maintained incrementally per query (Configure drops it):
// rows the engine visits are appended from the float64 store, rows the
// float32 phase relaxes stay current, and rows refined only by the float64
// finish go stale on the pessimistic side — a stale-low lower bound (or
// stale-high upper bound) is a weaker but still valid input, so the shadow
// never needs an O(|S|) resync between solve calls.

const (
	// stagedMinFrontier gates the float32 phase: below it the frontier is
	// too small for the precision round-trip to pay off and the call runs
	// the plain serial float64 kernel. Deliberately low so modest test
	// graphs still exercise the staged path.
	stagedMinFrontier = 32
	// eps32 is the float32 unit roundoff (2^-24).
	eps32 = 5.9604644775390625e-08
	// f32ThetaFloor keeps the float32 propagation threshold above the
	// precision the shadow can resolve; tighter drift is left to the
	// float64 finish.
	f32ThetaFloor = 1e-6
	// seedMarginAbs is the absolute component of the write-back haircut.
	seedMarginAbs = 1e-12
)

// solvePHPStaged runs the float32 phase when the frontier is large enough,
// then always finishes with the serial float64 kernel on the same state.
func (s *Solver) solvePHPStaged(st *PHPState) {
	s.stats = Stats{Kind: Staged, Workers: 1}
	if len(st.QueueLB)+len(st.QueueUB) >= stagedMinFrontier {
		s.stageF32(st)
	}
	s.solvePHPSerial(st)
}

// stageF32 drains float32 mirrors of the current worklists on the shadow
// store, then seeds the float64 systems with the margined results.
func (s *Solver) stageF32(st *PHPState) {
	n := len(st.Bnd) / 2
	s.grow32(st, n)
	c32 := float32(st.C)
	theta := st.Tau / 16
	if theta < f32ThetaFloor {
		theta = f32ThetaFloor
	}
	theta32 := float32(theta)

	// Private worklists seeded from copies of the float64 queues — the
	// engine's queue/pend state is never consumed by this phase.
	qlb, qub := s.q32LB[:0], s.q32UB[:0]
	for _, i := range st.QueueLB {
		if !s.inQ32LB[i] {
			s.inQ32LB[i] = true
			qlb = append(qlb, i)
		}
	}
	for _, i := range st.QueueUB {
		if !s.inQ32UB[i] {
			s.inQ32UB[i] = true
			qub = append(qub, i)
		}
	}
	seedLB, seedUB := s.seedLB[:0], s.seedUB[:0]

	headLB, headUB := 0, 0
	budget := st.Budget
	var processedLB, processedUB int64
	for {
		moreLB := headLB < len(qlb) && processedLB < budget
		moreUB := headUB < len(qub) && processedUB < budget
		if !moreLB && !moreUB {
			break
		}
		if moreLB {
			i := qlb[headLB]
			headLB++
			s.inQ32LB[i] = false
			s.pend32LB[i] = 0
			processedLB++
			s.stats.F32Sweeps++
			if i != 0 {
				row := st.Rows[i]
				if len(row) > s.maxRow {
					s.maxRow = len(row)
				}
				var sum float32
				for _, en := range row {
					sum += float32(en.Val) * s.bnd32[2*en.Col]
				}
				v := c32 * sum
				if self := st.selfEntry(i); self > 0 {
					v /= float32(1 - st.C*self)
				}
				d := v - s.bnd32[2*i]
				if d < 0 {
					d = -d
				}
				s.bnd32[2*i] = v
				seedLB = append(seedLB, i)
				if d != 0 {
					for _, j := range st.Ladj[i] {
						if j == 0 {
							continue
						}
						s.pend32LB[j] += c32 * d
						if !s.inQ32LB[j] && s.pend32LB[j] > theta32 {
							s.inQ32LB[j] = true
							qlb = append(qlb, j)
						}
					}
				}
			}
		}
		if moreUB {
			i := qub[headUB]
			headUB++
			s.inQ32UB[i] = false
			s.pend32UB[i] = 0
			processedUB++
			s.stats.F32Sweeps++
			if i != 0 {
				row := st.Rows[i]
				if len(row) > s.maxRow {
					s.maxRow = len(row)
				}
				var sum float32
				for _, en := range row {
					sum += float32(en.Val) * s.bnd32[2*en.Col+1]
				}
				sum += float32(st.dummyEntry(i) * st.Rd)
				v := c32 * sum
				if self := st.selfEntry(i); self > 0 {
					v /= float32(1 - st.C*self)
				}
				d := v - s.bnd32[2*i+1]
				if d < 0 {
					d = -d
				}
				s.bnd32[2*i+1] = v
				seedUB = append(seedUB, i)
				if d != 0 {
					for _, j := range st.Ladj[i] {
						if j == 0 {
							continue
						}
						s.pend32UB[j] += c32 * d
						if !s.inQ32UB[j] && s.pend32UB[j] > theta32 {
							s.inQ32UB[j] = true
							qub = append(qub, j)
						}
					}
				}
			}
		}
	}
	// Budget-truncated remainders are simply discarded: clear their flags so
	// the next phase starts clean; the float64 finish owns convergence.
	for _, i := range qlb[headLB:] {
		s.inQ32LB[i] = false
	}
	for _, i := range qub[headUB:] {
		s.inQ32UB[i] = false
	}
	s.q32LB, s.q32UB = qlb[:0], qub[:0]
	s.seedLB, s.seedUB = seedLB, seedUB

	s.seedF64(st)
}

// seedF64 writes the margined float32 results into the float64 store,
// propagating each improvement through the standard pend/θ rule so the
// float64 finish re-verifies every seeded neighborhood.
func (s *Solver) seedF64(st *PHPState) {
	// Forward-error haircut: 4× the a-priori float32 fixpoint error for the
	// deepest fan-in this query's shadow has relaxed (see file comment).
	margin := 4 * float64(s.maxRow+4) * eps32 / (1 - st.C)
	theta := st.Tau / 16

	// The seed lists carry one entry per relaxation; dedup with the (now
	// all-clear) membership bitmaps, restoring them before returning.
	dedup := func(list []int32, flags []bool) []int32 {
		out := list[:0]
		for _, i := range list {
			if !flags[i] {
				flags[i] = true
				out = append(out, i)
			}
		}
		for _, i := range out {
			flags[i] = false
		}
		return out
	}
	for _, i := range dedup(s.seedLB, s.inQ32LB) {
		v := float64(s.bnd32[2*i])
		seed := v - (v*margin + seedMarginAbs)
		if seed <= st.Bnd[2*i] {
			continue
		}
		d := seed - st.Bnd[2*i]
		st.Bnd[2*i] = seed
		for _, j := range st.Ladj[i] {
			if j == 0 {
				continue
			}
			st.PendLB[j] += st.C * d
			if !st.InQLB[j] && st.PendLB[j] > theta {
				st.InQLB[j] = true
				st.QueueLB = append(st.QueueLB, j)
			}
		}
	}
	for _, i := range dedup(s.seedUB, s.inQ32UB) {
		v := float64(s.bnd32[2*i+1])
		seed := v + v*margin + seedMarginAbs
		if seed >= st.Bnd[2*i+1] {
			continue
		}
		d := st.Bnd[2*i+1] - seed
		st.Bnd[2*i+1] = seed
		for _, j := range st.Ladj[i] {
			if j == 0 {
				continue
			}
			st.PendUB[j] += st.C * d
			if !st.InQUB[j] && st.PendUB[j] > theta {
				st.InQUB[j] = true
				st.QueueUB = append(st.QueueUB, j)
			}
		}
	}
}

// grow32 extends the shadow store and its worklist arrays to n rows, seeding
// newly visited rows from the float64 store.
func (s *Solver) grow32(st *PHPState, n int) {
	for i := int32(len(s.bnd32) / 2); int(i) < n; i++ {
		s.bnd32 = append(s.bnd32, float32(st.Bnd[2*i]), float32(st.Bnd[2*i+1]))
	}
	for len(s.inQ32LB) < n {
		s.inQ32LB = append(s.inQ32LB, false)
		s.inQ32UB = append(s.inQ32UB, false)
		s.pend32LB = append(s.pend32LB, 0)
		s.pend32UB = append(s.pend32UB, 0)
	}
}
