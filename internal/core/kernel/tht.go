package kernel

// THTEntry is one local transition entry of the finite-horizon system:
// (local column, p_ij).
type THTEntry struct {
	Col int32
	P   float64
}

// THTState is the solve-call view of the finite-horizon THT engine. Like
// PHPState every field aliases engine storage; local index 0 is the query
// node (its rows stay pinned at 0 and its levels are never queued). The
// engine computes the distance floor and the boundary re-dirty before the
// call — the kernel only drains the per-level queues.
type THTState struct {
	// Rows are the within-S transition entries (row 0 empty).
	Rows [][]THTEntry
	// Ladj is the local undirected dependency adjacency.
	Ladj [][]int32
	// LbL/UbL are the level-l bound values, l = 0..L (level 0 identically 0).
	LbL, UbL [][]float64
	// InQ/Queue are the per-level dirty queues. The kernel truncates and
	// appends the inner slices in place; the outer headers are never
	// reallocated.
	InQ   [][]bool
	Queue [][]int32
	// L is the horizon; Floor is D+1, the hop-distance floor for unvisited
	// mass (distInf when the component is exhausted).
	L     int
	Floor int32
	// Out-mass inputs (THT convention: a degree-0 node sends full mass
	// outside).
	Deg, InW []float64
	OutCnt   []int32
}

// outMass mirrors thtEngine.outMass on the view.
func (st *THTState) outMass(i int32) float64 {
	if st.Deg[i] == 0 {
		return 1
	}
	m := (st.Deg[i] - st.InW[i]) / st.Deg[i]
	if m < 0 {
		return 0
	}
	return m
}

// SolveTHT drains the per-level dirty queues in level order, dispatching on
// the configured kind. The staged kernel has no THT variant (the hop-scale
// values gain nothing from float32 staging); it falls back to Parallel.
//
// Unlike the PHP systems, the THT recursion is layered: the level-l equation
// of a row reads only level l−1 values, which are frozen while level l
// drains, and each dirty row is relaxed exactly once per level (queue
// membership is deduplicated). Within a level the relaxations are therefore
// order-independent and write disjoint rows — so the parallel kernel
// produces bit-identical values AND work counters to the serial one, and is
// held to that standard by the equivalence tests.
func (s *Solver) SolveTHT(st *THTState) {
	n := 0
	if len(st.LbL) > 0 {
		n = len(st.LbL[len(st.LbL)-1])
	}
	switch s.resolve(n) {
	case Parallel, Staged:
		s.solveTHTParallel(st)
	default:
		s.stats = Stats{Kind: Serial, Workers: 1}
		s.solveTHTSerial(st)
	}
}

// levelFloor is the floor value for unvisited mass at level l: min(l−1, D+1).
func levelFloor(st *THTState, l int) float64 {
	fl := float64(l - 1)
	if ff := float64(st.Floor); ff < fl {
		fl = ff
	}
	return fl
}

// relaxTHT evaluates both level-l bounds of row i from the level l−1 values.
func relaxTHT(st *THTState, i int32, l int, lbPrev, ubPrev []float64, fl float64) (lo, hi float64) {
	var sLo, sHi float64
	for _, en := range st.Rows[i] {
		sLo += en.P * lbPrev[en.Col]
		sHi += en.P * ubPrev[en.Col]
	}
	om := 0.0
	if st.OutCnt[i] > 0 || st.Deg[i] == 0 {
		om = st.outMass(i)
	}
	lo = 1 + sLo + om*fl
	hi = 1 + sHi + om*float64(st.L)
	if cap := float64(l); hi > cap {
		hi = cap
	}
	if lo > hi {
		lo = hi // both remain valid; keeps the interval well-formed
	}
	return lo, hi
}

// solveTHTSerial is the reference kernel: a verbatim relocation of
// thtEngine.solveBounds' drain (LIFO within each level, dependents dirtied
// one level up).
func (s *Solver) solveTHTSerial(st *THTState) {
	for l := 1; l <= st.L; l++ {
		q := st.Queue[l]
		lbPrev, ubPrev := st.LbL[l-1], st.UbL[l-1]
		lbCur, ubCur := st.LbL[l], st.UbL[l]
		fl := levelFloor(st, l)
		for len(q) > 0 {
			i := q[len(q)-1]
			q = q[:len(q)-1]
			st.InQ[l][i] = false
			s.stats.Sweeps++
			lo, hi := relaxTHT(st, i, l, lbPrev, ubPrev, fl)
			if lo == lbCur[i] && hi == ubCur[i] {
				continue
			}
			lbCur[i] = lo
			ubCur[i] = hi
			if l < st.L {
				nq := st.Queue[l+1]
				for _, j := range st.Ladj[i] {
					if !st.InQ[l+1][j] && j != 0 {
						st.InQ[l+1][j] = true
						nq = append(nq, j)
					}
				}
				st.Queue[l+1] = nq
			}
		}
		st.Queue[l] = q[:0]
	}
}

// solveTHTParallel relaxes each level's frontier across the worker pool. The
// level-l frontier is static during its drain (relaxations only dirty level
// l+1), values are computed purely from the frozen l−1 layer, and each row
// appears at most once — so workers write lbCur/ubCur directly without
// synchronization and record changed flags per frontier slot. The serial
// apply pass then walks the frontier in the reference kernel's LIFO order
// (reverse append order) enqueuing dependents, which makes this kernel
// bit-identical to solveTHTSerial in values, queue orders, and sweep counts
// for any worker count.
func (s *Solver) solveTHTParallel(st *THTState) {
	workers, release := s.acquireWorkers()
	defer release()
	s.stats = Stats{Kind: Parallel, Workers: workers}
	blockRows := s.cfg.blockRows()

	for l := 1; l <= st.L; l++ {
		front := st.Queue[l]
		if len(front) == 0 {
			continue
		}
		s.stats.Rounds++
		s.stats.Sweeps += len(front)
		lbPrev, ubPrev := st.LbL[l-1], st.UbL[l-1]
		lbCur, ubCur := st.LbL[l], st.UbL[l]
		fl := levelFloor(st, l)
		for _, i := range front {
			st.InQ[l][i] = false
		}
		if cap(s.changed) < len(front) {
			s.changed = make([]bool, len(front))
		}
		changed := s.changed[:len(front)]

		nb := (len(front) + blockRows - 1) / blockRows
		if nb > s.stats.Blocks {
			s.stats.Blocks = nb
		}
		parallelBlocks(workers, nb, func(b int) {
			lo := b * blockRows
			hi := lo + blockRows
			if hi > len(front) {
				hi = len(front)
			}
			for pos := lo; pos < hi; pos++ {
				i := front[pos]
				vlo, vhi := relaxTHT(st, i, l, lbPrev, ubPrev, fl)
				if vlo == lbCur[i] && vhi == ubCur[i] {
					changed[pos] = false
					continue
				}
				lbCur[i] = vlo
				ubCur[i] = vhi
				changed[pos] = true
			}
		})

		if l < st.L {
			nq := st.Queue[l+1]
			for pos := len(front) - 1; pos >= 0; pos-- {
				if !changed[pos] {
					continue
				}
				for _, j := range st.Ladj[front[pos]] {
					if !st.InQ[l+1][j] && j != 0 {
						st.InQ[l+1][j] = true
						nq = append(nq, j)
					}
				}
			}
			st.Queue[l+1] = nq
		}
		st.Queue[l] = front[:0]
	}
}
