package core

// Kernel-equivalence suite: replays the full golden scenario grid (the same
// graphs × queries × measures × tightening combinations golden_test.go pins)
// under every bound-solver kernel and checks each kernel against its
// contract:
//
//   - Auto must be byte-identical to Serial on every pinned fixture. Auto
//     resolves purely on |S| against kernel.DefaultThreshold, and all golden
//     graphs sit far below it, so this holds on any machine and any
//     GOMAXPROCS — which is what lets CI run the golden suite under a
//     GOMAXPROCS matrix without per-machine goldens.
//   - The THT kernels are byte-identical to Serial by construction (the
//     parallel level sweep applies updates in the exact LIFO order the
//     serial solver used), so THT runs are held to full bit equality:
//     ranking, score bits, and every work counter.
//   - The PHP-family Parallel and Staged kernels follow a different
//     relaxation order (frontier-synchronous Jacobi rounds; a float32
//     pre-pass), so individual float64 values may differ in low-order bits
//     and sweep counts legitimately differ. They are held to the semantic
//     contract instead: identical top-k node sets, identical Exact and
//     Certified flags, and per-node certified intervals that overlap the
//     serial intervals (both enclose the true score, so disjoint intervals
//     would prove one of them invalid) with scores inside the interval
//     union. This is the test that would catch a wrong float32 write-back
//     margin: an invalid staged bound excludes the true value and detaches
//     from the serial interval.

import (
	"context"
	"fmt"
	"math"
	"slices"
	"testing"

	"flos/internal/graph"
	"flos/internal/measure"
)

// equivSlop absorbs the measure-scale conversion roundoff when comparing
// certified intervals produced by different (all individually valid)
// relaxation orders.
func equivSlop(lo, hi float64) float64 {
	m := math.Max(math.Abs(lo), math.Abs(hi))
	return 1e-12 + 1e-9*m
}

func sortedNodes(rs []measure.Ranked) []graph.NodeID {
	out := make([]graph.NodeID, len(rs))
	for i, r := range rs {
		out[i] = r.Node
	}
	slices.Sort(out)
	return out
}

// requireSameBits holds two results to full bit equality (the THT contract).
func requireSameBits(t *testing.T, label string, want, got *Result) {
	t.Helper()
	wn, wb := rankedBits(want.TopK)
	gn, gb := rankedBits(got.TopK)
	if fmt.Sprint(wn) != fmt.Sprint(gn) || fmt.Sprint(wb) != fmt.Sprint(gb) {
		t.Fatalf("%s: ranking/scores differ from serial\nserial %v %v\ngot    %v %v", label, wn, wb, gn, gb)
	}
	if want.Visited != got.Visited || want.Iterations != got.Iterations || want.Sweeps != got.Sweeps {
		t.Fatalf("%s: counters differ from serial: serial {v:%d it:%d sw:%d} got {v:%d it:%d sw:%d}",
			label, want.Visited, want.Iterations, want.Sweeps, got.Visited, got.Iterations, got.Sweeps)
	}
	if want.Exact != got.Exact || want.Certification.Certified != got.Certification.Certified {
		t.Fatalf("%s: flags differ from serial: serial exact=%v cert=%v, got exact=%v cert=%v",
			label, want.Exact, want.Certification.Certified, got.Exact, got.Certification.Certified)
	}
}

// requireTiedSet compares two selections as sets, tolerating membership
// differences only between tied nodes. Exact score ties (e.g. symmetric grid
// nodes) may resolve to either tied node depending on low-order bits, so a
// disputed node's certified interval (taken from the result that selected
// it) must overlap every other disputed interval within tieEps: legitimate
// tie flips certify near-equal scores, a wrong node does not.
func requireTiedSet(t *testing.T, label string, want, got []measure.Ranked, wantCert, gotCert Certification, tieEps float64) {
	t.Helper()
	wn, gn := sortedNodes(want), sortedNodes(got)
	if fmt.Sprint(wn) == fmt.Sprint(gn) {
		return
	}
	inW := map[graph.NodeID]bool{}
	for _, n := range wn {
		inW[n] = true
	}
	inG := map[graph.NodeID]bool{}
	for _, n := range gn {
		inG[n] = true
	}
	var disputed []NodeBounds
	for _, b := range wantCert.Bounds {
		if !inG[b.Node] {
			disputed = append(disputed, b)
		}
	}
	for _, b := range gotCert.Bounds {
		if !inW[b.Node] {
			disputed = append(disputed, b)
		}
	}
	for i := range disputed {
		for j := i + 1; j < len(disputed); j++ {
			a, b := disputed[i], disputed[j]
			slop := tieEps + equivSlop(a.Lower, a.Upper) + equivSlop(b.Lower, b.Upper)
			if a.Lower > b.Upper+slop || b.Lower > a.Upper+slop {
				t.Fatalf("%s: top-k node set differs beyond tie tolerance\nserial %v\ngot    %v\nnodes %d [%g,%g] and %d [%g,%g] are not tied",
					label, wn, gn, a.Node, a.Lower, a.Upper, b.Node, b.Lower, b.Upper)
			}
		}
	}
}

// requireEquivalent holds a PHP-family result to the semantic contract
// against the serial reference.
func requireEquivalent(t *testing.T, label string, want, got *Result, tieEps float64) {
	t.Helper()
	requireTiedSet(t, label, want.TopK, got.TopK, want.Certification, got.Certification, tieEps)
	if want.Exact != got.Exact {
		t.Fatalf("%s: Exact flag differs: serial %v, got %v", label, want.Exact, got.Exact)
	}
	if want.Certification.Certified != got.Certification.Certified {
		t.Fatalf("%s: Certified flag differs: serial %v, got %v",
			label, want.Certification.Certified, got.Certification.Certified)
	}
	wIv := map[graph.NodeID]NodeBounds{}
	for _, b := range want.Certification.Bounds {
		wIv[b.Node] = b
	}
	wScore := map[graph.NodeID]float64{}
	for _, r := range want.TopK {
		wScore[r.Node] = r.Score
	}
	gIv := map[graph.NodeID]NodeBounds{}
	for _, b := range got.Certification.Bounds {
		gIv[b.Node] = b
	}
	for _, r := range got.TopK {
		w, ok := wIv[r.Node]
		g := gIv[r.Node]
		if !ok {
			continue // set equality already checked; bounds list mirrors TopK
		}
		slop := equivSlop(w.Lower, w.Upper) + equivSlop(g.Lower, g.Upper)
		// Both intervals certify the same true score, so they must overlap.
		if g.Lower > w.Upper+slop || w.Lower > g.Upper+slop {
			t.Fatalf("%s: node %d certified intervals disjoint: serial [%g,%g], got [%g,%g]",
				label, r.Node, w.Lower, w.Upper, g.Lower, g.Upper)
		}
		// And both reported scores must land inside the interval union.
		lo, hi := math.Min(w.Lower, g.Lower)-slop, math.Max(w.Upper, g.Upper)+slop
		if r.Score < lo || r.Score > hi {
			t.Fatalf("%s: node %d score %g outside certified union [%g,%g]", label, r.Node, r.Score, lo, hi)
		}
		if ws := wScore[r.Node]; ws < lo || ws > hi {
			t.Fatalf("%s: node %d serial score %g outside certified union [%g,%g]", label, r.Node, ws, lo, hi)
		}
	}
}

// TestKernelEquivalence replays every golden scenario under every kernel.
func TestKernelEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, gc := range goldenGraphs(t) {
		for _, q := range goldenQueries(gc.g.NumNodes()) {
			for _, kind := range measure.Kinds() {
				for _, tighten := range []bool{true, false} {
					if kind == measure.THT && !tighten {
						continue
					}
					opt := goldenOptions(kind, tighten)
					base := fmt.Sprintf("%s/%v/q=%d/tighten=%v", gc.name, kind, q, tighten)

					opt.Kernel = KernelSerial
					serial, err := TopKCtx(ctx, gc.g, q, opt)
					if err != nil {
						t.Fatalf("%s/serial: %v", base, err)
					}

					opt.Kernel = KernelAuto
					auto, err := TopKCtx(ctx, gc.g, q, opt)
					if err != nil {
						t.Fatalf("%s/auto: %v", base, err)
					}
					requireSameBits(t, base+"/auto", serial, auto)

					for _, kk := range []KernelKind{KernelParallel, KernelStaged} {
						opt.Kernel = kk
						got, err := TopKCtx(ctx, gc.g, q, opt)
						if err != nil {
							t.Fatalf("%s/%v: %v", base, kk, err)
						}
						label := fmt.Sprintf("%s/%v", base, kk)
						if kind == measure.THT {
							requireSameBits(t, label, serial, got)
						} else {
							requireEquivalent(t, label, serial, got, opt.TieEps)
						}
					}
				}
			}

			// Unified search under forced kernels: both selections must keep
			// their node sets (byte-identity is not required — the RWR side
			// shares the PHP engine's bounds, so Jacobi ordering moves low
			// bits there too).
			uopt := goldenOptions(measure.PHP, true)
			uopt.Kernel = KernelSerial
			us, err := UnifiedTopKCtx(ctx, gc.g, q, uopt)
			if err != nil {
				t.Fatalf("%s/unified/q=%d serial: %v", gc.name, q, err)
			}
			for _, kk := range []KernelKind{KernelAuto, KernelParallel, KernelStaged} {
				uopt.Kernel = kk
				ug, err := UnifiedTopKCtx(ctx, gc.g, q, uopt)
				if err != nil {
					t.Fatalf("%s/unified/q=%d %v: %v", gc.name, q, kk, err)
				}
				label := fmt.Sprintf("%s/unified/q=%d/%v", gc.name, q, kk)
				requireTiedSet(t, label+"/php", us.PHPFamily, ug.PHPFamily, us.PHPCert, ug.PHPCert, uopt.TieEps)
				requireTiedSet(t, label+"/rwr", us.RWR, ug.RWR, us.RWRCert, ug.RWRCert, uopt.TieEps)
				if kk == KernelAuto {
					pn, pb := rankedBits(us.PHPFamily)
					gn, gb := rankedBits(ug.PHPFamily)
					if fmt.Sprint(pn) != fmt.Sprint(gn) || fmt.Sprint(pb) != fmt.Sprint(gb) {
						t.Fatalf("%s: auto must be byte-identical to serial", label)
					}
				}
			}
		}
	}
}
