// Package core implements FLoS — Fast Local Search — the paper's
// contribution (Algorithms 1–6): exact top-k proximity queries answered by
// expanding a visited set S around the query node while maintaining lower
// and upper proximity bounds whose validity rests on the no-local-optimum
// property.
//
// The native engine bounds PHP (Sections 4–5). EI, DHT and RWR are served
// through the ranking-equivalence maps of Theorems 2 and 6; THT has its own
// finite-horizon engine mirroring the same structure (appendix 10.4).
package core

import (
	"fmt"

	"flos/internal/graph"
	"flos/internal/measure"
)

// Options configures a FLoS query.
type Options struct {
	// K is the number of nearest neighbors to return.
	K int
	// Measure selects the proximity measure.
	Measure measure.Kind
	// Params carries decay/restart, THT horizon, and the Algorithm 7
	// tolerance.
	Params measure.Params
	// Tighten enables the self-loop bound tightening of Section 5.3
	// (star-to-mesh transformation). It spends one Degree lookup per
	// boundary-crossing edge to shrink the gap between the bounds.
	Tighten bool
	// MaxVisited caps |S| as a safety valve; 0 means no cap. When the cap
	// fires the result carries Exact=false.
	MaxVisited int
	// TieEps relaxes the termination inequality: a separating gap below
	// TieEps is treated as an exact tie, either side of which is a valid
	// top-k answer. Zero keeps the paper's strict (and, under exact ties,
	// non-terminating) criterion; DefaultOptions uses 1e-9.
	TieEps float64
	// Trace, when non-nil, receives a per-iteration snapshot of the search —
	// used to regenerate the paper's Figure 4 and Table 3.
	Trace func(TraceEvent)
}

// DefaultOptions mirrors the paper's experimental configuration for the
// given measure: c = 0.5, τ = 1e-5, L = 10, tightening on.
func DefaultOptions(kind measure.Kind, k int) Options {
	return Options{
		K:       k,
		Measure: kind,
		Params:  measure.DefaultParams(),
		Tighten: true,
		TieEps:  1e-9,
	}
}

// Validate rejects malformed options.
func (o Options) Validate() error {
	if o.K <= 0 {
		return fmt.Errorf("core: K=%d must be positive", o.K)
	}
	if err := o.Params.Validate(); err != nil {
		return err
	}
	if o.MaxVisited < 0 {
		return fmt.Errorf("core: MaxVisited=%d must be non-negative", o.MaxVisited)
	}
	if o.TieEps < 0 {
		return fmt.Errorf("core: TieEps=%g must be non-negative", o.TieEps)
	}
	return nil
}

// TraceEvent is one iteration's snapshot for tracing/visualization.
type TraceEvent struct {
	// Iteration is the 1-based local-expansion count (paper's t).
	Iteration int
	// Expanded is the boundary node whose neighborhood was just pulled in.
	Expanded graph.NodeID
	// NewNodes lists the nodes first visited this iteration (Table 3).
	NewNodes []graph.NodeID
	// Nodes, Lower, Upper are parallel: the current visited set with its
	// bound values in the engine's PHP scale (Figure 4).
	Nodes []graph.NodeID
	Lower []float64
	Upper []float64
	// DummyValue is r_d after this iteration's update.
	DummyValue float64
}

// Result reports a completed query.
type Result struct {
	// TopK lists the k nearest nodes, closest first, with scores in the
	// requested measure's natural direction. For PHP and DHT the scores are
	// exact up to the solver tolerance; for EI and RWR they are exact up to
	// the query-dependent positive constant Theorems 2/6 leave free (the
	// ranking is unaffected).
	TopK []measure.Ranked
	// Visited is |S|: how many nodes were expanded into, the paper's
	// locality metric (Figures 9 and 13(b)).
	Visited int
	// Iterations counts local expansions (paper's t).
	Iterations int
	// Sweeps counts Jacobi sweeps across all bound updates (paper's α·β).
	Sweeps int
	// DegreeProbes counts Degree() metadata lookups on unvisited nodes
	// (spent by tightening and by the RWR w(S̄) guard).
	DegreeProbes int
	// Exact is false only if MaxVisited aborted the search early.
	Exact bool
}
