// Package core implements FLoS — Fast Local Search — the paper's
// contribution (Algorithms 1–6): exact top-k proximity queries answered by
// expanding a visited set S around the query node while maintaining lower
// and upper proximity bounds whose validity rests on the no-local-optimum
// property.
//
// The native engine bounds PHP (Sections 4–5). EI, DHT and RWR are served
// through the ranking-equivalence maps of Theorems 2 and 6; THT has its own
// finite-horizon engine mirroring the same structure (appendix 10.4).
package core

import (
	"fmt"

	"flos/internal/graph"
	"flos/internal/measure"
)

// Options configures a FLoS query.
type Options struct {
	// K is the number of nearest neighbors to return.
	K int
	// Measure selects the proximity measure.
	Measure measure.Kind
	// Params carries decay/restart, THT horizon, and the Algorithm 7
	// tolerance.
	Params measure.Params
	// Tighten enables the self-loop bound tightening of Section 5.3
	// (star-to-mesh transformation). It spends one Degree lookup per
	// boundary-crossing edge to shrink the gap between the bounds.
	Tighten bool
	// MaxVisited caps |S| as a safety valve; 0 means no cap. When the cap
	// fires the result carries Exact=false.
	MaxVisited int
	// TieEps relaxes the termination inequality: a separating gap below
	// TieEps is treated as an exact tie, either side of which is a valid
	// top-k answer. Zero keeps the paper's strict (and, under exact ties,
	// non-terminating) criterion; DefaultOptions uses 1e-9.
	TieEps float64
	// Trace, when non-nil, receives a per-iteration snapshot of the search —
	// used to regenerate the paper's Figure 4 and Table 3. Each snapshot
	// copies the full visited set and both bound vectors, so it is far more
	// expensive than Tracer. Traced and untraced runs share one expansion
	// schedule: enabling Trace never changes which nodes are visited.
	//
	// Deprecated: use Tracer, which records per-iteration statistics on the
	// same schedule without the O(|S|) snapshot copies. Trace remains for
	// the figure-regeneration tooling.
	Trace func(TraceEvent)
	// WarmStart seeds the visited set with the listed nodes (in order)
	// before the first expansion, on top of the mandatory query-node seed.
	// The bound systems are valid for ANY visited set containing q, so a
	// warm-started search is exactly as correct as a cold one — it just
	// starts closer to termination when the seeds cover the answer's
	// neighborhood. The live-serving cache uses this to re-certify a stale
	// result on a new snapshot from its old visited set instead of
	// recomputing from scratch. Out-of-range, duplicate, and q entries are
	// skipped silently. Warm-started results are exact but need not be
	// byte-identical to a cold run: the expansion trajectory differs.
	WarmStart []graph.NodeID
	// CaptureFootprint asks the result to carry the query's read footprint:
	// the visited set in visit order, the unvisited nodes whose Degree was
	// probed (bound tightening, RWR guard), and the w(S̄) guard ceiling.
	// This is what surgical cache invalidation intersects mutation batches
	// against. Off by default — capture allocates two slices per query.
	CaptureFootprint bool
	// Tracer, when non-nil, receives one IterStats per search iteration:
	// visited/boundary/candidate counts, the certification gap (k-th lower
	// bound vs. best outsider upper bound), batch size, and per-phase wall
	// times. The disabled cost is a nil check per iteration; the enabled
	// cost is a handful of timestamp reads — the boundary and interior
	// sizes come from the engines' O(1) incremental counters, so tracing
	// adds no per-iteration scan of the visited set.
	Tracer Tracer
}

// Tracer observes per-iteration search statistics (Options.Tracer).
type Tracer interface {
	ObserveIteration(IterStats)
}

// IterStats is one search iteration's instrumentation record. Bound values
// are in the engine's native key scale: PHP-scale proximities for the PHP
// family, degree-weighted PHP for RWR, hop counts for THT.
type IterStats struct {
	// Iteration is the 1-based expansion count (paper's t).
	Iteration int `json:"iter"`
	// Visited is |S|; Boundary is |δS|; Interior is the candidate count
	// |S \ δS \ {q}| the top-k is selected from.
	Visited  int `json:"visited"`
	Boundary int `json:"boundary"`
	Interior int `json:"interior"`
	// Batch is the number of boundary nodes expanded this iteration;
	// NewNodes how many nodes were first visited as a result.
	Batch    int `json:"batch"`
	NewNodes int `json:"new_nodes"`
	// GapValid reports that the termination test got far enough to compare
	// bounds (k candidates exist). KthBound is then the k-th best
	// candidate's certified-side bound key (lower bound for higher-is-closer
	// measures, upper bound for THT) and RestBound the best competing bound
	// key over every other node, visited or not (upper bounds, including the
	// w(S̄)-guarded unvisited mass in RWR mode; lower bounds for THT).
	GapValid  bool    `json:"gap_valid"`
	KthBound  float64 `json:"kth_bound"`
	RestBound float64 `json:"rest_bound"`
	// Gap is the certification margin, oriented so that Gap >= -TieEps iff
	// the top-k set is certified: KthBound-RestBound for higher-is-closer
	// measures, RestBound-KthBound for THT (Theorem 1's stopping rule).
	Gap float64 `json:"gap"`
	// Certified reports that this iteration's termination test passed — on
	// a completed exact search it is true exactly once, in the final entry.
	Certified bool `json:"certified"`
	// DummyValue is r_d after this iteration (the upper-bound anchor).
	DummyValue float64 `json:"dummy"`
	// Per-phase wall times: graph expansion (I/O + wiring), the bound
	// sweeps (tightening + both systems), and the certification test.
	ExpandNS  int64 `json:"expand_ns"`
	SolveNS   int64 `json:"solve_ns"`
	CertifyNS int64 `json:"certify_ns"`
}

// TraceCollector is a Tracer that records the full trajectory in order.
// It is not concurrency-safe; use one per query.
type TraceCollector struct {
	Iters []IterStats
}

// ObserveIteration appends the record.
func (c *TraceCollector) ObserveIteration(s IterStats) { c.Iters = append(c.Iters, s) }

// DefaultOptions mirrors the paper's experimental configuration for the
// given measure: c = 0.5, τ = 1e-5, L = 10, tightening on.
func DefaultOptions(kind measure.Kind, k int) Options {
	return Options{
		K:       k,
		Measure: kind,
		Params:  measure.DefaultParams(),
		Tighten: true,
		TieEps:  1e-9,
	}
}

// Validate rejects malformed options. Every failure wraps
// ErrInvalidOptions, so callers can classify with errors.Is.
func (o Options) Validate() error {
	if o.K <= 0 {
		return fmt.Errorf("%w: K=%d must be positive", ErrInvalidOptions, o.K)
	}
	if err := o.Params.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidOptions, err)
	}
	if o.MaxVisited < 0 {
		return fmt.Errorf("%w: MaxVisited=%d must be non-negative", ErrInvalidOptions, o.MaxVisited)
	}
	if o.TieEps < 0 {
		return fmt.Errorf("%w: TieEps=%g must be non-negative", ErrInvalidOptions, o.TieEps)
	}
	return nil
}

// TraceEvent is one iteration's snapshot for tracing/visualization.
type TraceEvent struct {
	// Iteration is the 1-based local-expansion count (paper's t).
	Iteration int
	// Expanded is the boundary node whose neighborhood was just pulled in.
	Expanded graph.NodeID
	// NewNodes lists the nodes first visited this iteration (Table 3).
	NewNodes []graph.NodeID
	// Nodes, Lower, Upper are parallel: the current visited set with its
	// bound values in the engine's PHP scale (Figure 4).
	Nodes []graph.NodeID
	Lower []float64
	Upper []float64
	// DummyValue is r_d after this iteration's update.
	DummyValue float64
}

// Result reports a completed query.
type Result struct {
	// TopK lists the k nearest nodes, closest first, with scores in the
	// requested measure's natural direction. For PHP and DHT the scores are
	// exact up to the solver tolerance; for EI and RWR they are exact up to
	// the query-dependent positive constant Theorems 2/6 leave free (the
	// ranking is unaffected).
	TopK []measure.Ranked
	// Visited is |S|: how many nodes were expanded into, the paper's
	// locality metric (Figures 9 and 13(b)).
	Visited int
	// Iterations counts local expansions (paper's t).
	Iterations int
	// Sweeps counts Jacobi sweeps across all bound updates (paper's α·β).
	Sweeps int
	// DegreeProbes counts Degree() metadata lookups on unvisited nodes
	// (spent by tightening and by the RWR w(S̄) guard).
	DegreeProbes int
	// Exact is false only if MaxVisited aborted the search early.
	Exact bool

	// VisitedNodes, ProbedNodes, and GuardDegree are populated only when
	// Options.CaptureFootprint is set. VisitedNodes is S in visit order;
	// ProbedNodes lists the unvisited nodes whose Degree the search read
	// (each at most once); GuardDegree is the last w(S̄) guard value an RWR
	// search certified against (0 when no guard was used). Together they are
	// the query's entire read footprint: a mutation that touches none of
	// these nodes and does not raise any endpoint's degree above GuardDegree
	// cannot change this result.
	VisitedNodes []graph.NodeID
	ProbedNodes  []graph.NodeID
	GuardDegree  float64
}
