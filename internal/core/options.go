// Package core implements FLoS — Fast Local Search — the paper's
// contribution (Algorithms 1–6): exact top-k proximity queries answered by
// expanding a visited set S around the query node while maintaining lower
// and upper proximity bounds whose validity rests on the no-local-optimum
// property.
//
// The native engine bounds PHP (Sections 4–5). EI, DHT and RWR are served
// through the ranking-equivalence maps of Theorems 2 and 6; THT has its own
// finite-horizon engine mirroring the same structure (appendix 10.4).
package core

import (
	"encoding/json"
	"fmt"

	"flos/internal/core/kernel"
	"flos/internal/graph"
	"flos/internal/measure"
)

// Mode selects the serving mode: how much certification a query demands
// before it returns. The zero value is ModeExact, so existing callers keep
// the paper's exact semantics unchanged.
type Mode int

const (
	// ModeExact runs Theorem 1's stopping rule to completion: the returned
	// top-k is certified exact (up to TieEps ties). This is the zero value.
	ModeExact Mode = iota
	// ModeEpsilon stops as soon as the k-th certified bound is within
	// Options.Epsilon of the best competing bound: every returned node's
	// true proximity is within ε (in the engine's certification-key scale)
	// of any node it displaced. The Result's Certification block reports
	// the achieved gap, which is always <= ε.
	ModeEpsilon
	// ModeAnytime behaves like ModeExact until the context deadline fires
	// or the caller cancels; instead of an *Interrupted error it then
	// returns the current best top-k with Certification.Certified=false
	// and the residual gap at interruption time.
	ModeAnytime
)

// String renders the mode the way the HTTP API spells it.
func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModeEpsilon:
		return "epsilon"
	case ModeAnytime:
		return "anytime"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// MarshalJSON renders the mode as its API spelling ("exact", "epsilon",
// "anytime") so Certification blocks read the same in every envelope.
func (m Mode) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.String())
}

// UnmarshalJSON accepts the API spelling (or the empty string, as exact).
func (m *Mode) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseMode(s)
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// ParseMode is the inverse of Mode.String. The empty string parses as
// ModeExact so request schemas can leave the field optional.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "exact":
		return ModeExact, nil
	case "epsilon":
		return ModeEpsilon, nil
	case "anytime":
		return ModeAnytime, nil
	}
	return 0, fmt.Errorf("%w: unknown mode %q (want exact|epsilon|anytime)", ErrInvalidOptions, s)
}

// KernelKind selects the bound-solver kernel a query's relaxation sweeps run
// on (see internal/core/kernel). The zero value is KernelAuto.
type KernelKind = kernel.Kind

const (
	// KernelAuto picks per solve call by visited-set size: the serial
	// reference kernel on small searches, the partitioned parallel kernel
	// once |S| crosses the kernel layer's threshold. The choice depends only
	// on |S| — never on GOMAXPROCS or machine load — so results stay
	// deterministic across machines.
	KernelAuto = kernel.Auto
	// KernelSerial pins the reference fused Gauss–Seidel pass —
	// byte-identical to the pre-kernel engines.
	KernelSerial = kernel.Serial
	// KernelParallel pins the partitioned block-Jacobi kernel.
	KernelParallel = kernel.Parallel
	// KernelStaged pins the two-phase precision kernel (float32 sweeps,
	// float64 finish; certification always reads float64 bounds).
	KernelStaged = kernel.Staged
)

// ParseKernel parses the API spelling of a kernel selection
// ("auto"|"serial"|"parallel"|"staged"; empty means auto). Failures wrap
// ErrInvalidOptions.
func ParseKernel(s string) (KernelKind, error) {
	k, err := kernel.ParseKind(s)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalidOptions, err)
	}
	return k, nil
}

// Options configures a FLoS query.
type Options struct {
	// K is the number of nearest neighbors to return.
	K int
	// Measure selects the proximity measure.
	Measure measure.Kind
	// Params carries decay/restart, THT horizon, and the Algorithm 7
	// tolerance.
	Params measure.Params
	// Tighten enables the self-loop bound tightening of Section 5.3
	// (star-to-mesh transformation). It spends one Degree lookup per
	// boundary-crossing edge to shrink the gap between the bounds.
	Tighten bool
	// MaxVisited caps |S| as a safety valve; 0 means no cap. When the cap
	// fires the result carries Exact=false.
	MaxVisited int
	// TieEps relaxes the termination inequality: a separating gap below
	// TieEps is treated as an exact tie, either side of which is a valid
	// top-k answer. Zero keeps the paper's strict (and, under exact ties,
	// non-terminating) criterion; DefaultOptions uses 1e-9.
	TieEps float64
	// Mode selects the serving mode (exact, ε-certified, or anytime). The
	// zero value is ModeExact. ModeExact runs are byte-identical to a build
	// without serving modes: the mode only widens the termination slack,
	// and ModeExact's slack is exactly TieEps.
	Mode Mode
	// Epsilon is ModeEpsilon's certified-error budget, in the engine's
	// certification-key scale (PHP-scale proximity for the PHP family,
	// degree-weighted PHP for RWR, hop counts for THT). The search stops as
	// soon as the residual gap is <= max(Epsilon, TieEps). Must be zero in
	// the other modes.
	Epsilon float64
	// WarmStart seeds the visited set with the listed nodes (in order)
	// before the first expansion, on top of the mandatory query-node seed.
	// The bound systems are valid for ANY visited set containing q, so a
	// warm-started search is exactly as correct as a cold one — it just
	// starts closer to termination when the seeds cover the answer's
	// neighborhood. The live-serving cache uses this to re-certify a stale
	// result on a new snapshot from its old visited set instead of
	// recomputing from scratch. Out-of-range, duplicate, and q entries are
	// skipped silently. Warm-started results are exact but need not be
	// byte-identical to a cold run: the expansion trajectory differs.
	WarmStart []graph.NodeID
	// Kernel selects the bound-solver kernel (auto, serial, parallel,
	// staged). KernelAuto — the zero value — keeps small queries on the
	// serial fast path and engages the parallel kernel only above the kernel
	// layer's visited-set threshold. All kernels return the same certified
	// top-k sets; KernelSerial is additionally byte-identical to the
	// pre-kernel engines.
	Kernel KernelKind
	// kernelTokens, when non-nil, is the shared intra-query parallelism
	// budget the kernels draw extra workers from (WithKernelTokens). The
	// serving pool injects one budget sized to the machine so concurrent
	// queries degrade to serial sweeps instead of oversubscribing cores.
	kernelTokens *kernel.TokenBudget
	// CaptureFootprint asks the result to carry the query's read footprint:
	// the visited set in visit order, the unvisited nodes whose Degree was
	// probed (bound tightening, RWR guard), and the w(S̄) guard ceiling.
	// This is what surgical cache invalidation intersects mutation batches
	// against. Off by default — capture allocates two slices per query.
	CaptureFootprint bool
	// Tracer, when non-nil, receives one IterStats per search iteration:
	// visited/boundary/candidate counts, the certification gap (k-th lower
	// bound vs. best outsider upper bound), batch size, and per-phase wall
	// times. The disabled cost is a nil check per iteration; the enabled
	// cost is a handful of timestamp reads — the boundary and interior
	// sizes come from the engines' O(1) incremental counters, so tracing
	// adds no per-iteration scan of the visited set.
	Tracer Tracer
}

// Tracer observes per-iteration search statistics (Options.Tracer).
type Tracer interface {
	ObserveIteration(IterStats)
}

// IterStats is one search iteration's instrumentation record. Bound values
// are in the engine's native key scale: PHP-scale proximities for the PHP
// family, degree-weighted PHP for RWR, hop counts for THT.
type IterStats struct {
	// Iteration is the 1-based expansion count (paper's t).
	Iteration int `json:"iter"`
	// Visited is |S|; Boundary is |δS|; Interior is the candidate count
	// |S \ δS \ {q}| the top-k is selected from.
	Visited  int `json:"visited"`
	Boundary int `json:"boundary"`
	Interior int `json:"interior"`
	// Batch is the number of boundary nodes expanded this iteration;
	// NewNodes how many nodes were first visited as a result.
	Batch    int `json:"batch"`
	NewNodes int `json:"new_nodes"`
	// GapValid reports that the termination test got far enough to compare
	// bounds (k candidates exist). KthBound is then the k-th best
	// candidate's certified-side bound key (lower bound for higher-is-closer
	// measures, upper bound for THT) and RestBound the best competing bound
	// key over every other node, visited or not (upper bounds, including the
	// w(S̄)-guarded unvisited mass in RWR mode; lower bounds for THT).
	GapValid  bool    `json:"gap_valid"`
	KthBound  float64 `json:"kth_bound"`
	RestBound float64 `json:"rest_bound"`
	// Gap is the certification margin, oriented so that Gap >= -TieEps iff
	// the top-k set is certified: KthBound-RestBound for higher-is-closer
	// measures, RestBound-KthBound for THT (Theorem 1's stopping rule).
	Gap float64 `json:"gap"`
	// Certified reports that this iteration's termination test passed — on
	// a completed exact search it is true exactly once, in the final entry.
	Certified bool `json:"certified"`
	// DummyValue is r_d after this iteration (the upper-bound anchor).
	DummyValue float64 `json:"dummy"`
	// Per-phase wall times: graph expansion (I/O + wiring), the bound
	// sweeps (tightening + both systems), and the certification test.
	ExpandNS  int64 `json:"expand_ns"`
	SolveNS   int64 `json:"solve_ns"`
	CertifyNS int64 `json:"certify_ns"`
	// Kernel attributes of this iteration's solve: which kernel variant ran
	// ("serial"|"parallel"|"staged"), the partition blocks and synchronous
	// rounds the parallel kernel engaged, the goroutines used, and the
	// float32 shadow relaxations of the staged kernel's first phase.
	// Zero-valued (and omitted from JSON) on the serial reference path
	// except for the variant name itself.
	Kernel          string `json:"kernel,omitempty"`
	KernelBlocks    int    `json:"kernel_blocks,omitempty"`
	KernelRounds    int    `json:"kernel_rounds,omitempty"`
	KernelWorkers   int    `json:"kernel_workers,omitempty"`
	KernelF32Sweeps int    `json:"kernel_f32_sweeps,omitempty"`
}

// TraceCollector is a Tracer that records the full trajectory in order.
// It is not concurrency-safe; use one per query.
type TraceCollector struct {
	Iters []IterStats
}

// ObserveIteration appends the record.
func (c *TraceCollector) ObserveIteration(s IterStats) { c.Iters = append(c.Iters, s) }

// DefaultOptions mirrors the paper's experimental configuration for the
// given measure: c = 0.5, τ = 1e-5, L = 10, tightening on.
func DefaultOptions(kind measure.Kind, k int) Options {
	return Options{
		K:       k,
		Measure: kind,
		Params:  measure.DefaultParams(),
		Tighten: true,
		TieEps:  1e-9,
	}
}

// Validate rejects malformed options. Every failure wraps
// ErrInvalidOptions, so callers can classify with errors.Is.
func (o Options) Validate() error {
	if o.K <= 0 {
		return fmt.Errorf("%w: K=%d must be positive", ErrInvalidOptions, o.K)
	}
	if err := o.Params.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidOptions, err)
	}
	if o.MaxVisited < 0 {
		return fmt.Errorf("%w: MaxVisited=%d must be non-negative", ErrInvalidOptions, o.MaxVisited)
	}
	if o.TieEps < 0 {
		return fmt.Errorf("%w: TieEps=%g must be non-negative", ErrInvalidOptions, o.TieEps)
	}
	switch o.Mode {
	case ModeExact, ModeEpsilon, ModeAnytime:
	default:
		return fmt.Errorf("%w: unknown Mode %d", ErrInvalidOptions, int(o.Mode))
	}
	if o.Epsilon < 0 {
		return fmt.Errorf("%w: Epsilon=%g must be non-negative", ErrInvalidOptions, o.Epsilon)
	}
	if o.Epsilon > 0 && o.Mode != ModeEpsilon {
		return fmt.Errorf("%w: Epsilon=%g requires ModeEpsilon (mode is %s)", ErrInvalidOptions, o.Epsilon, o.Mode)
	}
	switch o.Kernel {
	case KernelAuto, KernelSerial, KernelParallel, KernelStaged:
	default:
		return fmt.Errorf("%w: unknown Kernel %d", ErrInvalidOptions, int(o.Kernel))
	}
	return nil
}

// kernelConfig assembles the kernel layer's configuration for this query.
func (o Options) kernelConfig() kernel.Config {
	return kernel.Config{Kind: o.Kernel, Tokens: o.kernelTokens}
}

// WithKernelTokens returns opt with the shared intra-query parallelism
// budget installed: every solve call of a query running under the returned
// options TryAcquires its extra kernel workers from tb and releases them
// when the sweep finishes. Serving layers (qserve) size one budget to the
// machine and install it on every admitted query, which is what keeps batch
// throughput flat when intra-query parallelism is enabled under full load.
func WithKernelTokens(opt Options, tb *kernel.TokenBudget) Options {
	opt.kernelTokens = tb
	return opt
}

// slack is the termination slack the stopping rule runs with: TieEps in
// exact and anytime modes (byte-identical to the pre-mode engine), widened
// to Epsilon in ε-certified mode. Centralizing it here keeps the engines'
// loops mode-oblivious — they compare against one number either way.
func (o Options) slack() float64 {
	if o.Mode == ModeEpsilon && o.Epsilon > o.TieEps {
		return o.Epsilon
	}
	return o.TieEps
}

// SnapshotObserver is an optional extension a Tracer can implement to also
// receive the full per-iteration snapshot (TraceEvent): the visited set and
// both bound vectors. Each snapshot copies O(|S|) state, so this is far more
// expensive than plain IterStats observation — it exists for the
// figure-regeneration tooling (Figure 4 / Table 3) and bound-validity tests.
// It replaces the removed Options.Trace callback; snapshotted and plain runs
// share one expansion schedule, so enabling it never changes which nodes are
// visited.
type SnapshotObserver interface {
	Tracer
	ObserveSnapshot(TraceEvent)
}

// SnapshotCollector is a SnapshotObserver that records the full snapshot
// trajectory in order. It is not concurrency-safe; use one per query.
type SnapshotCollector struct {
	Events []TraceEvent
}

// ObserveIteration is a no-op; the collector keeps snapshots only.
func (c *SnapshotCollector) ObserveIteration(IterStats) {}

// ObserveSnapshot appends the snapshot.
func (c *SnapshotCollector) ObserveSnapshot(ev TraceEvent) { c.Events = append(c.Events, ev) }

// TraceEvent is one iteration's snapshot for tracing/visualization,
// delivered to Tracers that implement SnapshotObserver.
type TraceEvent struct {
	// Iteration is the 1-based local-expansion count (paper's t).
	Iteration int
	// Expanded is the boundary node whose neighborhood was just pulled in.
	Expanded graph.NodeID
	// NewNodes lists the nodes first visited this iteration (Table 3).
	NewNodes []graph.NodeID
	// Nodes, Lower, Upper are parallel: the current visited set with its
	// bound values in the engine's PHP scale (Figure 4).
	Nodes []graph.NodeID
	Lower []float64
	Upper []float64
	// DummyValue is r_d after this iteration's update.
	DummyValue float64
}

// Result reports a completed query.
type Result struct {
	// TopK lists the k nearest nodes, closest first, with scores in the
	// requested measure's natural direction. For PHP and DHT the scores are
	// exact up to the solver tolerance; for EI and RWR they are exact up to
	// the query-dependent positive constant Theorems 2/6 leave free (the
	// ranking is unaffected).
	TopK []measure.Ranked
	// Visited is |S|: how many nodes were expanded into, the paper's
	// locality metric (Figures 9 and 13(b)).
	Visited int
	// Iterations counts local expansions (paper's t).
	Iterations int
	// Sweeps counts Jacobi sweeps across all bound updates (paper's α·β).
	Sweeps int
	// DegreeProbes counts Degree() metadata lookups on unvisited nodes
	// (spent by tightening and by the RWR w(S̄) guard).
	DegreeProbes int
	// Exact is false if MaxVisited aborted the search early, if ModeEpsilon
	// stopped on its ε budget before full separation, or if ModeAnytime was
	// interrupted. Certification carries the proof details either way.
	Exact bool
	// Certification is the proof block attached to every completed result:
	// the serving mode, whether the stopping rule passed, the residual gap,
	// and per-node bound intervals for the returned k (see Certification).
	Certification Certification

	// VisitedNodes, ProbedNodes, and GuardDegree are populated only when
	// Options.CaptureFootprint is set. VisitedNodes is S in visit order;
	// ProbedNodes lists the unvisited nodes whose Degree the search read
	// (each at most once); GuardDegree is the last w(S̄) guard value an RWR
	// search certified against (0 when no guard was used). Together they are
	// the query's entire read footprint: a mutation that touches none of
	// these nodes and does not raise any endpoint's degree above GuardDegree
	// cannot change this result.
	VisitedNodes []graph.NodeID
	ProbedNodes  []graph.NodeID
	GuardDegree  float64
}

// Certification is the proof block carried by every completed Result: what
// the stopping rule certified, with how much residual uncertainty, and the
// per-node bound intervals backing the returned ranking. Exact answers carry
// their proof too (Certified=true, Gap <= TieEps); ε answers report the
// achieved gap (<= Epsilon); interrupted anytime answers report
// Certified=false with the gap at interruption time.
type Certification struct {
	// Mode is the serving mode the query ran under.
	Mode Mode `json:"mode"`
	// Certified reports that the stopping rule passed (exact separation in
	// ModeExact, gap <= ε in ModeEpsilon). False when MaxVisited or an
	// anytime interruption ended the search first.
	Certified bool `json:"certified"`
	// Epsilon echoes the ε budget for ModeEpsilon queries (0 otherwise).
	Epsilon float64 `json:"epsilon,omitempty"`
	// GapValid reports that the termination test got far enough to compare
	// bounds (k candidates existed). KthBound/RestBound are then the final
	// competing bound keys, in the engine's certification-key scale — the
	// same orientation IterStats documents.
	GapValid  bool    `json:"gap_valid"`
	KthBound  float64 `json:"kth_bound,omitempty"`
	RestBound float64 `json:"rest_bound,omitempty"`
	// Gap is the achieved (residual) certification gap, oriented so that 0
	// means fully separated: RestBound-KthBound for higher-is-closer
	// measures, KthBound-RestBound for THT, clamped at 0. A certified
	// ModeEpsilon answer has Gap <= Epsilon.
	Gap float64 `json:"gap"`
	// Iterations is the expansion count at which the search stopped — the
	// iterations-to-certify for certified answers.
	Iterations int `json:"iterations"`
	// Bounds holds the per-node [lower, upper] proximity interval for each
	// returned node, converted to the measure's displayed score scale and
	// listed in ranking order (parallel to Result.TopK).
	Bounds []NodeBounds `json:"bounds,omitempty"`
}

// NodeBounds is one returned node's certified score interval, in the
// measure's displayed scale (Lower <= Upper regardless of the measure's
// direction; the displayed score lies inside the interval).
type NodeBounds struct {
	Node  graph.NodeID `json:"node"`
	Lower float64      `json:"lb"`
	Upper float64      `json:"ub"`
}
