package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"flos/internal/graph"
)

// Querier is a reusable query session over one graph and one option set:
// the recommended entry point for any caller issuing more than one query.
// It owns a pool of engine workspaces, so repeated queries skip nearly all
// of the per-call allocation a bare TopK pays (the bookkeeping slices, the
// global→local index, the degree memo), and it holds per-workspace graph
// views, so concurrent queries against view-capable backends (MemGraph,
// DiskGraph) run genuinely in parallel.
//
// A Querier is safe for concurrent use. Each in-flight query checks out one
// workspace (plus its graph view) from an internal sync.Pool and returns it
// when done; backends without the graph.Viewer capability are assumed
// non-concurrent-safe and their queries are serialized internally.
//
// Results produced through a Querier are byte-for-byte identical to the
// equivalent one-shot TopKCtx / UnifiedTopKCtx calls, including the work
// counters; only the allocation profile differs.
//
// Options.Trace and Options.Tracer are shared by every query the Querier
// runs; under concurrent use the callbacks will interleave. Use a dedicated
// Querier (or one-shot TopKCtx) for traced runs.
type Querier struct {
	// Parallelism bounds the worker goroutines a Batch call uses; zero or
	// negative selects GOMAXPROCS. Set it before the Querier is shared.
	Parallelism int

	g      graph.Graph
	opt    Options
	viewer bool
	pool   sync.Pool // of *querierWS
	mu     sync.Mutex
}

// querierWS pairs a workspace with the graph view it queries through.
type querierWS struct {
	ws *Workspace
	g  graph.Graph
}

// NewQuerier validates opt once and returns a session bound to g.
func NewQuerier(g graph.Graph, opt Options) (*Querier, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	_, viewer := g.(graph.Viewer)
	qr := &Querier{g: g, opt: opt, viewer: viewer}
	qr.pool.New = func() any {
		gv := qr.g
		if v, ok := gv.(graph.Viewer); ok {
			gv = v.NewView()
		}
		return &querierWS{ws: NewWorkspace(), g: gv}
	}
	return qr, nil
}

// Options returns the option set every query of this session runs with.
func (qr *Querier) Options() Options { return qr.opt }

// TopK answers one query on the TopKCtx contract, reusing pooled engine
// state.
func (qr *Querier) TopK(ctx context.Context, q graph.NodeID) (*Result, error) {
	w := qr.pool.Get().(*querierWS)
	defer qr.pool.Put(w)
	if !qr.viewer {
		qr.mu.Lock()
		defer qr.mu.Unlock()
	}
	return topKIn(ctx, w.g, q, qr.opt, w.ws)
}

// Unified answers one unified query on the UnifiedTopKCtx contract, reusing
// pooled engine state.
func (qr *Querier) Unified(ctx context.Context, q graph.NodeID) (*UnifiedResult, error) {
	w := qr.pool.Get().(*querierWS)
	defer qr.pool.Put(w)
	if !qr.viewer {
		qr.mu.Lock()
		defer qr.mu.Unlock()
	}
	return unifiedIn(ctx, w.g, q, qr.opt, w.ws)
}

// BatchItem is one query's slot in a batch: exactly one of Result and Err
// is set once the batch returns.
type BatchItem struct {
	// Query is the query node this slot answers for (queries[i] of the
	// Batch call).
	Query graph.NodeID
	// Result is the completed answer, nil if the query failed.
	Result *Result
	// Err is the query's error: validation, or *Interrupted when the batch
	// context fired before this query finished (or started).
	Err error
}

// Batch answers many queries concurrently across the workspace pool,
// bounded by Parallelism. The result slice is parallel to queries; every
// slot is filled. Cancellation is per-query: when ctx fires mid-batch,
// already-completed slots keep their results, the in-flight queries stop
// promptly, and every unfinished slot gets an *Interrupted error — the call
// itself always returns, it never hangs.
func (qr *Querier) Batch(ctx context.Context, queries []graph.NodeID) []BatchItem {
	return qr.BatchTracers(ctx, queries, nil)
}

// BatchTracers is Batch with per-slot tracer overrides: tracers[i], when
// non-nil, observes query i's iterations in place of the session-wide
// Options.Tracer — the way to trace individual queries of a concurrent
// batch without the collectors interleaving. tracers may be nil (no
// overrides) or shorter than queries (missing slots fall back to the
// session tracer). A slot's tracer is driven only by the worker executing
// that slot, never shared across the work-stealing workers, so a plain
// TraceCollector per slot is race-free.
func (qr *Querier) BatchTracers(ctx context.Context, queries []graph.NodeID, tracers []Tracer) []BatchItem {
	out := make([]BatchItem, len(queries))
	for i, q := range queries {
		out[i].Query = q
	}
	if len(queries) == 0 {
		return out
	}
	par := qr.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(queries) {
		par = len(queries)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := qr.pool.Get().(*querierWS)
			defer qr.pool.Put(ws)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				if err := ctx.Err(); err != nil {
					// Not started: zero work counters.
					out[i].Err = interrupted(err, 0, 0, 0)
					continue
				}
				opt := qr.opt
				if i < len(tracers) && tracers[i] != nil {
					opt.Tracer = tracers[i]
				}
				out[i].Result, out[i].Err = qr.runOne(ctx, ws, queries[i], opt)
			}
		}()
	}
	wg.Wait()
	return out
}

func (qr *Querier) runOne(ctx context.Context, w *querierWS, q graph.NodeID, opt Options) (*Result, error) {
	if !qr.viewer {
		qr.mu.Lock()
		defer qr.mu.Unlock()
	}
	return topKIn(ctx, w.g, q, opt, w.ws)
}

// TopKBatch answers a one-off batch of queries sharing one option set: it
// builds a transient Querier and fans the queries across it. Callers with
// recurring batches should hold their own Querier so the workspaces stay
// warm between batches. The error is non-nil only for invalid options;
// per-query failures land in the items.
func TopKBatch(ctx context.Context, g graph.Graph, queries []graph.NodeID, opt Options) ([]BatchItem, error) {
	qr, err := NewQuerier(g, opt)
	if err != nil {
		return nil, err
	}
	return qr.Batch(ctx, queries), nil
}
