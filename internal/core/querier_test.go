package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
)

// copyGraph wraps a MemGraph but hides its StableNeighbors capability, so
// the engine must take the defensive-copy path — the same mode disk-backed
// graphs use. It lets the reuse tests exercise stable→copy→stable workspace
// transitions without building a disk store.
type copyGraph struct{ g *graph.MemGraph }

func (c copyGraph) NumNodes() int   { return c.g.NumNodes() }
func (c copyGraph) NumEdges() int64 { return c.g.NumEdges() }
func (c copyGraph) Neighbors(v graph.NodeID) ([]graph.NodeID, []float64) {
	return c.g.Neighbors(v)
}
func (c copyGraph) Degree(v graph.NodeID) float64        { return c.g.Degree(v) }
func (c copyGraph) TopDegrees(k int) []graph.DegreeEntry { return c.g.TopDegrees(k) }

// requireSameResult compares two results field by field, work counters
// included — Querier reuse must be indistinguishable from a fresh call.
func requireSameResult(t *testing.T, label string, fresh, reused *Result) {
	t.Helper()
	if !reflect.DeepEqual(fresh, reused) {
		t.Fatalf("%s: reused workspace diverged from fresh call\nfresh:  %+v\nreused: %+v", label, fresh, reused)
	}
}

// TestQuerierMatchesFreshTopK is the reuse-equivalence test: the same query
// answered through one long-lived Querier — including warm repeats — must be
// deep-equal to a fresh one-shot TopK, for every measure, on the paper graph
// and a larger random community-like graph.
func TestQuerierMatchesFreshTopK(t *testing.T) {
	graphs := []struct {
		name string
		g    graph.Graph
	}{
		{"paper", gen.PaperExample()},
		{"random", randomConnected(t, 200, 420, 7)},
		{"copy-mode", copyGraph{g: randomConnected(t, 120, 240, 11)}},
	}
	for _, tc := range graphs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			n := tc.g.NumNodes()
			for _, kind := range measure.Kinds() {
				opt := testOptions(kind, 5)
				qr, err := NewQuerier(tc.g, opt)
				if err != nil {
					t.Fatal(err)
				}
				for pass := 0; pass < 3; pass++ { // pass 0 cold, 1..2 warm
					for _, q := range []graph.NodeID{0, graph.NodeID(n / 2), graph.NodeID(n - 1)} {
						fresh, err := TopK(tc.g, q, opt)
						if err != nil {
							t.Fatalf("%v q=%d: fresh: %v", kind, q, err)
						}
						reused, err := qr.TopK(context.Background(), q)
						if err != nil {
							t.Fatalf("%v q=%d pass=%d: querier: %v", kind, q, pass, err)
						}
						requireSameResult(t, fmt.Sprintf("%v q=%d pass=%d", kind, q, pass), fresh, reused)
					}
				}
			}
		})
	}
}

// TestQuerierUnifiedMatchesFresh checks the unified two-family path under
// workspace reuse.
func TestQuerierUnifiedMatchesFresh(t *testing.T) {
	g := randomConnected(t, 150, 300, 3)
	opt := testOptions(measure.PHP, 5)
	qr, err := NewQuerier(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		for _, q := range []graph.NodeID{1, 70, 149} {
			fresh, err := UnifiedTopK(g, q, opt)
			if err != nil {
				t.Fatal(err)
			}
			reused, err := qr.Unified(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fresh, reused) {
				t.Fatalf("q=%d pass=%d: unified reuse diverged\nfresh:  %+v\nreused: %+v", q, pass, fresh, reused)
			}
		}
	}
}

// TestWorkspaceStableCopyTransition drives one workspace back and forth
// between a stable-slices graph (MemGraph, adjacency aliased) and a
// copy-mode graph. If reset failed to drop the aliased rows, the copy path
// would append into the previous graph's CSR arrays; the fresh-call
// comparison (and -race) would catch the corruption.
func TestWorkspaceStableCopyTransition(t *testing.T) {
	mem := randomConnected(t, 100, 200, 5)
	cp := copyGraph{g: randomConnected(t, 100, 200, 6)}
	ws := NewWorkspace()
	opt := testOptions(measure.RWR, 4)
	for round := 0; round < 3; round++ {
		for _, tc := range []struct {
			name string
			g    graph.Graph
		}{{"stable", mem}, {"copy", cp}} {
			q := graph.NodeID(13 * (round + 1) % 100)
			fresh, err := TopK(tc.g, q, opt)
			if err != nil {
				t.Fatal(err)
			}
			reused, err := ws.TopK(context.Background(), tc.g, q, opt)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, fmt.Sprintf("round=%d %s", round, tc.name), fresh, reused)
		}
	}
	// The stable graph's CSR must be untouched after the copy-mode rounds.
	check, err := TopK(mem, 13, opt)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := ws.TopK(context.Background(), mem, 13, opt)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "post-transition", check, reused)
}

// TestQuerierConcurrentStress hammers one Querier from many goroutines and
// checks every answer against a fresh baseline. Run with -race this is the
// workspace-isolation test: two queries must never share engine state.
func TestQuerierConcurrentStress(t *testing.T) {
	g := randomConnected(t, 150, 300, 9)
	opt := testOptions(measure.PHP, 5)
	baseline := make([]*Result, g.NumNodes())
	for q := range baseline {
		r, err := TopK(g, graph.NodeID(q), opt)
		if err != nil {
			t.Fatal(err)
		}
		baseline[q] = r
	}
	qr, err := NewQuerier(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 60
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := graph.NodeID((w*31 + i*7) % g.NumNodes())
				got, err := qr.TopK(context.Background(), q)
				if err != nil {
					errCh <- fmt.Errorf("q=%d: %w", q, err)
					return
				}
				if !reflect.DeepEqual(baseline[q], got) {
					errCh <- fmt.Errorf("q=%d: concurrent result diverged from baseline", q)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestBatchMatchesSequential checks that Batch fills every slot with the
// same answer sequential calls produce, in query order.
func TestBatchMatchesSequential(t *testing.T) {
	g := randomConnected(t, 120, 240, 2)
	opt := testOptions(measure.EI, 5)
	queries := make([]graph.NodeID, 40)
	for i := range queries {
		queries[i] = graph.NodeID((i * 3) % g.NumNodes())
	}
	items, err := TopKBatch(context.Background(), g, queries, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(queries) {
		t.Fatalf("got %d items, want %d", len(items), len(queries))
	}
	for i, it := range items {
		if it.Query != queries[i] {
			t.Fatalf("slot %d: query %d, want %d", i, it.Query, queries[i])
		}
		if it.Err != nil {
			t.Fatalf("slot %d: %v", i, it.Err)
		}
		fresh, err := TopK(g, queries[i], opt)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, fmt.Sprintf("slot %d", i), fresh, it.Result)
	}
}

// TestBatchPerQueryErrors: invalid query nodes fail their own slot without
// poisoning the rest of the batch.
func TestBatchPerQueryErrors(t *testing.T) {
	g := gen.PaperExample()
	opt := testOptions(measure.PHP, 3)
	queries := []graph.NodeID{0, graph.NodeID(g.NumNodes()), 3, -1}
	items, err := TopKBatch(context.Background(), g, queries, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 3} {
		if !errors.Is(items[i].Err, ErrInvalidQuery) {
			t.Fatalf("slot %d: err = %v, want ErrInvalidQuery", i, items[i].Err)
		}
		if items[i].Result != nil {
			t.Fatalf("slot %d: result set alongside error", i)
		}
	}
	for _, i := range []int{0, 2} {
		if items[i].Err != nil || items[i].Result == nil {
			t.Fatalf("slot %d: err=%v result=%v, want clean result", i, items[i].Err, items[i].Result)
		}
	}
}

// gateGraph wraps a graph and, after `fast` Neighbors calls have passed
// through, blocks every further call until release is closed. It lets the
// cancellation test freeze a batch mid-flight deterministically.
type gateGraph struct {
	g       graph.Graph
	fast    int64
	calls   atomic.Int64
	blocked atomic.Int64
	release chan struct{}
}

func (gg *gateGraph) NumNodes() int                        { return gg.g.NumNodes() }
func (gg *gateGraph) NumEdges() int64                      { return gg.g.NumEdges() }
func (gg *gateGraph) Degree(v graph.NodeID) float64        { return gg.g.Degree(v) }
func (gg *gateGraph) TopDegrees(k int) []graph.DegreeEntry { return gg.g.TopDegrees(k) }
func (gg *gateGraph) Neighbors(v graph.NodeID) ([]graph.NodeID, []float64) {
	if gg.calls.Add(1) > gg.fast {
		gg.blocked.Add(1)
		<-gg.release
	}
	return gg.g.Neighbors(v)
}

// TestBatchCancellationPartial cancels a batch while queries are in flight.
// The call must return promptly with every slot filled: finished queries
// keep their results, everything else carries *Interrupted wrapping
// ErrCanceled.
func TestBatchCancellationPartial(t *testing.T) {
	base := randomConnected(t, 80, 150, 4)
	// Let roughly two queries' worth of expansions through before gating.
	gg := &gateGraph{g: base, fast: 200, release: make(chan struct{})}
	opt := testOptions(measure.PHP, 5)
	qr, err := NewQuerier(gg, opt)
	if err != nil {
		t.Fatal(err)
	}
	qr.Parallelism = 2
	queries := make([]graph.NodeID, 30)
	for i := range queries {
		queries[i] = graph.NodeID(i % base.NumNodes())
	}
	ctx, cancel := context.WithCancel(context.Background())
	itemsCh := make(chan []BatchItem, 1)
	go func() { itemsCh <- qr.Batch(ctx, queries) }()

	// Wait until a worker is parked on the gate, then cancel and release.
	deadline := time.After(10 * time.Second)
	for gg.blocked.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("no query ever reached the gate")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	close(gg.release)

	var items []BatchItem
	select {
	case items = <-itemsCh:
	case <-time.After(30 * time.Second):
		t.Fatal("Batch hung after cancellation")
	}

	var done, interruptedN int
	for i, it := range items {
		switch {
		case it.Err == nil && it.Result != nil:
			done++
		case it.Err != nil:
			var in *Interrupted
			if !errors.As(it.Err, &in) {
				t.Fatalf("slot %d: err %v is not *Interrupted", i, it.Err)
			}
			if !errors.Is(it.Err, ErrCanceled) {
				t.Fatalf("slot %d: err %v does not wrap ErrCanceled", i, it.Err)
			}
			interruptedN++
		default:
			t.Fatalf("slot %d: neither result nor error", i)
		}
	}
	if interruptedN == 0 {
		t.Fatal("cancellation mid-flight produced no interrupted slots")
	}
	t.Logf("batch after cancel: %d done, %d interrupted", done, interruptedN)
}

// TestWarmPathAllocCeiling is the allocation-regression smoke: a warm
// Querier answering a PHP top-20 query on the community graph must stay
// under a committed allocs/op ceiling. A bare TopK on the same query pays
// hundreds of allocations (index maps, bound slices, row matrix); the warm
// path only pays for the Result it hands back.
func TestWarmPathAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime inflates allocation counts")
	}
	g, err := gen.Community(5000, 25000, gen.CommunityParamsForDensity(10), 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(measure.PHP, 20)
	qr, err := NewQuerier(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const q = graph.NodeID(2500)
	for i := 0; i < 3; i++ { // warm the pooled workspace
		if _, err := qr.TopK(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := qr.TopK(ctx, q); err != nil {
			t.Fatal(err)
		}
	})
	// The warm path should allocate only the returned Result and its
	// ranking slice (plus a couple of sort closures). The ceiling is set
	// loosely above the observed cost so only a real regression — e.g. a
	// per-query map or bound-slice rebuild sneaking back in — trips it.
	const ceiling = 64
	if allocs > ceiling {
		t.Fatalf("warm Querier.TopK allocates %.0f objects/op, ceiling %d", allocs, ceiling)
	}
	t.Logf("warm Querier.TopK: %.1f allocs/op (ceiling %d)", allocs, ceiling)
}
