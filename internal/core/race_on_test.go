//go:build race

package core

// raceEnabled reports that the race detector is active; allocation-count
// assertions are skipped because the race runtime adds its own allocations.
const raceEnabled = true
