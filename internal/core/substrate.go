package core

import (
	"flos/internal/graph"
)

// This file is the shared local-search substrate both bound engines build
// on: the visited-set bookkeeping FLoS's Algorithm 3 grows one expansion at
// a time. Before ISSUE 4 the PHP and THT engines each carried a private copy
// of this machinery and re-derived the boundary, the interior candidate
// count, and the expansion frontier by scanning all of S every iteration —
// O(|S|) per iteration against the paper's "work proportional to the changed
// region" cost model (Section 5.5). The substrate makes that bookkeeping
// incremental:
//
//   - an explicit boundary list, maintained on visit: a node enters δS when
//     it is visited with unvisited neighbors and leaves exactly once, when
//     its last outside neighbor is pulled in. Both transitions are monotone,
//     so the list is append-only with lazy deletion (liveness is just
//     outCnt > 0) and compaction amortizes removal to O(1). Iterating it
//     costs O(|δS|) and preserves ascending-local-index order — the order
//     the old full scans produced — so every consumer (dummy update,
//     expansion pick, floor scan, worklist re-seeding) keeps a bit-identical
//     schedule.
//   - an append-only interior list and O(1) interior/boundary counters, so
//     the termination test and the tracer stop re-deriving |δS| and
//     |S \ δS \ {q}| by sweeping S.
//   - bounded top-k selection helpers (offerDesc/offerAsc) that maintain the
//     candidate buffer under the same total order the old sort used
//     (key, then smaller global identifier), which is what lets the
//     termination test drop its O(|S| log |S|) re-sort of all candidates.
//
// localSearch is bookkeeping only; each engine supplies its own bound
// systems and solver on top.
type localSearch struct {
	g graph.Graph
	q graph.NodeID

	// stable records that g advertises graph.StableNeighbors, so adjN/adjW
	// below alias the graph's own slices instead of copying per visit.
	stable bool

	nodes []graph.NodeID // local -> global
	local nodeIndex      // global -> local

	adjN [][]graph.NodeID // cached global adjacency of visited nodes
	adjW [][]float64

	deg    []float64 // full-graph weighted degree
	inW    []float64 // Σ weights of incident edges whose far end is in S
	outCnt []int32   // # neighbors outside S; >0 ⇔ boundary
	ladj   [][]int32 // local undirected adjacency (dependency graph)

	// Incremental frontier bookkeeping. bList holds every node that ever
	// joined the boundary, in ascending local index (nodes join only at
	// visit time, with the largest index so far, so appends keep it
	// sorted); an entry is live iff outCnt > 0. bLive is the live count
	// |δS| (including q while q has unvisited neighbors). iList holds the
	// interior candidates S \ δS \ {q} in join order; interior membership
	// is monotone (outCnt never grows), so it is append-only and
	// len(iList) is the candidate count.
	bList []int32
	bLive int
	iList []int32

	// visitW holds, after visitCommon(v), the edge weights parallel to the
	// ladj entries the visit just created — the engine-specific wiring pass
	// consumes them without re-scanning v's adjacency.
	visitW []float64

	// Scratch reused across iterations (and, warm, across queries): the
	// expansion/termination scans would otherwise allocate per iteration.
	pickBuf  []scored
	pickOut  []int32
	candBuf  []scored
	selOut   []int32
	selOut2  []int32 // second selection buffer: unified search keeps two live
	inSel    []bool  // local-index marks; always cleared after use
	addedBuf []graph.NodeID

	sweeps int // node relaxations performed by the bound solver
}

// resetCommon prepares the substrate for a new query, reusing all retained
// storage. dense selects the generation-stamped array index (warm
// workspaces); cold engines pass false and get a map.
func (s *localSearch) resetCommon(g graph.Graph, q graph.NodeID, dense bool) {
	s.g, s.q = g, q

	stable := graph.HasStableNeighbors(g)
	if s.stable && !stable {
		// The previous run aliased graph-owned adjacency rows; drop them so
		// the copy path below never appends into another graph's storage.
		s.adjN, s.adjW = nil, nil
	}
	s.stable = stable

	s.local.init(g.NumNodes(), dense)

	s.nodes = s.nodes[:0]
	s.adjN = s.adjN[:0]
	s.adjW = s.adjW[:0]
	s.deg = s.deg[:0]
	s.inW = s.inW[:0]
	s.outCnt = s.outCnt[:0]
	s.ladj = s.ladj[:0]
	s.bList = s.bList[:0]
	s.bLive = 0
	s.iList = s.iList[:0]
	s.sweeps = 0
}

// visitCommon pulls node v into S: queries its adjacency, computes the
// degree split, wires the local dependency edges, and maintains the
// boundary/interior bookkeeping. The engine-specific transition wiring runs
// afterwards over ladj[li] (the freshly created local neighbors) and visitW
// (the matching edge weights). Precondition: v not yet visited.
func (s *localSearch) visitCommon(v graph.NodeID) int32 {
	li := int32(len(s.nodes))
	s.nodes = append(s.nodes, v)
	s.local.put(v, li)

	nbrs, ws := s.g.Neighbors(v)
	if s.stable {
		// The graph guarantees slice stability; alias instead of copying.
		s.adjN = append(s.adjN, nbrs)
		s.adjW = append(s.adjW, ws)
	} else {
		// Copy: disk-backed graphs reuse the returned slices.
		s.adjN = appendRowCopy(s.adjN, nbrs)
		s.adjW = appendRowCopy(s.adjW, ws)
	}
	cn, cw := s.adjN[li], s.adjW[li]

	// First pass: the full degree (needed to normalize v's own transition
	// probabilities) and the in/out split.
	var d, in float64
	var out int32
	for i, u := range cn {
		d += cw[i]
		if s.local.has(u) {
			in += cw[i]
		} else {
			out++
		}
	}
	s.deg = append(s.deg, d)
	s.inW = append(s.inW, in)
	s.outCnt = append(s.outCnt, out)
	s.ladj = appendRow(s.ladj)
	if out > 0 {
		s.bList = append(s.bList, li)
		s.bLive++
	} else if v != s.q {
		s.iList = append(s.iList, li)
	}

	// Second pass: wire the dependency edges to already-visited neighbors
	// and update their boundary bookkeeping. The weights are recorded in
	// visitW so the caller's wiring pass needs no re-scan.
	s.visitW = s.visitW[:0]
	for i, u := range cn {
		lu, ok := s.local.get(u)
		if !ok {
			continue
		}
		s.ladj[li] = append(s.ladj[li], lu)
		s.ladj[lu] = append(s.ladj[lu], li)
		s.visitW = append(s.visitW, cw[i])
		s.inW[lu] += cw[i]
		s.outCnt[lu]--
		if s.outCnt[lu] == 0 {
			// lu's last outside neighbor was v: it leaves δS for good.
			s.bLive--
			if s.nodes[lu] != s.q {
				s.iList = append(s.iList, lu)
			}
		}
	}
	s.compactBoundary()
	return li
}

// compactBoundary drops dead entries once they outnumber the live ones, so
// boundary iteration stays O(|δS|) amortized. Compaction preserves the
// ascending-index order, keeping every boundary scan's schedule identical
// to the full scans it replaced.
func (s *localSearch) compactBoundary() {
	if len(s.bList)-s.bLive <= s.bLive+32 {
		return
	}
	live := s.bList[:0]
	for _, i := range s.bList {
		if s.outCnt[i] > 0 {
			live = append(live, i)
		}
	}
	s.bList = live
}

// size returns |S|.
func (s *localSearch) size() int { return len(s.nodes) }

// isBoundary reports whether local node i has unvisited neighbors.
func (s *localSearch) isBoundary(i int32) bool { return s.outCnt[i] > 0 }

// boundaryCount returns |δS| in O(1).
func (s *localSearch) boundaryCount() int { return s.bLive }

// interiorCount returns |S \ δS \ {q}| in O(1).
func (s *localSearch) interiorCount() int { return len(s.iList) }

// outMassOf returns Σ_{j∉S} p_ij for local node i, with zeroDegree as the
// convention for isolated nodes (the engines differ: PHP treats a degree-0
// node as keeping its walk, THT as sending full mass outside).
func (s *localSearch) outMassOf(i int32, zeroDegree float64) float64 {
	if s.deg[i] == 0 {
		return zeroDegree
	}
	m := (s.deg[i] - s.inW[i]) / s.deg[i]
	if m < 0 {
		return 0
	}
	return m
}

// offer feeds one candidate into a k-bounded selection buffer kept sorted
// under the engines' selection total order: key descending when asc is
// false (PHP family — the exact order sortScoredDesc imposed when the
// termination test still sorted every interior candidate), key ascending
// when asc is true (THT, lower-is-better keys), ties toward the smaller
// global identifier either way. Because the skip test compares under the
// full total order, the resulting top-k is independent of offer order.
func (s *localSearch) offer(best []scored, k int, i int32, key float64, asc bool) []scored {
	// before(a, b) is the strict selection order: does (aKey, ai) precede
	// (bKey, bi)?
	before := func(aKey float64, ai int32, bKey float64, bi int32) bool {
		if aKey != bKey {
			if asc {
				return aKey < bKey
			}
			return aKey > bKey
		}
		return s.nodes[ai] < s.nodes[bi]
	}
	if len(best) == k {
		if w := best[k-1]; !before(key, i, w.key, w.i) {
			return best
		}
	}
	pos := len(best)
	for pos > 0 && before(key, i, best[pos-1].key, best[pos-1].i) {
		pos--
	}
	if len(best) < k {
		best = append(best, scored{})
	}
	copy(best[pos+1:], best[pos:len(best)-1])
	best[pos] = scored{i, key}
	return best
}

// offerDesc and offerAsc name the two selection orders at the call sites.
func (s *localSearch) offerDesc(best []scored, k int, i int32, key float64) []scored {
	return s.offer(best, k, i, key, false)
}

func (s *localSearch) offerAsc(best []scored, k int, i int32, key float64) []scored {
	return s.offer(best, k, i, key, true)
}

// markSel ensures the inSel scratch covers the current size and marks the
// selected entries; clearSel undoes the marks. The scratch is only ever
// dirty between the two calls, so reuse across iterations and queries needs
// no bulk clearing.
func (s *localSearch) markSel(sel []scored) {
	if cap(s.inSel) < s.size() {
		s.inSel = make([]bool, s.size())
	}
	s.inSel = s.inSel[:cap(s.inSel)]
	for _, c := range sel {
		s.inSel[c.i] = true
	}
}

func (s *localSearch) clearSel(sel []scored) {
	for _, c := range sel {
		s.inSel[c.i] = false
	}
}

// postExpandHook, when non-nil, is invoked by every main loop right after an
// expansion step with the active engine (*phpEngine or *thtEngine). It
// exists for differential tests that cross-check the incremental frontier
// bookkeeping against brute-force recomputation after every expansion; it
// must never be set outside tests.
var postExpandHook func(engine any)

// wsbarGuard serves the RWR termination guard w(S̄) — the largest weighted
// degree among unvisited nodes — from the graph's degree index. Visited
// status is monotone within a query, so a persistent cursor never re-scans
// the visited prefix: the whole guard amortizes to one pass over the cached
// prefix per query instead of one pass per iteration. Falling back to the
// global maximum when the whole prefix is visited keeps the bound valid,
// just looser — identical to the seed's behavior.
type wsbarGuard struct {
	top []graph.DegreeEntry
	cur int
}

func newWSbarGuard(g graph.Graph) wsbarGuard {
	return wsbarGuard{top: g.TopDegrees(4096)}
}

func (w *wsbarGuard) value(s *localSearch) float64 {
	for w.cur < len(w.top) && s.local.has(w.top[w.cur].Node) {
		w.cur++
	}
	if w.cur < len(w.top) {
		return w.top[w.cur].Degree
	}
	if len(w.top) > 0 {
		return w.top[0].Degree
	}
	return 0
}
