package core

import (
	"context"
	"sync"
	"testing"

	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
)

// Benchmarks for the per-iteration bookkeeping cost on queries whose visited
// set grows large — the regime ISSUE 4 targets. Near-tie parameterizations
// (RWR at restart 0.98, PHP at decay 0.1, both with k=100) force the search
// through tens of thousands of visits with only moderate solver work, so any
// O(|S|) cost per iteration (dummy update, expansion pick, termination
// scan+sort, trace counters) dominates the incremental bound solver.
// results/substrate.md records before/after numbers.

var benchGraphOnce sync.Once
var benchGraph *graph.MemGraph

func largeBenchGraph(b *testing.B) *graph.MemGraph {
	benchGraphOnce.Do(func() {
		g, err := gen.Community(150000, 450000, gen.DefaultCommunityParams(), 42)
		if err != nil {
			b.Fatal(err)
		}
		benchGraph = g
	})
	return benchGraph
}

func largeVisitedOptions(kind measure.Kind) Options {
	opt := DefaultOptions(kind, 100)
	switch kind {
	case measure.RWR:
		opt.Params.C = 0.98
	case measure.PHP:
		opt.Params.C = 0.1
	}
	opt.MaxVisited = 60000
	return opt
}

func benchLargeVisited(b *testing.B, kind measure.Kind, tracer bool) {
	g := largeBenchGraph(b)
	opt := largeVisitedOptions(kind)
	ws := NewWorkspace()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tracer {
			opt.Tracer = &TraceCollector{}
		}
		res, err := ws.TopK(ctx, g, 11, opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Visited < 50000 {
			b.Fatalf("visited %d < 50k: benchmark not in the large-|S| regime", res.Visited)
		}
		b.ReportMetric(float64(res.Visited), "visited")
		b.ReportMetric(float64(res.Iterations), "iters")
		b.ReportMetric(float64(res.Sweeps), "sweeps")
	}
}

func BenchmarkLargeVisitedRWR(b *testing.B) { benchLargeVisited(b, measure.RWR, false) }
func BenchmarkLargeVisitedPHP(b *testing.B) { benchLargeVisited(b, measure.PHP, false) }
func BenchmarkLargeVisitedRWRTraced(b *testing.B) {
	benchLargeVisited(b, measure.RWR, true)
}

// BenchmarkLargeVisitedTHT exercises the finite-horizon engine in its
// deep-search regime (high-diameter grid, long horizon). It is
// solver-dominated rather than bookkeeping-dominated, so it mostly guards
// against regressions from the substrate extraction.
func BenchmarkLargeVisitedTHT(b *testing.B) {
	g := gen.Grid(300, 300)
	opt := DefaultOptions(measure.THT, 500)
	opt.Params.L = 100
	ws := NewWorkspace()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ws.TopK(ctx, g, 45150, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Visited), "visited")
		b.ReportMetric(float64(res.Sweeps), "sweeps")
	}
}

// BenchmarkIterationOverhead isolates the non-solver per-iteration cost the
// refactor attacks: the tracer's per-phase clocks split each iteration into
// expansion (which carries the expansion pick), bound solving, and
// certification (the termination test's candidate selection and rest scan).
// The dummy update runs before the phase clocks start, so it shows up only
// in ns/op. Overhead = ns/op − solve; the solve phase is the incremental
// bound solver the overhead is compared against.
func BenchmarkIterationOverhead(b *testing.B) {
	g := largeBenchGraph(b)
	opt := largeVisitedOptions(measure.RWR)
	ws := NewWorkspace()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc := &TraceCollector{}
		opt.Tracer = tc
		if _, err := ws.TopK(ctx, g, 11, opt); err != nil {
			b.Fatal(err)
		}
		var solve, expand, certify int64
		for _, it := range tc.Iters {
			solve += it.SolveNS
			expand += it.ExpandNS
			certify += it.CertifyNS
		}
		b.ReportMetric(float64(expand)/1e6, "expand-ms")
		b.ReportMetric(float64(solve)/1e6, "solve-ms")
		b.ReportMetric(float64(certify)/1e6, "certify-ms")
	}
}
