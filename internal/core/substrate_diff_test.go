package core

import (
	"context"
	"math"
	"slices"
	"testing"

	"flos/internal/graph"
	"flos/internal/measure"
)

// Differential tests of the incremental frontier bookkeeping: after EVERY
// expansion of a real query (via postExpandHook), the maintained boundary
// list, interior list, O(1) counters, per-node degree splits, and the
// k-bounded candidate selection are checked against brute-force
// recomputation from the cached adjacency. Runs every measure on both graph
// backends over randomized graphs, so any drift the incremental updates
// could accumulate — a node stuck in δS, a missed interior promotion, a
// selection differing from a full sort — fails loudly at the iteration that
// introduced it.

// checkSubstrate cross-checks the localSearch bookkeeping against a from-
// scratch recomputation.
func checkSubstrate(t *testing.T, s *localSearch) {
	t.Helper()
	n := int32(s.size())

	// Per-node degree split and boundary membership from the cached
	// adjacency and the visited index.
	wantBoundary := make(map[int32]bool)
	var wantBLive, wantInterior int
	for i := int32(0); i < n; i++ {
		var d, in float64
		var out int32
		for k, u := range s.adjN[i] {
			d += s.adjW[i][k]
			if s.local.has(u) {
				in += s.adjW[i][k]
			} else {
				out++
			}
		}
		if math.Abs(d-s.deg[i]) > 1e-9*(1+math.Abs(d)) {
			t.Fatalf("deg[%d] = %g, brute force %g", i, s.deg[i], d)
		}
		if math.Abs(in-s.inW[i]) > 1e-9*(1+math.Abs(in)) {
			t.Fatalf("inW[%d] = %g, brute force %g", i, s.inW[i], in)
		}
		if out != s.outCnt[i] {
			t.Fatalf("outCnt[%d] = %d, brute force %d", i, s.outCnt[i], out)
		}
		if out > 0 {
			wantBoundary[i] = true
			wantBLive++
		} else if s.nodes[i] != s.q {
			wantInterior++
		}
	}

	// Boundary list: live entries must equal the brute-force boundary set,
	// in strictly ascending local-index order (the order every consumer's
	// schedule depends on), and the live counter must match.
	if s.bLive != wantBLive {
		t.Fatalf("bLive = %d, brute force %d", s.bLive, wantBLive)
	}
	if got := s.boundaryCount(); got != wantBLive {
		t.Fatalf("boundaryCount() = %d, brute force %d", got, wantBLive)
	}
	prev := int32(-1)
	live := 0
	for _, i := range s.bList {
		if i <= prev {
			t.Fatalf("bList not strictly ascending: %v", s.bList)
		}
		prev = i
		if s.outCnt[i] > 0 {
			live++
			if !wantBoundary[i] {
				t.Fatalf("bList live entry %d not boundary by brute force", i)
			}
		}
	}
	if live != wantBLive {
		t.Fatalf("bList live entries = %d, brute force %d", live, wantBLive)
	}

	// Interior list: exactly the non-query zero-outCnt nodes, no duplicates.
	if got := s.interiorCount(); got != wantInterior {
		t.Fatalf("interiorCount() = %d, brute force %d", got, wantInterior)
	}
	seen := make(map[int32]bool, len(s.iList))
	for _, i := range s.iList {
		if seen[i] {
			t.Fatalf("iList duplicate entry %d", i)
		}
		seen[i] = true
		if s.outCnt[i] != 0 || s.nodes[i] == s.q {
			t.Fatalf("iList entry %d: outCnt=%d q=%v", i, s.outCnt[i], s.nodes[i] == s.q)
		}
	}
	if len(seen) != wantInterior {
		t.Fatalf("iList covers %d nodes, brute force %d", len(seen), wantInterior)
	}
}

// checkSelection cross-checks the k-bounded offer helpers against a full
// sort under the same total order, on the live interior candidates.
func checkSelection(t *testing.T, s *localSearch, k int, key func(int32) float64, desc bool) {
	t.Helper()
	var got []scored
	for _, i := range s.iList {
		if desc {
			got = s.offerDesc(got, k, i, key(i))
		} else {
			got = s.offerAsc(got, k, i, key(i))
		}
	}
	want := make([]scored, 0, len(s.iList))
	for _, i := range s.iList {
		want = append(want, scored{i, key(i)})
	}
	slices.SortFunc(want, func(a, b scored) int {
		if a.key != b.key {
			if (a.key > b.key) == desc {
				return -1
			}
			return 1
		}
		if s.nodes[a.i] < s.nodes[b.i] {
			return -1
		}
		return 1
	})
	if k > len(want) {
		k = len(want)
	}
	want = want[:k]
	if len(got) != len(want) {
		t.Fatalf("selection size %d, brute force %d", len(got), len(want))
	}
	for j := range got {
		if got[j].i != want[j].i || got[j].key != want[j].key {
			t.Fatalf("selection[%d] = {%d %g}, brute force {%d %g}",
				j, got[j].i, got[j].key, want[j].i, want[j].key)
		}
	}
}

// TestSubstrateDifferential drives full queries for all five measures on
// randomized graphs over both backends with the per-expansion cross-check
// installed.
func TestSubstrateDifferential(t *testing.T) {
	graphs := map[string]*graph.MemGraph{
		"rand150": randomConnected(t, 150, 320, 11),
		"rand80":  randomConnected(t, 80, 120, 5),
	}
	kinds := []measure.Kind{measure.PHP, measure.EI, measure.DHT, measure.RWR, measure.THT}

	for gname, mem := range graphs {
		for _, backend := range []string{"mem", "disk"} {
			var g graph.Graph = mem
			if backend == "disk" {
				g = diskVariant(t, mem)
			}
			for _, kind := range kinds {
				t.Run(gname+"/"+backend+"/"+kind.String(), func(t *testing.T) {
					opt := testOptions(kind, 8)
					checks := 0
					postExpandHook = func(engine any) {
						checks++
						switch e := engine.(type) {
						case *phpEngine:
							checkSubstrate(t, &e.localSearch)
							rwr := kind == measure.RWR
							checkSelection(t, &e.localSearch, opt.K, func(i int32) float64 {
								key := e.lbAt(i)
								if rwr {
									key *= e.deg[i]
								}
								return key
							}, true)
						case *thtEngine:
							checkSubstrate(t, &e.localSearch)
							checkSelection(t, &e.localSearch, opt.K, e.ub, false)
						default:
							t.Fatalf("unexpected engine %T", engine)
						}
					}
					defer func() { postExpandHook = nil }()
					if _, err := TopK(g, 3, opt); err != nil {
						t.Fatal(err)
					}
					if checks == 0 {
						t.Fatal("hook never fired")
					}
				})
			}
		}
	}

	// The unified loop shares the PHP engine; run it once with the hook to
	// cover its expansion path too.
	t.Run("unified", func(t *testing.T) {
		opt := testOptions(measure.PHP, 8)
		checks := 0
		postExpandHook = func(engine any) {
			checks++
			e, ok := engine.(*phpEngine)
			if !ok {
				t.Fatalf("unexpected engine %T", engine)
			}
			checkSubstrate(t, &e.localSearch)
		}
		defer func() { postExpandHook = nil }()
		if _, err := UnifiedTopK(graphs["rand150"], 3, opt); err != nil {
			t.Fatal(err)
		}
		if checks == 0 {
			t.Fatal("hook never fired")
		}
	})
}

// TestSubstrateDifferentialWarm repeats the cross-check through a reused
// workspace, covering the generation-stamped reset path.
func TestSubstrateDifferentialWarm(t *testing.T) {
	g := randomConnected(t, 120, 260, 23)
	ws := NewWorkspace()
	for _, kind := range []measure.Kind{measure.PHP, measure.RWR, measure.THT} {
		for _, q := range []graph.NodeID{0, 60, 119} {
			opt := testOptions(kind, 6)
			postExpandHook = func(engine any) {
				switch e := engine.(type) {
				case *phpEngine:
					checkSubstrate(t, &e.localSearch)
				case *thtEngine:
					checkSubstrate(t, &e.localSearch)
				}
			}
			if _, err := ws.TopK(context.Background(), g, q, opt); err != nil {
				postExpandHook = nil
				t.Fatal(err)
			}
			postExpandHook = nil
		}
	}
}
