package core

import (
	"context"
	"testing"

	"flos/internal/core/kernel"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
)

// Regression tests pinning the deterministic expansion schedule: both
// engines break expansion-priority ties toward the smaller global
// identifier, and the schedule is identical cold (fresh engine) and warm
// (workspace reused after unrelated queries). The boundary list refactor
// must never change which node expands when.

// TestPickExpansionTieBreakSmallerID: on a ring queried at node 0, the two
// boundary nodes after the first expansion carry exactly equal (unsolved)
// bounds, so the pick order is decided purely by the tie rule. Both engines
// must break the tie toward the smaller global identifier.
func TestPickExpansionTieBreakSmallerID(t *testing.T) {
	g := gen.Ring(10)

	t.Run("php", func(t *testing.T) {
		e := newPHPEngine(g, 0, 0.5, 1e-10, 100000, false, kernel.Config{})
		e.expand(0, nil) // visit 1 and 9; both boundary, both lb=0 ub=1
		us := e.pickExpansion(false, 2)
		got := localToGlobal(e.nodes, us)
		if len(got) != 2 || got[0] != 1 || got[1] != 9 {
			t.Fatalf("tied pick order = %v, want [1 9]", got)
		}
	})

	t.Run("tht", func(t *testing.T) {
		e := newTHTEngine(g, 0, 6, kernel.Config{})
		e.expand(0, nil) // visit 1 and 9; both boundary, unsolved bounds equal
		us := e.pickExpansion(2)
		got := localToGlobal(e.nodes, us)
		if len(got) != 2 || got[0] != 1 || got[1] != 9 {
			t.Fatalf("THT tied pick order = %v, want [1 9]", got)
		}
	})
}

func localToGlobal(nodes []graph.NodeID, ls []int32) []graph.NodeID {
	out := make([]graph.NodeID, len(ls))
	for i, l := range ls {
		out[i] = nodes[l]
	}
	return out
}

// expansionSchedule runs one query and records, per iteration, the first
// expanded node and every newly visited node, via a snapshot-observing
// Tracer (which shares the untraced schedule by contract).
func expansionSchedule(t *testing.T, g graph.Graph, q graph.NodeID, opt Options, ws *Workspace) [][]graph.NodeID {
	t.Helper()
	sc := &SnapshotCollector{}
	opt.Tracer = sc
	var err error
	if ws != nil {
		_, err = ws.TopK(context.Background(), g, q, opt)
	} else {
		_, err = TopK(g, q, opt)
	}
	if err != nil {
		t.Fatal(err)
	}
	sched := make([][]graph.NodeID, 0, len(sc.Events))
	for _, ev := range sc.Events {
		sched = append(sched, append([]graph.NodeID{ev.Expanded}, ev.NewNodes...))
	}
	return sched
}

// TestExpansionOrderColdWarm: the full expansion schedule — which node is
// picked and which nodes join S, every iteration — is identical for a cold
// engine and a warm workspace whose engines are dirty from prior queries on
// the same and on a different graph. Grids are tie-dense (symmetric
// bounds), so any tie-break or iteration-order drift shows up here.
func TestExpansionOrderColdWarm(t *testing.T) {
	grid := gen.Grid(9, 11)
	other := randomConnected(t, 120, 260, 3)

	for _, kind := range []measure.Kind{measure.PHP, measure.RWR, measure.THT} {
		t.Run(kind.String(), func(t *testing.T) {
			opt := testOptions(kind, 6)
			cold := expansionSchedule(t, grid, 40, opt, nil)

			ws := NewWorkspace()
			// Dirty the pooled engines: different graph, then same graph
			// with a different query.
			if _, err := ws.TopK(context.Background(), other, 7, opt); err != nil {
				t.Fatal(err)
			}
			if _, err := ws.TopK(context.Background(), grid, 93, opt); err != nil {
				t.Fatal(err)
			}
			warm := expansionSchedule(t, grid, 40, opt, ws)

			if len(cold) != len(warm) {
				t.Fatalf("iteration counts differ: cold %d, warm %d", len(cold), len(warm))
			}
			for it := range cold {
				if len(cold[it]) != len(warm[it]) {
					t.Fatalf("iter %d: row lengths differ: cold %v warm %v", it+1, cold[it], warm[it])
				}
				for j := range cold[it] {
					if cold[it][j] != warm[it][j] {
						t.Fatalf("iter %d: expansion schedule diverged at %d: cold %v warm %v",
							it+1, j, cold[it], warm[it])
					}
				}
			}
		})
	}
}
