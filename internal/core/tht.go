package core

import (
	"context"
	"slices"
	"time"

	"flos/internal/core/kernel"
	"flos/internal/graph"
	"flos/internal/measure"
)

// thtEngine is the finite-horizon FLoS variant for L-truncated hitting time
// (appendix 10.4), built on the shared localSearch substrate. The same
// visited-set machinery applies, with the bound roles mirrored because lower
// values mean closer:
//
//   - lower bound: boundary-crossing mass is sent to a level-aware floor.
//     The appendix's plain deletion corresponds to floor 0; this engine
//     uses the sound hop-distance floor min(l−1, D+1), where D is the
//     minimum within-S hop distance of any boundary node: every unvisited
//     node is at least D+1 hops from q, and a walk of horizon m from a node
//     at distance d has truncated hitting time at least min(m, d). This is
//     the distance floor the GRANCH line of work [17] pioneered, and it is
//     what lets the search stop without draining expander-like graphs.
//   - upper bound: boundary-crossing mass is redirected into a dummy pinned
//     at the horizon L (the largest possible value), with each sweep-l
//     value additionally capped at l (r^l ≤ l always holds).
//
// The L-level recursion is maintained incrementally: level l of a node is
// recomputed only when level l−1 of a neighbor (or its own boundary terms)
// changed, so per-iteration cost tracks the changed region rather than
// |S|·L.
//
// Like phpEngine, a thtEngine is reusable via reset: slices truncate in
// place and the global→local index clears by generation bump.
type thtEngine struct {
	localSearch

	L int

	// tRows[i] holds (local col, p_ij) for j ∈ N_i ∩ S; the query row is
	// zeroed (walks stop at q).
	tRows [][]thtEntry

	// dist is the within-S shortest hop distance from q, maintained to
	// fixpoint as S grows. For any unvisited node the true distance is
	// at least min_{i∈δS} dist[i] + 1 (see the lower-bound note above).
	dist []int32

	// lbL[l][i] / ubL[l][i] are the level-l bound values, l = 0..L; level 0
	// is identically zero. The external bounds are level L.
	lbL, ubL [][]float64

	// Dirty tracking per level: queue[l] holds rows whose level-l equation
	// must be re-evaluated.
	inQ   [][]bool
	queue [][]int32

	lastFloor int32 // D+1 used in the last solve; change re-dirties the boundary

	floorBuf []int32
	distQ    []int32

	// Bound-solver kernel delegation, as in phpEngine.
	kern   *kernel.Solver
	kst    kernel.THTState
	kstats kernel.Stats
}

// thtEntry is the kernel layer's transition-entry type; the engine wires
// rows directly in the shape the kernel relaxes.
type thtEntry = kernel.THTEntry

const distInf = int32(1 << 30)

func newTHTEngine(g graph.Graph, q graph.NodeID, L int, kcfg kernel.Config) *thtEngine {
	e := &thtEngine{}
	e.reset(g, q, L, false, kcfg)
	return e
}

// reset prepares the engine for a new query (possibly a new horizon L and a
// new graph), reusing retained storage; see phpEngine.reset.
func (e *thtEngine) reset(g graph.Graph, q graph.NodeID, L int, dense bool, kcfg kernel.Config) {
	e.L = L

	e.resetCommon(g, q, dense)
	if e.kern == nil {
		e.kern = kernel.NewSolver()
	}
	e.kern.Configure(kcfg)
	e.kstats = kernel.Stats{}

	e.tRows = e.tRows[:0]
	e.dist = e.dist[:0]

	if cap(e.lbL) < L+1 {
		e.lbL = make([][]float64, L+1)
		e.ubL = make([][]float64, L+1)
		e.inQ = make([][]bool, L+1)
		e.queue = make([][]int32, L+1)
	} else {
		e.lbL = e.lbL[:L+1]
		e.ubL = e.ubL[:L+1]
		e.inQ = e.inQ[:L+1]
		e.queue = e.queue[:L+1]
	}
	for l := 0; l <= L; l++ {
		e.lbL[l] = e.lbL[l][:0]
		e.ubL[l] = e.ubL[l][:0]
		e.inQ[l] = e.inQ[l][:0]
		e.queue[l] = e.queue[l][:0]
	}

	e.lastFloor = -1

	e.visit(q)
}

// visit pulls node v into S: the substrate maintains the visited-set and
// frontier bookkeeping, then this appends the level-bound rows, wires the
// transition entries in both directions, and maintains the within-S
// distance. Precondition: v not yet visited.
func (e *thtEngine) visit(v graph.NodeID) {
	li := e.visitCommon(v)
	e.tRows = appendRow(e.tRows)
	for l := 0; l <= e.L; l++ {
		e.lbL[l] = append(e.lbL[l], 0)
		// Initial upper value min(l, L) = l is always valid: r^l ≤ l.
		init := float64(l)
		if v == e.q {
			init = 0
		}
		e.ubL[l] = append(e.ubL[l], init)
		e.inQ[l] = append(e.inQ[l], false)
	}

	// Within-S distance of the new node, then propagate any shortcuts it
	// creates.
	nd := distInf
	if v == e.q {
		nd = 0
	}
	e.dist = append(e.dist, nd)

	// Wire transition entries to/from the already-visited neighbors the
	// substrate just linked (ladj[li] / visitW); their equations changed
	// (new entry and smaller outside mass), so every level is re-dirtied.
	d := e.deg[li]
	for idx, lu := range e.ladj[li] {
		w := e.visitW[idx]
		if v != e.q && d > 0 {
			e.tRows[li] = append(e.tRows[li], thtEntry{Col: lu, P: w / d})
		}
		if e.nodes[lu] != e.q && e.deg[lu] > 0 {
			e.tRows[lu] = append(e.tRows[lu], thtEntry{Col: li, P: w / e.deg[lu]})
		}
		e.markAllLevels(lu)
		if e.dist[lu]+1 < e.dist[li] {
			e.dist[li] = e.dist[lu] + 1
		}
	}
	e.markAllLevels(li)
	e.relaxDistFrom(li)
}

// relaxDistFrom propagates shortest-path improvements created by a new or
// shortened node (unit hops, BFS-style worklist).
func (e *thtEngine) relaxDistFrom(start int32) {
	queue := append(e.distQ[:0], start)
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		di := e.dist[i]
		if di == distInf {
			continue
		}
		for _, j := range e.ladj[i] {
			if e.dist[j] > di+1 {
				e.dist[j] = di + 1
				queue = append(queue, j)
			}
		}
	}
	e.distQ = queue
}

// markAllLevels dirties every level of one row.
func (e *thtEngine) markAllLevels(i int32) {
	if e.nodes[i] == e.q {
		return
	}
	for l := 1; l <= e.L; l++ {
		if !e.inQ[l][i] {
			e.inQ[l][i] = true
			e.queue[l] = append(e.queue[l], i)
		}
	}
}

// unvisitedFloor returns D+1: a sound hop-distance lower bound on every
// unvisited node's distance from q. The scan walks the incremental boundary
// list — O(|δS|), not O(|S|).
func (e *thtEngine) unvisitedFloor() int32 {
	minD := distInf
	for _, i := range e.bList {
		if e.outCnt[i] > 0 && e.dist[i] < minD {
			minD = e.dist[i]
		}
	}
	if minD == distInf {
		return distInf // exhausted: no unvisited mass exists at all
	}
	return minD + 1
}

// solveBounds updates the distance floor (re-dirtying the boundary when it
// moved), then delegates the per-level queue drain to the kernel layer. The
// serial kernel is the verbatim relocation of the drain that used to live
// here; because the level-l equations read only the frozen l−1 layer, the
// parallel kernel is bit-identical to it — values, queue orders, and sweep
// counts — at any worker count.
func (e *thtEngine) solveBounds() {
	floor := e.unvisitedFloor()
	if floor != e.lastFloor {
		e.lastFloor = floor
		for _, i := range e.bList {
			if e.outCnt[i] > 0 {
				e.markAllLevels(i)
			}
		}
	}
	e.kst = kernel.THTState{
		Rows:   e.tRows,
		Ladj:   e.ladj,
		LbL:    e.lbL,
		UbL:    e.ubL,
		InQ:    e.inQ,
		Queue:  e.queue,
		L:      e.L,
		Floor:  floor,
		Deg:    e.deg,
		InW:    e.inW,
		OutCnt: e.outCnt,
	}
	e.kern.SolveTHT(&e.kst)
	e.kstats = e.kern.LastStats()
	e.sweeps += e.kstats.Sweeps
}

// lb and ub expose the horizon-L bounds.
func (e *thtEngine) lb(i int32) float64 { return e.lbL[e.L][i] }
func (e *thtEngine) ub(i int32) float64 { return e.ubL[e.L][i] }

// pickExpansion returns up to batch boundary nodes with the smallest
// ½(lb+ub) (closest-first for a lower-is-closer measure), best first, ties
// toward the smaller global identifier. The returned slice is engine
// scratch, valid until the next pick call. The scan walks the boundary list
// in ascending local index — the same candidates in the same order as the
// old full-S sweep, at O(|δS|) cost.
func (e *thtEngine) pickExpansion(batch int) []int32 {
	best := e.pickBuf[:0]
	for _, i := range e.bList {
		if e.outCnt[i] <= 0 {
			continue
		}
		key := (e.lb(i) + e.ub(i)) / 2
		if len(best) == batch && key >= best[len(best)-1].key {
			continue
		}
		pos := len(best)
		for pos > 0 && (best[pos-1].key > key ||
			(best[pos-1].key == key && e.nodes[best[pos-1].i] > e.nodes[i])) {
			pos--
		}
		if len(best) < batch {
			best = append(best, scored{})
		}
		copy(best[pos+1:], best[pos:len(best)-1])
		best[pos] = scored{i, key}
	}
	e.pickBuf = best
	out := e.pickOut[:0]
	for _, c := range best {
		out = append(out, c.i)
	}
	e.pickOut = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// pickFloorClosers returns every boundary node sitting at the minimum hop
// distance, in engine scratch. Expanding them is what advances the distance
// floor D: the lower-bound contribution of unvisited mass is min(l−1, D+1),
// and D only grows when no boundary node remains at the old minimum. Pure
// best-first expansion chases small hitting-time values and can leave a
// low-hop hub unexpanded forever, pinning D (and with it every far lower
// bound); mixing in this hop-closure step is the THT analogue of GRANCH's
// hop-by-hop schedule. Both passes walk the boundary list in ascending
// local index, preserving the output order of the full scans they replace.
func (e *thtEngine) pickFloorClosers() []int32 {
	minD := distInf
	for _, i := range e.bList {
		if e.outCnt[i] > 0 && e.dist[i] < minD {
			minD = e.dist[i]
		}
	}
	if minD == distInf {
		return nil
	}
	out := e.floorBuf[:0]
	for _, i := range e.bList {
		if e.outCnt[i] > 0 && e.dist[i] == minD {
			out = append(out, i)
		}
	}
	e.floorBuf = out
	return out
}

// expand visits every unvisited neighbor of local node u, appending the new
// global identifiers to added.
func (e *thtEngine) expand(u int32, added []graph.NodeID) []graph.NodeID {
	for _, v := range e.adjN[u] {
		if !e.local.has(v) {
			e.visit(v)
			added = append(added, v)
		}
	}
	return added
}

// checkTermination mirrors Algorithm 6 for a lower-is-closer measure: pick
// the k interior nodes with smallest upper bounds; they are the exact top-k
// once max_K ub ≤ min over every other candidate of lb (the unvisited
// region is covered because min_{δS} lb lower-bounds it by the
// no-local-minimum property). Returns the selected local indices appended
// to dst, or nil. A non-nil gap receives the certification-gap observables
// (tracing only): kth is the k-th candidate's upper bound, rest the best
// outsider lower bound — the roles mirror the PHP engine because lower is
// closer.
//
// The candidate selection walks the incremental interior list through a
// k-bounded buffer ordered under the same total order the old full sort
// used, so no O(|S| log |S|) re-sort happens; the outsider scan splits into
// one pass over the interior list and one over the boundary list.
func (e *thtEngine) checkTermination(dst []int32, k int, tieEps float64, gap *certGap) []int32 {
	exhausted := e.bLive == 0
	nCand := len(e.iList)
	if nCand < k && !exhausted {
		return nil
	}
	if k > nCand {
		k = nCand // component smaller than k+1: return what exists
	}
	if k == 0 {
		if dst != nil {
			return dst[:0]
		}
		return []int32{}
	}
	sel := e.candBuf[:0]
	for _, i := range e.iList {
		sel = e.offerAsc(sel, k, i, e.ub(i))
	}
	e.candBuf = sel
	e.markSel(sel)
	maxK := sel[len(sel)-1].key // buffer is sorted ascending
	minRest := float64(e.L) + 1
	for _, i := range e.iList {
		if e.inSel[i] {
			continue
		}
		if lb := e.lb(i); lb < minRest {
			minRest = lb
		}
	}
	for _, i := range e.bList {
		if e.outCnt[i] <= 0 || e.nodes[i] == e.q {
			continue
		}
		if lb := e.lb(i); lb < minRest {
			minRest = lb
		}
	}
	// Every non-q node is either an interior candidate or a live boundary
	// node, so an outsider exists iff the selection plus q don't cover S.
	restSeen := e.size()-1-len(sel) > 0
	e.clearSel(sel)
	if gap != nil {
		gap.valid = true
		gap.kth = maxK
		gap.rest = minRest
	}
	if (restSeen || !exhausted) && maxK > minRest+tieEps {
		return nil
	}
	out := dst[:0]
	for _, c := range sel {
		out = append(out, c.i)
	}
	return out
}

// thtTopK is the FLoS main loop specialized to THT. ws supplies a reusable
// engine (nil runs cold).
func thtTopK(ctx context.Context, g graph.Graph, q graph.NodeID, opt Options, ws *Workspace) (*Result, error) {
	e := ws.thtFor(g, q, opt.Params.L, opt.kernelConfig())
	// Warm-start seeding (see phpFamilyTopK): the L-level bound systems are
	// valid for any S containing q, so pre-visiting seeds is safe.
	for _, v := range opt.WarmStart {
		if v == q || v < 0 || int(v) >= g.NumNodes() || e.local.has(v) {
			continue
		}
		e.visit(v)
	}
	maxVisited := opt.MaxVisited
	if maxVisited == 0 {
		maxVisited = g.NumNodes()
	}
	// Termination slack: TieEps exact/anytime, widened to ε in ModeEpsilon
	// (ε is in hop units here). See phpFamilyTopK.
	slack := opt.slack()
	tracing := opt.Tracer != nil
	snapObs, _ := opt.Tracer.(SnapshotObserver)
	var phaseAt time.Time
	var gap certGap
	for t := 1; ; t++ {
		if err := ctx.Err(); err != nil {
			return thtInterrupted(e, opt, t-1, gap, err)
		}
		batch := e.size() / 256
		if batch < 1 {
			batch = 1
		}
		var expandNS, solveNS, certifyNS int64
		if tracing {
			phaseAt = time.Now()
		}
		us := e.pickExpansion(batch)
		// Hop closure: keep the distance floor advancing (see
		// pickFloorClosers). Traced and untraced runs share this schedule.
		for _, u := range e.pickFloorClosers() {
			if !slices.Contains(us, u) {
				us = append(us, u)
			}
		}
		added := e.addedBuf[:0]
		var expanded graph.NodeID = -1
		if len(us) > 0 {
			expanded = e.nodes[us[0]]
			for _, u := range us {
				added = e.expand(u, added)
			}
		}
		e.addedBuf = added
		if postExpandHook != nil {
			postExpandHook(e)
		}
		if tracing {
			now := time.Now()
			expandNS, phaseAt = now.Sub(phaseAt).Nanoseconds(), now
		}
		e.solveBounds()
		if tracing {
			now := time.Now()
			solveNS, phaseAt = now.Sub(phaseAt).Nanoseconds(), now
		}
		gap = certGap{}
		sel := e.checkTermination(e.selOut, opt.K, slack, &gap)
		if sel != nil {
			e.selOut = sel
		}
		if tracing {
			certifyNS = time.Since(phaseAt).Nanoseconds()
			opt.Tracer.ObserveIteration(thtIterStats(e, t, len(us), len(added),
				sel != nil, &gap, expandNS, solveNS, certifyNS))
		}
		if snapObs != nil {
			lbs := make([]float64, e.size())
			ubs := make([]float64, e.size())
			for i := range lbs {
				lbs[i] = e.lb(int32(i))
				ubs[i] = e.ub(int32(i))
			}
			snapObs.ObserveSnapshot(TraceEvent{
				Iteration:  t,
				Expanded:   expanded,
				NewNodes:   append([]graph.NodeID(nil), added...),
				Nodes:      append([]graph.NodeID(nil), e.nodes...),
				Lower:      lbs,
				Upper:      ubs,
				DummyValue: float64(e.L),
			})
		}
		done := sel != nil
		exact, certified := true, true
		if !done && len(us) == 0 {
			sel = e.forceSelect(e.selOut, opt.K)
			e.selOut = sel
			done = true
		}
		if !done && e.size() >= maxVisited && opt.MaxVisited > 0 {
			sel = e.forceSelect(e.selOut, opt.K)
			e.selOut = sel
			done, exact, certified = true, false, false
		}
		if done {
			return thtResult(e, sel, opt, t, exact, certified, gap), nil
		}
	}
}

// thtResult builds the hop-scale result with its Certification block. THT
// bounds are native (lower-is-closer hop counts), so the per-node intervals
// need no scale conversion.
func thtResult(e *thtEngine, sel []int32, opt Options, iters int, exact, certified bool, gap certGap) *Result {
	if exact && opt.Mode == ModeEpsilon && gap.valid &&
		measure.CertGap(measure.THT, gap.kth, gap.rest) > opt.TieEps {
		exact = false
	}
	res := &Result{
		Visited:    e.size(),
		Iterations: iters,
		Sweeps:     e.sweeps,
		Exact:      exact,
	}
	if opt.CaptureFootprint {
		// THT probes no outside degrees and uses no guard, so its
		// read footprint is exactly the visited set.
		res.VisitedNodes = append([]graph.NodeID(nil), e.nodes...)
	}
	c := Certification{
		Mode:       opt.Mode,
		Certified:  certified,
		Epsilon:    opt.Epsilon,
		Iterations: iters,
	}
	if gap.valid {
		c.GapValid = true
		c.KthBound = gap.kth
		c.RestBound = gap.rest
		c.Gap = measure.CertGap(measure.THT, gap.kth, gap.rest)
	}
	for _, i := range sel {
		res.TopK = append(res.TopK, measure.Ranked{
			Node:  e.nodes[i],
			Score: (e.lb(i) + e.ub(i)) / 2,
		})
		c.Bounds = append(c.Bounds, NodeBounds{Node: e.nodes[i], Lower: e.lb(i), Upper: e.ub(i)})
	}
	res.Certification = c
	return res
}

// thtInterrupted mirrors phpInterrupted for the finite-horizon engine:
// anytime mode returns the uncertified in-flight top-k; other modes attach
// it to the *Interrupted error.
func thtInterrupted(e *thtEngine, opt Options, iters int, gap certGap, cause error) (*Result, error) {
	sel := e.forceSelect(e.selOut, opt.K)
	partial := thtResult(e, sel, opt, iters, false, false, gap)
	if opt.Mode == ModeAnytime {
		return partial, nil
	}
	in := interrupted(cause, e.size(), iters, e.sweeps)
	in.Partial = partial
	return nil, in
}

// thtIterStats assembles one IterStats record for the finite-horizon
// engine. Gap orientation mirrors the PHP engine's because lower is closer:
// best outsider lower bound minus kth upper bound, non-negative (within
// TieEps) exactly when certified. DummyValue is the horizon L, the value the
// upper-bound dummy is pinned at. The boundary/interior sizes come from the
// substrate's O(1) counters — tracing no longer adds an O(|S|) sweep.
func thtIterStats(e *thtEngine, t, batch, added int, certified bool, gap *certGap, expandNS, solveNS, certifyNS int64) IterStats {
	s := IterStats{
		Iteration:  t,
		Visited:    e.size(),
		Boundary:   e.boundaryCount(),
		Interior:   e.interiorCount(),
		Batch:      batch,
		NewNodes:   added,
		Certified:  certified,
		DummyValue: float64(e.L),
		ExpandNS:   expandNS,
		SolveNS:    solveNS,
		CertifyNS:  certifyNS,
	}
	if e.kstats.Kind != 0 || e.kstats.Sweeps > 0 {
		s.Kernel = e.kstats.Kind.String()
		s.KernelBlocks = e.kstats.Blocks
		s.KernelRounds = e.kstats.Rounds
		s.KernelWorkers = e.kstats.Workers
		s.KernelF32Sweeps = e.kstats.F32Sweeps
	}
	if gap != nil && gap.valid {
		s.GapValid = true
		s.KthBound = gap.kth
		s.RestBound = gap.rest
		s.Gap = gap.rest - gap.kth
	}
	return s
}

// forceSelect picks the k best visited nodes by upper bound (the safe side
// for a lower-is-closer measure), appended to dst.
func (e *thtEngine) forceSelect(dst []int32, k int) []int32 {
	all := e.candBuf[:0]
	for i := int32(0); i < int32(e.size()); i++ {
		if e.nodes[i] != e.q {
			all = append(all, scored{i, e.ub(i)})
		}
	}
	e.candBuf = all
	slices.SortFunc(all, func(a, b scored) int {
		if a.key != b.key {
			if a.key < b.key {
				return -1
			}
			return 1
		}
		if e.nodes[a.i] < e.nodes[b.i] {
			return -1
		}
		return 1
	})
	if k > len(all) {
		k = len(all)
	}
	out := dst[:0]
	for i := 0; i < k; i++ {
		out = append(out, all[i].i)
	}
	return out
}
