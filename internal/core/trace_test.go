package core

import (
	"reflect"
	"testing"

	"flos/internal/gen"
	"flos/internal/measure"
)

// TestTracerTrajectoryCertifies runs a traced query per measure and checks
// the trajectory invariants: iterations count up, the visited set grows
// monotonically, the work totals match the Result counters, and the final
// entry certifies the stopping rule — the k-th candidate's certified-side
// bound clears the best competing bound (Gap >= -TieEps).
func TestTracerTrajectoryCertifies(t *testing.T) {
	g, err := gen.Community(3000, 9000, gen.DefaultCommunityParams(), 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []measure.Kind{measure.PHP, measure.EI, measure.DHT, measure.THT, measure.RWR} {
		opt := DefaultOptions(kind, 8)
		tc := &TraceCollector{}
		opt.Tracer = tc
		res, err := TopK(g, 42, opt)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !res.Exact {
			t.Fatalf("%v: inexact result on an uncapped search", kind)
		}
		if len(tc.Iters) == 0 {
			t.Fatalf("%v: empty trajectory", kind)
		}
		prevVisited := 0
		for i, it := range tc.Iters {
			if it.Iteration != i+1 {
				t.Fatalf("%v: entry %d has iteration %d", kind, i, it.Iteration)
			}
			if it.Visited < prevVisited {
				t.Errorf("%v: visited shrank %d -> %d at iter %d", kind, prevVisited, it.Visited, it.Iteration)
			}
			prevVisited = it.Visited
			if it.Boundary < 0 || it.Interior < 0 || it.Boundary+it.Interior >= it.Visited+1 {
				t.Errorf("%v iter %d: counts boundary=%d interior=%d visited=%d",
					kind, it.Iteration, it.Boundary, it.Interior, it.Visited)
			}
			if it.Certified && i != len(tc.Iters)-1 {
				t.Errorf("%v: certified at iter %d before the final entry", kind, it.Iteration)
			}
		}
		last := tc.Iters[len(tc.Iters)-1]
		if !last.Certified {
			t.Fatalf("%v: final entry not certified: %+v", kind, last)
		}
		if !last.GapValid {
			t.Fatalf("%v: final entry has no gap: %+v", kind, last)
		}
		if last.Gap < -opt.TieEps {
			t.Errorf("%v: final gap %g violates the stopping rule (kth=%g rest=%g)",
				kind, last.Gap, last.KthBound, last.RestBound)
		}
		if last.Visited != res.Visited || last.Iteration != res.Iterations {
			t.Errorf("%v: trace end (visited=%d iter=%d) != result (visited=%d iter=%d)",
				kind, last.Visited, last.Iteration, res.Visited, res.Iterations)
		}

		// Tracing must not perturb the answer.
		plain, err := TopK(g, 42, DefaultOptions(kind, 8))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.TopK, res.TopK) {
			t.Errorf("%v: traced result differs from untraced: %v vs %v", kind, res.TopK, plain.TopK)
		}
	}
}

// TestTracerUnified checks the unified search emits a certified trajectory.
func TestTracerUnified(t *testing.T) {
	g, err := gen.Community(3000, 9000, gen.DefaultCommunityParams(), 11)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(measure.PHP, 6)
	tc := &TraceCollector{}
	opt.Tracer = tc
	res, err := UnifiedTopK(g, 7, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tc.Iters) == 0 {
		t.Fatal("empty trajectory")
	}
	last := tc.Iters[len(tc.Iters)-1]
	if !last.Certified || last.Iteration != res.Iterations || last.Visited != res.Visited {
		t.Fatalf("final entry %+v vs result iters=%d visited=%d", last, res.Iterations, res.Visited)
	}
	if !last.GapValid || last.Gap < -opt.TieEps {
		t.Fatalf("final gap not certifying: %+v", last)
	}
}

// TestTracerGapConvergesFromViolation: early iterations of a non-trivial
// search must show an uncertified gap (negative margin or no candidates
// yet); certification is reached, not assumed.
func TestTracerGapConvergesFromViolation(t *testing.T) {
	g, err := gen.Community(3000, 9000, gen.DefaultCommunityParams(), 11)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(measure.RWR, 10)
	tc := &TraceCollector{}
	opt.Tracer = tc
	if _, err := TopK(g, 42, opt); err != nil {
		t.Fatal(err)
	}
	if len(tc.Iters) < 2 {
		t.Skipf("search certified in %d iteration(s); nothing to observe", len(tc.Iters))
	}
	first := tc.Iters[0]
	if first.Certified {
		t.Fatalf("first iteration already certified: %+v", first)
	}
	if first.GapValid && first.Gap >= -opt.TieEps {
		t.Fatalf("first iteration gap %g already non-negative yet search continued", first.Gap)
	}
}
