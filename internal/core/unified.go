package core

import (
	"context"
	"fmt"
	"time"

	"flos/internal/graph"
	"flos/internal/measure"
)

// UnifiedResult is the answer to a multi-measure query: one local search,
// two certified rankings.
type UnifiedResult struct {
	// PHPFamily is the exact top-k under PHP — and, by Theorem 2, under EI
	// and DHT as well (identical node sets; scores are in the PHP scale).
	PHPFamily []measure.Ranked
	// RWR is the exact top-k under random walk with restart (scores are the
	// unnormalized w_i·PHP(i) of Theorem 6).
	RWR []measure.Ranked
	// Work counters, as in Result.
	Visited      int
	Iterations   int
	Sweeps       int
	DegreeProbes int
	Exact        bool

	// Read footprint, populated only under Options.CaptureFootprint; see
	// Result for field semantics. A unified query always certifies an RWR
	// ranking, so GuardDegree is meaningful whenever the guard was consulted.
	VisitedNodes []graph.NodeID
	ProbedNodes  []graph.NodeID
	GuardDegree  float64
}

// UnifiedTopK answers both ranking families — PHP/EI/DHT and RWR — with a
// single expanding search and one pair of bound systems. This is the payoff
// of the paper's unification: because every measure rides on the same PHP
// bounds (Theorems 2 and 6), certifying two rankings costs one search whose
// visited set is the union of what the two separate searches would touch,
// with all bound computation shared.
//
// opt.Measure is ignored; opt.Params.C is the PHP decay factor (equivalently
// 1 − restart probability for EI/RWR). Expansion alternates between the
// PHP-family and RWR priorities so neither criterion starves.
//
// UnifiedTopK is a thin wrapper over UnifiedTopKCtx with a background
// context; repeated callers should hold a Querier and use Querier.Unified.
func UnifiedTopK(g graph.Graph, q graph.NodeID, opt Options) (*UnifiedResult, error) {
	return UnifiedTopKCtx(context.Background(), g, q, opt)
}

// UnifiedTopKCtx is UnifiedTopK with cancellation, on the same contract as
// TopKCtx: ctx is checked every local expansion and an *Interrupted
// (wrapping ErrCanceled or ErrDeadline) is returned as soon as it fires.
func UnifiedTopKCtx(ctx context.Context, g graph.Graph, q graph.NodeID, opt Options) (*UnifiedResult, error) {
	return unifiedIn(ctx, g, q, opt, nil)
}

// unifiedIn is the unified main loop; ws supplies a reusable engine
// workspace (nil runs cold).
func unifiedIn(ctx context.Context, g graph.Graph, q graph.NodeID, opt Options, ws *Workspace) (*UnifiedResult, error) {
	if snapper, ok := g.(graph.Snapshotter); ok {
		// Live backend: pin one immutable snapshot for the whole search (see
		// topKIn).
		snap, release := snapper.AcquireSnapshot()
		defer release()
		g = snap
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if q < 0 || int(q) >= g.NumNodes() {
		return nil, fmt.Errorf("%w: query node %d outside [0,%d)", ErrInvalidQuery, q, g.NumNodes())
	}
	e := ws.phpFor(g, q, opt.Params.C, opt.Params.Tau, opt.Params.MaxIter, opt.Tighten)
	e.capProbes = opt.CaptureFootprint
	// Warm-start seeding, as in phpFamilyTopK.
	for _, v := range opt.WarmStart {
		if v == q || v < 0 || int(v) >= g.NumNodes() || e.local.has(v) {
			continue
		}
		e.visit(v)
	}
	maxVisited := opt.MaxVisited
	if maxVisited == 0 {
		maxVisited = g.NumNodes()
	}
	// w(S̄) guard for the RWR family, cursor-based as in phpFamilyTopK.
	wSbar := newWSbarGuard(g)

	tracing := opt.Tracer != nil
	var phaseAt time.Time
	// The two selections stay live simultaneously across iterations, so
	// each gets its own engine buffer.
	var selPHP, selRWR []int32
	for t := 1; ; t++ {
		if err := ctx.Err(); err != nil {
			return nil, interrupted(err, e.size(), t-1, e.sweeps)
		}
		e.updateDummy()

		batch := e.size() / 256
		if batch < 1 {
			batch = 1
		}
		// Alternate priorities; once one family is certified, drive the
		// other exclusively.
		rwrPriority := t%2 == 0
		if selPHP != nil {
			rwrPriority = true
		}
		if selRWR != nil {
			rwrPriority = false
		}
		var expandNS, solveNS, certifyNS int64
		if tracing {
			phaseAt = time.Now()
		}
		sizeBefore := e.size()
		us := e.pickExpansion(rwrPriority, batch)
		exhausted := len(us) == 0
		added := e.addedBuf[:0]
		for _, u := range us {
			added = e.expand(u, added)
		}
		e.addedBuf = added
		if postExpandHook != nil {
			postExpandHook(e)
		}
		if tracing {
			now := time.Now()
			expandNS, phaseAt = now.Sub(phaseAt).Nanoseconds(), now
		}

		e.refreshTightening()
		e.solveBounds()
		if tracing {
			now := time.Now()
			solveNS, phaseAt = now.Sub(phaseAt).Nanoseconds(), now
		}

		// The trace follows whichever family is still uncertified — PHP
		// first, then RWR — so the gap trajectory always describes the
		// binding stopping condition.
		var gapPHP, gapRWR *certGap
		if selPHP == nil {
			if tracing {
				gapPHP = &certGap{}
			}
			selPHP = e.checkTermination(e.selOut, opt.K, false, 0, opt.TieEps, gapPHP)
			if selPHP != nil {
				e.selOut = selPHP
			}
		}
		if selRWR == nil {
			if tracing {
				gapRWR = &certGap{}
			}
			guard := wSbar.value(&e.localSearch)
			e.degreeProbes++
			e.lastGuard = guard
			selRWR = e.checkTermination(e.selOut2, opt.K, true, guard, opt.TieEps, gapRWR)
			if selRWR != nil {
				e.selOut2 = selRWR
			}
		}
		if tracing {
			certifyNS = time.Since(phaseAt).Nanoseconds()
		}

		done := selPHP != nil && selRWR != nil
		if tracing {
			gap := gapPHP
			if gap == nil {
				gap = gapRWR
			}
			opt.Tracer.ObserveIteration(iterStats(e, t, len(us), e.size()-sizeBefore,
				done, gap, expandNS, solveNS, certifyNS))
		}
		exact := true
		if !done && exhausted {
			if selPHP == nil {
				selPHP = e.forceSelect(e.selOut, opt.K, false)
				e.selOut = selPHP
			}
			if selRWR == nil {
				selRWR = e.forceSelect(e.selOut2, opt.K, true)
				e.selOut2 = selRWR
			}
			done = true
		}
		if !done && e.size() >= maxVisited && opt.MaxVisited > 0 {
			if selPHP == nil {
				selPHP = e.forceSelect(e.selOut, opt.K, false)
				e.selOut = selPHP
			}
			if selRWR == nil {
				selRWR = e.forceSelect(e.selOut2, opt.K, true)
				e.selOut2 = selRWR
			}
			done, exact = true, false
		}
		if done {
			out := &UnifiedResult{
				Visited:      e.size(),
				Iterations:   t,
				Sweeps:       e.sweeps,
				DegreeProbes: e.degreeProbes,
				Exact:        exact,
			}
			if opt.CaptureFootprint {
				out.VisitedNodes = append([]graph.NodeID(nil), e.nodes...)
				out.ProbedNodes = append([]graph.NodeID(nil), e.probed...)
				out.GuardDegree = e.lastGuard
			}
			for _, i := range selPHP {
				out.PHPFamily = append(out.PHPFamily, measure.Ranked{
					Node:  e.nodes[i],
					Score: (e.lbAt(i) + e.ubAt(i)) / 2,
				})
			}
			for _, i := range selRWR {
				out.RWR = append(out.RWR, measure.Ranked{
					Node:  e.nodes[i],
					Score: e.deg[i] * (e.lbAt(i) + e.ubAt(i)) / 2,
				})
			}
			return out, nil
		}
	}
}
