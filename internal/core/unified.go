package core

import (
	"context"
	"fmt"
	"time"

	"flos/internal/graph"
	"flos/internal/measure"
)

// UnifiedResult is the answer to a multi-measure query: one local search,
// two certified rankings.
type UnifiedResult struct {
	// PHPFamily is the exact top-k under PHP — and, by Theorem 2, under EI
	// and DHT as well (identical node sets; scores are in the PHP scale).
	PHPFamily []measure.Ranked
	// RWR is the exact top-k under random walk with restart (scores are the
	// unnormalized w_i·PHP(i) of Theorem 6).
	RWR []measure.Ranked
	// Work counters, as in Result.
	Visited      int
	Iterations   int
	Sweeps       int
	DegreeProbes int
	Exact        bool

	// PHPCert and RWRCert are the per-family certification blocks: each
	// family certifies (or fails to) independently, so an interrupted
	// anytime query can return one certified ranking and one best-effort
	// one. Bound keys and intervals are in each family's certification-key
	// scale: PHP-scale proximity for PHPFamily, degree-weighted PHP for RWR.
	PHPCert Certification
	RWRCert Certification

	// Read footprint, populated only under Options.CaptureFootprint; see
	// Result for field semantics. A unified query always certifies an RWR
	// ranking, so GuardDegree is meaningful whenever the guard was consulted.
	VisitedNodes []graph.NodeID
	ProbedNodes  []graph.NodeID
	GuardDegree  float64
}

// UnifiedTopK answers both ranking families — PHP/EI/DHT and RWR — with a
// single expanding search and one pair of bound systems. This is the payoff
// of the paper's unification: because every measure rides on the same PHP
// bounds (Theorems 2 and 6), certifying two rankings costs one search whose
// visited set is the union of what the two separate searches would touch,
// with all bound computation shared.
//
// opt.Measure is ignored; opt.Params.C is the PHP decay factor (equivalently
// 1 − restart probability for EI/RWR). Expansion alternates between the
// PHP-family and RWR priorities so neither criterion starves.
//
// UnifiedTopK is a thin wrapper over UnifiedTopKCtx with a background
// context; repeated callers should hold a Querier and use Querier.Unified.
func UnifiedTopK(g graph.Graph, q graph.NodeID, opt Options) (*UnifiedResult, error) {
	return UnifiedTopKCtx(context.Background(), g, q, opt)
}

// UnifiedTopKCtx is UnifiedTopK with cancellation, on the same contract as
// TopKCtx: ctx is checked every local expansion and an *Interrupted
// (wrapping ErrCanceled or ErrDeadline) is returned as soon as it fires.
func UnifiedTopKCtx(ctx context.Context, g graph.Graph, q graph.NodeID, opt Options) (*UnifiedResult, error) {
	return unifiedIn(ctx, g, q, opt, nil)
}

// unifiedIn is the unified main loop; ws supplies a reusable engine
// workspace (nil runs cold).
func unifiedIn(ctx context.Context, g graph.Graph, q graph.NodeID, opt Options, ws *Workspace) (*UnifiedResult, error) {
	if snapper, ok := g.(graph.Snapshotter); ok {
		// Live backend: pin one immutable snapshot for the whole search (see
		// topKIn).
		snap, release := snapper.AcquireSnapshot()
		defer release()
		g = snap
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if q < 0 || int(q) >= g.NumNodes() {
		return nil, fmt.Errorf("%w: query node %d outside [0,%d)", ErrInvalidQuery, q, g.NumNodes())
	}
	e := ws.phpFor(g, q, opt.Params.C, opt.Params.Tau, opt.Params.MaxIter, opt.Tighten, opt.kernelConfig())
	e.capProbes = opt.CaptureFootprint
	// Warm-start seeding, as in phpFamilyTopK.
	for _, v := range opt.WarmStart {
		if v == q || v < 0 || int(v) >= g.NumNodes() || e.local.has(v) {
			continue
		}
		e.visit(v)
	}
	maxVisited := opt.MaxVisited
	if maxVisited == 0 {
		maxVisited = g.NumNodes()
	}
	// w(S̄) guard for the RWR family, cursor-based as in phpFamilyTopK.
	wSbar := newWSbarGuard(g)

	slack := opt.slack()
	tracing := opt.Tracer != nil
	var phaseAt time.Time
	// The two selections stay live simultaneously across iterations, so
	// each gets its own engine buffer. Each family keeps its latest
	// termination observables (and the iteration it certified at) so the
	// final result can report both proofs.
	var selPHP, selRWR []int32
	var gPHP, gRWR certGap
	var phpIter, rwrIter int
	for t := 1; ; t++ {
		if err := ctx.Err(); err != nil {
			return unifiedInterrupted(e, opt, t-1, selPHP, selRWR, gPHP, gRWR, phpIter, rwrIter, err)
		}
		e.updateDummy()

		batch := e.size() / 256
		if batch < 1 {
			batch = 1
		}
		// Alternate priorities; once one family is certified, drive the
		// other exclusively.
		rwrPriority := t%2 == 0
		if selPHP != nil {
			rwrPriority = true
		}
		if selRWR != nil {
			rwrPriority = false
		}
		var expandNS, solveNS, certifyNS int64
		if tracing {
			phaseAt = time.Now()
		}
		sizeBefore := e.size()
		us := e.pickExpansion(rwrPriority, batch)
		exhausted := len(us) == 0
		added := e.addedBuf[:0]
		for _, u := range us {
			added = e.expand(u, added)
		}
		e.addedBuf = added
		if postExpandHook != nil {
			postExpandHook(e)
		}
		if tracing {
			now := time.Now()
			expandNS, phaseAt = now.Sub(phaseAt).Nanoseconds(), now
		}

		e.refreshTightening()
		e.solveBounds()
		if tracing {
			now := time.Now()
			solveNS, phaseAt = now.Sub(phaseAt).Nanoseconds(), now
		}

		// The trace follows whichever family is still uncertified — PHP
		// first, then RWR — so the gap trajectory always describes the
		// binding stopping condition.
		var itGap *certGap
		if selPHP == nil {
			gPHP = certGap{}
			itGap = &gPHP
			selPHP = e.checkTermination(e.selOut, opt.K, false, 0, slack, &gPHP)
			if selPHP != nil {
				e.selOut = selPHP
				phpIter = t
			}
		}
		if selRWR == nil {
			gRWR = certGap{}
			if itGap == nil {
				itGap = &gRWR
			}
			guard := wSbar.value(&e.localSearch)
			e.degreeProbes++
			e.lastGuard = guard
			selRWR = e.checkTermination(e.selOut2, opt.K, true, guard, slack, &gRWR)
			if selRWR != nil {
				e.selOut2 = selRWR
				rwrIter = t
			}
		}
		if tracing {
			certifyNS = time.Since(phaseAt).Nanoseconds()
		}

		done := selPHP != nil && selRWR != nil
		if tracing {
			opt.Tracer.ObserveIteration(iterStats(e, t, len(us), e.size()-sizeBefore,
				done, itGap, expandNS, solveNS, certifyNS))
		}
		exact := true
		phpCertified, rwrCertified := selPHP != nil, selRWR != nil
		if !done && exhausted {
			// Component exhausted: the local system is the whole component,
			// so force-picked rankings are exact too (see phpFamilyTopK).
			if selPHP == nil {
				selPHP = e.forceSelect(e.selOut, opt.K, false)
				e.selOut = selPHP
				phpIter = t
			}
			if selRWR == nil {
				selRWR = e.forceSelect(e.selOut2, opt.K, true)
				e.selOut2 = selRWR
				rwrIter = t
			}
			done, phpCertified, rwrCertified = true, true, true
		}
		if !done && e.size() >= maxVisited && opt.MaxVisited > 0 {
			// The safety valve: a family that certified before the cap keeps
			// its proof; the force-picked one reports Certified=false.
			if selPHP == nil {
				selPHP = e.forceSelect(e.selOut, opt.K, false)
				e.selOut = selPHP
				phpIter = t
			}
			if selRWR == nil {
				selRWR = e.forceSelect(e.selOut2, opt.K, true)
				e.selOut2 = selRWR
				rwrIter = t
			}
			done, exact = true, false
		}
		if done {
			return unifiedResult(e, opt, t, selPHP, selRWR, gPHP, gRWR, phpIter, rwrIter, exact, phpCertified, rwrCertified), nil
		}
	}
}

// unifiedResult assembles both rankings with their per-family proofs.
func unifiedResult(e *phpEngine, opt Options, iters int, selPHP, selRWR []int32, gPHP, gRWR certGap, phpIter, rwrIter int, exact, phpCertified, rwrCertified bool) *UnifiedResult {
	if exact && opt.Mode == ModeEpsilon {
		// An ε-stop that left separating work undone is certified-to-ε, not
		// exact, in whichever family still had a positive residual.
		if (gPHP.valid && measure.CertGap(measure.PHP, gPHP.kth, gPHP.rest) > opt.TieEps) ||
			(gRWR.valid && measure.CertGap(measure.RWR, gRWR.kth, gRWR.rest) > opt.TieEps) {
			exact = false
		}
	}
	out := &UnifiedResult{
		Visited:      e.size(),
		Iterations:   iters,
		Sweeps:       e.sweeps,
		DegreeProbes: e.degreeProbes,
		Exact:        exact,
	}
	if opt.CaptureFootprint {
		out.VisitedNodes = append([]graph.NodeID(nil), e.nodes...)
		out.ProbedNodes = append([]graph.NodeID(nil), e.probed...)
		out.GuardDegree = e.lastGuard
	}
	for _, i := range selPHP {
		out.PHPFamily = append(out.PHPFamily, measure.Ranked{
			Node:  e.nodes[i],
			Score: (e.lbAt(i) + e.ubAt(i)) / 2,
		})
	}
	for _, i := range selRWR {
		out.RWR = append(out.RWR, measure.Ranked{
			Node:  e.nodes[i],
			Score: e.deg[i] * (e.lbAt(i) + e.ubAt(i)) / 2,
		})
	}
	out.PHPCert = unifiedCert(e, opt, selPHP, false, gPHP, phpIter, phpCertified)
	out.RWRCert = unifiedCert(e, opt, selRWR, true, gRWR, rwrIter, rwrCertified)
	return out
}

// unifiedCert builds one family's certification block. Bound intervals are
// reported in the family's certification-key scale (PHP proximity, or
// degree-weighted PHP for rwrMode), matching the family's displayed scores.
func unifiedCert(e *phpEngine, opt Options, sel []int32, rwrMode bool, gap certGap, iter int, certified bool) Certification {
	kind := measure.PHP
	if rwrMode {
		kind = measure.RWR
	}
	c := Certification{
		Mode:       opt.Mode,
		Certified:  certified,
		Epsilon:    opt.Epsilon,
		Iterations: iter,
	}
	if gap.valid {
		c.GapValid = true
		c.KthBound = gap.kth
		c.RestBound = gap.rest
		c.Gap = measure.CertGap(kind, gap.kth, gap.rest)
	}
	for _, i := range sel {
		lo, hi := e.lbAt(i), e.ubAt(i)
		if rwrMode {
			lo *= e.deg[i]
			hi *= e.deg[i]
		}
		c.Bounds = append(c.Bounds, NodeBounds{Node: e.nodes[i], Lower: lo, Upper: hi})
	}
	return c
}

// unifiedInterrupted handles a context interruption mid-search: each family
// keeps whatever it had certified; an uncertified family gets a force-picked
// best-effort ranking. Anytime mode returns the partial as the answer;
// other modes attach it to the *Interrupted error.
func unifiedInterrupted(e *phpEngine, opt Options, iters int, selPHP, selRWR []int32, gPHP, gRWR certGap, phpIter, rwrIter int, cause error) (*UnifiedResult, error) {
	phpCertified, rwrCertified := selPHP != nil, selRWR != nil
	if selPHP == nil {
		selPHP = e.forceSelect(e.selOut, opt.K, false)
		e.selOut = selPHP
		phpIter = iters
	}
	if selRWR == nil {
		selRWR = e.forceSelect(e.selOut2, opt.K, true)
		e.selOut2 = selRWR
		rwrIter = iters
	}
	partial := unifiedResult(e, opt, iters, selPHP, selRWR, gPHP, gRWR, phpIter, rwrIter, false, phpCertified, rwrCertified)
	if opt.Mode == ModeAnytime {
		return partial, nil
	}
	in := interrupted(cause, e.size(), iters, e.sweeps)
	in.PartialUnified = partial
	return nil, in
}
