package core

import (
	"testing"

	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
)

func TestUnifiedMatchesSeparateRuns(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := randomConnected(t, 100, 180, seed)
		q := graph.NodeID(int(seed*19) % 100)
		opt := testOptions(measure.PHP, 7)
		uni, err := UnifiedTopK(g, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !uni.Exact {
			t.Fatal("unified result not exact")
		}

		php := exactScores(t, g, q, measure.PHP, opt.Params)
		if !measure.SameSetModuloTies(measure.Nodes(uni.PHPFamily), php, q, 7, true, 1e-7) {
			t.Errorf("seed %d: unified PHP-family set wrong", seed)
		}
		rwrParams := opt.Params
		rwrParams.C = 1 - opt.Params.C
		rwr := exactScores(t, g, q, measure.RWR, rwrParams)
		if !measure.SameSetModuloTies(measure.Nodes(uni.RWR), rwr, q, 7, true, 1e-8) {
			t.Errorf("seed %d: unified RWR set wrong", seed)
		}

		// Shared search: visited at most the sum of the two separate runs
		// (it is their union plus batching slack).
		sep1, err := TopK(g, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		optR := opt
		optR.Measure = measure.RWR
		optR.Params.C = 1 - opt.Params.C
		sep2, err := TopK(g, q, optR)
		if err != nil {
			t.Fatal(err)
		}
		if uni.Visited > sep1.Visited+sep2.Visited+50 {
			t.Errorf("seed %d: unified visited %d vs separate %d+%d",
				seed, uni.Visited, sep1.Visited, sep2.Visited)
		}
	}
}

func TestUnifiedSmallComponent(t *testing.T) {
	g := graph.MustFromEdges(5, 0, 1, 1, 2, 3, 4)
	uni, err := UnifiedTopK(g, 0, testOptions(measure.PHP, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !measure.SameSet(measure.Nodes(uni.PHPFamily), []graph.NodeID{1, 2}) {
		t.Fatalf("PHP family = %v", measure.Nodes(uni.PHPFamily))
	}
	if !measure.SameSet(measure.Nodes(uni.RWR), []graph.NodeID{1, 2}) {
		t.Fatalf("RWR = %v", measure.Nodes(uni.RWR))
	}
}

func TestUnifiedValidation(t *testing.T) {
	g := gen.Path(4)
	if _, err := UnifiedTopK(g, 9, testOptions(measure.PHP, 2)); err == nil {
		t.Error("bad query accepted")
	}
	bad := testOptions(measure.PHP, 0)
	if _, err := UnifiedTopK(g, 0, bad); err == nil {
		t.Error("bad options accepted")
	}
}

func TestUnifiedMaxVisited(t *testing.T) {
	g := randomConnected(t, 400, 800, 3)
	opt := testOptions(measure.PHP, 20)
	opt.MaxVisited = 25
	uni, err := UnifiedTopK(g, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	if uni.Exact {
		t.Error("capped unified run claims exactness")
	}
	if len(uni.PHPFamily) != 20 || len(uni.RWR) != 20 {
		t.Errorf("result lengths %d/%d", len(uni.PHPFamily), len(uni.RWR))
	}
}
