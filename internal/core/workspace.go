package core

import (
	"context"
	"slices"

	"flos/internal/core/kernel"
	"flos/internal/graph"
)

// This file holds the engine-workspace machinery behind Querier: the
// generation-stamped replacements for the per-query maps, the row helpers
// that let slice-of-slice state regrow without allocating, and the
// Workspace wrapper that owns one reusable engine of each family.
//
// The design target is the high-QPS serving path. FLoS queries touch only a
// small visited set S, so on short queries the dominant cost of the seed
// implementation was not the bound solver but the allocator: every TopK
// rebuilt ~15 bookkeeping slices, a global→local map, and a degree-memo map
// from zero. A warm Workspace keeps all of that across queries; "clearing"
// the two maps is a single generation bump (O(1), no rehash), and every
// slice is truncated in place keeping its backing storage.

// nodeIndex maps global node identifiers to local engine indices. A cold
// (one-shot) engine uses a Go map sized by the visited set; a warm
// workspace switches to dense generation-stamped arrays sized to the graph:
// lookup is one load and compare, insert is two stores, and a logical clear
// is cur++ — no rehashing, no zeroing.
type nodeIndex struct {
	m   map[graph.NodeID]int32 // transient mode; nil in dense mode
	idx []int32                // dense mode: local index of v, valid iff gen[v] == cur
	gen []uint32
	cur uint32
}

// init prepares the index for a fresh query. Dense mode sizes the stamp
// arrays to n nodes (growing if the workspace moved to a larger graph) and
// bumps the generation; transient mode (re)creates the map.
func (x *nodeIndex) init(n int, dense bool) {
	if !dense {
		x.idx, x.gen = nil, nil
		if x.m == nil {
			x.m = make(map[graph.NodeID]int32)
		} else {
			clear(x.m)
		}
		return
	}
	x.m = nil
	if len(x.gen) < n {
		x.idx = make([]int32, n)
		x.gen = make([]uint32, n)
		x.cur = 1
		return
	}
	x.cur++
	if x.cur == 0 { // generation counter wrapped: invalidate every stamp
		for i := range x.gen {
			x.gen[i] = 0
		}
		x.cur = 1
	}
}

func (x *nodeIndex) get(v graph.NodeID) (int32, bool) {
	if x.m != nil {
		li, ok := x.m[v]
		return li, ok
	}
	if x.gen[v] != x.cur {
		return 0, false
	}
	return x.idx[v], true
}

func (x *nodeIndex) put(v graph.NodeID, li int32) {
	if x.m != nil {
		x.m[v] = li
		return
	}
	x.gen[v] = x.cur
	x.idx[v] = li
}

// has reports membership without the local index.
func (x *nodeIndex) has(v graph.NodeID) bool {
	_, ok := x.get(v)
	return ok
}

// degMemo memoizes Degree lookups of unvisited nodes (spent by the Section
// 5.3 tightening and the RWR w(S̄) guard), with the same two modes as
// nodeIndex.
type degMemo struct {
	m   map[graph.NodeID]float64
	val []float64
	gen []uint32
	cur uint32
}

func (x *degMemo) init(n int, dense bool) {
	if !dense {
		x.val, x.gen = nil, nil
		if x.m == nil {
			x.m = make(map[graph.NodeID]float64)
		} else {
			clear(x.m)
		}
		return
	}
	x.m = nil
	if len(x.gen) < n {
		x.val = make([]float64, n)
		x.gen = make([]uint32, n)
		x.cur = 1
		return
	}
	x.cur++
	if x.cur == 0 {
		for i := range x.gen {
			x.gen[i] = 0
		}
		x.cur = 1
	}
}

func (x *degMemo) get(v graph.NodeID) (float64, bool) {
	if x.m != nil {
		d, ok := x.m[v]
		return d, ok
	}
	if x.gen[v] != x.cur {
		return 0, false
	}
	return x.val[v], true
}

func (x *degMemo) put(v graph.NodeID, d float64) {
	if x.m != nil {
		x.m[v] = d
		return
	}
	x.gen[v] = x.cur
	x.val[v] = d
}

// appendRow appends one empty row to a slice-of-slices, reusing the spare
// inner capacity a truncated (warm) outer slice retains past its length.
func appendRow[T any](rows [][]T) [][]T {
	if len(rows) < cap(rows) {
		rows = rows[:len(rows)+1]
		rows[len(rows)-1] = rows[len(rows)-1][:0]
		return rows
	}
	return append(rows, nil)
}

// appendRowCopy appends a copy of row, reusing retained inner capacity.
func appendRowCopy[T any](rows [][]T, row []T) [][]T {
	rows = appendRow(rows)
	rows[len(rows)-1] = append(rows[len(rows)-1], row...)
	return rows
}

// scored pairs a local index with a selection key; the engines' expansion
// and termination scans collect candidates into reusable []scored scratch.
type scored struct {
	i   int32
	key float64
}

// sortScoredDesc orders candidates by descending key, ties toward the
// smaller global identifier. The comparator is total, so the unstable sort
// is deterministic.
func sortScoredDesc(s []scored, nodes []graph.NodeID) {
	slices.SortFunc(s, func(a, b scored) int {
		if a.key != b.key {
			if a.key > b.key {
				return -1
			}
			return 1
		}
		if nodes[a.i] < nodes[b.i] {
			return -1
		}
		return 1
	})
}

// Workspace owns the reusable engine state for one query at a time. It is
// NOT safe for concurrent use — Querier pools workspaces to serve
// concurrent callers, and qserve gives each worker its own — but it may be
// reused across queries, graphs, measures, and option sets freely: every
// query resets the state it needs, and results never alias workspace
// memory.
//
// A workspace-run query produces byte-identical results and work counters
// to the equivalent cold TopKCtx call; only the allocation profile differs.
type Workspace struct {
	php *phpEngine
	tht *thtEngine
}

// NewWorkspace returns an empty workspace; engines are materialized lazily
// on first use per family.
func NewWorkspace() *Workspace { return &Workspace{} }

// TopK answers one query inside the workspace, on the TopKCtx contract.
func (ws *Workspace) TopK(ctx context.Context, g graph.Graph, q graph.NodeID, opt Options) (*Result, error) {
	return topKIn(ctx, g, q, opt, ws)
}

// Unified answers one unified query inside the workspace, on the
// UnifiedTopKCtx contract.
func (ws *Workspace) Unified(ctx context.Context, g graph.Graph, q graph.NodeID, opt Options) (*UnifiedResult, error) {
	return unifiedIn(ctx, g, q, opt, ws)
}

// phpFor returns the workspace's PHP-family engine reset for a new query,
// or a cold engine when ws is nil. kcfg selects the bound-solver kernel; the
// engine's kernel scratch (per-block FIFOs, the float32 shadow store) is
// retained across queries like every other engine slice, and reconfigured —
// including dropping the shadow's live prefix — on every reset.
func (ws *Workspace) phpFor(g graph.Graph, q graph.NodeID, c, tau float64, maxIter int, tighten bool, kcfg kernel.Config) *phpEngine {
	if ws == nil {
		return newPHPEngine(g, q, c, tau, maxIter, tighten, kcfg)
	}
	if ws.php == nil {
		ws.php = new(phpEngine)
	}
	ws.php.reset(g, q, c, tau, maxIter, tighten, true, kcfg)
	return ws.php
}

// thtFor is phpFor for the finite-horizon engine.
func (ws *Workspace) thtFor(g graph.Graph, q graph.NodeID, L int, kcfg kernel.Config) *thtEngine {
	if ws == nil {
		return newTHTEngine(g, q, L, kcfg)
	}
	if ws.tht == nil {
		ws.tht = new(thtEngine)
	}
	ws.tht.reset(g, q, L, true, kcfg)
	return ws.tht
}
