package core

// Workspace reuse across mode and kernel switches (ISSUE 9 satellite): one
// Workspace must serve exact → ε → anytime queries and serial → parallel →
// staged kernel changes back to back, with every warm answer equal to the
// same query run cold. The hazards these tests pin:
//
//   - the generation-stamped dense index arrays must invalidate across
//     switches (a stale stamp would leak visited-set membership between
//     queries that take different trajectories under different kernels);
//   - the staged kernel's float32 shadow store is per-query state and must
//     be dropped on every reset — a shadow surviving into the next query
//     would make staged results depend on what ran before (cold ≠ warm);
//   - the warm-path allocation ceiling must hold with the kernel layer in
//     the loop: the engine-owned kernel state (kst) must not escape to the
//     heap per call, and kernel scratch must be retained across queries
//     like every other engine slice.

import (
	"context"
	"fmt"
	"testing"

	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
)

// TestWorkspaceKernelModeSwitch drives one Workspace through the full
// mode × kernel grid twice and requires every warm result to match the cold
// run of the same options bit for bit (same kernel on both sides, so even
// parallel/staged runs must agree with themselves).
func TestWorkspaceKernelModeSwitch(t *testing.T) {
	g := randomConnected(t, 400, 900, 11)
	ws := NewWorkspace()
	ctx := context.Background()

	type combo struct {
		mode   Mode
		kernel KernelKind
	}
	var grid []combo
	for _, m := range []Mode{ModeExact, ModeEpsilon, ModeAnytime} {
		for _, kk := range []KernelKind{KernelSerial, KernelParallel, KernelStaged} {
			grid = append(grid, combo{m, kk})
		}
	}

	// Two passes over the grid: the second pass reuses state the first left
	// behind in every configuration.
	for pass := 0; pass < 2; pass++ {
		for ci, c := range grid {
			q := graph.NodeID((37*ci + 100*pass) % g.NumNodes())
			opt := testOptions(measure.RWR, 8)
			opt.Mode = c.mode
			opt.Kernel = c.kernel
			if c.mode == ModeEpsilon {
				opt.Epsilon = 1e-4
			}
			label := fmt.Sprintf("pass=%d mode=%v kernel=%v q=%d", pass, c.mode, c.kernel, q)

			warm, err := ws.TopK(ctx, g, q, opt)
			if err != nil {
				t.Fatalf("%s warm: %v", label, err)
			}
			cold, err := TopKCtx(ctx, g, q, opt)
			if err != nil {
				t.Fatalf("%s cold: %v", label, err)
			}
			requireSameBits(t, label, cold, warm)
		}
	}
}

// TestWorkspaceShadowReset pins the staged kernel's per-query shadow
// lifecycle: the float32 store fills during a staged query, is dropped by
// the reset of the next query (any kernel), and never makes a staged answer
// depend on the query that ran before it on the same workspace.
func TestWorkspaceShadowReset(t *testing.T) {
	g := randomConnected(t, 400, 900, 5)
	ws := NewWorkspace()
	ctx := context.Background()

	stagedOpt := testOptions(measure.PHP, 8)
	stagedOpt.Kernel = KernelStaged
	serialOpt := testOptions(measure.PHP, 8)
	serialOpt.Kernel = KernelSerial

	first, err := ws.TopK(ctx, g, 7, stagedOpt)
	if err != nil {
		t.Fatal(err)
	}
	if n := ws.php.kern.ShadowLen(); n == 0 {
		t.Fatal("staged query left no float32 shadow; the f32 phase never ran")
	}
	if first.Visited < stagedMinVisitedForShadow {
		t.Fatalf("fixture too small to exercise the staged phase: visited %d", first.Visited)
	}

	// A serial query on the same workspace must clear the shadow on reset.
	if _, err := ws.TopK(ctx, g, 200, serialOpt); err != nil {
		t.Fatal(err)
	}
	if n := ws.php.kern.ShadowLen(); n != 0 {
		t.Fatalf("shadow survived a serial reset: %d live entries", n)
	}

	// Staged after arbitrary history must equal staged cold: the shadow is
	// rebuilt from this query's bounds alone.
	for _, q := range []graph.NodeID{7, 123, 399} {
		warm, err := ws.TopK(ctx, g, q, stagedOpt)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := TopKCtx(ctx, g, q, stagedOpt)
		if err != nil {
			t.Fatal(err)
		}
		requireSameBits(t, fmt.Sprintf("staged warm-vs-cold q=%d", q), cold, warm)
	}
}

// stagedMinVisitedForShadow documents what the shadow assertion above needs:
// the f32 phase only engages once a solve call's frontier reaches the staged
// kernel's minimum, which the 400-node fixture comfortably exceeds.
const stagedMinVisitedForShadow = 32

// TestWorkspaceKernelAllocCeiling re-checks the warm allocation ceiling with
// kernel switching in the mix: after staged and parallel queries have grown
// the kernel scratch, a warm serial query must still allocate only the
// Result it returns — the kernel state lives on the engine and is reused.
func TestWorkspaceKernelAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime inflates allocation counts")
	}
	g, err := gen.Community(5000, 25000, gen.CommunityParamsForDensity(10), 1)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	ctx := context.Background()
	const q = graph.NodeID(2500)

	for _, kk := range []KernelKind{KernelStaged, KernelParallel, KernelSerial} {
		opt := DefaultOptions(measure.PHP, 20)
		opt.Kernel = kk
		for i := 0; i < 3; i++ {
			if _, err := ws.TopK(ctx, g, q, opt); err != nil {
				t.Fatal(err)
			}
		}
	}

	for _, kk := range []KernelKind{KernelSerial, KernelStaged} {
		opt := DefaultOptions(measure.PHP, 20)
		opt.Kernel = kk
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := ws.TopK(ctx, g, q, opt); err != nil {
				t.Fatal(err)
			}
		})
		const ceiling = 64
		if allocs > ceiling {
			t.Fatalf("warm %v TopK allocates %.0f objects/op, ceiling %d", kk, allocs, ceiling)
		}
		t.Logf("warm %v TopK: %.1f allocs/op (ceiling %d)", kk, allocs, ceiling)
	}
}
