package diskgraph

import (
	"io"
	"sync"
	"time"

	"flos/internal/obs/cachelens"
)

// pageCache is an LRU cache of fixed-size file pages under a byte budget —
// the module's stand-in for the buffer management a graph database performs.
// It is safe for concurrent readers: the page space is striped across
// independently locked shards (page index mod shard count), each shard runs
// its own LRU under its own mutex, and concurrent faults on the same cold
// page are deduplicated singleflight-style so one disk read serves every
// waiter. Page buffers are immutable once loaded, so a reader may keep
// copying from a page after another shard operation evicts it.
//
// The shard count adapts to the budget (one shard per resident page up to
// maxCacheShards), which keeps the byte budget meaningful for the tiny
// caches the eviction tests use while giving large caches enough stripes
// that GOMAXPROCS readers rarely contend.
type pageCache struct {
	src      io.ReaderAt
	pageSize int64
	fileSize int64
	shards   []cacheShard

	// lens, when non-nil, observes every page lookup and eviction for the
	// cache-analytics plane (MRC, ghost list, heatmap). Recorded outside the
	// shard locks; nil-safe, so the disabled path costs one nil check.
	lens *cachelens.Lens
}

// maxCacheShards bounds the stripe count; 64 comfortably exceeds the core
// counts this serves while keeping per-shard budgets coarse.
const maxCacheShards = 64

type cacheShard struct {
	mu     sync.Mutex
	budget int64 // max resident bytes in this shard

	pages map[int64]*page
	head  *page // most recently used
	tail  *page // least recently used
	bytes int64

	// flights tracks pages currently being read from disk; latecomers wait
	// on the flight instead of issuing a duplicate read.
	flights map[int64]*flight

	hits      int64
	misses    int64
	dedups    int64
	evictions int64
	hwmPages  int // most pages ever resident at once in this shard
}

type page struct {
	idx        int64
	data       []byte
	prev, next *page
}

type flight struct {
	done chan struct{}
	data []byte
	err  error
}

func newPageCache(src io.ReaderAt, pageSize, budget, fileSize int64) *pageCache {
	if budget < pageSize {
		budget = pageSize // at least one resident page
	}
	n := budget / pageSize
	if n < 1 {
		n = 1
	}
	if n > maxCacheShards {
		n = maxCacheShards
	}
	c := &pageCache{
		src:      src,
		pageSize: pageSize,
		fileSize: fileSize,
		shards:   make([]cacheShard, n),
	}
	perShard := budget / n
	if perShard < pageSize {
		perShard = pageSize
	}
	for i := range c.shards {
		c.shards[i].budget = perShard
		c.shards[i].pages = make(map[int64]*page)
		c.shards[i].flights = make(map[int64]*flight)
	}
	return c
}

// get returns the content of the page with the given index, loading (and
// possibly evicting within the page's shard) on a miss. The returned slice
// is immutable and remains valid after eviction. onFault, when non-nil, is
// called with the stall duration of every cold-path lookup — a disk read on
// a miss, or the wait on another reader's in-flight load on a dedup; hits
// never invoke it, so the hot path stays observer-free.
func (c *pageCache) get(idx int64, onFault func(time.Duration)) ([]byte, error) {
	sh := &c.shards[idx%int64(len(c.shards))]
	sh.mu.Lock()
	if p, ok := sh.pages[idx]; ok {
		sh.hits++
		sh.touch(p)
		sh.mu.Unlock()
		c.lens.RecordGet(uint64(idx), true)
		return p.data, nil
	}
	if f, ok := sh.flights[idx]; ok {
		sh.dedups++
		sh.mu.Unlock()
		c.lens.RecordGet(uint64(idx), false)
		if onFault != nil {
			start := time.Now()
			<-f.done
			onFault(time.Since(start))
		} else {
			<-f.done
		}
		return f.data, f.err
	}
	sh.misses++
	f := &flight{done: make(chan struct{})}
	sh.flights[idx] = f
	sh.mu.Unlock()
	c.lens.RecordGet(uint64(idx), false)

	var start time.Time
	if onFault != nil {
		start = time.Now()
	}
	f.data, f.err = c.load(idx) // disk I/O outside every lock
	if onFault != nil {
		onFault(time.Since(start))
	}
	close(f.done)

	var evicted []int64
	sh.mu.Lock()
	delete(sh.flights, idx)
	if f.err == nil {
		evicted = sh.insert(&page{idx: idx, data: f.data})
	}
	sh.mu.Unlock()
	if c.lens != nil {
		for _, e := range evicted {
			c.lens.RecordEvict(uint64(e))
		}
	}
	return f.data, f.err
}

// load reads one page from the underlying file.
func (c *pageCache) load(idx int64) ([]byte, error) {
	off := idx * c.pageSize
	size := c.pageSize
	if off+size > c.fileSize {
		size = c.fileSize - off
	}
	if size <= 0 {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, size)
	if _, err := c.src.ReadAt(buf, off); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

// readAt fills dst from the cached file content starting at off, reporting
// page-fault stalls to onFault (may be nil).
func (c *pageCache) readAt(dst []byte, off int64, onFault func(time.Duration)) error {
	for len(dst) > 0 {
		idx := off / c.pageSize
		data, err := c.get(idx, onFault)
		if err != nil {
			return err
		}
		inPage := off - idx*c.pageSize
		if inPage >= int64(len(data)) {
			return io.ErrUnexpectedEOF
		}
		n := copy(dst, data[inPage:])
		dst = dst[n:]
		off += int64(n)
	}
	return nil
}

// insert adds a freshly loaded page and evicts LRU pages over budget,
// returning the evicted page indices so the caller can report them to the
// lens outside the shard lock. Caller holds sh.mu. A concurrent flight can
// race another get of the same page only through the flights map, so p.idx
// is never already resident.
func (sh *cacheShard) insert(p *page) []int64 {
	sh.pages[p.idx] = p
	sh.bytes += int64(len(p.data))
	sh.pushFront(p)
	if n := len(sh.pages); n > sh.hwmPages {
		sh.hwmPages = n
	}
	var evicted []int64
	for sh.bytes > sh.budget && sh.tail != nil && sh.tail != p {
		evicted = append(evicted, sh.tail.idx)
		sh.evict(sh.tail)
	}
	sh.evictions += int64(len(evicted))
	return evicted
}

func (sh *cacheShard) touch(p *page) {
	if sh.head == p {
		return
	}
	sh.unlink(p)
	sh.pushFront(p)
}

func (sh *cacheShard) pushFront(p *page) {
	p.prev = nil
	p.next = sh.head
	if sh.head != nil {
		sh.head.prev = p
	}
	sh.head = p
	if sh.tail == nil {
		sh.tail = p
	}
}

func (sh *cacheShard) unlink(p *page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else if sh.head == p {
		sh.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else if sh.tail == p {
		sh.tail = p.prev
	}
	p.prev, p.next = nil, nil
}

func (sh *cacheShard) evict(p *page) {
	sh.unlink(p)
	delete(sh.pages, p.idx)
	sh.bytes -= int64(len(p.data))
}

// Stats summarizes cache behavior.
type Stats struct {
	// Hits and Misses count page lookups; a miss is a disk read (a page
	// fault in the paper's disk-resident experiments).
	Hits, Misses int64
	// FaultsDeduped counts lookups that piggybacked on a concurrent fault
	// of the same page instead of issuing a duplicate disk read.
	FaultsDeduped int64
	// Evictions counts pages pushed out by the LRU to stay under budget.
	Evictions int64
	// ResidentBytes / ResidentPages describe current occupancy.
	ResidentBytes int64
	ResidentPages int
	// ResidentPagesHWM is the high-water mark of resident pages — the most
	// the cache ever held at once. HWM well under budget means the budget
	// was never the constraint; HWM at budget with a high eviction rate
	// means the working set does not fit.
	ResidentPagesHWM int
	// Shards is the lock-stripe count.
	Shards int
}

func (c *pageCache) stats() Stats {
	st := Stats{Shards: len(c.shards)}
	for _, ss := range c.shardStats() {
		st.Hits += ss.Hits
		st.Misses += ss.Misses
		st.FaultsDeduped += ss.FaultsDeduped
		st.Evictions += ss.Evictions
		st.ResidentBytes += ss.ResidentBytes
		st.ResidentPages += ss.ResidentPages
		st.ResidentPagesHWM += ss.ResidentPagesHWM
	}
	return st
}

// ShardStat is one lock stripe's view of the page cache: its own
// hit/miss/dedup counters and resident set. Uneven hit ratios across shards
// expose skewed page access (hot adjacency regions) that the aggregate
// Stats averages away.
type ShardStat struct {
	// Shard is the stripe index (page index mod shard count).
	Shard int
	// Hits, Misses, FaultsDeduped as in Stats, per stripe.
	Hits, Misses, FaultsDeduped int64
	// Evictions counts LRU evictions in this stripe.
	Evictions int64
	// ResidentBytes / ResidentPages describe the stripe's occupancy;
	// ResidentPagesHWM is the stripe's all-time occupancy peak.
	ResidentBytes    int64
	ResidentPages    int
	ResidentPagesHWM int
}

// shardStats snapshots each stripe under its own lock. Stripes are read
// sequentially, so the slice is per-shard consistent, not a global atomic
// snapshot — the same contract concurrent readers already get from stats.
func (c *pageCache) shardStats() []ShardStat {
	out := make([]ShardStat, len(c.shards))
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		out[i] = ShardStat{
			Shard:            i,
			Hits:             sh.hits,
			Misses:           sh.misses,
			FaultsDeduped:    sh.dedups,
			Evictions:        sh.evictions,
			ResidentBytes:    sh.bytes,
			ResidentPages:    len(sh.pages),
			ResidentPagesHWM: sh.hwmPages,
		}
		sh.mu.Unlock()
	}
	return out
}
