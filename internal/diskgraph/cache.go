package diskgraph

import (
	"io"
)

// pageCache is an LRU cache of fixed-size file pages under a byte budget.
// It is the module's stand-in for the buffer management a graph database
// performs; CacheStats expose hit/miss counts so the disk-resident
// experiments can report locality.
type pageCache struct {
	src      io.ReaderAt
	pageSize int64
	budget   int64 // max resident bytes
	fileSize int64

	pages map[int64]*page
	head  *page // most recently used
	tail  *page // least recently used
	bytes int64

	hits   int64
	misses int64
}

type page struct {
	idx        int64
	data       []byte
	prev, next *page
}

func newPageCache(src io.ReaderAt, pageSize, budget, fileSize int64) *pageCache {
	if budget < pageSize {
		budget = pageSize // at least one resident page
	}
	return &pageCache{
		src:      src,
		pageSize: pageSize,
		budget:   budget,
		fileSize: fileSize,
		pages:    make(map[int64]*page),
	}
}

// get returns the page with the given index, loading and possibly evicting.
func (c *pageCache) get(idx int64) (*page, error) {
	if p, ok := c.pages[idx]; ok {
		c.hits++
		c.touch(p)
		return p, nil
	}
	c.misses++
	off := idx * c.pageSize
	size := c.pageSize
	if off+size > c.fileSize {
		size = c.fileSize - off
	}
	if size <= 0 {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, size)
	if _, err := c.src.ReadAt(buf, off); err != nil && err != io.EOF {
		return nil, err
	}
	p := &page{idx: idx, data: buf}
	c.pages[idx] = p
	c.bytes += size
	c.pushFront(p)
	for c.bytes > c.budget && c.tail != nil && c.tail != p {
		c.evict(c.tail)
	}
	return p, nil
}

// readAt fills dst from the cached file content starting at off.
func (c *pageCache) readAt(dst []byte, off int64) error {
	for len(dst) > 0 {
		idx := off / c.pageSize
		p, err := c.get(idx)
		if err != nil {
			return err
		}
		inPage := off - idx*c.pageSize
		n := copy(dst, p.data[inPage:])
		if n == 0 {
			return io.ErrUnexpectedEOF
		}
		dst = dst[n:]
		off += int64(n)
	}
	return nil
}

func (c *pageCache) touch(p *page) {
	if c.head == p {
		return
	}
	c.unlink(p)
	c.pushFront(p)
}

func (c *pageCache) pushFront(p *page) {
	p.prev = nil
	p.next = c.head
	if c.head != nil {
		c.head.prev = p
	}
	c.head = p
	if c.tail == nil {
		c.tail = p
	}
}

func (c *pageCache) unlink(p *page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else if c.head == p {
		c.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else if c.tail == p {
		c.tail = p.prev
	}
	p.prev, p.next = nil, nil
}

func (c *pageCache) evict(p *page) {
	c.unlink(p)
	delete(c.pages, p.idx)
	c.bytes -= int64(len(p.data))
}

// Stats summarizes cache behavior.
type Stats struct {
	Hits, Misses  int64
	ResidentBytes int64
	ResidentPages int
}

func (c *pageCache) stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses, ResidentBytes: c.bytes, ResidentPages: len(c.pages)}
}
