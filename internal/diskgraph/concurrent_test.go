package diskgraph

import (
	"sync"
	"testing"

	"flos/internal/gen"
	"flos/internal/graph"
)

// TestConcurrentReaders drives many Reader views over one store at once —
// with a cache budget small enough to force constant eviction and refault —
// and checks every read against the in-memory truth. Run under -race this
// exercises the sharded page cache's locking and the singleflight dedup.
func TestConcurrentReaders(t *testing.T) {
	g, err := gen.RMAT(3000, 12000, gen.DefaultRMAT(), 42)
	if err != nil {
		t.Fatal(err)
	}
	path := writeStore(t, g, 1024)
	s, err := Open(path, 8<<10) // 8 pages across shards: heavy contention
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := s.NewReader()
			// Stride differently per reader so shard access interleaves.
			for off := 0; off < g.NumNodes(); off++ {
				v := graph.NodeID((off*(w+1) + w*131) % g.NumNodes())
				wantN, wantW := g.Neighbors(v)
				gotN, gotW := r.Neighbors(v)
				if len(gotN) != len(wantN) {
					errs <- "wrong neighbor count"
					return
				}
				for i := range wantN {
					if gotN[i] != wantN[i] || gotW[i] != wantW[i] {
						errs <- "neighbor data mismatch"
						return
					}
				}
				if r.Degree(v) != g.Degree(v) {
					errs <- "degree mismatch"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	st := s.CacheStats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("cache recorded no traffic")
	}
	if st.ResidentBytes > int64(st.Shards)*1024+1024 {
		t.Errorf("resident %d bytes over sharded budget", st.ResidentBytes)
	}
	t.Logf("cache: %d hits, %d misses, %d deduped, %d shards, %d resident",
		st.Hits, st.Misses, st.FaultsDeduped, st.Shards, st.ResidentBytes)
}
