package diskgraph

import (
	"sync"
	"testing"

	"flos/internal/gen"
	"flos/internal/graph"
)

// TestConcurrentReaders drives many Reader views over one store at once —
// with a cache budget small enough to force constant eviction and refault —
// and checks every read against the in-memory truth. Run under -race this
// exercises the sharded page cache's locking and the singleflight dedup.
func TestConcurrentReaders(t *testing.T) {
	g, err := gen.RMAT(3000, 12000, gen.DefaultRMAT(), 42)
	if err != nil {
		t.Fatal(err)
	}
	path := writeStore(t, g, 1024)
	s, err := Open(path, 8<<10) // 8 pages across shards: heavy contention
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := s.NewReader()
			// Stride differently per reader so shard access interleaves.
			for off := 0; off < g.NumNodes(); off++ {
				v := graph.NodeID((off*(w+1) + w*131) % g.NumNodes())
				wantN, wantW := g.Neighbors(v)
				gotN, gotW := r.Neighbors(v)
				if len(gotN) != len(wantN) {
					errs <- "wrong neighbor count"
					return
				}
				for i := range wantN {
					if gotN[i] != wantN[i] || gotW[i] != wantW[i] {
						errs <- "neighbor data mismatch"
						return
					}
				}
				if r.Degree(v) != g.Degree(v) {
					errs <- "degree mismatch"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	st := s.CacheStats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("cache recorded no traffic")
	}
	if st.ResidentBytes > int64(st.Shards)*1024+1024 {
		t.Errorf("resident %d bytes over sharded budget", st.ResidentBytes)
	}
	t.Logf("cache: %d hits, %d misses, %d deduped, %d shards, %d resident",
		st.Hits, st.Misses, st.FaultsDeduped, st.Shards, st.ResidentBytes)
}

// TestShardStatsUnderConcurrentReaders drives concurrent readers and checks
// the per-shard counters: they move, they stay consistent with the
// aggregate Stats, and every fault is accounted to exactly one stripe.
func TestShardStatsUnderConcurrentReaders(t *testing.T) {
	g, err := gen.RMAT(3000, 12000, gen.DefaultRMAT(), 42)
	if err != nil {
		t.Fatal(err)
	}
	path := writeStore(t, g, 1024)
	s, err := Open(path, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const readers = 8
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := s.NewReader()
			for off := 0; off < g.NumNodes(); off++ {
				v := graph.NodeID((off*(w+1) + w*131) % g.NumNodes())
				r.Neighbors(v)
			}
		}(w)
	}
	wg.Wait()

	agg := s.CacheStats()
	shards := s.ShardStats()
	if len(shards) != agg.Shards {
		t.Fatalf("ShardStats returned %d entries, aggregate says %d shards", len(shards), agg.Shards)
	}
	var hits, misses, dedups, bytes int64
	var pages, moved int
	for i, ss := range shards {
		if ss.Shard != i {
			t.Errorf("entry %d labeled shard %d", i, ss.Shard)
		}
		if ss.Hits > 0 || ss.Misses > 0 {
			moved++
		}
		hits += ss.Hits
		misses += ss.Misses
		dedups += ss.FaultsDeduped
		bytes += ss.ResidentBytes
		pages += ss.ResidentPages
	}
	if moved < 2 {
		t.Errorf("only %d of %d shards saw traffic under concurrent readers", moved, len(shards))
	}
	if hits != agg.Hits || misses != agg.Misses || dedups != agg.FaultsDeduped {
		t.Errorf("shard sums (h=%d m=%d d=%d) != aggregate (h=%d m=%d d=%d)",
			hits, misses, dedups, agg.Hits, agg.Misses, agg.FaultsDeduped)
	}
	if bytes != agg.ResidentBytes || pages != agg.ResidentPages {
		t.Errorf("shard residency (%dB/%dp) != aggregate (%dB/%dp)",
			bytes, pages, agg.ResidentBytes, agg.ResidentPages)
	}
	if misses == 0 {
		t.Error("no faults recorded at all")
	}
}
