package diskgraph

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"flos/internal/core"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
	"flos/internal/obs/cachelens"
)

func writeStore(t *testing.T, g *graph.MemGraph, pageSize int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "graph.flos")
	if err := Create(path, g, pageSize); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTripSmall(t *testing.T) {
	g := gen.PaperExample()
	path := writeStore(t, g, 4096)
	s, err := Open(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if s.NumNodes() != g.NumNodes() || s.NumEdges() != g.NumEdges() {
		t.Fatalf("shape: (%d,%d) vs (%d,%d)", s.NumNodes(), s.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		if s.Degree(id) != g.Degree(id) {
			t.Fatalf("degree mismatch at %d", v)
		}
		wantN, wantW := g.Neighbors(id)
		gotN, gotW := s.Neighbors(id)
		if !reflect.DeepEqual(append([]graph.NodeID{}, gotN...), append([]graph.NodeID{}, wantN...)) {
			t.Fatalf("node %d neighbors: %v vs %v", v, gotN, wantN)
		}
		for i := range wantW {
			if gotW[i] != wantW[i] {
				t.Fatalf("node %d weight %d: %g vs %g", v, i, gotW[i], wantW[i])
			}
		}
	}
	if s.FileSize() <= 0 {
		t.Error("zero file size")
	}
}

func TestRoundTripLargerWithTinyCache(t *testing.T) {
	g, err := gen.RMAT(3000, 12000, gen.DefaultRMAT(), 42)
	if err != nil {
		t.Fatal(err)
	}
	path := writeStore(t, g, 1024)
	// Budget of 4 pages: constant eviction pressure.
	s, err := Open(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for v := 0; v < g.NumNodes(); v += 37 {
		id := graph.NodeID(v)
		wantN, _ := g.Neighbors(id)
		gotN, _ := s.Neighbors(id)
		if len(gotN) != len(wantN) {
			t.Fatalf("node %d: %d neighbors vs %d", v, len(gotN), len(wantN))
		}
		for i := range wantN {
			if gotN[i] != wantN[i] {
				t.Fatalf("node %d neighbor %d: %d vs %d", v, i, gotN[i], wantN[i])
			}
		}
		if s.Degree(id) != g.Degree(id) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
	st := s.CacheStats()
	if st.Misses == 0 {
		t.Error("tiny cache never missed?")
	}
	if st.ResidentBytes > 4096+1024 {
		t.Errorf("resident %d bytes over budget", st.ResidentBytes)
	}
}

func TestTopDegreesMatch(t *testing.T) {
	g, err := gen.RMAT(2000, 8000, gen.DefaultRMAT(), 7)
	if err != nil {
		t.Fatal(err)
	}
	path := writeStore(t, g, 0)
	s, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := g.TopDegrees(100)
	got := s.TopDegrees(100)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("top degrees differ:\n%v\n%v", got[:5], want[:5])
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.flos")
	if err := os.WriteFile(path, []byte("this is not a store"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 0); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := os.WriteFile(path, bytes.Repeat([]byte{0}, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 0); err == nil {
		t.Fatal("zeros accepted")
	}
}

func TestOpenRejectsTruncated(t *testing.T) {
	g := gen.PaperExample()
	path := writeStore(t, g, 4096)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 0); err == nil {
		t.Fatal("truncated store accepted")
	}
}

// TestFLoSOnDiskStore is the Section 6.4 scenario: the full FLoS stack
// answering exact queries against the disk store through the graph.Graph
// interface, with results identical to the in-memory run.
func TestFLoSOnDiskStore(t *testing.T) {
	g, err := gen.RMAT(5000, 25000, gen.DefaultRMAT(), 3)
	if err != nil {
		t.Fatal(err)
	}
	path := writeStore(t, g, 8192)
	s, err := Open(path, 64<<10) // 64 KiB: heavy eviction, real paging
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	lc := graph.LargestComponentNodes(g)
	for _, kind := range []measure.Kind{measure.PHP, measure.RWR} {
		for i := 0; i < 3; i++ {
			q := lc[(i*997)%len(lc)]
			opt := core.DefaultOptions(kind, 10)
			memRes, err := core.TopK(g, q, opt)
			if err != nil {
				t.Fatal(err)
			}
			diskRes, err := core.TopK(s, q, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !measure.SameSet(measure.Nodes(memRes.TopK), measure.Nodes(diskRes.TopK)) {
				t.Fatalf("%v q=%d: disk %v != mem %v", kind, q,
					measure.Nodes(diskRes.TopK), measure.Nodes(memRes.TopK))
			}
			if diskRes.Visited != memRes.Visited {
				t.Errorf("%v q=%d: visited %d (disk) vs %d (mem)", kind, q, diskRes.Visited, memRes.Visited)
			}
		}
	}
	st := s.CacheStats()
	t.Logf("cache: %d hits, %d misses, %d resident bytes", st.Hits, st.Misses, st.ResidentBytes)
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct cache exercise: 10-byte pages over a 100-byte reader, 30-byte
	// budget → at most 3 resident pages.
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	c := newPageCache(bytes.NewReader(data), 10, 30, 100)
	for i := 0; i < 10; i++ {
		var b [10]byte
		if err := c.readAt(b[:], int64(i)*10, nil); err != nil {
			t.Fatal(err)
		}
		if b[0] != byte(i*10) {
			t.Fatalf("page %d content wrong", i)
		}
	}
	st := c.stats()
	if st.ResidentPages > 3 {
		t.Fatalf("%d resident pages with 3-page budget", st.ResidentPages)
	}
	if st.Misses != 10 {
		t.Fatalf("misses = %d, want 10 cold loads", st.Misses)
	}
	// Re-read last three pages: all hits.
	for i := 7; i < 10; i++ {
		var b [10]byte
		if err := c.readAt(b[:], int64(i)*10, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.stats().Hits; got != 3 {
		t.Fatalf("hits = %d, want 3", got)
	}
}

func TestCacheSpanningRead(t *testing.T) {
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	c := newPageCache(bytes.NewReader(data), 16, 64, 64)
	got := make([]byte, 40)
	if err := c.readAt(got, 12, nil); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != byte(12+i) {
			t.Fatalf("byte %d = %d, want %d", i, got[i], 12+i)
		}
	}
	if err := c.readAt(make([]byte, 8), 60, nil); err == nil {
		t.Fatal("read past EOF accepted")
	}
}

// TestFaultObserver verifies the Reader-level page-fault hook: cold reads
// invoke it with a positive stall duration, warm reads never invoke it, and
// observer counts line up with the cache's miss counters.
func TestFaultObserver(t *testing.T) {
	g := gen.PaperExample()
	path := writeStore(t, g, 512)
	s, err := Open(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	r := s.NewReader()
	var faults int
	var total time.Duration
	r.SetFaultObserver(func(d time.Duration) {
		faults++
		total += d
		if d < 0 {
			t.Errorf("negative fault duration %v", d)
		}
	})
	for v := 0; v < g.NumNodes(); v++ {
		r.Neighbors(graph.NodeID(v))
		r.Degree(graph.NodeID(v))
	}
	if faults == 0 {
		t.Fatal("cold scan reported zero page faults")
	}
	st := s.CacheStats()
	if int64(faults) != st.Misses+st.FaultsDeduped {
		t.Fatalf("observer saw %d faults, cache counted %d misses + %d dedups",
			faults, st.Misses, st.FaultsDeduped)
	}

	// Warm re-scan: everything resident, the observer must stay silent.
	before := faults
	for v := 0; v < g.NumNodes(); v++ {
		r.Neighbors(graph.NodeID(v))
		r.Degree(graph.NodeID(v))
	}
	if faults != before {
		t.Fatalf("warm scan invoked the fault observer %d times", faults-before)
	}

	// Clearing the observer keeps reads working.
	r.SetFaultObserver(nil)
	r.Neighbors(0)
}

// TestEvictionCountersAndHWM covers the new Stats fields: a cache too small
// for its file must report LRU evictions and a resident-pages high-water
// mark, per stripe and in the aggregate.
func TestEvictionCountersAndHWM(t *testing.T) {
	data := make([]byte, 100)
	c := newPageCache(bytes.NewReader(data), 10, 30, 100)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 10; i++ {
			var b [10]byte
			if err := c.readAt(b[:], int64(i)*10, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := c.stats()
	if st.Evictions == 0 {
		t.Fatal("10 pages through a 3-page budget evicted nothing")
	}
	if st.Evictions != st.Misses-int64(st.ResidentPages) {
		t.Fatalf("evictions %d != misses %d - resident %d", st.Evictions, st.Misses, st.ResidentPages)
	}
	if st.ResidentPagesHWM < st.ResidentPages || st.ResidentPagesHWM == 0 {
		t.Fatalf("HWM %d vs resident %d", st.ResidentPagesHWM, st.ResidentPages)
	}
	var perShard int64
	for _, ss := range c.shardStats() {
		perShard += ss.Evictions
		if ss.ResidentPagesHWM < ss.ResidentPages {
			t.Fatalf("shard %d HWM %d below resident %d", ss.Shard, ss.ResidentPagesHWM, ss.ResidentPages)
		}
	}
	if perShard != st.Evictions {
		t.Fatalf("shard evictions sum %d != aggregate %d", perShard, st.Evictions)
	}
}

// TestStoreLensIntegration attaches an analytics lens to a store with a
// deliberately undersized cache and checks the exported snapshot: geometry
// auto-fill (capacity from budget, dense page blocks), access accounting
// that matches the cache's own counters, eviction flow into the ghost list,
// and a populated heatmap.
func TestStoreLensIntegration(t *testing.T) {
	g, err := gen.RMAT(2000, 8000, gen.DefaultRMAT(), 7)
	if err != nil {
		t.Fatal(err)
	}
	path := writeStore(t, g, 512)
	s, err := Open(path, 8<<10) // 16 pages: forces eviction
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	lens := s.AttachLens(cachelens.Config{SampleRate: 1, Seed: 3})
	if s.Lens() != lens {
		t.Fatal("Lens() does not return the attached lens")
	}
	for pass := 0; pass < 2; pass++ {
		for v := 0; v < s.NumNodes(); v += 3 {
			s.Neighbors(graph.NodeID(v))
			s.Degree(graph.NodeID(v))
		}
	}

	st := s.CacheStats()
	snap := lens.Snapshot(10)
	if snap.Accesses != st.Hits+st.Misses+st.FaultsDeduped {
		t.Fatalf("lens accesses %d != cache lookups %d", snap.Accesses, st.Hits+st.Misses+st.FaultsDeduped)
	}
	if snap.Ghost.Evictions != st.Evictions {
		t.Fatalf("lens evictions %d != cache evictions %d", snap.Ghost.Evictions, st.Evictions)
	}
	if st.Evictions == 0 {
		t.Fatal("undersized cache evicted nothing")
	}
	if !snap.DenseBlocks {
		t.Fatal("page-cache lens should map blocks densely")
	}
	if snap.Capacity != 16 {
		t.Fatalf("auto-filled capacity = %d, want 16 pages", snap.Capacity)
	}
	if len(snap.HotBlocks) == 0 {
		t.Fatal("no hot blocks after thousands of reads")
	}
	if len(snap.Curve) != len(cachelens.DefaultScales) {
		t.Fatalf("curve has %d points", len(snap.Curve))
	}
	if snap.Ghost.WouldHaveHits == 0 {
		t.Fatal("re-reading the whole file through a 16-page cache produced no ghost hits")
	}
}
