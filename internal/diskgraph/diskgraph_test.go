package diskgraph

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"flos/internal/core"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
)

func writeStore(t *testing.T, g *graph.MemGraph, pageSize int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "graph.flos")
	if err := Create(path, g, pageSize); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTripSmall(t *testing.T) {
	g := gen.PaperExample()
	path := writeStore(t, g, 4096)
	s, err := Open(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if s.NumNodes() != g.NumNodes() || s.NumEdges() != g.NumEdges() {
		t.Fatalf("shape: (%d,%d) vs (%d,%d)", s.NumNodes(), s.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		if s.Degree(id) != g.Degree(id) {
			t.Fatalf("degree mismatch at %d", v)
		}
		wantN, wantW := g.Neighbors(id)
		gotN, gotW := s.Neighbors(id)
		if !reflect.DeepEqual(append([]graph.NodeID{}, gotN...), append([]graph.NodeID{}, wantN...)) {
			t.Fatalf("node %d neighbors: %v vs %v", v, gotN, wantN)
		}
		for i := range wantW {
			if gotW[i] != wantW[i] {
				t.Fatalf("node %d weight %d: %g vs %g", v, i, gotW[i], wantW[i])
			}
		}
	}
	if s.FileSize() <= 0 {
		t.Error("zero file size")
	}
}

func TestRoundTripLargerWithTinyCache(t *testing.T) {
	g, err := gen.RMAT(3000, 12000, gen.DefaultRMAT(), 42)
	if err != nil {
		t.Fatal(err)
	}
	path := writeStore(t, g, 1024)
	// Budget of 4 pages: constant eviction pressure.
	s, err := Open(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for v := 0; v < g.NumNodes(); v += 37 {
		id := graph.NodeID(v)
		wantN, _ := g.Neighbors(id)
		gotN, _ := s.Neighbors(id)
		if len(gotN) != len(wantN) {
			t.Fatalf("node %d: %d neighbors vs %d", v, len(gotN), len(wantN))
		}
		for i := range wantN {
			if gotN[i] != wantN[i] {
				t.Fatalf("node %d neighbor %d: %d vs %d", v, i, gotN[i], wantN[i])
			}
		}
		if s.Degree(id) != g.Degree(id) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
	st := s.CacheStats()
	if st.Misses == 0 {
		t.Error("tiny cache never missed?")
	}
	if st.ResidentBytes > 4096+1024 {
		t.Errorf("resident %d bytes over budget", st.ResidentBytes)
	}
}

func TestTopDegreesMatch(t *testing.T) {
	g, err := gen.RMAT(2000, 8000, gen.DefaultRMAT(), 7)
	if err != nil {
		t.Fatal(err)
	}
	path := writeStore(t, g, 0)
	s, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := g.TopDegrees(100)
	got := s.TopDegrees(100)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("top degrees differ:\n%v\n%v", got[:5], want[:5])
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.flos")
	if err := os.WriteFile(path, []byte("this is not a store"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 0); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := os.WriteFile(path, bytes.Repeat([]byte{0}, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 0); err == nil {
		t.Fatal("zeros accepted")
	}
}

func TestOpenRejectsTruncated(t *testing.T) {
	g := gen.PaperExample()
	path := writeStore(t, g, 4096)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 0); err == nil {
		t.Fatal("truncated store accepted")
	}
}

// TestFLoSOnDiskStore is the Section 6.4 scenario: the full FLoS stack
// answering exact queries against the disk store through the graph.Graph
// interface, with results identical to the in-memory run.
func TestFLoSOnDiskStore(t *testing.T) {
	g, err := gen.RMAT(5000, 25000, gen.DefaultRMAT(), 3)
	if err != nil {
		t.Fatal(err)
	}
	path := writeStore(t, g, 8192)
	s, err := Open(path, 64<<10) // 64 KiB: heavy eviction, real paging
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	lc := graph.LargestComponentNodes(g)
	for _, kind := range []measure.Kind{measure.PHP, measure.RWR} {
		for i := 0; i < 3; i++ {
			q := lc[(i*997)%len(lc)]
			opt := core.DefaultOptions(kind, 10)
			memRes, err := core.TopK(g, q, opt)
			if err != nil {
				t.Fatal(err)
			}
			diskRes, err := core.TopK(s, q, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !measure.SameSet(measure.Nodes(memRes.TopK), measure.Nodes(diskRes.TopK)) {
				t.Fatalf("%v q=%d: disk %v != mem %v", kind, q,
					measure.Nodes(diskRes.TopK), measure.Nodes(memRes.TopK))
			}
			if diskRes.Visited != memRes.Visited {
				t.Errorf("%v q=%d: visited %d (disk) vs %d (mem)", kind, q, diskRes.Visited, memRes.Visited)
			}
		}
	}
	st := s.CacheStats()
	t.Logf("cache: %d hits, %d misses, %d resident bytes", st.Hits, st.Misses, st.ResidentBytes)
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct cache exercise: 10-byte pages over a 100-byte reader, 30-byte
	// budget → at most 3 resident pages.
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	c := newPageCache(bytes.NewReader(data), 10, 30, 100)
	for i := 0; i < 10; i++ {
		var b [10]byte
		if err := c.readAt(b[:], int64(i)*10, nil); err != nil {
			t.Fatal(err)
		}
		if b[0] != byte(i*10) {
			t.Fatalf("page %d content wrong", i)
		}
	}
	st := c.stats()
	if st.ResidentPages > 3 {
		t.Fatalf("%d resident pages with 3-page budget", st.ResidentPages)
	}
	if st.Misses != 10 {
		t.Fatalf("misses = %d, want 10 cold loads", st.Misses)
	}
	// Re-read last three pages: all hits.
	for i := 7; i < 10; i++ {
		var b [10]byte
		if err := c.readAt(b[:], int64(i)*10, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.stats().Hits; got != 3 {
		t.Fatalf("hits = %d, want 3", got)
	}
}

func TestCacheSpanningRead(t *testing.T) {
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	c := newPageCache(bytes.NewReader(data), 16, 64, 64)
	got := make([]byte, 40)
	if err := c.readAt(got, 12, nil); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != byte(12+i) {
			t.Fatalf("byte %d = %d, want %d", i, got[i], 12+i)
		}
	}
	if err := c.readAt(make([]byte, 8), 60, nil); err == nil {
		t.Fatal("read past EOF accepted")
	}
}

// TestFaultObserver verifies the Reader-level page-fault hook: cold reads
// invoke it with a positive stall duration, warm reads never invoke it, and
// observer counts line up with the cache's miss counters.
func TestFaultObserver(t *testing.T) {
	g := gen.PaperExample()
	path := writeStore(t, g, 512)
	s, err := Open(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	r := s.NewReader()
	var faults int
	var total time.Duration
	r.SetFaultObserver(func(d time.Duration) {
		faults++
		total += d
		if d < 0 {
			t.Errorf("negative fault duration %v", d)
		}
	})
	for v := 0; v < g.NumNodes(); v++ {
		r.Neighbors(graph.NodeID(v))
		r.Degree(graph.NodeID(v))
	}
	if faults == 0 {
		t.Fatal("cold scan reported zero page faults")
	}
	st := s.CacheStats()
	if int64(faults) != st.Misses+st.FaultsDeduped {
		t.Fatalf("observer saw %d faults, cache counted %d misses + %d dedups",
			faults, st.Misses, st.FaultsDeduped)
	}

	// Warm re-scan: everything resident, the observer must stay silent.
	before := faults
	for v := 0; v < g.NumNodes(); v++ {
		r.Neighbors(graph.NodeID(v))
		r.Degree(graph.NodeID(v))
	}
	if faults != before {
		t.Fatalf("warm scan invoked the fault observer %d times", faults-before)
	}

	// Clearing the observer keeps reads working.
	r.SetFaultObserver(nil)
	r.Neighbors(0)
}
