// Package diskgraph is the disk-resident graph substrate standing in for
// the Neo4j 2.0 store the paper uses in Section 6.4. It keeps the entire
// graph — degrees, CSR offsets, adjacency targets and weights — in a single
// file and serves reads through an LRU page cache with a hard byte budget,
// mirroring the paper's "memory usage restricted to 2 GB" setup.
//
// The Store satisfies graph.Graph, so FLoS runs on it unmodified: exactly
// the paper's observation that FLoS "only calls some basic query functions
// provided by Neo4j, such as querying the neighbors of one node".
package diskgraph

import (
	"encoding/binary"
	"fmt"
)

// Layout of the store file (little endian):
//
//	magic   "FLOSDSK1"                                  8 B
//	n       uint64                                      8 B
//	m2      uint64  (half-edge count = 2m)              8 B
//	pageSz  uint32                                      4 B
//	topN    uint32                                      4 B
//	top     topN × {node uint32, degree float64}        topN × 12 B
//	-- sections, each 8-byte aligned --
//	degrees n × float64
//	offsets (n+1) × int64
//	targets m2 × uint32
//	weights m2 × float64

const (
	magic       = "FLOSDSK1"
	headerFixed = 8 + 8 + 8 + 4 + 4
	topEntrySz  = 12
	// DefaultPageSize is the cache page granularity. 64 KiB approximates a
	// disk-friendly read unit while keeping small-neighborhood reads cheap.
	DefaultPageSize = 64 << 10
	// maxTopDegrees caps the degree index stored in the header (used by the
	// RWR w(S̄) guard).
	maxTopDegrees = 4096
)

// layout precomputes the absolute byte offsets of every section.
type layout struct {
	n      int64
	m2     int64
	pageSz int64
	topN   int64

	degreesOff int64
	offsetsOff int64
	targetsOff int64
	weightsOff int64
	totalSize  int64
}

func newLayout(n, m2, pageSz, topN int64) layout {
	l := layout{n: n, m2: m2, pageSz: pageSz, topN: topN}
	pos := int64(headerFixed) + topN*topEntrySz
	pos = align8(pos)
	l.degreesOff = pos
	pos += n * 8
	l.offsetsOff = pos
	pos += (n + 1) * 8
	l.targetsOff = pos
	pos += m2 * 4
	pos = align8(pos)
	l.weightsOff = pos
	pos += m2 * 8
	l.totalSize = pos
	return l
}

func align8(x int64) int64 { return (x + 7) &^ 7 }

func (l layout) validate() error {
	if l.n <= 0 || l.n > 1<<31 {
		return fmt.Errorf("diskgraph: implausible node count %d", l.n)
	}
	if l.m2 < 0 || l.m2 > 1<<40 {
		return fmt.Errorf("diskgraph: implausible half-edge count %d", l.m2)
	}
	if l.pageSz < 512 || l.pageSz > 1<<26 {
		return fmt.Errorf("diskgraph: page size %d outside [512, 64Mi]", l.pageSz)
	}
	if l.topN < 0 || l.topN > maxTopDegrees {
		return fmt.Errorf("diskgraph: top-degree count %d outside [0,%d]", l.topN, maxTopDegrees)
	}
	return nil
}

func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }
func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func getU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }
