package diskgraph

import (
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"flos/internal/graph"
	"flos/internal/obs/cachelens"
)

// Store is a read-only disk-resident graph served through a byte-budgeted,
// lock-striped page cache. It implements graph.Graph. Neighbors returns
// scratch slices that are overwritten by the next Neighbors call — the same
// contract the interface documents — so the Store itself serves one reader
// at a time; concurrent queries each take their own view via NewReader,
// which shares the page cache (safe for any number of concurrent readers)
// but owns private scratch buffers.
type Store struct {
	f     *os.File
	l     layout
	cache *pageCache
	top   []graph.DegreeEntry

	// def is the Store's own reader view, backing the graph.Graph methods
	// for single-goroutine use.
	def Reader
}

var _ graph.Graph = (*Store)(nil)

// Reader is an independent view of a Store for one goroutine: it shares the
// store's page cache and metadata but owns the scratch buffers Neighbors
// returns. Concurrent queries against one Store should each hold their own
// Reader; the Readers' combined page traffic shares one byte budget.
type Reader struct {
	s        *Store
	scratchN []graph.NodeID
	scratchW []float64
	buf      []byte

	// fault, when set, observes every page-fault stall this Reader's reads
	// incur (cold disk loads and waits on another reader's in-flight load).
	fault func(time.Duration)
}

var _ graph.Graph = (*Reader)(nil)

// NewReader returns a fresh concurrent-safe view of the store.
func (s *Store) NewReader() *Reader { return &Reader{s: s} }

// NewView implements graph.Viewer: each view is an independent Reader, so
// concurrent query executors can parallelize over one Store.
func (s *Store) NewView() graph.Graph { return s.NewReader() }

// NewView implements graph.Viewer by minting a sibling Reader over the same
// store.
func (r *Reader) NewView() graph.Graph { return r.s.NewReader() }

// Open maps the store at path with the given cache budget in bytes
// (0 selects 64 MiB). The header — including the top-degree index — is read
// eagerly; everything else is paged on demand.
func Open(path string, cacheBytes int64) (*Store, error) {
	if cacheBytes <= 0 {
		cacheBytes = 64 << 20
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerFixed)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, err
	}
	if string(hdr[:8]) != magic {
		f.Close()
		return nil, fmt.Errorf("diskgraph: %s: bad magic", path)
	}
	n := int64(getU64(hdr[8:16]))
	m2 := int64(getU64(hdr[16:24]))
	pageSz := int64(getU32(hdr[24:28]))
	topN := int64(getU32(hdr[28:32]))
	l := newLayout(n, m2, pageSz, topN)
	if err := l.validate(); err != nil {
		f.Close()
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size() != l.totalSize {
		f.Close()
		return nil, fmt.Errorf("diskgraph: %s: size %d, layout wants %d", path, fi.Size(), l.totalSize)
	}
	topBuf := make([]byte, topN*topEntrySz)
	if _, err := io.ReadFull(f, topBuf); err != nil {
		f.Close()
		return nil, err
	}
	top := make([]graph.DegreeEntry, topN)
	for i := int64(0); i < topN; i++ {
		b := topBuf[i*topEntrySz:]
		top[i] = graph.DegreeEntry{
			Node:   graph.NodeID(getU32(b[0:4])),
			Degree: math.Float64frombits(getU64(b[4:12])),
		}
	}
	s := &Store{
		f:     f,
		l:     l,
		cache: newPageCache(f, pageSz, cacheBytes, l.totalSize),
		top:   top,
	}
	s.def.s = s
	return s, nil
}

// Close releases the underlying file.
func (s *Store) Close() error { return s.f.Close() }

// NumNodes returns the node count.
func (s *Store) NumNodes() int { return int(s.l.n) }

// NumEdges returns the undirected edge count.
func (s *Store) NumEdges() int64 { return s.l.m2 / 2 }

// TopDegrees serves the header's degree index.
func (s *Store) TopDegrees(k int) []graph.DegreeEntry {
	if k > len(s.top) {
		k = len(s.top)
	}
	return s.top[:k]
}

// Degree reads one float64 from the degrees section via the cache. It uses
// no scratch state and is safe for concurrent use.
func (s *Store) Degree(v graph.NodeID) float64 { return s.degree(v, nil) }

// degree is Degree with a fault observer threaded through to the page cache.
func (s *Store) degree(v graph.NodeID, onFault func(time.Duration)) float64 {
	var b [8]byte
	if err := s.cache.readAt(b[:], s.l.degreesOff+int64(v)*8, onFault); err != nil {
		panic(fmt.Sprintf("diskgraph: degree read: %v", err))
	}
	return math.Float64frombits(getU64(b[:]))
}

// Neighbors reads the CSR row of v through the store's default reader. The
// returned slices are valid until the next Neighbors call on this Store;
// concurrent callers must use NewReader.
func (s *Store) Neighbors(v graph.NodeID) ([]graph.NodeID, []float64) {
	return s.def.Neighbors(v)
}

// NumNodes returns the node count.
func (r *Reader) NumNodes() int { return r.s.NumNodes() }

// NumEdges returns the undirected edge count.
func (r *Reader) NumEdges() int64 { return r.s.NumEdges() }

// Degree reads the weighted degree of v.
func (r *Reader) Degree(v graph.NodeID) float64 { return r.s.degree(v, r.fault) }

// SetFaultObserver installs (or clears, with nil) a callback invoked with
// the stall duration of every page fault this Reader's reads incur — the
// hook the serving layer uses to attribute cold-path disk time to a query's
// trace. The observer runs on the faulting goroutine; keep it cheap. Not
// safe to call concurrently with reads on the same Reader.
func (r *Reader) SetFaultObserver(fn func(time.Duration)) { r.fault = fn }

// TopDegrees serves the header's degree index.
func (r *Reader) TopDegrees(k int) []graph.DegreeEntry { return r.s.TopDegrees(k) }

// Neighbors reads the CSR row of v. The returned slices are valid until the
// next Neighbors call on this Reader.
func (r *Reader) Neighbors(v graph.NodeID) ([]graph.NodeID, []float64) {
	s := r.s
	var ob [16]byte
	if err := s.cache.readAt(ob[:], s.l.offsetsOff+int64(v)*8, r.fault); err != nil {
		panic(fmt.Sprintf("diskgraph: offset read: %v", err))
	}
	lo := int64(getU64(ob[0:8]))
	hi := int64(getU64(ob[8:16]))
	cnt := hi - lo
	if cnt < 0 || cnt > s.l.m2 {
		panic(fmt.Sprintf("diskgraph: corrupt offsets for node %d: [%d,%d)", v, lo, hi))
	}
	if int64(cap(r.scratchN)) < cnt {
		r.scratchN = make([]graph.NodeID, cnt, 2*cnt)
		r.scratchW = make([]float64, cnt, 2*cnt)
	}
	nbrs := r.scratchN[:cnt]
	ws := r.scratchW[:cnt]

	// Targets.
	need := cnt * 4
	if int64(cap(r.buf)) < need {
		r.buf = make([]byte, need, 2*need)
	}
	tb := r.buf[:need]
	if err := s.cache.readAt(tb, s.l.targetsOff+lo*4, r.fault); err != nil {
		panic(fmt.Sprintf("diskgraph: targets read: %v", err))
	}
	for i := int64(0); i < cnt; i++ {
		nbrs[i] = graph.NodeID(getU32(tb[i*4:]))
	}
	// Weights.
	need = cnt * 8
	if int64(cap(r.buf)) < need {
		r.buf = make([]byte, need, 2*need)
	}
	wb := r.buf[:need]
	if err := s.cache.readAt(wb, s.l.weightsOff+lo*8, r.fault); err != nil {
		panic(fmt.Sprintf("diskgraph: weights read: %v", err))
	}
	for i := int64(0); i < cnt; i++ {
		ws[i] = math.Float64frombits(getU64(wb[i*8:]))
	}
	return nbrs, ws
}

// AttachLens enables cache analytics on the page cache: every page lookup
// and eviction feeds a cachelens.Lens whose miss-ratio curve, ghost list,
// heatmap, and working-set windows are exported through the returned handle.
// Zero-valued cfg fields are auto-filled from the store's geometry: Capacity
// becomes the page budget (the 1x point of the MRC) and Blocks the file's
// page count, so the heatmap indexes real page IDs. Call before serving
// traffic — attaching is not synchronized with concurrent reads — and Close
// the returned lens on shutdown when cfg.TickEvery is set.
func (s *Store) AttachLens(cfg cachelens.Config) *cachelens.Lens {
	if cfg.Capacity <= 0 {
		budget := int64(0)
		for i := range s.cache.shards {
			budget += s.cache.shards[i].budget
		}
		cfg.Capacity = int(budget / s.cache.pageSize)
	}
	if cfg.Blocks <= 0 {
		cfg.Blocks = (s.l.totalSize + s.cache.pageSize - 1) / s.cache.pageSize
	}
	lens := cachelens.New(cfg)
	s.cache.lens = lens
	return lens
}

// Lens returns the attached analytics lens, or nil when analytics are off.
func (s *Store) Lens() *cachelens.Lens { return s.cache.lens }

// CacheStats reports aggregate page-cache behavior since Open.
func (s *Store) CacheStats() Stats { return s.cache.stats() }

// ShardStats reports per-stripe page-cache behavior since Open, one entry
// per lock shard in stripe order.
func (s *Store) ShardStats() []ShardStat { return s.cache.shardStats() }

// FileSize returns the store's on-disk size in bytes (the paper's Table 7
// "disk size" column).
func (s *Store) FileSize() int64 { return s.l.totalSize }
