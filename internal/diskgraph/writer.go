package diskgraph

import (
	"bufio"
	"fmt"
	"math"
	"os"

	"flos/internal/graph"
)

// Create serializes g into a store file at path. pageSize 0 selects
// DefaultPageSize. The writer streams sequentially — it never needs the
// page cache — so graphs larger than memory can be produced by first
// building them in chunks elsewhere; for this module's experiments the
// in-memory generator output is written directly.
func Create(path string, g *graph.MemGraph, pageSize int) error {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	n := int64(g.NumNodes())
	targets := g.Targets()
	weights := g.Weights()
	offsets := g.Offsets()
	m2 := int64(len(targets))

	top := g.TopDegrees(maxTopDegrees)
	l := newLayout(n, m2, int64(pageSize), int64(len(top)))
	if err := l.validate(); err != nil {
		return err
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	written := int64(0)
	emit := func(b []byte) error {
		nn, err := w.Write(b)
		written += int64(nn)
		return err
	}

	var b8 [8]byte
	var b4 [4]byte

	// Header.
	if err := emit([]byte(magic)); err != nil {
		return fail(f, err)
	}
	putU64(b8[:], uint64(n))
	if err := emit(b8[:]); err != nil {
		return fail(f, err)
	}
	putU64(b8[:], uint64(m2))
	if err := emit(b8[:]); err != nil {
		return fail(f, err)
	}
	putU32(b4[:], uint32(pageSize))
	if err := emit(b4[:]); err != nil {
		return fail(f, err)
	}
	putU32(b4[:], uint32(len(top)))
	if err := emit(b4[:]); err != nil {
		return fail(f, err)
	}
	for _, de := range top {
		putU32(b4[:], uint32(de.Node))
		if err := emit(b4[:]); err != nil {
			return fail(f, err)
		}
		putU64(b8[:], math.Float64bits(de.Degree))
		if err := emit(b8[:]); err != nil {
			return fail(f, err)
		}
	}
	if err := pad(emit, l.degreesOff-written); err != nil {
		return fail(f, err)
	}

	// Degrees.
	for v := int64(0); v < n; v++ {
		putU64(b8[:], math.Float64bits(g.Degree(graph.NodeID(v))))
		if err := emit(b8[:]); err != nil {
			return fail(f, err)
		}
	}
	// Offsets.
	for _, o := range offsets {
		putU64(b8[:], uint64(o))
		if err := emit(b8[:]); err != nil {
			return fail(f, err)
		}
	}
	// Targets.
	for _, t := range targets {
		putU32(b4[:], uint32(t))
		if err := emit(b4[:]); err != nil {
			return fail(f, err)
		}
	}
	if err := pad(emit, l.weightsOff-written); err != nil {
		return fail(f, err)
	}
	// Weights.
	for _, wt := range weights {
		putU64(b8[:], math.Float64bits(wt))
		if err := emit(b8[:]); err != nil {
			return fail(f, err)
		}
	}
	if written != l.totalSize {
		f.Close()
		return fmt.Errorf("diskgraph: wrote %d bytes, layout says %d", written, l.totalSize)
	}
	if err := w.Flush(); err != nil {
		return fail(f, err)
	}
	return f.Close()
}

func fail(f *os.File, err error) error {
	f.Close()
	return err
}

func pad(emit func([]byte) error, count int64) error {
	if count < 0 {
		return fmt.Errorf("diskgraph: negative padding %d", count)
	}
	zeros := make([]byte, count)
	return emit(zeros)
}
