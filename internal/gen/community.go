package gen

import (
	"fmt"

	"flos/internal/graph"
)

// CommunityParams shape the Community generator.
type CommunityParams struct {
	// CommunitySize is the expected community size (nodes are partitioned
	// into ⌈n/CommunitySize⌉ consecutive groups).
	CommunitySize int
	// NearSpan is how many ring-adjacent communities count as "near".
	NearSpan int
	// PIntra, PNear, PFar partition the edge budget: fraction of edges that
	// stay inside a community, go to near communities, and jump uniformly.
	// They must sum to ~1.
	PIntra, PNear, PFar float64
	// HubBias is the probability that an endpoint inside a community is the
	// community's hub node rather than a uniform member — it produces the
	// heavy degree tail real co-purchase/social graphs show.
	HubBias float64
}

// DefaultCommunityParams mirrors the structural fingerprint of the paper's
// SNAP graphs: small dense communities arranged with spatial locality, rare
// long-range edges (keeping the diameter high — Amazon's is ≈44), and mild
// hubs.
func DefaultCommunityParams() CommunityParams {
	return CommunityParams{
		CommunitySize: 10,
		NearSpan:      3,
		PIntra:        0.75,
		PNear:         0.248,
		PFar:          0.002,
		HubBias:       0.10,
	}
}

// CommunityParamsForDensity adapts the defaults to a target average degree
// 2m/n: the community size grows with the degree so the intra-community
// edge budget stays feasible (a community of size s holds at most s(s−1)/2
// edges).
func CommunityParamsForDensity(avgDegree float64) CommunityParams {
	p := DefaultCommunityParams()
	if s := int(3 * avgDegree / 2); s > p.CommunitySize {
		p.CommunitySize = s
	}
	return p
}

// Community generates an n-node, m-edge unit-weight graph with planted
// communities on a ring. R-MAT matches the degree skew of real graphs but
// none of their clustering or diameter; this generator is the stand-in for
// the paper's real datasets (Table 4), whose community structure and high
// diameter are exactly what make local search effective for hitting-time
// measures. A ring backbone of community hubs guarantees connectivity.
func Community(n int, m int64, p CommunityParams, seed uint64) (*graph.MemGraph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: Community needs n >= 2, got %d", n)
	}
	if p.CommunitySize < 2 {
		return nil, fmt.Errorf("gen: community size %d too small", p.CommunitySize)
	}
	if s := p.PIntra + p.PNear + p.PFar; s < 0.99 || s > 1.01 {
		return nil, fmt.Errorf("gen: edge fractions sum to %g, want 1", s)
	}
	r := newRNG(seed)
	numComm := (n + p.CommunitySize - 1) / p.CommunitySize
	commLo := func(c int) int { return c * p.CommunitySize }
	commHi := func(c int) int { // exclusive
		hi := (c + 1) * p.CommunitySize
		if hi > n {
			hi = n
		}
		return hi
	}
	hubOf := func(c int) int { return commLo(c) } // first member is the hub

	b := graph.NewBuilder(n)
	seen := make(map[uint64]struct{}, m)
	addEdge := func(u, v int) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(uint32(u))<<32 | uint64(uint32(v))
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		if err := b.AddUnitEdge(int32(u), int32(v)); err != nil {
			return false
		}
		return true
	}

	// Backbone: hub ring, guaranteeing one connected component.
	for c := 0; c < numComm; c++ {
		addEdge(hubOf(c), hubOf((c+1)%numComm))
	}
	if int64(len(seen)) > m {
		return nil, fmt.Errorf("gen: edge budget %d below backbone size %d", m, len(seen))
	}

	pickIn := func(c int) int {
		lo, hi := commLo(c), commHi(c)
		if p.HubBias > 0 && r.float64() < p.HubBias {
			return hubOf(c)
		}
		return lo + r.intn(hi-lo)
	}

	attempts, maxAttempts := int64(0), 100*m+1000
	for int64(len(seen)) < m {
		attempts++
		if attempts > maxAttempts {
			return nil, fmt.Errorf("gen: Community stalled at %d/%d edges (budget too dense?)", len(seen), m)
		}
		c := r.intn(numComm)
		u := pickIn(c)
		var v int
		x := r.float64()
		switch {
		case x < p.PIntra:
			v = pickIn(c)
		case x < p.PIntra+p.PNear:
			span := p.NearSpan
			if span < 1 {
				span = 1
			}
			off := 1 + r.intn(span)
			if r.intn(2) == 0 {
				off = -off
			}
			v = pickIn(((c+off)%numComm + numComm) % numComm)
		default:
			v = r.intn(n)
		}
		addEdge(u, v)
	}
	return b.Build()
}
