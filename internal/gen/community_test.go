package gen

import (
	"testing"

	"flos/internal/graph"
)

func TestCommunityShape(t *testing.T) {
	g, err := Community(5000, 13500, DefaultCommunityParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5000 || g.NumEdges() != 13500 {
		t.Fatalf("got (%d,%d)", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	// The hub-ring backbone keeps all communities connected; a few members
	// can remain isolated (real SNAP graphs have stray components too), but
	// the giant component must dominate.
	if float64(s.LargestComp) < 0.95*float64(s.Nodes) {
		t.Errorf("largest component %d of %d — backbone failed", s.LargestComp, s.Nodes)
	}
}

func TestCommunityDeterministic(t *testing.T) {
	a, err := Community(1000, 2700, DefaultCommunityParams(), 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Community(1000, 2700, DefaultCommunityParams(), 9)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 1000; v++ {
		if a.Degree(int32(v)) != b.Degree(int32(v)) {
			t.Fatalf("same seed diverged at node %d", v)
		}
	}
}

// TestCommunityIsClustered: most edges must connect nodes of the same or
// ring-adjacent communities — the locality fingerprint that distinguishes
// this model from R-MAT.
func TestCommunityIsClustered(t *testing.T) {
	p := DefaultCommunityParams()
	g, err := Community(10000, 27000, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	numComm := (10000 + p.CommunitySize - 1) / p.CommunitySize
	localEdges := 0
	var total int64
	for v := 0; v < g.NumNodes(); v++ {
		nbrs, _ := g.Neighbors(int32(v))
		cv := v / p.CommunitySize
		for _, u := range nbrs {
			if u <= int32(v) {
				continue
			}
			total++
			cu := int(u) / p.CommunitySize
			d := cu - cv
			if d < 0 {
				d = -d
			}
			if d > numComm/2 {
				d = numComm - d
			}
			if d <= p.NearSpan {
				localEdges++
			}
		}
	}
	frac := float64(localEdges) / float64(total)
	if frac < 0.9 {
		t.Errorf("only %.2f of edges are community-local, want >= 0.9", frac)
	}
}

// TestCommunityHighDiameter: long-range edges are rare, so the graph keeps a
// large diameter — the property THT locality depends on (Amazon's true
// diameter is ~44).
func TestCommunityHighDiameter(t *testing.T) {
	g, err := Community(20000, 54000, DefaultCommunityParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	dist := graph.BFSDistances(g, 0, -1)
	maxD := int32(0)
	for _, d := range dist {
		if d > maxD {
			maxD = d
		}
	}
	if maxD < 10 {
		t.Errorf("eccentricity of node 0 = %d, want >= 10 (high-diameter stand-in)", maxD)
	}
}

func TestCommunityParamsForDensity(t *testing.T) {
	if p := CommunityParamsForDensity(5); p.CommunitySize != 10 {
		t.Errorf("low density: size %d, want default 10", p.CommunitySize)
	}
	if p := CommunityParamsForDensity(19); p.CommunitySize < 25 {
		t.Errorf("high density: size %d, want >= 25", p.CommunitySize)
	}
	// High-density params must actually generate (enough intra capacity).
	g, err := Community(4000, 38000, CommunityParamsForDensity(19), 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 38000 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestCommunityRejectsBadInput(t *testing.T) {
	if _, err := Community(1, 0, DefaultCommunityParams(), 1); err == nil {
		t.Error("n=1 accepted")
	}
	p := DefaultCommunityParams()
	p.CommunitySize = 1
	if _, err := Community(100, 200, p, 1); err == nil {
		t.Error("community size 1 accepted")
	}
	p = DefaultCommunityParams()
	p.PIntra = 0.9 // fractions no longer sum to 1
	if _, err := Community(100, 200, p, 1); err == nil {
		t.Error("bad fractions accepted")
	}
	if _, err := Community(100, 2, DefaultCommunityParams(), 1); err == nil {
		t.Error("budget below backbone accepted")
	}
}
