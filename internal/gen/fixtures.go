package gen

import (
	"flos/internal/graph"
)

// PaperExample returns the 8-node unit-weight graph of the paper's
// Figure 1(a), 0-indexed (paper node i is node i-1 here; the paper's query
// node 1 is node 0). Edges (paper numbering): 1-2, 1-3, 2-4, 3-4, 3-5, 4-6,
// 4-7, 5-6, 7-8 — the unique structure consistent with the paper's worked
// quantities: w_3 = 3 with p_{3,4} = p_{3,5} = 1/3, w_4 = 4 with
// p_{4,6} = p_{4,7} = 1/4, δS = {3,4} and δS̄ = {5,6,7} for S = {1,2,3,4},
// and Table 3's per-iteration expansion {2,3},{4},{5},{6,7},{8}.
func PaperExample() *graph.MemGraph {
	return graph.MustFromEdges(8,
		0, 1, 0, 2, 1, 3, 2, 3, 2, 4, 3, 5, 3, 6, 4, 5, 6, 7)
}

// Path returns a path graph 0-1-2-…-(n-1) with unit weights.
func Path(n int) *graph.MemGraph {
	b := graph.NewBuilder(n)
	for v := 0; v < n-1; v++ {
		if err := b.AddUnitEdge(int32(v), int32(v+1)); err != nil {
			panic(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Ring returns a cycle graph with unit weights.
func Ring(n int) *graph.MemGraph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		if err := b.AddUnitEdge(int32(v), int32((v+1)%n)); err != nil {
			panic(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Star returns a star graph: node 0 is the center, nodes 1..n-1 are leaves.
func Star(n int) *graph.MemGraph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		if err := b.AddUnitEdge(0, int32(v)); err != nil {
			panic(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Complete returns the complete graph K_n with unit weights.
func Complete(n int) *graph.MemGraph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if err := b.AddUnitEdge(int32(u), int32(v)); err != nil {
				panic(err)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Grid returns an r×c 4-neighbor grid with unit weights; node (i,j) has
// identifier i*c+j.
func Grid(r, c int) *graph.MemGraph {
	b := graph.NewBuilder(r * c)
	id := func(i, j int) int32 { return int32(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				if err := b.AddUnitEdge(id(i, j), id(i, j+1)); err != nil {
					panic(err)
				}
			}
			if i+1 < r {
				if err := b.AddUnitEdge(id(i, j), id(i+1, j)); err != nil {
					panic(err)
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Barbell returns two K_s cliques joined by a path of b bridge nodes. With
// the query in one clique it stresses the boundary bounds: the far clique is
// provably prunable once the bridge is crossed. Total nodes: 2s+b.
func Barbell(s, b int) *graph.MemGraph {
	n := 2*s + b
	bd := graph.NewBuilder(n)
	add := func(u, v int32) {
		if err := bd.AddUnitEdge(u, v); err != nil {
			panic(err)
		}
	}
	for u := 0; u < s; u++ {
		for v := u + 1; v < s; v++ {
			add(int32(u), int32(v))
		}
	}
	for u := s + b; u < n; u++ {
		for v := u + 1; v < n; v++ {
			add(int32(u), int32(v))
		}
	}
	prev := int32(s - 1)
	for i := 0; i < b; i++ {
		add(prev, int32(s+i))
		prev = int32(s + i)
	}
	add(prev, int32(s+b))
	g, err := bd.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Lollipop returns a K_s clique with a tail path of t nodes hanging off node
// 0. Hitting-time measures behave very differently on the tail than on the
// clique, making it a good adversarial fixture.
func Lollipop(s, t int) *graph.MemGraph {
	n := s + t
	b := graph.NewBuilder(n)
	add := func(u, v int32) {
		if err := b.AddUnitEdge(u, v); err != nil {
			panic(err)
		}
	}
	for u := 0; u < s; u++ {
		for v := u + 1; v < s; v++ {
			add(int32(u), int32(v))
		}
	}
	prev := int32(0)
	for i := 0; i < t; i++ {
		add(prev, int32(s+i))
		prev = int32(s + i)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// WeightedTriangle returns the 3-node graph of the paper's Figure 2 examples:
// edges 1-2 and 2-3 (0-indexed: 0-1, 1-2) with unit weights. With query node
// 0 and decay c=0.5 the exact PHP vector is [1, 2/7, 1/7], the worked example
// under Theorems 3 and 5.
func WeightedTriangle() *graph.MemGraph {
	return graph.MustFromEdges(3, 0, 1, 1, 2)
}
