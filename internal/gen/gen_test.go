package gen

import (
	"math"
	"testing"
	"testing/quick"

	"flos/internal/graph"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("same seed diverged")
		}
	}
	c := newRNG(43)
	same := 0
	a = newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() == c.next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := newRNG(0)
	if r.next() == 0 && r.next() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}

func TestRNGFloatRange(t *testing.T) {
	r := newRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.float64()
		if f < 0 || f >= 1 {
			t.Fatalf("float64 out of range: %g", f)
		}
	}
}

func TestRNGIntnUniform(t *testing.T) {
	r := newRNG(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := newRNG(5)
	p := r.perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate %d in permutation", v)
		}
		seen[v] = true
	}
}

func TestErdosShape(t *testing.T) {
	g, err := Erdos(1000, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1000 || g.NumEdges() != 5000 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosDeterministic(t *testing.T) {
	a, _ := Erdos(200, 800, 9)
	b, _ := Erdos(200, 800, 9)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed gave different edge counts")
	}
	for v := 0; v < a.NumNodes(); v++ {
		if a.Degree(int32(v)) != b.Degree(int32(v)) {
			t.Fatalf("same seed gave different degree at %d", v)
		}
	}
	c, _ := Erdos(200, 800, 10)
	diff := false
	for v := 0; v < a.NumNodes() && !diff; v++ {
		if a.Degree(int32(v)) != c.Degree(int32(v)) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds gave identical graphs")
	}
}

func TestErdosRejectsImpossible(t *testing.T) {
	if _, err := Erdos(1, 0, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Erdos(4, 100, 1); err == nil {
		t.Error("m > n(n-1)/2 accepted")
	}
}

func TestRMATShape(t *testing.T) {
	g, err := RMAT(1000, 5000, DefaultRMAT(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1000 || g.NumEdges() != 5000 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRMATSkew checks that R-MAT produces a heavier-tailed degree
// distribution than Erdős–Rényi at the same size — the property the paper's
// Section 6.3 discussion (hub nodes) relies on.
func TestRMATSkew(t *testing.T) {
	er, err := Erdos(4096, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := RMAT(4096, 20000, DefaultRMAT(), 3)
	if err != nil {
		t.Fatal(err)
	}
	maxDeg := func(g *graph.MemGraph) float64 { return g.TopDegrees(1)[0].Degree }
	if maxDeg(rm) < 2*maxDeg(er) {
		t.Errorf("R-MAT max degree %g not clearly above ER max degree %g",
			maxDeg(rm), maxDeg(er))
	}
}

func TestRMATRejectsBadParams(t *testing.T) {
	if _, err := RMAT(100, 200, RMATParams{A: 0.9, B: 0.2, C: 0.2, D: 0.2}, 1); err == nil {
		t.Error("params summing to 1.5 accepted")
	}
	if _, err := RMAT(100, 200, RMATParams{A: 1, B: 0, C: 0, D: 0}, 1); err == nil {
		t.Error("zero quadrant accepted")
	}
	if _, err := RMAT(1, 0, DefaultRMAT(), 1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestPaperExample(t *testing.T) {
	g := PaperExample()
	if g.NumNodes() != 8 || g.NumEdges() != 9 {
		t.Fatalf("paper example: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	// Paper: node 3 (0-indexed 2) has weighted degree 3 and p(3→4) = 1/3.
	if d := g.Degree(2); d != 3 {
		t.Fatalf("degree of paper node 3 = %g, want 3", d)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFixtureShapes(t *testing.T) {
	cases := []struct {
		name  string
		g     *graph.MemGraph
		nodes int
		edges int64
	}{
		{"path", Path(5), 5, 4},
		{"ring", Ring(6), 6, 6},
		{"star", Star(7), 7, 6},
		{"complete", Complete(5), 5, 10},
		{"grid", Grid(3, 4), 12, 17},
		{"barbell", Barbell(4, 2), 10, 15},
		{"lollipop", Lollipop(4, 3), 7, 9},
		{"triangle", WeightedTriangle(), 3, 2},
	}
	for _, c := range cases {
		if c.g.NumNodes() != c.nodes || c.g.NumEdges() != c.edges {
			t.Errorf("%s: got (%d,%d), want (%d,%d)",
				c.name, c.g.NumNodes(), c.g.NumEdges(), c.nodes, c.edges)
		}
		if err := c.g.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
		s := graph.ComputeStats(c.g)
		if s.Components != 1 {
			t.Errorf("%s: %d components, want connected", c.name, s.Components)
		}
	}
}

// TestPropertyGeneratorsProduceValidGraphs: both generators yield
// structurally valid graphs for arbitrary seeds.
func TestPropertyGeneratorsProduceValidGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		er, err := Erdos(100, 300, seed)
		if err != nil || er.Validate() != nil || er.NumEdges() != 300 {
			return false
		}
		rm, err := RMAT(100, 300, DefaultRMAT(), seed)
		if err != nil || rm.Validate() != nil || rm.NumEdges() != 300 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
