package gen

import (
	"fmt"

	"flos/internal/graph"
)

// WattsStrogatz generates a small-world graph: a ring lattice where every
// node connects to its k/2 nearest neighbors on each side, with each edge
// rewired to a uniform endpoint with probability beta. Low beta keeps the
// lattice's high clustering and high diameter; beta → 1 approaches a random
// graph. It is the classic knob for studying how FLoS's locality degrades
// as shortcuts are added.
func WattsStrogatz(n, k int, beta float64, seed uint64) (*graph.MemGraph, error) {
	if n < 4 {
		return nil, fmt.Errorf("gen: WattsStrogatz needs n >= 4, got %d", n)
	}
	if k < 2 || k%2 != 0 || k >= n {
		return nil, fmt.Errorf("gen: WattsStrogatz needs even 2 <= k < n, got %d", k)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: rewiring probability %g outside [0,1]", beta)
	}
	r := newRNG(seed)
	type ek struct{ a, b int32 }
	key := func(u, v int32) ek {
		if u > v {
			u, v = v, u
		}
		return ek{u, v}
	}
	edges := make(map[ek]struct{}, n*k/2)
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			u := int32(v)
			w := int32((v + j) % n)
			if beta > 0 && r.float64() < beta {
				// Rewire the far endpoint; retry on self loops/duplicates,
				// keeping the edge in place if the lattice is too saturated.
				done := false
				for attempt := 0; attempt < 32; attempt++ {
					cand := int32(r.intn(n))
					if cand == u {
						continue
					}
					if _, dup := edges[key(u, cand)]; dup {
						continue
					}
					w = cand
					done = true
					break
				}
				_ = done
			}
			if _, dup := edges[key(u, w)]; !dup {
				edges[key(u, w)] = struct{}{}
			}
		}
	}
	b := graph.NewBuilder(n)
	for e := range edges {
		if err := b.AddUnitEdge(e.a, e.b); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// BarabasiAlbert generates a preferential-attachment scale-free graph: each
// new node attaches m edges to existing nodes with probability proportional
// to their current degree. Degrees follow a power law with exponent ≈ 3 —
// heavier-tailed than R-MAT's — making it the adversarial fixture for the
// w(S̄) hub guard of FLoS_RWR.
func BarabasiAlbert(n, m int, seed uint64) (*graph.MemGraph, error) {
	if m < 1 || n <= m {
		return nil, fmt.Errorf("gen: BarabasiAlbert needs 1 <= m < n, got m=%d n=%d", m, n)
	}
	r := newRNG(seed)
	b := graph.NewBuilder(n)
	// Repeated-endpoints trick: each edge endpoint appears once in `targets`
	// per incident edge, so uniform sampling from it is degree-proportional.
	targets := make([]int32, 0, 2*m*n)
	// Seed clique on the first m+1 nodes.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			if err := b.AddUnitEdge(int32(u), int32(v)); err != nil {
				return nil, err
			}
			targets = append(targets, int32(u), int32(v))
		}
	}
	for v := m + 1; v < n; v++ {
		// Keep insertion order deterministic: map iteration order would
		// reshuffle `targets` and break seed reproducibility.
		chosen := make([]int32, 0, m)
		seen := map[int32]bool{}
		for len(chosen) < m {
			t := targets[r.intn(len(targets))]
			if t != int32(v) && !seen[t] {
				seen[t] = true
				chosen = append(chosen, t)
			}
		}
		for _, u := range chosen {
			if err := b.AddUnitEdge(int32(v), u); err != nil {
				return nil, err
			}
			targets = append(targets, int32(v), u)
		}
	}
	return b.Build()
}
