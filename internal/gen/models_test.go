package gen

import (
	"testing"

	"flos/internal/graph"
)

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0: exact ring lattice, every node has degree k.
	g, err := WattsStrogatz(100, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 || g.NumEdges() != 200 {
		t.Fatalf("lattice shape (%d,%d)", g.NumNodes(), g.NumEdges())
	}
	for v := 0; v < 100; v++ {
		if d := g.Degree(int32(v)); d != 4 {
			t.Fatalf("lattice degree(%d) = %g", v, d)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// High clustering, high diameter — the small-world starting point.
	if c := graph.ClusteringCoefficient(g, 0, 1); c < 0.4 {
		t.Errorf("lattice clustering = %g, want >= 0.4", c)
	}
}

func TestWattsStrogatzRewiringShrinksDiameter(t *testing.T) {
	lattice, err := WattsStrogatz(400, 4, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	rewired, err := WattsStrogatz(400, 4, 0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	dl := graph.EffectiveDiameter(lattice, 8, 1)
	dr := graph.EffectiveDiameter(rewired, 8, 1)
	if dr >= dl {
		t.Errorf("rewiring did not shrink diameter: %d -> %d", dl, dr)
	}
}

func TestWattsStrogatzValidation(t *testing.T) {
	if _, err := WattsStrogatz(3, 2, 0, 1); err == nil {
		t.Error("n=3 accepted")
	}
	if _, err := WattsStrogatz(10, 3, 0, 1); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := WattsStrogatz(10, 10, 0, 1); err == nil {
		t.Error("k >= n accepted")
	}
	if _, err := WattsStrogatz(10, 2, 1.5, 1); err == nil {
		t.Error("beta > 1 accepted")
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	g, err := BarabasiAlbert(2000, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Seed clique C(4,2)=6 edges plus 3 per subsequent node.
	want := int64(6 + 3*(2000-4))
	if g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	if s.Components != 1 {
		t.Errorf("BA graph disconnected: %d components", s.Components)
	}
	// Preferential attachment produces a pronounced hub.
	if s.MaxDegree < 10*s.MedianDegree {
		t.Errorf("max degree %g not hub-like vs median %g", s.MaxDegree, s.MedianDegree)
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	if _, err := BarabasiAlbert(5, 0, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := BarabasiAlbert(3, 3, 1); err == nil {
		t.Error("n <= m accepted")
	}
}

func TestModelsDeterministic(t *testing.T) {
	a, _ := WattsStrogatz(200, 6, 0.1, 9)
	b, _ := WattsStrogatz(200, 6, 0.1, 9)
	for v := 0; v < 200; v++ {
		if a.Degree(int32(v)) != b.Degree(int32(v)) {
			t.Fatal("WS same seed diverged")
		}
	}
	c, _ := BarabasiAlbert(300, 2, 9)
	d, _ := BarabasiAlbert(300, 2, 9)
	for v := 0; v < 300; v++ {
		if c.Degree(int32(v)) != d.Degree(int32(v)) {
			t.Fatal("BA same seed diverged")
		}
	}
}
