package gen

import (
	"fmt"

	"flos/internal/graph"
)

// Erdos generates an Erdős–Rényi G(n, M) random graph — the paper's "RAND"
// model — with exactly m distinct undirected unit-weight edges (no self
// loops, no duplicates). A Hamiltonian-path backbone is NOT added: like
// GTgraph's random generator, isolated nodes may occur at low density, and
// the workload generator samples query nodes from the largest component.
func Erdos(n int, m int64, seed uint64) (*graph.MemGraph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: Erdos needs n >= 2, got %d", n)
	}
	maxEdges := int64(n) * int64(n-1) / 2
	if m > maxEdges {
		return nil, fmt.Errorf("gen: Erdos m=%d exceeds max %d for n=%d", m, maxEdges, n)
	}
	r := newRNG(seed)
	b := graph.NewBuilder(n)
	seen := make(map[uint64]struct{}, m)
	for int64(len(seen)) < m {
		u := int32(r.intn(n))
		v := int32(r.intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		if err := b.AddUnitEdge(u, v); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// RMATParams are the quadrant probabilities of the recursive matrix model.
// They must be positive and sum to 1. GTgraph's defaults are
// a=0.45, b=0.15, c=0.15, d=0.25.
type RMATParams struct {
	A, B, C, D float64
}

// DefaultRMAT matches the GTgraph R-MAT defaults the paper uses.
func DefaultRMAT() RMATParams { return RMATParams{A: 0.45, B: 0.15, C: 0.15, D: 0.25} }

// RMAT generates an R-MAT scale-free graph [4] with n nodes (rounded up to a
// power of two internally, then relabeled back into 0..n-1) and m distinct
// undirected unit-weight edges. Node identifiers are randomly permuted so
// that identifier locality does not leak the recursive structure — matching
// GTgraph's permute option and preventing accidental cache-friendliness in
// benchmarks.
func RMAT(n int, m int64, p RMATParams, seed uint64) (*graph.MemGraph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: RMAT needs n >= 2, got %d", n)
	}
	if s := p.A + p.B + p.C + p.D; s < 0.999 || s > 1.001 || p.A <= 0 || p.B <= 0 || p.C <= 0 || p.D <= 0 {
		return nil, fmt.Errorf("gen: RMAT params %+v must be positive and sum to 1", p)
	}
	levels := 0
	for 1<<levels < n {
		levels++
	}
	r := newRNG(seed)
	perm := r.perm(n)
	b := graph.NewBuilder(n)
	seen := make(map[uint64]struct{}, m)
	attempts := int64(0)
	maxAttempts := 100*m + 1000 // duplicate-heavy corners of the model can stall
	for int64(len(seen)) < m {
		attempts++
		if attempts > maxAttempts {
			return nil, fmt.Errorf("gen: RMAT stalled after %d attempts at %d/%d edges (graph too dense for the skew?)",
				attempts, len(seen), m)
		}
		var u, v int
		for l := 0; l < levels; l++ {
			// Noise on the quadrant probabilities, as in the original R-MAT
			// paper, prevents exact ties from producing degenerate structure.
			x := r.float64()
			a := p.A * (0.95 + 0.1*r.float64())
			bq := p.B * (0.95 + 0.1*r.float64())
			cq := p.C * (0.95 + 0.1*r.float64())
			dq := p.D * (0.95 + 0.1*r.float64())
			norm := a + bq + cq + dq
			x *= norm
			switch {
			case x < a:
				// upper-left: nothing to add
			case x < a+bq:
				v |= 1 << l
			case x < a+bq+cq:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
		}
		if u >= n || v >= n || u == v {
			continue
		}
		pu, pv := perm[u], perm[v]
		if pu > pv {
			pu, pv = pv, pu
		}
		key := uint64(pu)<<32 | uint64(uint32(pv))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		if err := b.AddUnitEdge(pu, pv); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
