// Package gen generates the synthetic graphs the paper evaluates on:
// Erdős–Rényi random graphs ("RAND", [7]) and R-MAT scale-free graphs [4],
// matching its use of the GTgraph generator, plus the small fixture graphs
// used in the paper's running examples and in tests.
//
// All generators are deterministic given a seed, so every figure can be
// regenerated bit-identically.
package gen

// rng is a splitmix64 pseudo-random generator. It is tiny, fast, has
// full-period 64-bit state, and — unlike math/rand's global state — gives the
// generators reproducibility independent of call order elsewhere in the
// program.
type rng struct{ state uint64 }

// newRNG seeds a generator. Seed 0 is remapped so the stream is never the
// all-zero fixed point of a lazily-seeded generator.
func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{state: seed}
}

// next returns the next 64 uniform bits.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0, n). n must be positive.
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("gen: intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method keeps the distribution exact.
	bound := uint64(n)
	for {
		x := r.next()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// perm returns a uniformly random permutation of 0..n-1 (Fisher–Yates).
func (r *rng) perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
