package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Builder accumulates undirected edges and produces an immutable MemGraph.
// Duplicate edges are merged by summing their weights; self loops are
// rejected at Add time. Builders are not safe for concurrent use.
type Builder struct {
	n     int
	us    []NodeID
	vs    []NodeID
	ws    []float64
	fixed bool // n was given up front; Add may not grow it
}

// NewBuilder returns a Builder for a graph with exactly n nodes
// (identifiers 0..n-1). Adding an edge outside that range is an error.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n, fixed: true}
}

// NewGrowingBuilder returns a Builder whose node count is the largest
// identifier seen plus one. Convenient for loading edge lists whose node
// count is not known in advance.
func NewGrowingBuilder() *Builder { return &Builder{} }

// AddEdge records the undirected edge {u, v} with the given positive weight.
func (b *Builder) AddEdge(u, v NodeID, w float64) error {
	if u == v {
		return fmt.Errorf("graph: self loop on node %d", u)
	}
	if u < 0 || v < 0 {
		return fmt.Errorf("graph: negative node id in edge (%d,%d)", u, v)
	}
	if !(w > 0) || math.IsInf(w, 1) {
		return fmt.Errorf("graph: weight %g on edge (%d,%d) is not a positive finite number", w, u, v)
	}
	if b.fixed {
		if int(u) >= b.n || int(v) >= b.n {
			return fmt.Errorf("graph: edge (%d,%d) outside fixed node range [0,%d)", u, v, b.n)
		}
	} else {
		if int(u) >= b.n {
			b.n = int(u) + 1
		}
		if int(v) >= b.n {
			b.n = int(v) + 1
		}
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, w)
	return nil
}

// AddUnitEdge records the undirected edge {u, v} with weight 1.
func (b *Builder) AddUnitEdge(u, v NodeID) error { return b.AddEdge(u, v, 1) }

// NumPendingEdges returns how many (possibly duplicate) edges have been
// added so far.
func (b *Builder) NumPendingEdges() int { return len(b.us) }

// Build produces the immutable CSR graph. Duplicate edges are merged by
// summing weights. Build may be called once; the builder must be discarded
// afterwards.
func (b *Builder) Build() (*MemGraph, error) {
	if b.n == 0 {
		return nil, errors.New("graph: empty graph")
	}
	n := b.n
	m := len(b.us)

	// Merge duplicate undirected edges in canonical (min, max) orientation
	// FIRST, then emit both half edges from the single merged weight.
	// Merging per direction instead would sum the duplicates in two
	// different orders and could leave the two halves differing in the last
	// ulp — an asymmetry that propagates into transition probabilities.
	type fullEdge struct {
		u, v NodeID
		w    float64
	}
	edges := make([]fullEdge, 0, m)
	for i := 0; i < m; i++ {
		u, v := b.us[i], b.vs[i]
		if u > v {
			u, v = v, u
		}
		edges = append(edges, fullEdge{u, v, b.ws[i]})
	}
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	merged := edges[:0]
	for _, e := range edges {
		if k := len(merged); k > 0 && merged[k-1].u == e.u && merged[k-1].v == e.v {
			merged[k-1].w += e.w
			if math.IsInf(merged[k-1].w, 1) {
				return nil, fmt.Errorf("graph: summed weight of edge (%d,%d) overflows", e.u, e.v)
			}
		} else {
			merged = append(merged, e)
		}
	}

	type halfEdge struct {
		src, dst NodeID
		w        float64
	}
	halves := make([]halfEdge, 0, 2*len(merged))
	for _, e := range merged {
		halves = append(halves,
			halfEdge{e.u, e.v, e.w},
			halfEdge{e.v, e.u, e.w})
	}
	sort.Slice(halves, func(i, j int) bool {
		if halves[i].src != halves[j].src {
			return halves[i].src < halves[j].src
		}
		return halves[i].dst < halves[j].dst
	})

	g := &MemGraph{
		offsets: make([]int64, n+1),
		targets: make([]NodeID, len(halves)),
		weights: make([]float64, len(halves)),
		degrees: make([]float64, n),
		nEdges:  int64(len(halves)) / 2,
	}
	for i, h := range halves {
		g.offsets[h.src+1]++
		g.targets[i] = h.dst
		g.weights[i] = h.w
		g.degrees[h.src] += h.w
	}
	for v := 0; v < n; v++ {
		g.offsets[v+1] += g.offsets[v]
		if math.IsInf(g.degrees[v], 1) {
			return nil, fmt.Errorf("graph: weighted degree of node %d overflows", v)
		}
	}
	g.buildTopDegrees()
	return g, nil
}

// FromCSR wraps pre-built CSR arrays in a MemGraph. The arrays are adopted,
// not copied; the caller must not modify them afterwards. degrees may be nil,
// in which case it is computed. The adjacency must already contain both
// half edges of every undirected edge.
func FromCSR(offsets []int64, targets []NodeID, weights []float64, degrees []float64) (*MemGraph, error) {
	if len(offsets) < 2 {
		return nil, errors.New("graph: FromCSR needs at least one node")
	}
	n := len(offsets) - 1
	if offsets[0] != 0 {
		return nil, errors.New("graph: FromCSR offsets must start at 0")
	}
	for v := 0; v < n; v++ {
		if offsets[v+1] < offsets[v] {
			return nil, fmt.Errorf("graph: FromCSR offsets not monotone at node %d", v)
		}
	}
	if int64(len(targets)) != offsets[n] || len(weights) != len(targets) {
		return nil, errors.New("graph: FromCSR array lengths disagree with offsets")
	}
	for i, t := range targets {
		if t < 0 || int(t) >= n {
			return nil, fmt.Errorf("graph: FromCSR target %d out of range at entry %d", t, i)
		}
	}
	if degrees == nil {
		degrees = make([]float64, n)
		for v := 0; v < n; v++ {
			for i := offsets[v]; i < offsets[v+1]; i++ {
				degrees[v] += weights[i]
			}
		}
	}
	g := &MemGraph{
		offsets: offsets,
		targets: targets,
		weights: weights,
		degrees: degrees,
		nEdges:  offsets[n] / 2,
	}
	g.buildTopDegrees()
	return g, nil
}

// FromEdges builds a unit-weight graph with n nodes from a flat list of
// node pairs: pairs[2i], pairs[2i+1] is the i-th edge. It exists for
// concise test fixtures.
func FromEdges(n int, pairs ...NodeID) (*MemGraph, error) {
	if len(pairs)%2 != 0 {
		return nil, errors.New("graph: FromEdges needs an even number of endpoints")
	}
	b := NewBuilder(n)
	for i := 0; i < len(pairs); i += 2 {
		if err := b.AddUnitEdge(pairs[i], pairs[i+1]); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// MustFromEdges is FromEdges that panics on error; for test fixtures.
func MustFromEdges(n int, pairs ...NodeID) *MemGraph {
	g, err := FromEdges(n, pairs...)
	if err != nil {
		panic(err)
	}
	return g
}
