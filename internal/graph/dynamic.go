package graph

import (
	"fmt"
	"sort"
	"sync"
)

// DynamicGraph is a mutable overlay over an immutable base graph: edges can
// be added and removed without rebuilding the CSR arrays. It implements
// Graph, so every query algorithm runs on it unchanged.
//
// It exists to exercise the paper's core motivation: precompute-based
// methods (K-dash's factorization, LS clustering, GE embeddings) are
// invalidated by any edge change and "the precomputing step needs to be
// repeated whenever the graph changes" (§1), while FLoS reads the current
// topology at query time and needs nothing rebuilt. The ablation benchmarks
// measure exactly that contrast.
//
// Neighbors allocates when v's adjacency is modified (merging base and
// overlay); untouched nodes are served zero-copy from the base. Not safe
// for concurrent mutation; concurrent reads between mutations are safe —
// merged adjacency is materialized into fresh per-call slices (never shared
// scratch) and the lazy TopDegrees rebuild is mutex-guarded.
type DynamicGraph struct {
	base *MemGraph

	// added[v] lists overlay edges incident to v (both directions kept).
	added map[NodeID][]halfEdge
	// removed marks base edges deleted from the view.
	removed map[edgeKey]bool
	// degDelta accumulates weighted-degree changes per node.
	degDelta map[NodeID]float64

	edgeDelta int64

	// topMu guards the lazy topCache rebuild: TopDegrees is a read in the
	// Graph contract, so concurrent readers must not race on the rebuild.
	topMu    sync.Mutex
	topDirty bool
	topCache []DegreeEntry
}

type halfEdge struct {
	to NodeID
	w  float64
}

type edgeKey struct{ a, b NodeID }

func keyOf(u, v NodeID) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

var _ Graph = (*DynamicGraph)(nil)

// NewDynamicGraph wraps base. The base must not be modified afterwards.
func NewDynamicGraph(base *MemGraph) *DynamicGraph {
	return &DynamicGraph{
		base:     base,
		added:    map[NodeID][]halfEdge{},
		removed:  map[edgeKey]bool{},
		degDelta: map[NodeID]float64{},
		topDirty: false,
	}
}

// NumNodes returns the (fixed) node count.
func (g *DynamicGraph) NumNodes() int { return g.base.NumNodes() }

// NumEdges returns the current undirected edge count.
func (g *DynamicGraph) NumEdges() int64 { return g.base.NumEdges() + g.edgeDelta }

// baseEdgeWeight returns the base weight of {u,v}, 0 if absent.
func (g *DynamicGraph) baseEdgeWeight(u, v NodeID) float64 {
	nbrs, ws := g.base.Neighbors(u)
	// CSR rows are sorted by target; binary search.
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	if i < len(nbrs) && nbrs[i] == v {
		return ws[i]
	}
	return 0
}

// HasEdge reports whether {u,v} exists in the current view. The overlay is
// consulted first: a re-added edge can coexist with a `removed` mask that
// only hides the base copy.
func (g *DynamicGraph) HasEdge(u, v NodeID) bool {
	for _, h := range g.added[u] {
		if h.to == v {
			return true
		}
	}
	if g.removed[keyOf(u, v)] {
		return false
	}
	return g.baseEdgeWeight(u, v) > 0
}

// AddEdge inserts the undirected edge {u,v} with the given weight. Adding
// an edge that already exists is an error (use RemoveEdge first to change a
// weight).
func (g *DynamicGraph) AddEdge(u, v NodeID, w float64) error {
	n := NodeID(g.NumNodes())
	if u == v || u < 0 || v < 0 || u >= n || v >= n {
		return fmt.Errorf("graph: invalid edge (%d,%d)", u, v)
	}
	if w <= 0 {
		return fmt.Errorf("graph: non-positive weight %g", w)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: edge (%d,%d) already exists", u, v)
	}
	k := keyOf(u, v)
	if g.removed[k] {
		// Re-adding a removed base edge with a possibly different weight:
		// keep it in the overlay, leave the base copy masked.
		delete(g.removed, k)
		bw := g.baseEdgeWeight(u, v)
		if bw == w {
			g.degDelta[u] += w
			g.degDelta[v] += w
			g.edgeDelta++
			g.topDirty = true
			return nil
		}
		g.removed[k] = true // keep masking the base copy
	}
	g.added[u] = append(g.added[u], halfEdge{to: v, w: w})
	g.added[v] = append(g.added[v], halfEdge{to: u, w: w})
	g.degDelta[u] += w
	g.degDelta[v] += w
	g.edgeDelta++
	g.topDirty = true
	return nil
}

// RemoveEdge deletes the undirected edge {u,v} from the view.
func (g *DynamicGraph) RemoveEdge(u, v NodeID) error {
	if !g.HasEdge(u, v) {
		return fmt.Errorf("graph: edge (%d,%d) does not exist", u, v)
	}
	var w float64
	// Overlay copy?
	if hs, ok := g.added[u]; ok {
		for i, h := range hs {
			if h.to == v {
				w = h.w
				g.added[u] = append(hs[:i:i], hs[i+1:]...)
				break
			}
		}
	}
	if w > 0 {
		hs := g.added[v]
		for i, h := range hs {
			if h.to == u {
				g.added[v] = append(hs[:i:i], hs[i+1:]...)
				break
			}
		}
	} else {
		w = g.baseEdgeWeight(u, v)
		g.removed[keyOf(u, v)] = true
	}
	g.degDelta[u] -= w
	g.degDelta[v] -= w
	g.edgeDelta--
	g.topDirty = true
	return nil
}

// Degree returns the current weighted degree.
func (g *DynamicGraph) Degree(v NodeID) float64 {
	return g.base.Degree(v) + g.degDelta[v]
}

// Neighbors returns the current adjacency of v. If v's adjacency is
// unmodified the base slices are returned zero-copy; otherwise the merge is
// materialized into fresh slices owned by the caller. The merge never writes
// shared state, so concurrent readers of overlay-touched nodes are safe.
func (g *DynamicGraph) Neighbors(v NodeID) ([]NodeID, []float64) {
	baseN, baseW := g.base.Neighbors(v)
	extra := g.added[v]
	touched := len(extra) > 0
	if !touched {
		for _, u := range baseN {
			if g.removed[keyOf(v, u)] {
				touched = true
				break
			}
		}
	}
	if !touched {
		return baseN, baseW
	}
	nbrs := make([]NodeID, 0, len(baseN)+len(extra))
	ws := make([]float64, 0, len(baseN)+len(extra))
	for i, u := range baseN {
		if !g.removed[keyOf(v, u)] {
			nbrs = append(nbrs, u)
			ws = append(ws, baseW[i])
		}
	}
	for _, h := range extra {
		nbrs = append(nbrs, h.to)
		ws = append(ws, h.w)
	}
	return nbrs, ws
}

// TopDegrees recomputes the degree index lazily after mutations. The rebuild
// is mutex-guarded because this is a read in the Graph contract and may be
// called by many readers at once.
func (g *DynamicGraph) TopDegrees(k int) []DegreeEntry {
	g.topMu.Lock()
	if g.topCache == nil || g.topDirty {
		g.topDirty = false
		n := g.NumNodes()
		degs := make([]float64, n)
		for v := 0; v < n; v++ {
			degs[v] = g.Degree(NodeID(v))
		}
		g.topCache = TopDegreeIndex(degs)
	}
	top := g.topCache
	g.topMu.Unlock()
	if k > len(top) {
		k = len(top)
	}
	return top[:k]
}

// Freeze materializes the current view into a fresh immutable MemGraph.
func (g *DynamicGraph) Freeze() (*MemGraph, error) {
	b := NewBuilder(g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		nbrs, ws := g.Neighbors(NodeID(v))
		for i, u := range nbrs {
			if u > NodeID(v) {
				if err := b.AddEdge(NodeID(v), u, ws[i]); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build()
}
