package graph

import (
	"sync"
	"testing"
)

// TestDynamicGraphConcurrentReads locks in the fixed read contract: between
// mutations, any number of goroutines may call Neighbors, Degree, and
// TopDegrees concurrently — including on overlay-touched nodes, whose merged
// adjacency used to be materialized into shared scratch buffers and whose
// TopDegrees rebuild used to race. Run with -race (CI does), this test fails
// on the old implementation and passes on the allocation-local one.
func TestDynamicGraphConcurrentReads(t *testing.T) {
	base := MustFromEdges(8,
		0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 0, 0, 4)
	g := NewDynamicGraph(base)
	// Touch several rows so the merge path (not the zero-copy path) is what
	// the readers exercise, and remove a base edge so the removed-mask path
	// runs too.
	if err := g.AddEdge(1, 5, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 6, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge(0, 4); err != nil {
		t.Fatal(err)
	}

	wantN, wantW := g.Neighbors(1)
	wantDeg := g.Degree(1)
	wantTop := g.TopDegrees(4)

	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				for v := NodeID(0); v < 8; v++ {
					nbrs, ws := g.Neighbors(v)
					if len(nbrs) != len(ws) {
						t.Error("adjacency slices disagree in length")
						return
					}
					var sum float64
					for _, w := range ws {
						sum += w
					}
					if d := g.Degree(v); d != sum {
						t.Errorf("node %d: degree %g != row sum %g", v, d, sum)
						return
					}
				}
				top := g.TopDegrees(4)
				if len(top) != len(wantTop) {
					t.Errorf("TopDegrees length changed: %d != %d", len(top), len(wantTop))
					return
				}
				for i := range top {
					if top[i] != wantTop[i] {
						t.Errorf("TopDegrees[%d] = %+v, want %+v", i, top[i], wantTop[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// Reads after the concurrent phase still see the same merged view.
	gotN, gotW := g.Neighbors(1)
	if len(gotN) != len(wantN) || len(gotW) != len(wantW) {
		t.Fatalf("merged adjacency changed shape: %v/%v vs %v/%v", gotN, gotW, wantN, wantW)
	}
	for i := range gotN {
		if gotN[i] != wantN[i] || gotW[i] != wantW[i] {
			t.Fatalf("merged adjacency changed: %v/%v vs %v/%v", gotN, gotW, wantN, wantW)
		}
	}
	if g.Degree(1) != wantDeg {
		t.Fatalf("degree changed: %g != %g", g.Degree(1), wantDeg)
	}
}
