package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func dynBase(t *testing.T) *MemGraph {
	t.Helper()
	return MustFromEdges(6, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5)
}

func TestDynamicPassThrough(t *testing.T) {
	base := dynBase(t)
	d := NewDynamicGraph(base)
	if d.NumNodes() != 6 || d.NumEdges() != 5 {
		t.Fatalf("shape (%d,%d)", d.NumNodes(), d.NumEdges())
	}
	for v := 0; v < 6; v++ {
		bn, _ := base.Neighbors(NodeID(v))
		dn, _ := d.Neighbors(NodeID(v))
		if len(bn) != len(dn) {
			t.Fatalf("node %d adjacency differs", v)
		}
		if base.Degree(NodeID(v)) != d.Degree(NodeID(v)) {
			t.Fatalf("node %d degree differs", v)
		}
	}
}

func TestDynamicAddRemove(t *testing.T) {
	d := NewDynamicGraph(dynBase(t))
	if err := d.AddEdge(0, 5, 2.5); err != nil {
		t.Fatal(err)
	}
	if !d.HasEdge(0, 5) || !d.HasEdge(5, 0) {
		t.Fatal("added edge missing")
	}
	if d.NumEdges() != 6 {
		t.Fatalf("edges = %d", d.NumEdges())
	}
	if got := d.Degree(0); got != 3.5 {
		t.Fatalf("degree(0) = %g, want 3.5", got)
	}
	nbrs, ws := d.Neighbors(0)
	if len(nbrs) != 2 {
		t.Fatalf("neighbors(0) = %v", nbrs)
	}
	found := false
	for i, u := range nbrs {
		if u == 5 && ws[i] == 2.5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("edge 0-5 not served: %v %v", nbrs, ws)
	}

	if err := d.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if d.HasEdge(1, 2) || d.NumEdges() != 5 {
		t.Fatal("base edge not removed")
	}
	if got := d.Degree(1); got != 1 {
		t.Fatalf("degree(1) = %g, want 1", got)
	}
	nbrs, _ = d.Neighbors(1)
	if len(nbrs) != 1 || nbrs[0] != 0 {
		t.Fatalf("neighbors(1) = %v", nbrs)
	}

	// Remove the overlay edge again.
	if err := d.RemoveEdge(0, 5); err != nil {
		t.Fatal(err)
	}
	if d.HasEdge(0, 5) || d.NumEdges() != 4 {
		t.Fatal("overlay edge not removed")
	}
}

func TestDynamicReAddRemovedEdge(t *testing.T) {
	d := NewDynamicGraph(dynBase(t))
	if err := d.RemoveEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	// Same weight: unmasks the base copy.
	if err := d.AddEdge(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	if !d.HasEdge(2, 3) || d.NumEdges() != 5 {
		t.Fatal("re-add same weight failed")
	}
	if d.Degree(2) != 2 {
		t.Fatalf("degree(2) = %g", d.Degree(2))
	}
	// Different weight: masked base + overlay copy.
	if err := d.RemoveEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(2, 3, 7); err != nil {
		t.Fatal(err)
	}
	nbrs, ws := d.Neighbors(2)
	sum := 0.0
	cnt := 0
	for i, u := range nbrs {
		if u == 3 {
			cnt++
			sum += ws[i]
		}
	}
	if cnt != 1 || sum != 7 {
		t.Fatalf("re-add new weight: count %d weight %g", cnt, sum)
	}
	if d.Degree(2) != 8 {
		t.Fatalf("degree(2) = %g, want 8", d.Degree(2))
	}
}

func TestDynamicErrors(t *testing.T) {
	d := NewDynamicGraph(dynBase(t))
	if err := d.AddEdge(0, 0, 1); err == nil {
		t.Error("self loop accepted")
	}
	if err := d.AddEdge(0, 9, 1); err == nil {
		t.Error("out of range accepted")
	}
	if err := d.AddEdge(0, 1, 1); err == nil {
		t.Error("duplicate accepted")
	}
	if err := d.AddEdge(0, 3, -1); err == nil {
		t.Error("negative weight accepted")
	}
	if err := d.RemoveEdge(0, 3); err == nil {
		t.Error("removing non-edge accepted")
	}
}

func TestDynamicTopDegreesRefresh(t *testing.T) {
	d := NewDynamicGraph(dynBase(t))
	top := d.TopDegrees(1)
	if top[0].Degree != 2 {
		t.Fatalf("initial top degree %g", top[0].Degree)
	}
	for _, v := range []NodeID{2, 3, 4, 5} {
		if !d.HasEdge(0, v) {
			if err := d.AddEdge(0, v, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	top = d.TopDegrees(1)
	if top[0].Node != 0 || top[0].Degree != 5 {
		t.Fatalf("top after adds = %+v, want node 0 degree 5", top[0])
	}
}

func TestDynamicFreezeMatchesView(t *testing.T) {
	d := NewDynamicGraph(dynBase(t))
	if err := d.AddEdge(0, 4, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	frozen, err := d.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if frozen.NumEdges() != d.NumEdges() {
		t.Fatalf("frozen edges %d vs %d", frozen.NumEdges(), d.NumEdges())
	}
	for v := 0; v < d.NumNodes(); v++ {
		if frozen.Degree(NodeID(v)) != d.Degree(NodeID(v)) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
	if err := frozen.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDynamicMatchesRebuild: a random mutation sequence applied to a
// DynamicGraph gives the same view as rebuilding from scratch.
func TestPropertyDynamicMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := randomGraph(t, 20, 30, seed)
		d := NewDynamicGraph(base)
		// Shadow edge set.
		type ek struct{ a, b NodeID }
		shadow := map[ek]float64{}
		for v := 0; v < base.NumNodes(); v++ {
			nbrs, ws := base.Neighbors(NodeID(v))
			for i, u := range nbrs {
				if u > NodeID(v) {
					shadow[ek{NodeID(v), u}] = ws[i]
				}
			}
		}
		for step := 0; step < 30; step++ {
			u := NodeID(rng.Intn(20))
			v := NodeID(rng.Intn(20))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if _, ok := shadow[ek{u, v}]; ok {
				if rng.Intn(2) == 0 {
					if err := d.RemoveEdge(u, v); err != nil {
						return false
					}
					delete(shadow, ek{u, v})
				}
			} else {
				w := 0.5 + rng.Float64()
				if err := d.AddEdge(u, v, w); err != nil {
					return false
				}
				shadow[ek{u, v}] = w
			}
		}
		// Compare view against shadow.
		var count int64
		for v := 0; v < d.NumNodes(); v++ {
			nbrs, ws := d.Neighbors(NodeID(v))
			var deg float64
			for i, u := range nbrs {
				a, b := NodeID(v), u
				if a > b {
					a, b = b, a
				}
				w, ok := shadow[ek{a, b}]
				if !ok || w != ws[i] {
					return false
				}
				deg += ws[i]
				if u > NodeID(v) {
					count++
				}
			}
			if diff := deg - d.Degree(NodeID(v)); diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return count == int64(len(shadow)) && d.NumEdges() == int64(len(shadow))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
