package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets: the two parsers consume external bytes and must never
// panic; any graph they accept must pass structural validation. Run with
// `go test -fuzz=FuzzReadEdgeList ./internal/graph` to explore beyond the
// seed corpus; plain `go test` replays the seeds.

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n0 1 2.5\n")
	f.Add("0 0\n")
	f.Add("a b c\n")
	f.Add("0 1\n\n\n2 3 -1\n")
	f.Add("999999999999 2\n")
	f.Add("0 1 1e308\n0 1 1e308\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		if g.NumNodes() == 0 {
			t.Fatal("accepted an empty graph")
		}
		// Structural invariants must hold for anything accepted. (Validate
		// tolerates summed duplicate weights up to float noise.)
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v\ninput: %q", err, in)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a genuine serialization and a few corruptions of it.
	g := MustFromEdges(4, 0, 1, 1, 2, 2, 3)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(append([]byte("FLOSCSR1"), bytes.Repeat([]byte{0xFF}, 64)...))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		// Whatever decodes must at least be internally consistent enough to
		// serve reads without panicking.
		n := g.NumNodes()
		for v := 0; v < n && v < 64; v++ {
			nbrs, ws := g.Neighbors(NodeID(v))
			if len(nbrs) != len(ws) {
				t.Fatal("ragged adjacency")
			}
			_ = g.Degree(NodeID(v))
		}
	})
}
