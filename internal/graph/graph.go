// Package graph provides the weighted undirected graph substrate used by
// every other package in this module.
//
// Two implementations of the Graph interface exist: the in-memory CSR graph
// defined here (MemGraph) and the disk-resident paged store in
// internal/diskgraph. Algorithms such as FLoS only consume the interface, so
// they run unmodified on either backend — exactly the property the paper
// exploits when it moves from in-memory graphs to Neo4j-backed ones
// (Section 6.4).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node. Node identifiers are dense: a graph with n nodes
// uses identifiers 0..n-1. 32 bits comfortably covers the paper's largest
// graph (64 * 2^20 nodes).
type NodeID = int32

// DegreeEntry pairs a node with its weighted degree. Slices of DegreeEntry
// returned by TopDegrees are sorted by non-increasing degree.
type DegreeEntry struct {
	Node   NodeID
	Degree float64
}

// Graph is the read interface every proximity algorithm consumes.
//
// Neighbors returns the full adjacency of v: parallel slices of neighbor
// identifiers and edge weights. Implementations may reuse the returned
// slices on the next Neighbors call (the disk store serves them from a page
// cache); callers that need the data beyond the next call must copy it.
//
// Degree returns the weighted degree w_v = Σ_{u∈N_v} w_vu. It is a cheap
// metadata lookup on every implementation, mirroring the degree statistic a
// graph database maintains.
//
// TopDegrees returns up to k nodes with the largest weighted degrees, in
// non-increasing order. FLoS_RWR uses it to maintain w(S̄), the maximum
// degree among unvisited nodes (Section 5.6). Implementations may return
// fewer than k entries; the first entry, if any, carries the global maximum
// degree.
type Graph interface {
	// NumNodes returns the number of nodes n; valid identifiers are 0..n-1.
	NumNodes() int
	// NumEdges returns the number of undirected edges.
	NumEdges() int64
	// Neighbors returns the adjacency list of v.
	Neighbors(v NodeID) (nbrs []NodeID, weights []float64)
	// Degree returns the weighted degree of v.
	Degree(v NodeID) float64
	// TopDegrees returns up to k largest-degree nodes, non-increasing.
	TopDegrees(k int) []DegreeEntry
}

// StableNeighbors is the optional capability of graphs whose Neighbors
// slices stay valid (and immutable) for the life of the graph, rather than
// being served from a reusable scratch buffer or page cache. Consumers that
// would otherwise defensively copy adjacency — the FLoS engines copy two
// slices per visited node — may alias the returned slices directly when
// this capability reports true.
type StableNeighbors interface {
	// StableNeighbors reports that every slice returned by Neighbors
	// remains valid and unchanged until the graph itself is released.
	StableNeighbors() bool
}

// HasStableNeighbors reports whether g advertises the StableNeighbors
// capability.
func HasStableNeighbors(g Graph) bool {
	s, ok := g.(StableNeighbors)
	return ok && s.StableNeighbors()
}

// Snapshotter is the optional capability of graph backends whose topology
// can change between queries (livegraph.LiveGraph). AcquireSnapshot pins the
// current immutable point-in-time view and returns it together with a
// release function; the search engines pin one snapshot per query, so a
// whole search always sees a single consistent topology even while writers
// publish new snapshots concurrently. Release must be called exactly once
// when the query is done; it never blocks.
type Snapshotter interface {
	// AcquireSnapshot pins and returns the current immutable snapshot.
	AcquireSnapshot() (Graph, func())
}

// Viewer is the optional capability of graph backends that can hand out
// independent concurrent-safe read views sharing the underlying storage.
// A backend whose Graph handle is itself safe for concurrent readers (the
// immutable MemGraph) returns itself; backends with per-handle scratch
// state (the disk store) return a fresh handle. Concurrent query executors
// (core.Querier, qserve.Pool) take one view per worker; a backend without
// this capability is assumed non-concurrent-safe and gets serialized.
type Viewer interface {
	// NewView returns a read view safe for use by one more goroutine.
	NewView() Graph
}

// MemGraph is an immutable in-memory undirected graph in compressed sparse
// row (CSR) form. Both directions of every undirected edge are stored, so
// Neighbors(v) is a contiguous slice lookup.
type MemGraph struct {
	offsets []int64   // len n+1; adjacency of v is targets[offsets[v]:offsets[v+1]]
	targets []NodeID  // len 2m
	weights []float64 // len 2m, parallel to targets
	degrees []float64 // len n; cached weighted degrees
	top     []DegreeEntry
	nEdges  int64
}

var _ Graph = (*MemGraph)(nil)

// topDegreeCache is how many of the largest-degree nodes a MemGraph keeps
// pre-sorted for TopDegrees. FLoS_RWR only ever needs the first unvisited
// entry, and the visited set is tiny, so a short prefix suffices; if it is
// ever exhausted the global maximum (entry 0) is still a valid bound.
const topDegreeCache = 4096

// NumNodes returns the number of nodes.
func (g *MemGraph) NumNodes() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges.
func (g *MemGraph) NumEdges() int64 { return g.nEdges }

// Neighbors returns the adjacency of v as subslices of the CSR arrays. The
// slices are immutable views; they stay valid for the life of the graph.
func (g *MemGraph) Neighbors(v NodeID) ([]NodeID, []float64) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	return g.targets[lo:hi], g.weights[lo:hi]
}

// StableNeighbors reports that Neighbors returns immutable CSR subslices,
// letting the search engines skip their defensive adjacency copies.
func (g *MemGraph) StableNeighbors() bool { return true }

// NewView returns g itself: an immutable MemGraph is safe for any number of
// concurrent readers.
func (g *MemGraph) NewView() Graph { return g }

// Degree returns the weighted degree of v.
func (g *MemGraph) Degree(v NodeID) float64 { return g.degrees[v] }

// NumNeighbors returns the unweighted degree (adjacency length) of v.
func (g *MemGraph) NumNeighbors(v NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// TopDegrees returns up to k largest-degree nodes in non-increasing order.
func (g *MemGraph) TopDegrees(k int) []DegreeEntry {
	if k > len(g.top) {
		k = len(g.top)
	}
	return g.top[:k]
}

// Offsets exposes the raw CSR offset array. It is used by the disk-store
// writer to serialize a MemGraph without an extra copy.
func (g *MemGraph) Offsets() []int64 { return g.offsets }

// Targets exposes the raw CSR target array; see Offsets.
func (g *MemGraph) Targets() []NodeID { return g.targets }

// Weights exposes the raw CSR weight array; see Offsets.
func (g *MemGraph) Weights() []float64 { return g.weights }

// buildTopDegrees computes the cached degree prefix.
func (g *MemGraph) buildTopDegrees() {
	g.top = TopDegreeIndex(g.degrees)
}

// TopDegreeIndex computes the canonical pre-sorted degree prefix every graph
// implementation in this module serves TopDegrees from: all nodes ordered by
// (degree descending, node ascending), truncated to the standard cache
// length. Sharing one implementation is what keeps TopDegrees — and with it
// the RWR w(S̄) guard and every downstream query result — byte-identical
// across MemGraph, DynamicGraph, and live-graph snapshots built over the
// same degree vector.
func TopDegreeIndex(degrees []float64) []DegreeEntry {
	n := len(degrees)
	k := topDegreeCache
	if k > n {
		k = n
	}
	// Partial selection: collect all entries, sort, keep prefix. n is at most
	// tens of millions and this runs once at construction.
	entries := make([]DegreeEntry, n)
	for v := 0; v < n; v++ {
		entries[v] = DegreeEntry{Node: NodeID(v), Degree: degrees[v]}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Degree != entries[j].Degree {
			return entries[i].Degree > entries[j].Degree
		}
		return entries[i].Node < entries[j].Node
	})
	return append([]DegreeEntry(nil), entries[:k]...)
}

// Validate checks structural invariants: sorted offsets, in-range targets,
// positive weights, symmetric adjacency, no self loops. It is O(m log m) and
// intended for tests and data loading, not hot paths.
func (g *MemGraph) Validate() error {
	n := g.NumNodes()
	if len(g.offsets) == 0 || g.offsets[0] != 0 {
		return errors.New("graph: offsets must start at 0")
	}
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at node %d", v)
		}
	}
	if g.offsets[n] != int64(len(g.targets)) {
		return fmt.Errorf("graph: offsets[n]=%d != len(targets)=%d", g.offsets[n], len(g.targets))
	}
	type half struct {
		u, v NodeID
		w    float64
	}
	halves := make([]half, 0, len(g.targets))
	for v := 0; v < n; v++ {
		nbrs, ws := g.Neighbors(NodeID(v))
		var sum float64
		for i, u := range nbrs {
			if u < 0 || int(u) >= n {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d", v, u)
			}
			if u == NodeID(v) {
				return fmt.Errorf("graph: self loop at node %d", v)
			}
			if ws[i] <= 0 {
				return fmt.Errorf("graph: non-positive weight %g on edge (%d,%d)", ws[i], v, u)
			}
			sum += ws[i]
			halves = append(halves, half{NodeID(v), u, ws[i]})
		}
		if d := g.degrees[v]; !almostEqual(d, sum) {
			return fmt.Errorf("graph: cached degree %g != recomputed %g at node %d", d, sum, v)
		}
	}
	sort.Slice(halves, func(i, j int) bool {
		if halves[i].u != halves[j].u {
			return halves[i].u < halves[j].u
		}
		return halves[i].v < halves[j].v
	})
	for _, h := range halves {
		j := sort.Search(len(halves), func(i int) bool {
			if halves[i].u != h.v {
				return halves[i].u >= h.v
			}
			return halves[i].v >= h.u
		})
		if j >= len(halves) || halves[j].u != h.v || halves[j].v != h.u || !almostEqual(halves[j].w, h.w) {
			return fmt.Errorf("graph: edge (%d,%d) has no symmetric counterpart", h.u, h.v)
		}
	}
	return nil
}

func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	if b > scale {
		scale = b
	} else if -b > scale {
		scale = -b
	}
	return d <= 1e-9*(1+scale)
}
