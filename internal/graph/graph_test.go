package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// paperGraph is an 8-node unit-weight fixture: edges
// 1-2, 1-3, 2-3, 3-4, 4-5, 4-6, 4-7, 5-6, 7-8 (renumbered to 0-based).
func paperGraph(t testing.TB) *MemGraph {
	t.Helper()
	g, err := FromEdges(8,
		0, 1, 0, 2, 1, 2, 2, 3, 3, 4, 3, 5, 3, 6, 4, 5, 6, 7)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestBuilderBasic(t *testing.T) {
	g := paperGraph(t)
	if got := g.NumNodes(); got != 8 {
		t.Fatalf("NumNodes = %d, want 8", got)
	}
	if got := g.NumEdges(); got != 9 {
		t.Fatalf("NumEdges = %d, want 9", got)
	}
	nbrs, ws := g.Neighbors(3)
	if len(nbrs) != 4 {
		t.Fatalf("node 3 neighbors = %v, want 4 of them", nbrs)
	}
	wantN := []NodeID{2, 4, 5, 6}
	if !reflect.DeepEqual(nbrs, wantN) {
		t.Errorf("node 3 neighbors = %v, want %v", nbrs, wantN)
	}
	for _, w := range ws {
		if w != 1 {
			t.Errorf("unit graph has weight %g", w)
		}
	}
	if d := g.Degree(3); d != 4 {
		t.Errorf("Degree(3) = %g, want 4", d)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(3)
	for _, e := range [][2]NodeID{{0, 1}, {1, 0}, {0, 1}, {1, 2}} {
		if err := b.AddEdge(e[0], e[1], 2); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 after merging", g.NumEdges())
	}
	_, ws := g.Neighbors(0)
	if len(ws) != 1 || ws[0] != 6 {
		t.Fatalf("merged weight = %v, want [6]", ws)
	}
	if d := g.Degree(1); d != 8 {
		t.Fatalf("Degree(1) = %g, want 8", d)
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(4)
	if err := b.AddEdge(1, 1, 1); err == nil {
		t.Error("self loop accepted")
	}
	if err := b.AddEdge(0, 4, 1); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := b.AddEdge(-1, 2, 1); err == nil {
		t.Error("negative id accepted")
	}
	if err := b.AddEdge(0, 1, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := b.AddEdge(0, 1, -0.5); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestGrowingBuilder(t *testing.T) {
	b := NewGrowingBuilder()
	if err := b.AddUnitEdge(5, 9); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", g.NumNodes())
	}
}

func TestTopDegrees(t *testing.T) {
	// Star: center 0 with 5 leaves, plus an extra edge between leaves 1-2.
	g := MustFromEdges(6, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 1, 2)
	top := g.TopDegrees(3)
	if len(top) != 3 {
		t.Fatalf("TopDegrees(3) returned %d entries", len(top))
	}
	if top[0].Node != 0 || top[0].Degree != 5 {
		t.Errorf("top[0] = %+v, want node 0 degree 5", top[0])
	}
	if top[1].Degree != 2 || top[2].Degree != 2 {
		t.Errorf("next entries = %+v, want degree-2 nodes", top[1:])
	}
	for i := 1; i < len(top); i++ {
		if top[i].Degree > top[i-1].Degree {
			t.Errorf("TopDegrees not sorted at %d", i)
		}
	}
}

func TestFromCSRRoundTrip(t *testing.T) {
	g := paperGraph(t)
	g2, err := FromCSR(g.Offsets(), g.Targets(), g.Weights(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(NodeID(v)) != g2.Degree(NodeID(v)) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := paperGraph(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestEdgeListParsesWeightsAndComments(t *testing.T) {
	in := "# comment\n% other comment\n0 1 2.5\n\n1 2\n2 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (self loop dropped)", g.NumEdges())
	}
	_, ws := g.Neighbors(0)
	if ws[0] != 2.5 {
		t.Fatalf("weight = %g, want 2.5", ws[0])
	}
}

func TestEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "0 b\n", "0 1 x\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := randomGraph(t, 200, 600, 7)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph file at all"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestStats(t *testing.T) {
	g := paperGraph(t)
	s := ComputeStats(g)
	if s.Nodes != 8 || s.Edges != 9 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Components != 1 || s.LargestComp != 8 {
		t.Errorf("components = %d largest = %d, want 1/8", s.Components, s.LargestComp)
	}
	if s.MaxDegree != 4 || s.MinDegree != 1 {
		t.Errorf("degree range = [%g,%g], want [1,4]", s.MinDegree, s.MaxDegree)
	}
	if s.Density != 2.25 {
		t.Errorf("density = %g, want 2.25", s.Density)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestStatsDisconnected(t *testing.T) {
	g := MustFromEdges(5, 0, 1, 2, 3) // node 4 isolated
	s := ComputeStats(g)
	if s.Components != 3 {
		t.Errorf("components = %d, want 3", s.Components)
	}
	if s.Isolated != 1 {
		t.Errorf("isolated = %d, want 1", s.Isolated)
	}
	if s.LargestComp != 2 {
		t.Errorf("largest = %d, want 2", s.LargestComp)
	}
}

func TestBFSDistances(t *testing.T) {
	g := paperGraph(t)
	dist := BFSDistances(g, 0, -1)
	want := []int32{0, 1, 1, 2, 3, 3, 3, 4}
	if !reflect.DeepEqual(dist, want) {
		t.Fatalf("dist = %v, want %v", dist, want)
	}
	capped := BFSDistances(g, 0, 2)
	for v, d := range capped {
		if want[v] <= 2 && d != want[v] {
			t.Errorf("capped dist[%d] = %d, want %d", v, d, want[v])
		}
		if want[v] > 2 && d != -1 {
			t.Errorf("capped dist[%d] = %d, want -1", v, d)
		}
	}
}

func TestBFSRegionAndKHop(t *testing.T) {
	g := paperGraph(t)
	region := BFSRegion(g, 0, 4)
	if len(region) < 4 || region[0] != 0 {
		t.Fatalf("region = %v", region)
	}
	hood := KHopNeighborhood(g, 0, 2)
	want := map[NodeID]bool{0: true, 1: true, 2: true, 3: true}
	if len(hood) != len(want) {
		t.Fatalf("2-hop hood = %v", hood)
	}
	for _, v := range hood {
		if !want[v] {
			t.Errorf("unexpected node %d in 2-hop hood", v)
		}
	}
}

func TestSubgraph(t *testing.T) {
	g := paperGraph(t)
	sg, back, err := Subgraph(g, []NodeID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumNodes() != 4 {
		t.Fatalf("subgraph nodes = %d", sg.NumNodes())
	}
	// Induced edges among {0,1,2,3}: 0-1, 0-2, 1-2, 2-3.
	if sg.NumEdges() != 4 {
		t.Fatalf("subgraph edges = %d, want 4", sg.NumEdges())
	}
	if !reflect.DeepEqual(back, []NodeID{0, 1, 2, 3}) {
		t.Fatalf("back map = %v", back)
	}
	if err := sg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLargestComponentNodes(t *testing.T) {
	g := MustFromEdges(7, 0, 1, 1, 2, 3, 4) // comps {0,1,2}, {3,4}, {5}, {6}
	lc := LargestComponentNodes(g)
	sort.Slice(lc, func(i, j int) bool { return lc[i] < lc[j] })
	if !reflect.DeepEqual(lc, []NodeID{0, 1, 2}) {
		t.Fatalf("largest component = %v", lc)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := MustFromEdges(6, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5)
	h := DegreeHistogram(g)
	// Center has 5 neighbors (bucket 2), leaves have 1 (bucket 0).
	if h[0] != 5 {
		t.Errorf("bucket0 = %d, want 5", h[0])
	}
	if h[2] != 1 {
		t.Errorf("bucket2 = %d, want 1", h[2])
	}
}

// randomGraph builds a connected-ish random graph for property tests: a ring
// ensuring connectivity plus extra random chords with random weights.
func randomGraph(t testing.TB, n, extra int, seed int64) *MemGraph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		if err := b.AddEdge(NodeID(v), NodeID((v+1)%n), 1+rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < extra; i++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if err := b.AddEdge(u, v, 0.5+rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func assertSameGraph(t *testing.T, a, b *MemGraph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)",
			a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	for v := 0; v < a.NumNodes(); v++ {
		an, aw := a.Neighbors(NodeID(v))
		bn, bw := b.Neighbors(NodeID(v))
		if !reflect.DeepEqual(an, bn) {
			t.Fatalf("node %d neighbors differ: %v vs %v", v, an, bn)
		}
		for i := range aw {
			if diff := aw[i] - bw[i]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("node %d weight %d differs: %g vs %g", v, i, aw[i], bw[i])
			}
		}
	}
}

// TestPropertyDegreeIsNeighborSum: for arbitrary built graphs the cached
// degree equals the sum of incident weights.
func TestPropertyDegreeIsNeighborSum(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, 50, 100, seed)
		for v := 0; v < g.NumNodes(); v++ {
			_, ws := g.Neighbors(NodeID(v))
			var sum float64
			for _, w := range ws {
				sum += w
			}
			d := g.Degree(NodeID(v))
			if diff := d - sum; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBinaryRoundTrip: serialization is lossless for arbitrary
// random graphs.
func TestPropertyBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, 30, 60, seed)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if g.NumNodes() != g2.NumNodes() || g.NumEdges() != g2.NumEdges() {
			return false
		}
		for v := 0; v < g.NumNodes(); v++ {
			if g.Degree(NodeID(v)) != g2.Degree(NodeID(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySymmetry: Validate passes (symmetry holds) for arbitrary
// builder outputs.
func TestPropertySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, 40, 80, seed)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
