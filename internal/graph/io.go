package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Edge-list text format: one edge per line, "u v" or "u v w", '#'-prefixed
// comment lines ignored. This matches the SNAP download format the paper's
// real datasets ship in, so a user with the original Amazon/DBLP/Youtube/
// LiveJournal files can load them directly.

// ReadEdgeList parses a text edge list from r. Missing weights default to 1.
func ReadEdgeList(r io.Reader) (*MemGraph, error) {
	b := NewGrowingBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'u v [w]', got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %v", lineNo, fields[1], err)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, fields[2], err)
			}
		}
		if u == v {
			continue // SNAP files occasionally contain self loops; drop them
		}
		if err := b.AddEdge(NodeID(u), NodeID(v), w); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}

// LoadEdgeList reads a text edge list file; see ReadEdgeList.
func LoadEdgeList(path string) (*MemGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadEdgeList(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	return g, nil
}

// WriteEdgeList writes g as a text edge list (each undirected edge once,
// smaller endpoint first). Unit weights are omitted.
func WriteEdgeList(w io.Writer, g Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	n := g.NumNodes()
	fmt.Fprintf(bw, "# nodes=%d edges=%d\n", n, g.NumEdges())
	for v := 0; v < n; v++ {
		nbrs, ws := g.Neighbors(NodeID(v))
		for i, u := range nbrs {
			if u <= NodeID(v) {
				continue
			}
			if ws[i] == 1 {
				fmt.Fprintf(bw, "%d %d\n", v, u)
			} else {
				fmt.Fprintf(bw, "%d %d %g\n", v, u, ws[i])
			}
		}
	}
	return bw.Flush()
}

// Binary CSR format, little endian:
//
//	magic "FLOSCSR1" (8 bytes)
//	n     uint64
//	m2    uint64 (number of half edges = 2m)
//	offsets [n+1]uint64
//	targets [m2]uint32
//	weights [m2]float64
//
// It exists so large synthetic graphs can be generated once and re-loaded by
// benches without paying the generator cost per run.

const csrMagic = "FLOSCSR1"

// WriteBinary serializes g in the binary CSR format.
func WriteBinary(w io.Writer, g *MemGraph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(csrMagic); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(g.NumNodes()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(g.targets)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, o := range g.offsets {
		binary.LittleEndian.PutUint64(buf[:], uint64(o))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	for _, t := range g.targets {
		binary.LittleEndian.PutUint32(buf[:4], uint32(t))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	for _, wt := range g.weights {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(wt))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*MemGraph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(csrMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != csrMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(hdr[0:8])
	m2 := binary.LittleEndian.Uint64(hdr[8:16])
	if n == 0 || n > 1<<31 || m2 > 1<<40 {
		return nil, fmt.Errorf("graph: implausible header n=%d m2=%d", n, m2)
	}
	// Grow the arrays chunk by chunk as bytes actually arrive: a hostile
	// header can declare billions of entries, and allocating up front would
	// OOM before the truncated body is noticed.
	const chunk = 1 << 16
	var buf [8]byte
	offsets := make([]int64, 0, min64(int64(n)+1, chunk))
	for i := uint64(0); i <= n; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, err
		}
		offsets = append(offsets, int64(binary.LittleEndian.Uint64(buf[:])))
	}
	targets := make([]NodeID, 0, min64(int64(m2), chunk))
	for i := uint64(0); i < m2; i++ {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, err
		}
		targets = append(targets, NodeID(binary.LittleEndian.Uint32(buf[:4])))
	}
	weights := make([]float64, 0, min64(int64(m2), chunk))
	for i := uint64(0); i < m2; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, err
		}
		weights = append(weights, math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
	}
	return FromCSR(offsets, targets, weights, nil)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// SaveBinary writes g to path in the binary CSR format.
func SaveBinary(path string, g *MemGraph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a graph saved by SaveBinary.
func LoadBinary(path string) (*MemGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
