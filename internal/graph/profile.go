package graph

// Structural profiling beyond basic stats: clustering coefficient and
// effective diameter. These are the two fingerprints that separate real
// social/co-purchase networks (and the Community stand-in) from R-MAT and
// Erdős–Rényi graphs, and they are what the locality of FLoS feeds on — see
// DESIGN.md §3.

// ClusteringCoefficient estimates the average local clustering coefficient
// by sampling up to sampleSize nodes deterministically (seeded). For a node
// with d ≥ 2 neighbors it counts the fraction of neighbor pairs that are
// themselves connected; nodes with d < 2 contribute 0.
func ClusteringCoefficient(g Graph, sampleSize int, seed uint64) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	if sampleSize <= 0 || sampleSize > n {
		sampleSize = n
	}
	state := seed
	if state == 0 {
		state = 0x9e3779b97f4a7c15
	}
	nextNode := func() NodeID {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return NodeID(z % uint64(n))
	}
	var sum float64
	adj := map[NodeID]bool{}
	for s := 0; s < sampleSize; s++ {
		v := nextNode()
		nbrs, _ := g.Neighbors(v)
		// Copy: the Graph contract lets implementations reuse the slice on
		// the nested Neighbors calls below.
		mine := append([]NodeID(nil), nbrs...)
		d := len(mine)
		if d < 2 {
			continue
		}
		for k := range adj {
			delete(adj, k)
		}
		for _, u := range mine {
			adj[u] = true
		}
		links := 0
		for _, u := range mine {
			un, _ := g.Neighbors(u)
			for _, w := range un {
				if w > u && adj[w] {
					links++
				}
			}
		}
		sum += 2 * float64(links) / (float64(d) * float64(d-1))
	}
	return sum / float64(sampleSize)
}

// EffectiveDiameter estimates the 90th-percentile pairwise hop distance by
// BFS from `sources` sampled start nodes (seeded). It returns the smallest
// hop count h such that at least 90% of reachable pairs sampled lie within
// h hops.
func EffectiveDiameter(g Graph, sources int, seed uint64) int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	if sources <= 0 || sources > n {
		sources = n
	}
	state := seed
	if state == 0 {
		state = 0x9e3779b97f4a7c15
	}
	var counts []int64 // counts[h] = #reachable pairs at distance exactly h
	var total int64
	for s := 0; s < sources; s++ {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		src := NodeID(z % uint64(n))
		dist := BFSDistances(g, src, -1)
		for _, d := range dist {
			if d <= 0 {
				continue
			}
			for int(d) >= len(counts) {
				counts = append(counts, 0)
			}
			counts[d]++
			total++
		}
	}
	if total == 0 {
		return 0
	}
	var acc int64
	for h, c := range counts {
		acc += c
		if float64(acc) >= 0.9*float64(total) {
			return h
		}
	}
	return len(counts) - 1
}

// Profile bundles the extended structural fingerprint.
type Profile struct {
	Stats
	Clustering        float64
	EffectiveDiameter int
}

// ComputeProfile runs ComputeStats plus the sampled fingerprint metrics.
func ComputeProfile(g Graph, samples int, seed uint64) Profile {
	return Profile{
		Stats:             ComputeStats(g),
		Clustering:        ClusteringCoefficient(g, samples, seed),
		EffectiveDiameter: EffectiveDiameter(g, min(samples/16+1, 32), seed),
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
