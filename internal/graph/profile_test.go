package graph

import "testing"

func TestClusteringCoefficientExtremes(t *testing.T) {
	// Complete graph: clustering 1.
	k5 := MustFromEdges(5,
		0, 1, 0, 2, 0, 3, 0, 4, 1, 2, 1, 3, 1, 4, 2, 3, 2, 4, 3, 4)
	if c := ClusteringCoefficient(k5, 0, 1); c < 0.999 {
		t.Errorf("K5 clustering = %g, want 1", c)
	}
	// Star: no neighbor pairs connected, clustering 0.
	star := MustFromEdges(6, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5)
	if c := ClusteringCoefficient(star, 0, 1); c != 0 {
		t.Errorf("star clustering = %g, want 0", c)
	}
	// Triangle with a tail: triangle nodes cluster, tail doesn't.
	tri := MustFromEdges(4, 0, 1, 1, 2, 0, 2, 2, 3)
	c := ClusteringCoefficient(tri, 0, 1)
	if c <= 0 || c > 1 {
		t.Errorf("triangle+tail clustering = %g", c)
	}
}

func TestClusteringSampledDeterministic(t *testing.T) {
	g := MustFromEdges(6, 0, 1, 1, 2, 0, 2, 2, 3, 3, 4, 4, 5, 3, 5)
	a := ClusteringCoefficient(g, 4, 7)
	b := ClusteringCoefficient(g, 4, 7)
	if a != b {
		t.Error("same seed, different estimates")
	}
}

func TestEffectiveDiameter(t *testing.T) {
	// Path of 21: farthest pairs at 20 hops; 90th percentile from any
	// source is large.
	path := func() *MemGraph {
		b := NewBuilder(21)
		for v := 0; v < 20; v++ {
			if err := b.AddUnitEdge(NodeID(v), NodeID(v+1)); err != nil {
				t.Fatal(err)
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}()
	if d := EffectiveDiameter(path, 0, 1); d < 8 {
		t.Errorf("path effective diameter = %d, want >= 8", d)
	}
	// Star: everything within 2 hops.
	star := MustFromEdges(8, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7)
	if d := EffectiveDiameter(star, 0, 1); d > 2 {
		t.Errorf("star effective diameter = %d, want <= 2", d)
	}
}

func TestComputeProfile(t *testing.T) {
	g := MustFromEdges(5, 0, 1, 1, 2, 0, 2, 2, 3, 3, 4)
	p := ComputeProfile(g, 5, 3)
	if p.Nodes != 5 || p.Edges != 5 {
		t.Fatalf("profile stats: %+v", p.Stats)
	}
	if p.Clustering < 0 || p.Clustering > 1 {
		t.Errorf("clustering = %g", p.Clustering)
	}
	if p.EffectiveDiameter <= 0 {
		t.Errorf("effective diameter = %d", p.EffectiveDiameter)
	}
}

func TestRelabelBFSPreservesStructure(t *testing.T) {
	g := MustFromEdges(7, 0, 3, 3, 6, 6, 1, 1, 4, 2, 5) // two components
	rg, order, err := RelabelBFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rg.NumNodes() != 7 || rg.NumEdges() != 5 {
		t.Fatalf("shape (%d,%d)", rg.NumNodes(), rg.NumEdges())
	}
	if order[0] != 0 {
		t.Fatalf("start not first: %v", order)
	}
	// Degrees preserved under the mapping.
	for newV, oldV := range order {
		if rg.Degree(NodeID(newV)) != g.Degree(oldV) {
			t.Fatalf("degree mismatch at new %d / old %d", newV, oldV)
		}
	}
	if err := rg.Validate(); err != nil {
		t.Fatal(err)
	}
	// BFS order: identifiers along the 0-3-6-1-4 chain must ascend.
	pos := make(map[NodeID]int)
	for newV, oldV := range order {
		pos[oldV] = newV
	}
	chain := []NodeID{0, 3, 6, 1, 4}
	for i := 1; i < len(chain); i++ {
		if pos[chain[i]] <= pos[chain[i-1]] {
			t.Fatalf("BFS order violated: %v -> positions %v", chain, pos)
		}
	}
}

func TestRelabelBFSImprovesLocality(t *testing.T) {
	// A scrambled ring: after relabeling, neighbor identifier distance
	// should collapse to ~1.
	b := NewBuilder(256)
	for v := 0; v < 256; v++ {
		u := NodeID((v * 171) % 256) // 171 is coprime to 256: a permuted ring
		w := NodeID(((v + 1) * 171) % 256)
		if err := b.AddUnitEdge(u, w); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	gap := func(gr Graph) float64 {
		var sum float64
		var cnt int
		for v := 0; v < gr.NumNodes(); v++ {
			nbrs, _ := gr.Neighbors(NodeID(v))
			for _, u := range nbrs {
				d := int(u) - v
				if d < 0 {
					d = -d
				}
				sum += float64(d)
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	rg, _, err := RelabelBFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if before, after := gap(g), gap(rg); after > before/4 {
		t.Errorf("relabeling barely helped: avg id gap %.1f -> %.1f", before, after)
	}
}
