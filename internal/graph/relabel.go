package graph

// RelabelBFS renumbers nodes in breadth-first order from the given start,
// unvisited components appended in identifier order. Neighborhood-local
// identifiers turn a FLoS expansion into nearly sequential CSR reads, which
// is exactly what the paged disk store wants: the disk experiments show a
// large page-miss reduction on relabeled stores (see the Relabel benchmark).
//
// Returns the relabeled graph and the mapping newID → oldID.
func RelabelBFS(g Graph, start NodeID) (*MemGraph, []NodeID, error) {
	n := g.NumNodes()
	order := make([]NodeID, 0, n)
	newID := make([]NodeID, n)
	for i := range newID {
		newID[i] = -1
	}
	assign := func(v NodeID) {
		newID[v] = NodeID(len(order))
		order = append(order, v)
	}
	var queue []NodeID
	bfsFrom := func(src NodeID) {
		if newID[src] >= 0 {
			return
		}
		assign(src)
		queue = append(queue[:0], src)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			nbrs, _ := g.Neighbors(v)
			for _, u := range nbrs {
				if newID[u] < 0 {
					assign(u)
					queue = append(queue, u)
				}
			}
		}
	}
	if start >= 0 && int(start) < n {
		bfsFrom(start)
	}
	for v := 0; v < n; v++ {
		bfsFrom(NodeID(v))
	}

	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		nbrs, ws := g.Neighbors(NodeID(v))
		nv := newID[v]
		for i, u := range nbrs {
			if nu := newID[u]; nu > nv {
				if err := b.AddEdge(nv, nu, ws[i]); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return out, order, nil
}
