package graph

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarizes structural statistics of a graph. It backs the dataset
// tables (paper Tables 4, 6, 7) and is handy when validating that a
// synthetic stand-in matches the density profile of the paper's datasets.
type Stats struct {
	Nodes        int
	Edges        int64
	Density      float64 // average degree 2m/n (the paper's Table 6 column is m/n)
	MinDegree    float64
	MaxDegree    float64
	MeanDegree   float64
	MedianDegree float64
	Isolated     int // degree-zero nodes
	Components   int
	LargestComp  int
}

// ComputeStats scans g once (plus a BFS sweep for components).
func ComputeStats(g Graph) Stats {
	n := g.NumNodes()
	s := Stats{
		Nodes:     n,
		Edges:     g.NumEdges(),
		MinDegree: math.Inf(1),
	}
	degs := make([]float64, n)
	var sum float64
	for v := 0; v < n; v++ {
		d := g.Degree(NodeID(v))
		degs[v] = d
		sum += d
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d == 0 {
			s.Isolated++
		}
	}
	if n > 0 {
		s.MeanDegree = sum / float64(n)
		s.Density = 2 * float64(s.Edges) / float64(n)
		sort.Float64s(degs)
		s.MedianDegree = degs[n/2]
	}
	s.Components, s.LargestComp = components(g)
	return s
}

// String formats the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d edges=%d density=%.1f degree[min=%.0f med=%.0f mean=%.1f max=%.0f] comps=%d largest=%d",
		s.Nodes, s.Edges, s.Density, s.MinDegree, s.MedianDegree, s.MeanDegree, s.MaxDegree, s.Components, s.LargestComp)
}

// components counts connected components and the size of the largest one.
func components(g Graph) (count, largest int) {
	n := g.NumNodes()
	seen := make([]bool, n)
	queue := make([]NodeID, 0, 1024)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		count++
		size := 0
		queue = append(queue[:0], NodeID(start))
		seen[start] = true
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			nbrs, _ := g.Neighbors(v)
			for _, u := range nbrs {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		if size > largest {
			largest = size
		}
	}
	return count, largest
}

// DegreeHistogram returns counts of unweighted degrees bucketed by powers of
// two: bucket i counts nodes whose neighbor count is in [2^i, 2^(i+1)).
// Bucket 0 additionally includes degree-0 and degree-1 nodes. Used to eyeball
// that R-MAT stand-ins are skewed and RAND stand-ins are not.
func DegreeHistogram(g Graph) []int {
	n := g.NumNodes()
	var buckets []int
	for v := 0; v < n; v++ {
		nbrs, _ := g.Neighbors(NodeID(v))
		d := len(nbrs)
		b := 0
		for d > 1 {
			d >>= 1
			b++
		}
		for len(buckets) <= b {
			buckets = append(buckets, 0)
		}
		buckets[b]++
	}
	return buckets
}

// LargestComponentNodes returns the node set of the largest connected
// component. Workload generators sample query nodes from it so every query
// has a nonempty answer, mirroring the paper's use of connected SNAP cores.
func LargestComponentNodes(g Graph) []NodeID {
	n := g.NumNodes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var (
		queue   []NodeID
		bestID  int32 = -1
		bestSz  int
		current int32
	)
	sizes := []int{}
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		size := 0
		queue = append(queue[:0], NodeID(start))
		comp[start] = current
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			nbrs, _ := g.Neighbors(v)
			for _, u := range nbrs {
				if comp[u] < 0 {
					comp[u] = current
					queue = append(queue, u)
				}
			}
		}
		sizes = append(sizes, size)
		if size > bestSz {
			bestSz, bestID = size, current
		}
		current++
	}
	out := make([]NodeID, 0, bestSz)
	for v := 0; v < n; v++ {
		if comp[v] == bestID {
			out = append(out, NodeID(v))
		}
	}
	return out
}
