package graph

// Traversal helpers shared by the baselines: LS_THT and the embedding
// baseline need hop distances, the clustering baselines need bounded BFS
// regions.

// BFSDistances returns hop distances from src to every node; unreachable
// nodes get -1. maxHops < 0 means unlimited.
func BFSDistances(g Graph, src NodeID, maxHops int) []int32 {
	n := g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []NodeID{src}
	for hop := int32(1); len(frontier) > 0; hop++ {
		if maxHops >= 0 && int(hop) > maxHops {
			break
		}
		var next []NodeID
		for _, v := range frontier {
			nbrs, _ := g.Neighbors(v)
			for _, u := range nbrs {
				if dist[u] < 0 {
					dist[u] = hop
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return dist
}

// BFSRegion grows a BFS ball around src until it holds at least limit nodes
// (or the component is exhausted), completing the frontier hop it stops in so
// the region is hop-closed. The returned slice is in visit order, src first.
func BFSRegion(g Graph, src NodeID, limit int) []NodeID {
	seen := map[NodeID]bool{src: true}
	order := []NodeID{src}
	frontier := []NodeID{src}
	for len(frontier) > 0 && len(order) < limit {
		var next []NodeID
		for _, v := range frontier {
			nbrs, _ := g.Neighbors(v)
			for _, u := range nbrs {
				if !seen[u] {
					seen[u] = true
					order = append(order, u)
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return order
}

// KHopNeighborhood returns all nodes within maxHops hops of src (src
// included), in BFS order.
func KHopNeighborhood(g Graph, src NodeID, maxHops int) []NodeID {
	seen := map[NodeID]bool{src: true}
	order := []NodeID{src}
	frontier := []NodeID{src}
	for hop := 0; hop < maxHops && len(frontier) > 0; hop++ {
		var next []NodeID
		for _, v := range frontier {
			nbrs, _ := g.Neighbors(v)
			for _, u := range nbrs {
				if !seen[u] {
					seen[u] = true
					order = append(order, u)
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return order
}

// Subgraph materializes the induced subgraph on nodes. The i-th node of the
// result corresponds to nodes[i]; the mapping back to original identifiers is
// returned alongside. Edges with exactly one endpoint inside are dropped —
// note that the induced subgraph's transition probabilities therefore differ
// from the original graph's (degrees shrink), which is precisely the error
// the cluster-based LS baselines inherit and FLoS avoids by keeping original
// degrees.
func Subgraph(g Graph, nodes []NodeID) (*MemGraph, []NodeID, error) {
	index := make(map[NodeID]NodeID, len(nodes))
	for i, v := range nodes {
		index[v] = NodeID(i)
	}
	b := NewBuilder(len(nodes))
	for i, v := range nodes {
		nbrs, ws := g.Neighbors(v)
		for j, u := range nbrs {
			iu, ok := index[u]
			if !ok || iu <= NodeID(i) {
				continue // keep each undirected edge once
			}
			if err := b.AddEdge(NodeID(i), iu, ws[j]); err != nil {
				return nil, nil, err
			}
		}
	}
	sg, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	back := append([]NodeID(nil), nodes...)
	return sg, back, nil
}
