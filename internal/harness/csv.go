package harness

import (
	"encoding/csv"
	"io"
	"strconv"
)

// WriteCSV emits rows as machine-readable CSV, one line per (dataset,
// method, k) cell, for downstream plotting. Durations are in microseconds;
// a precision of -1 means "not scored".
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	header := []string{
		"dataset", "method", "k", "queries", "exact",
		"avg_time_us", "min_time_us", "max_time_us",
		"avg_visited", "visited_ratio", "min_ratio", "max_ratio",
		"precision", "error",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Dataset,
			r.Method,
			strconv.Itoa(r.K),
			strconv.Itoa(r.Queries),
			strconv.FormatBool(r.Exact),
			strconv.FormatInt(r.AvgTime.Microseconds(), 10),
			strconv.FormatInt(r.MinTime.Microseconds(), 10),
			strconv.FormatInt(r.MaxTime.Microseconds(), 10),
			strconv.FormatFloat(r.AvgVisited, 'g', -1, 64),
			strconv.FormatFloat(r.VisitedRatio, 'g', -1, 64),
			strconv.FormatFloat(r.MinRatio, 'g', -1, 64),
			strconv.FormatFloat(r.MaxRatio, 'g', -1, 64),
			strconv.FormatFloat(r.Precision, 'g', -1, 64),
			r.Err,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
