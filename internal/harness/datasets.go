// Package harness regenerates the paper's evaluation: dataset construction
// (stand-ins for the SNAP graphs plus the Table 6/7 synthetic grids),
// seeded query workloads, method registries per figure, timing sweeps, and
// table rendering. cmd/flosbench is a thin CLI over this package, and
// bench_test.go wires the same runners into testing.B.
package harness

import (
	"fmt"

	"flos/internal/gen"
	"flos/internal/graph"
)

// Dataset describes one graph to generate. All generation is deterministic
// in Seed so runs are reproducible.
type Dataset struct {
	Name  string
	Model string // "rmat" or "rand"
	Nodes int
	Edges int64
	Seed  uint64
}

// Build materializes the dataset in memory.
func (d Dataset) Build() (*graph.MemGraph, error) {
	switch d.Model {
	case "rmat":
		return gen.RMAT(d.Nodes, d.Edges, gen.DefaultRMAT(), d.Seed)
	case "rand":
		return gen.Erdos(d.Nodes, d.Edges, d.Seed)
	case "community":
		return gen.Community(d.Nodes, d.Edges, gen.CommunityParamsForDensity(2*d.Density()), d.Seed)
	}
	return nil, fmt.Errorf("harness: unknown model %q", d.Model)
}

// Density returns m/n — the convention of the paper's Table 6 density
// column (|E| = 10^7 at |V| = 2^20 is listed as 9.5). The average degree is
// twice this.
func (d Dataset) Density() float64 { return float64(d.Edges) / float64(d.Nodes) }

func scaled(x int, scale float64) int {
	v := int(float64(x) * scale)
	if v < 64 {
		v = 64
	}
	return v
}

func scaled64(x int64, scale float64) int64 {
	v := int64(float64(x) * scale)
	if v < 128 {
		v = 128
	}
	return v
}

// RealStandIns returns stand-ins for the paper's Table 4 SNAP graphs
// (Amazon, DBLP, Youtube, LiveJournal), with node and edge counts scaled by
// `scale` (1.0 reproduces the paper's sizes; the offline environment cannot
// download the originals — see DESIGN.md §3). The community model is used
// because it reproduces the structural properties local search depends on —
// clustering, high diameter, mild hubs — which pure R-MAT lacks.
func RealStandIns(scale float64) []Dataset {
	return []Dataset{
		{Name: "AZ", Model: "community", Nodes: scaled(334863, scale), Edges: scaled64(925872, scale), Seed: 0xA2},
		{Name: "DP", Model: "community", Nodes: scaled(317080, scale), Edges: scaled64(1049866, scale), Seed: 0xD9},
		{Name: "YT", Model: "community", Nodes: scaled(1134890, scale), Edges: scaled64(2987624, scale), Seed: 0x17},
		{Name: "LJ", Model: "community", Nodes: scaled(3997962, scale), Edges: scaled64(34681189, scale), Seed: 0x1A},
	}
}

// VaryingSize returns the Table 6 varying-size series for the given model:
// |V| = 1,2,4,8 × 2^20 and |E| = 1,2,4,8 × 10^7 at constant density 9.5,
// scaled by `scale`.
func VaryingSize(model string, scale float64) []Dataset {
	out := make([]Dataset, 0, 4)
	for i, mul := range []int{1, 2, 4, 8} {
		out = append(out, Dataset{
			Name:  fmt.Sprintf("%s-size-%dx", model, mul),
			Model: model,
			Nodes: scaled(mul*(1<<20), scale),
			Edges: scaled64(int64(mul)*10_000_000, scale),
			Seed:  uint64(0x51 + i),
		})
	}
	return out
}

// VaryingDensity returns the Table 6 varying-density series: |V| = 2^20 and
// |E| = 5,10,15,20 × 10^6 (densities 9.5·{0.5,1,1.5,2}), scaled.
func VaryingDensity(model string, scale float64) []Dataset {
	out := make([]Dataset, 0, 4)
	for i, mul := range []int{5, 10, 15, 20} {
		out = append(out, Dataset{
			Name:  fmt.Sprintf("%s-dens-%d", model, mul),
			Model: model,
			Nodes: scaled(1<<20, scale),
			Edges: scaled64(int64(mul)*1_000_000, scale),
			Seed:  uint64(0xDE + i),
		})
	}
	return out
}

// DiskResident returns the Table 7 disk-resident series: |V| = 16,32,48,64
// × 2^20 and |E| = |V| × 10, scaled. The paper generates these with R-MAT;
// the community model is used here for the same reason as RealStandIns —
// at sub-paper scales an R-MAT graph lacks the locality that keeps the
// visited set (and hence the page traffic) small, which is the entire
// phenomenon Figure 13 measures.
func DiskResident(scale float64) []Dataset {
	out := make([]Dataset, 0, 4)
	for i, mul := range []int{16, 32, 48, 64} {
		out = append(out, Dataset{
			Name:  fmt.Sprintf("disk-%dM", mul),
			Model: "community",
			Nodes: scaled(mul*(1<<20), scale),
			Edges: scaled64(int64(mul)*10_000_000, scale),
			Seed:  uint64(0xF0 + i),
		})
	}
	return out
}
