package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"flos/internal/core"
	"flos/internal/diskgraph"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
)

// FigureConfig controls scale and workload size for every figure runner.
// The defaults target minutes-not-hours on a laptop; pass Scale* = 1 and
// NumQueries = 1000 to reproduce the paper's full setup.
type FigureConfig struct {
	// Scale multiplies the SNAP stand-in sizes (Figures 7–10).
	Scale float64
	// SynthScale multiplies the Table 6 synthetic sizes (Figures 11–12).
	SynthScale float64
	// DiskScale multiplies the Table 7 disk-resident sizes (Figure 13).
	DiskScale float64
	// NumQueries per dataset (paper: 1000).
	NumQueries int
	// Ks for the k-sweeps (Figures 7, 8, 10).
	Ks []int
	// KFixed for the fixed-k figures (9, 11, 12, 13; paper: 20).
	KFixed int
	// WithPrecision computes precision of approximate methods against a GI
	// oracle (adds one GI run per query and measure).
	WithPrecision bool
	// TmpDir hosts Figure 13's store files (default: os.TempDir()).
	TmpDir string
	// CacheFraction sets the Figure 13 page-cache budget as a fraction of
	// each store's file size (the paper pins 2 GB against 3.1–13.2 GB
	// stores, i.e. roughly 15–65%).
	CacheFraction float64
	// Seed drives query sampling.
	Seed uint64
	// Config tunes the baselines.
	Config MethodConfig
	// CSVDir, when set, additionally writes each figure's measurements as
	// <CSVDir>/<figure>.csv for downstream plotting.
	CSVDir string
}

// saveCSV appends a figure's rows to its CSV file when CSVDir is set.
func (cfg FigureConfig) saveCSV(figure string, rows []Row) error {
	if cfg.CSVDir == "" {
		return nil
	}
	f, err := os.OpenFile(filepath.Join(cfg.CSVDir, figure+".csv"),
		os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DefaultFigureConfig returns laptop-bench defaults.
func DefaultFigureConfig() FigureConfig {
	return FigureConfig{
		Scale:         1.0 / 8,
		SynthScale:    1.0 / 16,
		DiskScale:     1.0 / 64,
		NumQueries:    20,
		Ks:            []int{1, 5, 10, 20, 50, 100},
		KFixed:        20,
		CacheFraction: 0.25,
		Seed:          1,
		Config:        DefaultMethodConfig(),
	}
}

func (cfg FigureConfig) oracleFor(g graph.Graph, kind measure.Kind) func(graph.NodeID) ([]float64, bool, error) {
	if !cfg.WithPrecision {
		return nil
	}
	cache := map[graph.NodeID][]float64{}
	return func(q graph.NodeID) ([]float64, bool, error) {
		if s, ok := cache[q]; ok {
			return s, kind.HigherIsCloser(), nil
		}
		p := cfg.Config.Params
		s, _, err := measure.Exact(g, q, kind, p)
		if err != nil {
			return nil, false, err
		}
		cache[q] = s
		return s, kind.HigherIsCloser(), nil
	}
}

// runKSweep is the shared engine of Figures 7, 8, 10.
func (cfg FigureConfig) runKSweep(w io.Writer, title, csvName string, kind measure.Kind,
	registry func(graph.Graph, MethodConfig) []Method) error {
	var all []Row
	for _, ds := range RealStandIns(cfg.Scale) {
		g, err := ds.Build()
		if err != nil {
			return fmt.Errorf("harness: building %s: %w", ds.Name, err)
		}
		methods := registry(g, cfg.Config)
		queries := Queries(g, cfg.NumQueries, cfg.Seed)
		rows := RunSweep(ds.Name, g, methods, SweepConfig{
			Ks:      cfg.Ks,
			Queries: queries,
			Oracle:  cfg.oracleFor(g, kind),
		})
		PrintRows(w, fmt.Sprintf("%s — %s (n=%d, m=%d)", title, ds.Name, g.NumNodes(), g.NumEdges()), rows)
		PrintPrecomputes(w, ds.Name, methods)
		all = append(all, rows...)
	}
	return cfg.saveCSV(csvName, all)
}

// Fig7 regenerates Figure 7: PHP running time vs k on the four stand-ins.
func Fig7(w io.Writer, cfg FigureConfig) error {
	return cfg.runKSweep(w, "Figure 7: PHP query time vs k", "fig7", measure.PHP, PHPMethods)
}

// Fig8 regenerates Figure 8: RWR running time vs k.
func Fig8(w io.Writer, cfg FigureConfig) error {
	return cfg.runKSweep(w, "Figure 8: RWR query time vs k", "fig8", measure.RWR, RWRMethods)
}

// Fig10 regenerates Figure 10: THT running time vs k.
func Fig10(w io.Writer, cfg FigureConfig) error {
	return cfg.runKSweep(w, "Figure 10: THT query time vs k", "fig10", measure.THT, THTMethods)
}

// Fig9 regenerates Figure 9: visited-node ratio of FLoS_PHP and FLoS_RWR on
// the stand-ins (avg/min/max over the workload).
func Fig9(w io.Writer, cfg FigureConfig) error {
	var rows []Row
	for _, ds := range RealStandIns(cfg.Scale) {
		g, err := ds.Build()
		if err != nil {
			return err
		}
		queries := Queries(g, cfg.NumQueries, cfg.Seed)
		methods := []Method{
			flosMethod(measure.PHP, cfg.Config, "FLoS_PHP"),
			flosMethod(measure.RWR, cfg.Config, "FLoS_RWR"),
		}
		rows = append(rows, RunSweep(ds.Name, g, methods, SweepConfig{
			Ks:      []int{cfg.KFixed},
			Queries: queries,
		})...)
	}
	PrintVisitedRatios(w, "Figure 9: visited-node ratio on real-graph stand-ins", rows)
	return cfg.saveCSV("fig9", rows)
}

// Fig11 regenerates Figure 11: PHP on the synthetic grids (varying size and
// varying density, RAND and R-MAT), k fixed.
func Fig11(w io.Writer, cfg FigureConfig) error {
	return cfg.runSynth(w, "Figure 11: PHP on synthetic graphs", "fig11", measure.PHP, PHPMethods)
}

// Fig12 regenerates Figure 12: RWR on the synthetic grids.
func Fig12(w io.Writer, cfg FigureConfig) error {
	return cfg.runSynth(w, "Figure 12: RWR on synthetic graphs", "fig12", measure.RWR, RWRMethods)
}

func (cfg FigureConfig) runSynth(w io.Writer, title, csvName string, kind measure.Kind,
	registry func(graph.Graph, MethodConfig) []Method) error {
	var all []Row
	panels := []struct {
		name string
		ds   []Dataset
	}{
		{"varying size, RAND", VaryingSize("rand", cfg.SynthScale)},
		{"varying size, R-MAT", VaryingSize("rmat", cfg.SynthScale)},
		{"varying density, RAND", VaryingDensity("rand", cfg.SynthScale)},
		{"varying density, R-MAT", VaryingDensity("rmat", cfg.SynthScale)},
	}
	for _, panel := range panels {
		var rows []Row
		for _, ds := range panel.ds {
			g, err := ds.Build()
			if err != nil {
				return fmt.Errorf("harness: building %s: %w", ds.Name, err)
			}
			methods := registry(g, cfg.Config)
			queries := Queries(g, cfg.NumQueries, cfg.Seed)
			rows = append(rows, RunSweep(ds.Name, g, methods, SweepConfig{
				Ks:      []int{cfg.KFixed},
				Queries: queries,
				Oracle:  cfg.oracleFor(g, kind),
			})...)
		}
		PrintRows(w, fmt.Sprintf("%s — %s (k=%d)", title, panel.name, cfg.KFixed), rows)
		all = append(all, rows...)
	}
	return cfg.saveCSV(csvName, all)
}

// Fig13 regenerates Figure 13: FLoS on disk-resident stores under a memory
// budget — query time (a) and visited ratio (b) as the store grows.
func Fig13(w io.Writer, cfg FigureConfig) error {
	tmp := cfg.TmpDir
	if tmp == "" {
		tmp = os.TempDir()
	}
	var rows []Row
	for _, ds := range DiskResident(cfg.DiskScale) {
		g, err := ds.Build()
		if err != nil {
			return err
		}
		path := filepath.Join(tmp, ds.Name+".flos")
		if err := diskgraph.Create(path, g, 0); err != nil {
			return err
		}
		// Sample queries while the in-memory copy exists, then drop it: the
		// store must serve the search alone.
		queries := Queries(g, cfg.NumQueries, cfg.Seed)
		var fileSize int64
		func() {
			st, err := os.Stat(path)
			if err == nil {
				fileSize = st.Size()
			}
		}()
		cacheBudget := int64(float64(fileSize) * cfg.CacheFraction)
		g = nil
		store, err := diskgraph.Open(path, cacheBudget)
		if err != nil {
			return err
		}
		methods := []Method{
			flosMethod(measure.PHP, cfg.Config, "FLoS_PHP"),
			flosMethod(measure.RWR, cfg.Config, "FLoS_RWR"),
		}
		dsRows := RunSweep(ds.Name, store, methods, SweepConfig{
			Ks:      []int{cfg.KFixed},
			Queries: queries,
		})
		stats := store.CacheStats()
		fmt.Fprintf(w, "-- %s: file %.1f MB, cache %.1f MB, page hits %d misses %d --\n",
			ds.Name, float64(fileSize)/1e6, float64(cacheBudget)/1e6, stats.Hits, stats.Misses)
		rows = append(rows, dsRows...)
		store.Close()
		os.Remove(path)
	}
	PrintRows(w, "Figure 13(a): FLoS on disk-resident graphs (time)", rows)
	PrintVisitedRatios(w, "Figure 13(b): FLoS on disk-resident graphs (visited ratio)", rows)
	return cfg.saveCSV("fig13", rows)
}

// FigTrace replays the paper's running example (Figure 4 bound trajectories
// and Table 3 per-iteration visits) on the Figure 1(a) graph.
func FigTrace(w io.Writer) error {
	g := gen.PaperExample()
	fmt.Fprintln(w, "== Figure 4 / Table 3: bound trace on the Figure 1(a) example (PHP, q=1, c=0.8) ==")
	fmt.Fprintln(w, "(paper node numbers; node 1 is the query with constant proximity 1)")
	sc := &core.SnapshotCollector{}
	opt := core.Options{
		K:       2,
		Measure: measure.PHP,
		Params:  measure.Params{C: 0.8, L: 10, Tau: 1e-8, MaxIter: 100000},
		Tighten: false,
		TieEps:  1e-9,
		Tracer:  sc,
	}
	res, err := core.TopK(g, 0, opt)
	if err != nil {
		return err
	}
	for _, ev := range sc.Events {
		fmt.Fprintf(w, "iteration %d: expanded node %d, newly visited %v\n",
			ev.Iteration, ev.Expanded+1, paperNodes(ev.NewNodes))
		for i, v := range ev.Nodes {
			if v == 0 {
				continue
			}
			fmt.Fprintf(w, "  node %d: lb=%.4f ub=%.4f\n", v+1, ev.Lower[i], ev.Upper[i])
		}
		fmt.Fprintf(w, "  dummy value r_d=%.4f\n", ev.DummyValue)
	}
	fmt.Fprintf(w, "top-2 certified after %d iterations, %d/8 nodes visited: %v\n\n",
		res.Iterations, res.Visited, paperNodes(measure.Nodes(res.TopK)))
	return nil
}

func paperNodes(ids []graph.NodeID) []int {
	out := make([]int, len(ids))
	for i, v := range ids {
		out[i] = int(v) + 1
	}
	return out
}

// Datasets prints the Table 4/6/7 dataset statistics at the configured
// scales.
func Datasets(w io.Writer, cfg FigureConfig) error {
	print := func(title string, list []Dataset) error {
		fmt.Fprintf(w, "== %s ==\n", title)
		fmt.Fprintf(w, "%-14s %-6s %10s %12s %8s\n", "name", "model", "nodes", "edges", "density")
		for _, ds := range list {
			fmt.Fprintf(w, "%-14s %-6s %10d %12d %8.1f\n", ds.Name, ds.Model, ds.Nodes, ds.Edges, ds.Density())
		}
		fmt.Fprintln(w)
		return nil
	}
	if err := print(fmt.Sprintf("Table 4 stand-ins (scale %.4f)", cfg.Scale), RealStandIns(cfg.Scale)); err != nil {
		return err
	}
	if err := print("Table 6 varying size (RAND)", VaryingSize("rand", cfg.SynthScale)); err != nil {
		return err
	}
	if err := print("Table 6 varying size (R-MAT)", VaryingSize("rmat", cfg.SynthScale)); err != nil {
		return err
	}
	if err := print("Table 6 varying density (RAND)", VaryingDensity("rand", cfg.SynthScale)); err != nil {
		return err
	}
	if err := print("Table 6 varying density (R-MAT)", VaryingDensity("rmat", cfg.SynthScale)); err != nil {
		return err
	}
	return print("Table 7 disk-resident", DiskResident(cfg.DiskScale))
}

// BuildStats prints full structural statistics for one dataset (used by
// cmd/flosbench -datasets -verbose).
func BuildStats(w io.Writer, ds Dataset) error {
	start := time.Now()
	g, err := ds.Build()
	if err != nil {
		return err
	}
	s := graph.ComputeStats(g)
	fmt.Fprintf(w, "%s: %s (built in %s)\n", ds.Name, s, fmtDur(time.Since(start)))
	return nil
}

// Profiles prints the structural fingerprint — clustering coefficient and
// effective diameter — of every stand-in, evidencing DESIGN.md §3's claim
// that the Community model (unlike R-MAT) matches the real graphs'
// locality profile.
func Profiles(w io.Writer, cfg FigureConfig) error {
	fmt.Fprintln(w, "== Stand-in structural fingerprints ==")
	fmt.Fprintf(w, "%-14s %-10s %10s %12s %10s %9s %8s\n",
		"name", "model", "nodes", "edges", "clustering", "eff.diam", "maxdeg")
	show := func(name, model string, g *graph.MemGraph) {
		p := graph.ComputeProfile(g, 400, 7)
		fmt.Fprintf(w, "%-14s %-10s %10d %12d %10.3f %9d %8.0f\n",
			name, model, p.Nodes, p.Edges, p.Clustering, p.EffectiveDiameter, p.MaxDegree)
	}
	for _, ds := range RealStandIns(cfg.Scale) {
		g, err := ds.Build()
		if err != nil {
			return err
		}
		show(ds.Name, ds.Model, g)
		// The R-MAT twin at the same size, for contrast.
		twin := Dataset{Name: ds.Name + "-rmat", Model: "rmat", Nodes: ds.Nodes, Edges: ds.Edges, Seed: ds.Seed}
		tg, err := twin.Build()
		if err != nil {
			return err
		}
		show(twin.Name, twin.Model, tg)
	}
	fmt.Fprintln(w)
	return nil
}
