package harness

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"flos/internal/graph"
	"flos/internal/measure"
)

// miniConfig shrinks every figure to seconds for CI; the same code paths run
// at full scale from cmd/flosbench.
func miniConfig(t *testing.T) FigureConfig {
	t.Helper()
	cfg := DefaultFigureConfig()
	cfg.Scale = 0.004
	cfg.SynthScale = 0.0008
	cfg.DiskScale = 0.0002
	cfg.NumQueries = 2
	cfg.Ks = []int{1, 5}
	cfg.KFixed = 5
	cfg.TmpDir = t.TempDir()
	cfg.Config.DNEBudget = 300
	cfg.Config.ClusterSize = 200
	cfg.Config.EmbedDims = 4
	cfg.Config.KDashMaxNodes = 900 // keep K-dash on the smallest minis only
	return cfg
}

func TestDatasetBuild(t *testing.T) {
	for _, ds := range RealStandIns(0.003) {
		g, err := ds.Build()
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		if g.NumNodes() != ds.Nodes || g.NumEdges() != ds.Edges {
			t.Errorf("%s: got (%d,%d), want (%d,%d)", ds.Name, g.NumNodes(), g.NumEdges(), ds.Nodes, ds.Edges)
		}
	}
	if _, err := (Dataset{Model: "nope", Nodes: 10, Edges: 5}).Build(); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestDatasetGrids(t *testing.T) {
	vs := VaryingSize("rand", 0.01)
	if len(vs) != 4 {
		t.Fatalf("varying size: %d entries", len(vs))
	}
	// Constant density across the size series.
	d0 := vs[0].Density()
	for _, ds := range vs[1:] {
		if diff := ds.Density() - d0; diff > 1 || diff < -1 {
			t.Errorf("density drifts across size series: %g vs %g", ds.Density(), d0)
		}
	}
	vd := VaryingDensity("rmat", 0.01)
	for i := 1; i < len(vd); i++ {
		if vd[i].Density() <= vd[i-1].Density() {
			t.Errorf("density series not increasing: %g then %g", vd[i-1].Density(), vd[i].Density())
		}
		if vd[i].Nodes != vd[0].Nodes {
			t.Errorf("node count varies in density series")
		}
	}
	if len(DiskResident(0.001)) != 4 {
		t.Error("disk series wrong length")
	}
}

func TestQueriesDeterministicAndValid(t *testing.T) {
	ds := RealStandIns(0.003)[0]
	g, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := Queries(g, 10, 7)
	b := Queries(g, 10, 7)
	if len(a) != 10 {
		t.Fatalf("got %d queries", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different workload")
		}
	}
	c := Queries(g, 10, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
	seen := map[graph.NodeID]bool{}
	for _, q := range a {
		if seen[q] {
			t.Error("duplicate query node")
		}
		seen[q] = true
		if g.Degree(q) == 0 {
			t.Error("isolated query node sampled")
		}
	}
}

func TestQueriesByDegree(t *testing.T) {
	g := graph.MustFromEdges(10, 0, 1, 1, 2, 2, 3) // nodes 4..9 isolated
	qs := QueriesByDegree(g, 4, 3)
	for _, q := range qs {
		if g.Degree(q) == 0 {
			t.Errorf("isolated node %d sampled", q)
		}
	}
	if len(qs) != 4 {
		t.Errorf("got %d queries, want 4", len(qs))
	}
}

func TestRunSweepWithOracle(t *testing.T) {
	ds := Dataset{Name: "tiny", Model: "rmat", Nodes: 300, Edges: 900, Seed: 5}
	g, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMethodConfig()
	methods := PHPMethods(g, cfg)
	queries := Queries(g, 4, 2)
	oracle := func(q graph.NodeID) ([]float64, bool, error) {
		s, _, err := measure.Exact(g, q, measure.PHP, cfg.Params)
		return s, true, err
	}
	rows := RunSweep("tiny", g, methods, SweepConfig{Ks: []int{3}, Queries: queries, Oracle: oracle})
	if len(rows) != len(methods) {
		t.Fatalf("%d rows for %d methods", len(rows), len(methods))
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Fatalf("%s: %s", r.Method, r.Err)
		}
		if r.Queries != 4 {
			t.Errorf("%s: %d queries", r.Method, r.Queries)
		}
		if r.Precision < 0 || r.Precision > 1 {
			t.Errorf("%s: precision %g", r.Method, r.Precision)
		}
		// Exact methods must score perfect precision.
		if r.Exact && r.Precision < 0.999 {
			t.Errorf("exact method %s scored precision %g", r.Method, r.Precision)
		}
		if r.AvgVisited <= 0 {
			t.Errorf("%s: no visits recorded", r.Method)
		}
	}
}

func TestFigTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := FigTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"newly visited [2 3]",
		"newly visited [4]",
		"newly visited [5]",
		"newly visited [6 7]",
		"top-2 certified after 4 iterations, 7/8 nodes visited: [2 3]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q\n%s", want, out)
		}
	}
}

func TestFig7Mini(t *testing.T) {
	cfg := miniConfig(t)
	cfg.WithPrecision = true
	var buf bytes.Buffer
	if err := Fig7(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FLoS_PHP", "GI_PHP", "DNE", "NN_EI", "LS_EI", "dataset AZ", "dataset LJ"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig7 output missing %q", want)
		}
	}
	if strings.Contains(out, "ERROR") {
		t.Errorf("Fig7 reported an error:\n%s", out)
	}
}

func TestFig8Mini(t *testing.T) {
	cfg := miniConfig(t)
	var buf bytes.Buffer
	if err := Fig8(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FLoS_RWR", "GI_RWR", "Castanet", "LS_RWR"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig8 output missing %q", want)
		}
	}
}

func TestFig9Mini(t *testing.T) {
	cfg := miniConfig(t)
	var buf bytes.Buffer
	if err := Fig9(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "avg-ratio") {
		t.Error("Fig9 output missing ratio table")
	}
}

func TestFig10Mini(t *testing.T) {
	cfg := miniConfig(t)
	var buf bytes.Buffer
	if err := Fig10(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FLoS_THT", "GI_THT", "LS_THT"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig10 output missing %q", want)
		}
	}
}

func TestFig11And12Mini(t *testing.T) {
	cfg := miniConfig(t)
	var buf bytes.Buffer
	if err := Fig11(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if err := Fig12(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"varying size, RAND", "varying density, R-MAT", "rand-size-1x", "rmat-dens-20"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig11/12 output missing %q", want)
		}
	}
}

func TestFig13Mini(t *testing.T) {
	cfg := miniConfig(t)
	var buf bytes.Buffer
	if err := Fig13(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"disk-16M", "disk-64M", "page hits", "Figure 13(b)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig13 output missing %q", want)
		}
	}
	if strings.Contains(out, "ERROR") {
		t.Errorf("Fig13 reported an error:\n%s", out)
	}
}

func TestDatasetsPrinter(t *testing.T) {
	var buf bytes.Buffer
	if err := Datasets(&buf, miniConfig(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 4", "Table 6", "Table 7", "density"} {
		if !strings.Contains(out, want) {
			t.Errorf("Datasets output missing %q", want)
		}
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
	got := Sparkline([]time.Duration{time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond})
	if len([]rune(got)) != 3 {
		t.Errorf("sparkline length %d, want 3", len([]rune(got)))
	}
	flat := Sparkline([]time.Duration{time.Second, time.Second})
	if flat != "▁▁" {
		t.Errorf("flat sparkline = %q", flat)
	}
}

func TestWriteCSV(t *testing.T) {
	rows := []Row{
		{Dataset: "AZ", Method: "FLoS_PHP", K: 10, Queries: 5, Exact: true,
			AvgTime: 1500 * time.Microsecond, MinTime: time.Millisecond,
			MaxTime: 2 * time.Millisecond, AvgVisited: 42, VisitedRatio: 0.001,
			MinRatio: 0.0005, MaxRatio: 0.002, Precision: 1},
		{Dataset: "AZ", Method: "DNE", K: 10, Precision: -1, Err: "boom"},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "dataset,method,k,") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "FLoS_PHP,10,5,true,1500,1000,2000,42,0.001") {
		t.Errorf("row = %q", lines[1])
	}
	if !strings.Contains(lines[2], "boom") {
		t.Errorf("error row = %q", lines[2])
	}
}

func TestProfilesPrinter(t *testing.T) {
	cfg := miniConfig(t)
	cfg.Scale = 0.001
	var buf bytes.Buffer
	if err := Profiles(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"clustering", "AZ", "AZ-rmat", "LJ-rmat"} {
		if !strings.Contains(out, want) {
			t.Errorf("Profiles output missing %q", want)
		}
	}
}

func TestFigureCSVExport(t *testing.T) {
	cfg := miniConfig(t)
	cfg.Scale = 0.001
	cfg.CSVDir = t.TempDir()
	var buf bytes.Buffer
	if err := Fig9(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cfg.CSVDir + "/fig9.csv")
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "dataset,method,k") || !strings.Contains(out, "FLoS_RWR") {
		t.Errorf("csv content:\n%s", out)
	}
}
