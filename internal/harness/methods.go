package harness

import (
	"errors"
	"time"

	"flos/internal/baseline"
	"flos/internal/core"
	"flos/internal/graph"
	"flos/internal/measure"
)

// Method is one competitor in a figure: a named query runner plus metadata.
type Method struct {
	Name  string
	Exact bool
	// PrecomputeTime is the offline cost paid at registry construction
	// (clustering, factorization, embedding); zero for methods without one.
	PrecomputeTime time.Duration
	// Run answers one query, returning the node set and how many nodes the
	// method touched.
	Run func(g graph.Graph, q graph.NodeID, k int) ([]graph.NodeID, int, error)
}

// MethodConfig tunes the registries.
type MethodConfig struct {
	Params measure.Params
	// DNEBudget is DNE's fixed visited-node budget (paper: 4000).
	DNEBudget int
	// ClusterSize is the LS_* cluster target size (paper's clusters hold a
	// few thousand nodes).
	ClusterSize int
	// KDashMaxNodes gates the K-dash precompute: beyond this size the paper
	// itself could not run it; 0 disables the gate.
	KDashMaxNodes int
	// EmbedDims / EmbedMaxNodes gate the GE embedding likewise.
	EmbedDims     int
	EmbedMaxNodes int
}

// DefaultMethodConfig mirrors the paper's settings.
func DefaultMethodConfig() MethodConfig {
	return MethodConfig{
		Params:        measure.DefaultParams(),
		DNEBudget:     4000,
		ClusterSize:   4000,
		KDashMaxNodes: 30000,
		EmbedDims:     16,
		EmbedMaxNodes: 400000,
	}
}

func flosMethod(kind measure.Kind, cfg MethodConfig, name string) Method {
	return Method{
		Name:  name,
		Exact: true,
		Run: func(g graph.Graph, q graph.NodeID, k int) ([]graph.NodeID, int, error) {
			opt := core.Options{K: k, Measure: kind, Params: cfg.Params, Tighten: true, TieEps: 1e-9}
			res, err := core.TopK(g, q, opt)
			if err != nil {
				return nil, 0, err
			}
			return measure.Nodes(res.TopK), res.Visited, nil
		},
	}
}

func giMethod(kind measure.Kind, cfg MethodConfig, name string) Method {
	return Method{
		Name:  name,
		Exact: true,
		Run: func(g graph.Graph, q graph.NodeID, k int) ([]graph.NodeID, int, error) {
			res, err := baseline.GlobalIteration(g, q, kind, cfg.Params, k)
			if err != nil {
				return nil, 0, err
			}
			return measure.Nodes(res.TopK), res.Visited, nil
		},
	}
}

// PHPMethods builds the Figure 7 / Figure 11 registry: FLoS_PHP, GI_PHP,
// DNE, NN_EI, LS_EI. The LS_EI clustering precompute runs here and its cost
// is recorded on the method.
func PHPMethods(g graph.Graph, cfg MethodConfig) []Method {
	methods := []Method{
		flosMethod(measure.PHP, cfg, "FLoS_PHP"),
		giMethod(measure.PHP, cfg, "GI_PHP"),
		{
			Name: "DNE",
			Run: func(g graph.Graph, q graph.NodeID, k int) ([]graph.NodeID, int, error) {
				res, err := baseline.DNE(g, q, cfg.Params, k, cfg.DNEBudget)
				if err != nil {
					return nil, 0, err
				}
				return measure.Nodes(res.TopK), res.Visited, nil
			},
		},
		{
			Name:  "NN_EI",
			Exact: true,
			Run: func(g graph.Graph, q graph.NodeID, k int) ([]graph.NodeID, int, error) {
				res, err := baseline.NNEI(g, q, cfg.Params, k)
				if err != nil {
					return nil, 0, err
				}
				return measure.Nodes(res.TopK), res.Visited, nil
			},
		},
	}
	start := time.Now()
	cl := baseline.PrecomputeClusters(g, cfg.ClusterSize)
	methods = append(methods, Method{
		Name:           "LS_EI",
		PrecomputeTime: time.Since(start),
		Run: func(g graph.Graph, q graph.NodeID, k int) ([]graph.NodeID, int, error) {
			res, err := cl.Query(g, q, measure.PHP, cfg.Params, k)
			if err != nil {
				return nil, 0, err
			}
			return measure.Nodes(res.TopK), res.Visited, nil
		},
	})
	return methods
}

// RWRMethods builds the Figure 8 / Figure 12 registry: FLoS_RWR, GI_RWR,
// Castanet, LS_RWR, plus K-dash and GE_RWR where their precomputes are
// feasible at this graph size (the paper could only run those two on its
// medium graphs).
func RWRMethods(g graph.Graph, cfg MethodConfig) []Method {
	methods := []Method{
		flosMethod(measure.RWR, cfg, "FLoS_RWR"),
		giMethod(measure.RWR, cfg, "GI_RWR"),
		{
			Name:  "Castanet",
			Exact: true,
			Run: func(g graph.Graph, q graph.NodeID, k int) ([]graph.NodeID, int, error) {
				res, err := baseline.Castanet(g, q, cfg.Params, k)
				if err != nil {
					return nil, 0, err
				}
				return measure.Nodes(res.TopK), res.Visited, nil
			},
		},
	}
	start := time.Now()
	cl := baseline.PrecomputeClusters(g, cfg.ClusterSize)
	methods = append(methods, Method{
		Name:           "LS_RWR",
		PrecomputeTime: time.Since(start),
		Run: func(g graph.Graph, q graph.NodeID, k int) ([]graph.NodeID, int, error) {
			res, err := cl.Query(g, q, measure.RWR, cfg.Params, k)
			if err != nil {
				return nil, 0, err
			}
			return measure.Nodes(res.TopK), res.Visited, nil
		},
	})
	if cfg.KDashMaxNodes == 0 || g.NumNodes() <= cfg.KDashMaxNodes {
		start = time.Now()
		kd, err := baseline.PrecomputeKDash(g, cfg.Params.C, 0)
		if err == nil {
			methods = append(methods, Method{
				Name:           "K-dash",
				Exact:          true,
				PrecomputeTime: time.Since(start),
				Run: func(_ graph.Graph, q graph.NodeID, k int) ([]graph.NodeID, int, error) {
					res, err := kd.Query(q, k)
					if err != nil {
						return nil, 0, err
					}
					return measure.Nodes(res.TopK), res.Visited, nil
				},
			})
		} else if !errors.Is(err, baseline.ErrPrecomputeInfeasible) {
			// Structural failures should surface; infeasibility is expected
			// and simply drops the method, as in the paper.
			methods = append(methods, Method{
				Name: "K-dash",
				Run: func(graph.Graph, graph.NodeID, int) ([]graph.NodeID, int, error) {
					return nil, 0, err
				},
			})
		}
	}
	if cfg.EmbedMaxNodes == 0 || g.NumNodes() <= cfg.EmbedMaxNodes {
		start = time.Now()
		emb, err := baseline.PrecomputeEmbedding(g, cfg.Params, cfg.EmbedDims)
		if err == nil {
			methods = append(methods, Method{
				Name:           "GE_RWR",
				PrecomputeTime: time.Since(start),
				Run: func(_ graph.Graph, q graph.NodeID, k int) ([]graph.NodeID, int, error) {
					res, err := emb.Query(q, k)
					if err != nil {
						return nil, 0, err
					}
					return measure.Nodes(res.TopK), res.Visited, nil
				},
			})
		}
	}
	return methods
}

// THTMethods builds the Figure 10 registry: FLoS_THT, GI_THT, LS_THT, plus
// the Monte Carlo sampler (the other estimator of [17], not in the paper's
// Table 5 but the natural third contrast).
func THTMethods(_ graph.Graph, cfg MethodConfig) []Method {
	return []Method{
		flosMethod(measure.THT, cfg, "FLoS_THT"),
		giMethod(measure.THT, cfg, "GI_THT"),
		{
			Name: "LS_THT",
			Run: func(g graph.Graph, q graph.NodeID, k int) ([]graph.NodeID, int, error) {
				res, err := baseline.LSTHT(g, q, cfg.Params, k, cfg.DNEBudget, 0.05)
				if err != nil {
					return nil, 0, err
				}
				return measure.Nodes(res.TopK), res.Visited, nil
			},
		},
		{
			Name: "MC_THT",
			Run: func(g graph.Graph, q graph.NodeID, k int) ([]graph.NodeID, int, error) {
				res, err := baseline.MCTHT(g, q, cfg.Params, k, 128, 7)
				if err != nil {
					return nil, 0, err
				}
				return measure.Nodes(res.TopK), res.Visited, nil
			},
		},
	}
}
