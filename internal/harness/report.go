package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// PrintRows renders rows as an aligned text table grouped by dataset, one
// line per (method, k) — the textual analogue of one figure panel.
func PrintRows(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "== %s ==\n", title)
	byDataset := map[string][]Row{}
	var order []string
	for _, r := range rows {
		if _, ok := byDataset[r.Dataset]; !ok {
			order = append(order, r.Dataset)
		}
		byDataset[r.Dataset] = append(byDataset[r.Dataset], r)
	}
	for _, ds := range order {
		fmt.Fprintf(w, "-- dataset %s --\n", ds)
		fmt.Fprintf(w, "%-10s %5s %12s %12s %10s %9s %s\n",
			"method", "k", "avg-time", "max-time", "visited", "precision", "exact")
		rs := byDataset[ds]
		sort.SliceStable(rs, func(i, j int) bool {
			if rs[i].Method != rs[j].Method {
				return rs[i].Method < rs[j].Method
			}
			return rs[i].K < rs[j].K
		})
		for _, r := range rs {
			if r.Err != "" {
				fmt.Fprintf(w, "%-10s %5d   ERROR: %s\n", r.Method, r.K, r.Err)
				continue
			}
			prec := "-"
			if r.Precision >= 0 {
				prec = fmt.Sprintf("%.3f", r.Precision)
			} else if r.Exact {
				prec = "1.000*"
			}
			fmt.Fprintf(w, "%-10s %5d %12s %12s %10.0f %9s %v\n",
				r.Method, r.K, fmtDur(r.AvgTime), fmtDur(r.MaxTime), r.AvgVisited, prec, r.Exact)
		}
	}
	fmt.Fprintln(w)
}

// PrintVisitedRatios renders the Figure 9 / Figure 13(b) bar data: average,
// minimum and maximum visited-node ratio per dataset.
func PrintVisitedRatios(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-10s %-10s %5s %12s %12s %12s\n",
		"dataset", "method", "k", "avg-ratio", "min-ratio", "max-ratio")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(w, "%-10s %-10s %5d   ERROR: %s\n", r.Dataset, r.Method, r.K, r.Err)
			continue
		}
		fmt.Fprintf(w, "%-10s %-10s %5d %12.3e %12.3e %12.3e\n",
			r.Dataset, r.Method, r.K, r.VisitedRatio, r.MinRatio, r.MaxRatio)
	}
	fmt.Fprintln(w)
}

// PrintPrecomputes lists offline costs so the "needs tens of hours of
// preprocessing" contrast is visible in the output.
func PrintPrecomputes(w io.Writer, dataset string, methods []Method) {
	var any bool
	for _, m := range methods {
		if m.PrecomputeTime > 0 {
			if !any {
				fmt.Fprintf(w, "-- %s offline precompute costs --\n", dataset)
				any = true
			}
			fmt.Fprintf(w, "%-10s %12s\n", m.Name, fmtDur(m.PrecomputeTime))
		}
	}
	if any {
		fmt.Fprintln(w)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Sparkline renders a crude log-scale comparison of one method's times
// across k values — a terminal nod to the paper's log-axis plots.
func Sparkline(times []time.Duration) string {
	if len(times) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	minT, maxT := times[0], times[0]
	for _, t := range times {
		if t < minT {
			minT = t
		}
		if t > maxT {
			maxT = t
		}
	}
	var sb strings.Builder
	for _, t := range times {
		idx := 0
		if maxT > minT {
			idx = int(float64(len(blocks)-1) * float64(t-minT) / float64(maxT-minT))
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}
