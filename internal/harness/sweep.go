package harness

import (
	"time"

	"flos/internal/graph"
	"flos/internal/measure"
)

// Row is one measured cell of a figure: a (method, k) pair averaged over the
// query workload.
type Row struct {
	Dataset      string
	Method       string
	K            int
	AvgTime      time.Duration
	MinTime      time.Duration
	MaxTime      time.Duration
	AvgVisited   float64
	VisitedRatio float64 // AvgVisited / |V|
	MinRatio     float64
	MaxRatio     float64
	Precision    float64 // vs the exact set; 1.0 for exact methods
	Exact        bool
	Queries      int
	Err          string
}

// SweepConfig controls a measurement run.
type SweepConfig struct {
	Ks      []int
	Queries []graph.NodeID
	// Oracle, when non-nil, scores precision of approximate methods: it maps
	// a query to its exact proximity vector. Leave nil to skip (precision is
	// then reported as NaN via -1).
	Oracle func(q graph.NodeID) ([]float64, bool, error) // scores, higherIsCloser, err
}

// RunSweep measures every (method, k) cell on one dataset.
func RunSweep(name string, g graph.Graph, methods []Method, cfg SweepConfig) []Row {
	var rows []Row
	n := float64(g.NumNodes())
	for _, m := range methods {
		for _, k := range cfg.Ks {
			row := Row{Dataset: name, Method: m.Name, K: k, Exact: m.Exact, Precision: -1}
			var totalTime time.Duration
			var minT, maxT time.Duration
			var totalVisited float64
			minRatio, maxRatio := 2.0, -1.0
			var precSum float64
			precCount := 0
			for _, q := range cfg.Queries {
				start := time.Now()
				got, visited, err := m.Run(g, q, k)
				elapsed := time.Since(start)
				if err != nil {
					row.Err = err.Error()
					break
				}
				totalTime += elapsed
				if row.Queries == 0 || elapsed < minT {
					minT = elapsed
				}
				if elapsed > maxT {
					maxT = elapsed
				}
				totalVisited += float64(visited)
				ratio := float64(visited) / n
				if ratio < minRatio {
					minRatio = ratio
				}
				if ratio > maxRatio {
					maxRatio = ratio
				}
				row.Queries++
				if cfg.Oracle != nil {
					scores, higher, err := cfg.Oracle(q)
					if err == nil {
						want := measure.Nodes(measure.TopK(scores, q, k, higher))
						precSum += measure.Precision(got, want)
						precCount++
					}
				}
			}
			if row.Queries > 0 {
				row.AvgTime = totalTime / time.Duration(row.Queries)
				row.MinTime = minT
				row.MaxTime = maxT
				row.AvgVisited = totalVisited / float64(row.Queries)
				row.VisitedRatio = row.AvgVisited / n
				row.MinRatio = minRatio
				row.MaxRatio = maxRatio
			}
			if precCount > 0 {
				row.Precision = precSum / float64(precCount)
			}
			rows = append(rows, row)
		}
	}
	return rows
}
