package harness

import (
	"flos/internal/graph"
)

// Queries samples `count` query nodes uniformly from the largest connected
// component of g, deterministically in seed — the harness analogue of the
// paper's "10^3 randomly picked query nodes" (the count is a knob because a
// thousand GI runs on the larger stand-ins would dominate wall time).
func Queries(g graph.Graph, count int, seed uint64) []graph.NodeID {
	lc := graph.LargestComponentNodes(g)
	return sampleFrom(lc, count, seed)
}

// QueriesByDegree samples query nodes with positive degree — used for disk
// stores, where materializing the largest component would defeat the
// memory-budget experiment. Nodes are probed pseudo-randomly until `count`
// non-isolated ones are found.
func QueriesByDegree(g graph.Graph, count int, seed uint64) []graph.NodeID {
	n := g.NumNodes()
	out := make([]graph.NodeID, 0, count)
	state := seed
	if state == 0 {
		state = 0x9e3779b97f4a7c15
	}
	seen := map[graph.NodeID]bool{}
	for len(out) < count {
		state = splitmix(state)
		v := graph.NodeID(state % uint64(n))
		if seen[v] {
			continue
		}
		seen[v] = true
		if g.Degree(v) > 0 {
			out = append(out, v)
		}
		if len(seen) >= n {
			break
		}
	}
	return out
}

func sampleFrom(pool []graph.NodeID, count int, seed uint64) []graph.NodeID {
	if count >= len(pool) {
		return append([]graph.NodeID(nil), pool...)
	}
	state := seed
	if state == 0 {
		state = 0x9e3779b97f4a7c15
	}
	out := make([]graph.NodeID, 0, count)
	seen := map[graph.NodeID]bool{}
	for len(out) < count {
		state = splitmix(state)
		v := pool[state%uint64(len(pool))]
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func splitmix(s uint64) uint64 {
	s += 0x9e3779b97f4a7c15
	z := s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
