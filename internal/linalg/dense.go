package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a small dense matrix in row-major order. It backs the K-dash
// baseline on small graphs (exact matrix factorization) and the test oracles
// that solve proximity systems directly.
type Dense struct {
	N    int
	Data []float64 // len N*N, row major
}

// NewDense returns an N×N zero matrix.
func NewDense(n int) *Dense {
	return &Dense{N: n, Data: make([]float64, n*n)}
}

// Identity returns the N×N identity.
func Identity(n int) *Dense {
	d := NewDense(n)
	for i := 0; i < n; i++ {
		d.Data[i*n+i] = 1
	}
	return d
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.N+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.N+j] = v }

// Add increments element (i, j).
func (d *Dense) Add(i, j int, v float64) { d.Data[i*d.N+j] += v }

// Clone deep-copies the matrix.
func (d *Dense) Clone() *Dense {
	return &Dense{N: d.N, Data: append([]float64(nil), d.Data...)}
}

// LU holds a dense LU factorization with partial pivoting: PA = LU.
type LU struct {
	n    int
	lu   []float64 // packed L (unit diagonal, below) and U (on/above)
	perm []int
}

// Factor computes the LU factorization of a. a is not modified.
func Factor(a *Dense) (*LU, error) {
	n := a.N
	f := &LU{n: n, lu: append([]float64(nil), a.Data...), perm: make([]int, n)}
	for i := range f.perm {
		f.perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivRow, pivVal := col, math.Abs(f.lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(f.lu[r*n+col]); v > pivVal {
				pivRow, pivVal = r, v
			}
		}
		if pivVal < 1e-300 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if pivRow != col {
			f.perm[col], f.perm[pivRow] = f.perm[pivRow], f.perm[col]
			for j := 0; j < n; j++ {
				f.lu[col*n+j], f.lu[pivRow*n+j] = f.lu[pivRow*n+j], f.lu[col*n+j]
			}
		}
		piv := f.lu[col*n+col]
		for r := col + 1; r < n; r++ {
			m := f.lu[r*n+col] / piv
			f.lu[r*n+col] = m
			if m == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				f.lu[r*n+j] -= m * f.lu[col*n+j]
			}
		}
	}
	return f, nil
}

// Solve returns x with Ax = b.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.n
	if len(b) != n {
		return nil, errors.New("linalg: dimension mismatch in Solve")
	}
	x := make([]float64, n)
	// Forward substitution on permuted b.
	for i := 0; i < n; i++ {
		s := b[f.perm[i]]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s / f.lu[i*n+i]
	}
	return x, nil
}

// Invert returns A^{-1} by solving against the identity columns.
func (f *LU) Invert() (*Dense, error) {
	n := f.n
	inv := NewDense(n)
	e := make([]float64, n)
	for col := 0; col < n; col++ {
		for i := range e {
			e[i] = 0
		}
		e[col] = 1
		x, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for row := 0; row < n; row++ {
			inv.Set(row, col, x[row])
		}
	}
	return inv, nil
}

// SolveDense is a convenience wrapper: factor a and solve for b.
func SolveDense(a *Dense, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
