package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRowMatrixBasics(t *testing.T) {
	m := NewRowMatrix(2)
	if m.NumRows() != 2 {
		t.Fatalf("NumRows = %d", m.NumRows())
	}
	m.Append(0, 1, 0.5)
	if r := m.AddRow(); r != 2 {
		t.Fatalf("AddRow = %d, want 2", r)
	}
	m.Set(0, 1, 0.25)
	m.Set(0, 0, 0.75)
	if got := m.At(0, 1); got != 0.25 {
		t.Errorf("At(0,1) = %g", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Errorf("At(1,1) = %g, want 0", got)
	}
	if got := m.RowSum(0); got != 1 {
		t.Errorf("RowSum(0) = %g", got)
	}
	if got := m.NumNonZero(); got != 2 {
		t.Errorf("NumNonZero = %g", float64(got))
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone aliases original")
	}
	if err := m.CheckSubStochastic(1e-12); err != nil {
		t.Errorf("CheckSubStochastic: %v", err)
	}
	m.Set(1, 0, 2)
	if err := m.CheckSubStochastic(1e-12); err == nil {
		t.Error("row sum 2 passed CheckSubStochastic")
	}
	m.Set(1, 0, -1)
	if err := m.CheckSubStochastic(1e-12); err == nil {
		t.Error("negative entry passed CheckSubStochastic")
	}
}

// TestFixedPointAgainstDense: the Jacobi solver must agree with a direct
// dense solve of (I - cM) r = e.
func TestFixedPointAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(20)
		m := NewRowMatrix(n)
		a := Identity(n)
		c := 0.5 + 0.4*rng.Float64()
		for i := 0; i < n; i++ {
			// Random sub-stochastic row.
			k := 1 + rng.Intn(3)
			rem := 1.0
			for j := 0; j < k; j++ {
				col := int32(rng.Intn(n))
				v := rem * rng.Float64() * 0.9
				rem -= v
				m.Set(int32(i), col, m.At(int32(i), col)+v)
			}
		}
		for i := 0; i < n; i++ {
			for _, e := range m.Rows[i] {
				a.Add(i, int(e.Col), -c*e.Val)
			}
		}
		e := make([]float64, n)
		e[0] = 1
		want, err := SolveDense(a, e)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		iters := m.FixedPoint(c, e, got, 1e-12, 10000)
		if iters >= 10000 {
			t.Fatalf("trial %d: no convergence", trial)
		}
		if d := InfNorm(got, want); d > 1e-9 {
			t.Fatalf("trial %d: jacobi vs dense differ by %g", trial, d)
		}
	}
}

// TestFixedPointMonotoneFromBelow: starting at a sub-solution, every sweep
// stays below the fixpoint — the property that lets FLoS truncate bound
// updates without breaking bound validity.
func TestFixedPointMonotoneFromBelow(t *testing.T) {
	m := NewRowMatrix(3)
	m.Set(1, 0, 0.5)
	m.Set(1, 2, 0.5)
	m.Set(2, 1, 1)
	c := 0.5
	e := []float64{1, 0, 0}
	exact := make([]float64, 3)
	m.FixedPoint(c, e, exact, 1e-14, 100000)
	// From zero (a sub-solution), each single sweep must not exceed exact.
	r := make([]float64, 3)
	for sweep := 0; sweep < 50; sweep++ {
		m.Sweeps(c, e, r, 1)
		for i := range r {
			if r[i] > exact[i]+1e-12 {
				t.Fatalf("sweep %d: r[%d]=%g exceeds fixpoint %g", sweep, i, r[i], exact[i])
			}
		}
	}
	// From above (a super-solution), iterates must never drop below.
	r = []float64{1, 1, 1}
	for sweep := 0; sweep < 50; sweep++ {
		m.Sweeps(c, e, r, 1)
		for i := range r {
			if r[i] < exact[i]-1e-12 {
				t.Fatalf("sweep %d: r[%d]=%g below fixpoint %g", sweep, i, r[i], exact[i])
			}
		}
	}
}

// TestFixedPointPaperExample reproduces the worked example under Theorem 3:
// path 1-2-3 with query 1, c = 0.5, exact PHP r = [1, 2/7, 1/7].
func TestFixedPointPaperExample(t *testing.T) {
	m := NewRowMatrix(3)
	// Row of node 2 (index 1): p21 = p23 = 0.5. Row of node 3: p32 = 1.
	// Query row (node 1) zeroed.
	m.Set(1, 0, 0.5)
	m.Set(1, 2, 0.5)
	m.Set(2, 1, 1)
	e := []float64{1, 0, 0}
	r := make([]float64, 3)
	m.FixedPoint(0.5, e, r, 1e-14, 100000)
	want := []float64{1, 2.0 / 7, 1.0 / 7}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-10 {
			t.Fatalf("r = %v, want %v", r, want)
		}
	}
}

// TestSweepsTruncatedHorizon: L sweeps from zero of r = Mr + e compute the
// L-truncated hitting time exactly; unreachable-within-L nodes sit at L.
func TestSweepsTruncatedHorizon(t *testing.T) {
	// Path 0-1-2-3-4, query 0. THT: r_i = 1 + avg of neighbors, r_0 = 0.
	n := 5
	m := NewRowMatrix(n)
	m.Set(1, 0, 0.5)
	m.Set(1, 2, 0.5)
	m.Set(2, 1, 0.5)
	m.Set(2, 3, 0.5)
	m.Set(3, 2, 0.5)
	m.Set(3, 4, 0.5)
	m.Set(4, 3, 1)
	e := []float64{0, 1, 1, 1, 1}
	r := make([]float64, n)
	L := 3
	m.Sweeps(1, e, r, L)
	if r[0] != 0 {
		t.Fatalf("query THT = %g", r[0])
	}
	// Node 4 is 4 hops away: truncated value must be exactly L.
	if r[4] != float64(L) {
		t.Fatalf("unreachable-in-L node = %g, want %d", r[4], L)
	}
	// Node 1: walks of length <= 3 reaching 0. Hand-computed:
	// r1^1=1, r2^1=1, r3^1=1, r4^1=1
	// r1^2=1+0.5*r2^1=1.5, r2^2=1+0.5(r1^1+r3^1)=2, r3^2=2, r4^2=2
	// r1^3=1+0.5*r2^2=2, ...
	if math.Abs(r[1]-2) > 1e-12 {
		t.Fatalf("r1 = %g, want 2", r[1])
	}
}

func TestDenseLUInvert(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 8
	a := NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		a.Add(i, i, float64(n)) // diagonally dominant, hence invertible
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := f.Invert()
	if err != nil {
		t.Fatal(err)
	}
	// Check A * inv = I.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a.At(i, k) * inv.At(k, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(s-want) > 1e-9 {
				t.Fatalf("(A*inv)[%d,%d] = %g, want %g", i, j, s, want)
			}
		}
	}
}

func TestDenseLUSingular(t *testing.T) {
	a := NewDense(3) // zero matrix
	if _, err := Factor(a); err == nil {
		t.Fatal("factored a singular matrix")
	}
}

func TestDenseSolveDimensionMismatch(t *testing.T) {
	f, err := Factor(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Fatal("wrong-length b accepted")
	}
}

// TestDensePivoting: a matrix needing row swaps still factors correctly.
func TestDensePivoting(t *testing.T) {
	a := NewDense(2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveDense(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [7 3]", x)
	}
}

// pathAdj adapts a path graph to AdjacencyProvider for RCM tests.
type pathAdj struct{ n int }

func (p pathAdj) NumNodes() int { return p.n }
func (p pathAdj) Neighbors(v int32) ([]int32, []float64) {
	var nbrs []int32
	if v > 0 {
		nbrs = append(nbrs, v-1)
	}
	if int(v) < p.n-1 {
		nbrs = append(nbrs, v+1)
	}
	ws := make([]float64, len(nbrs))
	for i := range ws {
		ws[i] = 1
	}
	return nbrs, ws
}

// shuffledAdj relabels an AdjacencyProvider through a permutation, so a
// low-bandwidth graph looks scrambled until RCM recovers the structure.
type shuffledAdj struct {
	base AdjacencyProvider
	perm []int32 // new id -> base id
	inv  []int32
}

func newShuffledAdj(base AdjacencyProvider, seed int64) *shuffledAdj {
	n := base.NumNodes()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	inv := make([]int32, n)
	for i, v := range perm {
		inv[v] = int32(i)
	}
	return &shuffledAdj{base: base, perm: perm, inv: inv}
}

func (s *shuffledAdj) NumNodes() int { return s.base.NumNodes() }
func (s *shuffledAdj) Neighbors(v int32) ([]int32, []float64) {
	nbrs, ws := s.base.Neighbors(s.perm[v])
	out := make([]int32, len(nbrs))
	for i, u := range nbrs {
		out[i] = s.inv[u]
	}
	return out, ws
}

func TestRCMReducesBandwidth(t *testing.T) {
	g := newShuffledAdj(pathAdj{n: 64}, 5)
	identity := make([]int32, 64)
	for i := range identity {
		identity[i] = int32(i)
	}
	before := Bandwidth(g, identity)
	order := RCM(g)
	after := Bandwidth(g, order)
	if after != 1 {
		t.Fatalf("RCM bandwidth on a path = %d, want 1 (was %d)", after, before)
	}
	// order must be a permutation.
	seen := make([]bool, 64)
	for _, v := range order {
		if seen[v] {
			t.Fatal("RCM repeated a node")
		}
		seen[v] = true
	}
}

// TestSparseLUMatchesDense: the sparse factorization solves the same system
// as the dense one, under RCM ordering, on a random diagonally dominant
// matrix derived from a path-plus-chords graph.
func TestSparseLUMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 30
	rows := make([][]Entry, n)
	dense := Identity(n)
	c := 0.8
	addPair := func(i, j int, v float64) {
		rows[i] = append(rows[i], Entry{Col: int32(j), Val: v})
		dense.Add(i, j, -c*v)
	}
	for i := 0; i < n; i++ {
		// Sub-stochastic row: up to 3 entries summing below 1.
		rem := 0.95
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rem * rng.Float64() * 0.5
			rem -= v
			addPair(i, j, v)
		}
	}
	// A = I - cT where T's rows are `rows`.
	arows := make([][]Entry, n)
	for i := 0; i < n; i++ {
		arows[i] = append(arows[i], Entry{Col: int32(i), Val: 1})
		for _, e := range rows[i] {
			arows[i] = append(arows[i], Entry{Col: e.Col, Val: -c * e.Val})
		}
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	f, err := FactorSparse(arows, order, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	b[0] = 1
	got := f.Solve(b)
	want, err := SolveDense(dense, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := InfNorm(got, want); d > 1e-9 {
		t.Fatalf("sparse vs dense solutions differ by %g", d)
	}
	if f.Fill() <= 0 {
		t.Fatal("no fill recorded")
	}
}

func TestSparseLUFillBudget(t *testing.T) {
	n := 20
	arows := make([][]Entry, n)
	for i := 0; i < n; i++ {
		arows[i] = append(arows[i], Entry{Col: int32(i), Val: 1})
		for j := 0; j < n; j++ {
			if j != i {
				arows[i] = append(arows[i], Entry{Col: int32(j), Val: -0.01})
			}
		}
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	if _, err := FactorSparse(arows, order, 10); err != ErrFillExceeded {
		t.Fatalf("err = %v, want ErrFillExceeded", err)
	}
}

// TestPropertySparseSolveResidual: for random ordering and random
// sub-stochastic systems, the sparse LU solution satisfies the system.
func TestPropertySparseSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		c := 0.9
		trows := make([][]Entry, n)
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			if j != i {
				trows[i] = append(trows[i], Entry{Col: int32(j), Val: 0.7})
			}
		}
		arows := make([][]Entry, n)
		for i := 0; i < n; i++ {
			arows[i] = append(arows[i], Entry{Col: int32(i), Val: 1})
			for _, e := range trows[i] {
				arows[i] = append(arows[i], Entry{Col: e.Col, Val: -c * e.Val})
			}
		}
		order := make([]int32, n)
		for i := range order {
			order[i] = int32(i)
		}
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		lu, err := FactorSparse(arows, order, 1<<20)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		b[rng.Intn(n)] = 1
		x := lu.Solve(b)
		// Residual check: A x == b.
		for i := 0; i < n; i++ {
			s := 0.0
			for _, e := range arows[i] {
				s += e.Val * x[e.Col]
			}
			if math.Abs(s-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
