package linalg

import "sort"

// AdjacencyProvider is the minimal neighborhood view RCM needs. It is
// satisfied by graph.Graph without importing it (keeps linalg dependency
// free).
type AdjacencyProvider interface {
	NumNodes() int
	Neighbors(v int32) (nbrs []int32, weights []float64)
}

// RCM computes a reverse Cuthill–McKee ordering of g: a permutation that
// clusters each node near its neighbors, reducing the bandwidth of I − cT
// and hence the fill-in of the K-dash baseline's sparse factorization.
// The returned slice maps new index → original node. Disconnected components
// are ordered one after another, each from a pseudo-peripheral start.
func RCM(g AdjacencyProvider) []int32 {
	n := g.NumNodes()
	order := make([]int32, 0, n)
	visited := make([]bool, n)

	deg := func(v int32) int {
		nbrs, _ := g.Neighbors(v)
		return len(nbrs)
	}

	for {
		// Find the unvisited node of minimum degree as the component start —
		// the usual cheap stand-in for a pseudo-peripheral node.
		start := int32(-1)
		best := int(^uint(0) >> 1)
		for v := 0; v < n; v++ {
			if !visited[v] {
				if d := deg(int32(v)); d < best {
					best, start = d, int32(v)
				}
			}
		}
		if start < 0 {
			break
		}
		// BFS, expanding each node's unvisited neighbors in increasing degree
		// order (classic Cuthill–McKee).
		queue := []int32{start}
		visited[start] = true
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			order = append(order, v)
			nbrs, _ := g.Neighbors(v)
			fresh := make([]int32, 0, len(nbrs))
			for _, u := range nbrs {
				if !visited[u] {
					visited[u] = true
					fresh = append(fresh, u)
				}
			}
			sort.Slice(fresh, func(i, j int) bool { return deg(fresh[i]) < deg(fresh[j]) })
			queue = append(queue, fresh...)
		}
	}
	// Reverse for RCM.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Bandwidth returns max |i − j| over edges of g under the given ordering
// (new-index space). Used by tests to confirm RCM actually shrinks it.
func Bandwidth(g AdjacencyProvider, order []int32) int {
	pos := make([]int32, g.NumNodes())
	for i, v := range order {
		pos[v] = int32(i)
	}
	maxBW := 0
	for v := 0; v < g.NumNodes(); v++ {
		nbrs, _ := g.Neighbors(int32(v))
		for _, u := range nbrs {
			d := int(pos[v] - pos[u])
			if d < 0 {
				d = -d
			}
			if d > maxBW {
				maxBW = d
			}
		}
	}
	return maxBW
}
