// Package linalg provides the small linear-algebra kernel the proximity
// algorithms are built on: a dynamic sparse row matrix, the Jacobi-style
// fixed-point solver of the paper's Algorithm 7, finite-horizon sweeps for
// truncated hitting time, dense LU for small systems, and an RCM-ordered
// sparse LU used by the K-dash baseline's precompute step.
package linalg

import (
	"fmt"
	"math"
)

// Entry is one non-zero of a sparse row: value Val in column Col.
type Entry struct {
	Col int32
	Val float64
}

// RowMatrix is a growable sparse matrix stored as one slice of entries per
// row. FLoS uses it for the |S|×|S| local transition matrix that grows as
// the search expands (paper Algorithms 4 and 5): appending rows and entries
// is O(1), exactly the two mutations local expansion performs.
type RowMatrix struct {
	Rows [][]Entry
}

// NewRowMatrix returns a matrix with n empty rows.
func NewRowMatrix(n int) *RowMatrix {
	return &RowMatrix{Rows: make([][]Entry, n)}
}

// NumRows returns the current row count.
func (m *RowMatrix) NumRows() int { return len(m.Rows) }

// AddRow appends an empty row and returns its index. Spare capacity left
// behind by Reset is reused: the row slot and its entry slice come back
// without allocating.
func (m *RowMatrix) AddRow() int32 {
	if len(m.Rows) < cap(m.Rows) {
		m.Rows = m.Rows[:len(m.Rows)+1]
		m.Rows[len(m.Rows)-1] = m.Rows[len(m.Rows)-1][:0]
	} else {
		m.Rows = append(m.Rows, nil)
	}
	return int32(len(m.Rows) - 1)
}

// Reset empties the matrix while keeping every row's backing storage, so a
// reused matrix regrows without re-allocating. The entries beyond the new
// length stay reachable from the backing array until overwritten; callers
// must not rely on them.
func (m *RowMatrix) Reset() {
	m.Rows = m.Rows[:0]
}

// Append adds entry (row, col, val) without checking for duplicates. The
// caller owns dedup; FLoS's expansion never inserts the same coordinate
// twice.
func (m *RowMatrix) Append(row, col int32, val float64) {
	m.Rows[row] = append(m.Rows[row], Entry{Col: col, Val: val})
}

// Set replaces the value at (row, col) if present, else appends it.
func (m *RowMatrix) Set(row, col int32, val float64) {
	for i := range m.Rows[row] {
		if m.Rows[row][i].Col == col {
			m.Rows[row][i].Val = val
			return
		}
	}
	m.Append(row, col, val)
}

// At returns the value at (row, col), zero if absent.
func (m *RowMatrix) At(row, col int32) float64 {
	for _, e := range m.Rows[row] {
		if e.Col == col {
			return e.Val
		}
	}
	return 0
}

// RowSum returns the sum of the entries of a row — for transition matrices,
// the retained probability mass.
func (m *RowMatrix) RowSum(row int32) float64 {
	var s float64
	for _, e := range m.Rows[row] {
		s += e.Val
	}
	return s
}

// NumNonZero returns the total entry count.
func (m *RowMatrix) NumNonZero() int {
	var n int
	for _, r := range m.Rows {
		n += len(r)
	}
	return n
}

// MulVecAdd computes out = c*M*x + e for the leading len(out) rows.
// Columns beyond len(x) are an error in debug builds; here they panic via
// bounds check, which tests exercise deliberately.
func (m *RowMatrix) MulVecAdd(c float64, x, e, out []float64) {
	for i := range out {
		var s float64
		for _, en := range m.Rows[i] {
			s += en.Val * x[en.Col]
		}
		out[i] = c*s + e[i]
	}
}

// FixedPoint solves r = c·M·r + e by Jacobi iteration — the paper's
// Algorithm 7 ("IterativeMethod"). r holds the initial guess on entry and
// the solution on exit. Iteration stops when the max-norm step falls below
// tau or after maxIter sweeps; the sweep count is returned.
//
// For c·||M||∞ < 1 the map is a contraction, so the fixpoint is unique and
// the iteration converges from any start. Two properties FLoS relies on
// (Section 5 of DESIGN.md) follow from the map's monotonicity when M ≥ 0:
// starting from a sub-solution every iterate stays ≤ the fixpoint, and from
// a super-solution every iterate stays ≥ it — so truncating at tau never
// invalidates a bound.
func (m *RowMatrix) FixedPoint(c float64, e, r []float64, tau float64, maxIter int) int {
	n := len(r)
	next := make([]float64, n)
	for iter := 1; iter <= maxIter; iter++ {
		m.MulVecAdd(c, r, e, next)
		var delta float64
		for i := range next {
			d := math.Abs(next[i] - r[i])
			if d > delta {
				delta = d
			}
		}
		copy(r, next)
		if delta < tau {
			return iter
		}
	}
	return maxIter
}

// Sweeps applies r ← c·M·r + e exactly l times — the finite-horizon
// recursion of truncated hitting time (L sweeps from zero yield exactly the
// L-truncated values).
func (m *RowMatrix) Sweeps(c float64, e, r []float64, l int) {
	next := make([]float64, len(r))
	for s := 0; s < l; s++ {
		m.MulVecAdd(c, r, e, next)
		copy(r, next)
	}
}

// Clone deep-copies the matrix.
func (m *RowMatrix) Clone() *RowMatrix {
	out := NewRowMatrix(len(m.Rows))
	for i, row := range m.Rows {
		out.Rows[i] = append([]Entry(nil), row...)
	}
	return out
}

// CheckSubStochastic verifies every row sums to at most 1+eps and entries
// are non-negative — the invariant of all transition matrices here.
func (m *RowMatrix) CheckSubStochastic(eps float64) error {
	for i := range m.Rows {
		var s float64
		for _, e := range m.Rows[i] {
			if e.Val < 0 {
				return fmt.Errorf("linalg: negative entry %g at (%d,%d)", e.Val, i, e.Col)
			}
			s += e.Val
		}
		if s > 1+eps {
			return fmt.Errorf("linalg: row %d sums to %g > 1", i, s)
		}
	}
	return nil
}

// InfNorm returns max_i |a_i - b_i|.
func InfNorm(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}
