package linalg

import (
	"errors"
	"fmt"
	"sort"
)

// ErrFillExceeded reports that a sparse factorization grew beyond its fill
// budget. The K-dash baseline surfaces it as "precompute infeasible at this
// scale", which is exactly the behavior the paper reports for K-dash on its
// two large graphs.
var ErrFillExceeded = errors.New("linalg: sparse LU fill budget exceeded")

// SparseLU is a sparse LU factorization of a strictly row diagonally
// dominant matrix (no pivoting needed), computed under a symmetric
// permutation. The proximity systems factored here are I − cT with
// c·||T||∞ < 1, which is strictly dominant by construction.
type SparseLU struct {
	n     int
	lrows [][]Entry // strictly lower part, unit diagonal implicit; cols sorted
	udiag []float64 // diagonal of U
	urows [][]Entry // strictly upper part; cols sorted
	perm  []int32   // new index -> original index
	inv   []int32   // original index -> new index
	fill  int
}

// FactorSparse factors Ã = P·A·Pᵀ where A is given by rows (original
// indexing; each row's entries need not be sorted) and P by order
// (new → original). maxFill caps the total number of stored L+U entries;
// exceeding it aborts with ErrFillExceeded.
func FactorSparse(rows [][]Entry, order []int32, maxFill int) (*SparseLU, error) {
	n := len(rows)
	if len(order) != n {
		return nil, fmt.Errorf("linalg: order length %d != n %d", len(order), n)
	}
	f := &SparseLU{
		n:     n,
		lrows: make([][]Entry, n),
		udiag: make([]float64, n),
		urows: make([][]Entry, n),
		perm:  append([]int32(nil), order...),
		inv:   make([]int32, n),
	}
	for k, v := range order {
		f.inv[v] = int32(k)
	}

	// Up-looking row LU with a dense workspace. Row k of Ã is scattered into
	// x, eliminated against U rows 0..k-1 in increasing column order, then
	// gathered into L (cols < k) and U (cols ≥ k).
	x := make([]float64, n)
	mark := make([]bool, n)
	var cols []int32
	for k := 0; k < n; k++ {
		cols = cols[:0]
		orig := f.perm[k]
		for _, e := range rows[orig] {
			j := f.inv[e.Col]
			if !mark[j] {
				mark[j] = true
				cols = append(cols, j)
			}
			x[j] += e.Val
		}
		// Eliminate in increasing column order; eliminating column j can
		// introduce fill at columns > j, so re-sort the still-pending tail.
		sort.Slice(cols, func(a, b int) bool { return cols[a] < cols[b] })
		for ci := 0; ci < len(cols); ci++ {
			j := cols[ci]
			if j >= int32(k) {
				break
			}
			mult := x[j] / f.udiag[j]
			x[j] = mult
			if mult != 0 {
				added := false
				for _, ue := range f.urows[j] {
					if !mark[ue.Col] {
						mark[ue.Col] = true
						cols = append(cols, ue.Col)
						added = true
					}
					x[ue.Col] -= mult * ue.Val
				}
				if added {
					tail := cols[ci+1:]
					sort.Slice(tail, func(a, b int) bool { return tail[a] < tail[b] })
				}
			}
		}
		// Gather.
		var lrow, urow []Entry
		diag := 0.0
		haveDiag := false
		for _, j := range cols {
			v := x[j]
			x[j] = 0
			mark[j] = false
			if v == 0 {
				continue
			}
			switch {
			case j < int32(k):
				lrow = append(lrow, Entry{Col: j, Val: v})
			case j == int32(k):
				diag, haveDiag = v, true
			default:
				urow = append(urow, Entry{Col: j, Val: v})
			}
		}
		if !haveDiag || diag == 0 {
			return nil, fmt.Errorf("linalg: zero pivot at row %d (matrix not diagonally dominant?)", k)
		}
		sort.Slice(lrow, func(a, b int) bool { return lrow[a].Col < lrow[b].Col })
		sort.Slice(urow, func(a, b int) bool { return urow[a].Col < urow[b].Col })
		f.lrows[k] = lrow
		f.udiag[k] = diag
		f.urows[k] = urow
		f.fill += len(lrow) + len(urow) + 1
		if f.fill > maxFill {
			return nil, ErrFillExceeded
		}
	}
	return f, nil
}

// Fill returns the number of stored factor entries (a proxy for precompute
// memory, reported by the K-dash harness).
func (f *SparseLU) Fill() int { return f.fill }

// Solve returns x with A·x = b (original indexing).
func (f *SparseLU) Solve(b []float64) []float64 {
	n := f.n
	y := make([]float64, n)
	// Forward: L·y = P·b.
	for k := 0; k < n; k++ {
		s := b[f.perm[k]]
		for _, e := range f.lrows[k] {
			s -= e.Val * y[e.Col]
		}
		y[k] = s
	}
	// Backward: U·z = y.
	for k := n - 1; k >= 0; k-- {
		s := y[k]
		for _, e := range f.urows[k] {
			s -= e.Val * y[e.Col]
		}
		y[k] = s / f.udiag[k]
	}
	// Un-permute.
	x := make([]float64, n)
	for k := 0; k < n; k++ {
		x[f.perm[k]] = y[k]
	}
	return x
}
