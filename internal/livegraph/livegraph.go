// Package livegraph serves queries while the graph mutates.
//
// A LiveGraph owns a chain of immutable CSR snapshots. Writers apply batched
// edge mutations by producing a new copy-on-write snapshot: only the adjacency
// rows touched by the batch are re-materialized; every untouched row aliases
// the parent snapshot's slice (and transitively the original MemGraph's CSR
// arrays). Readers pin a snapshot with Acquire and run a whole query against
// that frozen view, so a search never observes a torn topology no matter how
// many batches writers publish mid-flight.
//
// Reclamation is deferred and non-blocking: a snapshot carries a reference
// count (one reference held by the LiveGraph while it is current, one per
// pinned reader); when the count reaches zero the snapshot merely becomes
// garbage for the Go runtime to collect. Writers therefore never wait for
// in-flight queries, and readers never wait for writers beyond a brief
// RWMutex-protected pointer load at pin time.
//
// This is the serving-side realization of the paper's pitch that FLoS,
// needing no precomputed index, "naturally supports dynamic graphs": a
// mutation batch costs O(touched rows + n pointer copies), not a rebuild.
package livegraph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"flos/internal/graph"
)

// Op selects the kind of a single edge mutation.
type Op uint8

const (
	// OpAdd inserts a new edge; it is an error if the edge already exists.
	OpAdd Op = iota
	// OpRemove deletes an existing edge; it is an error if it does not exist.
	OpRemove
	// OpSet upserts: it inserts the edge if absent, else replaces its weight.
	OpSet
)

// String returns the wire name used by the HTTP mutation endpoint.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	case OpSet:
		return "set"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ParseOp converts a wire name back into an Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "add":
		return OpAdd, nil
	case "remove":
		return OpRemove, nil
	case "set":
		return OpSet, nil
	}
	return 0, fmt.Errorf("livegraph: unknown op %q", s)
}

// EdgeOp is one undirected edge mutation. W is ignored for OpRemove.
type EdgeOp struct {
	Op   Op
	U, V graph.NodeID
	W    float64
}

// Snapshot is one immutable point-in-time view in a LiveGraph's chain. It
// implements graph.Graph (plus the StableNeighbors and Viewer capabilities),
// so every search engine runs on it unchanged and may alias its adjacency
// slices for the lifetime of the pin.
type Snapshot struct {
	owner  *LiveGraph
	epoch  uint64
	nEdges int64

	// Per-node adjacency rows, sorted by target. Untouched rows alias the
	// parent snapshot's slices; touched rows are freshly materialized copies.
	nbrs [][]graph.NodeID
	wts  [][]float64
	degs []float64

	topOnce sync.Once
	top     []graph.DegreeEntry

	// refs counts the LiveGraph's "current" reference plus one per pinned
	// reader. Hitting zero only updates the alive gauge; memory reclamation
	// is the garbage collector's job, which is what makes Release non-blocking.
	refs atomic.Int64
}

var (
	_ graph.Graph           = (*Snapshot)(nil)
	_ graph.StableNeighbors = (*Snapshot)(nil)
	_ graph.Viewer          = (*Snapshot)(nil)
)

// Epoch returns the snapshot's position in the chain; the base snapshot is
// epoch 1 and every published batch increments it.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NumNodes returns the (fixed) node count.
func (s *Snapshot) NumNodes() int { return len(s.degs) }

// NumEdges returns the undirected edge count of this snapshot.
func (s *Snapshot) NumEdges() int64 { return s.nEdges }

// Neighbors returns the adjacency of v as immutable slices, sorted by target.
func (s *Snapshot) Neighbors(v graph.NodeID) ([]graph.NodeID, []float64) {
	return s.nbrs[v], s.wts[v]
}

// Degree returns the weighted degree of v.
func (s *Snapshot) Degree(v graph.NodeID) float64 { return s.degs[v] }

// TopDegrees returns up to k largest-degree nodes, non-increasing. The index
// is built lazily on first use (most snapshots are short-lived and most
// measures never call TopDegrees) via the same TopDegreeIndex helper MemGraph
// uses, keeping the RWR w(S̄) guard byte-identical to a frozen rebuild.
func (s *Snapshot) TopDegrees(k int) []graph.DegreeEntry {
	s.topOnce.Do(func() { s.top = graph.TopDegreeIndex(s.degs) })
	if k > len(s.top) {
		k = len(s.top)
	}
	return s.top[:k]
}

// StableNeighbors reports that adjacency slices stay valid while the snapshot
// is pinned, letting the engines skip defensive copies.
func (s *Snapshot) StableNeighbors() bool { return true }

// NewView returns the snapshot itself: it is immutable and safe for any
// number of concurrent readers.
func (s *Snapshot) NewView() graph.Graph { return s }

// Release drops one pin. It must be called exactly once per Acquire and never
// blocks. Releasing the last reference only updates the owner's alive gauge.
func (s *Snapshot) Release() {
	if s.refs.Add(-1) == 0 {
		s.owner.alive.Add(-1)
	}
}

func (s *Snapshot) retain() { s.refs.Add(1) }

// Materialize rebuilds the snapshot into a fresh, fully independent MemGraph
// (no aliasing into the chain). Tests use it to run the serial golden
// reference for byte-identity checks.
func (s *Snapshot) Materialize() (*graph.MemGraph, error) {
	b := graph.NewBuilder(s.NumNodes())
	for v := 0; v < s.NumNodes(); v++ {
		nbrs, ws := s.Neighbors(graph.NodeID(v))
		for i, u := range nbrs {
			if u > graph.NodeID(v) {
				if err := b.AddEdge(graph.NodeID(v), u, ws[i]); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build()
}

// LiveGraph owns the snapshot chain. It itself implements graph.Graph by
// delegating to the current snapshot — convenient for one-shot calls like
// flos.TopK(live, q, opt), which pin a snapshot per query through the
// Snapshotter capability — while servers pin explicitly via Acquire.
type LiveGraph struct {
	// mu guards the cur pointer swap; readers only hold it for a pointer
	// load + refcount increment.
	mu  sync.RWMutex
	cur *Snapshot

	// wmu serializes writers; snapshot construction happens outside mu so
	// readers are never blocked behind a batch.
	wmu sync.Mutex

	alive    atomic.Int64 // snapshots with refs > 0
	created  atomic.Int64 // snapshots ever published (incl. base)
	rowsCoWd atomic.Int64 // adjacency rows re-materialized across all batches
	applied  atomic.Int64 // edge ops applied
	batches  atomic.Int64 // successful non-empty Apply calls
}

var (
	_ graph.Graph       = (*LiveGraph)(nil)
	_ graph.Viewer      = (*LiveGraph)(nil)
	_ graph.Snapshotter = (*LiveGraph)(nil)
)

// New wraps base in a LiveGraph. The base snapshot (epoch 1) aliases the
// MemGraph's CSR rows; the base must not be modified afterwards.
func New(base *graph.MemGraph) *LiveGraph {
	n := base.NumNodes()
	s := &Snapshot{
		epoch:  1,
		nEdges: base.NumEdges(),
		nbrs:   make([][]graph.NodeID, n),
		wts:    make([][]float64, n),
		degs:   make([]float64, n),
	}
	for v := 0; v < n; v++ {
		s.nbrs[v], s.wts[v] = base.Neighbors(graph.NodeID(v))
		s.degs[v] = base.Degree(graph.NodeID(v))
	}
	lg := &LiveGraph{cur: s}
	s.owner = lg
	s.refs.Store(1)
	lg.alive.Store(1)
	lg.created.Store(1)
	return lg
}

// Acquire pins and returns the current snapshot. The caller must call
// Release exactly once when done.
func (lg *LiveGraph) Acquire() *Snapshot {
	lg.mu.RLock()
	s := lg.cur
	s.retain()
	lg.mu.RUnlock()
	return s
}

// AcquireSnapshot implements graph.Snapshotter for the engine-side per-query
// pinning path.
func (lg *LiveGraph) AcquireSnapshot() (graph.Graph, func()) {
	s := lg.Acquire()
	return s, s.Release
}

// snap loads the current snapshot without pinning it. Safe because snapshots
// are immutable and reclaimed only by the garbage collector; callers must not
// assume the snapshot stays current.
func (lg *LiveGraph) snap() *Snapshot {
	lg.mu.RLock()
	s := lg.cur
	lg.mu.RUnlock()
	return s
}

// NumNodes returns the node count (fixed across the chain).
func (lg *LiveGraph) NumNodes() int { return lg.snap().NumNodes() }

// NumEdges returns the current snapshot's undirected edge count.
func (lg *LiveGraph) NumEdges() int64 { return lg.snap().NumEdges() }

// Neighbors returns the current snapshot's adjacency of v.
func (lg *LiveGraph) Neighbors(v graph.NodeID) ([]graph.NodeID, []float64) {
	return lg.snap().Neighbors(v)
}

// Degree returns the current snapshot's weighted degree of v.
func (lg *LiveGraph) Degree(v graph.NodeID) float64 { return lg.snap().Degree(v) }

// TopDegrees returns the current snapshot's degree index prefix.
func (lg *LiveGraph) TopDegrees(k int) []graph.DegreeEntry { return lg.snap().TopDegrees(k) }

// NewView returns the LiveGraph itself: all read paths resolve through the
// immutable current snapshot, so one handle serves any number of goroutines.
func (lg *LiveGraph) NewView() graph.Graph { return lg }

// Epoch returns the current snapshot's epoch.
func (lg *LiveGraph) Epoch() uint64 { return lg.snap().epoch }

// Stats is a point-in-time counter snapshot for metrics export.
type Stats struct {
	Epoch          uint64
	SnapshotsAlive int64
	SnapshotsTotal int64
	RowsCoWed      int64
	OpsApplied     int64
	Batches        int64
	Nodes          int
	Edges          int64
}

// Stats returns current live-graph counters.
func (lg *LiveGraph) Stats() Stats {
	s := lg.snap()
	return Stats{
		Epoch:          s.epoch,
		SnapshotsAlive: lg.alive.Load(),
		SnapshotsTotal: lg.created.Load(),
		RowsCoWed:      lg.rowsCoWd.Load(),
		OpsApplied:     lg.applied.Load(),
		Batches:        lg.batches.Load(),
		Nodes:          s.NumNodes(),
		Edges:          s.NumEdges(),
	}
}

// Apply atomically applies a batch of edge mutations, publishing one new
// snapshot. Either every op applies (the new snapshot becomes current and
// its epoch, with the sorted list of nodes whose adjacency changed, is
// returned) or none do: the first invalid op aborts the whole batch with
// nothing published. An empty batch returns the current snapshot unchanged.
//
// The returned snapshot is NOT pinned for the caller; it is alive because it
// is current. The touched list is what cache invalidation intersects against
// query footprints.
//
// Writers are serialized; readers are never blocked during row construction,
// only during the final pointer swap.
func (lg *LiveGraph) Apply(ops []EdgeOp) (*Snapshot, []graph.NodeID, error) {
	lg.wmu.Lock()
	defer lg.wmu.Unlock()

	// cur only changes under wmu, so this unpinned load is the true parent.
	parent := lg.snap()
	if len(ops) == 0 {
		return parent, nil, nil
	}

	n := parent.NumNodes()
	next := &Snapshot{
		owner:  lg,
		epoch:  parent.epoch + 1,
		nEdges: parent.nEdges,
		// O(n) outer-array copies; inner rows still alias the parent until
		// individually CoW'd below.
		nbrs: append([][]graph.NodeID(nil), parent.nbrs...),
		wts:  append([][]float64(nil), parent.wts...),
		degs: append([]float64(nil), parent.degs...),
	}

	cowed := make(map[graph.NodeID]bool, 2*len(ops))
	cow := func(v graph.NodeID) {
		if cowed[v] {
			return
		}
		cowed[v] = true
		next.nbrs[v] = append([]graph.NodeID(nil), next.nbrs[v]...)
		next.wts[v] = append([]float64(nil), next.wts[v]...)
	}
	// find returns the insertion position of u in v's sorted row and whether
	// u is present.
	find := func(v, u graph.NodeID) (int, bool) {
		row := next.nbrs[v]
		i := sort.Search(len(row), func(i int) bool { return row[i] >= u })
		return i, i < len(row) && row[i] == u
	}
	insert := func(v, u graph.NodeID, w float64) {
		cow(v)
		i, _ := find(v, u)
		next.nbrs[v] = append(next.nbrs[v], 0)
		copy(next.nbrs[v][i+1:], next.nbrs[v][i:])
		next.nbrs[v][i] = u
		next.wts[v] = append(next.wts[v], 0)
		copy(next.wts[v][i+1:], next.wts[v][i:])
		next.wts[v][i] = w
	}
	remove := func(v, u graph.NodeID) {
		cow(v)
		i, _ := find(v, u)
		next.nbrs[v] = append(next.nbrs[v][:i], next.nbrs[v][i+1:]...)
		next.wts[v] = append(next.wts[v][:i], next.wts[v][i+1:]...)
	}

	for i, op := range ops {
		u, v := op.U, op.V
		if u == v || u < 0 || v < 0 || int(u) >= n || int(v) >= n {
			return nil, nil, fmt.Errorf("livegraph: op %d: invalid edge (%d,%d)", i, u, v)
		}
		switch op.Op {
		case OpAdd, OpSet:
			if op.W <= 0 {
				return nil, nil, fmt.Errorf("livegraph: op %d: non-positive weight %g", i, op.W)
			}
			_, exists := find(u, v)
			if exists {
				if op.Op == OpAdd {
					return nil, nil, fmt.Errorf("livegraph: op %d: edge (%d,%d) already exists", i, u, v)
				}
				cow(u)
				cow(v)
				j, _ := find(u, v)
				next.wts[u][j] = op.W
				j, _ = find(v, u)
				next.wts[v][j] = op.W
			} else {
				insert(u, v, op.W)
				insert(v, u, op.W)
				next.nEdges++
			}
		case OpRemove:
			if _, exists := find(u, v); !exists {
				return nil, nil, fmt.Errorf("livegraph: op %d: edge (%d,%d) does not exist", i, u, v)
			}
			remove(u, v)
			remove(v, u)
			next.nEdges--
		default:
			return nil, nil, fmt.Errorf("livegraph: op %d: unknown op %d", i, op.Op)
		}
	}

	// Recompute touched degrees by summing each fresh row in ascending-target
	// order — the same order Builder.Build sums sorted halves — so degrees
	// match a from-scratch rebuild bit for bit.
	touched := make([]graph.NodeID, 0, len(cowed))
	for v := range cowed {
		touched = append(touched, v)
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	for _, v := range touched {
		var sum float64
		for _, w := range next.wts[v] {
			sum += w
		}
		next.degs[v] = sum
	}

	next.refs.Store(1) // the LiveGraph's "current" reference
	lg.mu.Lock()
	lg.cur = next
	lg.mu.Unlock()
	lg.alive.Add(1)
	lg.created.Add(1)
	lg.rowsCoWd.Add(int64(len(touched)))
	lg.applied.Add(int64(len(ops)))
	lg.batches.Add(1)
	parent.Release() // drop the chain's reference; pinned readers keep it alive

	return next, touched, nil
}
