package livegraph

import (
	"sync"
	"testing"

	"flos/internal/graph"
)

func baseGraph(t *testing.T) *graph.MemGraph {
	t.Helper()
	return graph.MustFromEdges(8,
		0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 0, 0, 4)
}

func row(g graph.Graph, v graph.NodeID) ([]graph.NodeID, []float64) {
	n, w := g.Neighbors(v)
	return n, w
}

func TestBaseSnapshotAliasesMemGraph(t *testing.T) {
	base := baseGraph(t)
	lg := New(base)
	s := lg.Acquire()
	defer s.Release()

	if s.Epoch() != 1 {
		t.Fatalf("base epoch = %d, want 1", s.Epoch())
	}
	if s.NumNodes() != base.NumNodes() || s.NumEdges() != base.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", s.NumNodes(), s.NumEdges(), base.NumNodes(), base.NumEdges())
	}
	for v := graph.NodeID(0); int(v) < base.NumNodes(); v++ {
		bn, bw := base.Neighbors(v)
		sn, sw := s.Neighbors(v)
		if len(bn) > 0 && (&bn[0] != &sn[0] || &bw[0] != &sw[0]) {
			t.Fatalf("node %d: base snapshot row is a copy, want alias", v)
		}
		if s.Degree(v) != base.Degree(v) {
			t.Fatalf("node %d: degree %g != %g", v, s.Degree(v), base.Degree(v))
		}
	}
}

func TestApplyCoWOnlyTouchedRows(t *testing.T) {
	lg := New(baseGraph(t))
	s1 := lg.Acquire()
	defer s1.Release()

	s2, touched, err := lg.Apply([]EdgeOp{{Op: OpAdd, U: 1, V: 5, W: 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", s2.Epoch())
	}
	if len(touched) != 2 || touched[0] != 1 || touched[1] != 5 {
		t.Fatalf("touched = %v, want [1 5]", touched)
	}
	// Untouched rows alias the parent snapshot.
	for _, v := range []graph.NodeID{0, 2, 3, 4, 6, 7} {
		n1, w1 := row(s1, v)
		n2, w2 := row(s2, v)
		if &n1[0] != &n2[0] || &w1[0] != &w2[0] {
			t.Fatalf("node %d: untouched row was copied", v)
		}
	}
	// Touched rows are fresh, sorted, and include the new edge.
	n2, w2 := row(s2, 1)
	n1, _ := row(s1, 1)
	if len(n2) != len(n1)+1 {
		t.Fatalf("node 1 row length %d, want %d", len(n2), len(n1)+1)
	}
	for i := 1; i < len(n2); i++ {
		if n2[i-1] >= n2[i] {
			t.Fatalf("node 1 row not sorted: %v", n2)
		}
	}
	found := false
	for i, u := range n2 {
		if u == 5 {
			found = true
			if w2[i] != 2.5 {
				t.Fatalf("edge (1,5) weight %g, want 2.5", w2[i])
			}
		}
	}
	if !found {
		t.Fatalf("edge (1,5) missing from %v", n2)
	}
	// Parent snapshot is untouched by the mutation.
	for i := 1; i < len(n1); i++ {
		if n1[i] == 5 {
			t.Fatal("parent snapshot gained the new edge")
		}
	}
	if s2.NumEdges() != s1.NumEdges()+1 {
		t.Fatalf("edge count %d, want %d", s2.NumEdges(), s1.NumEdges()+1)
	}
	if got, want := s2.Degree(1), s1.Degree(1)+2.5; got != want {
		t.Fatalf("degree(1) = %g, want %g", got, want)
	}
}

func TestApplyAtomicAbort(t *testing.T) {
	lg := New(baseGraph(t))
	before := lg.Stats()
	// Second op is invalid (edge exists); first op must not leak through.
	_, _, err := lg.Apply([]EdgeOp{
		{Op: OpAdd, U: 1, V: 5, W: 1},
		{Op: OpAdd, U: 0, V: 1, W: 1},
	})
	if err == nil {
		t.Fatal("expected error from invalid batch")
	}
	after := lg.Stats()
	if after != before {
		t.Fatalf("failed batch changed stats: %+v -> %+v", before, after)
	}
	s := lg.Acquire()
	defer s.Release()
	if s.Epoch() != 1 {
		t.Fatalf("failed batch published epoch %d", s.Epoch())
	}
	n, _ := row(s, 1)
	for _, u := range n {
		if u == 5 {
			t.Fatal("failed batch leaked edge (1,5)")
		}
	}
}

func TestRemoveAndSet(t *testing.T) {
	lg := New(baseGraph(t))
	s, _, err := lg.Apply([]EdgeOp{
		{Op: OpRemove, U: 0, V: 4},
		{Op: OpSet, U: 0, V: 1, W: 9},
		{Op: OpSet, U: 2, V: 6, W: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, w := row(s, 0)
	for _, u := range n {
		if u == 4 {
			t.Fatal("removed edge (0,4) still present")
		}
	}
	seen := false
	for i, u := range n {
		if u == 1 {
			seen = true
			if w[i] != 9 {
				t.Fatalf("set edge (0,1) weight %g, want 9", w[i])
			}
		}
	}
	if !seen {
		t.Fatal("edge (0,1) lost by OpSet")
	}
	// OpSet on an absent edge inserts it.
	n, _ = row(s, 2)
	found := false
	for _, u := range n {
		if u == 6 {
			found = true
		}
	}
	if !found {
		t.Fatal("OpSet did not insert absent edge (2,6)")
	}
	if err := mustValidate(s); err != nil {
		t.Fatal(err)
	}
}

// mustValidate materializes the snapshot and runs MemGraph.Validate, checking
// symmetry, sortedness, and degree consistency of the mutated topology.
func mustValidate(s *Snapshot) error {
	m, err := s.Materialize()
	if err != nil {
		return err
	}
	return m.Validate()
}

func TestMaterializeMatchesSnapshot(t *testing.T) {
	lg := New(baseGraph(t))
	s, _, err := lg.Apply([]EdgeOp{
		{Op: OpAdd, U: 1, V: 5, W: 2.5},
		{Op: OpRemove, U: 3, V: 4},
		{Op: OpSet, U: 6, V: 7, W: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != s.NumNodes() || m.NumEdges() != s.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", m.NumNodes(), m.NumEdges(), s.NumNodes(), s.NumEdges())
	}
	for v := graph.NodeID(0); int(v) < s.NumNodes(); v++ {
		sn, sw := s.Neighbors(v)
		mn, mw := m.Neighbors(v)
		if len(sn) != len(mn) {
			t.Fatalf("node %d: row length %d vs %d", v, len(sn), len(mn))
		}
		for i := range sn {
			if sn[i] != mn[i] || sw[i] != mw[i] {
				t.Fatalf("node %d: row differs at %d", v, i)
			}
		}
		if s.Degree(v) != m.Degree(v) {
			t.Fatalf("node %d: degree %v vs %v", v, s.Degree(v), m.Degree(v))
		}
	}
	// TopDegrees must be byte-identical to the rebuilt graph's index.
	st := s.TopDegrees(s.NumNodes())
	mt := m.TopDegrees(m.NumNodes())
	if len(st) != len(mt) {
		t.Fatalf("top-degree length %d vs %d", len(st), len(mt))
	}
	for i := range st {
		if st[i] != mt[i] {
			t.Fatalf("top-degree entry %d: %+v vs %+v", i, st[i], mt[i])
		}
	}
}

func TestAliveGaugeAndReclamation(t *testing.T) {
	lg := New(baseGraph(t))
	if got := lg.Stats().SnapshotsAlive; got != 1 {
		t.Fatalf("alive = %d, want 1", got)
	}
	s1 := lg.Acquire() // pin epoch 1
	if _, _, err := lg.Apply([]EdgeOp{{Op: OpAdd, U: 1, V: 5, W: 1}}); err != nil {
		t.Fatal(err)
	}
	// Epoch 1 is pinned by s1, epoch 2 is current: both alive.
	if got := lg.Stats().SnapshotsAlive; got != 2 {
		t.Fatalf("alive = %d, want 2 (one pinned, one current)", got)
	}
	s1.Release()
	if got := lg.Stats().SnapshotsAlive; got != 1 {
		t.Fatalf("alive after release = %d, want 1", got)
	}
	if got := lg.Stats().SnapshotsTotal; got != 2 {
		t.Fatalf("total = %d, want 2", got)
	}
}

func TestConcurrentPinnedReadsUnderWrites(t *testing.T) {
	lg := New(baseGraph(t))
	const writers = 2
	const readers = 6
	stop := make(chan struct{})
	var wgW, wgR sync.WaitGroup

	for w := 0; w < writers; w++ {
		wgW.Add(1)
		go func(id int) {
			defer wgW.Done()
			// Each writer toggles its own private edge so batches never
			// conflict logically; Apply serializes them anyway.
			u := graph.NodeID(id)
			v := graph.NodeID(id + 4)
			present := false
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var ops []EdgeOp
				if present {
					ops = []EdgeOp{{Op: OpRemove, U: u, V: v}}
				} else {
					ops = []EdgeOp{{Op: OpSet, U: u, V: v, W: 1 + float64(i%7)}}
				}
				if _, _, err := lg.Apply(ops); err != nil {
					// The edge may pre-exist in the base; flip state and retry.
					present = !present
					continue
				}
				present = !present
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wgR.Add(1)
		go func() {
			defer wgR.Done()
			for i := 0; i < 300; i++ {
				s := lg.Acquire()
				// A pinned snapshot must be internally consistent: every
				// row sorted, every degree equal to its row sum, symmetric.
				for v := graph.NodeID(0); int(v) < s.NumNodes(); v++ {
					nbrs, ws := s.Neighbors(v)
					var sum float64
					for j, u := range nbrs {
						if j > 0 && nbrs[j-1] >= u {
							t.Errorf("epoch %d node %d: unsorted row", s.Epoch(), v)
							s.Release()
							return
						}
						sum += ws[j]
					}
					if d := s.Degree(v); d != sum {
						t.Errorf("epoch %d node %d: degree %g != row sum %g", s.Epoch(), v, d, sum)
						s.Release()
						return
					}
				}
				s.Release()
			}
		}()
	}
	// Readers run a bounded workload; once they drain, stop the writers.
	wgR.Wait()
	close(stop)
	wgW.Wait()

	if lg.Stats().SnapshotsAlive != 1 {
		t.Fatalf("alive = %d after all releases, want 1", lg.Stats().SnapshotsAlive)
	}
}
