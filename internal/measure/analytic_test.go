package measure

// Closed-form oracle tests: on symmetric fixture graphs every measure has a
// hand-derivable value, pinning the solvers to algebra rather than to each
// other.

import (
	"math"
	"testing"

	"flos/internal/gen"
	"flos/internal/graph"
)

func solveTight(t *testing.T, g graph.Graph, q graph.NodeID, k Kind, c float64, L int) []float64 {
	t.Helper()
	r, _, err := Exact(g, q, k, Params{C: c, L: L, Tau: 1e-13, MaxIter: 500000})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestAnalyticStarPHP: query at the center of a star; every leaf's only
// neighbor is the center, so PHP(leaf) = c·PHP(center) = c.
func TestAnalyticStarPHP(t *testing.T) {
	g := gen.Star(9)
	c := 0.7
	r := solveTight(t, g, 0, PHP, c, 10)
	for v := 1; v < 9; v++ {
		if math.Abs(r[v]-c) > 1e-10 {
			t.Fatalf("PHP(leaf %d) = %g, want %g", v, r[v], c)
		}
	}
}

// TestAnalyticStarTHT: from a leaf the walk hits the center in exactly one
// step: THT(leaf) = 1.
func TestAnalyticStarTHT(t *testing.T) {
	g := gen.Star(7)
	r := solveTight(t, g, 0, THT, 0.5, 10)
	for v := 1; v < 7; v++ {
		if math.Abs(r[v]-1) > 1e-12 {
			t.Fatalf("THT(leaf %d) = %g, want 1", v, r[v])
		}
	}
}

// TestAnalyticStarRWR: with the query at the center,
// r_center = c / (1 − (1−c)²) and each leaf holds (1−c)·r_center/(n−1).
func TestAnalyticStarRWR(t *testing.T) {
	n := 11
	g := gen.Star(n)
	c := 0.4
	r := solveTight(t, g, 0, RWR, c, 10)
	wantCenter := c / (1 - (1-c)*(1-c))
	if math.Abs(r[0]-wantCenter) > 1e-9 {
		t.Fatalf("RWR(center) = %g, want %g", r[0], wantCenter)
	}
	wantLeaf := (1 - c) * wantCenter / float64(n-1)
	for v := 1; v < n; v++ {
		if math.Abs(r[v]-wantLeaf) > 1e-9 {
			t.Fatalf("RWR(leaf %d) = %g, want %g", v, r[v], wantLeaf)
		}
	}
}

// TestAnalyticCompletePHP: on K_n all non-query nodes share
// r = c / ((n−1) − c·(n−2)).
func TestAnalyticCompletePHP(t *testing.T) {
	n := 8
	g := gen.Complete(n)
	c := 0.5
	r := solveTight(t, g, 3, PHP, c, 10)
	want := c / (float64(n-1) - c*float64(n-2))
	for v := 0; v < n; v++ {
		if v == 3 {
			if r[v] != 1 {
				t.Fatalf("PHP(q) = %g", r[v])
			}
			continue
		}
		if math.Abs(r[v]-want) > 1e-10 {
			t.Fatalf("PHP(%d) = %g, want %g", v, r[v], want)
		}
	}
}

// TestAnalyticCompleteDHT: on K_n all non-query nodes share
// r = 1 / (1 − (1−c)·(n−2)/(n−1)).
func TestAnalyticCompleteDHT(t *testing.T) {
	n := 9
	c := 0.3
	g := gen.Complete(n)
	r := solveTight(t, g, 0, DHT, c, 10)
	want := 1 / (1 - (1-c)*float64(n-2)/float64(n-1))
	for v := 1; v < n; v++ {
		if math.Abs(r[v]-want) > 1e-9 {
			t.Fatalf("DHT(%d) = %g, want %g", v, r[v], want)
		}
	}
}

// TestAnalyticRingSymmetry: on an even ring with the query at 0, values
// must be symmetric: r[i] == r[n−i].
func TestAnalyticRingSymmetry(t *testing.T) {
	n := 10
	g := gen.Ring(n)
	for _, k := range Kinds() {
		r := solveTight(t, g, 0, k, 0.5, 10)
		for i := 1; i < n/2; i++ {
			if math.Abs(r[i]-r[n-i]) > 1e-9 {
				t.Fatalf("%v: ring asymmetry r[%d]=%g r[%d]=%g", k, i, r[i], n-i, r[n-i])
			}
		}
		// Monotone with ring distance on the near side (closer is closer).
		for i := 1; i < n/2-1; i++ {
			if k.HigherIsCloser() {
				if r[i] < r[i+1]-1e-12 {
					t.Fatalf("%v: r[%d]=%g < r[%d]=%g", k, i, r[i], i+1, r[i+1])
				}
			} else {
				if r[i] > r[i+1]+1e-12 {
					t.Fatalf("%v: r[%d]=%g > r[%d]=%g", k, i, r[i], i+1, r[i+1])
				}
			}
		}
	}
}

// TestAnalyticWeightedPath reproduces the paper's Figure 2 examples exactly:
// path 1-2-3, q=1, c=0.5. Original PHP r = [1, 2/7, 1/7]; deleting p2,3
// gives [1, 1/4, 1/8]; changing p3,2's destination to node 1 gives
// [1, 3/8, 1/2].
func TestAnalyticWeightedPath(t *testing.T) {
	g := gen.WeightedTriangle()
	r := solveTight(t, g, 0, PHP, 0.5, 10)
	want := []float64{1, 2.0 / 7, 1.0 / 7}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-10 {
			t.Fatalf("original r = %v, want %v", r, want)
		}
	}
	// Deleting p2,3 decouples node 2 from 3: solve by hand the 2-node
	// system r2 = c·(1/2)·r1 = 1/4, and r3 = c·r2 = 1/8.
	// (This is what the FLoS lower-bound construction computes; the engine
	// tests cover it — here we just assert the paper's numbers are what the
	// algebra gives.)
	r2 := 0.5 * 0.5 * 1.0
	r3 := 0.5 * r2
	if r2 != 0.25 || r3 != 0.125 {
		t.Fatalf("deletion algebra broken: %g %g", r2, r3)
	}
	// Destination change: r3' = c·r1 = 1/2; r2' = c·(r1/2 + r3'/2) = 3/8.
	r3p := 0.5 * 1.0
	r2p := 0.5 * (0.5 + 0.5*r3p)
	if r3p != 0.5 || r2p != 0.375 {
		t.Fatalf("destination-change algebra broken: %g %g", r2p, r3p)
	}
}

// TestAnalyticLollipopTHT: on a lollipop, the tail tip is farther in
// hitting time than any clique node when querying inside the clique.
func TestAnalyticLollipopTHT(t *testing.T) {
	g := gen.Lollipop(6, 5)
	r := solveTight(t, g, 1, THT, 0.5, 10)
	tip := r[len(r)-1]
	for v := 0; v < 6; v++ {
		if v == 1 {
			continue
		}
		if r[v] >= tip {
			t.Fatalf("clique node %d (%.3f) not closer than tail tip (%.3f)", v, r[v], tip)
		}
	}
}
