package measure

// Certification-gap semantics per measure. The engines' stopping rule
// compares two bound keys — the k-th selected candidate's certified-side
// bound against the best competing bound over everything else — but which
// side is "certified" depends on the measure's ranking direction:
// higher-is-closer measures (PHP, EI, RWR) certify with lower bounds against
// competing upper bounds, while lower-is-closer measures (DHT via the
// order-reversing Theorem-2 map, THT natively) certify with upper bounds
// against competing lower bounds. These helpers centralize that orientation
// so every layer above the engines reports gaps and bound intervals with one
// convention: a gap of 0 means fully separated, and intervals always satisfy
// Lower <= Upper in the displayed score scale.

// CertGap returns the residual certification gap for measure kind, given
// the final kth/rest bound keys in the engine's certification-key scale
// (the orientation core.IterStats documents). The result is oriented so 0
// means the top-k is fully separated from the rest, and is clamped at 0:
// a passed stopping rule can leave the raw difference slightly negative
// (the certified side strictly ahead), which is zero residual error.
func CertGap(kind Kind, kth, rest float64) float64 {
	var g float64
	if kind == THT {
		// THT's engine certifies upper bounds (kth) against competing lower
		// bounds (rest): uncertainty remains while kth exceeds rest.
		g = kth - rest
	} else {
		// PHP-family engines — including DHT, which rides the PHP engine
		// through an order-reversing map — certify lower bounds (kth)
		// against competing upper bounds (rest).
		g = rest - kth
	}
	if g < 0 {
		return 0
	}
	return g
}

// ScoreBoundsFromPHP converts a node's PHP-scale bound interval
// [lbPHP, ubPHP] into the measure's displayed score scale, returning
// lo <= hi. DHT's Theorem-2 map (1-php)/c is order-reversing, so its
// interval endpoints swap; the other PHP-family maps are monotone
// increasing. THT bounds are native hop counts and never pass through
// here (the THT engine reports them directly).
func ScoreBoundsFromPHP(kind Kind, p Params, lbPHP, ubPHP, degree float64) (lo, hi float64, err error) {
	lo, err = ScoreFromPHP(kind, p, lbPHP, degree)
	if err != nil {
		return 0, 0, err
	}
	hi, err = ScoreFromPHP(kind, p, ubPHP, degree)
	if err != nil {
		return 0, 0, err
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo, hi, nil
}
