package measure

import (
	"fmt"

	"flos/internal/graph"
)

// This file carries the measure-equivalence machinery of the paper's
// Theorems 2 and 6. FLoS natively bounds PHP; every other measure is served
// by translating its parameters to the ranking-equivalent PHP instance and,
// where needed (RWR), rescaling scores by node degree.

// EquivalentPHPParams maps a measure's parameters to the PHP parameters that
// produce the same ranking:
//
//   - PHP: unchanged.
//   - EI (restart c):  PHP decay 1−c; EI(i) = EI(q)·PHP(i)   (Theorem 2).
//   - DHT (our C, transition decay 1−C): PHP decay 1−C;
//     PHP(i) = 1 − C·DHT(i), an order-reversing affine map    (Theorem 2).
//   - RWR (restart c): PHP decay 1−c; RWR(i) ∝ w_i·PHP(i)     (Theorem 6).
//   - THT has no PHP equivalent (finite horizon); translating it is an error.
func EquivalentPHPParams(kind Kind, p Params) (Params, error) {
	switch kind {
	case PHP:
		return p, nil
	case EI, RWR, DHT:
		q := p
		q.C = 1 - p.C
		return q, nil
	case THT:
		return Params{}, fmt.Errorf("measure: THT has no PHP-equivalent parameters")
	}
	return Params{}, fmt.Errorf("measure: unknown kind %v", kind)
}

// ScoreFromPHP converts a PHP proximity (computed with the parameters from
// EquivalentPHPParams) into the requested measure's score, up to the
// query-dependent positive constant that the theorems leave free. Because
// the constant is shared by all nodes of one query, rankings are exact; the
// absolute scale is recovered by callers that need it (see CalibrateRWR).
func ScoreFromPHP(kind Kind, p Params, php float64, degree float64) (float64, error) {
	switch kind {
	case PHP, EI:
		// EI(i) = EI(q)·PHP(i): proportional, return PHP itself.
		return php, nil
	case DHT:
		// PHP = 1 − C·DHT ⇒ DHT = (1 − PHP)/C, with C the DHT parameter.
		return (1 - php) / p.C, nil
	case RWR:
		// RWR(i) ∝ w_i·PHP(i).
		return degree * php, nil
	case THT:
		return 0, fmt.Errorf("measure: THT score cannot be derived from PHP")
	}
	return 0, fmt.Errorf("measure: unknown kind %v", kind)
}

// CalibrateRWR returns the constant κ = RWR(q)/w_q such that
// RWR(i) = κ·w_i·PHP(i) (Theorem 6), given the exact PHP vector for decay
// 1−c. It follows from Σ_i RWR(i) = 1: κ = 1 / Σ_i w_i·PHP(i). Degree-zero
// nodes carry no RWR mass and are skipped.
func CalibrateRWR(g graph.Graph, php []float64) float64 {
	var z float64
	for v := range php {
		if d := g.Degree(graph.NodeID(v)); d > 0 {
			z += d * php[v]
		}
	}
	if z == 0 {
		return 0
	}
	return 1 / z
}

// VerifyNoLocalOptimum checks the paper's Definition 1/2 on a concrete
// proximity vector: every non-query node in the same component as q must
// have a strictly closer neighbor. It returns the first violating node, or
// -1 if the property holds. Nodes at the exact value of one of their
// neighbors within eps are not counted as violations (numerical ties).
//
// Tests use it to confirm Table 2: PHP/EI have no local maximum, DHT/THT no
// local minimum, while RWR exhibits violations on hub-heavy graphs.
func VerifyNoLocalOptimum(g graph.Graph, q graph.NodeID, scores []float64, higherIsCloser bool, eps float64) graph.NodeID {
	reach := graph.BFSDistances(g, q, -1)
	for v := 0; v < g.NumNodes(); v++ {
		if graph.NodeID(v) == q || reach[v] < 0 {
			continue
		}
		nbrs, _ := g.Neighbors(graph.NodeID(v))
		ok := false
		for _, u := range nbrs {
			if higherIsCloser {
				if scores[u] > scores[v]-eps {
					ok = true
					break
				}
			} else {
				if scores[u] < scores[v]+eps {
					ok = true
					break
				}
			}
		}
		if !ok {
			return graph.NodeID(v)
		}
	}
	return -1
}
