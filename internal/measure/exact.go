package measure

import (
	"fmt"

	"flos/internal/graph"
)

// Exact computes the full proximity vector of the given measure by global
// iteration over the entire graph — the paper's GI baseline family [16] and
// the correctness oracle for every local method. The returned iteration
// count is what the GI baselines report as work.
func Exact(g graph.Graph, q graph.NodeID, kind Kind, p Params) ([]float64, int, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	if q < 0 || int(q) >= g.NumNodes() {
		return nil, 0, fmt.Errorf("measure: query node %d outside [0,%d)", q, g.NumNodes())
	}
	switch kind {
	case PHP:
		r, it := exactPHP(g, q, p)
		return r, it, nil
	case EI:
		r, it := exactEI(g, q, p)
		return r, it, nil
	case DHT:
		r, it := exactDHT(g, q, p)
		return r, it, nil
	case THT:
		r := exactTHT(g, q, p)
		return r, p.L, nil
	case RWR:
		r, it := exactRWR(g, q, p)
		return r, it, nil
	}
	return nil, 0, fmt.Errorf("measure: unknown kind %v", kind)
}

// exactPHP iterates r_i ← c·Σ_j p_ij·r_j with r_q pinned to 1.
// Degree-zero nodes keep proximity 0 (they can never reach q).
func exactPHP(g graph.Graph, q graph.NodeID, p Params) ([]float64, int) {
	n := g.NumNodes()
	r := make([]float64, n)
	next := make([]float64, n)
	r[q] = 1
	iters := 0
	for ; iters < p.MaxIter; iters++ {
		var delta float64
		for v := 0; v < n; v++ {
			if graph.NodeID(v) == q {
				next[v] = 1
				continue
			}
			d := g.Degree(graph.NodeID(v))
			if d == 0 {
				next[v] = 0
				continue
			}
			nbrs, ws := g.Neighbors(graph.NodeID(v))
			var s float64
			for i, u := range nbrs {
				s += ws[i] * r[u]
			}
			nv := p.C * s / d
			next[v] = nv
			if diff := abs(nv - r[v]); diff > delta {
				delta = diff
			}
		}
		r, next = next, r
		if delta < p.Tau {
			iters++
			break
		}
	}
	return r, iters
}

// exactEI iterates the effective-importance recursion. The restart
// probability is p.C; the decay on transitions is (1−C).
func exactEI(g graph.Graph, q graph.NodeID, p Params) ([]float64, int) {
	n := g.NumNodes()
	r := make([]float64, n)
	next := make([]float64, n)
	wq := g.Degree(q)
	iters := 0
	for ; iters < p.MaxIter; iters++ {
		var delta float64
		for v := 0; v < n; v++ {
			d := g.Degree(graph.NodeID(v))
			if d == 0 {
				if graph.NodeID(v) == q {
					// An isolated query has all restart mass and no spread;
					// by convention its EI is c (the recursion's limit as
					// w_q → 0 is ill-defined, and no algorithm queries it).
					next[v] = p.C
				} else {
					next[v] = 0
				}
				continue
			}
			nbrs, ws := g.Neighbors(graph.NodeID(v))
			var s float64
			for i, u := range nbrs {
				s += ws[i] * r[u]
			}
			nv := (1 - p.C) * s / d
			if graph.NodeID(v) == q {
				nv += p.C / wq
			}
			next[v] = nv
			if diff := abs(nv - r[v]); diff > delta {
				delta = diff
			}
		}
		r, next = next, r
		if delta < p.Tau {
			iters++
			break
		}
	}
	return r, iters
}

// exactDHT iterates r_i ← 1 + (1−c)·Σ_j p_ij·r_j with r_q pinned to 0.
// Degree-zero non-query nodes get the never-hitting value 1/c.
func exactDHT(g graph.Graph, q graph.NodeID, p Params) ([]float64, int) {
	n := g.NumNodes()
	r := make([]float64, n)
	next := make([]float64, n)
	iters := 0
	for ; iters < p.MaxIter; iters++ {
		var delta float64
		for v := 0; v < n; v++ {
			if graph.NodeID(v) == q {
				next[v] = 0
				continue
			}
			d := g.Degree(graph.NodeID(v))
			if d == 0 {
				next[v] = 1 / p.C
				continue
			}
			nbrs, ws := g.Neighbors(graph.NodeID(v))
			var s float64
			for i, u := range nbrs {
				s += ws[i] * r[u]
			}
			nv := 1 + (1-p.C)*s/d
			next[v] = nv
			if diff := abs(nv - r[v]); diff > delta {
				delta = diff
			}
		}
		r, next = next, r
		if delta < p.Tau {
			iters++
			break
		}
	}
	return r, iters
}

// exactTHT applies exactly L sweeps of r_i ← 1 + Σ_j p_ij·r_j from the zero
// vector with r_q pinned to 0; the result is the L-truncated hitting time,
// with unreachable-within-L nodes sitting at exactly L. Degree-zero nodes
// get L.
func exactTHT(g graph.Graph, q graph.NodeID, p Params) []float64 {
	n := g.NumNodes()
	r := make([]float64, n)
	next := make([]float64, n)
	for sweep := 0; sweep < p.L; sweep++ {
		for v := 0; v < n; v++ {
			if graph.NodeID(v) == q {
				next[v] = 0
				continue
			}
			d := g.Degree(graph.NodeID(v))
			if d == 0 {
				next[v] = float64(sweep + 1) // grows to exactly L
				continue
			}
			nbrs, ws := g.Neighbors(graph.NodeID(v))
			var s float64
			for i, u := range nbrs {
				s += ws[i] * r[u]
			}
			next[v] = 1 + s/d
		}
		r, next = next, r
	}
	return r
}

// exactRWR iterates the personalized-PageRank recursion
// r ← (1−c)·Pᵀ·r + c·e_q. On undirected graphs Pᵀ's column v spreads
// r_v/w_v along incident edges; the sweep below does exactly that via the
// scatter form. Degree-zero nodes hold no stationary mass (except an
// isolated query, which keeps everything).
func exactRWR(g graph.Graph, q graph.NodeID, p Params) ([]float64, int) {
	n := g.NumNodes()
	r := make([]float64, n)
	next := make([]float64, n)
	r[q] = 1
	iters := 0
	for ; iters < p.MaxIter; iters++ {
		for v := range next {
			next[v] = 0
		}
		next[q] = p.C
		for v := 0; v < n; v++ {
			if r[v] == 0 {
				continue
			}
			d := g.Degree(graph.NodeID(v))
			if d == 0 {
				if graph.NodeID(v) == q {
					next[v] += (1 - p.C) * r[v] // isolated query keeps its mass
				}
				continue
			}
			scale := (1 - p.C) * r[v] / d
			nbrs, ws := g.Neighbors(graph.NodeID(v))
			for i, u := range nbrs {
				next[u] += scale * ws[i]
			}
		}
		var delta float64
		for v := range next {
			if diff := abs(next[v] - r[v]); diff > delta {
				delta = diff
			}
		}
		r, next = next, r
		if delta < p.Tau {
			iters++
			break
		}
	}
	return r, iters
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
