// Package measure defines the five random-walk proximity measures the paper
// studies — penalized hitting probability (PHP), effective importance (EI),
// discounted hitting time (DHT), truncated hitting time (THT), and random
// walk with restart (RWR) — together with exact full-graph solvers (the
// "global iteration" reference) and the ranking-equivalence maps of
// Theorems 2 and 6.
//
// The exact solvers are the oracles every local algorithm in this module is
// tested against.
package measure

import "fmt"

// Kind identifies a proximity measure.
type Kind int

// The measures of the paper's Table 2.
const (
	// PHP is penalized hitting probability [11, 21]: r_q = 1 and
	// r_i = c·Σ_j p_ij·r_j. Higher is closer; no local maximum.
	PHP Kind = iota
	// EI is effective importance [3], degree-normalized RWR:
	// r_i = (1−c)·Σ_j p_ij·r_j for i≠q, r_q = (1−c)·Σ_j p_qj·r_j + c/w_q.
	// Higher is closer; no local maximum; ranking-equivalent to PHP.
	EI
	// DHT is discounted hitting time [18]: r_q = 0 and
	// r_i = 1 + (1−c)·Σ_j p_ij·r_j. Lower is closer; no local minimum;
	// PHP = 1 − c·DHT links it to PHP.
	DHT
	// THT is L-truncated hitting time [17]: r_q = 0 and
	// r_i^L = 1 + Σ_j p_ij·r_j^{L−1}; nodes farther than L hops sit at L.
	// Lower is closer; no local minimum within L hops.
	THT
	// RWR is random walk with restart (personalized PageRank) [20]:
	// r_i = (1−c)·Σ_j p_ji·r_j for i≠q, with restart mass c at q.
	// Higher is closer; HAS local maxima — FLoS reaches it through the
	// degree-scaled PHP relationship of Theorem 6.
	RWR
)

// String returns the paper's abbreviation.
func (k Kind) String() string {
	switch k {
	case PHP:
		return "PHP"
	case EI:
		return "EI"
	case DHT:
		return "DHT"
	case THT:
		return "THT"
	case RWR:
		return "RWR"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// HigherIsCloser reports the ranking direction: true when larger proximity
// means nearer to the query (PHP, EI, RWR), false for hitting times.
func (k Kind) HigherIsCloser() bool {
	switch k {
	case PHP, EI, RWR:
		return true
	default:
		return false
	}
}

// HasLocalOptimum reports whether the measure can have a local optimum
// (paper Table 2). Only RWR does; for it FLoS must route through PHP.
func (k Kind) HasLocalOptimum() bool { return k == RWR }

// Kinds lists every supported measure, in Table 2 order.
func Kinds() []Kind { return []Kind{PHP, EI, DHT, THT, RWR} }

// Params carries the numeric knobs shared by all solvers.
type Params struct {
	// C is the decay factor (PHP, DHT) or restart probability (EI, RWR),
	// 0 < C < 1. The paper's experiments use 0.5.
	C float64
	// L is the THT horizon; the paper uses 10. Ignored by other measures.
	L int
	// Tau is the Jacobi termination threshold of Algorithm 7; the paper
	// uses 1e-5.
	Tau float64
	// MaxIter caps Jacobi sweeps as a divergence backstop.
	MaxIter int
}

// DefaultParams mirrors the paper's experimental settings.
func DefaultParams() Params {
	return Params{C: 0.5, L: 10, Tau: 1e-5, MaxIter: 10000}
}

// Validate rejects out-of-range parameters.
func (p Params) Validate() error {
	if !(p.C > 0 && p.C < 1) {
		return fmt.Errorf("measure: C=%g outside (0,1)", p.C)
	}
	if p.L <= 0 {
		return fmt.Errorf("measure: L=%d must be positive", p.L)
	}
	if p.Tau <= 0 {
		return fmt.Errorf("measure: Tau=%g must be positive", p.Tau)
	}
	if p.MaxIter <= 0 {
		return fmt.Errorf("measure: MaxIter=%d must be positive", p.MaxIter)
	}
	return nil
}
