package measure

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/linalg"
)

func tightParams() Params {
	return Params{C: 0.5, L: 10, Tau: 1e-12, MaxIter: 100000}
}

// randomConnected builds a connected random weighted graph for oracle tests.
func randomConnected(t testing.TB, n, extra int, seed int64) *graph.MemGraph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		// Random spanning tree: attach v to a random earlier node.
		if err := b.AddEdge(int32(v), int32(rng.Intn(v)), 0.5+rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < extra; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			if err := b.AddEdge(u, v, 0.5+rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestKindMetadata(t *testing.T) {
	if !PHP.HigherIsCloser() || !EI.HigherIsCloser() || !RWR.HigherIsCloser() {
		t.Error("PHP/EI/RWR should be higher-is-closer")
	}
	if DHT.HigherIsCloser() || THT.HigherIsCloser() {
		t.Error("DHT/THT should be lower-is-closer")
	}
	for _, k := range Kinds() {
		if (k == RWR) != k.HasLocalOptimum() {
			t.Errorf("%v: HasLocalOptimum = %v", k, k.HasLocalOptimum())
		}
		if k.String() == "" {
			t.Errorf("kind %d has empty name", int(k))
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still print")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []Params{
		{C: 0, L: 10, Tau: 1e-5, MaxIter: 100},
		{C: 1, L: 10, Tau: 1e-5, MaxIter: 100},
		{C: 0.5, L: 0, Tau: 1e-5, MaxIter: 100},
		{C: 0.5, L: 10, Tau: 0, MaxIter: 100},
		{C: 0.5, L: 10, Tau: 1e-5, MaxIter: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestExactRejectsBadInput(t *testing.T) {
	g := gen.Path(3)
	if _, _, err := Exact(g, 5, PHP, tightParams()); err == nil {
		t.Error("out-of-range query accepted")
	}
	if _, _, err := Exact(g, 0, PHP, Params{}); err == nil {
		t.Error("zero params accepted")
	}
	if _, _, err := Exact(g, 0, Kind(42), tightParams()); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestExactPHPWorkedExample: path 1-2-3, q=1, c=0.5 → r = [1, 2/7, 1/7],
// the example under Theorem 3.
func TestExactPHPWorkedExample(t *testing.T) {
	g := gen.WeightedTriangle()
	r, iters, err := Exact(g, 0, PHP, tightParams())
	if err != nil {
		t.Fatal(err)
	}
	if iters <= 0 {
		t.Error("no iterations reported")
	}
	want := []float64{1, 2.0 / 7, 1.0 / 7}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-10 {
			t.Fatalf("r = %v, want %v", r, want)
		}
	}
}

// densePHPOracle solves (I − cT)r = e_q directly.
func densePHPOracle(t *testing.T, g graph.Graph, q graph.NodeID, c float64) []float64 {
	t.Helper()
	n := g.NumNodes()
	a := linalg.Identity(n)
	for v := 0; v < n; v++ {
		if graph.NodeID(v) == q {
			continue
		}
		d := g.Degree(graph.NodeID(v))
		if d == 0 {
			continue
		}
		nbrs, ws := g.Neighbors(graph.NodeID(v))
		for i, u := range nbrs {
			a.Add(v, int(u), -c*ws[i]/d)
		}
	}
	e := make([]float64, n)
	e[q] = 1
	r, err := linalg.SolveDense(a, e)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestExactPHPAgainstDense(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomConnected(t, 25, 30, seed)
		q := graph.NodeID(seed % 25)
		r, _, err := Exact(g, q, PHP, tightParams())
		if err != nil {
			t.Fatal(err)
		}
		want := densePHPOracle(t, g, q, 0.5)
		if d := linalg.InfNorm(r, want); d > 1e-8 {
			t.Fatalf("seed %d: PHP iterative vs dense differ by %g", seed, d)
		}
	}
}

func TestExactRWRIsDistribution(t *testing.T) {
	g := randomConnected(t, 40, 60, 3)
	r, _, err := Exact(g, 7, RWR, tightParams())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range r {
		if v < -1e-12 {
			t.Fatalf("negative RWR mass %g", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-8 {
		t.Fatalf("RWR mass = %g, want 1", sum)
	}
	// The query holds the single largest stationary mass under restart.
	for v, s := range r {
		if graph.NodeID(v) != 7 && s >= r[7] {
			t.Fatalf("node %d mass %g >= query mass %g", v, s, r[7])
		}
	}
}

func TestExactDHTRange(t *testing.T) {
	g := randomConnected(t, 30, 40, 4)
	p := tightParams()
	r, _, err := Exact(g, 0, DHT, p)
	if err != nil {
		t.Fatal(err)
	}
	if r[0] != 0 {
		t.Fatalf("DHT(q) = %g, want 0", r[0])
	}
	for v, s := range r {
		if v == 0 {
			continue
		}
		if s < 1 || s >= 1/p.C {
			t.Fatalf("DHT[%d] = %g outside [1, 1/c)", v, s)
		}
	}
}

func TestExactTHTRange(t *testing.T) {
	g := gen.Path(20)
	p := tightParams()
	p.L = 5
	r, _, err := Exact(g, 0, THT, p)
	if err != nil {
		t.Fatal(err)
	}
	if r[0] != 0 {
		t.Fatalf("THT(q) = %g", r[0])
	}
	for v, s := range r {
		if v == 0 {
			continue
		}
		if s < 1 || s > float64(p.L) {
			t.Fatalf("THT[%d] = %g outside [1, L]", v, s)
		}
	}
	// Nodes more than L hops out sit exactly at L (paper's convention).
	for v := p.L + 1; v < 20; v++ {
		if r[v] != float64(p.L) {
			t.Fatalf("THT[%d] = %g, want exactly L=%d", v, r[v], p.L)
		}
	}
	// THT is monotone along a path until the horizon.
	for v := 1; v < p.L; v++ {
		if r[v] >= r[v+1]+1e-12 && r[v+1] != float64(p.L) {
			// allowed: both at L
			if r[v] > float64(p.L)-1e-12 {
				continue
			}
			t.Fatalf("THT not increasing along path: r[%d]=%g r[%d]=%g", v, r[v], v+1, r[v+1])
		}
	}
}

func TestDegreeZeroConventions(t *testing.T) {
	// Graph with an isolated node 3.
	g := graph.MustFromEdges(4, 0, 1, 1, 2)
	p := tightParams()
	php, _, _ := Exact(g, 0, PHP, p)
	if php[3] != 0 {
		t.Errorf("PHP of isolated node = %g, want 0", php[3])
	}
	dht, _, _ := Exact(g, 0, DHT, p)
	if dht[3] != 1/p.C {
		t.Errorf("DHT of isolated node = %g, want 1/c", dht[3])
	}
	tht, _, _ := Exact(g, 0, THT, p)
	if tht[3] != float64(p.L) {
		t.Errorf("THT of isolated node = %g, want L", tht[3])
	}
	rwr, _, _ := Exact(g, 0, RWR, p)
	if rwr[3] != 0 {
		t.Errorf("RWR of isolated node = %g, want 0", rwr[3])
	}
}

// TestTable2NoLocalOptimum verifies the paper's Table 2 on random graphs:
// PHP and EI have no local maximum, DHT and THT no local minimum.
func TestTable2NoLocalOptimum(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := randomConnected(t, 60, 90, seed)
		q := graph.NodeID(11)
		p := tightParams()
		for _, k := range []Kind{PHP, EI, DHT, THT} {
			r, _, err := Exact(g, q, k, p)
			if err != nil {
				t.Fatal(err)
			}
			if bad := VerifyNoLocalOptimum(g, q, r, k.HigherIsCloser(), 1e-9); bad >= 0 {
				t.Errorf("seed %d: %v has a local optimum at node %d", seed, k, bad)
			}
		}
	}
}

// TestRWRHasLocalOptimum builds a counterexample for Lemma 8 — a hub with
// m leaves hanging off the path at two hops from the query. Since
// RWR(i) ∝ w_i·PHP(i) (Theorem 6), the hub's degree 11 beats the decay paid
// per hop once the restart probability is small: with restart 0.1 (PHP decay
// a = 0.9), w_hub·PHP(hub) = a(m+1)/(m+1−m·a²)·PHP(path) ≈ 3.4·PHP(path) >
// w_path·PHP(path) = 2·PHP(path), so the hub is a local maximum. PHP itself
// must have none at any decay (Lemma 1).
func TestRWRHasLocalOptimum(t *testing.T) {
	// q = 0, path 0-1, 1-2; node 2 is the hub with leaves 3..12.
	b := graph.NewBuilder(13)
	add := func(u, v int32) {
		if err := b.AddUnitEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	add(0, 1)
	add(1, 2)
	for leaf := int32(3); leaf < 13; leaf++ {
		add(2, leaf)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := Params{C: 0.1, L: 10, Tau: 1e-13, MaxIter: 200000}
	rwr, _, err := Exact(g, 0, RWR, p)
	if err != nil {
		t.Fatal(err)
	}
	if bad := VerifyNoLocalOptimum(g, 0, rwr, true, 1e-12); bad != 2 {
		t.Errorf("expected RWR local maximum at hub 2, VerifyNoLocalOptimum = %d", bad)
	}
	php, _, err := Exact(g, 0, PHP, Params{C: 0.9, L: 10, Tau: 1e-13, MaxIter: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if bad := VerifyNoLocalOptimum(g, 0, php, true, 1e-9); bad >= 0 {
		t.Errorf("PHP should have no local maximum, violated at %d", bad)
	}
}

// TestTheorem2RankingEquivalence: PHP (decay 1−c), EI (restart c) and DHT
// give identical rankings.
func TestTheorem2RankingEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		g := randomConnected(t, 30, 40, seed)
		q := graph.NodeID(3)
		c := 0.5
		pPHP := Params{C: 1 - c, L: 10, Tau: 1e-12, MaxIter: 100000}
		pEI := Params{C: c, L: 10, Tau: 1e-12, MaxIter: 100000}
		pDHT := Params{C: c, L: 10, Tau: 1e-12, MaxIter: 100000}
		php, _, err1 := Exact(g, q, PHP, pPHP)
		ei, _, err2 := Exact(g, q, EI, pEI)
		dht, _, err3 := Exact(g, q, DHT, pDHT)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		k := 10
		a := Nodes(TopK(php, q, k, true))
		b := Nodes(TopK(ei, q, k, true))
		d := Nodes(TopK(dht, q, k, false))
		// Exact ties may be ordered differently; compare by score threshold.
		return SameSetModuloTies(b, php, q, k, true, 1e-9) &&
			SameSetModuloTies(d, php, q, k, true, 1e-9) &&
			SameSetModuloTies(a, ei, q, k, true, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem2AffineDHT: PHP = 1 − c·DHT holds pointwise, not just in rank.
func TestTheorem2AffineDHT(t *testing.T) {
	g := randomConnected(t, 25, 35, 7)
	q := graph.NodeID(2)
	c := 0.4
	php, _, err := Exact(g, q, PHP, Params{C: 1 - c, L: 10, Tau: 1e-13, MaxIter: 200000})
	if err != nil {
		t.Fatal(err)
	}
	dht, _, err := Exact(g, q, DHT, Params{C: c, L: 10, Tau: 1e-13, MaxIter: 200000})
	if err != nil {
		t.Fatal(err)
	}
	for v := range php {
		want := 1 - c*dht[v]
		if math.Abs(php[v]-want) > 1e-8 {
			t.Fatalf("node %d: PHP=%g, 1−c·DHT=%g", v, php[v], want)
		}
	}
}

// TestTheorem6RWRProportionality: RWR(i) = κ·w_i·PHP(i) with
// κ = CalibrateRWR, on weighted random graphs.
func TestTheorem6RWRProportionality(t *testing.T) {
	f := func(seed int64) bool {
		g := randomConnected(t, 30, 50, seed)
		q := graph.NodeID(5)
		c := 0.5
		php, _, err := Exact(g, q, PHP, Params{C: 1 - c, L: 10, Tau: 1e-13, MaxIter: 200000})
		if err != nil {
			return false
		}
		rwr, _, err := Exact(g, q, RWR, Params{C: c, L: 10, Tau: 1e-13, MaxIter: 200000})
		if err != nil {
			return false
		}
		kappa := CalibrateRWR(g, php)
		for v := range rwr {
			want := kappa * g.Degree(graph.NodeID(v)) * php[v]
			if math.Abs(rwr[v]-want) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalentPHPParams(t *testing.T) {
	p := Params{C: 0.3, L: 10, Tau: 1e-5, MaxIter: 100}
	for _, k := range []Kind{EI, DHT, RWR} {
		q, err := EquivalentPHPParams(k, p)
		if err != nil {
			t.Fatal(err)
		}
		if q.C != 0.7 {
			t.Errorf("%v: C = %g, want 0.7", k, q.C)
		}
	}
	if q, err := EquivalentPHPParams(PHP, p); err != nil || q.C != 0.3 {
		t.Errorf("PHP params changed: %+v, %v", q, err)
	}
	if _, err := EquivalentPHPParams(THT, p); err == nil {
		t.Error("THT translation accepted")
	}
	if _, err := EquivalentPHPParams(Kind(9), p); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestScoreFromPHP(t *testing.T) {
	p := Params{C: 0.5, L: 10, Tau: 1e-5, MaxIter: 100}
	if s, err := ScoreFromPHP(PHP, p, 0.25, 3); err != nil || s != 0.25 {
		t.Errorf("PHP: %g, %v", s, err)
	}
	if s, err := ScoreFromPHP(DHT, p, 0.25, 3); err != nil || s != 1.5 {
		t.Errorf("DHT: got %g, want 1.5", s)
	}
	if s, err := ScoreFromPHP(RWR, p, 0.25, 3); err != nil || s != 0.75 {
		t.Errorf("RWR: got %g, want 0.75", s)
	}
	if _, err := ScoreFromPHP(THT, p, 0.25, 3); err == nil {
		t.Error("THT accepted")
	}
	if _, err := ScoreFromPHP(Kind(9), p, 0.25, 3); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestTopKBasics(t *testing.T) {
	scores := []float64{0.9, 0.5, 0.7, 0.7, 0.1}
	top := TopK(scores, 0, 2, true)
	if len(top) != 2 || top[0].Node != 2 || top[1].Node != 3 {
		t.Fatalf("top = %+v", top)
	}
	low := TopK(scores, 0, 2, false)
	if low[0].Node != 4 || low[1].Node != 1 {
		t.Fatalf("low = %+v", low)
	}
	all := TopK(scores, 0, 100, true)
	if len(all) != 4 {
		t.Fatalf("k > n returns %d", len(all))
	}
}

func TestPrecisionAndSameSet(t *testing.T) {
	a := []graph.NodeID{1, 2, 3}
	b := []graph.NodeID{3, 2, 1}
	c := []graph.NodeID{1, 2, 9}
	if !SameSet(a, b) || SameSet(a, c) {
		t.Error("SameSet wrong")
	}
	if SameSet(a, a[:2]) {
		t.Error("SameSet ignores length")
	}
	if p := Precision(c, a); math.Abs(p-2.0/3) > 1e-12 {
		t.Errorf("precision = %g", p)
	}
	if p := Precision(nil, nil); p != 1 {
		t.Errorf("empty precision = %g", p)
	}
}

func TestSameSetModuloTies(t *testing.T) {
	scores := []float64{0.9, 0.5, 0.5, 0.3, 0.1}
	// k=2 from node 0: nodes 1 and 2 tie at 0.5; either is acceptable.
	if !SameSetModuloTies([]graph.NodeID{1, 2}, scores, 0, 2, true, 1e-12) {
		t.Error("canonical set rejected")
	}
	if !SameSetModuloTies([]graph.NodeID{2, 1}, scores, 0, 2, true, 1e-12) {
		t.Error("reordered set rejected")
	}
	if SameSetModuloTies([]graph.NodeID{1, 3}, scores, 0, 2, true, 1e-12) {
		t.Error("wrong set accepted")
	}
	if SameSetModuloTies([]graph.NodeID{1}, scores, 0, 2, true, 1e-12) {
		t.Error("short set accepted")
	}
	if SameSetModuloTies([]graph.NodeID{1, 1}, scores, 0, 2, true, 1e-12) {
		t.Error("duplicate accepted")
	}
	if SameSetModuloTies([]graph.NodeID{0, 1}, scores, 0, 2, true, 1e-12) {
		t.Error("query in set accepted")
	}
	// Lower-is-closer direction.
	if !SameSetModuloTies([]graph.NodeID{4, 3}, scores, 0, 2, false, 1e-12) {
		t.Error("lower-direction set rejected")
	}
}
