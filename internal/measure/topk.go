package measure

import (
	"sort"

	"flos/internal/graph"
)

// Ranked pairs a node with its proximity score.
type Ranked struct {
	Node  graph.NodeID
	Score float64
}

// TopK returns the k closest nodes to q under the given direction, excluding
// q itself, sorted closest-first. Ties break toward the smaller node
// identifier so results are deterministic and comparable across algorithms.
func TopK(scores []float64, q graph.NodeID, k int, higherIsCloser bool) []Ranked {
	out := make([]Ranked, 0, len(scores)-1)
	for v, s := range scores {
		if graph.NodeID(v) == q {
			continue
		}
		out = append(out, Ranked{Node: graph.NodeID(v), Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			if higherIsCloser {
				return out[i].Score > out[j].Score
			}
			return out[i].Score < out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}

// Nodes projects a ranking onto its node identifiers.
func Nodes(r []Ranked) []graph.NodeID {
	out := make([]graph.NodeID, len(r))
	for i, e := range r {
		out[i] = e.Node
	}
	return out
}

// Precision returns |got ∩ want| / |want| — the precision@k used to score
// the approximate baselines against the exact ranking.
func Precision(got, want []graph.NodeID) float64 {
	if len(want) == 0 {
		return 1
	}
	set := make(map[graph.NodeID]bool, len(want))
	for _, v := range want {
		set[v] = true
	}
	hit := 0
	for _, v := range got {
		if set[v] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

// SameSet reports whether two rankings contain the same node set (order
// ignored — exact methods may legitimately order true ties differently).
func SameSet(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[graph.NodeID]int, len(a))
	for _, v := range a {
		set[v]++
	}
	for _, v := range b {
		set[v]--
		if set[v] < 0 {
			return false
		}
	}
	return true
}

// SameSetModuloTies reports whether ranking `got` is a valid exact top-k for
// `scores`: every node of `got` must score at least as well as the true k-th
// score (within eps). This accepts either side of an exact tie at the
// boundary, which distinct exact algorithms may break differently.
func SameSetModuloTies(got []graph.NodeID, scores []float64, q graph.NodeID, k int, higherIsCloser bool, eps float64) bool {
	if len(got) != min(k, len(scores)-1) {
		return false
	}
	want := TopK(scores, q, k, higherIsCloser)
	if len(want) == 0 {
		return len(got) == 0
	}
	kth := want[len(want)-1].Score
	seen := make(map[graph.NodeID]bool, len(got))
	for _, v := range got {
		if v == q || seen[v] {
			return false
		}
		seen[v] = true
		if higherIsCloser {
			if scores[v] < kth-eps {
				return false
			}
		} else {
			if scores[v] > kth+eps {
				return false
			}
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
