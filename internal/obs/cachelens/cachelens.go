// Package cachelens is the cache-analytics plane shared by the diskgraph
// page cache and the qserve result cache: it turns raw hit/miss totals into
// numbers an operator can size and tier a cache with.
//
// A Lens observes the access stream of one cache through two nil-safe hooks
// — RecordGet(key, hit) on every lookup and RecordEvict(key) on every
// capacity eviction — and maintains, online:
//
//   - A miss-ratio curve (MRC): the estimated hit ratio the same traffic
//     would see at 0.25x/0.5x/1x/2x/4x of the current capacity, via
//     SHARDS-style spatial sampling (Waldspurger et al., FAST'15): only keys
//     whose seeded hash lands under 1/SampleRate are tracked, their exact
//     LRU stack distance among the sampled set is measured with a Fenwick
//     tree (see stackdist.go), and distances scale by SampleRate to estimate
//     the full-population stack distance. The LRU stack-inclusion property
//     turns one distance into a verdict at every scale at once: the access
//     would hit any capacity at or above its stack distance.
//   - A ghost list: a bounded FIFO of recently evicted keys, sized to the
//     cache's own capacity, so "would have hit at ~2x" is also measured
//     directly (a miss that finds its key in the ghost list would have been
//     a hit had the cache been one ghost-list deeper). The ghost counter
//     cross-checks the MRC's 2x point with zero modeling assumptions.
//   - Decayed per-block access counters: every access bumps a fixed-point
//     heat slot for its block ID, and each epoch tick multiplies all slots
//     by a decay factor derived from HeatHalfLife — the hot/cold heatmap
//     that drives hot/cold block tiering. For dense block spaces (page
//     indices) slots map one-to-one; hashed key spaces fold modulo the slot
//     count.
//   - Working-set-size estimation: distinct sampled keys per rolling window
//     (1m and 10m by default), scaled by SampleRate — how much cache the
//     traffic actually touches, per window, independent of capacity.
//
// Cost discipline: the disabled path is one nil check (every method is
// nil-safe on the receiver, the Tracer/flight-recorder convention). The
// enabled hot path — a cache hit on an unsampled key — is one 64-bit mix,
// one mask compare, and two atomic adds; only the 1/SampleRate sampled
// minority and the (already slow) miss path take the Lens mutex.
package cachelens

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultScales are the capacity multiples the MRC is evaluated at.
var DefaultScales = []float64{0.25, 0.5, 1, 2, 4}

// heatOne is the fixed-point unit of the heat slots: counters are atomic
// int64s holding heat * heatOne, so increments are a single atomic add and
// decay is a CAS multiply.
const heatOne = 1 << 20

// Config tunes a Lens. Zero values select the documented defaults.
type Config struct {
	// SampleRate tracks one key in SampleRate (rounded up to a power of
	// two). 0 selects 64. 1 tracks everything (exact, for tests).
	SampleRate int
	// Capacity is the cache's capacity in entries (resident pages for the
	// page cache, result entries for the result cache) — the 1x point of
	// the miss-ratio curve. Required (<=0 selects 1).
	Capacity int
	// Scales are the capacity multiples the MRC estimates; nil selects
	// DefaultScales. Must be ascending for the curve to render in order.
	Scales []float64
	// GhostEntries bounds the evicted-key ghost list; 0 selects Capacity,
	// so resident + ghost together cover ~2x and a ghost hit means "would
	// have hit at twice the capacity".
	GhostEntries int
	// MaxTracked bounds the sampled-key LRU index. 0 sizes it to cover the
	// largest MRC scale with 4x slack; keys pushed out count as cold on
	// their next access (distance beyond every scale of interest).
	MaxTracked int
	// HeatSlots is the size of the block-heat array; 0 selects 16384. When
	// Blocks is positive and fits, slots map to block IDs one-to-one;
	// otherwise block IDs fold modulo HeatSlots.
	HeatSlots int
	// Blocks is the dense block-ID space size (file pages for the page
	// cache); 0 means keys are a hashed space with no dense interpretation.
	Blocks int64
	// Seed perturbs the sampling hash; a fixed seed makes the sampled key
	// subset — and therefore every estimate — deterministic for a given
	// trace.
	Seed uint64
	// WindowShort / WindowLong are the WSS estimation windows; 0 selects
	// 1m / 10m.
	WindowShort, WindowLong time.Duration
	// HeatHalfLife is the heat-decay half-life; 0 selects 2m. Applied at
	// Tick granularity.
	HeatHalfLife time.Duration
	// TickEvery, when positive, starts a background goroutine calling Tick
	// at that period (stop it with Close). 0 leaves ticking to the caller —
	// the deterministic mode tests use.
	TickEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.SampleRate <= 0 {
		c.SampleRate = 64
	}
	// Round the rate up to a power of two so sampling is one mask compare.
	r := 1
	for r < c.SampleRate {
		r <<= 1
	}
	c.SampleRate = r
	if c.Capacity <= 0 {
		c.Capacity = 1
	}
	// A rate coarser than the population it samples estimates from a handful
	// of keys and produces garbage curves (the estimator's variance scales
	// inversely with the sampled count). Keep at least ~16 expected sampled
	// keys at 1x capacity by refining the rate for small caches — where the
	// extra tracking is proportionally cheap anyway.
	for c.SampleRate > 1 && c.Capacity/c.SampleRate < 16 {
		c.SampleRate >>= 1
	}
	if len(c.Scales) == 0 {
		c.Scales = DefaultScales
	}
	if c.GhostEntries <= 0 {
		c.GhostEntries = c.Capacity
	}
	if c.MaxTracked <= 0 {
		maxScale := 1.0
		for _, s := range c.Scales {
			if s > maxScale {
				maxScale = s
			}
		}
		c.MaxTracked = int(maxScale*float64(c.Capacity))/c.SampleRate*4 + 64
	}
	if c.HeatSlots <= 0 {
		c.HeatSlots = 16384
	}
	if c.WindowShort <= 0 {
		c.WindowShort = time.Minute
	}
	if c.WindowLong <= 0 {
		c.WindowLong = 10 * time.Minute
	}
	if c.HeatHalfLife <= 0 {
		c.HeatHalfLife = 2 * time.Minute
	}
	return c
}

// Lens is one cache's analytics state. All methods are safe for concurrent
// use and nil-safe on the receiver, so a disabled lens costs its callers a
// nil check and nothing else.
type Lens struct {
	cfg       Config
	mask      uint64 // hash & mask == 0 selects a sampled key
	scaleCaps []int  // capacity at each cfg.Scales entry, >= 1

	// Full-stream counters: every RecordGet lands here, atomically.
	hits   atomic.Int64
	misses atomic.Int64

	// Heat: fixed-point decayed access counters, one slot per block (dense)
	// or per hash fold. denseHeat marks the one-to-one mapping.
	heat      []atomic.Int64
	denseHeat bool
	ticks     atomic.Int64

	// mu guards the sampled-population state: the stack-distance index, the
	// per-scale hit counters, the WSS windows, and the ghost list. Taken
	// only for sampled keys and on the miss path.
	mu         sync.Mutex
	dist       *stackDist
	sampled    int64             // sampled accesses
	cold       int64             // sampled first-touches (miss at every scale)
	scaleHits  []int64           // sampled accesses with est. distance <= scaleCaps[i]
	evictions  int64             // RecordEvict calls
	ghost      map[uint64]uint64 // key -> seq of its live FIFO slot
	ghostFIFO  []ghostEntry
	ghostHead  int
	ghostSeq   uint64
	ghostHits  int64
	winShort   window
	winLong    window
	lastDecay  time.Time
	haveWallT0 bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// ghostEntry is one FIFO slot of the ghost list. The sequence number lets a
// key leave (ghost hit) and re-enter (re-eviction) without its stale slot
// deleting the newer entry when it reaches the head.
type ghostEntry struct {
	key uint64
	seq uint64
}

// window is one WSS estimation window: the distinct sampled keys seen since
// start, plus the estimate the last completed window produced.
type window struct {
	span    time.Duration
	start   time.Time
	seen    map[uint64]struct{}
	lastEst int64 // distinct * SampleRate of the last completed window
	rolls   int64
}

// New builds a Lens. When cfg.TickEvery is positive a background ticker
// drives Tick until Close.
func New(cfg Config) *Lens {
	cfg = cfg.withDefaults()
	l := &Lens{
		cfg:       cfg,
		mask:      uint64(cfg.SampleRate - 1),
		scaleCaps: make([]int, len(cfg.Scales)),
		heat:      make([]atomic.Int64, cfg.HeatSlots),
		denseHeat: cfg.Blocks > 0 && cfg.Blocks <= int64(cfg.HeatSlots),
		dist:      newStackDist(cfg.MaxTracked),
		scaleHits: make([]int64, len(cfg.Scales)),
		ghost:     make(map[uint64]uint64, cfg.GhostEntries),
		ghostFIFO: make([]ghostEntry, 0, cfg.GhostEntries),
	}
	for i, s := range cfg.Scales {
		c := int(math.Round(s * float64(cfg.Capacity)))
		if c < 1 {
			c = 1
		}
		l.scaleCaps[i] = c
	}
	l.winShort = window{span: cfg.WindowShort, seen: make(map[uint64]struct{})}
	l.winLong = window{span: cfg.WindowLong, seen: make(map[uint64]struct{})}
	if cfg.TickEvery > 0 {
		l.stop = make(chan struct{})
		l.wg.Add(1)
		go l.tickLoop(cfg.TickEvery)
	}
	return l
}

// Close stops the background ticker, if any. Safe on nil.
func (l *Lens) Close() {
	if l == nil || l.stop == nil {
		return
	}
	close(l.stop)
	l.wg.Wait()
	l.stop = nil
}

func (l *Lens) tickLoop(every time.Duration) {
	defer l.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			l.Tick(now)
		case <-l.stop:
			return
		}
	}
}

// mix64 is the splitmix64 finalizer — the sampling hash. Its low bits are
// uniform, so `mix64(key^seed) & (rate-1) == 0` samples keys spatially at
// rate 1/rate: the same key is always in or always out, which is what makes
// per-key reuse distances observable at all.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RecordGet observes one cache lookup for key (a page index or a key hash)
// and whether it hit. Call it outside the cache's own locks: the Lens has
// its own mutex and never calls back into the cache.
func (l *Lens) RecordGet(key uint64, hit bool) {
	if l == nil {
		return
	}
	if hit {
		l.hits.Add(1)
	} else {
		l.misses.Add(1)
	}
	// Heat is counted on every access (not just sampled ones): the heatmap
	// ranks blocks by true traffic, and an atomic add is cheap enough to
	// stay under the overhead gate.
	slot := key
	if !l.denseHeat {
		slot = mix64(key ^ l.cfg.Seed)
	}
	l.heat[slot%uint64(len(l.heat))].Add(heatOne)

	h := mix64(key ^ l.cfg.Seed)
	sampledKey := h&l.mask == 0
	if !sampledKey && hit {
		return // the common case: unsampled hit, no lock taken
	}

	l.mu.Lock()
	if sampledKey {
		l.sampled++
		d, cold := l.dist.access(key)
		if cold {
			l.cold++
		} else {
			est := d * l.cfg.SampleRate
			for i, c := range l.scaleCaps {
				if est <= c {
					l.scaleHits[i]++
				}
			}
		}
		l.winShort.add(key)
		l.winLong.add(key)
	}
	if !hit {
		if _, ok := l.ghost[key]; ok {
			l.ghostHits++
			delete(l.ghost, key)
			// The FIFO slot is lazily reclaimed when it reaches the head.
		}
	}
	l.mu.Unlock()
}

func (w *window) add(key uint64) {
	w.seen[key] = struct{}{}
}

// RecordEvict observes one capacity eviction: key enters the ghost list, so
// a near-future miss on it is counted as a would-have-hit at ~2x capacity.
// Invalidations (epoch flushes, surgical evictions) should NOT be recorded —
// those entries were dropped for correctness, not for space, and counting
// them would overstate what a bigger cache could have kept.
func (l *Lens) RecordEvict(key uint64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.evictions++
	if _, ok := l.ghost[key]; !ok {
		l.ghostSeq++
		l.ghost[key] = l.ghostSeq
		l.ghostFIFO = append(l.ghostFIFO, ghostEntry{key: key, seq: l.ghostSeq})
	}
	// Bound the FIFO's live region (which is a superset of the map: keys
	// that left via a ghost hit keep a stale slot until it reaches the
	// head). A stale slot's sequence no longer matches the map, so popping
	// it never deletes a re-entered key's newer entry.
	for len(l.ghostFIFO)-l.ghostHead > l.cfg.GhostEntries {
		e := l.ghostFIFO[l.ghostHead]
		l.ghostHead++
		if seq, ok := l.ghost[e.key]; ok && seq == e.seq {
			delete(l.ghost, e.key)
		}
	}
	if l.ghostHead > l.cfg.GhostEntries && l.ghostHead > len(l.ghostFIFO)/2 {
		l.ghostFIFO = append(l.ghostFIFO[:0], l.ghostFIFO[l.ghostHead:]...)
		l.ghostHead = 0
	}
	l.mu.Unlock()
}

// Tick advances the lens's epoch clock: heat slots decay by the half-life
// factor for the elapsed wall time, and WSS windows past their span roll
// over (their distinct count becomes the window's published estimate).
// Driven by the background ticker when Config.TickEvery is set, or manually
// (with any monotone now) in tests. Safe on nil.
func (l *Lens) Tick(now time.Time) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if !l.haveWallT0 {
		// First tick anchors the clock: start the windows, decay nothing.
		l.haveWallT0 = true
		l.lastDecay = now
		l.winShort.start = now
		l.winLong.start = now
		l.mu.Unlock()
		return
	}
	elapsed := now.Sub(l.lastDecay)
	l.lastDecay = now
	l.winShort.roll(now, l.cfg.SampleRate)
	l.winLong.roll(now, l.cfg.SampleRate)
	l.mu.Unlock()
	l.ticks.Add(1)

	if elapsed <= 0 {
		return
	}
	f := math.Exp2(-float64(elapsed) / float64(l.cfg.HeatHalfLife))
	for i := range l.heat {
		s := &l.heat[i]
		for {
			old := s.Load()
			if old == 0 {
				break
			}
			if s.CompareAndSwap(old, int64(float64(old)*f)) {
				break
			}
		}
	}
}

func (w *window) roll(now time.Time, rate int) {
	if now.Sub(w.start) < w.span {
		return
	}
	w.lastEst = int64(len(w.seen)) * int64(rate)
	clear(w.seen)
	w.start = now
	w.rolls++
}

// CurvePoint is one scale of the miss-ratio curve.
type CurvePoint struct {
	// Scale is the capacity multiple (1.0 = the cache as deployed).
	Scale float64 `json:"scale"`
	// Capacity is the entry count at this scale.
	Capacity int `json:"capacity"`
	// EstHitRatio / EstMissRatio estimate the hit and miss ratios the
	// recorded traffic would see at this capacity under LRU.
	EstHitRatio  float64 `json:"est_hit_ratio"`
	EstMissRatio float64 `json:"est_miss_ratio"`
}

// GhostSnapshot is the direct would-have-hit measurement.
type GhostSnapshot struct {
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// Evictions counts RecordEvict calls (ghost-list inserts).
	Evictions int64 `json:"evictions"`
	// WouldHaveHits counts misses whose key was still in the ghost list —
	// hits a cache one ghost-list deeper (~2x) would have served.
	WouldHaveHits int64 `json:"would_have_hits"`
	// HitRatioAt2x is (hits + would-have-hits) / accesses: the directly
	// measured counterpart of the MRC's 2x estimate.
	HitRatioAt2x float64 `json:"hit_ratio_at_2x"`
}

// WSSWindow is one working-set window's estimate.
type WSSWindow struct {
	// Window is the span, as a Go duration string ("1m0s").
	Window string `json:"window"`
	// DistinctEst is the scaled distinct-key estimate of the last completed
	// window (0 until one completes).
	DistinctEst int64 `json:"distinct_est"`
	// CurrentEst is the scaled estimate of the in-progress window.
	CurrentEst int64 `json:"current_est"`
	// Rollovers counts completed windows.
	Rollovers int64 `json:"rollovers"`
}

// HotBlock is one row of the heat ranking.
type HotBlock struct {
	// Block is the block ID for dense spaces, otherwise the heat-slot index
	// the key space folds into.
	Block int64 `json:"block"`
	// Heat is the decayed access count.
	Heat float64 `json:"heat"`
}

// Snapshot is a point-in-time export of everything the lens knows — the
// body of GET /debug/flos/cache and the input of `flos -cachereport`.
type Snapshot struct {
	SampleRate int   `json:"sample_rate"`
	Capacity   int   `json:"capacity"`
	Accesses   int64 `json:"accesses"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	// HitRatio is the measured hit ratio at the deployed capacity; compare
	// with the curve's 1x point to judge the sampler's calibration.
	HitRatio float64 `json:"hit_ratio"`
	// SampledAccesses / SampledTracked / SampledCold describe the sampled
	// subpopulation behind the curve.
	SampledAccesses int64         `json:"sampled_accesses"`
	SampledTracked  int           `json:"sampled_tracked"`
	SampledCold     int64         `json:"sampled_cold"`
	Curve           []CurvePoint  `json:"miss_ratio_curve"`
	Ghost           GhostSnapshot `json:"ghost"`
	WorkingSet      []WSSWindow   `json:"working_set"`
	// HotBlocks ranks the heat slots, hottest first (top N as requested).
	HotBlocks []HotBlock `json:"hot_blocks"`
	// DenseBlocks reports whether HotBlocks[].Block is a real block ID
	// (page index) or a hash fold.
	DenseBlocks bool  `json:"dense_blocks"`
	Ticks       int64 `json:"ticks"`
}

// Snapshot exports the lens state with the top N heat slots (N<=0 selects
// 20). Nil-safe: a nil lens returns a zero snapshot.
func (l *Lens) Snapshot(topN int) Snapshot {
	if l == nil {
		return Snapshot{}
	}
	if topN <= 0 {
		topN = 20
	}
	hits, misses := l.hits.Load(), l.misses.Load()
	s := Snapshot{
		SampleRate:  l.cfg.SampleRate,
		Capacity:    l.cfg.Capacity,
		Accesses:    hits + misses,
		Hits:        hits,
		Misses:      misses,
		DenseBlocks: l.denseHeat,
		Ticks:       l.ticks.Load(),
	}
	if s.Accesses > 0 {
		s.HitRatio = float64(hits) / float64(s.Accesses)
	}

	l.mu.Lock()
	s.SampledAccesses = l.sampled
	s.SampledTracked = l.dist.size
	s.SampledCold = l.cold
	s.Curve = make([]CurvePoint, len(l.scaleCaps))
	for i, c := range l.scaleCaps {
		p := CurvePoint{Scale: l.cfg.Scales[i], Capacity: c}
		if l.sampled > 0 {
			p.EstHitRatio = float64(l.scaleHits[i]) / float64(l.sampled)
		}
		p.EstMissRatio = 1 - p.EstHitRatio
		s.Curve[i] = p
	}
	s.Ghost = GhostSnapshot{
		Entries:       len(l.ghost),
		Capacity:      l.cfg.GhostEntries,
		Evictions:     l.evictions,
		WouldHaveHits: l.ghostHits,
	}
	if s.Accesses > 0 {
		s.Ghost.HitRatioAt2x = float64(hits+l.ghostHits) / float64(s.Accesses)
	}
	rate := int64(l.cfg.SampleRate)
	s.WorkingSet = []WSSWindow{
		{Window: l.winShort.span.String(), DistinctEst: l.winShort.lastEst,
			CurrentEst: int64(len(l.winShort.seen)) * rate, Rollovers: l.winShort.rolls},
		{Window: l.winLong.span.String(), DistinctEst: l.winLong.lastEst,
			CurrentEst: int64(len(l.winLong.seen)) * rate, Rollovers: l.winLong.rolls},
	}
	l.mu.Unlock()

	s.HotBlocks = l.topHeat(topN)
	return s
}

// topHeat scans the heat slots and returns the hottest n as decayed counts,
// descending. A linear scan with a small bounded selection keeps the
// snapshot allocation-light; slots with zero heat are skipped.
func (l *Lens) topHeat(n int) []HotBlock {
	top := make([]HotBlock, 0, n)
	for i := range l.heat {
		v := l.heat[i].Load()
		if v == 0 {
			continue
		}
		hb := HotBlock{Block: int64(i), Heat: float64(v) / heatOne}
		if len(top) < n {
			top = append(top, hb)
			for j := len(top) - 1; j > 0 && top[j].Heat > top[j-1].Heat; j-- {
				top[j], top[j-1] = top[j-1], top[j]
			}
			continue
		}
		if hb.Heat <= top[n-1].Heat {
			continue
		}
		top[n-1] = hb
		for j := n - 1; j > 0 && top[j].Heat > top[j-1].Heat; j-- {
			top[j], top[j-1] = top[j-1], top[j]
		}
	}
	return top
}

// Evictions returns the RecordEvict total. Nil-safe.
func (l *Lens) Evictions() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evictions
}
