package cachelens

import (
	"container/list"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// lruSim is a plain LRU cache simulator — the exact reference the sampled
// estimates are validated against. Deliberately independent of stackDist.
type lruSim struct {
	cap  int
	ll   *list.List
	pos  map[uint64]*list.Element
	hits int
	n    int
}

func newLRUSim(capacity int) *lruSim {
	return &lruSim{cap: capacity, ll: list.New(), pos: make(map[uint64]*list.Element)}
}

// access plays one key and reports (hit, evictedKey, evicted).
func (s *lruSim) access(key uint64) (bool, uint64, bool) {
	s.n++
	if e, ok := s.pos[key]; ok {
		s.hits++
		s.ll.MoveToFront(e)
		return true, 0, false
	}
	var evicted uint64
	var didEvict bool
	if s.ll.Len() >= s.cap {
		back := s.ll.Back()
		evicted = back.Value.(uint64)
		delete(s.pos, evicted)
		s.ll.Remove(back)
		didEvict = true
	}
	s.pos[key] = s.ll.PushFront(key)
	return false, evicted, didEvict
}

func (s *lruSim) hitRatio() float64 { return float64(s.hits) / float64(s.n) }

// zipfTrace generates a seeded Zipf access trace — the pinned synthetic
// workload of the MRC acceptance test. The v parameter flattens the head of
// the distribution: spatial sampling is accurate when no single key carries
// a macroscopic fraction of all accesses (DESIGN.md §15 discusses the
// hot-key concentration caveat), which also matches page-granularity access
// streams where each page aggregates many nodes.
func zipfTrace(seed int64, n int, keyspace uint64, skew, v float64) []uint64 {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, skew, v, keyspace-1)
	trace := make([]uint64, n)
	for i := range trace {
		trace[i] = z.Uint64()
	}
	return trace
}

// TestMRCMatchesExactOnZipf is the acceptance-criterion test: play a pinned
// Zipf trace through a real LRU at the deployed capacity (feeding the lens
// its true hits/misses/evictions), simulate exact LRU at every MRC scale,
// and require the sampled curve within 0.05 absolute error per scale. The
// ghost list's directly measured 2x ratio must also agree with the exact 2x
// simulation.
func TestMRCMatchesExactOnZipf(t *testing.T) {
	const (
		capacity = 2000
		n        = 1_000_000
		keyspace = 100_000
	)
	trace := zipfTrace(42, n, keyspace, 1.2, 256)

	lens := New(Config{Capacity: capacity, SampleRate: 64, Seed: 7})
	deployed := newLRUSim(capacity)
	scales := DefaultScales
	exact := make([]*lruSim, len(scales))
	for i, s := range scales {
		exact[i] = newLRUSim(int(s * capacity))
	}

	for _, key := range trace {
		hit, evicted, didEvict := deployed.access(key)
		lens.RecordGet(key, hit)
		if didEvict {
			lens.RecordEvict(evicted)
		}
		for _, sim := range exact {
			sim.access(key)
		}
	}

	snap := lens.Snapshot(10)
	if snap.Accesses != n {
		t.Fatalf("accesses = %d, want %d", snap.Accesses, n)
	}
	if snap.SampledAccesses < n/(64*2) {
		t.Fatalf("sampled only %d of %d accesses at rate 64", snap.SampledAccesses, n)
	}
	for i, p := range snap.Curve {
		want := exact[i].hitRatio()
		diff := p.EstHitRatio - want
		if diff < 0 {
			diff = -diff
		}
		t.Logf("scale %.2fx: exact %.4f sampled %.4f (|err| %.4f)", p.Scale, want, p.EstHitRatio, diff)
		if diff > 0.05 {
			t.Errorf("scale %.2fx: sampled hit ratio %.4f vs exact %.4f, |err| %.4f > 0.05",
				p.Scale, p.EstHitRatio, want, diff)
		}
	}

	// The measured hit ratio at 1x and the curve's 1x estimate describe the
	// same cache; they must agree within the same tolerance.
	var at1x float64
	for _, p := range snap.Curve {
		if p.Scale == 1 {
			at1x = p.EstHitRatio
		}
	}
	if d := at1x - snap.HitRatio; d > 0.05 || d < -0.05 {
		t.Errorf("curve 1x %.4f disagrees with measured hit ratio %.4f", at1x, snap.HitRatio)
	}

	// Ghost cross-check: resident (1x) + ghost (1x deep) ≈ LRU at 2x.
	exact2x := exact[3].hitRatio()
	if d := snap.Ghost.HitRatioAt2x - exact2x; d > 0.05 || d < -0.05 {
		t.Errorf("ghost 2x ratio %.4f disagrees with exact 2x %.4f", snap.Ghost.HitRatioAt2x, exact2x)
	}
	if snap.Ghost.Evictions == 0 || snap.Ghost.WouldHaveHits == 0 {
		t.Errorf("ghost list saw no traffic: %+v", snap.Ghost)
	}
}

// TestMRCDeterministicUnderSeed replays the same trace into two identically
// seeded lenses and requires byte-identical analytics: the sampled subset is
// a pure function of (seed, key), so every estimate must be too.
func TestMRCDeterministicUnderSeed(t *testing.T) {
	trace := zipfTrace(99, 200_000, 50_000, 1.2, 64)
	run := func() Snapshot {
		lens := New(Config{Capacity: 500, SampleRate: 32, Seed: 1234})
		sim := newLRUSim(500)
		for _, key := range trace {
			hit, evicted, didEvict := sim.access(key)
			lens.RecordGet(key, hit)
			if didEvict {
				lens.RecordEvict(evicted)
			}
		}
		return lens.Snapshot(10)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identically seeded lenses diverge:\n%+v\nvs\n%+v", a, b)
	}
	// A different seed samples a different subset: the curve may move a
	// little, but the sampled population itself must differ.
	lens := New(Config{Capacity: 500, SampleRate: 32, Seed: 4321})
	for _, key := range trace {
		lens.RecordGet(key, true)
	}
	if c := lens.Snapshot(10); c.SampledAccesses == a.SampledAccesses {
		t.Logf("note: different seed sampled the same count (%d) — legal but unlikely", c.SampledAccesses)
	}
}

// TestMRCMonotone is the property test: under LRU's stack-inclusion
// property a bigger cache never hits less, so every estimated curve must be
// non-decreasing in scale — on any trace, any seed.
func TestMRCMonotone(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		lens := New(Config{Capacity: 100 + int(seed)*37, SampleRate: 8, Seed: uint64(seed)})
		for i := 0; i < 50_000; i++ {
			key := uint64(r.Intn(2000))
			lens.RecordGet(key, r.Intn(2) == 0)
			if r.Intn(10) == 0 {
				lens.RecordEvict(uint64(r.Intn(2000)))
			}
		}
		snap := lens.Snapshot(5)
		for i := 1; i < len(snap.Curve); i++ {
			if snap.Curve[i].EstHitRatio < snap.Curve[i-1].EstHitRatio {
				t.Fatalf("seed %d: curve not monotone: %.4f@%.2fx > %.4f@%.2fx",
					seed, snap.Curve[i-1].EstHitRatio, snap.Curve[i-1].Scale,
					snap.Curve[i].EstHitRatio, snap.Curve[i].Scale)
			}
		}
	}
}

// TestStackDistMatchesNaive validates the Fenwick structure against a naive
// move-to-front list on a trace long enough to exercise slot-space rebuilds
// and oldest-key eviction.
func TestStackDistMatchesNaive(t *testing.T) {
	const maxTracked = 64
	sd := newStackDist(maxTracked)
	var naive []uint64 // most recent first
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 20_000; i++ {
		key := uint64(r.Intn(200))
		wantDist, wantCold := 0, true
		for j, k := range naive {
			if k == key {
				wantDist, wantCold = j+1, false
				naive = append(naive[:j], naive[j+1:]...)
				break
			}
		}
		naive = append([]uint64{key}, naive...)
		if len(naive) > maxTracked {
			naive = naive[:maxTracked]
		}
		gotDist, gotCold := sd.access(key)
		if gotCold != wantCold || gotDist != wantDist {
			t.Fatalf("access %d key %d: got (d=%d cold=%v), want (d=%d cold=%v)",
				i, key, gotDist, gotCold, wantDist, wantCold)
		}
	}
}

// TestSamplerRace stresses the lens with concurrent writers, snapshot
// readers, and epoch ticks — meaningful under -race (the CI Race step).
func TestSamplerRace(t *testing.T) {
	lens := New(Config{Capacity: 256, SampleRate: 4, Blocks: 512, HeatSlots: 512})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 20_000; i++ {
				key := uint64(r.Intn(512))
				lens.RecordGet(key, i%3 != 0)
				if i%7 == 0 {
					lens.RecordEvict(key)
				}
			}
		}(w)
	}
	go func() {
		defer close(readerDone)
		now := time.Unix(0, 0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			now = now.Add(time.Second)
			lens.Tick(now)
			snap := lens.Snapshot(10)
			if snap.Accesses < snap.Hits {
				t.Errorf("accesses %d < hits %d", snap.Accesses, snap.Hits)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	snap := lens.Snapshot(10)
	if snap.Accesses != 4*20_000 {
		t.Fatalf("accesses = %d, want %d", snap.Accesses, 4*20_000)
	}
}

// TestHeatDecayAndRanking checks the heatmap: dense block mapping, top-N
// ordering hottest-first, and exponential decay by exactly one half-life.
func TestHeatDecayAndRanking(t *testing.T) {
	lens := New(Config{Capacity: 16, Blocks: 100, HeatSlots: 128, HeatHalfLife: time.Minute})
	t0 := time.Unix(1000, 0)
	lens.Tick(t0) // anchor the clock
	for i := 0; i < 30; i++ {
		lens.RecordGet(7, true)
	}
	for i := 0; i < 10; i++ {
		lens.RecordGet(13, true)
	}
	lens.RecordGet(99, false)

	snap := lens.Snapshot(2)
	if !snap.DenseBlocks {
		t.Fatal("100 blocks in 128 slots should map densely")
	}
	if len(snap.HotBlocks) != 2 || snap.HotBlocks[0].Block != 7 || snap.HotBlocks[1].Block != 13 {
		t.Fatalf("top-2 = %+v, want blocks 7 then 13", snap.HotBlocks)
	}
	if snap.HotBlocks[0].Heat != 30 {
		t.Fatalf("block 7 heat = %v, want 30", snap.HotBlocks[0].Heat)
	}

	lens.Tick(t0.Add(time.Minute)) // one half-life
	snap = lens.Snapshot(2)
	if h := snap.HotBlocks[0].Heat; h < 14.9 || h > 15.1 {
		t.Fatalf("block 7 heat after one half-life = %v, want ~15", h)
	}
}

// TestWSSWindows checks window rollover: the published estimate is the
// scaled distinct count of the completed window.
func TestWSSWindows(t *testing.T) {
	lens := New(Config{Capacity: 64, SampleRate: 1, WindowShort: time.Minute, WindowLong: 10 * time.Minute})
	t0 := time.Unix(0, 0)
	lens.Tick(t0)
	for i := 0; i < 500; i++ {
		lens.RecordGet(uint64(i%40), true) // 40 distinct keys
	}
	snap := lens.Snapshot(1)
	if snap.WorkingSet[0].CurrentEst != 40 {
		t.Fatalf("short-window current estimate = %d, want 40", snap.WorkingSet[0].CurrentEst)
	}
	lens.Tick(t0.Add(61 * time.Second))
	snap = lens.Snapshot(1)
	if snap.WorkingSet[0].DistinctEst != 40 || snap.WorkingSet[0].Rollovers != 1 {
		t.Fatalf("short window after rollover = %+v, want est 40 rollovers 1", snap.WorkingSet[0])
	}
	if snap.WorkingSet[1].Rollovers != 0 {
		t.Fatalf("long window rolled early: %+v", snap.WorkingSet[1])
	}
	if snap.WorkingSet[0].CurrentEst != 0 {
		t.Fatalf("short window did not reset: %+v", snap.WorkingSet[0])
	}
}

// TestNilLensIsSafe pins the instrumentation contract: every method on a
// nil lens is a no-op, so callers guard with nothing but the nil receiver.
func TestNilLensIsSafe(t *testing.T) {
	var lens *Lens
	lens.RecordGet(1, true)
	lens.RecordEvict(1)
	lens.Tick(time.Now())
	lens.Close()
	if got := lens.Snapshot(5); got.Accesses != 0 {
		t.Fatalf("nil snapshot = %+v", got)
	}
	if lens.Evictions() != 0 {
		t.Fatal("nil lens reports evictions")
	}
}

// TestGhostReentry exercises the sequence-number guard: a key that ghost-
// hits (leaving the list) and is later re-evicted must not be deleted early
// when its stale FIFO slot reaches the head.
func TestGhostReentry(t *testing.T) {
	lens := New(Config{Capacity: 4, GhostEntries: 4, SampleRate: 1})
	lens.RecordEvict(1)
	lens.RecordGet(1, false) // ghost hit: key 1 leaves the list
	lens.RecordEvict(1)      // re-enters with a new sequence
	for k := uint64(2); k <= 6; k++ {
		lens.RecordEvict(k) // push the stale slot of key 1 past the head
	}
	// Keys 3..6 are the live FIFO tail plus key 1's re-entry was displaced;
	// what matters: no panic and the list stays bounded.
	snap := lens.Snapshot(1)
	if snap.Ghost.Entries > 4 {
		t.Fatalf("ghost list overran its bound: %+v", snap.Ghost)
	}
	if snap.Ghost.WouldHaveHits != 1 {
		t.Fatalf("would-have-hits = %d, want 1", snap.Ghost.WouldHaveHits)
	}
}

// TestAutoTick covers the background ticker path used by flosd.
func TestAutoTick(t *testing.T) {
	lens := New(Config{Capacity: 16, TickEvery: time.Millisecond})
	defer lens.Close()
	for i := 0; i < 100; i++ {
		lens.RecordGet(uint64(i), false)
	}
	deadline := time.Now().Add(2 * time.Second)
	for lens.Snapshot(1).Ticks < 2 {
		if time.Now().After(deadline) {
			t.Fatal("background ticker never fired twice")
		}
		time.Sleep(5 * time.Millisecond)
	}
	lens.Close() // double Close must be safe
}
