package cachelens

// stackDist measures exact LRU stack distances over the sampled key
// population — the Mattson stack algorithm with a Fenwick (binary indexed)
// tree instead of a linked stack, so each access costs O(log n) rather than
// a stack walk.
//
// Every access is assigned a monotonically increasing time slot; a key's
// only live slot is its most recent access, so the number of occupied slots
// newer than a key's previous slot is exactly the number of distinct keys
// touched since — its stack distance. The Fenwick tree maintains occupied
// counts by slot so that "occupied slots after p" is two prefix sums.
//
// Two bounds keep it small: the population is capped at maxTracked (the
// oldest key is dropped past that — a later re-access counts as cold, i.e.
// deeper than any capacity the MRC evaluates), and the slot space is 4x the
// population so slot assignment can run forward cheaply and compact with a
// renumbering rebuild only every ~3·maxTracked accesses.
//
// Not safe for concurrent use; the Lens serializes access under its mutex.
type stackDist struct {
	maxTracked int
	capSlots   int
	tree       []int    // Fenwick over occupied slots, 1-indexed
	occupied   []bool   // 1-indexed
	keyAt      []uint64 // 1-indexed; valid where occupied
	last       map[uint64]int
	clock      int // highest assigned slot
	size       int // occupied slots == tracked keys
	oldest     int // lowest slot that may be occupied
}

func newStackDist(maxTracked int) *stackDist {
	if maxTracked < 16 {
		maxTracked = 16
	}
	capSlots := 4 * maxTracked
	return &stackDist{
		maxTracked: maxTracked,
		capSlots:   capSlots,
		tree:       make([]int, capSlots+1),
		occupied:   make([]bool, capSlots+1),
		keyAt:      make([]uint64, capSlots+1),
		last:       make(map[uint64]int, maxTracked),
		oldest:     1,
	}
}

func (s *stackDist) add(i, delta int) {
	for ; i <= s.capSlots; i += i & (-i) {
		s.tree[i] += delta
	}
}

// prefix counts occupied slots in [1, i].
func (s *stackDist) prefix(i int) int {
	n := 0
	for ; i > 0; i -= i & (-i) {
		n += s.tree[i]
	}
	return n
}

// access records one sampled access and returns the key's 1-based stack
// distance (the position it would occupy in a full LRU stack of the sampled
// population, counting itself), or cold=true for a first touch or a key
// that aged out of the tracked population.
func (s *stackDist) access(key uint64) (distance int, cold bool) {
	cold = true
	if prev, ok := s.last[key]; ok {
		cold = false
		// Occupied slots newer than prev = distinct keys since, +1 for the
		// key itself.
		distance = s.size - s.prefix(prev) + 1
		s.add(prev, -1)
		s.occupied[prev] = false
		s.size--
	}
	if s.clock >= s.capSlots {
		s.rebuild()
	}
	s.clock++
	slot := s.clock
	s.occupied[slot] = true
	s.keyAt[slot] = key
	s.add(slot, 1)
	s.last[key] = slot
	s.size++
	if s.size > s.maxTracked {
		s.evictOldest()
	}
	return distance, cold
}

// evictOldest drops the least-recently-accessed tracked key.
func (s *stackDist) evictOldest() {
	for s.oldest <= s.capSlots && !s.occupied[s.oldest] {
		s.oldest++
	}
	if s.oldest > s.capSlots {
		return
	}
	slot := s.oldest
	delete(s.last, s.keyAt[slot])
	s.add(slot, -1)
	s.occupied[slot] = false
	s.size--
	s.oldest++
}

// rebuild renumbers the occupied slots compactly (order preserved) when the
// forward clock runs out of slot space.
func (s *stackDist) rebuild() {
	type kv struct {
		key  uint64
		slot int
	}
	live := make([]kv, 0, s.size)
	for i := s.oldest; i <= s.clock; i++ {
		if s.occupied[i] {
			live = append(live, kv{key: s.keyAt[i], slot: i})
		}
	}
	for i := range s.tree {
		s.tree[i] = 0
	}
	for i := range s.occupied {
		s.occupied[i] = false
	}
	for i, e := range live {
		slot := i + 1
		s.occupied[slot] = true
		s.keyAt[slot] = e.key
		s.add(slot, 1)
		s.last[e.key] = slot
	}
	s.clock = len(live)
	s.oldest = 1
}
