package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"flos/internal/core"
	"flos/internal/measure"
)

// RecorderConfig tunes a FlightRecorder. The zero value selects defaults.
type RecorderConfig struct {
	// Size is the ring capacity — the last Size completed queries are
	// retained; 0 selects 256.
	Size int
	// SlowLatency promotes any query at or over this latency into the
	// slow-query log; 0 selects 250ms, negative disables latency promotion.
	SlowLatency time.Duration
	// SlowVisited promotes any query whose visited set reached this size;
	// 0 disables visited promotion (locality is graph-dependent, so there
	// is no universal default).
	SlowVisited int
	// SlowKeep bounds the slow-query log; 0 selects 64.
	SlowKeep int
	// TracePoints bounds the down-sampled trajectory kept per record;
	// 0 selects 48, negative disables trajectory capture.
	TracePoints int
}

func (c RecorderConfig) withDefaults() RecorderConfig {
	if c.Size <= 0 {
		c.Size = 256
	}
	if c.SlowLatency == 0 {
		c.SlowLatency = 250 * time.Millisecond
	}
	if c.SlowKeep <= 0 {
		c.SlowKeep = 64
	}
	if c.TracePoints == 0 {
		c.TracePoints = 48
	}
	return c
}

// FlightRecord is one completed query's diagnostic record: identity, work
// counters, outcome, and a down-sampled convergence trajectory. Records are
// immutable once handed to the recorder.
type FlightRecord struct {
	// ID is the request ID — the join key against histogram exemplars and
	// access logs.
	ID string `json:"id"`
	// TraceID is the request's hex trace ID when span tracing was on — the
	// join key against /debug/flos/traces and exemplar trace IDs.
	TraceID string `json:"trace_id,omitempty"`
	// Start is when execution (or the cache lookup) began.
	Start time.Time `json:"start"`
	// Measure is the histogram label ("php".."rwr", "unified").
	Measure string `json:"measure"`
	// Query and K identify the request.
	Query int64 `json:"query"`
	K     int   `json:"k"`
	// Unified marks two-family queries.
	Unified bool `json:"unified,omitempty"`
	// Outcome is "ok", "hit" (result cache), "shed", "deadline",
	// "canceled", or "failed".
	Outcome string `json:"outcome"`
	// LatencyUS is the query's wall-clock latency in microseconds.
	LatencyUS int64 `json:"latency_us"`
	// Iterations/Visited/Sweeps are the engine work counters (partial
	// counts for interrupted queries, zero for cache hits and shed
	// requests).
	Iterations int `json:"iterations"`
	Visited    int `json:"visited"`
	Sweeps     int `json:"sweeps"`
	// Exact reports the engine's exactness certificate.
	Exact bool `json:"exact,omitempty"`
	// Epoch is the graph epoch (live-pool snapshot epoch) the query ran
	// against; offline replay compares it with the replay graph's epoch to
	// flag cross-epoch staleness instead of silently replaying on a
	// different topology.
	Epoch uint64 `json:"epoch,omitempty"`
	// Slow marks records promoted into the slow-query log.
	Slow bool `json:"slow,omitempty"`
	// Trace is the down-sampled IterStats trajectory; TraceTotal is the
	// full iteration count before down-sampling (Trace covers everything
	// when TraceTotal == len(Trace)).
	TraceTotal int              `json:"trace_total,omitempty"`
	Trace      []core.IterStats `json:"trace,omitempty"`
	// PartialTopK is the in-flight top-k an interrupted query (outcome
	// "deadline" or "canceled") was holding when its context fired — the
	// same partial an anytime-mode request would have been answered with.
	// Offline replay renders it so a killed production query still shows
	// what it had found. Empty for completed queries and for interruptions
	// that preceded the first solver iteration.
	PartialTopK []measure.Ranked `json:"partial_topk,omitempty"`
}

// FlightRecorder retains the last N completed queries in a fixed-size
// lock-free ring and promotes outliers into a bounded slow-query log. The
// record path is one atomic add plus one atomic pointer store (plus a short
// mutexed append for the rare promoted record), so it is cheap enough to
// leave always-on in production.
type FlightRecorder struct {
	cfg RecorderConfig

	seq  atomic.Uint64
	ring []atomic.Pointer[FlightRecord]

	slowMu    sync.Mutex
	slow      []*FlightRecord // ring: slowSeq % SlowKeep
	slowSeq   uint64
	slowTotal atomic.Uint64
	lastSlow  atomic.Int64 // unix nanos of the latest promotion
}

// NewFlightRecorder builds a recorder with cfg (zero value = defaults).
func NewFlightRecorder(cfg RecorderConfig) *FlightRecorder {
	cfg = cfg.withDefaults()
	return &FlightRecorder{
		cfg:  cfg,
		ring: make([]atomic.Pointer[FlightRecord], cfg.Size),
		slow: make([]*FlightRecord, cfg.SlowKeep),
	}
}

// Config returns the recorder's resolved configuration.
func (r *FlightRecorder) Config() RecorderConfig { return r.cfg }

// TracePoints returns the per-record trajectory budget (0 when trajectory
// capture is disabled).
func (r *FlightRecorder) TracePoints() int {
	if r.cfg.TracePoints < 0 {
		return 0
	}
	return r.cfg.TracePoints
}

// IsSlow reports whether a query with this latency and visited count meets
// a promotion threshold.
func (r *FlightRecorder) IsSlow(latency time.Duration, visited int) bool {
	if r.cfg.SlowLatency > 0 && latency >= r.cfg.SlowLatency {
		return true
	}
	return r.cfg.SlowVisited > 0 && visited >= r.cfg.SlowVisited
}

// Record stores one completed query. The recorder sets rec.Slow and owns
// rec afterwards; callers must not mutate it.
func (r *FlightRecorder) Record(rec *FlightRecord) {
	rec.Slow = r.IsSlow(time.Duration(rec.LatencyUS)*time.Microsecond, rec.Visited)
	idx := r.seq.Add(1) - 1
	r.ring[idx%uint64(len(r.ring))].Store(rec)
	if !rec.Slow {
		return
	}
	r.slowTotal.Add(1)
	r.lastSlow.Store(rec.Start.Add(time.Duration(rec.LatencyUS) * time.Microsecond).UnixNano())
	r.slowMu.Lock()
	r.slow[r.slowSeq%uint64(len(r.slow))] = rec
	r.slowSeq++
	r.slowMu.Unlock()
}

// Recorded returns the total number of records ever stored.
func (r *FlightRecorder) Recorded() uint64 { return r.seq.Load() }

// SlowCount returns the total number of promotions (the log retains only
// the most recent SlowKeep of them).
func (r *FlightRecorder) SlowCount() uint64 { return r.slowTotal.Load() }

// SlowSince reports whether any query was promoted into the slow-query log
// at or after t — the hook the continuous profiler uses to tag capture
// windows that overlap a slow query.
func (r *FlightRecorder) SlowSince(t time.Time) bool {
	ns := r.lastSlow.Load()
	return ns != 0 && ns >= t.UnixNano()
}

// Last returns up to n of the most recent records, newest first. n <= 0
// selects the full ring.
func (r *FlightRecorder) Last(n int) []*FlightRecord {
	size := len(r.ring)
	if n <= 0 || n > size {
		n = size
	}
	head := r.seq.Load()
	out := make([]*FlightRecord, 0, n)
	for i := 0; i < n; i++ {
		idx := int64(head) - 1 - int64(i)
		if idx < 0 {
			break
		}
		// A slot can be mid-overwrite by a racing writer that lapped the
		// ring; the pointer load is still atomic, we just may see the newer
		// record. Nil means the slot was never written.
		if rec := r.ring[idx%int64(size)].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	return out
}

// Slow returns the retained slow-query log, newest first.
func (r *FlightRecorder) Slow() []*FlightRecord {
	r.slowMu.Lock()
	defer r.slowMu.Unlock()
	n := r.slowSeq
	keep := uint64(len(r.slow))
	if n > keep {
		n = keep
	}
	out := make([]*FlightRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.slow[(r.slowSeq-1-i)%keep])
	}
	return out
}

// TraceSampler is a core.Tracer that retains a bounded, evenly-strided
// sample of the iteration trajectory: when the buffer fills, it compacts to
// every other entry and doubles its stride, so a search of any length keeps
// at most max points spread across its whole run, always including the
// final (certifying) iteration. It allocates only on buffer growth up to
// max and is resettable, so a worker can reuse one sampler across queries.
//
// It is not concurrency-safe; use one per in-flight query.
type TraceSampler struct {
	max    int
	stride int
	total  int
	buf    []core.IterStats
	last   core.IterStats
}

// NewTraceSampler builds a sampler keeping at most max points (minimum 2:
// first and last).
func NewTraceSampler(max int) *TraceSampler {
	if max < 2 {
		max = 2
	}
	return &TraceSampler{max: max, stride: 1}
}

// Reset clears the sampler for the next query.
func (s *TraceSampler) Reset() {
	s.stride = 1
	s.total = 0
	s.buf = s.buf[:0]
}

// Total returns the number of iterations observed since the last Reset.
func (s *TraceSampler) Total() int { return s.total }

// ObserveIteration implements core.Tracer.
func (s *TraceSampler) ObserveIteration(it core.IterStats) {
	if s.total%s.stride == 0 {
		if len(s.buf) == s.max {
			// Compact to every other entry; the kept points stay evenly
			// strided because the buffer was.
			for i := 0; 2*i < len(s.buf); i++ {
				s.buf[i] = s.buf[2*i]
			}
			s.buf = s.buf[:(len(s.buf)+1)/2]
			s.stride *= 2
		}
		if s.total%s.stride == 0 {
			s.buf = append(s.buf, it)
		}
	}
	s.total++
	s.last = it
}

// Snapshot copies the sampled trajectory, appending the final iteration if
// the stride skipped it. The copy is safe to retain after Reset.
func (s *TraceSampler) Snapshot() []core.IterStats {
	if s.total == 0 {
		return nil
	}
	n := len(s.buf)
	withLast := (s.total-1)%s.stride != 0
	out := make([]core.IterStats, n, n+1)
	copy(out, s.buf)
	if withLast {
		out = append(out, s.last)
	}
	return out
}
