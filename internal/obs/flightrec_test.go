package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"flos/internal/core"
)

func mkRecord(i int, lat time.Duration, visited int) *FlightRecord {
	return &FlightRecord{
		ID:        fmt.Sprintf("req-%04d", i),
		Start:     time.Unix(1700000000+int64(i), 0),
		Measure:   "php",
		Query:     int64(i),
		K:         10,
		Outcome:   "ok",
		LatencyUS: lat.Microseconds(),
		Visited:   visited,
	}
}

func TestFlightRecorderRingAndSlowPromotion(t *testing.T) {
	r := NewFlightRecorder(RecorderConfig{
		Size:        8,
		SlowLatency: 100 * time.Millisecond,
		SlowVisited: 5000,
		SlowKeep:    4,
	})

	// 20 fast records wrap the size-8 ring.
	for i := 0; i < 20; i++ {
		r.Record(mkRecord(i, time.Millisecond, 10))
	}
	last := r.Last(0)
	if len(last) != 8 {
		t.Fatalf("ring holds %d records, want 8", len(last))
	}
	for i, rec := range last {
		if want := int64(19 - i); rec.Query != want {
			t.Errorf("ring[%d].Query = %d, want %d (newest first)", i, rec.Query, want)
		}
	}
	if got := r.Last(3); len(got) != 3 || got[0].Query != 19 {
		t.Errorf("Last(3) = %d records starting at %v", len(got), got[0])
	}
	if r.Recorded() != 20 || r.SlowCount() != 0 {
		t.Errorf("recorded/slow = %d/%d, want 20/0", r.Recorded(), r.SlowCount())
	}
	if len(r.Slow()) != 0 {
		t.Errorf("slow log not empty: %v", r.Slow())
	}

	// Promotion by latency, by visited, and neither.
	r.Record(mkRecord(100, 150*time.Millisecond, 10)) // slow by latency
	r.Record(mkRecord(101, time.Millisecond, 9000))   // slow by visited
	r.Record(mkRecord(102, 99*time.Millisecond, 4999))
	slow := r.Slow()
	if len(slow) != 2 {
		t.Fatalf("slow log = %d entries, want 2", len(slow))
	}
	if slow[0].Query != 101 || slow[1].Query != 100 {
		t.Errorf("slow log order = %d,%d, want 101,100 (newest first)", slow[0].Query, slow[1].Query)
	}
	for _, rec := range slow {
		if !rec.Slow {
			t.Errorf("promoted record %d not flagged Slow", rec.Query)
		}
	}
	if r.SlowCount() != 2 {
		t.Errorf("SlowCount = %d, want 2", r.SlowCount())
	}

	// The slow log is bounded at SlowKeep, retaining the most recent.
	for i := 0; i < 10; i++ {
		r.Record(mkRecord(200+i, time.Second, 10))
	}
	slow = r.Slow()
	if len(slow) != 4 {
		t.Fatalf("slow log = %d entries, want SlowKeep=4", len(slow))
	}
	if slow[0].Query != 209 || slow[3].Query != 206 {
		t.Errorf("slow log window = %d..%d, want 209..206", slow[0].Query, slow[3].Query)
	}

	if !r.SlowSince(time.Unix(1700000000, 0)) {
		t.Error("SlowSince(start) = false after promotions")
	}
	if r.SlowSince(time.Now().Add(time.Hour)) {
		t.Error("SlowSince(future) = true")
	}
}

func TestFlightRecorderDisabledThresholds(t *testing.T) {
	r := NewFlightRecorder(RecorderConfig{SlowLatency: -1})
	r.Record(mkRecord(0, time.Hour, 1<<30))
	if len(r.Slow()) != 0 {
		t.Error("latency promotion disabled but record promoted (visited default must be off)")
	}
	if r.IsSlow(time.Hour, 1<<30) {
		t.Error("IsSlow with both thresholds off")
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(RecorderConfig{Size: 32, SlowLatency: time.Millisecond, SlowKeep: 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				lat := time.Microsecond
				if i%50 == 0 {
					lat = 2 * time.Millisecond
				}
				r.Record(mkRecord(w*1000+i, lat, 10))
			}
		}(w)
	}
	// Concurrent readers.
	for rd := 0; rd < 2; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Last(16)
				r.Slow()
			}
		}()
	}
	wg.Wait()
	if r.Recorded() != 4000 {
		t.Fatalf("recorded = %d, want 4000", r.Recorded())
	}
	if got := r.SlowCount(); got != 8*10 {
		t.Fatalf("slow count = %d, want 80", got)
	}
	if len(r.Last(0)) != 32 {
		t.Fatalf("ring size = %d, want 32", len(r.Last(0)))
	}
}

func TestTraceSamplerDownsamples(t *testing.T) {
	cases := []struct {
		total, max int
	}{
		{0, 8}, {1, 8}, {7, 8}, {8, 8}, {9, 8}, {100, 8}, {1000, 16}, {5, 2},
	}
	for _, tc := range cases {
		s := NewTraceSampler(tc.max)
		for i := 1; i <= tc.total; i++ {
			s.ObserveIteration(core.IterStats{Iteration: i, Visited: i * 3})
		}
		got := s.Snapshot()
		if s.Total() != tc.total {
			t.Errorf("total=%d max=%d: Total() = %d", tc.total, tc.max, s.Total())
		}
		if tc.total == 0 {
			if got != nil {
				t.Errorf("empty sampler snapshot = %v, want nil", got)
			}
			continue
		}
		max := tc.max
		if max < 2 {
			max = 2
		}
		if len(got) > max+1 {
			t.Errorf("total=%d max=%d: kept %d points, budget %d(+1 final)", tc.total, tc.max, len(got), max)
		}
		if got[0].Iteration != 1 {
			t.Errorf("total=%d: first sampled iteration = %d, want 1", tc.total, got[0].Iteration)
		}
		if got[len(got)-1].Iteration != tc.total {
			t.Errorf("total=%d: last sampled iteration = %d, want %d (final entry must survive)",
				tc.total, got[len(got)-1].Iteration, tc.total)
		}
		if tc.total <= max && len(got) != tc.total {
			t.Errorf("total=%d fits budget %d but kept %d", tc.total, max, len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i].Iteration <= got[i-1].Iteration {
				t.Fatalf("total=%d: sampled iterations not increasing: %d after %d",
					tc.total, got[i].Iteration, got[i-1].Iteration)
			}
		}
	}
}

func TestTraceSamplerReset(t *testing.T) {
	s := NewTraceSampler(4)
	for i := 1; i <= 100; i++ {
		s.ObserveIteration(core.IterStats{Iteration: i})
	}
	s.Reset()
	if s.Total() != 0 || s.Snapshot() != nil {
		t.Fatalf("reset sampler total=%d snapshot=%v", s.Total(), s.Snapshot())
	}
	for i := 1; i <= 3; i++ {
		s.ObserveIteration(core.IterStats{Iteration: i})
	}
	got := s.Snapshot()
	if len(got) != 3 || got[0].Iteration != 1 || got[2].Iteration != 3 {
		t.Fatalf("post-reset snapshot = %+v", got)
	}
}
