// Package obs holds the observability primitives shared by the serving
// stack: a lock-free log-bucketed latency histogram with per-bucket
// exemplars, a Prometheus text-exposition writer, request-ID generation,
// log-level parsing, and the production diagnostics plane — a query flight
// recorder with a slow-query log, a multi-window SLO burn-rate tracker, and
// a continuous pprof profiler.
//
// Nothing here imports a metrics client library: the package serves the
// Prometheus text format with its own writer, so the serving stack has no
// external observability dependencies.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// numBuckets is the bucket count of Histogram. Bucket i holds observations
// in (bucketBound(i-1), bucketBound(i)] microseconds, with bound doubling
// from 1µs; 28 buckets reach ~134s, far past any query deadline. Overflow
// lands in the last bucket.
const numBuckets = 28

// bucketBound returns the inclusive upper bound of bucket i in microseconds.
func bucketBound(i int) int64 { return 1 << uint(i) }

// Exemplar ties a histogram bucket back to one concrete request: the ID,
// trace ID, and exact latency of the bucket's most recent sample. Joining a
// tail bucket's exemplar against the flight recorder, slow-query log, or
// span store turns "the p99 is high" into "this query made the p99 high" —
// and, via the trace ID, into that query's full span tree.
type Exemplar struct {
	// ID is the request ID of the sample (empty when the bucket has never
	// seen an exemplar-carrying observation).
	ID string `json:"id"`
	// TraceID is the sample's hex trace ID, joinable against
	// /debug/flos/traces; empty when the request was untraced.
	TraceID string `json:"trace_id,omitempty"`
	// LatencyUS is that sample's exact latency in microseconds.
	LatencyUS int64 `json:"latency_us"`
}

// Histogram is a fixed-shape, log-bucketed latency histogram safe for
// concurrent Observe and Snapshot: counts are independent atomics, so a
// snapshot is per-bucket consistent (each bucket value is exact at some
// instant) without any lock on the hot path. Each bucket additionally
// remembers its most recent exemplar (one atomic pointer store when the
// observation carries a request ID).
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sumUS   atomic.Int64

	exemplars [numBuckets]atomic.Pointer[Exemplar]
}

// Observe records one duration without an exemplar.
func (h *Histogram) Observe(d time.Duration) { h.ObserveExemplar(d, "", "") }

// ObserveExemplar records one duration and, when id is non-empty, installs
// it (with the request's trace ID, possibly empty) as the bucket's exemplar
// (last writer wins — "most recent sample" is best-effort under concurrency,
// which is all an exemplar needs to be).
func (h *Histogram) ObserveExemplar(d time.Duration, id, traceID string) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := bucketIndex(us)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
	if id != "" {
		h.exemplars[i].Store(&Exemplar{ID: id, TraceID: traceID, LatencyUS: us})
	}
}

// bucketIndex returns the bucket holding an observation of us microseconds:
// the smallest i with us <= 2^i, capped at the overflow bucket.
func bucketIndex(us int64) int {
	for i := 0; i < numBuckets-1; i++ {
		if us <= bucketBound(i) {
			return i
		}
	}
	return numBuckets - 1
}

// Snapshot is a point-in-time copy of a Histogram, the unit the JSON and
// Prometheus exporters consume.
type Snapshot struct {
	// Counts[i] is the observation count of bucket i (bounds per BucketBoundsUS).
	Counts [numBuckets]int64
	// Count and SumUS are the total observation count and latency sum.
	Count int64
	SumUS int64
	// Exemplars[i] is bucket i's most recent exemplar, nil when the bucket
	// has never seen one.
	Exemplars [numBuckets]*Exemplar
}

// Snapshot copies the current bucket counts and exemplars.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
		s.Exemplars[i] = h.exemplars[i].Load()
	}
	s.Count = h.count.Load()
	s.SumUS = h.sumUS.Load()
	return s
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// BucketBoundsUS returns the inclusive per-bucket upper bounds in
// microseconds; the last entry is the overflow bucket (+Inf in exposition).
func BucketBoundsUS() []int64 {
	out := make([]int64, numBuckets)
	for i := range out {
		out[i] = bucketBound(i)
	}
	return out
}

// QuantileUS returns a conservative estimate of the p-quantile (0 <= p <= 1)
// in microseconds: the upper bound of the bucket containing the observation
// at rank ceil(p·(n−1))+1. Rounding the rank index up and reporting the
// bucket's upper edge biases tail quantiles high, never low — the safe
// direction for alerting (the old sort-based estimator truncated the index
// to int(p·(n−1)), which under-reported p99 on small windows).
//
// The extremes are pinned rather than estimated: an empty histogram (and a
// NaN p) reports 0, and p = 0 reports the minimum nonempty bucket's *lower*
// bound — the round-up rule would overstate the observed minimum, the one
// quantile where biasing high is the unsafe direction.
func (s Snapshot) QuantileUS(p float64) int64 {
	if s.Count == 0 || math.IsNaN(p) {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	if p == 0 {
		for i, c := range s.Counts {
			if c > 0 {
				if i == 0 {
					return 0
				}
				return bucketBound(i - 1)
			}
		}
		return 0 // unreachable: Count > 0 implies a nonempty bucket
	}
	rank := int64(math.Ceil(p*float64(s.Count-1))) + 1
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return bucketBound(i)
		}
	}
	return bucketBound(numBuckets - 1)
}
