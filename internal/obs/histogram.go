// Package obs holds the observability primitives shared by the serving
// stack: a lock-free log-bucketed latency histogram, a Prometheus
// text-exposition writer, request-ID generation, and log-level parsing.
//
// Everything here is dependency-free by design — the module serves metrics
// in the Prometheus text format without importing a client library.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// numBuckets is the bucket count of Histogram. Bucket i holds observations
// in (bucketBound(i-1), bucketBound(i)] microseconds, with bound doubling
// from 1µs; 28 buckets reach ~134s, far past any query deadline. Overflow
// lands in the last bucket.
const numBuckets = 28

// bucketBound returns the inclusive upper bound of bucket i in microseconds.
func bucketBound(i int) int64 { return 1 << uint(i) }

// Histogram is a fixed-shape, log-bucketed latency histogram safe for
// concurrent Observe and Snapshot: counts are independent atomics, so a
// snapshot is per-bucket consistent (each bucket value is exact at some
// instant) without any lock on the hot path.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sumUS   atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.buckets[bucketIndex(us)].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// bucketIndex returns the bucket holding an observation of us microseconds:
// the smallest i with us <= 2^i, capped at the overflow bucket.
func bucketIndex(us int64) int {
	for i := 0; i < numBuckets-1; i++ {
		if us <= bucketBound(i) {
			return i
		}
	}
	return numBuckets - 1
}

// Snapshot is a point-in-time copy of a Histogram, the unit the JSON and
// Prometheus exporters consume.
type Snapshot struct {
	// Counts[i] is the observation count of bucket i (bounds per BucketBoundsUS).
	Counts [numBuckets]int64
	// Count and SumUS are the total observation count and latency sum.
	Count int64
	SumUS int64
}

// Snapshot copies the current bucket counts.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumUS = h.sumUS.Load()
	return s
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// BucketBoundsUS returns the inclusive per-bucket upper bounds in
// microseconds; the last entry is the overflow bucket (+Inf in exposition).
func BucketBoundsUS() []int64 {
	out := make([]int64, numBuckets)
	for i := range out {
		out[i] = bucketBound(i)
	}
	return out
}

// QuantileUS returns a conservative estimate of the p-quantile (0 <= p <= 1)
// in microseconds: the upper bound of the bucket containing the observation
// at rank ceil(p·(n−1))+1. Rounding the rank index up and reporting the
// bucket's upper edge biases tail quantiles high, never low — the safe
// direction for alerting (the old sort-based estimator truncated the index
// to int(p·(n−1)), which under-reported p99 on small windows). Returns 0
// when the histogram is empty.
func (s Snapshot) QuantileUS(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(math.Ceil(p*float64(s.Count-1))) + 1
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return bucketBound(i)
		}
	}
	return bucketBound(numBuckets - 1)
}
