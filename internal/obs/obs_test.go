package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 99 fast observations and 1 slow one: the old truncating estimator
	// reported p99 from the fast mass; the round-up rule must land on the
	// slow observation's bucket.
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(50 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if got := s.QuantileUS(0.50); got < 100 || got > 256 {
		t.Errorf("p50 = %dus, want the ~100us bucket bound", got)
	}
	p99 := s.QuantileUS(0.99)
	if p99 < 50_000 {
		t.Errorf("p99 = %dus, want >= 50ms (round-up must reach the slow observation)", p99)
	}
	// Quantile estimates are conservative: never below the true value's
	// bucket lower bound, here trivially monotone in p.
	if s.QuantileUS(1.0) < p99 {
		t.Errorf("p100 %d < p99 %d", s.QuantileUS(1.0), p99)
	}
	if s.SumUS != 99*100+50_000 {
		t.Errorf("sum = %dus", s.SumUS)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().QuantileUS(0.99); got != 0 {
		t.Errorf("empty p99 = %d, want 0", got)
	}
	h.Observe(1000 * time.Hour) // far past the last bound: overflow bucket
	s := h.Snapshot()
	if s.Counts[numBuckets-1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", s.Counts[numBuckets-1])
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const per = 1000
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8*per {
		t.Fatalf("count = %d, want %d", s.Count, 8*per)
	}
	var bucketSum int64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

func TestPromWriterFormat(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	h.Observe(70 * time.Millisecond)

	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("flos_queries_served_total", "Queries answered.", nil, 42)
	p.Counter("flos_outcomes_total", "Outcomes.", map[string]string{"outcome": "ok"}, 40)
	p.Counter("flos_outcomes_total", "Outcomes.", map[string]string{"outcome": "deadline"}, 2)
	p.Gauge("go_goroutines", "Goroutines.", nil, 12)
	p.Histogram("flos_query_latency_seconds", "Latency.", map[string]string{"measure": "php"}, h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP flos_queries_served_total Queries answered.",
		"# TYPE flos_queries_served_total counter",
		"flos_queries_served_total 42",
		`flos_outcomes_total{outcome="ok"} 40`,
		`flos_outcomes_total{outcome="deadline"} 2`,
		"# TYPE go_goroutines gauge",
		"# TYPE flos_query_latency_seconds histogram",
		`flos_query_latency_seconds_bucket{le="+Inf",measure="php"} 2`,
		`flos_query_latency_seconds_count{measure="php"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// HELP/TYPE headers appear exactly once per family.
	if n := strings.Count(out, "# TYPE flos_outcomes_total counter"); n != 1 {
		t.Errorf("TYPE header written %d times, want 1", n)
	}
	// Cumulative buckets: every _bucket line's value is non-decreasing.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "flos_query_latency_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparsable bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative: %q after %d", line, prev)
		}
		prev = v
	}
}

// TestQuantileExtremes pins the estimator's edge behavior: an empty
// histogram (and a NaN p) reports 0, and p = 0 reports the minimum nonempty
// bucket's lower bound — the one quantile where the round-up rule's
// bias-high direction is unsafe.
func TestQuantileExtremes(t *testing.T) {
	var empty Histogram
	for _, p := range []float64{0, 0.5, 0.99, 1, math.NaN(), -1, 2} {
		if got := empty.Snapshot().QuantileUS(p); got != 0 {
			t.Errorf("empty QuantileUS(%v) = %d, want 0", p, got)
		}
	}

	cases := []struct {
		name    string
		observe []time.Duration
		p       float64
		want    int64
	}{
		// All mass in bucket 10 ((512,1024]us): the minimum is that
		// bucket's lower bound, not its upper bound.
		{"p0 lower bound", []time.Duration{800 * time.Microsecond, 900 * time.Microsecond}, 0, 512},
		// Mass in bucket 0: the lower bound of the first bucket is 0.
		{"p0 bucket zero", []time.Duration{time.Microsecond}, 0, 0},
		// Minimum is taken over the lowest nonempty bucket even when the
		// mass is mostly elsewhere.
		{"p0 mixed", []time.Duration{3 * time.Microsecond, time.Second, time.Second}, 0, 2},
		// p=1 still reports the top bucket's upper bound (round-up rule).
		{"p1 upper bound", []time.Duration{3 * time.Microsecond, 800 * time.Microsecond}, 1, 1024},
		// Out-of-range p clamps.
		{"p<0 clamps to min", []time.Duration{800 * time.Microsecond}, -3, 512},
		{"p>1 clamps to max", []time.Duration{800 * time.Microsecond}, 7, 1024},
		// NaN on a populated histogram reports 0 rather than garbage.
		{"NaN", []time.Duration{800 * time.Microsecond}, math.NaN(), 0},
	}
	for _, tc := range cases {
		var h Histogram
		for _, d := range tc.observe {
			h.Observe(d)
		}
		if got := h.Snapshot().QuantileUS(tc.p); got != tc.want {
			t.Errorf("%s: QuantileUS(%v) = %d, want %d", tc.name, tc.p, got, tc.want)
		}
	}
}

// TestHistogramExemplars verifies each bucket remembers the request ID of
// its most recent sample and that plain Observe never clobbers one.
func TestHistogramExemplars(t *testing.T) {
	var h Histogram
	h.ObserveExemplar(3*time.Microsecond, "req-a", "")            // bucket 2
	h.ObserveExemplar(800*time.Microsecond, "req-b", "")          // bucket 10
	h.ObserveExemplar(900*time.Microsecond, "req-c", "trace-c")   // bucket 10 again: replaces
	h.Observe(600 * time.Microsecond)                             // bucket 10, no ID: keeps req-c
	h.ObserveExemplar(50*time.Millisecond, "req-slow", "trace-s") // tail bucket
	s := h.Snapshot()

	if s.Count != 5 {
		t.Fatalf("count = %d, want 5 (exemplar observations must still count)", s.Count)
	}
	byBucket := map[int]string{2: "req-a", 10: "req-c", 16: "req-slow"}
	for i, ex := range s.Exemplars {
		want, expect := byBucket[i]
		switch {
		case expect && (ex == nil || ex.ID != want):
			t.Errorf("bucket %d exemplar = %v, want %q", i, ex, want)
		case !expect && ex != nil:
			t.Errorf("bucket %d has unexpected exemplar %v", i, ex)
		}
	}
	if ex := s.Exemplars[10]; ex != nil && (ex.LatencyUS != 900 || ex.TraceID != "trace-c") {
		t.Errorf("bucket 10 exemplar = %+v, want latency 900 trace trace-c", ex)
	}
	if ex := s.Exemplars[2]; ex != nil && ex.TraceID != "" {
		t.Errorf("bucket 2 exemplar trace = %q, want empty for untraced sample", ex.TraceID)
	}
}

func TestRequestIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request id %s", id)
		}
		seen[id] = true
	}
}
