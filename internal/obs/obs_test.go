package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 99 fast observations and 1 slow one: the old truncating estimator
	// reported p99 from the fast mass; the round-up rule must land on the
	// slow observation's bucket.
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(50 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if got := s.QuantileUS(0.50); got < 100 || got > 256 {
		t.Errorf("p50 = %dus, want the ~100us bucket bound", got)
	}
	p99 := s.QuantileUS(0.99)
	if p99 < 50_000 {
		t.Errorf("p99 = %dus, want >= 50ms (round-up must reach the slow observation)", p99)
	}
	// Quantile estimates are conservative: never below the true value's
	// bucket lower bound, here trivially monotone in p.
	if s.QuantileUS(1.0) < p99 {
		t.Errorf("p100 %d < p99 %d", s.QuantileUS(1.0), p99)
	}
	if s.SumUS != 99*100+50_000 {
		t.Errorf("sum = %dus", s.SumUS)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().QuantileUS(0.99); got != 0 {
		t.Errorf("empty p99 = %d, want 0", got)
	}
	h.Observe(1000 * time.Hour) // far past the last bound: overflow bucket
	s := h.Snapshot()
	if s.Counts[numBuckets-1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", s.Counts[numBuckets-1])
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const per = 1000
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8*per {
		t.Fatalf("count = %d, want %d", s.Count, 8*per)
	}
	var bucketSum int64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

func TestPromWriterFormat(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	h.Observe(70 * time.Millisecond)

	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("flos_queries_served_total", "Queries answered.", nil, 42)
	p.Counter("flos_outcomes_total", "Outcomes.", map[string]string{"outcome": "ok"}, 40)
	p.Counter("flos_outcomes_total", "Outcomes.", map[string]string{"outcome": "deadline"}, 2)
	p.Gauge("go_goroutines", "Goroutines.", nil, 12)
	p.Histogram("flos_query_latency_seconds", "Latency.", map[string]string{"measure": "php"}, h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP flos_queries_served_total Queries answered.",
		"# TYPE flos_queries_served_total counter",
		"flos_queries_served_total 42",
		`flos_outcomes_total{outcome="ok"} 40`,
		`flos_outcomes_total{outcome="deadline"} 2`,
		"# TYPE go_goroutines gauge",
		"# TYPE flos_query_latency_seconds histogram",
		`flos_query_latency_seconds_bucket{le="+Inf",measure="php"} 2`,
		`flos_query_latency_seconds_count{measure="php"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// HELP/TYPE headers appear exactly once per family.
	if n := strings.Count(out, "# TYPE flos_outcomes_total counter"); n != 1 {
		t.Errorf("TYPE header written %d times, want 1", n)
	}
	// Cumulative buckets: every _bucket line's value is non-decreasing.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "flos_query_latency_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparsable bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative: %q after %d", line, prev)
		}
		prev = v
	}
}

func TestRequestIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request id %s", id)
		}
		seen[id] = true
	}
}
