package obs

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// ProfilerConfig tunes a continuous Profiler.
type ProfilerConfig struct {
	// Dir is where profiles are written (created if missing). Required.
	Dir string
	// Interval is the capture cadence; 0 selects 60s.
	Interval time.Duration
	// CPUDuration is how long each CPU capture runs; 0 selects 10s, and it
	// is clamped to Interval/2 so captures never overlap.
	CPUDuration time.Duration
	// Keep bounds the retained files per profile kind; 0 selects 10.
	Keep int
	// SlowSince, when non-nil, reports whether a slow query completed at or
	// after the given time — capture windows that overlap one are tagged
	// with a "-slow" filename suffix so the offending profile is findable
	// without timestamps arithmetic. Wire it to FlightRecorder.SlowSince.
	SlowSince func(time.Time) bool
	// Logger receives capture/rotation records; nil keeps the profiler
	// silent.
	Logger *slog.Logger
}

func (c ProfilerConfig) withDefaults() ProfilerConfig {
	if c.Interval <= 0 {
		c.Interval = 60 * time.Second
	}
	if c.CPUDuration <= 0 {
		c.CPUDuration = 10 * time.Second
	}
	if c.CPUDuration > c.Interval/2 {
		c.CPUDuration = c.Interval / 2
	}
	if c.Keep <= 0 {
		c.Keep = 10
	}
	return c
}

// Profiler periodically captures CPU and heap pprof profiles into a
// directory with retention-bounded rotation — continuous profiling without
// an agent: when a p99 incident shows up in the slow-query log, the
// overlapping (and "-slow"-tagged) profile is already on disk.
type Profiler struct {
	cfg  ProfilerConfig
	done chan struct{}
	wg   sync.WaitGroup
	stop sync.Once
}

// StartProfiler validates cfg, creates the directory, and starts the
// capture goroutine. Call Stop to end it.
func StartProfiler(cfg ProfilerConfig) (*Profiler, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("obs: profiler needs a directory")
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: profiler dir: %w", err)
	}
	p := &Profiler{cfg: cfg, done: make(chan struct{})}
	p.wg.Add(1)
	go p.loop()
	return p, nil
}

// Stop ends the capture loop and waits for an in-flight capture to finish.
func (p *Profiler) Stop() {
	p.stop.Do(func() { close(p.done) })
	p.wg.Wait()
}

func (p *Profiler) loop() {
	defer p.wg.Done()
	tick := time.NewTicker(p.cfg.Interval)
	defer tick.Stop()
	// First capture immediately: a crash loop shorter than Interval should
	// still leave profiles behind.
	p.capture()
	for {
		select {
		case <-p.done:
			return
		case <-tick.C:
			p.capture()
		}
	}
}

// capture runs one CPU window and one heap snapshot, tags the files if a
// slow query overlapped the window, and rotates old files out.
func (p *Profiler) capture() {
	start := time.Now()
	stamp := start.UTC().Format("20060102T150405.000")

	cpuPath := filepath.Join(p.cfg.Dir, "cpu-"+stamp+".pprof")
	cpuOK := p.captureCPU(cpuPath)

	heapPath := filepath.Join(p.cfg.Dir, "heap-"+stamp+".pprof")
	heapOK := p.captureHeap(heapPath)

	if p.cfg.SlowSince != nil && p.cfg.SlowSince(start) {
		if cpuOK {
			cpuPath = tagSlow(cpuPath)
		}
		if heapOK {
			heapPath = tagSlow(heapPath)
		}
		p.logInfo("profile window overlaps slow query", "cpu", cpuPath, "heap", heapPath)
	}
	p.rotate("cpu-")
	p.rotate("heap-")
}

func (p *Profiler) captureCPU(path string) bool {
	f, err := os.Create(path)
	if err != nil {
		p.logWarn("cpu profile create failed", "err", err)
		return false
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another CPU profile is running (e.g. an operator hit the pprof
		// HTTP endpoint); skip this window rather than fight over it.
		p.logWarn("cpu profile start failed", "err", err)
		os.Remove(path)
		return false
	}
	select {
	case <-time.After(p.cfg.CPUDuration):
	case <-p.done:
	}
	pprof.StopCPUProfile()
	return true
}

func (p *Profiler) captureHeap(path string) bool {
	f, err := os.Create(path)
	if err != nil {
		p.logWarn("heap profile create failed", "err", err)
		return false
	}
	defer f.Close()
	runtime.GC() // settle the live heap so snapshots are comparable
	if err := pprof.WriteHeapProfile(f); err != nil {
		p.logWarn("heap profile write failed", "err", err)
		os.Remove(path)
		return false
	}
	return true
}

// tagSlow renames base.pprof to base-slow.pprof, returning the final path.
func tagSlow(path string) string {
	tagged := strings.TrimSuffix(path, ".pprof") + "-slow.pprof"
	if err := os.Rename(path, tagged); err != nil {
		return path
	}
	return tagged
}

// rotate deletes the oldest files of one kind beyond the retention bound.
// Timestamped names sort chronologically, so lexical order is age order.
func (p *Profiler) rotate(prefix string) {
	entries, err := os.ReadDir(p.cfg.Dir)
	if err != nil {
		p.logWarn("profile rotation scan failed", "err", err)
		return
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), prefix) && strings.HasSuffix(e.Name(), ".pprof") {
			names = append(names, e.Name())
		}
	}
	if len(names) <= p.cfg.Keep {
		return
	}
	sort.Strings(names)
	for _, name := range names[:len(names)-p.cfg.Keep] {
		if err := os.Remove(filepath.Join(p.cfg.Dir, name)); err != nil {
			p.logWarn("profile rotation remove failed", "file", name, "err", err)
		}
	}
}

func (p *Profiler) logInfo(msg string, args ...any) {
	if p.cfg.Logger != nil {
		p.cfg.Logger.Info(msg, args...)
	}
}

func (p *Profiler) logWarn(msg string, args ...any) {
	if p.cfg.Logger != nil {
		p.cfg.Logger.Warn(msg, args...)
	}
}
