package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func listProfiles(t *testing.T, dir, prefix string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), prefix) {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestProfilerCapturesAndRotates(t *testing.T) {
	dir := t.TempDir()
	p, err := StartProfiler(ProfilerConfig{
		Dir:         dir,
		Interval:    50 * time.Millisecond,
		CPUDuration: 10 * time.Millisecond,
		Keep:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let several capture cycles run so rotation has something to delete.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(listProfiles(t, dir, "cpu-")) > 0 && len(listProfiles(t, dir, "heap-")) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	p.Stop()

	cpus := listProfiles(t, dir, "cpu-")
	heaps := listProfiles(t, dir, "heap-")
	if len(cpus) == 0 || len(heaps) == 0 {
		t.Fatalf("no profiles captured: cpu=%v heap=%v", cpus, heaps)
	}
	if len(cpus) > 2 || len(heaps) > 2 {
		t.Fatalf("rotation exceeded Keep=2: cpu=%v heap=%v", cpus, heaps)
	}
	// Profiles are non-empty files.
	for _, name := range append(cpus, heaps...) {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", name)
		}
	}
}

func TestProfilerTagsSlowWindows(t *testing.T) {
	dir := t.TempDir()
	p, err := StartProfiler(ProfilerConfig{
		Dir:         dir,
		Interval:    40 * time.Millisecond,
		CPUDuration: 5 * time.Millisecond,
		Keep:        50,
		SlowSince:   func(time.Time) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(listProfiles(t, dir, "heap-")) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	p.Stop()

	var tagged bool
	for _, name := range listProfiles(t, dir, "heap-") {
		if strings.Contains(name, "-slow.pprof") {
			tagged = true
		}
	}
	if !tagged {
		t.Fatalf("no heap profile tagged -slow: %v", listProfiles(t, dir, "heap-"))
	}
}

func TestProfilerRequiresDir(t *testing.T) {
	if _, err := StartProfiler(ProfilerConfig{}); err == nil {
		t.Fatal("StartProfiler without Dir succeeded")
	}
}
