package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromWriter emits metrics in the Prometheus text exposition format
// (version 0.0.4). It tracks which metric names already received their
// HELP/TYPE header so a metric family can be written label-set by label-set
// in any order.
type PromWriter struct {
	w      io.Writer
	headed map[string]bool
	err    error
}

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// NewPromWriter wraps w. Write errors are sticky; check Err once at the end.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, headed: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...interface{}) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// head writes the HELP/TYPE comment pair once per metric family.
func (p *PromWriter) head(name, help, typ string) {
	if p.headed[name] {
		return
	}
	p.headed[name] = true
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// labelString renders a label map as {k="v",...} with deterministic order;
// empty maps render as the empty string.
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels returns base plus one extra pair without mutating base.
func mergeLabels(base map[string]string, k, v string) map[string]string {
	out := make(map[string]string, len(base)+1)
	for bk, bv := range base {
		out[bk] = bv
	}
	out[k] = v
	return out
}

// Counter writes one counter sample.
func (p *PromWriter) Counter(name, help string, labels map[string]string, v int64) {
	p.head(name, help, "counter")
	p.printf("%s%s %d\n", name, labelString(labels), v)
}

// Gauge writes one gauge sample.
func (p *PromWriter) Gauge(name, help string, labels map[string]string, v float64) {
	p.head(name, help, "gauge")
	p.printf("%s%s %g\n", name, labelString(labels), v)
}

// Histogram writes one histogram series (cumulative _bucket samples with an
// explicit +Inf, then _sum and _count) from a Snapshot. Bucket bounds are
// exposed in seconds, the Prometheus base unit for time.
func (p *PromWriter) Histogram(name, help string, labels map[string]string, s Snapshot) {
	p.head(name, help, "histogram")
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if i == numBuckets-1 {
			break // the overflow bucket is the +Inf sample below
		}
		le := fmt.Sprintf("%g", float64(bucketBound(i))/1e6)
		p.printf("%s_bucket%s %d\n", name, labelString(mergeLabels(labels, "le", le)), cum)
	}
	p.printf("%s_bucket%s %d\n", name, labelString(mergeLabels(labels, "le", "+Inf")), s.Count)
	p.printf("%s_sum%s %g\n", name, labelString(labels), float64(s.SumUS)/1e6)
	p.printf("%s_count%s %d\n", name, labelString(labels), s.Count)
}
