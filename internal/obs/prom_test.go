package obs

import (
	"strings"
	"testing"
	"time"
)

// TestPromLabelEscaping pins the text-exposition escaping rules for label
// values: backslash, double-quote, and newline must be escaped; everything
// else passes through verbatim. The writer leans on Go's %q, whose escapes
// for these three bytes coincide with the Prometheus rules — this test is
// the contract that keeps that coincidence load-bearing.
func TestPromLabelEscaping(t *testing.T) {
	cases := []struct {
		name  string
		value string
		want  string // the rendered label assignment
	}{
		{"plain", "php", `m="php"`},
		{"empty", "", `m=""`},
		{"backslash", `a\b`, `m="a\\b"`},
		{"quote", `say "hi"`, `m="say \"hi\""`},
		{"newline", "line1\nline2", `m="line1\nline2"`},
		{"all-three", "\\\"\n", `m="\\\"\n"`},
		{"utf8", "héllo→world", `m="héllo→world"`},
		{"spaces-and-braces", `{le="+Inf"} `, `m="{le=\"+Inf\"} "`},
	}
	for _, tc := range cases {
		var b strings.Builder
		p := NewPromWriter(&b)
		p.Counter("flos_test_total", "help", map[string]string{"m": tc.value}, 1)
		if err := p.Err(); err != nil {
			t.Fatalf("%s: write error: %v", tc.name, err)
		}
		out := b.String()
		want := "flos_test_total{" + tc.want + "} 1\n"
		if !strings.Contains(out, want) {
			t.Errorf("%s: output %q missing %q", tc.name, out, want)
		}
	}
}

// TestPromLabelEscapingTabAndCR documents that tab and carriage-return are
// rendered as %q escapes too — stricter than Prometheus requires, but
// lossless and parseable by its escape grammar (\t and \r are not in the
// 0.0.4 grammar, so values containing them should be rare; the writer must
// at minimum never emit a raw newline or unbalanced quote).
func TestPromLabelEscapingNeverRaw(t *testing.T) {
	hostile := "a\nb\"c\\d\re\tf"
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Gauge("flos_test", "help", map[string]string{"v": hostile}, 1)
	out := b.String()
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		// The sample line must balance its unescaped quotes: scanning
		// left to right, quotes not preceded by an odd backslash run
		// must pair up.
		unescaped := 0
		for i := 0; i < len(line); i++ {
			if line[i] != '"' {
				continue
			}
			bs := 0
			for j := i - 1; j >= 0 && line[j] == '\\'; j-- {
				bs++
			}
			if bs%2 == 0 {
				unescaped++
			}
		}
		if unescaped != 2 {
			t.Fatalf("sample line %q has %d unescaped quotes, want 2", line, unescaped)
		}
		if strings.ContainsAny(line, "\r") {
			t.Fatalf("sample line %q contains a raw carriage return", line)
		}
	}
	if strings.Count(out, "\n") != 3 { // HELP + TYPE + one sample
		t.Fatalf("output %q: raw newline leaked into a label value", out)
	}
}

// TestPromLabelOrderDeterministic verifies label maps render sorted by key,
// so scrapes are diffable and series identity is stable.
func TestPromLabelOrderDeterministic(t *testing.T) {
	labels := map[string]string{"zeta": "1", "alpha": "2", "mid": "3"}
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("flos_test_total", "help", labels, 7)
	want := `flos_test_total{alpha="2",mid="3",zeta="1"} 7`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("output %q missing sorted label set %q", b.String(), want)
	}
}

// TestPromHeadOncePerFamily verifies HELP/TYPE are emitted once even when a
// family is written label-set by label-set.
func TestPromHeadOncePerFamily(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("flos_multi_total", "help", map[string]string{"m": "a"}, 1)
	p.Counter("flos_multi_total", "help", map[string]string{"m": "b"}, 2)
	out := b.String()
	if strings.Count(out, "# HELP flos_multi_total") != 1 || strings.Count(out, "# TYPE flos_multi_total") != 1 {
		t.Fatalf("HELP/TYPE not deduped:\n%s", out)
	}
}

// TestPromHistogramEscapedLabels runs the histogram writer with a hostile
// label value and checks the le= merge keeps escaping intact on every
// bucket line.
func TestPromHistogramEscapedLabels(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Microsecond)
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Histogram("flos_lat", "help", map[string]string{"m": `php"x`}, h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `m="php\"x"`) {
		t.Fatalf("histogram lost label escaping:\n%s", out)
	}
	if !strings.Contains(out, `le="+Inf"`) {
		t.Fatalf("histogram missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "flos_lat_sum") || !strings.Contains(out, "flos_lat_count") {
		t.Fatalf("histogram missing _sum/_count:\n%s", out)
	}
}
