package obs

import (
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"
)

// reqSeq is the process-wide request sequence number.
var reqSeq atomic.Uint64

// reqEpoch distinguishes processes: request IDs embed the start-time epoch
// so IDs from a restarted server don't collide in aggregated logs.
var reqEpoch = uint32(time.Now().Unix())

// NewRequestID returns a short unique request identifier, e.g.
// "66b2f0a1-000003". It is cheap (one atomic add) and collision-free within
// a process.
func NewRequestID() string {
	return fmt.Sprintf("%08x-%06x", reqEpoch, reqSeq.Add(1))
}

// ParseLogLevel maps a -log-level flag value onto a slog.Level; unknown
// strings default to Info.
func ParseLogLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}
