package obs

import (
	"log/slog"
	"strings"
	"sync"
	"testing"
)

// TestNewRequestIDFormat pins the documented shape: epoch-hex, dash,
// counter-hex, all lowercase.
func TestNewRequestIDFormat(t *testing.T) {
	id := NewRequestID()
	if len(id) != 15 {
		t.Fatalf("NewRequestID() = %q: len %d, want 15 (8 hex + dash + 6 hex)", id, len(id))
	}
	parts := strings.Split(id, "-")
	if len(parts) != 2 || len(parts[0]) != 8 || len(parts[1]) != 6 {
		t.Fatalf("NewRequestID() = %q: want <8 hex>-<6 hex>", id)
	}
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			if c := p[i]; !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
				t.Fatalf("NewRequestID() = %q: non-lowercase-hex byte %q", id, c)
			}
		}
	}
}

// TestNewRequestIDMonotonicPrefix verifies every ID from one process shares
// the epoch prefix — the property that makes IDs from a restarted server
// distinguishable in aggregated logs.
func TestNewRequestIDMonotonicPrefix(t *testing.T) {
	prefix := strings.SplitN(NewRequestID(), "-", 2)[0]
	for i := 0; i < 100; i++ {
		if got := strings.SplitN(NewRequestID(), "-", 2)[0]; got != prefix {
			t.Fatalf("epoch prefix changed mid-process: %q vs %q", got, prefix)
		}
	}
}

// TestNewRequestIDConcurrentUnique hammers the generator from many
// goroutines and checks no ID repeats — the atomic counter must not tear.
func TestNewRequestIDConcurrentUnique(t *testing.T) {
	const workers, perWorker = 16, 2000
	var mu sync.Mutex
	seen := make(map[string]bool, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]string, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				local = append(local, NewRequestID())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate request ID %q under concurrency", id)
					return
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*perWorker {
		t.Fatalf("got %d unique IDs, want %d", len(seen), workers*perWorker)
	}
}

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug":   slog.LevelDebug,
		"warn":    slog.LevelWarn,
		"warning": slog.LevelWarn,
		"error":   slog.LevelError,
		"info":    slog.LevelInfo,
		"":        slog.LevelInfo,
		"verbose": slog.LevelInfo, // unknown → Info
		"DEBUG":   slog.LevelInfo, // case-sensitive by design
	}
	for in, want := range cases {
		if got := ParseLogLevel(in); got != want {
			t.Errorf("ParseLogLevel(%q) = %v, want %v", in, got, want)
		}
	}
}
