package obs

import (
	"sync"
	"time"
)

// sloBucketSec is the SLO ring granularity; sloBuckets spans one hour.
const (
	sloBucketSec = 10
	sloBuckets   = 3600 / sloBucketSec
)

// sloWindows are the reporting windows, in buckets. Multi-window burn rates
// are the standard paging recipe: the short window catches fast burns, the
// long window filters noise.
var sloWindows = []struct {
	name    string
	buckets int64
}{
	{"5m", 5 * 60 / sloBucketSec},
	{"1h", sloBuckets},
}

// SLOConfig declares the service objectives. The zero value selects
// 99.9% availability and 99% of successful queries under 100ms.
type SLOConfig struct {
	// AvailabilityObjective is the target fraction of non-error outcomes,
	// e.g. 0.999; 0 selects 0.999.
	AvailabilityObjective float64
	// LatencyObjective is the target fraction of successful queries at or
	// under LatencyThreshold, e.g. 0.99; 0 selects 0.99.
	LatencyObjective float64
	// LatencyThreshold is the latency SLO boundary; 0 selects 100ms.
	LatencyThreshold time.Duration
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.AvailabilityObjective <= 0 || c.AvailabilityObjective >= 1 {
		c.AvailabilityObjective = 0.999
	}
	if c.LatencyObjective <= 0 || c.LatencyObjective >= 1 {
		c.LatencyObjective = 0.99
	}
	if c.LatencyThreshold <= 0 {
		c.LatencyThreshold = 100 * time.Millisecond
	}
	return c
}

// sloBucket is one 10-second accounting slot. stamp is the absolute bucket
// number (unix seconds / sloBucketSec); a mismatched stamp means the slot
// is stale and is reset before reuse, so the ring needs no sweeper.
type sloBucket struct {
	stamp             int64
	total, errs, slow int64
}

// SLOTracker accounts query outcomes into a rolling ring of 10-second
// buckets and reports availability, latency compliance, and burn rates over
// 5-minute and 1-hour windows. Record takes one short mutexed increment;
// Snapshot walks the ring (rare, scrape-time only).
type SLOTracker struct {
	cfg SLOConfig

	mu      sync.Mutex
	buckets [sloBuckets]sloBucket

	// now is the clock, swappable in tests.
	now func() time.Time
}

// NewSLOTracker builds a tracker with cfg (zero value = defaults).
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	return &SLOTracker{cfg: cfg.withDefaults(), now: time.Now}
}

// Config returns the tracker's resolved objectives.
func (t *SLOTracker) Config() SLOConfig { return t.cfg }

// Record accounts one query outcome: ok=false is an availability error;
// ok=true additionally checks latency against the threshold. Cancellations
// initiated by the client belong in neither bucket — don't Record them.
func (t *SLOTracker) Record(latency time.Duration, ok bool) {
	stamp := t.now().Unix() / sloBucketSec
	b := &t.buckets[stamp%sloBuckets]
	t.mu.Lock()
	if b.stamp != stamp {
		*b = sloBucket{stamp: stamp}
	}
	b.total++
	if !ok {
		b.errs++
	} else if latency > t.cfg.LatencyThreshold {
		b.slow++
	}
	t.mu.Unlock()
}

// SLOWindow is one reporting window's accounting.
type SLOWindow struct {
	// Window names the span ("5m", "1h").
	Window string `json:"window"`
	// Total/Errors/Slow are the raw event counts in the window.
	Total  int64 `json:"total"`
	Errors int64 `json:"errors"`
	Slow   int64 `json:"slow"`
	// Availability is 1 − Errors/Total (1 when idle); LatencyCompliance is
	// the fraction of successful queries at or under the threshold.
	Availability      float64 `json:"availability"`
	LatencyCompliance float64 `json:"latency_compliance"`
	// AvailabilityBurnRate and LatencyBurnRate are the observed error rates
	// divided by the respective error budgets (1 − objective): 1.0 burns
	// the budget exactly at the sustainable rate, higher burns it faster —
	// e.g. 14.4 on the 5m window exhausts a 30-day budget in ~2 days, the
	// classic page-now threshold.
	AvailabilityBurnRate float64 `json:"availability_burn_rate"`
	LatencyBurnRate      float64 `json:"latency_burn_rate"`
}

// SLOSnapshot is the tracker's point-in-time summary.
type SLOSnapshot struct {
	AvailabilityObjective float64     `json:"availability_objective"`
	LatencyObjective      float64     `json:"latency_objective"`
	LatencyThresholdUS    int64       `json:"latency_threshold_us"`
	Windows               []SLOWindow `json:"windows"`
}

// Snapshot sums the live buckets of each window.
func (t *SLOTracker) Snapshot() SLOSnapshot {
	nowStamp := t.now().Unix() / sloBucketSec
	out := SLOSnapshot{
		AvailabilityObjective: t.cfg.AvailabilityObjective,
		LatencyObjective:      t.cfg.LatencyObjective,
		LatencyThresholdUS:    t.cfg.LatencyThreshold.Microseconds(),
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, w := range sloWindows {
		var win SLOWindow
		win.Window = w.name
		oldest := nowStamp - w.buckets + 1
		for i := range t.buckets {
			b := &t.buckets[i]
			if b.stamp >= oldest && b.stamp <= nowStamp {
				win.Total += b.total
				win.Errors += b.errs
				win.Slow += b.slow
			}
		}
		win.Availability, win.AvailabilityBurnRate =
			compliance(win.Total, win.Errors, t.cfg.AvailabilityObjective)
		win.LatencyCompliance, win.LatencyBurnRate =
			compliance(win.Total-win.Errors, win.Slow, t.cfg.LatencyObjective)
		out.Windows = append(out.Windows, win)
	}
	return out
}

// compliance returns the good fraction and the burn rate (bad-rate divided
// by the error budget) for bad events out of total. An idle window is fully
// compliant and burns nothing.
func compliance(total, bad int64, objective float64) (good, burn float64) {
	if total <= 0 {
		return 1, 0
	}
	badRate := float64(bad) / float64(total)
	return 1 - badRate, badRate / (1 - objective)
}
