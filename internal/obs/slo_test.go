package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock steps a SLOTracker deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestTracker(cfg SLOConfig) (*SLOTracker, *fakeClock) {
	tr := NewSLOTracker(cfg)
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	tr.now = clk.now
	return tr, clk
}

func window(t *testing.T, s SLOSnapshot, name string) SLOWindow {
	t.Helper()
	for _, w := range s.Windows {
		if w.Window == name {
			return w
		}
	}
	t.Fatalf("no %q window in %+v", name, s)
	return SLOWindow{}
}

func TestSLOTrackerIdleIsCompliant(t *testing.T) {
	tr, _ := newTestTracker(SLOConfig{})
	s := tr.Snapshot()
	if len(s.Windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(s.Windows))
	}
	for _, w := range s.Windows {
		if w.Availability != 1 || w.AvailabilityBurnRate != 0 || w.LatencyCompliance != 1 || w.LatencyBurnRate != 0 {
			t.Errorf("idle window %s not fully compliant: %+v", w.Window, w)
		}
	}
	if s.AvailabilityObjective != 0.999 || s.LatencyObjective != 0.99 || s.LatencyThresholdUS != 100_000 {
		t.Errorf("defaults not applied: %+v", s)
	}
}

func TestSLOTrackerBurnRates(t *testing.T) {
	tr, clk := newTestTracker(SLOConfig{
		AvailabilityObjective: 0.99, // error budget 1%
		LatencyObjective:      0.90, // latency budget 10%
		LatencyThreshold:      50 * time.Millisecond,
	})
	// 100 events: 2 errors, 98 ok of which 49 over the latency threshold.
	for i := 0; i < 2; i++ {
		tr.Record(0, false)
	}
	for i := 0; i < 49; i++ {
		tr.Record(time.Millisecond, true)
	}
	for i := 0; i < 49; i++ {
		tr.Record(time.Second, true)
	}

	s := tr.Snapshot()
	for _, name := range []string{"5m", "1h"} {
		w := window(t, s, name)
		if w.Total != 100 || w.Errors != 2 || w.Slow != 49 {
			t.Fatalf("%s counts = %d/%d/%d, want 100/2/49", name, w.Total, w.Errors, w.Slow)
		}
		if math.Abs(w.Availability-0.98) > 1e-12 {
			t.Errorf("%s availability = %g, want 0.98", name, w.Availability)
		}
		// 2% error rate against a 1% budget burns at 2x.
		if math.Abs(w.AvailabilityBurnRate-2.0) > 1e-12 {
			t.Errorf("%s availability burn = %g, want 2.0", name, w.AvailabilityBurnRate)
		}
		// 49 slow of 98 successes = 50% against a 10% budget: burn 5x.
		if math.Abs(w.LatencyCompliance-0.5) > 1e-12 {
			t.Errorf("%s latency compliance = %g, want 0.5", name, w.LatencyCompliance)
		}
		if math.Abs(w.LatencyBurnRate-5.0) > 1e-12 {
			t.Errorf("%s latency burn = %g, want 5.0", name, w.LatencyBurnRate)
		}
	}

	// 6 minutes later the events left the 5m window but not the 1h one.
	clk.advance(6 * time.Minute)
	s = tr.Snapshot()
	if w := window(t, s, "5m"); w.Total != 0 || w.AvailabilityBurnRate != 0 {
		t.Errorf("5m window did not roll off: %+v", w)
	}
	if w := window(t, s, "1h"); w.Total != 100 {
		t.Errorf("1h window lost events: %+v", w)
	}

	// 61 minutes later everything has aged out, including via bucket reuse.
	clk.advance(61 * time.Minute)
	tr.Record(time.Millisecond, true)
	s = tr.Snapshot()
	if w := window(t, s, "1h"); w.Total != 1 || w.Errors != 0 {
		t.Errorf("1h window after expiry = %+v, want exactly the fresh event", w)
	}
}

func TestSLOTrackerStaleBucketReuse(t *testing.T) {
	tr, clk := newTestTracker(SLOConfig{})
	tr.Record(0, false)
	// Exactly one ring revolution later the same slot is reused; the stale
	// error must not leak into the new hour.
	clk.advance(time.Duration(sloBuckets*sloBucketSec) * time.Second)
	tr.Record(time.Millisecond, true)
	w := window(t, tr.Snapshot(), "1h")
	if w.Total != 1 || w.Errors != 0 {
		t.Fatalf("reused bucket kept stale counts: %+v", w)
	}
}

func TestSLOTrackerConcurrent(t *testing.T) {
	tr, _ := newTestTracker(SLOConfig{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tr.Record(time.Millisecond, j%10 != 0)
			}
		}()
	}
	wg.Wait()
	w := window(t, tr.Snapshot(), "1h")
	if w.Total != 8000 || w.Errors != 800 {
		t.Fatalf("concurrent counts = %d/%d, want 8000/800", w.Total, w.Errors)
	}
}
