package trace

import "context"

// ctxKey carries the (Active, current span) pair; one key, one allocation
// per span boundary, no map lookups beyond context's own.
type ctxKey struct{}

type ctxVal struct {
	a    *Active
	span SpanID
}

// NewContext returns ctx carrying the trace with span as the current parent.
// A nil Active returns ctx unchanged, so disabled tracing adds no context
// layers.
func NewContext(ctx context.Context, a *Active, span SpanID) context.Context {
	if a == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{a: a, span: span})
}

// FromContext extracts the trace and current span (nil/zero when the request
// is untraced).
func FromContext(ctx context.Context) (*Active, SpanID) {
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.a, v.span
	}
	return nil, SpanID{}
}

// StartSpan opens a child of ctx's current span and returns a context in
// which the new span is current. Untraced contexts come back unchanged with
// a nil handle — every SpanHandle method is nil-safe, so callers never
// branch on tracing being on.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *SpanHandle) {
	a, parent := FromContext(ctx)
	if a == nil {
		return ctx, nil
	}
	h := a.StartSpan(parent, name, attrs...)
	return NewContext(ctx, a, h.ID()), h
}
