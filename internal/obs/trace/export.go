package trace

import (
	"encoding/json"
	"io"
	"os"
	"strconv"
	"sync"
)

// FileExporter appends kept traces to a file as OTLP/JSON-shaped objects,
// one per line: each line is an ExportTraceServiceRequest body
// (resourceSpans → scopeSpans → spans, camelCase fields, nanosecond
// timestamps as decimal strings, typed attribute values), so standard
// OpenTelemetry tooling can ingest the stream without this package taking
// the dependency. Export serializes under a mutex — it runs on the request
// tail, once per *kept* trace, not per span.
type FileExporter struct {
	mu      sync.Mutex
	w       io.WriteCloser
	service string
}

// NewFileExporter opens (appending) the export file. service names the OTLP
// resource ("flos" when empty).
func NewFileExporter(path, service string) (*FileExporter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if service == "" {
		service = "flos"
	}
	return &FileExporter{w: f, service: service}, nil
}

// Close flushes nothing (writes are line-buffered by the OS) and closes the
// underlying file.
func (e *FileExporter) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.w.Close()
}

// Export writes one trace as one OTLP/JSON line. Errors are swallowed:
// tracing must never fail a request.
func (e *FileExporter) Export(tr *Trace) {
	line, err := json.Marshal(otlpRequest(tr, e.service))
	if err != nil {
		return
	}
	line = append(line, '\n')
	e.mu.Lock()
	e.w.Write(line)
	e.mu.Unlock()
}

// --- OTLP/JSON shapes (the subset trace export needs) ---

type otlpAnyValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"` // OTLP/JSON encodes int64 as string
	DoubleValue *float64 `json:"doubleValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
}

type otlpKeyValue struct {
	Key   string       `json:"key"`
	Value otlpAnyValue `json:"value"`
}

type otlpStatus struct {
	Code    int    `json:"code"` // 0 unset, 1 ok, 2 error
	Message string `json:"message,omitempty"`
}

type otlpSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind"` // 1 internal, 2 server
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []otlpKeyValue `json:"attributes,omitempty"`
	Status            otlpStatus     `json:"status"`
}

type otlpScopeSpans struct {
	Scope struct {
		Name string `json:"name"`
	} `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpResourceSpans struct {
	Resource struct {
		Attributes []otlpKeyValue `json:"attributes"`
	} `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpExport struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

func otlpAttr(a Attr) otlpKeyValue {
	kv := otlpKeyValue{Key: a.Key}
	switch a.Type {
	case "int":
		s := strconv.FormatInt(a.Int, 10)
		kv.Value.IntValue = &s
	case "float":
		v := a.Float
		kv.Value.DoubleValue = &v
	case "bool":
		b := a.Bool
		kv.Value.BoolValue = &b
	default:
		s := a.Str
		kv.Value.StringValue = &s
	}
	return kv
}

func otlpRequest(tr *Trace, service string) otlpExport {
	spans := make([]otlpSpan, 0, len(tr.Spans))
	for _, s := range tr.Spans {
		kind := 1
		if s.Kind == "server" {
			kind = 2
		}
		status := otlpStatus{Code: 1}
		if s.Error != "" {
			status = otlpStatus{Code: 2, Message: s.Error}
		}
		spans = append(spans, otlpSpan{
			TraceID:           tr.TraceID,
			SpanID:            s.ID,
			ParentSpanID:      s.Parent,
			Name:              s.Name,
			Kind:              kind,
			StartTimeUnixNano: strconv.FormatInt(s.StartUnixNano, 10),
			EndTimeUnixNano:   strconv.FormatInt(s.StartUnixNano+s.DurationNS, 10),
			Attributes:        append(toOTLPAttrs(s.Attrs), otlpAttr(Str("flos.sampled", tr.Sampled))),
			Status:            status,
		})
	}
	var rs otlpResourceSpans
	rs.Resource.Attributes = []otlpKeyValue{otlpAttr(Str("service.name", service))}
	ss := otlpScopeSpans{Spans: spans}
	ss.Scope.Name = "flos/internal/obs/trace"
	rs.ScopeSpans = []otlpScopeSpans{ss}
	return otlpExport{ResourceSpans: []otlpResourceSpans{rs}}
}

func toOTLPAttrs(attrs []Attr) []otlpKeyValue {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]otlpKeyValue, 0, len(attrs)+1)
	for _, a := range attrs {
		out = append(out, otlpAttr(a))
	}
	return out
}
