// Package trace is the stdlib-only distributed-tracing layer of the serving
// stack: explicit parent-child spans with monotonic timestamps and typed
// attributes, W3C traceparent propagation at the process boundary, and a
// head-sampled / tail-promoted retention policy over a lock-free ring of
// completed traces.
//
// The design follows the paper's cost model: a FLoS query is a short, bounded
// local search, so capturing every span of every request is cheap — the
// expensive part of tracing is *retention*, not recording. Every request
// therefore records its full span set into a per-request Active buffer, and
// the keep/drop decision is deferred to the end of the request (tail-based
// sampling): head-sampled traces are kept by a deterministic hash of the
// trace ID, and any trace that ends slow, shed, deadline-exceeded, or failed
// is promoted regardless of the head decision. "The p99 request" is thus
// always reconstructible as a span tree, even at a 0% head rate.
//
// Trace IDs are the join key across the rest of the observability plane:
// histogram exemplars, flight-recorder and slow-query-log records, and access
// logs all carry them.
//
// Nothing here imports outside the standard library; the OTLP-shaped JSON
// file exporter (export.go) keeps offline tooling compatible with the
// OpenTelemetry ecosystem without taking the dependency.
package trace

import (
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ID is a 16-byte W3C trace ID (32 lowercase hex on the wire).
type ID [16]byte

// SpanID is an 8-byte W3C span/parent ID (16 lowercase hex on the wire).
type SpanID [8]byte

// IsZero reports the invalid all-zero trace ID.
func (id ID) IsZero() bool { return id == ID{} }

// String returns the 32-char lowercase hex form.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports the invalid all-zero span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 16-char lowercase hex form ("" for the zero ID, which
// marks a root span in serialized output).
func (s SpanID) String() string {
	if s.IsZero() {
		return ""
	}
	return hex.EncodeToString(s[:])
}

// ParseID parses a 32-char lowercase hex trace ID; the all-zero ID is
// rejected per the W3C spec.
func ParseID(s string) (ID, error) {
	var id ID
	if len(s) != 32 {
		return id, fmt.Errorf("trace: trace-id %q: want 32 hex chars, got %d", s, len(s))
	}
	if err := parseLowerHex(id[:], s); err != nil {
		return ID{}, fmt.Errorf("trace: trace-id %q: %v", s, err)
	}
	if id.IsZero() {
		return ID{}, fmt.Errorf("trace: trace-id %q is all-zero", s)
	}
	return id, nil
}

// parseSpanID parses a 16-char lowercase hex span ID, rejecting all-zero.
func parseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 16 {
		return id, fmt.Errorf("trace: parent-id %q: want 16 hex chars, got %d", s, len(s))
	}
	if err := parseLowerHex(id[:], s); err != nil {
		return SpanID{}, fmt.Errorf("trace: parent-id %q: %v", s, err)
	}
	if id.IsZero() {
		return SpanID{}, fmt.Errorf("trace: parent-id %q is all-zero", s)
	}
	return id, nil
}

// parseLowerHex decodes s into dst, rejecting uppercase digits — the W3C
// header is defined over lowercase hex only, and encoding/hex would silently
// accept the uppercase forms.
func parseLowerHex(dst []byte, s string) error {
	for i := 0; i < len(s); i++ {
		if c := s[i]; !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return fmt.Errorf("non-lowercase-hex byte %q", c)
		}
	}
	_, err := hex.Decode(dst, []byte(s))
	return err
}

// idSeq and idSeed drive the process-local ID generator: a splitmix64 stream
// over an atomic counter, seeded from the process start time. One atomic add
// per ID, no locks, uniform bit distribution (which the head sampler's
// threshold test relies on), and no collisions within a process.
var (
	idSeq  atomic.Uint64
	idSeed = uint64(time.Now().UnixNano())
)

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewID mints a fresh pseudorandom trace ID.
func NewID() ID {
	n := idSeq.Add(1)
	hi, lo := splitmix64(idSeed+2*n), splitmix64(idSeed+2*n+1)
	var id ID
	putU64(id[0:8], hi)
	putU64(id[8:16], lo)
	if id.IsZero() { // astronomically unlikely, but the zero ID is invalid
		id[15] = 1
	}
	return id
}

// NewSpanID mints a fresh pseudorandom span ID.
func NewSpanID() SpanID {
	n := idSeq.Add(1)
	var id SpanID
	putU64(id[:], splitmix64(idSeed^0xa5a5a5a5a5a5a5a5+n))
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// Attr is one typed span attribute. Exactly the field named by Type carries
// the value; the constructors below keep the pairing correct.
type Attr struct {
	Key  string `json:"key"`
	Type string `json:"type"` // "string" | "int" | "float" | "bool"

	Str   string  `json:"str,omitempty"`
	Int   int64   `json:"int,omitempty"`
	Float float64 `json:"float,omitempty"`
	Bool  bool    `json:"bool,omitempty"`
}

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Type: "string", Str: v} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Type: "int", Int: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, Type: "float", Float: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, Type: "bool", Bool: v} }

// Span is one completed span. Timestamps are split the way Go's clock is:
// StartUnixNano is wall time (for cross-process alignment), DurationNS is
// monotonic (End−Start on the monotonic clock, immune to wall clock steps).
type Span struct {
	ID     string `json:"span_id"`
	Parent string `json:"parent_span_id,omitempty"`
	Name   string `json:"name"`
	// Kind is "server" for boundary spans, "internal" otherwise.
	Kind          string `json:"kind,omitempty"`
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationNS    int64  `json:"duration_ns"`
	Attrs         []Attr `json:"attrs,omitempty"`
	// Error is non-empty when the span ended in failure.
	Error string `json:"error,omitempty"`
}

// Trace is one retained request: its full span set plus the retention
// verdict. Immutable once published to the ring.
type Trace struct {
	TraceID string `json:"trace_id"`
	// Root is the boundary span's name ("GET /topk").
	Root string `json:"root"`
	// Status is the request outcome the boundary reported ("ok", "shed",
	// "deadline", "failed", ...).
	Status string `json:"status"`
	// Sampled records why the trace was kept: "head" for the hash decision,
	// "tail:<reason>" for promotions (slow, shed, deadline, failed, or a
	// reason a lower layer forced with Active.Promote).
	Sampled       string `json:"sampled"`
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationUS    int64  `json:"duration_us"`
	Spans         []Span `json:"spans"`
}

// Config tunes a Tracer. The zero value keeps every trace and retains 256.
type Config struct {
	// HeadRate is the fraction of traces kept by the head sampler, decided
	// deterministically from the trace ID so every process in a request's
	// path reaches the same verdict. 0 keeps none (tail promotion still
	// applies); values >= 1 keep all. Negative is treated as 0.
	HeadRate float64
	// Ring bounds the completed-trace ring; 0 selects 256.
	Ring int
	// SlowLatency tail-promotes any trace whose end-to-end latency reaches
	// it — by convention the same threshold the slow-query log uses, so the
	// two planes promote the same requests. 0 selects 250ms; negative
	// disables latency promotion.
	SlowLatency time.Duration
	// Exporter, when non-nil, receives every kept trace (see FileExporter).
	Exporter Exporter
}

// HeadAll is the Config.HeadRate that keeps every trace.
const HeadAll = 1.0

func (c Config) withDefaults() Config {
	if c.Ring <= 0 {
		c.Ring = 256
	}
	if c.HeadRate < 0 {
		c.HeadRate = 0
	}
	if c.SlowLatency == 0 {
		c.SlowLatency = 250 * time.Millisecond
	}
	return c
}

// Exporter receives kept traces; see FileExporter for the OTLP-shaped JSON
// implementation.
type Exporter interface {
	Export(*Trace)
}

// Tracer owns the retention policy and the lock-free ring of completed
// traces. The record path (Active spans) never touches the Tracer; only
// Finish does, with one atomic add plus one atomic pointer store for kept
// traces — the same shape as the flight recorder's ring.
type Tracer struct {
	cfg Config

	seq  atomic.Uint64
	ring []atomic.Pointer[Trace]

	started  atomic.Uint64
	keptHead atomic.Uint64
	keptTail atomic.Uint64
	dropped  atomic.Uint64
}

// New builds a Tracer (zero cfg = defaults: keep everything, ring of 256).
func New(cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	return &Tracer{cfg: cfg, ring: make([]atomic.Pointer[Trace], cfg.Ring)}
}

// Config returns the tracer's resolved configuration.
func (t *Tracer) Config() Config { return t.cfg }

// headKeep is the deterministic head-sampling verdict: the trace ID's first
// 8 bytes, read as a uniform uint64, land under the rate threshold. Every
// service hashing the same ID reaches the same verdict, so a distributed
// trace is kept or dropped whole.
func (t *Tracer) headKeep(id ID) bool {
	if t.cfg.HeadRate >= 1 {
		return true
	}
	if t.cfg.HeadRate <= 0 {
		return false
	}
	u := uint64(0)
	for _, b := range id[:8] {
		u = u<<8 | uint64(b)
	}
	return float64(u) < t.cfg.HeadRate*float64(1<<63)*2
}

// StartRequest opens the per-request span buffer. A zero parent mints a new
// trace; a parsed inbound traceparent continues the caller's trace (and its
// sampled flag forces head retention, honoring the upstream decision). Safe
// on a nil Tracer, which returns nil — and every Active/SpanHandle method is
// nil-safe, so call sites need no tracing-enabled branches.
func (t *Tracer) StartRequest(parent TraceParent) *Active {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	a := &Active{tracer: t, start: time.Now()}
	if parent.Trace.IsZero() {
		a.id = NewID()
	} else {
		a.id = parent.Trace
		a.remoteParent = parent.Span
	}
	a.headKept = parent.Sampled || t.headKeep(a.id)
	a.spans = make([]Span, 0, 16)
	return a
}

// Last returns up to n of the most recently kept traces, newest first
// (n <= 0 selects the full ring).
func (t *Tracer) Last(n int) []*Trace {
	size := len(t.ring)
	if n <= 0 || n > size {
		n = size
	}
	head := t.seq.Load()
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := int64(head) - 1 - int64(i)
		if idx < 0 {
			break
		}
		if tr := t.ring[idx%int64(size)].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// Get returns the retained trace with the given hex ID, or nil if it was
// never kept or has been lapped out of the ring.
func (t *Tracer) Get(id string) *Trace {
	for _, tr := range t.Last(0) {
		if tr.TraceID == id {
			return tr
		}
	}
	return nil
}

// Stats is the tracer's counter snapshot.
type Stats struct {
	// Started counts requests that opened a trace; KeptHead/KeptTail split
	// the retained ones by decision; Dropped is the rest.
	Started, KeptHead, KeptTail, Dropped uint64
}

// Stats returns current counters.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Started:  t.started.Load(),
		KeptHead: t.keptHead.Load(),
		KeptTail: t.keptTail.Load(),
		Dropped:  t.dropped.Load(),
	}
}

// Active is one in-flight request's span buffer. Span handles append to it
// under a short mutex, so concurrent children (batch fan-out slots) record
// safely; everything else about a request's trace is single-writer.
type Active struct {
	tracer       *Tracer
	id           ID
	remoteParent SpanID
	headKept     bool
	start        time.Time

	mu       sync.Mutex
	spans    []Span
	promoted string
	finished bool
}

// TraceID returns the trace ID (zero on nil).
func (a *Active) TraceID() ID {
	if a == nil {
		return ID{}
	}
	return a.id
}

// TraceIDString returns the hex trace ID, "" on nil — the form the exemplar,
// flight-record, and access-log join keys store.
func (a *Active) TraceIDString() string {
	if a == nil {
		return ""
	}
	return a.id.String()
}

// RemoteParent returns the inbound traceparent's span ID (zero when the
// trace originated here); the boundary span uses it as its parent so the
// caller's trace nests this process's spans.
func (a *Active) RemoteParent() SpanID {
	if a == nil {
		return SpanID{}
	}
	return a.remoteParent
}

// HeadSampled reports the head decision — the sampled flag outbound
// traceparent headers carry downstream.
func (a *Active) HeadSampled() bool { return a != nil && a.headKept }

// Promote forces tail retention with the given reason, regardless of the
// head verdict — the hook lower layers use for conditions only they can see
// (e.g. a visited-set size over the slow-query threshold).
func (a *Active) Promote(reason string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.promoted == "" {
		a.promoted = reason
	}
	a.mu.Unlock()
}

// StartSpan opens a child of parent (zero parent = a root span). Start time
// is now; End appends the completed record.
func (a *Active) StartSpan(parent SpanID, name string, attrs ...Attr) *SpanHandle {
	if a == nil {
		return nil
	}
	return &SpanHandle{a: a, id: NewSpanID(), parent: parent, name: name, start: time.Now(), attrs: attrs}
}

// AddSpan records an already-timed span — the bridge for measurements that
// arrive as (start, duration) aggregates, like the solver's per-phase totals
// and disk page-fault stalls.
func (a *Active) AddSpan(parent SpanID, name string, start time.Time, d time.Duration, attrs ...Attr) {
	if a == nil {
		return
	}
	a.append(Span{
		ID:            NewSpanID().String(),
		Parent:        parent.String(),
		Name:          name,
		Kind:          "internal",
		StartUnixNano: start.UnixNano(),
		DurationNS:    int64(d),
		Attrs:         attrs,
	})
}

func (a *Active) append(s Span) {
	a.mu.Lock()
	if !a.finished {
		a.spans = append(a.spans, s)
	}
	a.mu.Unlock()
}

// Finish closes the request and applies the retention policy: keep when
// head-sampled, or when tail conditions promote (explicit Promote, latency
// over SlowLatency, or a status in {shed, deadline, failed}). Call exactly
// once, after every span has ended; later span appends are dropped.
func (a *Active) Finish(status string) {
	if a == nil {
		return
	}
	elapsed := time.Since(a.start)
	a.mu.Lock()
	if a.finished {
		a.mu.Unlock()
		return
	}
	a.finished = true
	spans := a.spans
	promoted := a.promoted
	a.mu.Unlock()

	t := a.tracer
	sampled := ""
	switch {
	case a.headKept:
		sampled = "head"
	case promoted != "":
		sampled = "tail:" + promoted
	case t.cfg.SlowLatency > 0 && elapsed >= t.cfg.SlowLatency:
		sampled = "tail:slow"
	case status == "shed" || status == "deadline" || status == "failed":
		sampled = "tail:" + status
	}
	if sampled == "" {
		t.dropped.Add(1)
		return
	}
	if sampled == "head" {
		t.keptHead.Add(1)
	} else {
		t.keptTail.Add(1)
	}

	root := "unknown"
	rootParent := a.remoteParent.String()
	for i := range spans {
		if spans[i].Parent == rootParent {
			root = spans[i].Name
			break
		}
	}
	tr := &Trace{
		TraceID:       a.id.String(),
		Root:          root,
		Status:        status,
		Sampled:       sampled,
		StartUnixNano: a.start.UnixNano(),
		DurationUS:    elapsed.Microseconds(),
		Spans:         spans,
	}
	idx := t.seq.Add(1) - 1
	t.ring[idx%uint64(len(t.ring))].Store(tr)
	if t.cfg.Exporter != nil {
		t.cfg.Exporter.Export(tr)
	}
}

// SpanHandle is one open span. Not safe for concurrent use; a request's
// concurrent branches each hold their own handle. All methods are nil-safe.
type SpanHandle struct {
	a      *Active
	id     SpanID
	parent SpanID
	name   string
	kind   string
	start  time.Time
	attrs  []Attr
	errMsg string
	ended  bool
}

// ID returns the span's ID (zero on nil) — the parent for child spans.
func (h *SpanHandle) ID() SpanID {
	if h == nil {
		return SpanID{}
	}
	return h.id
}

// Start returns the span's start time (zero on nil).
func (h *SpanHandle) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return h.start
}

// SetKind overrides the span kind ("server" at the boundary).
func (h *SpanHandle) SetKind(kind string) {
	if h != nil {
		h.kind = kind
	}
}

// SetAttrs appends attributes.
func (h *SpanHandle) SetAttrs(attrs ...Attr) {
	if h != nil {
		h.attrs = append(h.attrs, attrs...)
	}
}

// SetError marks the span failed.
func (h *SpanHandle) SetError(msg string) {
	if h != nil {
		h.errMsg = msg
	}
}

// End closes the span and appends it to the trace. Idempotent.
func (h *SpanHandle) End() {
	if h == nil || h.ended {
		return
	}
	h.ended = true
	kind := h.kind
	if kind == "" {
		kind = "internal"
	}
	h.a.append(Span{
		ID:            h.id.String(),
		Parent:        h.parent.String(),
		Name:          h.name,
		Kind:          kind,
		StartUnixNano: h.start.UnixNano(),
		DurationNS:    int64(time.Since(h.start)),
		Attrs:         h.attrs,
		Error:         h.errMsg,
	})
}

// SpanNode is one node of the assembled span tree the single-trace endpoint
// serves.
type SpanNode struct {
	Span
	Children []*SpanNode `json:"children,omitempty"`
}

// Tree assembles the trace's spans into parent-child order. Spans whose
// parent is outside the trace (the boundary span's remote parent, or a span
// whose parent was lost) surface as roots. Siblings are ordered by start
// time, ties by recording order.
func (tr *Trace) Tree() []*SpanNode {
	nodes := make(map[string]*SpanNode, len(tr.Spans))
	order := make([]*SpanNode, 0, len(tr.Spans))
	for i := range tr.Spans {
		n := &SpanNode{Span: tr.Spans[i]}
		nodes[n.Span.ID] = n
		order = append(order, n)
	}
	var roots []*SpanNode
	for _, n := range order {
		if p, ok := nodes[n.Span.Parent]; ok && n.Span.Parent != "" {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortNodes func(ns []*SpanNode)
	sortNodes = func(ns []*SpanNode) {
		for i := 1; i < len(ns); i++ { // insertion sort: sibling sets are tiny
			for j := i; j > 0 && ns[j].Span.StartUnixNano < ns[j-1].Span.StartUnixNano; j-- {
				ns[j], ns[j-1] = ns[j-1], ns[j]
			}
		}
		for _, n := range ns {
			sortNodes(n.Children)
		}
	}
	sortNodes(roots)
	return roots
}
