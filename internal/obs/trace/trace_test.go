package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewIDUniqueLowercaseHex(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		id := NewID()
		s := id.String()
		if len(s) != 32 {
			t.Fatalf("trace ID %q: len %d, want 32", s, len(s))
		}
		if seen[s] {
			t.Fatalf("duplicate trace ID %q after %d mints", s, i)
		}
		seen[s] = true
		if _, err := ParseID(s); err != nil {
			t.Fatalf("round-trip ParseID(%q): %v", s, err)
		}
		sp := NewSpanID()
		if sp.IsZero() || len(sp.String()) != 16 {
			t.Fatalf("span ID %q invalid", sp.String())
		}
	}
}

func TestParseIDRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"abc",
		"00000000000000000000000000000000",  // all-zero
		"4BF92F3577B34DA6A3CE929D0E0E4736",  // uppercase
		"4bf92f3577b34da6a3ce929d0e0e473g",  // non-hex
		"4bf92f3577b34da6a3ce929d0e0e47361", // 33 chars
	} {
		if _, err := ParseID(bad); err == nil {
			t.Errorf("ParseID(%q) accepted, want error", bad)
		}
	}
}

func TestHeadSamplingDeterministicAndProportional(t *testing.T) {
	tr := New(Config{HeadRate: 0.5, SlowLatency: -1})
	kept := 0
	const n = 20000
	for i := 0; i < n; i++ {
		id := NewID()
		k1, k2 := tr.headKeep(id), tr.headKeep(id)
		if k1 != k2 {
			t.Fatalf("head decision not deterministic for %s", id)
		}
		if k1 {
			kept++
		}
	}
	frac := float64(kept) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("HeadRate 0.5 kept %.3f of traces, want ~0.5", frac)
	}

	all := New(Config{HeadRate: 1})
	none := New(Config{HeadRate: 0})
	for i := 0; i < 100; i++ {
		id := NewID()
		if !all.headKeep(id) {
			t.Fatal("HeadRate 1 dropped a trace")
		}
		if none.headKeep(id) {
			t.Fatal("HeadRate 0 kept a trace")
		}
	}
}

func TestTailPromotionKeepsSlowShedFailed(t *testing.T) {
	tr := New(Config{HeadRate: 0, SlowLatency: 10 * time.Millisecond})

	// Fast, ok → dropped.
	a := tr.StartRequest(TraceParent{})
	a.StartSpan(SpanID{}, "GET /topk").End()
	a.Finish("ok")
	if got := tr.Get(a.TraceIDString()); got != nil {
		t.Fatalf("fast ok trace kept: %+v", got)
	}

	// Shed / deadline / failed → kept regardless of latency.
	for _, status := range []string{"shed", "deadline", "failed"} {
		a := tr.StartRequest(TraceParent{})
		a.StartSpan(SpanID{}, "GET /topk").End()
		a.Finish(status)
		got := tr.Get(a.TraceIDString())
		if got == nil {
			t.Fatalf("status %q trace dropped, want tail-kept", status)
		}
		if got.Sampled != "tail:"+status {
			t.Fatalf("status %q: Sampled = %q, want tail:%s", status, got.Sampled, status)
		}
	}

	// Slow ok → kept as tail:slow.
	slow := New(Config{HeadRate: 0, SlowLatency: time.Nanosecond})
	a = slow.StartRequest(TraceParent{})
	time.Sleep(time.Millisecond)
	a.Finish("ok")
	got := slow.Get(a.TraceIDString())
	if got == nil || got.Sampled != "tail:slow" {
		t.Fatalf("slow trace: got %+v, want Sampled tail:slow", got)
	}

	// Explicit promotion wins over latency.
	a = slow.StartRequest(TraceParent{})
	a.Promote("visited")
	time.Sleep(time.Millisecond)
	a.Finish("ok")
	got = slow.Get(a.TraceIDString())
	if got == nil || got.Sampled != "tail:visited" {
		t.Fatalf("promoted trace: got %+v, want Sampled tail:visited", got)
	}

	st := slow.Stats()
	if st.KeptTail != 2 || st.Started != 2 {
		t.Fatalf("stats = %+v, want Started 2, KeptTail 2", st)
	}
}

func TestRingLapsAndLastNewestFirst(t *testing.T) {
	tr := New(Config{HeadRate: 1, Ring: 4})
	var ids []string
	for i := 0; i < 10; i++ {
		a := tr.StartRequest(TraceParent{})
		a.StartSpan(SpanID{}, "q").End()
		a.Finish("ok")
		ids = append(ids, a.TraceIDString())
	}
	last := tr.Last(0)
	if len(last) != 4 {
		t.Fatalf("Last(0) = %d traces, want 4 (ring size)", len(last))
	}
	for i, tr := range last {
		want := ids[len(ids)-1-i]
		if tr.TraceID != want {
			t.Fatalf("Last[%d] = %s, want %s (newest first)", i, tr.TraceID, want)
		}
	}
	if tr.Get(ids[0]) != nil {
		t.Fatal("lapped trace still retrievable")
	}
	if got := tr.Get(ids[9]); got == nil {
		t.Fatal("newest trace not retrievable")
	}
	if n := len(tr.Last(2)); n != 2 {
		t.Fatalf("Last(2) = %d traces, want 2", n)
	}
}

func TestSpanTreeStructure(t *testing.T) {
	tr := New(Config{HeadRate: 1})
	a := tr.StartRequest(TraceParent{})
	root := a.StartSpan(SpanID{}, "GET /topk")
	root.SetKind("server")
	child1 := a.StartSpan(root.ID(), "qserve.queue.wait")
	child1.End()
	child2 := a.StartSpan(root.ID(), "qserve.execute", Int("k", 10))
	grand := a.StartSpan(child2.ID(), "solver.solve")
	grand.End()
	child2.End()
	a.AddSpan(child2.ID(), "solver.expand", child2.Start(), time.Microsecond, Bool("aggregate", true))
	root.End()
	a.Finish("ok")

	got := tr.Get(a.TraceIDString())
	if got == nil {
		t.Fatal("trace not kept")
	}
	if got.Root != "GET /topk" {
		t.Fatalf("Root = %q, want GET /topk", got.Root)
	}
	roots := got.Tree()
	if len(roots) != 1 || roots[0].Span.Name != "GET /topk" {
		t.Fatalf("tree roots = %+v, want single GET /topk", roots)
	}
	if roots[0].Span.Kind != "server" {
		t.Fatalf("root kind = %q, want server", roots[0].Span.Kind)
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(roots[0].Children))
	}
	var exec *SpanNode
	for _, c := range roots[0].Children {
		if c.Span.Name == "qserve.execute" {
			exec = c
		}
	}
	if exec == nil || len(exec.Children) != 2 {
		t.Fatalf("qserve.execute children wrong: %+v", exec)
	}
	names := map[string]bool{}
	for _, c := range exec.Children {
		names[c.Span.Name] = true
	}
	if !names["solver.solve"] || !names["solver.expand"] {
		t.Fatalf("execute children = %v, want solver.solve + solver.expand", names)
	}
}

func TestRemoteParentAdoptedAndSampledForcesKeep(t *testing.T) {
	tr := New(Config{HeadRate: 0, SlowLatency: -1})
	parent, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	a := tr.StartRequest(parent)
	if a.TraceIDString() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace ID not adopted: %s", a.TraceIDString())
	}
	if !a.HeadSampled() {
		t.Fatal("inbound sampled flag did not force head retention")
	}
	root := a.StartSpan(a.RemoteParent(), "GET /topk")
	root.End()
	a.Finish("ok")
	got := tr.Get(a.TraceIDString())
	if got == nil || got.Sampled != "head" {
		t.Fatalf("sampled inbound trace: got %+v, want kept head", got)
	}
	// The boundary span's parent is the remote span; Tree surfaces it as root.
	roots := got.Tree()
	if len(roots) != 1 || roots[0].Span.Parent != "00f067aa0ba902b7" {
		t.Fatalf("boundary span parent = %+v, want remote 00f067aa0ba902b7", roots)
	}

	// Unsampled inbound context: ID adopted, head verdict from hash (rate 0 → drop).
	parent.Sampled = false
	a = tr.StartRequest(parent)
	if a.HeadSampled() {
		t.Fatal("unsampled inbound forced head retention")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	a := tr.StartRequest(TraceParent{})
	if a != nil {
		t.Fatal("nil tracer minted an Active")
	}
	// Every method must be a no-op on nil.
	a.Promote("x")
	a.Finish("ok")
	a.AddSpan(SpanID{}, "s", time.Now(), 0)
	if a.TraceIDString() != "" || !a.TraceID().IsZero() {
		t.Fatal("nil Active has a trace ID")
	}
	h := a.StartSpan(SpanID{}, "s")
	if h != nil {
		t.Fatal("nil Active minted a span")
	}
	h.SetAttrs(Int("k", 1))
	h.SetError("x")
	h.SetKind("server")
	h.End()
	if !h.ID().IsZero() {
		t.Fatal("nil span has an ID")
	}
	if st := tr.Stats(); st != (Stats{}) {
		t.Fatalf("nil tracer stats = %+v", st)
	}

	ctx := context.Background()
	if got := NewContext(ctx, nil, SpanID{}); got != ctx {
		t.Fatal("NewContext(nil) layered the context")
	}
	ctx2, h2 := StartSpan(ctx, "s")
	if ctx2 != ctx || h2 != nil {
		t.Fatal("StartSpan on untraced context not a no-op")
	}
	ga, gs := FromContext(ctx)
	if ga != nil || !gs.IsZero() {
		t.Fatal("FromContext on empty context non-zero")
	}
}

func TestContextPropagation(t *testing.T) {
	tr := New(Config{HeadRate: 1})
	a := tr.StartRequest(TraceParent{})
	root := a.StartSpan(SpanID{}, "root")
	ctx := NewContext(context.Background(), a, root.ID())

	ctx2, child := StartSpan(ctx, "child", Str("q", "7"))
	if child == nil {
		t.Fatal("StartSpan returned nil on traced context")
	}
	ga, gs := FromContext(ctx2)
	if ga != a || gs != child.ID() {
		t.Fatal("child span not current in derived context")
	}
	_, grand := StartSpan(ctx2, "grand")
	grand.End()
	child.End()
	root.End()
	a.Finish("ok")

	got := tr.Get(a.TraceIDString())
	roots := got.Tree()
	if len(roots) != 1 || len(roots[0].Children) != 1 || len(roots[0].Children[0].Children) != 1 {
		t.Fatalf("context-propagated tree wrong: %+v", roots)
	}
	if roots[0].Children[0].Children[0].Span.Name != "grand" {
		t.Fatal("grandchild not nested under child")
	}
}

func TestConcurrentSpanRecording(t *testing.T) {
	tr := New(Config{HeadRate: 1})
	a := tr.StartRequest(TraceParent{})
	root := a.StartSpan(SpanID{}, "batch")
	var wg sync.WaitGroup
	const slots = 32
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := a.StartSpan(root.ID(), "slot", Int("slot", int64(i)))
			h.End()
		}(i)
	}
	wg.Wait()
	root.End()
	a.Finish("ok")
	got := tr.Get(a.TraceIDString())
	if got == nil || len(got.Spans) != slots+1 {
		t.Fatalf("concurrent recording lost spans: got %d, want %d", len(got.Spans), slots+1)
	}
	roots := got.Tree()
	if len(roots) != 1 || len(roots[0].Children) != slots {
		t.Fatalf("batch tree wrong: %d roots, %d children", len(roots), len(roots[0].Children))
	}
}

func TestFinishIdempotentAndLateSpansDropped(t *testing.T) {
	tr := New(Config{HeadRate: 1, Ring: 8})
	a := tr.StartRequest(TraceParent{})
	a.StartSpan(SpanID{}, "q").End()
	a.Finish("ok")
	a.Finish("failed") // second Finish must not double-publish or re-verdict
	a.StartSpan(SpanID{}, "late").End()
	got := tr.Get(a.TraceIDString())
	if got.Status != "ok" || len(got.Spans) != 1 {
		t.Fatalf("post-Finish mutation visible: %+v", got)
	}
	if st := tr.Stats(); st.KeptHead != 1 {
		t.Fatalf("double Finish double-counted: %+v", st)
	}
}

func TestTraceparentStringRoundTrip(t *testing.T) {
	tp := TraceParent{Trace: NewID(), Span: NewSpanID(), Sampled: true}
	s := tp.String()
	if !strings.HasPrefix(s, "00-") || !strings.HasSuffix(s, "-01") {
		t.Fatalf("wire form %q", s)
	}
	got, err := ParseTraceparent(s)
	if err != nil {
		t.Fatal(err)
	}
	if got != tp {
		t.Fatalf("round trip: got %+v, want %+v", got, tp)
	}
}
