package trace

import (
	"fmt"
	"net/http"
	"strings"
)

// Header is the W3C Trace Context header name.
const Header = "traceparent"

// TraceParent is a parsed W3C traceparent value: the trace being continued,
// the caller's span (the parent of our boundary span), and the caller's
// sampling decision.
type TraceParent struct {
	Trace   ID
	Span    SpanID
	Sampled bool
}

// IsZero reports an unset TraceParent (no inbound context).
func (tp TraceParent) IsZero() bool { return tp.Trace.IsZero() }

// String renders the version-00 wire form
// "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>".
func (tp TraceParent) String() string {
	flags := "00"
	if tp.Sampled {
		flags = "01"
	}
	span := tp.Span
	if span.IsZero() {
		// The spec forbids a zero parent-id on the wire; this only happens if
		// a caller builds a TraceParent by hand without a span.
		span = NewSpanID()
	}
	return "00-" + tp.Trace.String() + "-" + span.String() + "-" + flags
}

// ParseTraceparent parses a traceparent header per the W3C Trace Context
// level-1 spec: exactly four dash-separated fields; a 2-hex-digit version
// that must not be "ff" (versions above 00 are accepted and read with 00
// semantics, as the spec requires for forward compatibility, but then the
// value must have at least the 00 layout); lowercase hex IDs; non-zero
// trace-id and parent-id. Only bit 0 of the flags (sampled) is interpreted.
func ParseTraceparent(s string) (TraceParent, error) {
	parts := strings.Split(s, "-")
	if len(parts) < 4 {
		return TraceParent{}, fmt.Errorf("trace: traceparent %q: want 4 fields, got %d", s, len(parts))
	}
	ver := parts[0]
	if len(ver) != 2 {
		return TraceParent{}, fmt.Errorf("trace: traceparent %q: version %q: want 2 hex chars", s, ver)
	}
	var vb [1]byte
	if err := parseLowerHex(vb[:], ver); err != nil {
		return TraceParent{}, fmt.Errorf("trace: traceparent %q: version: %v", s, err)
	}
	if ver == "ff" {
		return TraceParent{}, fmt.Errorf("trace: traceparent %q: version ff is invalid", s)
	}
	if ver == "00" && len(parts) != 4 {
		return TraceParent{}, fmt.Errorf("trace: traceparent %q: version 00 wants exactly 4 fields", s)
	}
	tid, err := ParseID(parts[1])
	if err != nil {
		return TraceParent{}, fmt.Errorf("trace: traceparent %q: %v", s, err)
	}
	sid, err := parseSpanID(parts[2])
	if err != nil {
		return TraceParent{}, fmt.Errorf("trace: traceparent %q: %v", s, err)
	}
	flags := parts[3]
	if len(flags) != 2 {
		return TraceParent{}, fmt.Errorf("trace: traceparent %q: flags %q: want 2 hex chars", s, flags)
	}
	var fb [1]byte
	if err := parseLowerHex(fb[:], flags); err != nil {
		return TraceParent{}, fmt.Errorf("trace: traceparent %q: flags: %v", s, err)
	}
	return TraceParent{Trace: tid, Span: sid, Sampled: fb[0]&0x01 != 0}, nil
}

// Inject writes the traceparent header for an outbound request whose parent
// is the given span — the helper the future router→replica RPC path calls so
// replicas inherit context for free. No-op when the trace ID is zero.
func Inject(h http.Header, trace ID, span SpanID, sampled bool) {
	if trace.IsZero() {
		return
	}
	h.Set(Header, TraceParent{Trace: trace, Span: span, Sampled: sampled}.String())
}
