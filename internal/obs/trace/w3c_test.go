package trace

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseTraceparentValid(t *testing.T) {
	got, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace = %s", got.Trace)
	}
	if got.Span.String() != "00f067aa0ba902b7" {
		t.Fatalf("span = %s", got.Span)
	}
	if !got.Sampled {
		t.Fatal("sampled flag not read")
	}

	// Flags 00 → unsampled; other flag bits ignored.
	for flags, want := range map[string]bool{"00": false, "01": true, "02": false, "03": true, "ff": true} {
		got, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-" + flags)
		if err != nil {
			t.Fatalf("flags %s: %v", flags, err)
		}
		if got.Sampled != want {
			t.Fatalf("flags %s: sampled = %v, want %v", flags, got.Sampled, want)
		}
	}

	// Future version with extra fields: accepted with 00 semantics.
	if _, err := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); err != nil {
		t.Fatalf("future version rejected: %v", err)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	cases := []string{
		"",
		"garbage",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // v00 with 5 fields
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // invalid version
		"0x-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // non-hex version
		"0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",    // 1-char version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero span
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",   // uppercase trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01",   // uppercase span
		"00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01",    // short trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b-01",    // short span
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-1",    // 1-char flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g",   // non-hex flags
	}
	for _, bad := range cases {
		if _, err := ParseTraceparent(bad); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted, want error", bad)
		}
	}
}

func TestInject(t *testing.T) {
	h := make(http.Header)
	id, span := NewID(), NewSpanID()
	Inject(h, id, span, true)
	got := h.Get(Header)
	want := "00-" + id.String() + "-" + span.String() + "-01"
	if got != want {
		t.Fatalf("Inject wrote %q, want %q", got, want)
	}
	parsed, err := ParseTraceparent(got)
	if err != nil {
		t.Fatalf("injected header does not parse: %v", err)
	}
	if parsed.Trace != id || parsed.Span != span || !parsed.Sampled {
		t.Fatal("injected header round-trip mismatch")
	}

	// Zero trace: no header.
	h2 := make(http.Header)
	Inject(h2, ID{}, span, true)
	if h2.Get(Header) != "" {
		t.Fatal("Inject wrote a header for the zero trace ID")
	}
}

func TestFileExporterOTLPShape(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	exp, err := NewFileExporter(path, "flos-test")
	if err != nil {
		t.Fatal(err)
	}
	tr := New(Config{HeadRate: 1, Exporter: exp})
	a := tr.StartRequest(TraceParent{})
	root := a.StartSpan(SpanID{}, "GET /topk", Int("k", 10), Str("measure", "php"), Float("alpha", 0.5), Bool("unified", false))
	root.SetKind("server")
	child := a.StartSpan(root.ID(), "qserve.execute")
	child.SetError("boom")
	child.End()
	root.End()
	a.Finish("ok")
	a2 := tr.StartRequest(TraceParent{})
	a2.StartSpan(SpanID{}, "GET /topk").End()
	a2.Finish("ok")
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 {
		t.Fatalf("exporter wrote %d lines, want 2 (one per kept trace)", len(lines))
	}
	first := lines[0]
	for _, want := range []string{
		`"resourceSpans"`, `"scopeSpans"`, `"spans"`,
		`"service.name"`, `"flos-test"`,
		`"traceId":"` + a.TraceIDString() + `"`,
		`"kind":2`, // server span
		`"kind":1`, // internal span
		`"startTimeUnixNano":"`, `"endTimeUnixNano":"`,
		`"intValue":"10"`, `"stringValue":"php"`, `"doubleValue":0.5`, `"boolValue":false`,
		`"code":2`, `"message":"boom"`, // errored child status
		`"flos.sampled"`,
	} {
		if !strings.Contains(first, want) {
			t.Errorf("OTLP line missing %s:\n%s", want, first)
		}
	}

	// End = start + duration, as string nanos.
	if !strings.Contains(first, `"parentSpanId":"`+root.ID().String()+`"`) {
		t.Error("child span missing parentSpanId")
	}
	_ = time.Now()
}
