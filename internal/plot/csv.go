package plot

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Measurement is one parsed CSV row from the harness export.
type Measurement struct {
	Dataset      string
	Method       string
	K            int
	AvgTimeUS    float64
	VisitedRatio float64
}

// ReadMeasurements parses a harness CSV export (harness.WriteCSV format).
// Rows with errors are skipped.
func ReadMeasurements(r io.Reader) ([]Measurement, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("plot: empty CSV")
	}
	col := map[string]int{}
	for i, name := range records[0] {
		col[name] = i
	}
	for _, need := range []string{"dataset", "method", "k", "avg_time_us", "visited_ratio", "error"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("plot: CSV missing column %q", need)
		}
	}
	var out []Measurement
	for _, rec := range records[1:] {
		if rec[col["error"]] != "" {
			continue
		}
		k, err := strconv.Atoi(rec[col["k"]])
		if err != nil {
			return nil, fmt.Errorf("plot: bad k %q", rec[col["k"]])
		}
		t, err := strconv.ParseFloat(rec[col["avg_time_us"]], 64)
		if err != nil {
			return nil, fmt.Errorf("plot: bad avg_time_us %q", rec[col["avg_time_us"]])
		}
		vr, err := strconv.ParseFloat(rec[col["visited_ratio"]], 64)
		if err != nil {
			return nil, fmt.Errorf("plot: bad visited_ratio %q", rec[col["visited_ratio"]])
		}
		out = append(out, Measurement{
			Dataset:      rec[col["dataset"]],
			Method:       rec[col["method"]],
			K:            k,
			AvgTimeUS:    t,
			VisitedRatio: vr,
		})
	}
	return out, nil
}

// TimeVsK builds one chart per dataset: average query time (µs, log scale)
// against k, one series per method — the shape of the paper's Figures 7, 8
// and 10.
func TimeVsK(ms []Measurement) []Chart {
	byDataset := map[string]map[string][]Measurement{}
	var order []string
	for _, m := range ms {
		if byDataset[m.Dataset] == nil {
			byDataset[m.Dataset] = map[string][]Measurement{}
			order = append(order, m.Dataset)
		}
		byDataset[m.Dataset][m.Method] = append(byDataset[m.Dataset][m.Method], m)
	}
	var charts []Chart
	for _, ds := range order {
		chart := Chart{
			Title:  "query time vs k — " + ds,
			XLabel: "k",
			YLabel: "avg time (µs)",
			LogY:   true,
		}
		methods := make([]string, 0, len(byDataset[ds]))
		for m := range byDataset[ds] {
			methods = append(methods, m)
		}
		sort.Strings(methods)
		for _, method := range methods {
			pts := byDataset[ds][method]
			sort.Slice(pts, func(a, b int) bool { return pts[a].K < pts[b].K })
			s := Series{Name: method}
			for _, p := range pts {
				if p.AvgTimeUS <= 0 {
					continue // log scale cannot show zero
				}
				s.Xs = append(s.Xs, float64(p.K))
				s.Ys = append(s.Ys, p.AvgTimeUS)
			}
			if len(s.Xs) > 0 {
				chart.Series = append(chart.Series, s)
			}
		}
		if len(chart.Series) > 0 {
			charts = append(charts, chart)
		}
	}
	return charts
}
