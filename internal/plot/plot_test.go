package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteSVGBasics(t *testing.T) {
	c := Chart{
		Title:  "test chart",
		XLabel: "k",
		YLabel: "time",
		LogY:   true,
		Series: []Series{
			{Name: "FLoS", Xs: []float64{1, 10, 100}, Ys: []float64{5, 50, 5000}},
			{Name: "GI", Xs: []float64{1, 10, 100}, Ys: []float64{1000, 1000, 1000}},
		},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "test chart", "FLoS", "GI", "polyline"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two polylines, one per series.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
}

func TestWriteSVGErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (Chart{Title: "empty"}).WriteSVG(&buf); err == nil {
		t.Error("empty chart accepted")
	}
	bad := Chart{Series: []Series{{Name: "ragged", Xs: []float64{1}, Ys: []float64{1, 2}}}}
	if err := bad.WriteSVG(&buf); err == nil {
		t.Error("ragged series accepted")
	}
	neg := Chart{LogY: true, Series: []Series{{Name: "neg", Xs: []float64{1}, Ys: []float64{-1}}}}
	if err := neg.WriteSVG(&buf); err == nil {
		t.Error("negative log-scale value accepted")
	}
}

func TestWriteSVGEscapesMarkup(t *testing.T) {
	c := Chart{
		Title:  `<script>"x"&y</script>`,
		Series: []Series{{Name: "a<b", Xs: []float64{0, 1}, Ys: []float64{1, 2}}},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "<script>") {
		t.Error("markup not escaped")
	}
	if !strings.Contains(out, "&lt;script&gt;") || !strings.Contains(out, "a&lt;b") {
		t.Error("escaped forms missing")
	}
}

const sampleCSV = `dataset,method,k,queries,exact,avg_time_us,min_time_us,max_time_us,avg_visited,visited_ratio,min_ratio,max_ratio,precision,error
AZ,FLoS_PHP,1,5,true,500,400,600,20,0.001,0.0005,0.002,1,
AZ,FLoS_PHP,10,5,true,900,700,1200,40,0.002,0.001,0.004,1,
AZ,GI_PHP,1,5,true,40000,38000,41000,41857,1,1,1,1,
AZ,GI_PHP,10,5,true,40000,38000,42000,41857,1,1,1,1,
DP,FLoS_PHP,1,5,true,300,200,400,25,0.001,0.0008,0.002,1,
AZ,Broken,1,0,false,0,0,0,0,0,0,0,-1,exploded
`

func TestReadMeasurements(t *testing.T) {
	ms, err := ReadMeasurements(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("parsed %d rows, want 5 (error row skipped)", len(ms))
	}
	if ms[0].Dataset != "AZ" || ms[0].Method != "FLoS_PHP" || ms[0].K != 1 || ms[0].AvgTimeUS != 500 {
		t.Fatalf("row 0 = %+v", ms[0])
	}
}

func TestReadMeasurementsErrors(t *testing.T) {
	if _, err := ReadMeasurements(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadMeasurements(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Error("missing columns accepted")
	}
	bad := strings.Replace(sampleCSV, "AZ,FLoS_PHP,1,", "AZ,FLoS_PHP,notanumber,", 1)
	if _, err := ReadMeasurements(strings.NewReader(bad)); err == nil {
		t.Error("bad k accepted")
	}
}

func TestTimeVsK(t *testing.T) {
	ms, err := ReadMeasurements(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	charts := TimeVsK(ms)
	if len(charts) != 2 {
		t.Fatalf("%d charts, want 2 datasets", len(charts))
	}
	az := charts[0]
	if !strings.Contains(az.Title, "AZ") || len(az.Series) != 2 {
		t.Fatalf("AZ chart = %+v", az)
	}
	// Series points sorted by k.
	for _, s := range az.Series {
		for i := 1; i < len(s.Xs); i++ {
			if s.Xs[i] <= s.Xs[i-1] {
				t.Errorf("series %s not sorted by k", s.Name)
			}
		}
	}
	var buf bytes.Buffer
	if err := az.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
}
