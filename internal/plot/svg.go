// Package plot renders the harness's measurements as standalone SVG line
// charts — the textual tables' graphical twin, mirroring the paper's
// log-scale figures. Only the stdlib is used; the output is deliberately
// simple: one chart per dataset, series per method, log10 y-axis.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one line on a chart.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64 // must be positive for log scale
}

// Chart is a single figure panel.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	LogY   bool
	Series []Series
}

// Palette cycles through distinguishable stroke colors.
var Palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

const (
	width   = 640.0
	height  = 420.0
	marginL = 70.0
	marginR = 160.0
	marginT = 40.0
	marginB = 50.0
)

// WriteSVG renders the chart.
func (c Chart) WriteSVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.Xs) != len(s.Ys) {
			return fmt.Errorf("plot: series %q has ragged data", s.Name)
		}
		for i := range s.Xs {
			y := s.Ys[i]
			if c.LogY {
				if y <= 0 {
					return fmt.Errorf("plot: series %q has non-positive y for log scale", s.Name)
				}
				y = math.Log10(y)
			}
			minX = math.Min(minX, s.Xs[i])
			maxX = math.Max(maxX, s.Xs[i])
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB
	tx := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*plotW }
	ty := func(y float64) float64 {
		if c.LogY {
			y = math.Log10(y)
		}
		return marginT + (maxY-y)/(maxY-minY)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" font-family="sans-serif" font-size="12">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%g" height="%g" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%g" y="20" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-12, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%g" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, escape(c.YLabel))

	// Y gridlines: at integer log10 ticks (log) or quartiles (linear).
	if c.LogY {
		for e := math.Ceil(minY); e <= math.Floor(maxY); e++ {
			yv := math.Pow(10, e)
			fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n",
				marginL, ty(yv), width-marginR, ty(yv))
			fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end">%s</text>`+"\n",
				marginL-6, ty(yv)+4, fmtTick(yv))
		}
	} else {
		for i := 0; i <= 4; i++ {
			yv := minY + (maxY-minY)*float64(i)/4
			fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n",
				marginL, ty(yv), width-marginR, ty(yv))
			fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end">%s</text>`+"\n",
				marginL-6, ty(yv)+4, fmtTick(yv))
		}
	}
	// X ticks at each distinct x.
	xs := distinctXs(c.Series)
	for _, xv := range xs {
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n",
			tx(xv), height-marginB+16, fmtTick(xv))
	}

	// Series.
	for si, s := range c.Series {
		color := Palette[si%len(Palette)]
		var pts []string
		for i := range s.Xs {
			pts = append(pts, fmt.Sprintf("%g,%g", tx(s.Xs[i]), ty(s.Ys[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := range s.Xs {
			fmt.Fprintf(&b, `<circle cx="%g" cy="%g" r="3" fill="%s"/>`+"\n",
				tx(s.Xs[i]), ty(s.Ys[i]), color)
		}
		// Legend.
		ly := marginT + 16*float64(si)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			width-marginR+10, ly, width-marginR+30, ly, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g">%s</text>`+"\n", width-marginR+36, ly+4, escape(s.Name))
	}
	fmt.Fprintln(&b, `</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}

func distinctXs(series []Series) []float64 {
	set := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.Xs {
			set[x] = true
		}
	}
	out := make([]float64, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Float64s(out)
	if len(out) > 8 {
		// Thin to at most 8 labels.
		step := (len(out) + 7) / 8
		thin := out[:0]
		for i := 0; i < len(out); i += step {
			thin = append(thin, out[i])
		}
		out = thin
	}
	return out
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 1:
		return fmt.Sprintf("%.0f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
