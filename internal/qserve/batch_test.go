package qserve

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"flos/internal/core"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
)

func batchRequests(t *testing.T, g graph.Graph, n int) []Request {
	t.Helper()
	kinds := []measure.Kind{measure.PHP, measure.EI, measure.DHT, measure.THT, measure.RWR}
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			Query: graph.NodeID((i * 137) % g.NumNodes()),
			Opt:   core.DefaultOptions(kinds[i%len(kinds)], 10),
		}
	}
	return reqs
}

// TestDoBatchMatchesSerial: every batch slot must carry the same answer the
// single-threaded reference produces, in request order.
func TestDoBatchMatchesSerial(t *testing.T) {
	g, err := gen.RMAT(2000, 10000, gen.DefaultRMAT(), 7)
	if err != nil {
		t.Fatal(err)
	}
	reqs := batchRequests(t, g, 32)
	pool := New(g, Config{Workers: 4, QueueDepth: 8, CacheEntries: -1})
	defer pool.Close()

	out := pool.DoBatch(context.Background(), reqs)
	if len(out) != len(reqs) {
		t.Fatalf("got %d slots, want %d", len(out), len(reqs))
	}
	for i, slot := range out {
		if slot.Err != nil {
			t.Fatalf("slot %d: %v", i, slot.Err)
		}
		want, err := core.TopK(g, reqs[i].Query, reqs[i].Opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(slot.Resp.TopK, want) {
			t.Errorf("slot %d (%v q=%d): batch result diverged from serial",
				i, reqs[i].Opt.Measure, reqs[i].Query)
		}
	}
	if m := pool.Metrics(); m.Batches != 1 {
		t.Fatalf("Batches metric = %d, want 1", m.Batches)
	}
}

// TestDoBatchCacheHits: a repeated batch is answered from the result cache.
func TestDoBatchCacheHits(t *testing.T) {
	g := gen.PaperExample()
	reqs := batchRequests(t, g, 8)
	pool := New(g, Config{Workers: 2, QueueDepth: 4, CacheEntries: 64})
	defer pool.Close()

	first := pool.DoBatch(context.Background(), reqs)
	for i, slot := range first {
		if slot.Err != nil {
			t.Fatalf("first pass slot %d: %v", i, slot.Err)
		}
		if slot.Resp.CacheHit {
			t.Fatalf("first pass slot %d: unexpected cache hit", i)
		}
	}
	second := pool.DoBatch(context.Background(), reqs)
	for i, slot := range second {
		if slot.Err != nil {
			t.Fatalf("second pass slot %d: %v", i, slot.Err)
		}
		if !slot.Resp.CacheHit {
			t.Errorf("second pass slot %d: not served from cache", i)
		}
		if !reflect.DeepEqual(slot.Resp.TopK, first[i].Resp.TopK) {
			t.Errorf("slot %d: cached answer differs from computed one", i)
		}
	}
}

// TestDoBatchCanceledContext: a batch admitted under a dead context returns
// immediately with every slot carrying *core.Interrupted(ErrCanceled) —
// never a hang, never an empty slot.
func TestDoBatchCanceledContext(t *testing.T) {
	g := gen.PaperExample()
	reqs := batchRequests(t, g, 10)
	pool := New(g, Config{Workers: 2, QueueDepth: 2, CacheEntries: -1})
	defer pool.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan []BatchResult, 1)
	go func() { done <- pool.DoBatch(ctx, reqs) }()
	var out []BatchResult
	select {
	case out = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("DoBatch hung on a canceled context")
	}
	for i, slot := range out {
		if slot.Resp != nil && slot.Err == nil {
			// A worker may legitimately win the race for the first few
			// submitted jobs; anything else must be interrupted.
			continue
		}
		var in *core.Interrupted
		if !errors.As(slot.Err, &in) || !errors.Is(slot.Err, core.ErrCanceled) {
			t.Fatalf("slot %d: err = %v, want *Interrupted wrapping ErrCanceled", i, slot.Err)
		}
	}
}

// TestDoBatchDeadlineMidBatch: with a per-query pool timeout shorter than
// the work, slots report ErrDeadline but the call still fills every slot.
func TestDoBatchDeadlineMidBatch(t *testing.T) {
	g, err := gen.Community(20000, 80000, gen.DefaultCommunityParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(measure.RWR, 50)
	opt.Params.Tau = 1e-12 // force a long search
	reqs := make([]Request, 6)
	for i := range reqs {
		reqs[i] = Request{Query: graph.NodeID(i * 1000), Opt: opt}
	}
	pool := New(g, Config{Workers: 2, QueueDepth: 4, CacheEntries: -1, Timeout: time.Millisecond})
	defer pool.Close()

	out := pool.DoBatch(context.Background(), reqs)
	for i, slot := range out {
		if slot.Err == nil {
			continue // a tiny search can still beat the deadline
		}
		if !errors.Is(slot.Err, core.ErrDeadline) {
			t.Fatalf("slot %d: err = %v, want ErrDeadline", i, slot.Err)
		}
	}
	if m := pool.Metrics(); m.Deadline == 0 {
		t.Fatal("no slot hit the 1ms per-query deadline")
	}
}

// TestDoBatchClosedPool: a batch against a closed pool fails every slot
// with ErrClosed instead of hanging.
func TestDoBatchClosedPool(t *testing.T) {
	g := gen.PaperExample()
	pool := New(g, Config{Workers: 1, QueueDepth: 1, CacheEntries: -1})
	pool.Close()
	out := pool.DoBatch(context.Background(), batchRequests(t, g, 4))
	for i, slot := range out {
		if !errors.Is(slot.Err, ErrClosed) {
			t.Fatalf("slot %d: err = %v, want ErrClosed", i, slot.Err)
		}
	}
}
