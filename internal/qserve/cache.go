package qserve

import (
	"container/list"
	"sync"

	"flos/internal/graph"
	"flos/internal/measure"
)

// cacheKey identifies one answer. Every option that can change the result
// participates; the epoch ties the entry to a topology snapshot, so bumping
// the pool's epoch orphans every earlier entry (they age out by LRU).
type cacheKey struct {
	epoch      uint64
	q          graph.NodeID
	unified    bool
	kind       measure.Kind
	params     measure.Params
	k          int
	tighten    bool
	maxVisited int
	tieEps     float64
}

func keyOf(epoch uint64, req Request) cacheKey {
	return cacheKey{
		epoch:      epoch,
		q:          req.Query,
		unified:    req.Unified,
		kind:       req.Opt.Measure,
		params:     req.Opt.Params,
		k:          req.Opt.K,
		tighten:    req.Opt.Tighten,
		maxVisited: req.Opt.MaxVisited,
		tieEps:     req.Opt.TieEps,
	}
}

// resultCache is a mutex-guarded LRU of completed responses. Entries are
// shared, never copied: a Response stored here must not be mutated.
type resultCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used; values are *cacheEntry
	m   map[cacheKey]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key  cacheKey
	resp *Response
}

func newResultCache(max int) *resultCache {
	return &resultCache{
		max: max,
		ll:  list.New(),
		m:   make(map[cacheKey]*list.Element, max),
	}
}

func (c *resultCache) get(k cacheKey) (*Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

func (c *resultCache) put(k cacheKey, resp *Response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&cacheEntry{key: k, resp: resp})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

func (c *resultCache) counters() (hits, misses, evictions int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.ll.Len()
}
