package qserve

import (
	"container/list"
	"math"
	"sync"

	"flos/internal/core"
	"flos/internal/graph"
	"flos/internal/measure"
	"flos/internal/obs/cachelens"
)

// cacheKey identifies one answer. Every option that can change the result
// participates; the epoch ties the entry to a topology snapshot, so bumping
// the pool's epoch orphans every earlier entry (they age out by LRU). The
// serving mode and ε budget are part of the key because they change what
// the answer certifies; exactKey exposes the deliberate asymmetry that an
// exact entry may serve ε/anytime requests (see Pool.prepare). The kernel
// participates because the parallel and staged solvers follow different
// relaxation orders than serial: all three certify the same top-k sets, but
// scores can differ in low-order bits, and a cached answer must replay the
// bits the request's kernel would produce.
type cacheKey struct {
	epoch      uint64
	q          graph.NodeID
	unified    bool
	kind       measure.Kind
	params     measure.Params
	k          int
	tighten    bool
	maxVisited int
	tieEps     float64
	mode       core.Mode
	epsilon    float64
	kernel     core.KernelKind
}

func keyOf(epoch uint64, req Request) cacheKey {
	return cacheKey{
		epoch:      epoch,
		q:          req.Query,
		unified:    req.Unified,
		kind:       req.Opt.Measure,
		params:     req.Opt.Params,
		k:          req.Opt.K,
		tighten:    req.Opt.Tighten,
		maxVisited: req.Opt.MaxVisited,
		tieEps:     req.Opt.TieEps,
		mode:       req.Opt.Mode,
		epsilon:    req.Opt.Epsilon,
		kernel:     req.Opt.Kernel,
	}
}

// hashKey folds a cacheKey into the uint64 identity the analytics lens
// tracks (FNV-1a combine over every field; the lens re-mixes with its own
// seeded finalizer, so this only needs to separate distinct keys). The
// epoch participates: an entry from a retired epoch really is a different
// cache entry, and reuse across epochs is a cold access by construction.
func hashKey(k cacheKey) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	b := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	mix(k.epoch)
	mix(uint64(k.q))
	mix(b(k.unified))
	mix(uint64(k.kind))
	mix(math.Float64bits(k.params.C))
	mix(uint64(k.params.L))
	mix(math.Float64bits(k.params.Tau))
	mix(uint64(k.params.MaxIter))
	mix(uint64(k.k))
	mix(b(k.tighten))
	mix(uint64(k.maxVisited))
	mix(math.Float64bits(k.tieEps))
	mix(uint64(k.mode))
	mix(math.Float64bits(k.epsilon))
	mix(uint64(k.kernel))
	return h
}

// exactKey is k with the serving mode stripped back to exact. An exact
// answer is a valid (indeed, the best possible) answer for the same query
// in ε or anytime mode, so mode lookups fall back to it; the converse never
// holds — an ε answer must not serve an exact request.
func exactKey(k cacheKey) cacheKey {
	k.mode = core.ModeExact
	k.epsilon = 0
	return k
}

// resultCache is a mutex-guarded LRU of completed responses. Entries are
// shared, never copied: a Response stored here must not be mutated.
type resultCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used; values are *cacheEntry
	m   map[cacheKey]*list.Element

	hits, misses, evictions int64

	// lens, when non-nil, observes lookups and LRU evictions for the cache
	// analytics plane. Invalidations are deliberately NOT recorded: those
	// entries die for correctness, not for space, so counting them would
	// make a bigger cache look better than it could be. Recorded outside
	// mu; nil-safe.
	lens *cachelens.Lens
}

type cacheEntry struct {
	key  cacheKey
	resp *Response

	// Live-mode invalidation state, nil/zero on non-live pools. fp is the
	// query's full read footprint (visited ∪ degree-probed nodes), sorted;
	// visited is the visit-order set kept for warm-starting a re-certify run;
	// guard/guarded implement the RWR w(S̄) rule: a guarded entry also goes
	// stale when a mutation raises some touched node's degree above the
	// ceiling the search certified against, because the unvisited-mass bound
	// quietly leaned on that ceiling even outside the footprint.
	fp      []graph.NodeID
	visited []graph.NodeID
	guard   float64
	guarded bool
}

func newResultCache(max int, lens *cachelens.Lens) *resultCache {
	return &resultCache{
		max:  max,
		ll:   list.New(),
		m:    make(map[cacheKey]*list.Element, max),
		lens: lens,
	}
}

func (c *resultCache) get(k cacheKey) (*Response, bool) {
	c.mu.Lock()
	el, ok := c.m[k]
	if !ok && k.mode != core.ModeExact {
		// Exact-serves-ε asymmetry: an exact entry answers the same query in
		// ε or anytime mode (its gap is 0, within any budget). An ε entry
		// never serves an exact request — that direction is not probed.
		el, ok = c.m[exactKey(k)]
	}
	var resp *Response
	if ok {
		c.hits++
		c.ll.MoveToFront(el)
		resp = el.Value.(*cacheEntry).resp
	} else {
		c.misses++
	}
	c.mu.Unlock()
	c.lens.RecordGet(hashKey(k), ok)
	return resp, ok
}

func (c *resultCache) put(k cacheKey, resp *Response) {
	c.putLive(k, resp, nil, nil, 0, false)
}

// putLive stores a response, optionally together with its read footprint so
// later mutation batches can invalidate it surgically (nil footprint on
// non-live pools — put delegates here).
func (c *resultCache) putLive(k cacheKey, resp *Response, fp, visited []graph.NodeID, guard float64, guarded bool) {
	var evicted []uint64
	c.mu.Lock()
	if el, ok := c.m[k]; ok {
		e := el.Value.(*cacheEntry)
		e.resp, e.fp, e.visited, e.guard, e.guarded = resp, fp, visited, guard, guarded
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.m[k] = c.ll.PushFront(&cacheEntry{key: k, resp: resp, fp: fp, visited: visited, guard: guard, guarded: guarded})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		oldKey := oldest.Value.(*cacheEntry).key
		delete(c.m, oldKey)
		c.evictions++
		if c.lens != nil {
			evicted = append(evicted, hashKey(oldKey))
		}
	}
	c.mu.Unlock()
	for _, h := range evicted {
		c.lens.RecordEvict(h)
	}
}

// invalidate walks every entry after a mutation batch moved the graph from
// oldEpoch to newEpoch. touched is the sorted list of nodes whose adjacency
// the batch changed; maxTouchedDeg is the largest new degree among them.
//
// Per entry:
//   - epoch == newEpoch: a query raced ahead and cached against the new
//     snapshot already — valid, keep.
//   - epoch == oldEpoch, footprint disjoint from touched and the guard rule
//     silent: the batch provably cannot change this answer (the search read
//     none of the mutated rows, probed none of the mutated degrees, and no
//     degree rose above the certified w(S̄) ceiling) — re-key to newEpoch so
//     future lookups keep hitting it (retained).
//   - epoch == oldEpoch, footprint intersected or guard rule fired: evict,
//     parking the visited set in the stale store so the recompute can
//     warm-start (surgical).
//   - anything older: straggler from a pre-batch query that finished after a
//     later batch's walk; it can never be served again — drop (counted as
//     surgical, it is the same per-entry invalidation).
func (c *resultCache) invalidate(oldEpoch, newEpoch uint64, touched []graph.NodeID, maxTouchedDeg float64, stale *staleStore) (surgical, retained int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.epoch == newEpoch {
			continue
		}
		stay := e.key.epoch == oldEpoch &&
			e.fp != nil &&
			!intersectsSorted(e.fp, touched) &&
			!(e.guarded && maxTouchedDeg > e.guard)
		if stay {
			delete(c.m, e.key)
			e.key.epoch = newEpoch
			// A raced-ahead query may already hold the new key; keep the
			// fresher entry and drop this one.
			if _, dup := c.m[e.key]; dup {
				c.ll.Remove(el)
				surgical++
				continue
			}
			c.m[e.key] = el
			retained++
			continue
		}
		delete(c.m, e.key)
		c.ll.Remove(el)
		surgical++
		if stale != nil && e.key.epoch == oldEpoch && len(e.visited) > 0 {
			stale.put(e.key, e.visited)
		}
	}
	return surgical, retained
}

// clear drops every entry (the deprecated full-flush path).
func (c *resultCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.m)
}

func (c *resultCache) counters() (hits, misses, evictions int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.ll.Len()
}

// intersectsSorted reports whether two ascending NodeID slices share an
// element (linear merge scan).
func intersectsSorted(a, b []graph.NodeID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// staleStore parks the visited sets of surgically invalidated entries, keyed
// by their cache key with the epoch zeroed (the seed is useful on whatever
// snapshot the recompute lands on). take is one-shot: the first recompute of
// a stale query consumes the seed and warm-starts from it. Bounded FIFO.
type staleStore struct {
	mu    sync.Mutex
	max   int
	order []cacheKey
	m     map[cacheKey][]graph.NodeID
}

func newStaleStore(max int) *staleStore {
	return &staleStore{max: max, m: make(map[cacheKey][]graph.NodeID, max)}
}

// zeroEpoch is the stale store's key normalization.
func zeroEpoch(k cacheKey) cacheKey {
	k.epoch = 0
	return k
}

func (s *staleStore) put(k cacheKey, visited []graph.NodeID) {
	k = zeroEpoch(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[k]; !ok {
		s.order = append(s.order, k)
		for len(s.order) > s.max {
			delete(s.m, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.m[k] = visited
}

// take removes and returns the parked visited set for k, if any.
func (s *staleStore) take(k cacheKey) ([]graph.NodeID, bool) {
	k = zeroEpoch(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[k]
	if !ok {
		return nil, false
	}
	delete(s.m, k)
	for i, key := range s.order {
		if key == k {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return v, true
}

func (s *staleStore) clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.order = s.order[:0]
	clear(s.m)
}
