package qserve

import (
	"context"
	"testing"

	"flos/internal/core"
	"flos/internal/graph"
	"flos/internal/livegraph"
	"flos/internal/measure"
	"flos/internal/obs/cachelens"
)

// TestResultCacheLens attaches an analytics lens to a pool's result cache
// and checks the flow accounting end to end: every cache lookup lands in
// the lens, LRU evictions feed the ghost list, the occupancy gauges
// (entries, capacity) are exported, and repeated queries register as hits
// on both planes.
func TestResultCacheLens(t *testing.T) {
	g := liveTestGraph(t, 2000, 5400, 3)
	lens := cachelens.New(cachelens.Config{Capacity: 4, SampleRate: 1, Seed: 11})
	pool := New(g, Config{Workers: 2, CacheEntries: 4, CacheLens: lens})
	defer pool.Close()
	ctx := context.Background()

	lget := graph.LargestComponentNodes(g)
	// 8 distinct queries through a 4-entry cache: the first 4 evict as the
	// second 4 land. Then re-ask the last one — a hit.
	for i := 0; i < 8; i++ {
		if _, err := pool.Do(ctx, Request{Query: lget[i*17%len(lget)], Opt: core.DefaultOptions(measure.PHP, 5)}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := pool.Do(ctx, Request{Query: lget[7*17%len(lget)], Opt: core.DefaultOptions(measure.PHP, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("repeat of the most recent query missed")
	}

	m := pool.Metrics()
	if m.CacheCapacity != 4 {
		t.Fatalf("CacheCapacity = %d, want 4", m.CacheCapacity)
	}
	if m.CacheEntries != 4 {
		t.Fatalf("CacheEntries = %d, want full occupancy 4", m.CacheEntries)
	}
	if m.CacheEvictions == 0 {
		t.Fatal("8 distinct queries through 4 entries evicted nothing")
	}

	snap := lens.Snapshot(5)
	if snap.Accesses != m.CacheHits+m.CacheMisses {
		t.Fatalf("lens accesses %d != cache lookups %d", snap.Accesses, m.CacheHits+m.CacheMisses)
	}
	if snap.Hits != m.CacheHits || snap.Misses != m.CacheMisses {
		t.Fatalf("lens hits/misses %d/%d != cache %d/%d", snap.Hits, snap.Misses, m.CacheHits, m.CacheMisses)
	}
	if snap.Ghost.Evictions != m.CacheEvictions {
		t.Fatalf("lens evictions %d != cache evictions %d", snap.Ghost.Evictions, m.CacheEvictions)
	}
	if snap.DenseBlocks {
		t.Fatal("result-cache keys are hashed; lens must not claim dense blocks")
	}
}

// TestLensIgnoresInvalidations pins the accounting rule that surgical and
// full invalidations never enter the lens's eviction stream: those entries
// die for correctness, so a ghost hit on them must not suggest a bigger
// cache would have kept them. Also covers the last-batch survivor gauges.
func TestLensIgnoresInvalidations(t *testing.T) {
	base := liveTestGraph(t, 400, 1200, 2)
	lg := livegraph.New(base)
	lens := cachelens.New(cachelens.Config{Capacity: 128, SampleRate: 1, Seed: 5})
	pool := New(lg, Config{Workers: 2, CacheEntries: 128, CacheLens: lens})
	defer pool.Close()
	ctx := context.Background()

	lget := graph.LargestComponentNodes(base)
	reqs := make([]Request, 6)
	for i := range reqs {
		reqs[i] = Request{Query: lget[i*31%len(lget)], Opt: core.DefaultOptions(measure.PHP, 5)}
		if _, err := pool.Do(ctx, reqs[i]); err != nil {
			t.Fatal(err)
		}
	}

	// A mutation touching a query node surgically invalidates its entry —
	// the cache's eviction counter stays flat and so must the lens's.
	if _, err := pool.Mutate([]livegraph.EdgeOp{
		{Op: livegraph.OpSet, U: reqs[0].Query, V: lget[100%len(lget)], W: 2},
	}); err != nil {
		t.Fatal(err)
	}
	m := pool.Metrics()
	if m.InvalidationsSurgical == 0 {
		t.Fatal("touching mutation invalidated nothing")
	}
	if m.LastBatchSurgical == 0 || m.LastBatchSurgical+m.LastBatchRetained != int64(len(reqs)) {
		t.Fatalf("last-batch gauges surgical=%d retained=%d, want them to partition %d entries",
			m.LastBatchSurgical, m.LastBatchRetained, len(reqs))
	}
	if got := lens.Snapshot(1).Ghost.Evictions; got != m.CacheEvictions {
		t.Fatalf("lens evictions %d != cache LRU evictions %d after surgical invalidation", got, m.CacheEvictions)
	}
	if m.CacheEvictions != 0 {
		t.Fatalf("surgical invalidation leaked into the LRU eviction counter: %d", m.CacheEvictions)
	}

	// Full flush: same rule.
	pool.BumpEpoch()
	if got := lens.Snapshot(1).Ghost.Evictions; got != 0 {
		t.Fatalf("full flush leaked %d evictions into the lens", got)
	}
}
