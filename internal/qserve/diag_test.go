package qserve

import (
	"context"
	"testing"
	"time"

	"flos/internal/core"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
	"flos/internal/obs"
)

func diagGraph(t *testing.T) *graph.MemGraph {
	t.Helper()
	g, err := gen.Community(2000, 5400, gen.DefaultCommunityParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestOutcomeParityWithCacheHits is the satellite-2 regression: cache-hit
// answers get their own outcome counter, so OK + Hit + Deadline + Canceled +
// Failed == Served holds exactly, and per measure the executed-latency
// histogram count plus HitByMeasure covers every served query. Before the
// hit counter existed, cached answers inflated Served with no matching
// outcome, which overcounted SLO availability.
func TestOutcomeParityWithCacheHits(t *testing.T) {
	g := diagGraph(t)
	pool := New(g, Config{Workers: 2, CacheEntries: 64})
	defer pool.Close()

	reqs := []Request{
		{Query: 100, Opt: core.DefaultOptions(measure.PHP, 5)},
		{Query: 200, Opt: core.DefaultOptions(measure.RWR, 5)},
		{Query: 300, Opt: core.DefaultOptions(measure.PHP, 5), Unified: true},
	}
	for round := 0; round < 3; round++ { // round 1 executes, rounds 2-3 hit
		for _, req := range reqs {
			resp, err := pool.Do(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if round > 0 && !resp.CacheHit {
				t.Fatalf("round %d query %d missed the cache", round, req.Query)
			}
		}
	}

	m := pool.Metrics()
	if m.Served != 9 || m.OK != 3 || m.Hit != 6 {
		t.Fatalf("served/ok/hit = %d/%d/%d, want 9/3/6", m.Served, m.OK, m.Hit)
	}
	if got := m.OK + m.Hit + m.Deadline + m.Canceled + m.Failed; got != m.Served {
		t.Fatalf("outcome sum %d != served %d", got, m.Served)
	}
	// Per-measure parity: histogram (executed) + hits covers served.
	for _, label := range []string{"php", "rwr", "unified"} {
		got := m.LatencyByMeasure[label].Count + m.HitByMeasure[label]
		if got != 3 {
			t.Errorf("measure %q: executed %d + hits %d = %d, want 3",
				label, m.LatencyByMeasure[label].Count, m.HitByMeasure[label], got)
		}
	}
	// Hits never pollute the executed-latency histograms.
	if m.Latency.Count != 3 {
		t.Errorf("executed histogram count = %d, want 3", m.Latency.Count)
	}
}

// TestFlightRecorderOutcomePaths wires a recorder into the pool and checks
// every outcome path emits a record: executed queries carry a down-sampled
// trajectory and a request ID, cache hits carry outcome "hit" with the same
// ID threading, and DoBatch members are recorded like Do calls.
func TestFlightRecorderOutcomePaths(t *testing.T) {
	g := diagGraph(t)
	rec := obs.NewFlightRecorder(obs.RecorderConfig{Size: 64, SlowLatency: -1})
	slo := obs.NewSLOTracker(obs.SLOConfig{})
	pool := New(g, Config{Workers: 2, CacheEntries: 64, Recorder: rec, SLO: slo})
	defer pool.Close()

	req := Request{Query: 100, Opt: core.DefaultOptions(measure.PHP, 5)}
	if _, err := pool.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	resp, err := pool.Do(context.Background(), req) // cache hit
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("second identical query missed the cache")
	}

	last := rec.Last(10)
	if len(last) != 2 {
		t.Fatalf("recorded %d records, want 2", len(last))
	}
	hit, exec := last[0], last[1] // newest first
	if hit.Outcome != "hit" || exec.Outcome != "ok" {
		t.Fatalf("outcomes = %q,%q, want hit,ok", hit.Outcome, exec.Outcome)
	}
	if exec.ID == "" || hit.ID == "" {
		t.Fatal("pool did not assign request IDs")
	}
	if len(exec.Trace) == 0 || exec.TraceTotal != exec.Iterations {
		t.Fatalf("executed record trajectory: %d points of %d total (iterations %d)",
			len(exec.Trace), exec.TraceTotal, exec.Iterations)
	}
	if got := exec.Trace[len(exec.Trace)-1]; !got.Certified {
		t.Errorf("final trace point not certified: %+v", got)
	}
	if exec.Visited == 0 || exec.Iterations == 0 || !exec.Exact {
		t.Errorf("work counters not populated: %+v", exec)
	}
	if hit.Trace != nil || hit.Visited != 0 {
		t.Errorf("cache hit carries execution state: %+v", hit)
	}

	// The executed record's ID is the exemplar of its latency bucket — the
	// join key between /metrics and the flight recorder.
	m := pool.Metrics()
	found := false
	for _, ex := range m.Latency.Exemplars {
		if ex != nil && ex.ID == exec.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("request ID %s not found among histogram exemplars", exec.ID)
	}

	// DoBatch members are recorded too.
	batch := []Request{
		{Query: 400, Opt: core.DefaultOptions(measure.RWR, 5)},
		{Query: 100, Opt: core.DefaultOptions(measure.PHP, 5)}, // cached
	}
	for i, r := range pool.DoBatch(context.Background(), batch) {
		if r.Err != nil {
			t.Fatalf("batch slot %d: %v", i, r.Err)
		}
	}
	if got := rec.Recorded(); got != 4 {
		t.Fatalf("recorded %d records after batch, want 4", got)
	}

	// SLO saw only good events so both windows are fully compliant.
	s := slo.Snapshot()
	for _, w := range s.Windows {
		if w.Total != 4 || w.Errors != 0 || w.Availability != 1 {
			t.Errorf("window %s: %+v, want 4 good events", w.Window, w)
		}
	}
}

// TestFlightRecorderSlowPromotionAndSLOErrors forces deadline outcomes and
// checks they are promoted into the slow log (threshold 1ns: everything is
// slow) and recorded as SLO errors, while client cancellations stay out of
// the SLO accounting.
func TestFlightRecorderSlowPromotionAndSLOErrors(t *testing.T) {
	g := diagGraph(t)
	rec := obs.NewFlightRecorder(obs.RecorderConfig{Size: 16, SlowLatency: time.Nanosecond})
	slo := obs.NewSLOTracker(obs.SLOConfig{})
	pool := New(g, Config{Workers: 1, CacheEntries: -1, Timeout: time.Nanosecond, Recorder: rec, SLO: slo})
	defer pool.Close()

	if _, err := pool.Do(context.Background(), Request{Query: 1, Opt: core.DefaultOptions(measure.PHP, 5)}); err == nil {
		t.Fatal("1ns deadline did not interrupt")
	}
	slow := rec.Slow()
	if len(slow) != 1 || slow[0].Outcome != "deadline" || !slow[0].Slow {
		t.Fatalf("slow log = %+v, want one promoted deadline record", slow)
	}
	s := slo.Snapshot()
	if w := s.Windows[0]; w.Total != 1 || w.Errors != 1 {
		t.Fatalf("SLO window after deadline: %+v, want 1 error of 1", w)
	}

	// A client-canceled query is recorded in flight but not against the SLO.
	cpool := New(g, Config{Workers: 1, CacheEntries: -1, Recorder: rec, SLO: slo})
	defer cpool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cpool.Do(ctx, Request{Query: 2, Opt: core.DefaultOptions(measure.PHP, 5)}); err == nil {
		t.Fatal("canceled context did not interrupt")
	}
	if w := slo.Snapshot().Windows[0]; w.Total != 1 {
		t.Fatalf("cancellation leaked into SLO accounting: %+v", w)
	}
	if got := rec.Last(1); len(got) != 1 || got[0].Outcome != "canceled" {
		t.Fatalf("last record = %+v, want canceled", got)
	}
}

// TestRecorderTeesUserTracer: when both a user tracer and the flight
// recorder are active, the user's collector still sees the full trajectory
// and the record carries the down-sampled one.
func TestRecorderTeesUserTracer(t *testing.T) {
	g := diagGraph(t)
	rec := obs.NewFlightRecorder(obs.RecorderConfig{Size: 8, SlowLatency: -1, TracePoints: 4})
	pool := New(g, Config{Workers: 1, CacheEntries: 64, Recorder: rec})
	defer pool.Close()

	tc := &core.TraceCollector{}
	req := Request{Query: 100, Opt: core.DefaultOptions(measure.RWR, 5)}
	req.Opt.Tracer = tc
	resp, err := pool.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatal("traced request served from cache")
	}
	if len(tc.Iters) != resp.TopK.Iterations {
		t.Fatalf("user tracer saw %d iterations, want %d", len(tc.Iters), resp.TopK.Iterations)
	}
	last := rec.Last(1)
	if len(last) != 1 {
		t.Fatal("no flight record for traced query")
	}
	r := last[0]
	if r.TraceTotal != resp.TopK.Iterations {
		t.Errorf("record trace total %d, want %d", r.TraceTotal, resp.TopK.Iterations)
	}
	if len(r.Trace) == 0 || len(r.Trace) > 4+1 {
		t.Errorf("down-sampled trajectory has %d points, want 1..5", len(r.Trace))
	}
}
