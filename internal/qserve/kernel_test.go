package qserve

// Token-budget coordination tests (ISSUE 9): intra-query solver parallelism
// must compose with the pool's inter-query parallelism without changing any
// answer and without leaking CPU-slot tokens. The budget only modulates how
// many goroutines a kernel's compute phase uses — the deterministic apply
// order makes results independent of the grant — so a saturated pool running
// parallel-kernel queries must produce the same bits as a serial-kernel run
// of the same requests, and the budget must drain back to zero once the pool
// goes idle.

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"flos/internal/core"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
)

// TestKernelTokenCoordination saturates a pool (more in-flight queries than
// workers, more workers than GOMAXPROCS on small machines) with
// parallel-kernel requests and checks three things: every answer matches the
// serial-kernel single-threaded reference's node set and flags, the token
// budget never exceeds its cap, and it drains to zero afterwards.
func TestKernelTokenCoordination(t *testing.T) {
	g, err := gen.Community(8000, 40000, gen.DefaultCommunityParams(), 9)
	if err != nil {
		t.Fatal(err)
	}
	lc := graph.LargestComponentNodes(g)
	kinds := []measure.Kind{measure.PHP, measure.RWR, measure.THT}

	const n = 48
	reqs := make([]Request, n)
	want := make([]*core.Result, n)
	for i := range reqs {
		opt := core.DefaultOptions(kinds[i%len(kinds)], 10)
		opt.Kernel = core.KernelParallel
		if i%5 == 4 {
			opt.Kernel = core.KernelStaged
		}
		reqs[i] = Request{Query: lc[(i*131)%len(lc)], Opt: opt}
		res, err := core.TopK(g, reqs[i].Query, reqs[i].Opt)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	pool := New(g, Config{Workers: 8, QueueDepth: n, CacheEntries: -1})
	defer pool.Close()
	if cap := pool.tokens.Cap(); cap != runtime.GOMAXPROCS(0) {
		t.Fatalf("token budget cap = %d, want GOMAXPROCS = %d", cap, runtime.GOMAXPROCS(0))
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	got := make([]*Response, n)
	overCap := make(chan int, 1)
	stop := make(chan struct{})
	go func() {
		// Outstanding may move at any time while queries run, but it must
		// never exceed the cap: every grant is bounded by what Release gave
		// back.
		for {
			select {
			case <-stop:
				return
			default:
			}
			if o := pool.tokens.Outstanding(); o > pool.tokens.Cap() {
				select {
				case overCap <- o:
				default:
				}
				return
			}
			runtime.Gosched()
		}
	}()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = pool.Do(context.Background(), reqs[i])
		}(i)
	}
	wg.Wait()
	close(stop)
	select {
	case o := <-overCap:
		t.Fatalf("token budget outstanding %d exceeded cap %d", o, pool.tokens.Cap())
	default:
	}

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		w, res := want[i], got[i].TopK
		if len(w.TopK) != len(res.TopK) {
			t.Fatalf("query %d: size %d vs %d", i, len(w.TopK), len(res.TopK))
		}
		for r := range w.TopK {
			if w.TopK[r] != res.TopK[r] {
				t.Fatalf("query %d rank %d: pool %+v vs reference %+v (kernel results must not depend on token grants)",
					i, r, res.TopK[r], w.TopK[r])
			}
		}
		if w.Exact != res.Exact || w.Certification.Certified != res.Certification.Certified {
			t.Fatalf("query %d: flags diverged under pool execution", i)
		}
	}

	if o := pool.tokens.Outstanding(); o != 0 {
		t.Fatalf("token budget leaked: %d outstanding after drain", o)
	}
}

// TestKernelCacheKeyIsolation pins that the kernel participates in the result
// cache key: a serial-kernel entry must not answer a parallel-kernel request
// (their score bits may legitimately differ), while repeating the same
// kernel hits.
func TestKernelCacheKeyIsolation(t *testing.T) {
	g, err := gen.Community(2000, 8000, gen.DefaultCommunityParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	pool := New(g, Config{Workers: 2, CacheEntries: 64})
	defer pool.Close()

	mk := func(kk core.KernelKind) Request {
		opt := core.DefaultOptions(measure.PHP, 10)
		opt.Kernel = kk
		return Request{Query: 42, Opt: opt}
	}
	ctx := context.Background()
	if _, err := pool.Do(ctx, mk(core.KernelSerial)); err != nil {
		t.Fatal(err)
	}
	r2, err := pool.Do(ctx, mk(core.KernelSerial))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("repeated serial-kernel request missed the cache")
	}
	r3, err := pool.Do(ctx, mk(core.KernelParallel))
	if err != nil {
		t.Fatal(err)
	}
	if r3.CacheHit {
		t.Fatal("parallel-kernel request was served a serial-kernel cache entry")
	}
	r4, err := pool.Do(ctx, mk(core.KernelParallel))
	if err != nil {
		t.Fatal(err)
	}
	if !r4.CacheHit {
		t.Fatal("repeated parallel-kernel request missed the cache")
	}
}
